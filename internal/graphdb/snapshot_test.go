package graphdb

import (
	"bytes"
	"strings"
	"testing"

	"hypre/internal/predicate"
)

func TestSnapshotRoundTrip(t *testing.T) {
	g := New()
	g.CreateIndex("uidIndex", "uid")
	a := g.CreateNode(NodeSpec{Labels: []string{"uidIndex"},
		Props: props("uid", 2, "predicate", `venue="VLDB"`, "intensity", 0.5)})
	b := g.CreateNode(NodeSpec{Labels: []string{"uidIndex"},
		Props: props("uid", 2, "predicate", `venue="ICDE"`)})
	c := g.CreateNode(NodeSpec{Props: props("uid", 3)})
	g.CreateEdge(a, b, "PREFERS", props("intensity", 0.3))
	g.CreateEdge(b, c, "DISCARD", nil)

	var buf bytes.Buffer
	if err := g.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if r.NodeCount() != 3 || r.EdgeCount() != 2 {
		t.Fatalf("restored %d nodes %d edges", r.NodeCount(), r.EdgeCount())
	}
	// Properties and ids preserved.
	if v, ok := r.Prop(a, "intensity"); !ok || v.AsFloat() != 0.5 {
		t.Errorf("intensity = %v", v)
	}
	if v, ok := r.Prop(a, "predicate"); !ok || v.AsString() != `venue="VLDB"` {
		t.Errorf("predicate = %v", v)
	}
	// Labels preserved.
	if ls := r.Labels(a); len(ls) != 1 || ls[0] != "uidIndex" {
		t.Errorf("labels = %v", ls)
	}
	// Edges with labels and props preserved.
	es := r.OutEdges(a, "PREFERS")
	if len(es) != 1 || es[0].To != b || es[0].Props["intensity"].AsFloat() != 0.3 {
		t.Errorf("edges = %+v", es)
	}
	if r.OutDegree(b, "DISCARD") != 1 {
		t.Error("DISCARD edge lost")
	}
	// Index definitions rebuilt.
	if got := r.FindNodes("uidIndex", "uid", predicate.Int(2)); len(got) != 2 {
		t.Errorf("index lookup = %v", got)
	}
	// ID allocation continues past restored ids.
	d := r.CreateNode(NodeSpec{})
	if d <= c {
		t.Errorf("new id %d not past %d", d, c)
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeCount() != 0 || r.EdgeCount() != 0 {
		t.Error("restored non-empty graph")
	}
}

func TestRestoreGarbage(t *testing.T) {
	if _, err := Restore(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	g := New()
	for i := 0; i < 20; i++ {
		g.CreateNode(NodeSpec{Props: props("i", i)})
	}
	var b1, b2 bytes.Buffer
	if err := g.Snapshot(&b1); err != nil {
		t.Fatal(err)
	}
	if err := g.Snapshot(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("snapshot bytes are not deterministic")
	}
}

func TestSnapshotNullProp(t *testing.T) {
	g := New()
	id := g.CreateNode(NodeSpec{Props: Props{"x": predicate.Null()}})
	var buf bytes.Buffer
	if err := g.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Prop(id, "x"); !ok || !v.IsNull() {
		t.Errorf("null prop = %v %v", v, ok)
	}
}
