// Package graphdb is an embedded property-graph store standing in for the
// Neo4j 2.0 instance the dissertation used. It provides what HYPRE needs
// from a graph engine: nodes with typed properties and labels, directed
// labeled edges, a label+property index (the uidIndex(uid) scheme of §4.3),
// batch insertion, degree queries, label-filtered reachability (cycle
// checks), and a small Cypher-like query language (see cypher.go).
package graphdb

import (
	"fmt"
	"sort"
	"sync"

	"hypre/internal/predicate"
)

// NodeID identifies a node. IDs are assigned sequentially, like Neo4j's
// internal ids.
type NodeID int64

// EdgeID identifies an edge.
type EdgeID int64

// Props is a property bag. Values are the same typed scalars the relational
// engine uses.
type Props map[string]predicate.Value

func (p Props) clone() Props {
	c := make(Props, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

type nodeRec struct {
	id     NodeID
	labels map[string]bool
	props  Props
}

type edgeRec struct {
	id    EdgeID
	from  NodeID
	to    NodeID
	label string
	props Props
}

type indexKey struct {
	label string
	prop  string
}

// Graph is the store. All methods are safe for concurrent use.
type Graph struct {
	mu       sync.RWMutex
	nodes    map[NodeID]*nodeRec
	edges    map[EdgeID]*edgeRec
	out      map[NodeID][]*edgeRec
	in       map[NodeID][]*edgeRec
	indexes  map[indexKey]map[string][]NodeID
	nextNode NodeID
	nextEdge EdgeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:   make(map[NodeID]*nodeRec),
		edges:   make(map[EdgeID]*edgeRec),
		out:     make(map[NodeID][]*edgeRec),
		in:      make(map[NodeID][]*edgeRec),
		indexes: make(map[indexKey]map[string][]NodeID),
	}
}

// NodeSpec describes a node to create.
type NodeSpec struct {
	Labels []string
	Props  Props
}

// CreateNode inserts one node and returns its id.
func (g *Graph) CreateNode(spec NodeSpec) NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.createNodeLocked(spec)
}

// CreateNodes batch-inserts nodes under a single lock acquisition — the
// 1M-batch insertion mode of Fig. 13 / Table 11.
func (g *Graph) CreateNodes(specs []NodeSpec) []NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := make([]NodeID, len(specs))
	for i, s := range specs {
		ids[i] = g.createNodeLocked(s)
	}
	return ids
}

func (g *Graph) createNodeLocked(spec NodeSpec) NodeID {
	id := g.nextNode
	g.nextNode++
	rec := &nodeRec{id: id, labels: make(map[string]bool, len(spec.Labels)), props: spec.Props.clone()}
	for _, l := range spec.Labels {
		rec.labels[l] = true
	}
	g.nodes[id] = rec
	for key, idx := range g.indexes {
		if rec.labels[key.label] {
			if v, ok := rec.props[key.prop]; ok {
				idx[v.Key()] = append(idx[v.Key()], id)
			}
		}
	}
	return id
}

// HasNode reports whether id exists.
func (g *Graph) HasNode(id NodeID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.nodes[id]
	return ok
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// Prop returns a node property.
func (g *Graph) Prop(id NodeID, key string) (predicate.Value, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return predicate.Null(), false
	}
	v, ok := n.props[key]
	return v, ok
}

// SetProp sets a node property, maintaining any index on it.
func (g *Graph) SetProp(id NodeID, key string, v predicate.Value) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("graphdb: no node %d", id)
	}
	old, had := n.props[key]
	n.props[key] = v
	for ik, idx := range g.indexes {
		if ik.prop != key || !n.labels[ik.label] {
			continue
		}
		if had {
			idx[old.Key()] = removeID(idx[old.Key()], id)
		}
		idx[v.Key()] = append(idx[v.Key()], id)
	}
	return nil
}

// DeleteProp removes a node property (used when an intensity value is
// retracted).
func (g *Graph) DeleteProp(id NodeID, key string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("graphdb: no node %d", id)
	}
	old, had := n.props[key]
	if !had {
		return nil
	}
	delete(n.props, key)
	for ik, idx := range g.indexes {
		if ik.prop == key && n.labels[ik.label] {
			idx[old.Key()] = removeID(idx[old.Key()], id)
		}
	}
	return nil
}

// Labels returns the node's labels, sorted.
func (g *Graph) Labels(id NodeID) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(n.labels))
	for l := range n.labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// AddLabel attaches a label to an existing node, indexing it if an index on
// (label, prop) exists and the node has prop.
func (g *Graph) AddLabel(id NodeID, label string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("graphdb: no node %d", id)
	}
	if n.labels[label] {
		return nil
	}
	n.labels[label] = true
	for ik, idx := range g.indexes {
		if ik.label != label {
			continue
		}
		if v, ok := n.props[ik.prop]; ok {
			idx[v.Key()] = append(idx[v.Key()], id)
		}
	}
	return nil
}

// CreateEdge inserts a directed edge from -> to with a label and optional
// properties.
func (g *Graph) CreateEdge(from, to NodeID, label string, props Props) (EdgeID, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[from]; !ok {
		return 0, fmt.Errorf("graphdb: no node %d", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return 0, fmt.Errorf("graphdb: no node %d", to)
	}
	id := g.nextEdge
	g.nextEdge++
	e := &edgeRec{id: id, from: from, to: to, label: label, props: props.clone()}
	g.edges[id] = e
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return id, nil
}

// Edge is the exported view of an edge.
type Edge struct {
	ID    EdgeID
	From  NodeID
	To    NodeID
	Label string
	Props Props
}

func exportEdge(e *edgeRec) Edge {
	return Edge{ID: e.id, From: e.from, To: e.to, Label: e.label, Props: e.props.clone()}
}

// EdgeByID returns the edge with the given id.
func (g *Graph) EdgeByID(id EdgeID) (Edge, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	e, ok := g.edges[id]
	if !ok {
		return Edge{}, false
	}
	return exportEdge(e), true
}

// SetEdgeLabel relabels an edge — how HYPRE turns a DISCARD edge back into
// PREFERS when intensities change (§6.2.3).
func (g *Graph) SetEdgeLabel(id EdgeID, label string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("graphdb: no edge %d", id)
	}
	e.label = label
	return nil
}

// OutEdges returns edges leaving id; label "" means any label.
func (g *Graph) OutEdges(id NodeID, label string) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return filterEdges(g.out[id], label)
}

// InEdges returns edges entering id; label "" means any label.
func (g *Graph) InEdges(id NodeID, label string) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return filterEdges(g.in[id], label)
}

func filterEdges(es []*edgeRec, label string) []Edge {
	var out []Edge
	for _, e := range es {
		if label == "" || e.label == label {
			out = append(out, exportEdge(e))
		}
	}
	return out
}

// OutDegree counts edges with the label leaving id.
func (g *Graph) OutDegree(id NodeID, label string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return countEdges(g.out[id], label)
}

// InDegree counts edges with the label entering id.
func (g *Graph) InDegree(id NodeID, label string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return countEdges(g.in[id], label)
}

func countEdges(es []*edgeRec, label string) int {
	n := 0
	for _, e := range es {
		if label == "" || e.label == label {
			n++
		}
	}
	return n
}

// PathExists reports whether `to` is reachable from `from` by following
// edges with the given label (BFS). Algorithm 1 uses it to detect that a new
// qualitative edge would close a cycle.
func (g *Graph) PathExists(from, to NodeID, label string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if from == to {
		return true
	}
	seen := map[NodeID]bool{from: true}
	queue := []NodeID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.out[cur] {
			if label != "" && e.label != label {
				continue
			}
			if e.to == to {
				return true
			}
			if !seen[e.to] {
				seen[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	return false
}

// CreateIndex builds an index over nodes carrying label on property prop,
// mirroring Neo4j's label+property schema indexes (the uidIndex(uid) of
// §4.3). Existing nodes are indexed immediately; later inserts and updates
// maintain it.
func (g *Graph) CreateIndex(label, prop string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := indexKey{label: label, prop: prop}
	if _, exists := g.indexes[key]; exists {
		return
	}
	idx := make(map[string][]NodeID)
	for id, n := range g.nodes {
		if n.labels[label] {
			if v, ok := n.props[prop]; ok {
				idx[v.Key()] = append(idx[v.Key()], id)
			}
		}
	}
	for _, ids := range idx {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	g.indexes[key] = idx
}

// FindNodes returns the ids of nodes with the label whose property equals v.
// With an index on (label, prop) this is a hash lookup; otherwise it scans.
func (g *Graph) FindNodes(label, prop string, v predicate.Value) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if idx, ok := g.indexes[indexKey{label: label, prop: prop}]; ok {
		ids := idx[v.Key()]
		out := make([]NodeID, len(ids))
		copy(out, ids)
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	var out []NodeID
	for id, n := range g.nodes {
		if n.labels[label] {
			if pv, ok := n.props[prop]; ok && pv.Equal(v) {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForEachNode calls fn for every node (in unspecified order) with a cloned
// property bag; returning false stops the iteration.
func (g *Graph) ForEachNode(fn func(id NodeID, labels []string, props Props) bool) {
	g.mu.RLock()
	ids := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	g.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		g.mu.RLock()
		n, ok := g.nodes[id]
		if !ok {
			g.mu.RUnlock()
			continue
		}
		labels := make([]string, 0, len(n.labels))
		for l := range n.labels {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		props := n.props.clone()
		g.mu.RUnlock()
		if !fn(id, labels, props) {
			return
		}
	}
}

func removeID(ids []NodeID, id NodeID) []NodeID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}
