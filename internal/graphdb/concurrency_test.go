package graphdb

import (
	"sync"
	"testing"

	"hypre/internal/predicate"
)

// TestConcurrentReadersAndWriters hammers the store from parallel
// goroutines: the public API must be race-free (run with -race) and the
// final state must account for every write.
func TestConcurrentReadersAndWriters(t *testing.T) {
	g := New()
	g.CreateIndex("uidIndex", "uid")
	seed := make([]NodeID, 50)
	for i := range seed {
		seed[i] = g.CreateNode(NodeSpec{Labels: []string{"uidIndex"}, Props: props("uid", i%5)})
	}

	const writers = 4
	const perWriter = 100
	var wg sync.WaitGroup

	// Writers create nodes and edges.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := g.CreateNode(NodeSpec{Labels: []string{"uidIndex"}, Props: props("uid", w)})
				if _, err := g.CreateEdge(seed[(w*perWriter+i)%len(seed)], id, "PREFERS", nil); err != nil {
					t.Errorf("edge: %v", err)
					return
				}
			}
		}(w)
	}
	// Readers traverse, look up and query concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.FindNodes("uidIndex", "uid", predicate.Int(int64(i%5)))
				g.PathExists(seed[0], seed[len(seed)-1], "PREFERS")
				g.NodeCount()
				g.OutEdges(seed[i%len(seed)], "PREFERS")
			}
		}()
	}
	wg.Wait()

	wantNodes := len(seed) + writers*perWriter
	if g.NodeCount() != wantNodes {
		t.Errorf("nodes = %d, want %d", g.NodeCount(), wantNodes)
	}
	if g.EdgeCount() != writers*perWriter {
		t.Errorf("edges = %d, want %d", g.EdgeCount(), writers*perWriter)
	}
	// Index consistency after the storm: per-writer uid counts.
	for w := 0; w < writers; w++ {
		got := len(g.FindNodes("uidIndex", "uid", predicate.Int(int64(w))))
		want := perWriter + 10 // 10 seed nodes per uid residue class (50/5)
		if got != want {
			t.Errorf("uid %d indexed %d nodes, want %d", w, got, want)
		}
	}
}
