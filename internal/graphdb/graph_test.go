package graphdb

import (
	"testing"
	"testing/quick"

	"hypre/internal/predicate"
)

func props(kv ...any) Props {
	p := Props{}
	for i := 0; i+1 < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			p[k] = predicate.Int(int64(v))
		case float64:
			p[k] = predicate.Float(v)
		case string:
			p[k] = predicate.String(v)
		default:
			panic("bad prop")
		}
	}
	return p
}

func TestCreateNodeAndProps(t *testing.T) {
	g := New()
	id := g.CreateNode(NodeSpec{Labels: []string{"uidIndex"}, Props: props("uid", 2, "predicate", "venue=\"VLDB\"", "intensity", 0.5)})
	if !g.HasNode(id) {
		t.Fatal("node missing")
	}
	if v, ok := g.Prop(id, "uid"); !ok || v.AsInt() != 2 {
		t.Errorf("uid = %v", v)
	}
	if v, ok := g.Prop(id, "intensity"); !ok || v.AsFloat() != 0.5 {
		t.Errorf("intensity = %v", v)
	}
	if _, ok := g.Prop(id, "missing"); ok {
		t.Error("missing prop resolved")
	}
	if g.NodeCount() != 1 {
		t.Errorf("NodeCount = %d", g.NodeCount())
	}
}

func TestPropIsolation(t *testing.T) {
	g := New()
	p := props("uid", 2)
	id := g.CreateNode(NodeSpec{Props: p})
	p["uid"] = predicate.Int(99) // caller mutation must not leak in
	if v, _ := g.Prop(id, "uid"); v.AsInt() != 2 {
		t.Errorf("props not cloned: %v", v)
	}
}

func TestBatchCreateNodes(t *testing.T) {
	g := New()
	specs := make([]NodeSpec, 1000)
	for i := range specs {
		specs[i] = NodeSpec{Labels: []string{"uidIndex"}, Props: props("uid", i%10)}
	}
	ids := g.CreateNodes(specs)
	if len(ids) != 1000 || g.NodeCount() != 1000 {
		t.Fatalf("batch insert: %d ids, %d nodes", len(ids), g.NodeCount())
	}
	// IDs must be dense and sequential like Neo4j's.
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("non-sequential ids at %d", i)
		}
	}
}

func TestSetPropAndDelete(t *testing.T) {
	g := New()
	id := g.CreateNode(NodeSpec{Props: props("intensity", 0.3)})
	if err := g.SetProp(id, "intensity", predicate.Float(0.8)); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.Prop(id, "intensity"); v.AsFloat() != 0.8 {
		t.Errorf("after set: %v", v)
	}
	if err := g.DeleteProp(id, "intensity"); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Prop(id, "intensity"); ok {
		t.Error("prop survived delete")
	}
	if err := g.SetProp(999, "x", predicate.Int(1)); err == nil {
		t.Error("SetProp on missing node should fail")
	}
	if err := g.DeleteProp(999, "x"); err == nil {
		t.Error("DeleteProp on missing node should fail")
	}
}

func TestEdgesAndDegrees(t *testing.T) {
	g := New()
	a := g.CreateNode(NodeSpec{})
	b := g.CreateNode(NodeSpec{})
	c := g.CreateNode(NodeSpec{})
	if _, err := g.CreateEdge(a, b, "PREFERS", props("intensity", 0.8)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.CreateEdge(a, c, "DISCARD", nil); err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(a, "PREFERS") != 1 || g.OutDegree(a, "") != 2 {
		t.Errorf("out degrees: %d / %d", g.OutDegree(a, "PREFERS"), g.OutDegree(a, ""))
	}
	if g.InDegree(b, "PREFERS") != 1 || g.InDegree(c, "PREFERS") != 0 {
		t.Errorf("in degrees wrong")
	}
	es := g.OutEdges(a, "PREFERS")
	if len(es) != 1 || es[0].To != b || es[0].Props["intensity"].AsFloat() != 0.8 {
		t.Errorf("OutEdges = %+v", es)
	}
	if g.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d", g.EdgeCount())
	}
	if _, err := g.CreateEdge(a, 999, "X", nil); err == nil {
		t.Error("edge to missing node should fail")
	}
	if _, err := g.CreateEdge(999, a, "X", nil); err == nil {
		t.Error("edge from missing node should fail")
	}
}

func TestSetEdgeLabel(t *testing.T) {
	g := New()
	a := g.CreateNode(NodeSpec{})
	b := g.CreateNode(NodeSpec{})
	eid, _ := g.CreateEdge(a, b, "DISCARD", nil)
	if err := g.SetEdgeLabel(eid, "PREFERS"); err != nil {
		t.Fatal(err)
	}
	e, ok := g.EdgeByID(eid)
	if !ok || e.Label != "PREFERS" {
		t.Errorf("relabel failed: %+v", e)
	}
	if g.OutDegree(a, "DISCARD") != 0 || g.OutDegree(a, "PREFERS") != 1 {
		t.Error("degree counts not updated by relabel")
	}
	if err := g.SetEdgeLabel(999, "X"); err == nil {
		t.Error("relabel of missing edge should fail")
	}
}

func TestPathExists(t *testing.T) {
	g := New()
	n := make([]NodeID, 5)
	for i := range n {
		n[i] = g.CreateNode(NodeSpec{})
	}
	g.CreateEdge(n[0], n[1], "PREFERS", nil)
	g.CreateEdge(n[1], n[2], "PREFERS", nil)
	g.CreateEdge(n[2], n[3], "DISCARD", nil)
	if !g.PathExists(n[0], n[2], "PREFERS") {
		t.Error("0->2 via PREFERS should exist")
	}
	if g.PathExists(n[0], n[3], "PREFERS") {
		t.Error("0->3 must not traverse DISCARD edges")
	}
	if !g.PathExists(n[0], n[3], "") {
		t.Error("0->3 with any-label should exist")
	}
	if g.PathExists(n[2], n[0], "PREFERS") {
		t.Error("reverse path should not exist")
	}
	if !g.PathExists(n[4], n[4], "PREFERS") {
		t.Error("self path should exist trivially")
	}
}

func TestPathExistsCycleSafety(t *testing.T) {
	g := New()
	a := g.CreateNode(NodeSpec{})
	b := g.CreateNode(NodeSpec{})
	g.CreateEdge(a, b, "PREFERS", nil)
	g.CreateEdge(b, a, "PREFERS", nil)
	// Must terminate despite the cycle.
	if !g.PathExists(a, b, "PREFERS") {
		t.Error("path in cycle")
	}
	c := g.CreateNode(NodeSpec{})
	if g.PathExists(a, c, "PREFERS") {
		t.Error("unreachable node found")
	}
}

func TestLabelsAndAddLabel(t *testing.T) {
	g := New()
	id := g.CreateNode(NodeSpec{Labels: []string{"b", "a"}})
	if ls := g.Labels(id); len(ls) != 2 || ls[0] != "a" || ls[1] != "b" {
		t.Errorf("Labels = %v", ls)
	}
	if err := g.AddLabel(id, "c"); err != nil {
		t.Fatal(err)
	}
	if ls := g.Labels(id); len(ls) != 3 {
		t.Errorf("after AddLabel: %v", ls)
	}
	if err := g.AddLabel(999, "x"); err == nil {
		t.Error("AddLabel on missing node should fail")
	}
}

func TestFindNodesScanVsIndex(t *testing.T) {
	g := New()
	var want []NodeID
	for i := 0; i < 50; i++ {
		id := g.CreateNode(NodeSpec{Labels: []string{"uidIndex"}, Props: props("uid", i%5)})
		if i%5 == 2 {
			want = append(want, id)
		}
	}
	scan := g.FindNodes("uidIndex", "uid", predicate.Int(2))
	g.CreateIndex("uidIndex", "uid")
	idx := g.FindNodes("uidIndex", "uid", predicate.Int(2))
	if len(scan) != len(want) || len(idx) != len(want) {
		t.Fatalf("scan=%d idx=%d want=%d", len(scan), len(idx), len(want))
	}
	for i := range scan {
		if scan[i] != idx[i] || scan[i] != want[i] {
			t.Fatalf("mismatch at %d: scan=%v idx=%v want=%v", i, scan, idx, want)
		}
	}
}

func TestIndexMaintainedOnInsertUpdateLabel(t *testing.T) {
	g := New()
	g.CreateIndex("uidIndex", "uid")
	id := g.CreateNode(NodeSpec{Labels: []string{"uidIndex"}, Props: props("uid", 7)})
	if got := g.FindNodes("uidIndex", "uid", predicate.Int(7)); len(got) != 1 || got[0] != id {
		t.Fatalf("index after insert: %v", got)
	}
	g.SetProp(id, "uid", predicate.Int(8))
	if got := g.FindNodes("uidIndex", "uid", predicate.Int(7)); len(got) != 0 {
		t.Errorf("stale index entry: %v", got)
	}
	if got := g.FindNodes("uidIndex", "uid", predicate.Int(8)); len(got) != 1 {
		t.Errorf("index not updated: %v", got)
	}
	// Node gets the label after creation: index must pick it up.
	id2 := g.CreateNode(NodeSpec{Props: props("uid", 8)})
	if got := g.FindNodes("uidIndex", "uid", predicate.Int(8)); len(got) != 1 {
		t.Errorf("unlabeled node indexed: %v", got)
	}
	g.AddLabel(id2, "uidIndex")
	if got := g.FindNodes("uidIndex", "uid", predicate.Int(8)); len(got) != 2 {
		t.Errorf("AddLabel not indexed: %v", got)
	}
	// DeleteProp must remove the entry.
	g.DeleteProp(id2, "uid")
	if got := g.FindNodes("uidIndex", "uid", predicate.Int(8)); len(got) != 1 {
		t.Errorf("DeleteProp left index entry: %v", got)
	}
	// Re-creating the same index is a no-op.
	g.CreateIndex("uidIndex", "uid")
	if got := g.FindNodes("uidIndex", "uid", predicate.Int(8)); len(got) != 1 {
		t.Errorf("re-index broke entries: %v", got)
	}
}

func TestForEachNodeOrderAndStop(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.CreateNode(NodeSpec{Props: props("i", i)})
	}
	var seen []NodeID
	g.ForEachNode(func(id NodeID, _ []string, _ Props) bool {
		seen = append(seen, id)
		return len(seen) < 4
	})
	if len(seen) != 4 {
		t.Fatalf("early stop failed: %d", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatal("iteration not in id order")
		}
	}
}

// Property: reachability is transitive on a random chain with random extra
// edges.
func TestPathExistsTransitiveProperty(t *testing.T) {
	f := func(extra []uint8) bool {
		g := New()
		const n = 8
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.CreateNode(NodeSpec{})
		}
		for i := 0; i+1 < n; i++ {
			g.CreateEdge(ids[i], ids[i+1], "P", nil)
		}
		for _, e := range extra {
			from := int(e>>4) % n
			to := int(e&0xF) % n
			g.CreateEdge(ids[from], ids[to], "P", nil)
		}
		// Chain guarantees i -> j for i <= j.
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if !g.PathExists(ids[i], ids[j], "P") {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
