package graphdb

import (
	"testing"

	"hypre/internal/predicate"
)

// prefGraph builds a small user-profile graph like Fig. 12's nodes.
func prefGraph(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	g := New()
	g.CreateIndex("uidIndex", "uid")
	mk := func(uid int, pred string, intensity float64) NodeID {
		return g.CreateNode(NodeSpec{
			Labels: []string{"uidIndex"},
			Props:  props("uid", uid, "predicate", pred, "intensity", intensity),
		})
	}
	ids := []NodeID{
		mk(2, `dblp.venue="INFOCOM"`, 0.23),
		mk(2, `dblp.venue="PODS"`, 0.14),
		mk(2, `dblp_author.aid=128`, 0.19),
		mk(38437, `dblp.venue="VLDB"`, 0.40),
	}
	g.CreateEdge(ids[0], ids[1], "PREFERS", props("intensity", 0.3))
	g.CreateEdge(ids[1], ids[2], "DISCARD", nil)
	return g, ids
}

func TestCypherStartAllWhereOrder(t *testing.T) {
	g, _ := prefGraph(t)
	res, err := g.Query(`START n=node(*) WHERE n.uid=2 RETURN n.predicate, n.intensity ORDER BY n.intensity DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Columns[0] != "n.predicate" || res.Columns[1] != "n.intensity" {
		t.Errorf("columns = %v", res.Columns)
	}
	// Descending intensity: 0.23, 0.19, 0.14.
	want := []float64{0.23, 0.19, 0.14}
	for i, w := range want {
		if got := res.Rows[i][1].AsFloat(); got != w {
			t.Errorf("row %d intensity = %v, want %v", i, got, w)
		}
	}
}

func TestCypherStartByID(t *testing.T) {
	g, ids := prefGraph(t)
	res, err := g.Query(`START n=node(0) RETURN id(n), n.uid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || NodeID(res.Rows[0][0].AsInt()) != ids[0] {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := g.Query(`START n=node(999) RETURN id(n)`); err == nil {
		t.Error("missing node id should fail")
	}
}

func TestCypherMatchEdgeLabel(t *testing.T) {
	g, ids := prefGraph(t)
	res, err := g.Query(`START n=node(0) MATCH n -[:PREFERS]-> m RETURN id(n), id(m)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if NodeID(res.Rows[0][1].AsInt()) != ids[1] {
		t.Errorf("target = %v, want %d", res.Rows[0][1], ids[1])
	}
	// DISCARD edges must not be traversed under :PREFERS.
	res, err = g.Query(`START n=node(1) MATCH n -[:PREFERS]-> m RETURN id(m)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("DISCARD traversed: %v", res.Rows)
	}
}

func TestCypherIndexedStart(t *testing.T) {
	g, _ := prefGraph(t)
	res, err := g.Query(`START n=nodes:uidIndex(uid=38437) RETURN n.predicate`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != `dblp.venue="VLDB"` {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCypherWhereOperators(t *testing.T) {
	g, _ := prefGraph(t)
	res, err := g.Query(`START n=node(*) WHERE n.uid=2 AND n.intensity>0.15 RETURN n.predicate ORDER BY n.intensity`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Ascending order: aid=128 (0.19) before INFOCOM (0.23).
	if res.Rows[0][0].AsString() != `dblp_author.aid=128` {
		t.Errorf("order wrong: %v", res.Rows)
	}
}

func TestCypherStringLiteralWhere(t *testing.T) {
	g, _ := prefGraph(t)
	res, err := g.Query(`START n=node(*) WHERE n.predicate='dblp.venue="PODS"' RETURN id(n)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCypherSkipLimit(t *testing.T) {
	g, _ := prefGraph(t)
	res, err := g.Query(`START n=node(*) RETURN id(n) ORDER BY id(n) SKIP 1 LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 1 || res.Rows[1][0].AsInt() != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// SKIP past the end yields empty.
	res, _ = g.Query(`START n=node(*) RETURN id(n) SKIP 100`)
	if len(res.Rows) != 0 {
		t.Errorf("skip past end: %v", res.Rows)
	}
}

func TestCypherParseErrors(t *testing.T) {
	g, _ := prefGraph(t)
	bad := []string{
		``,
		`RETURN n.x`,
		`START n node(*) RETURN n.x`,
		`START n=node() RETURN n.x`,
		`START n=node(x) RETURN n.x`,
		`START n=node(*) RETURN`,
		`START n=node(*) RETURN n`,
		`START n=node(*) WHERE n.uid ~ 2 RETURN n.uid`,
		`START n=node(*) RETURN n.uid LIMIT x`,
		`START n=node(*) RETURN n.uid garbage`,
		`START n=node(*) MATCH m -[:P]-> k RETURN id(k)`,
	}
	for _, q := range bad {
		if _, err := g.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestCypherUnboundReturnVar(t *testing.T) {
	g, _ := prefGraph(t)
	if _, err := g.Query(`START n=node(0) RETURN m.uid`); err == nil {
		t.Error("unbound variable in RETURN should fail")
	}
}

func TestCypherNullOrderingLast(t *testing.T) {
	g := New()
	g.CreateNode(NodeSpec{Props: props("v", 1)})
	g.CreateNode(NodeSpec{}) // no "v" property -> NULL
	g.CreateNode(NodeSpec{Props: props("v", 2)})
	res, err := g.Query(`START n=node(*) RETURN n.v ORDER BY n.v DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[len(res.Rows)-1][0].IsNull() {
		t.Errorf("NULL should sort last: %v", res.Rows)
	}
	if res.Rows[0][0].AsInt() != 2 {
		t.Errorf("DESC order wrong: %v", res.Rows)
	}
}

func TestCypherIntensityValueType(t *testing.T) {
	g := New()
	g.CreateNode(NodeSpec{Props: Props{"intensity": predicate.Float(0.6155722066724582)}})
	res, err := g.Query(`START n=node(0) RETURN n.intensity`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsFloat() != 0.6155722066724582 {
		t.Errorf("precision lost: %v", res.Rows[0][0])
	}
}
