package graphdb

import (
	"testing"

	"hypre/internal/predicate"
)

func benchGraph(n int) (*Graph, []NodeID) {
	g := New()
	g.CreateIndex("uidIndex", "uid")
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{
			Labels: []string{"uidIndex"},
			Props:  props("uid", i%100, "intensity", 0.5),
		}
	}
	ids := g.CreateNodes(specs)
	for i := 0; i+1 < len(ids); i += 2 {
		g.CreateEdge(ids[i], ids[i+1], "PREFERS", nil)
	}
	return g, ids
}

func BenchmarkCreateNodeSingle(b *testing.B) {
	g := New()
	g.CreateIndex("uidIndex", "uid")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CreateNode(NodeSpec{Labels: []string{"uidIndex"}, Props: props("uid", i%100)})
	}
}

func BenchmarkCreateNodesBatch1k(b *testing.B) {
	specs := make([]NodeSpec, 1000)
	for i := range specs {
		specs[i] = NodeSpec{Labels: []string{"uidIndex"}, Props: props("uid", i%100)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New()
		g.CreateIndex("uidIndex", "uid")
		g.CreateNodes(specs)
	}
}

func BenchmarkFindNodesIndexed(b *testing.B) {
	g, _ := benchGraph(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.FindNodes("uidIndex", "uid", predicate.Int(int64(i%100))); len(got) == 0 {
			b.Fatal("no nodes")
		}
	}
}

func BenchmarkPathExistsChain(b *testing.B) {
	g := New()
	const n = 1000
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.CreateNode(NodeSpec{})
	}
	for i := 0; i+1 < n; i++ {
		g.CreateEdge(ids[i], ids[i+1], "PREFERS", nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !g.PathExists(ids[0], ids[n-1], "PREFERS") {
			b.Fatal("path lost")
		}
	}
}

func BenchmarkCypherIndexedQuery(b *testing.B) {
	g, _ := benchGraph(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := g.Query(`START n=nodes:uidIndex(uid=7) RETURN n.intensity ORDER BY n.intensity DESC LIMIT 10`)
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("rows=%v err=%v", len(res.Rows), err)
		}
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	g, _ := benchGraph(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf writeCounter
		if err := g.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

type writeCounter struct{ n int }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
