package graphdb

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"hypre/internal/predicate"
)

// snapshot is the gob wire format. predicate.Value has unexported fields,
// so properties are transported as (kind, payload) records.
type snapshotValue struct {
	Kind uint8
	I    int64
	F    float64
	S    string
}

func encodeValue(v predicate.Value) snapshotValue {
	switch v.Kind() {
	case predicate.KindInt:
		return snapshotValue{Kind: 1, I: v.AsInt()}
	case predicate.KindFloat:
		return snapshotValue{Kind: 2, F: v.AsFloat()}
	case predicate.KindString:
		return snapshotValue{Kind: 3, S: v.AsString()}
	default:
		return snapshotValue{Kind: 0}
	}
}

func decodeValue(s snapshotValue) predicate.Value {
	switch s.Kind {
	case 1:
		return predicate.Int(s.I)
	case 2:
		return predicate.Float(s.F)
	case 3:
		return predicate.String(s.S)
	default:
		return predicate.Null()
	}
}

type snapshotNode struct {
	ID     int64
	Labels []string
	Keys   []string
	Vals   []snapshotValue
}

type snapshotEdge struct {
	ID    int64
	From  int64
	To    int64
	Label string
	Keys  []string
	Vals  []snapshotValue
}

type snapshotIndex struct {
	Label string
	Prop  string
}

type snapshotFile struct {
	Version  int
	NextNode int64
	NextEdge int64
	Nodes    []snapshotNode
	Edges    []snapshotEdge
	Indexes  []snapshotIndex
}

const snapshotVersion = 1

// Snapshot serializes the whole graph (nodes, edges, index definitions) to
// w in a stable, versioned gob format. Node and edge ids are preserved, so
// references held by callers stay valid after Restore.
func (g *Graph) Snapshot(w io.Writer) error {
	g.mu.RLock()
	defer g.mu.RUnlock()

	f := snapshotFile{
		Version:  snapshotVersion,
		NextNode: int64(g.nextNode),
		NextEdge: int64(g.nextEdge),
	}
	nodeIDs := make([]NodeID, 0, len(g.nodes))
	for id := range g.nodes {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	for _, id := range nodeIDs {
		n := g.nodes[id]
		sn := snapshotNode{ID: int64(id)}
		for l := range n.labels {
			sn.Labels = append(sn.Labels, l)
		}
		sort.Strings(sn.Labels)
		keys := make([]string, 0, len(n.props))
		for k := range n.props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sn.Keys = append(sn.Keys, k)
			sn.Vals = append(sn.Vals, encodeValue(n.props[k]))
		}
		f.Nodes = append(f.Nodes, sn)
	}
	edgeIDs := make([]EdgeID, 0, len(g.edges))
	for id := range g.edges {
		edgeIDs = append(edgeIDs, id)
	}
	sort.Slice(edgeIDs, func(i, j int) bool { return edgeIDs[i] < edgeIDs[j] })
	for _, id := range edgeIDs {
		e := g.edges[id]
		se := snapshotEdge{ID: int64(id), From: int64(e.from), To: int64(e.to), Label: e.label}
		keys := make([]string, 0, len(e.props))
		for k := range e.props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			se.Keys = append(se.Keys, k)
			se.Vals = append(se.Vals, encodeValue(e.props[k]))
		}
		f.Edges = append(f.Edges, se)
	}
	for key := range g.indexes {
		f.Indexes = append(f.Indexes, snapshotIndex{Label: key.label, Prop: key.prop})
	}
	sort.Slice(f.Indexes, func(i, j int) bool {
		if f.Indexes[i].Label != f.Indexes[j].Label {
			return f.Indexes[i].Label < f.Indexes[j].Label
		}
		return f.Indexes[i].Prop < f.Indexes[j].Prop
	})
	return gob.NewEncoder(w).Encode(f)
}

// Restore reads a snapshot and returns the reconstructed graph, rebuilding
// all declared indexes.
func Restore(r io.Reader) (*Graph, error) {
	var f snapshotFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("graphdb: restore: %w", err)
	}
	if f.Version != snapshotVersion {
		return nil, fmt.Errorf("graphdb: unsupported snapshot version %d", f.Version)
	}
	g := New()
	for _, sn := range f.Nodes {
		rec := &nodeRec{
			id:     NodeID(sn.ID),
			labels: make(map[string]bool, len(sn.Labels)),
			props:  make(Props, len(sn.Keys)),
		}
		for _, l := range sn.Labels {
			rec.labels[l] = true
		}
		for i, k := range sn.Keys {
			rec.props[k] = decodeValue(sn.Vals[i])
		}
		g.nodes[rec.id] = rec
	}
	for _, se := range f.Edges {
		if _, ok := g.nodes[NodeID(se.From)]; !ok {
			return nil, fmt.Errorf("graphdb: edge %d references missing node %d", se.ID, se.From)
		}
		if _, ok := g.nodes[NodeID(se.To)]; !ok {
			return nil, fmt.Errorf("graphdb: edge %d references missing node %d", se.ID, se.To)
		}
		rec := &edgeRec{
			id:    EdgeID(se.ID),
			from:  NodeID(se.From),
			to:    NodeID(se.To),
			label: se.Label,
			props: make(Props, len(se.Keys)),
		}
		for i, k := range se.Keys {
			rec.props[k] = decodeValue(se.Vals[i])
		}
		g.edges[rec.id] = rec
		g.out[rec.from] = append(g.out[rec.from], rec)
		g.in[rec.to] = append(g.in[rec.to], rec)
	}
	g.nextNode = NodeID(f.NextNode)
	g.nextEdge = EdgeID(f.NextEdge)
	for _, ix := range f.Indexes {
		g.CreateIndex(ix.Label, ix.Prop)
	}
	return g, nil
}
