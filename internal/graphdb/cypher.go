package graphdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hypre/internal/predicate"
)

// Result is a Cypher query answer: named columns over value rows.
type Result struct {
	Columns []string
	Rows    [][]predicate.Value
}

// Query executes a small subset of the Cypher dialect the dissertation
// issues against Neo4j (§4.3):
//
//	START n=node(*) WHERE n.uid=2 RETURN n.predicate, n.intensity
//	      ORDER BY n.intensity DESC
//	START n=node(17) MATCH n -[:PREFERS]-> m RETURN id(n), id(m)
//	START n=nodes:uidIndex(uid=2) RETURN n.predicate LIMIT 10
//
// Grammar:
//
//	query   := START start [MATCH match] [WHERE cond (AND cond)*]
//	           RETURN item (',' item)* [ORDER BY item [ASC|DESC]]
//	           [SKIP int] [LIMIT int]
//	start   := var '=' 'node' '(' ('*' | int) ')'
//	         | var '=' 'nodes' ':' label '(' prop '=' literal ')'
//	match   := var '-[:' label ']->' var
//	cond    := var '.' prop cmpop literal
//	item    := 'id(' var ')' | var '.' prop
//
// It is intentionally tiny — just enough to express every query in the
// dissertation's text — but it is a real executor over the store, including
// index-backed START when an index on (label, prop) exists.
func (g *Graph) Query(src string) (*Result, error) {
	q, err := parseCypher(src)
	if err != nil {
		return nil, err
	}
	return g.execCypher(q)
}

type cypherQuery struct {
	startVar   string
	startAll   bool
	startID    NodeID
	startIdx   bool
	idxLabel   string
	idxProp    string
	idxVal     predicate.Value
	matchFrom  string
	matchLabel string
	matchTo    string
	hasMatch   bool
	conds      []cypherCond
	returns    []cypherItem
	orderBy    *cypherItem
	orderDesc  bool
	skip       int
	limit      int
	hasLimit   bool
}

type cypherCond struct {
	varName string
	prop    string
	op      predicate.Op
	val     predicate.Value
}

type cypherItem struct {
	isID    bool
	varName string
	prop    string
}

func (it cypherItem) column() string {
	if it.isID {
		return "id(" + it.varName + ")"
	}
	return it.varName + "." + it.prop
}

type binding map[string]NodeID

func (g *Graph) execCypher(q *cypherQuery) (*Result, error) {
	// 1. Start set.
	var startIDs []NodeID
	switch {
	case q.startAll:
		g.ForEachNode(func(id NodeID, _ []string, _ Props) bool {
			startIDs = append(startIDs, id)
			return true
		})
	case q.startIdx:
		startIDs = g.FindNodes(q.idxLabel, q.idxProp, q.idxVal)
	default:
		if !g.HasNode(q.startID) {
			return nil, fmt.Errorf("cypher: no node %d", q.startID)
		}
		startIDs = []NodeID{q.startID}
	}

	// 2. Expand MATCH.
	var rows []binding
	for _, id := range startIDs {
		if !q.hasMatch {
			rows = append(rows, binding{q.startVar: id})
			continue
		}
		if q.matchFrom != q.startVar {
			return nil, fmt.Errorf("cypher: MATCH must start at %q", q.startVar)
		}
		for _, e := range g.OutEdges(id, q.matchLabel) {
			rows = append(rows, binding{q.startVar: id, q.matchTo: e.To})
		}
	}

	// 3. WHERE.
	filtered := rows[:0]
	for _, b := range rows {
		ok := true
		for _, c := range q.conds {
			id, bound := b[c.varName]
			if !bound {
				ok = false
				break
			}
			v, has := g.Prop(id, c.prop)
			if !has {
				ok = false
				break
			}
			cmp := &predicate.Cmp{Attr: "x", Op: c.op, Val: c.val}
			if !cmp.Eval(predicate.MapRow{"x": v}) {
				ok = false
				break
			}
		}
		if ok {
			filtered = append(filtered, b)
		}
	}
	rows = filtered

	// 4. ORDER BY.
	if q.orderBy != nil {
		it := *q.orderBy
		key := func(b binding) predicate.Value {
			id, bound := b[it.varName]
			if !bound {
				return predicate.Null()
			}
			if it.isID {
				return predicate.Int(int64(id))
			}
			v, _ := g.Prop(id, it.prop)
			return v
		}
		sort.SliceStable(rows, func(i, j int) bool {
			c, ok := predicate.Compare(key(rows[i]), key(rows[j]))
			if !ok {
				// NULLs sort last regardless of direction.
				return key(rows[j]).IsNull() && !key(rows[i]).IsNull()
			}
			if q.orderDesc {
				return c > 0
			}
			return c < 0
		})
	}

	// 5. SKIP / LIMIT.
	if q.skip > 0 {
		if q.skip >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.skip:]
		}
	}
	if q.hasLimit && len(rows) > q.limit {
		rows = rows[:q.limit]
	}

	// 6. Projection.
	res := &Result{}
	for _, it := range q.returns {
		res.Columns = append(res.Columns, it.column())
	}
	for _, b := range rows {
		out := make([]predicate.Value, len(q.returns))
		for i, it := range q.returns {
			id, bound := b[it.varName]
			if !bound {
				return nil, fmt.Errorf("cypher: unbound variable %q in RETURN", it.varName)
			}
			if it.isID {
				out[i] = predicate.Int(int64(id))
			} else {
				v, _ := g.Prop(id, it.prop)
				out[i] = v
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// ---- parsing ----

type cyLexer struct {
	words []string
	pos   int
}

func newCyLexer(src string) *cyLexer {
	// Pad punctuation so strings.Fields tokenizes it; string literals are
	// protected by temporarily replacing spaces inside quotes.
	var sb strings.Builder
	inStr := byte(0)
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr != 0 {
			if c == inStr {
				inStr = 0
			}
			if c == ' ' {
				sb.WriteString("\x01")
			} else {
				sb.WriteByte(c)
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
			sb.WriteByte(c)
		case '(', ')', ',', '=', ':', '*', '[', ']':
			sb.WriteByte(' ')
			sb.WriteByte(c)
			sb.WriteByte(' ')
		case '<', '>':
			// keep <=, >=, <> glued
			sb.WriteByte(' ')
			sb.WriteByte(c)
			if i+1 < len(src) && (src[i+1] == '=' || (c == '<' && src[i+1] == '>')) {
				sb.WriteByte(src[i+1])
				i++
			}
			sb.WriteByte(' ')
		case '-':
			// '-[' or ']->' arrow pieces; also negative numbers.
			if i+1 < len(src) && src[i+1] == '[' {
				sb.WriteString(" -[ ")
				i++
			} else if i+1 < len(src) && src[i+1] == '>' {
				sb.WriteString(" -> ")
				i++
			} else {
				sb.WriteByte(c)
			}
		default:
			sb.WriteByte(c)
		}
	}
	words := strings.Fields(sb.String())
	for i, w := range words {
		words[i] = strings.ReplaceAll(w, "\x01", " ")
	}
	return &cyLexer{words: words}
}

func (l *cyLexer) peek() string {
	if l.pos >= len(l.words) {
		return ""
	}
	return l.words[l.pos]
}

func (l *cyLexer) next() string {
	w := l.peek()
	if w != "" {
		l.pos++
	}
	return w
}

func (l *cyLexer) expect(want string) error {
	w := l.next()
	if !strings.EqualFold(w, want) {
		return fmt.Errorf("cypher: expected %q, got %q", want, w)
	}
	return nil
}

func (l *cyLexer) keywordIs(kw string) bool { return strings.EqualFold(l.peek(), kw) }

func parseCypher(src string) (*cypherQuery, error) {
	l := newCyLexer(src)
	q := &cypherQuery{}
	if err := l.expect("START"); err != nil {
		return nil, err
	}
	q.startVar = l.next()
	if q.startVar == "" {
		return nil, fmt.Errorf("cypher: missing start variable")
	}
	if err := l.expect("="); err != nil {
		return nil, err
	}
	switch kw := l.next(); strings.ToLower(kw) {
	case "node":
		if err := l.expect("("); err != nil {
			return nil, err
		}
		arg := l.next()
		if arg == "*" {
			q.startAll = true
		} else {
			id, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("cypher: bad node id %q", arg)
			}
			q.startID = NodeID(id)
		}
		if err := l.expect(")"); err != nil {
			return nil, err
		}
	case "nodes":
		if err := l.expect(":"); err != nil {
			return nil, err
		}
		q.startIdx = true
		q.idxLabel = l.next()
		if err := l.expect("("); err != nil {
			return nil, err
		}
		q.idxProp = l.next()
		if err := l.expect("="); err != nil {
			return nil, err
		}
		v, err := parseCyLiteral(l.next())
		if err != nil {
			return nil, err
		}
		q.idxVal = v
		if err := l.expect(")"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cypher: expected node(...) or nodes:index(...), got %q", kw)
	}

	if l.keywordIs("MATCH") {
		l.next()
		q.hasMatch = true
		q.matchFrom = l.next()
		if err := l.expect("-["); err != nil {
			return nil, err
		}
		if err := l.expect(":"); err != nil {
			return nil, err
		}
		q.matchLabel = l.next()
		if err := l.expect("]"); err != nil {
			return nil, err
		}
		if err := l.expect("->"); err != nil {
			return nil, err
		}
		q.matchTo = l.next()
		if q.matchTo == "" {
			return nil, fmt.Errorf("cypher: missing MATCH target variable")
		}
	}

	if l.keywordIs("WHERE") {
		l.next()
		for {
			c, err := parseCyCond(l)
			if err != nil {
				return nil, err
			}
			q.conds = append(q.conds, c)
			if l.keywordIs("AND") {
				l.next()
				continue
			}
			break
		}
	}

	if err := l.expect("RETURN"); err != nil {
		return nil, err
	}
	for {
		it, err := parseCyItem(l)
		if err != nil {
			return nil, err
		}
		q.returns = append(q.returns, it)
		if l.peek() == "," {
			l.next()
			continue
		}
		break
	}

	if l.keywordIs("ORDER") {
		l.next()
		if err := l.expect("BY"); err != nil {
			return nil, err
		}
		it, err := parseCyItem(l)
		if err != nil {
			return nil, err
		}
		q.orderBy = &it
		if l.keywordIs("DESC") {
			l.next()
			q.orderDesc = true
		} else if l.keywordIs("ASC") {
			l.next()
		}
	}
	if l.keywordIs("SKIP") {
		l.next()
		n, err := strconv.Atoi(l.next())
		if err != nil {
			return nil, fmt.Errorf("cypher: bad SKIP: %v", err)
		}
		q.skip = n
	}
	if l.keywordIs("LIMIT") {
		l.next()
		n, err := strconv.Atoi(l.next())
		if err != nil {
			return nil, fmt.Errorf("cypher: bad LIMIT: %v", err)
		}
		q.limit = n
		q.hasLimit = true
	}
	if l.peek() != "" && l.peek() != ";" {
		return nil, fmt.Errorf("cypher: trailing input %q", l.peek())
	}
	return q, nil
}

func parseCyCond(l *cyLexer) (cypherCond, error) {
	ref := l.next() // var.prop
	varName, prop, ok := splitRef(ref)
	if !ok {
		return cypherCond{}, fmt.Errorf("cypher: bad property reference %q", ref)
	}
	opTok := l.next()
	var op predicate.Op
	switch opTok {
	case "=":
		op = predicate.OpEq
	case "<>":
		op = predicate.OpNe
	case "<":
		op = predicate.OpLt
	case "<=":
		op = predicate.OpLe
	case ">":
		op = predicate.OpGt
	case ">=":
		op = predicate.OpGe
	default:
		return cypherCond{}, fmt.Errorf("cypher: bad operator %q", opTok)
	}
	v, err := parseCyLiteral(l.next())
	if err != nil {
		return cypherCond{}, err
	}
	return cypherCond{varName: varName, prop: prop, op: op, val: v}, nil
}

func parseCyItem(l *cyLexer) (cypherItem, error) {
	w := l.next()
	if strings.EqualFold(w, "id") {
		if err := l.expect("("); err != nil {
			return cypherItem{}, err
		}
		v := l.next()
		if err := l.expect(")"); err != nil {
			return cypherItem{}, err
		}
		return cypherItem{isID: true, varName: v}, nil
	}
	varName, prop, ok := splitRef(w)
	if !ok {
		return cypherItem{}, fmt.Errorf("cypher: bad return item %q", w)
	}
	return cypherItem{varName: varName, prop: prop}, nil
}

func splitRef(s string) (varName, prop string, ok bool) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return "", "", false
	}
	return s[:i], s[i+1:], true
}

func parseCyLiteral(w string) (predicate.Value, error) {
	if w == "" {
		return predicate.Null(), fmt.Errorf("cypher: missing literal")
	}
	if w[0] == '\'' || w[0] == '"' {
		if len(w) < 2 || w[len(w)-1] != w[0] {
			return predicate.Null(), fmt.Errorf("cypher: unterminated string %q", w)
		}
		return predicate.String(w[1 : len(w)-1]), nil
	}
	if i, err := strconv.ParseInt(w, 10, 64); err == nil {
		return predicate.Int(i), nil
	}
	if f, err := strconv.ParseFloat(w, 64); err == nil {
		return predicate.Float(f), nil
	}
	return predicate.Null(), fmt.Errorf("cypher: bad literal %q", w)
}
