package obs

import (
	"encoding/json"
	"time"
)

// EngineCounters are the per-query engine observables a traced evaluation
// accumulates: how much of the store the scan layer actually touched, how
// hard the ranking algorithms worked, and where they stopped early. All
// adders are nil-safe through the owning Trace.
type EngineCounters struct {
	// BlocksScanned / BlocksSkipped split the base-table blocks the
	// streaming scans considered into evaluated vs zone-map-pruned.
	BlocksScanned int64 `json:"blocks_scanned,omitempty"`
	BlocksSkipped int64 `json:"blocks_skipped,omitempty"`
	// RowsSeen counts (pref, row) match pairs streamed into grade folds.
	RowsSeen int64 `json:"rows_seen,omitempty"`
	// TARounds is the sorted-access depth the TA loop reached; TAEarlyExit
	// reports the threshold rule halted before list exhaustion.
	TARounds    int64 `json:"ta_rounds,omitempty"`
	TAEarlyExit bool  `json:"ta_early_exit,omitempty"`
	// AnchorsUsed / CombosExpanded are the PEPS DFS observables: how many
	// anchor preferences seeded expansion and how many multi-predicate
	// combinations (each one bitmap intersection) were generated.
	AnchorsUsed    int64 `json:"anchors_used,omitempty"`
	CombosExpanded int64 `json:"combos_expanded,omitempty"`
	// PairsIntersected counts pair-table entries computed (one bitmap
	// intersection cardinality each).
	PairsIntersected int64 `json:"pairs_intersected,omitempty"`
	// TouchedRows is the delta-sync footprint when the trace covers a
	// maintenance pass.
	TouchedRows int64 `json:"touched_rows,omitempty"`
}

// Span is one timed stage of a trace. Off is the offset from the trace
// start; Depth is the nesting level at the time the span opened (0 = top
// level), so a reader can reconstruct the stage tree and TopLevelSum can
// avoid double-counting nested spans.
type Span struct {
	Name  string        `json:"name"`
	Off   time.Duration `json:"off_ns"`
	Dur   time.Duration `json:"dur_ns"`
	Depth int           `json:"depth"`
}

// Trace is one query's execution record: the route the serving tier chose,
// the stage spans, and the engine counters. A nil *Trace is the disabled
// state — every method checks the receiver first, so instrumented code
// threads the pointer unconditionally and pays one branch when tracing is
// off.
//
// A Trace is single-goroutine state: the single-flight leader's evaluation
// writes into the initiating caller's trace on the leader's goroutine, which
// is the same goroutine by construction (waiters' closures never run).
type Trace struct {
	begun time.Time

	// Route is the serving outcome (hit / miss / shared / bypass); Exec is
	// the execution path the router chose under a miss (plan_hit,
	// streaming, materialized, ta_cached).
	Route string
	Exec  string
	Query string
	K     int
	Err   string

	// Total is the end-to-end duration, set by Finish.
	Total time.Duration

	Spans []Span
	Eng   EngineCounters

	open []int32 // span stack: indexes into Spans
}

// NewTrace starts a trace. The clock re-anchors at the first StartSpan, so
// Total measures the traced call itself — scheduling delay between creating
// the trace and entering the instrumented code never counts.
func NewTrace() *Trace {
	return &Trace{begun: time.Now()}
}

// StartSpan opens a named stage and returns its handle (-1 when tracing is
// disabled). Spans may nest; close them LIFO with EndSpan. The first span
// re-anchors the trace clock (see NewTrace).
func (t *Trace) StartSpan(name string) int {
	if t == nil {
		return -1
	}
	i := len(t.Spans)
	var off time.Duration
	if i == 0 {
		t.begun = time.Now()
	} else {
		off = time.Since(t.begun)
	}
	t.Spans = append(t.Spans, Span{Name: name, Off: off, Depth: len(t.open)})
	t.open = append(t.open, int32(i))
	return i
}

// EndSpan closes the span opened by StartSpan. Closing out of order closes
// every span opened after it too (a defensive unwind, not an error).
func (t *Trace) EndSpan(id int) {
	if t == nil || id < 0 || id >= len(t.Spans) {
		return
	}
	now := time.Since(t.begun)
	for len(t.open) > 0 {
		top := int(t.open[len(t.open)-1])
		t.open = t.open[:len(t.open)-1]
		t.Spans[top].Dur = now - t.Spans[top].Off
		if top == id {
			return
		}
	}
}

// Transition closes span id and opens a successor with one shared clock
// reading, so consecutive stages tile with zero gap between them — the
// discipline that keeps TopLevelSum within a few clock reads of Total even
// on microsecond-scale requests. Like EndSpan it unwinds LIFO through
// anything opened after id. Returns the new span's handle (-1 when tracing
// is disabled).
func (t *Trace) Transition(id int, name string) int {
	if t == nil {
		return -1
	}
	now := time.Since(t.begun)
	if id >= 0 && id < len(t.Spans) {
		for len(t.open) > 0 {
			top := int(t.open[len(t.open)-1])
			t.open = t.open[:len(t.open)-1]
			t.Spans[top].Dur = now - t.Spans[top].Off
			if top == id {
				break
			}
		}
	}
	i := len(t.Spans)
	t.Spans = append(t.Spans, Span{Name: name, Off: now, Depth: len(t.open)})
	t.open = append(t.open, int32(i))
	return i
}

// SetRoute records the serving outcome.
func (t *Trace) SetRoute(route string) {
	if t != nil {
		t.Route = route
	}
}

// SetExec records the execution path the router chose.
func (t *Trace) SetExec(exec string) {
	if t != nil {
		t.Exec = exec
	}
}

// SetQuery records a human-readable query identity (the profile
// fingerprint). Callers should format the string only when t != nil.
func (t *Trace) SetQuery(q string) {
	if t != nil {
		t.Query = q
	}
}

// SetK records the requested answer size.
func (t *Trace) SetK(k int) {
	if t != nil {
		t.K = k
	}
}

// SetErr records a failed evaluation.
func (t *Trace) SetErr(err error) {
	if t != nil && err != nil {
		t.Err = err.Error()
	}
}

// AddBlocks accumulates streaming-scan footprint.
func (t *Trace) AddBlocks(scanned, skipped, rows int64) {
	if t != nil {
		t.Eng.BlocksScanned += scanned
		t.Eng.BlocksSkipped += skipped
		t.Eng.RowsSeen += rows
	}
}

// AddTA accumulates TA loop depth and the early-exit verdict.
func (t *Trace) AddTA(rounds int64, earlyExit bool) {
	if t != nil {
		t.Eng.TARounds += rounds
		t.Eng.TAEarlyExit = t.Eng.TAEarlyExit || earlyExit
	}
}

// AddPEPS accumulates DFS expansion counters.
func (t *Trace) AddPEPS(anchors, combos int64) {
	if t != nil {
		t.Eng.AnchorsUsed += anchors
		t.Eng.CombosExpanded += combos
	}
}

// AddPairs accumulates pair-table intersections.
func (t *Trace) AddPairs(n int64) {
	if t != nil {
		t.Eng.PairsIntersected += n
	}
}

// AddTouchedRows accumulates a delta sync's re-evaluated row count.
func (t *Trace) AddTouchedRows(n int64) {
	if t != nil {
		t.Eng.TouchedRows += n
	}
}

// Finish closes any still-open spans and stamps the total duration.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Since(t.begun)
	for len(t.open) > 0 {
		top := int(t.open[len(t.open)-1])
		t.open = t.open[:len(t.open)-1]
		t.Spans[top].Dur = now - t.Spans[top].Off
	}
	t.Total = now
}

// TopLevelSum is the summed duration of depth-0 spans — the coverage figure
// compared against Total: nested spans re-measure time their parents
// already carry, so only the top level tiles the query.
func (t *Trace) TopLevelSum() time.Duration {
	if t == nil {
		return 0
	}
	var sum time.Duration
	for _, s := range t.Spans {
		if s.Depth == 0 {
			sum += s.Dur
		}
	}
	return sum
}

// traceJSON is the wire shape of a trace.
type traceJSON struct {
	Route    string         `json:"route"`
	Exec     string         `json:"exec,omitempty"`
	Query    string         `json:"query,omitempty"`
	K        int            `json:"k"`
	TotalNs  int64          `json:"total_ns"`
	Err      string         `json:"err,omitempty"`
	Spans    []Span         `json:"spans"`
	Counters EngineCounters `json:"counters"`
}

// MarshalJSON renders the trace for the slow log and /debug/trace.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.Marshal(traceJSON{
		Route:    t.Route,
		Exec:     t.Exec,
		Query:    t.Query,
		K:        t.K,
		TotalNs:  t.Total.Nanoseconds(),
		Err:      t.Err,
		Spans:    t.Spans,
		Counters: t.Eng,
	})
}
