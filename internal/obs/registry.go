package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named monotonic counter registered in a Registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load reads the counter.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is a process-wide (or per-server) namespace of histograms,
// counters, and externally-owned counter groups (the cache's CacheCounters
// register as a group snapshot function, keeping obs dependency-free).
// Get-or-create methods are cheap enough to call once at wiring time; hot
// paths hold the returned *Histogram / *Counter directly.
type Registry struct {
	mu     sync.RWMutex
	hists  map[string]*Histogram
	ctrs   map[string]*Counter
	groups map[string]func() map[string]int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:  make(map[string]*Histogram),
		ctrs:   make(map[string]*Counter),
		groups: make(map[string]func() map[string]int64),
	}
}

// Histogram returns the named histogram, creating it on first use. Nil
// registries return nil (and a nil *Histogram must not be recorded into;
// callers gate on the registry being attached).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.ctrs[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.ctrs[name]; c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// RegisterGroup registers an externally-owned counter set under a name; fn
// is called at export time and must be safe for concurrent use (an atomic
// snapshot). Re-registering a name replaces the previous group.
func (r *Registry) RegisterGroup(name string, fn func() map[string]int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.groups[name] = fn
	r.mu.Unlock()
}

// WriteText renders every registered metric in a flat text exposition
// (prometheus-flavoured: one `metric{labels} value` per line, sorted for
// stable diffs). Histograms export count, sum, and the p50/p90/p99
// midpoints.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	ctrs := make(map[string]*Counter, len(r.ctrs))
	for k, v := range r.ctrs {
		ctrs[k] = v
	}
	groups := make(map[string]func() map[string]int64, len(r.groups))
	for k, v := range r.groups {
		groups[k] = v
	}
	r.mu.RUnlock()

	for _, name := range sortedKeys(hists) {
		s := hists[name].Snapshot()
		if _, err := fmt.Fprintf(w, "hypre_hist_count{name=%q} %d\n", name, s.Count); err != nil {
			return err
		}
		fmt.Fprintf(w, "hypre_hist_sum_ns{name=%q} %d\n", name, s.Sum)
		fmt.Fprintf(w, "hypre_hist_p50_ns{name=%q} %d\n", name, s.Quantile(0.50))
		fmt.Fprintf(w, "hypre_hist_p90_ns{name=%q} %d\n", name, s.Quantile(0.90))
		fmt.Fprintf(w, "hypre_hist_p99_ns{name=%q} %d\n", name, s.Quantile(0.99))
	}
	for _, name := range sortedKeys(ctrs) {
		fmt.Fprintf(w, "hypre_counter{name=%q} %d\n", name, ctrs[name].Load())
	}
	for _, name := range sortedKeys(groups) {
		snap := groups[name]()
		for _, field := range sortedKeys(snap) {
			fmt.Fprintf(w, "hypre_group{name=%q,field=%q} %d\n", name, field, snap[field])
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
