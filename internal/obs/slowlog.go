package obs

import (
	"sync"
	"time"
)

// SlowEntry is one logged slow query. Trace is present only when the query
// ran with tracing enabled (forced traces, the /debug/trace endpoint);
// untraced slow queries still log their summary line.
type SlowEntry struct {
	Seq     uint64        `json:"seq"`
	Route   string        `json:"route"`
	Query   string        `json:"query,omitempty"`
	K       int           `json:"k"`
	TotalNs int64         `json:"total_ns"`
	At      time.Time     `json:"at"`
	Trace   *Trace        `json:"trace,omitempty"`
	Total   time.Duration `json:"-"`
}

// SlowLog is a threshold-gated ring buffer of slow queries: queries at or
// above Threshold are kept, newest overwriting oldest once the ring wraps.
// The fast path for a below-threshold query is one duration compare.
type SlowLog struct {
	threshold time.Duration

	mu   sync.Mutex
	ring []SlowEntry
	seq  uint64 // total entries ever logged; ring[(seq-1) % len] is newest
}

// NewSlowLog builds a ring of the given capacity (minimum 1) keeping
// queries slower than or equal to threshold.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, 0, capacity)}
}

// Threshold returns the gating duration, so callers can skip building an
// entry (formatting the query string) for fast queries.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 1<<63 - 1
	}
	return l.threshold
}

// Observe logs one served query if it is slow enough. tr may be nil.
func (l *SlowLog) Observe(route, query string, k int, total time.Duration, tr *Trace) {
	if l == nil || total < l.threshold {
		return
	}
	e := SlowEntry{
		Route:   route,
		Query:   query,
		K:       k,
		TotalNs: total.Nanoseconds(),
		Total:   total,
		At:      time.Now(),
		Trace:   tr,
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[int((l.seq-1)%uint64(cap(l.ring)))] = e
	}
	l.mu.Unlock()
}

// Len reports how many entries the ring currently holds.
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}

// TotalLogged reports how many queries have ever crossed the threshold
// (entries beyond the ring capacity were overwritten).
func (l *SlowLog) TotalLogged() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Snapshot copies the retained entries oldest-first.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		out = append(out, l.ring...)
		return out
	}
	// Full ring: the oldest entry sits right after the newest write slot.
	start := int(l.seq % uint64(cap(l.ring)))
	out = append(out, l.ring[start:]...)
	out = append(out, l.ring[:start]...)
	return out
}
