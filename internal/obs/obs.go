// Package obs is the engine's observability layer: per-query traces with
// stage spans and engine counters, lock-cheap log-linear latency histograms,
// a process-wide registry, a threshold-gated slow-query log, and the debug
// HTTP surface (/metrics, /debug/slowlog, /debug/trace, pprof).
//
// The layer is zero-overhead when disabled: every Trace method is nil-safe
// (the disabled path is one predictable nil check, no allocation), and the
// serving tier only reads clocks when a registry, slow log, or trace is
// actually attached. obs depends on the standard library only, so every
// engine package (relstore, combine, topk, cache, delta) may import it
// without cycles.
package obs

// Stage names used by the engine's traced paths. Keeping them as shared
// constants means a trace from any layer names its spans consistently and
// the docs/tests can refer to stages by identity, not by copied strings.
const (
	// StageCanonicalize is profile canonicalization + fingerprinting.
	StageCanonicalize = "canonicalize"
	// StageLookup is the result/plan cache probe (including the staleness
	// stamp check).
	StageLookup = "cache_lookup"
	// StageFlight is the single-flight section: the leader's evaluation or
	// a waiter's wait, span-nested under it.
	StageFlight = "flight"
	// StageFootprint is predicate-footprint registration (one vectorized
	// scan per new predicate).
	StageFootprint = "footprint"
	// StagePlanTA is a plan hit: cached TA lists re-ranked for this k.
	StagePlanTA = "plan_ta"
	// StageBuildLists is grade-list construction over the evaluator's
	// bitmaps (includes any cold predicate scans it triggers).
	StageBuildLists = "build_lists"
	// StageTA is the Threshold Algorithm loop over built lists.
	StageTA = "ta"
	// StageStream is the block-lockstep streaming TA loop (scan + threshold
	// rule fused; per-block work is inseparable by design).
	StageStream = "stream"
	// StagePairBuild is pair-table construction.
	StagePairBuild = "pair_build"
	// StagePEPS is the PEPS DFS expansion.
	StagePEPS = "peps_dfs"
	// StageRank is final ranking/merging/cloning of the answer.
	StageRank = "rank"
	// StagePublish is the cache publish gate (entry construction + insert).
	StagePublish = "publish"
	// StageEvaluate is an uncached evaluation outside the single-flight
	// path (the stale-bypass route).
	StageEvaluate = "evaluate"
	// StageDeltaSync is one delta.Maintainer synchronization pass.
	StageDeltaSync = "delta_sync"
)
