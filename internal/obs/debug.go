package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// TraceRunner runs one query with tracing forced on and returns its trace —
// the EXPLAIN ANALYZE hook behind /debug/trace. The query string is
// surface-specific (the benchrunner wires a uid selector over its lab).
type TraceRunner func(query string, k int) (*Trace, error)

// DebugOptions wires the debug HTTP surface. Nil fields disable the
// corresponding endpoint (it answers 404 with an explanatory body).
type DebugOptions struct {
	Registry *Registry
	SlowLog  *SlowLog
	Trace    TraceRunner
}

// NewDebugMux builds the ops endpoint set:
//
//	/metrics         text exposition of the registry
//	/debug/slowlog   JSON array of retained slow-query entries
//	/debug/trace     run one query traced (?query=...&k=N), return the JSON trace
//	/debug/pprof/*   the standard runtime profiles
func NewDebugMux(opts DebugOptions) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Registry == nil {
			http.Error(w, "no registry attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = opts.Registry.WriteText(w)
	})
	mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, _ *http.Request) {
		if opts.SlowLog == nil {
			http.Error(w, "no slow log attached", http.StatusNotFound)
			return
		}
		writeJSON(w, struct {
			Threshold int64       `json:"threshold_ns"`
			Logged    uint64      `json:"total_logged"`
			Entries   []SlowEntry `json:"entries"`
		}{opts.SlowLog.Threshold().Nanoseconds(), opts.SlowLog.TotalLogged(), opts.SlowLog.Snapshot()})
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if opts.Trace == nil {
			http.Error(w, "no trace runner attached", http.StatusNotFound)
			return
		}
		k := 10
		if s := r.URL.Query().Get("k"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "bad k", http.StatusBadRequest)
				return
			}
			k = v
		}
		tr, err := opts.Trace(r.URL.Query().Get("query"), k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, tr)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
