package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSlowLogThresholdGate(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 8)
	l.Observe("hit", "fast", 10, 100*time.Microsecond, nil)
	if l.Len() != 0 || l.TotalLogged() != 0 {
		t.Fatal("below-threshold query was logged")
	}
	l.Observe("miss", "slow", 10, 2*time.Millisecond, nil)
	l.Observe("miss", "exact", 10, time.Millisecond, nil) // at-threshold keeps
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
}

func TestSlowLogWraparound(t *testing.T) {
	const capacity = 4
	l := NewSlowLog(0, capacity)
	for i := 1; i <= 10; i++ {
		l.Observe("miss", fmt.Sprintf("q%d", i), i, time.Duration(i)*time.Millisecond, nil)
	}
	if l.Len() != capacity {
		t.Fatalf("len = %d, want %d", l.Len(), capacity)
	}
	if l.TotalLogged() != 10 {
		t.Fatalf("total = %d, want 10", l.TotalLogged())
	}
	got := l.Snapshot()
	if len(got) != capacity {
		t.Fatalf("snapshot len = %d, want %d", len(got), capacity)
	}
	// Oldest-first: the ring keeps the newest capacity entries (7..10).
	for i, e := range got {
		wantSeq := uint64(10 - capacity + 1 + i)
		wantQ := fmt.Sprintf("q%d", wantSeq)
		if e.Seq != wantSeq || e.Query != wantQ {
			t.Fatalf("entry %d = seq %d query %q, want seq %d query %q",
				i, e.Seq, e.Query, wantSeq, wantQ)
		}
	}
}

// Nil slow logs are inert — the disabled path.
func TestSlowLogNil(t *testing.T) {
	var l *SlowLog
	l.Observe("miss", "q", 1, time.Hour, nil)
	if l.Len() != 0 || l.Snapshot() != nil || l.TotalLogged() != 0 {
		t.Fatal("nil slow log not inert")
	}
}

// Concurrent observers and snapshotters must not race (run under -race) and
// must account every above-threshold entry.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(0, 16)
	const (
		workers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = l.Snapshot()
			}
		}
	}()
	var obs sync.WaitGroup
	for w := 0; w < workers; w++ {
		obs.Add(1)
		go func(w int) {
			defer obs.Done()
			for i := 0; i < perW; i++ {
				l.Observe("miss", "q", w, time.Duration(i), nil)
			}
		}(w)
	}
	obs.Wait()
	close(stop)
	wg.Wait()
	if got := l.TotalLogged(); got != workers*perW {
		t.Fatalf("total logged = %d, want %d", got, workers*perW)
	}
	if l.Len() != 16 {
		t.Fatalf("len = %d, want 16", l.Len())
	}
}
