package obs

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// Every Trace method must be a no-op on a nil receiver — the zero-overhead
// disabled path instrumented code relies on.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	if id := tr.StartSpan(StageTA); id != -1 {
		t.Fatalf("nil StartSpan = %d, want -1", id)
	}
	tr.EndSpan(-1)
	tr.EndSpan(0)
	tr.SetRoute("hit")
	tr.SetExec("streaming")
	tr.SetQuery("q")
	tr.SetK(10)
	tr.SetErr(errors.New("x"))
	tr.AddBlocks(1, 2, 3)
	tr.AddTA(4, true)
	tr.AddPEPS(5, 6)
	tr.AddPairs(7)
	tr.AddTouchedRows(8)
	tr.Finish()
	if tr.TopLevelSum() != 0 {
		t.Fatal("nil TopLevelSum != 0")
	}
	buf, err := json.Marshal(tr)
	if err != nil || string(buf) != "null" {
		t.Fatalf("nil trace marshals to %q (%v)", buf, err)
	}
}

func TestTraceSpanNesting(t *testing.T) {
	tr := NewTrace()
	a := tr.StartSpan("outer")
	b := tr.StartSpan("inner")
	tr.EndSpan(b)
	tr.EndSpan(a)
	c := tr.StartSpan("second")
	tr.EndSpan(c)
	tr.Finish()

	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	if tr.Spans[0].Depth != 0 || tr.Spans[1].Depth != 1 || tr.Spans[2].Depth != 0 {
		t.Fatalf("depths = %d,%d,%d, want 0,1,0",
			tr.Spans[0].Depth, tr.Spans[1].Depth, tr.Spans[2].Depth)
	}
	for i, s := range tr.Spans {
		if s.Dur < 0 {
			t.Fatalf("span %d has negative duration", i)
		}
	}
	if tr.Spans[1].Dur > tr.Spans[0].Dur {
		t.Fatal("inner span outlasted its parent")
	}
	// Top-level sum counts only depth-0 spans.
	if sum := tr.TopLevelSum(); sum != tr.Spans[0].Dur+tr.Spans[2].Dur {
		t.Fatalf("TopLevelSum = %v, want %v", sum, tr.Spans[0].Dur+tr.Spans[2].Dur)
	}
	if tr.Total < tr.TopLevelSum() {
		t.Fatalf("total %v < top-level sum %v", tr.Total, tr.TopLevelSum())
	}
}

// Finish must close spans left open (the defensive unwind), and EndSpan of
// an outer span closes unclosed inner spans with it.
func TestTraceUnwind(t *testing.T) {
	tr := NewTrace()
	a := tr.StartSpan("outer")
	_ = tr.StartSpan("inner-left-open")
	tr.EndSpan(a)
	if got := len(tr.open); got != 0 {
		t.Fatalf("open stack = %d after closing outer, want 0", got)
	}
	_ = tr.StartSpan("tail-left-open")
	tr.Finish()
	if got := len(tr.open); got != 0 {
		t.Fatalf("open stack = %d after Finish, want 0", got)
	}
	for i, s := range tr.Spans {
		if s.Off+s.Dur > tr.Total {
			t.Fatalf("span %d [%v +%v] extends past total %v", i, s.Off, s.Dur, tr.Total)
		}
	}
}

func TestTraceJSONShape(t *testing.T) {
	tr := NewTrace()
	tr.SetRoute("miss")
	tr.SetExec("streaming")
	tr.SetQuery("fp:abcd")
	tr.SetK(25)
	sp := tr.StartSpan(StageStream)
	time.Sleep(time.Millisecond)
	tr.AddBlocks(10, 5, 1000)
	tr.AddTA(3, true)
	tr.EndSpan(sp)
	tr.Finish()

	buf, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Route   string `json:"route"`
		Exec    string `json:"exec"`
		Query   string `json:"query"`
		K       int    `json:"k"`
		TotalNs int64  `json:"total_ns"`
		Spans   []struct {
			Name  string `json:"name"`
			OffNs int64  `json:"off_ns"`
			DurNs int64  `json:"dur_ns"`
			Depth int    `json:"depth"`
		} `json:"spans"`
		Counters struct {
			BlocksScanned int64 `json:"blocks_scanned"`
			BlocksSkipped int64 `json:"blocks_skipped"`
			RowsSeen      int64 `json:"rows_seen"`
			TARounds      int64 `json:"ta_rounds"`
			TAEarlyExit   bool  `json:"ta_early_exit"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Route != "miss" || got.Exec != "streaming" || got.K != 25 {
		t.Fatalf("header fields wrong: %+v", got)
	}
	if got.TotalNs < time.Millisecond.Nanoseconds() {
		t.Fatalf("total_ns = %d, want >= 1ms", got.TotalNs)
	}
	if len(got.Spans) != 1 || got.Spans[0].Name != StageStream || got.Spans[0].DurNs <= 0 {
		t.Fatalf("spans wrong: %+v", got.Spans)
	}
	if got.Counters.BlocksScanned != 10 || got.Counters.BlocksSkipped != 5 ||
		got.Counters.RowsSeen != 1000 || got.Counters.TARounds != 3 || !got.Counters.TAEarlyExit {
		t.Fatalf("counters wrong: %+v", got.Counters)
	}
}
