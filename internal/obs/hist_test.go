package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Buckets must tile the value range: every value lands in exactly one
// bucket whose [low, nextLow) range contains it, and bucket lows are
// strictly increasing.
func TestHistBucketsTile(t *testing.T) {
	for i := 1; i < histBuckets; i++ {
		if bucketLow(i) <= bucketLow(i-1) {
			t.Fatalf("bucketLow not increasing at %d: %d <= %d", i, bucketLow(i), bucketLow(i-1))
		}
	}
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 33, 1000, 123456, 1 << 30, 1 << 41, 1<<41 + 12345, 1 << 50}
	for i := 0; i < 4096; i++ {
		vals = append(vals, rand.Int63n(1<<42))
	}
	for _, v := range vals {
		b := bucketOf(v)
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if v >= 1<<42 {
			continue // clamped into the last bucket by design
		}
		lo := bucketLow(b)
		hi := bucketLow(b + 1)
		if v < lo || v >= hi {
			t.Fatalf("value %d landed in bucket %d [%d, %d)", v, b, lo, hi)
		}
	}
}

// The histogram quantile must agree with the exact nearest-rank percentile
// within the log-linear bucket width (1/16 of an octave — use 10% slack to
// cover the midpoint convention).
func TestHistQuantileVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	lats := make([]time.Duration, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform latencies from ~100ns to ~100ms, the serving range.
		d := time.Duration(100 * math.Pow(10, rng.Float64()*6))
		lats = append(lats, d)
		h.RecordDuration(d)
	}
	s := h.Snapshot()
	if s.Count != int64(len(lats)) {
		t.Fatalf("count = %d, want %d", s.Count, len(lats))
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		exact := Percentile(lats, p)
		approx := s.QuantileDuration(p)
		lo := float64(exact) * 0.90
		hi := float64(exact) * 1.10
		if float64(approx) < lo || float64(approx) > hi {
			t.Fatalf("p%.0f: hist %v vs exact %v beyond bucket tolerance", p*100, approx, exact)
		}
	}
}

// Percentile must preserve the exact semantics of the experiments' old
// hand-rolled sort (nearest rank at index p*(n-1)) — the satellite's
// old-vs-new agreement pin.
func TestPercentileMatchesLegacySort(t *testing.T) {
	legacy := func(lats []time.Duration, p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		s := make([]time.Duration, len(lats))
		copy(s, lats)
		for i := 1; i < len(s); i++ { // insertion sort: independent oracle
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s[int(p*float64(len(s)-1))]
	}
	rng := rand.New(rand.NewSource(42))
	fixed := []time.Duration{5, 1, 9, 3, 3, 7, 2, 8, 6, 4}
	samples := [][]time.Duration{nil, {17}, fixed}
	for i := 0; i < 20; i++ {
		n := 1 + rng.Intn(200)
		s := make([]time.Duration, n)
		for j := range s {
			s[j] = time.Duration(rng.Int63n(1 << 30))
		}
		samples = append(samples, s)
	}
	for _, s := range samples {
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if got, want := Percentile(s, p), legacy(s, p); got != want {
				t.Fatalf("Percentile(%d samples, %.2f) = %v, want %v", len(s), p, got, want)
			}
		}
	}
	// Percentile must not mutate its input.
	in := append([]time.Duration(nil), fixed...)
	Percentile(in, 0.5)
	for i := range in {
		if in[i] != fixed[i] {
			t.Fatal("Percentile mutated its input slice")
		}
	}
}

// 16 goroutines recording while others snapshot: no lost counts at the end,
// no races (run under -race by CI).
func TestHistConcurrentRecordSnapshot(t *testing.T) {
	var h Histogram
	const (
		workers = 16
		perW    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ { // concurrent snapshotters
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = h.Snapshot()
				}
			}
		}()
	}
	var rec sync.WaitGroup
	for w := 0; w < workers; w++ {
		rec.Add(1)
		go func(w int) {
			defer rec.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				h.Record(rng.Int63n(1 << 32))
			}
		}(w)
	}
	rec.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if want := int64(workers * perW); s.Count != want {
		t.Fatalf("lost samples: count = %d, want %d", s.Count, want)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(i)
		b.Record(i * 1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d, want 200", sa.Count)
	}
	if want := sb.Sum + 99*100/2; sa.Sum != want {
		t.Fatalf("merged sum = %d, want %d", sa.Sum, want)
	}
}
