package obs

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free log-linear latency histogram: each power-of-two
// octave splits into 16 linear sub-buckets (HDR-style), so relative bucket
// error is bounded by 1/16 everywhere while the whole range from 1 ns to
// ~35 minutes fits in a few hundred counters. Counters are sharded to keep
// concurrent recorders off each other's cache lines; Record is one hash,
// one index computation, and one atomic add.
//
// The zero value is ready to use.
type Histogram struct {
	shards [histShards]histShard
}

const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per octave

	// maxExp caps the tracked range at 2^(maxExp+1)-1 ns (~36.6 min);
	// larger values clamp into the last bucket. The cap keeps each shard's
	// counter array a few KB instead of tracking the full int64 range.
	maxExp      = 41
	histBuckets = (maxExp - histSubBits + 2) * histSub

	histShards    = 4
	histShardMask = histShards - 1
)

type histShard struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	_      [48]byte // keep neighbouring shards' hot tails off one line
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	if exp > maxExp {
		return histBuckets - 1
	}
	sub := int((uint64(v) >> (uint(exp) - histSubBits)) & (histSub - 1))
	return (exp-histSubBits+1)*histSub + sub
}

// bucketLow is the smallest value mapping to bucket i.
func bucketLow(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	oct := i / histSub
	sub := i % histSub
	return int64(histSub+sub) << uint(oct-1)
}

// Record adds one sample (negative values clamp to 0). Nil histograms drop
// the sample — same discipline as Counter.Add, so callers wired to an
// optional registry need no branch of their own.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	// Spread concurrent recorders over shards by a cheap value hash; equal
	// values from different goroutines usually still split because latency
	// samples rarely collide exactly.
	s := &h.shards[(uint64(v)*0x9E3779B97F4A7C15)>>62&histShardMask]
	s.counts[bucketOf(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// RecordDuration adds one latency sample.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// HistSnapshot is a merged point-in-time copy of a histogram: plain values,
// safe to aggregate, quantile, and serialize.
type HistSnapshot struct {
	Counts [histBuckets]int64
	Count  int64
	Sum    int64
}

// Snapshot merges the shards into plain counters. Individual loads are
// atomic; the snapshot as a whole is approximate under concurrent traffic,
// which is what a metrics export needs.
func (h *Histogram) Snapshot() HistSnapshot {
	var out HistSnapshot
	for i := range h.shards {
		s := &h.shards[i]
		for b := range s.counts {
			out.Counts[b] += s.counts[b].Load()
		}
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
	}
	return out
}

// Merge folds another snapshot into this one.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for b := range s.Counts {
		s.Counts[b] += o.Counts[b]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) by nearest rank over the
// buckets, reporting the midpoint of the selected bucket — within the
// 1/16-octave bucket width of the exact sample quantile.
func (s *HistSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Same rank convention as Percentile: index p*(n-1) of the sorted
	// sample, so the two agree up to bucket resolution.
	target := int64(p * float64(s.Count-1))
	var cum int64
	for b, c := range s.Counts {
		cum += c
		if cum > target {
			lo := bucketLow(b)
			hi := bucketLow(b+1) - 1
			return lo + (hi-lo)/2
		}
	}
	return bucketLow(histBuckets - 1) // unreachable unless counts raced
}

// QuantileDuration is Quantile for latency histograms.
func (s *HistSnapshot) QuantileDuration(p float64) time.Duration {
	return time.Duration(s.Quantile(p))
}

// Mean is the average recorded value (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Percentile is the exact nearest-rank p-quantile (0 ≤ p ≤ 1) of a latency
// sample, on a sorted copy — the shared helper behind the experiments'
// reported percentiles (the histograms trade this exactness for O(1)
// concurrent recording).
func Percentile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
