package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("serve_hit").Record(1500)
	reg.Counter("demo_total").Add(3)
	reg.RegisterGroup("cache", func() map[string]int64 {
		return map[string]int64{"hits": 42}
	})
	slow := NewSlowLog(0, 4)
	slow.Observe("miss", "q1", 10, 5*time.Millisecond, nil)

	mux := NewDebugMux(DebugOptions{
		Registry: reg,
		SlowLog:  slow,
		Trace: func(query string, k int) (*Trace, error) {
			if query == "boom" {
				return nil, fmt.Errorf("no such query")
			}
			tr := NewTrace()
			tr.SetRoute("miss")
			tr.SetQuery(query)
			tr.SetK(k)
			sp := tr.StartSpan(StageStream)
			tr.AddBlocks(4, 2, 99)
			tr.EndSpan(sp)
			tr.Finish()
			return tr, nil
		},
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`hypre_hist_count{name="serve_hit"} 1`,
		`hypre_hist_p50_ns{name="serve_hit"}`,
		`hypre_counter{name="demo_total"} 3`,
		`hypre_group{name="cache",field="hits"} 42`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get("/debug/slowlog")
	if code != 200 {
		t.Fatalf("/debug/slowlog status %d", code)
	}
	var sl struct {
		Logged  uint64      `json:"total_logged"`
		Entries []SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &sl); err != nil {
		t.Fatalf("slowlog not JSON: %v\n%s", err, body)
	}
	if sl.Logged != 1 || len(sl.Entries) != 1 || sl.Entries[0].Query != "q1" {
		t.Fatalf("slowlog shape wrong: %+v", sl)
	}

	code, body = get("/debug/trace?query=u7&k=25")
	if code != 200 {
		t.Fatalf("/debug/trace status %d: %s", code, body)
	}
	var tj struct {
		Route string `json:"route"`
		Query string `json:"query"`
		K     int    `json:"k"`
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
		Counters struct {
			BlocksScanned int64 `json:"blocks_scanned"`
		} `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &tj); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, body)
	}
	if tj.Route != "miss" || tj.Query != "u7" || tj.K != 25 ||
		len(tj.Spans) != 1 || tj.Spans[0].Name != StageStream ||
		tj.Counters.BlocksScanned != 4 {
		t.Fatalf("trace shape wrong: %s", body)
	}

	if code, _ := get("/debug/trace?query=boom"); code != 400 {
		t.Fatalf("failing trace runner: status %d, want 400", code)
	}
	if code, _ := get("/debug/trace?query=x&k=zero"); code != 400 {
		t.Fatalf("bad k: status %d, want 400", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestDebugEndpointsDetached(t *testing.T) {
	srv := httptest.NewServer(NewDebugMux(DebugOptions{}))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/slowlog", "/debug/trace"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Fatalf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}
