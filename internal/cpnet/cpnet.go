// Package cpnet implements Conditional Preference Networks (Definition 12 /
// Fig. 3): a directed graph over attributes where each node carries a
// conditional preference table (CPT) ordering its values given its
// parents' values. The dissertation surveys CP-nets as the AI-side
// formalism for contextual qualitative preferences; this implementation
// provides construction, validation, the improving-flip relation, and
// ceteris-paribus dominance via flip-sequence search — enough to run the
// genre/director example of Fig. 3.
package cpnet

import (
	"fmt"
	"sort"
	"strings"
)

// Net is a CP-net over named attributes.
type Net struct {
	attrs   []string
	domains map[string][]string
	parents map[string][]string
	cpts    map[string]map[string][]string // attr -> parent-assignment key -> value order (best first)
}

// New creates an empty net.
func New() *Net {
	return &Net{
		domains: map[string][]string{},
		parents: map[string][]string{},
		cpts:    map[string]map[string][]string{},
	}
}

// AddAttr declares an attribute with its value domain.
func (n *Net) AddAttr(name string, domain ...string) error {
	if _, dup := n.domains[name]; dup {
		return fmt.Errorf("cpnet: duplicate attribute %q", name)
	}
	if len(domain) == 0 {
		return fmt.Errorf("cpnet: attribute %q needs a domain", name)
	}
	seen := map[string]bool{}
	for _, v := range domain {
		if seen[v] {
			return fmt.Errorf("cpnet: duplicate domain value %q for %q", v, name)
		}
		seen[v] = true
	}
	n.attrs = append(n.attrs, name)
	n.domains[name] = append([]string(nil), domain...)
	n.cpts[name] = map[string][]string{}
	return nil
}

// SetParents declares the ancestors Z_i of an attribute (the edges of the
// CP-net graph). Parents must exist and must not create a cycle.
func (n *Net) SetParents(attr string, parents ...string) error {
	if _, ok := n.domains[attr]; !ok {
		return fmt.Errorf("cpnet: unknown attribute %q", attr)
	}
	for _, p := range parents {
		if _, ok := n.domains[p]; !ok {
			return fmt.Errorf("cpnet: unknown parent %q", p)
		}
		if p == attr {
			return fmt.Errorf("cpnet: %q cannot be its own parent", attr)
		}
	}
	old := n.parents[attr]
	n.parents[attr] = append([]string(nil), parents...)
	if n.hasCycle() {
		n.parents[attr] = old
		return fmt.Errorf("cpnet: parents of %q would create a cycle", attr)
	}
	return nil
}

func (n *Net) hasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(a string) bool
	visit = func(a string) bool {
		color[a] = gray
		for _, p := range n.parents[a] {
			switch color[p] {
			case gray:
				return true
			case white:
				if visit(p) {
					return true
				}
			}
		}
		color[a] = black
		return false
	}
	for _, a := range n.attrs {
		if color[a] == white && visit(a) {
			return true
		}
	}
	return false
}

// SetCPT records the value order (best first) of attr under a parent
// assignment. The assignment maps each declared parent to one of its
// domain values; order must be a permutation of attr's domain.
func (n *Net) SetCPT(attr string, assignment map[string]string, order ...string) error {
	dom, ok := n.domains[attr]
	if !ok {
		return fmt.Errorf("cpnet: unknown attribute %q", attr)
	}
	if len(order) != len(dom) {
		return fmt.Errorf("cpnet: CPT order for %q must list all %d values", attr, len(dom))
	}
	want := map[string]bool{}
	for _, v := range dom {
		want[v] = true
	}
	for _, v := range order {
		if !want[v] {
			return fmt.Errorf("cpnet: CPT value %q not in domain of %q (or duplicated)", v, attr)
		}
		delete(want, v)
	}
	key, err := n.assignmentKey(attr, assignment)
	if err != nil {
		return err
	}
	n.cpts[attr][key] = append([]string(nil), order...)
	return nil
}

func (n *Net) assignmentKey(attr string, assignment map[string]string) (string, error) {
	ps := n.parents[attr]
	if len(assignment) != len(ps) {
		return "", fmt.Errorf("cpnet: assignment for %q must cover exactly its %d parents", attr, len(ps))
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		v, ok := assignment[p]
		if !ok {
			return "", fmt.Errorf("cpnet: assignment for %q missing parent %q", attr, p)
		}
		if !n.inDomain(p, v) {
			return "", fmt.Errorf("cpnet: %q is not a value of parent %q", v, p)
		}
		parts[i] = p + "=" + v
	}
	return strings.Join(parts, ","), nil
}

func (n *Net) inDomain(attr, v string) bool {
	for _, d := range n.domains[attr] {
		if d == v {
			return true
		}
	}
	return false
}

// Outcome is a complete assignment: attribute -> value.
type Outcome map[string]string

// Validate checks that the outcome assigns a domain value to every
// attribute.
func (n *Net) Validate(o Outcome) error {
	if len(o) != len(n.attrs) {
		return fmt.Errorf("cpnet: outcome must assign all %d attributes", len(n.attrs))
	}
	for _, a := range n.attrs {
		v, ok := o[a]
		if !ok {
			return fmt.Errorf("cpnet: outcome missing attribute %q", a)
		}
		if !n.inDomain(a, v) {
			return fmt.Errorf("cpnet: %q is not a value of %q", v, a)
		}
	}
	return nil
}

// valueRank returns the position of v in attr's CPT order under the
// outcome's parent values (0 = best); an error if the CPT row is missing.
func (n *Net) valueRank(attr string, o Outcome) (int, error) {
	assignment := map[string]string{}
	for _, p := range n.parents[attr] {
		assignment[p] = o[p]
	}
	key, err := n.assignmentKey(attr, assignment)
	if err != nil {
		return 0, err
	}
	order, ok := n.cpts[attr][key]
	if !ok {
		return 0, fmt.Errorf("cpnet: no CPT row for %q under %q", attr, key)
	}
	for i, v := range order {
		if v == o[attr] {
			return i, nil
		}
	}
	return 0, fmt.Errorf("cpnet: value %q not in CPT order of %q", o[attr], attr)
}

// ImprovingFlip reports whether changing exactly attribute attr turns worse
// into better, all else equal, according to attr's CPT under the shared
// parent context — the single ceteris-paribus step of CP-net semantics.
func (n *Net) ImprovingFlip(worse, better Outcome, attr string) (bool, error) {
	if err := n.Validate(worse); err != nil {
		return false, err
	}
	if err := n.Validate(better); err != nil {
		return false, err
	}
	for _, a := range n.attrs {
		if a != attr && worse[a] != better[a] {
			return false, nil
		}
	}
	if worse[attr] == better[attr] {
		return false, nil
	}
	rw, err := n.valueRank(attr, worse)
	if err != nil {
		return false, err
	}
	rb, err := n.valueRank(attr, better)
	if err != nil {
		return false, err
	}
	return rb < rw, nil
}

// Dominates reports whether a is preferred over b: a sequence of improving
// flips leads from b to a. This is the standard (expensive) dominance
// query, answered by BFS over the outcome space; domains here are small
// (the Fig. 3 scale), so exhaustive search is fine.
func (n *Net) Dominates(a, b Outcome) (bool, error) {
	if err := n.Validate(a); err != nil {
		return false, err
	}
	if err := n.Validate(b); err != nil {
		return false, err
	}
	target := outcomeKey(n.attrs, a)
	if target == outcomeKey(n.attrs, b) {
		return false, nil
	}
	seen := map[string]bool{outcomeKey(n.attrs, b): true}
	queue := []Outcome{cloneOutcome(b)}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, attr := range n.attrs {
			for _, v := range n.domains[attr] {
				if v == cur[attr] {
					continue
				}
				next := cloneOutcome(cur)
				next[attr] = v
				ok, err := n.ImprovingFlip(cur, next, attr)
				if err != nil {
					return false, err
				}
				if !ok {
					continue
				}
				k := outcomeKey(n.attrs, next)
				if k == target {
					return true, nil
				}
				if !seen[k] {
					seen[k] = true
					queue = append(queue, next)
				}
			}
		}
	}
	return false, nil
}

// Order returns all outcomes topologically sorted from most to least
// preferred (a linear extension of the dominance order), computed by
// repeatedly emitting outcomes not dominated by any remaining one. Only
// usable at toy scale; the Fig. 3 example has 4 outcomes.
func (n *Net) Order() ([]Outcome, error) {
	all := n.allOutcomes()
	type node struct {
		o   Outcome
		key string
	}
	var nodes []node
	for _, o := range all {
		nodes = append(nodes, node{o: o, key: outcomeKey(n.attrs, o)})
	}
	dominated := map[string]map[string]bool{} // key -> set of keys dominating it
	for _, x := range nodes {
		dominated[x.key] = map[string]bool{}
	}
	for _, x := range nodes {
		for _, y := range nodes {
			if x.key == y.key {
				continue
			}
			ok, err := n.Dominates(x.o, y.o)
			if err != nil {
				return nil, err
			}
			if ok {
				dominated[y.key][x.key] = true
			}
		}
	}
	var out []Outcome
	emitted := map[string]bool{}
	for len(out) < len(nodes) {
		progress := false
		for _, x := range nodes {
			if emitted[x.key] {
				continue
			}
			ready := true
			for domKey := range dominated[x.key] {
				if !emitted[domKey] {
					ready = false
					break
				}
			}
			if ready {
				out = append(out, x.o)
				emitted[x.key] = true
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("cpnet: dominance relation is cyclic")
		}
	}
	return out, nil
}

func (n *Net) allOutcomes() []Outcome {
	outs := []Outcome{{}}
	for _, a := range n.attrs {
		var next []Outcome
		for _, o := range outs {
			for _, v := range n.domains[a] {
				c := cloneOutcome(o)
				c[a] = v
				next = append(next, c)
			}
		}
		outs = next
	}
	return outs
}

func cloneOutcome(o Outcome) Outcome {
	c := make(Outcome, len(o))
	for k, v := range o {
		c[k] = v
	}
	return c
}

func outcomeKey(attrs []string, o Outcome) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = a + "=" + o[a]
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
