package cpnet

import "testing"

// fig3Net builds the Fig. 3 CP-net: genre with comedy > drama; director
// depends on genre with comedy: W.Allen > M.Curtiz and drama: M.Curtiz >
// W.Allen.
func fig3Net(t *testing.T) *Net {
	t.Helper()
	n := New()
	if err := n.AddAttr("genre", "comedy", "drama"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddAttr("director", "W.Allen", "M.Curtiz"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetParents("director", "genre"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetCPT("genre", nil, "comedy", "drama"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetCPT("director", map[string]string{"genre": "comedy"}, "W.Allen", "M.Curtiz"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetCPT("director", map[string]string{"genre": "drama"}, "M.Curtiz", "W.Allen"); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConstructionValidation(t *testing.T) {
	n := New()
	if err := n.AddAttr("a"); err == nil {
		t.Error("empty domain accepted")
	}
	if err := n.AddAttr("a", "x", "x"); err == nil {
		t.Error("duplicate domain value accepted")
	}
	if err := n.AddAttr("a", "x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddAttr("a", "x"); err == nil {
		t.Error("duplicate attribute accepted")
	}
	if err := n.SetParents("a", "missing"); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := n.SetParents("a", "a"); err == nil {
		t.Error("self parent accepted")
	}
	if err := n.SetParents("missing", "a"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestCycleDetection(t *testing.T) {
	n := New()
	n.AddAttr("a", "1", "2")
	n.AddAttr("b", "1", "2")
	if err := n.SetParents("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetParents("b", "a"); err == nil {
		t.Error("cycle accepted")
	}
	// The failed assignment must not have corrupted the net.
	if err := n.SetParents("b"); err != nil {
		t.Fatal(err)
	}
}

func TestSetCPTValidation(t *testing.T) {
	n := fig3Net(t)
	if err := n.SetCPT("genre", nil, "comedy"); err == nil {
		t.Error("short order accepted")
	}
	if err := n.SetCPT("genre", nil, "comedy", "comedy"); err == nil {
		t.Error("duplicated order accepted")
	}
	if err := n.SetCPT("director", map[string]string{}, "W.Allen", "M.Curtiz"); err == nil {
		t.Error("missing parent assignment accepted")
	}
	if err := n.SetCPT("director", map[string]string{"genre": "horror"}, "W.Allen", "M.Curtiz"); err == nil {
		t.Error("out-of-domain parent value accepted")
	}
	if err := n.SetCPT("missing", nil, "x"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestValidateOutcome(t *testing.T) {
	n := fig3Net(t)
	if err := n.Validate(Outcome{"genre": "comedy", "director": "W.Allen"}); err != nil {
		t.Fatal(err)
	}
	if err := n.Validate(Outcome{"genre": "comedy"}); err == nil {
		t.Error("partial outcome accepted")
	}
	if err := n.Validate(Outcome{"genre": "horror", "director": "W.Allen"}); err == nil {
		t.Error("out-of-domain outcome accepted")
	}
}

func TestImprovingFlip(t *testing.T) {
	n := fig3Net(t)
	comedyCurtiz := Outcome{"genre": "comedy", "director": "M.Curtiz"}
	comedyAllen := Outcome{"genre": "comedy", "director": "W.Allen"}
	dramaAllen := Outcome{"genre": "drama", "director": "W.Allen"}

	// Under comedy, W.Allen improves on M.Curtiz.
	ok, err := n.ImprovingFlip(comedyCurtiz, comedyAllen, "director")
	if err != nil || !ok {
		t.Errorf("flip = %v %v", ok, err)
	}
	// The reverse is not improving.
	ok, _ = n.ImprovingFlip(comedyAllen, comedyCurtiz, "director")
	if ok {
		t.Error("worsening flip accepted")
	}
	// Flipping two attributes at once is not a flip.
	ok, _ = n.ImprovingFlip(dramaAllen, comedyCurtiz, "director")
	if ok {
		t.Error("double change accepted")
	}
	// Same outcome is not a flip.
	ok, _ = n.ImprovingFlip(comedyAllen, comedyAllen, "director")
	if ok {
		t.Error("no-op accepted")
	}
}

func TestDominanceFig3(t *testing.T) {
	n := fig3Net(t)
	best := Outcome{"genre": "comedy", "director": "W.Allen"}
	second := Outcome{"genre": "comedy", "director": "M.Curtiz"}
	third := Outcome{"genre": "drama", "director": "M.Curtiz"}
	worst := Outcome{"genre": "drama", "director": "W.Allen"}

	cases := []struct {
		a, b Outcome
		want bool
	}{
		{best, second, true},
		{best, third, true},
		{best, worst, true},
		{second, best, false},
		{third, worst, true},
		{second, third, true}, // comedy/Curtiz -> flip genre? drama:Curtiz best under drama... check below
		{worst, best, false},
		{best, best, false},
	}
	for _, c := range cases {
		got, err := n.Dominates(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrderFig3(t *testing.T) {
	n := fig3Net(t)
	order, err := n.Order()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("outcomes = %d", len(order))
	}
	// The classic CP-net total order for this example:
	// comedy/Allen > comedy/Curtiz > drama/Curtiz > drama/Allen.
	want := []Outcome{
		{"genre": "comedy", "director": "W.Allen"},
		{"genre": "comedy", "director": "M.Curtiz"},
		{"genre": "drama", "director": "M.Curtiz"},
		{"genre": "drama", "director": "W.Allen"},
	}
	for i, w := range want {
		if order[i]["genre"] != w["genre"] || order[i]["director"] != w["director"] {
			t.Errorf("position %d = %v, want %v", i, order[i], w)
		}
	}
}

func TestDominatesMissingCPTRow(t *testing.T) {
	n := New()
	n.AddAttr("genre", "comedy", "drama")
	n.AddAttr("director", "A", "B")
	n.SetParents("director", "genre")
	n.SetCPT("genre", nil, "comedy", "drama")
	n.SetCPT("director", map[string]string{"genre": "comedy"}, "A", "B")
	// drama row missing: flips under drama must error.
	_, err := n.Dominates(
		Outcome{"genre": "drama", "director": "A"},
		Outcome{"genre": "drama", "director": "B"},
	)
	if err == nil {
		t.Error("missing CPT row should error")
	}
}
