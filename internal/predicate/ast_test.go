package predicate

import (
	"reflect"
	"testing"
	"testing/quick"
)

func row(kv ...any) MapRow {
	m := MapRow{}
	for i := 0; i+1 < len(kv); i += 2 {
		k := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int:
			m[k] = Int(int64(v))
		case int64:
			m[k] = Int(v)
		case float64:
			m[k] = Float(v)
		case string:
			m[k] = String(v)
		case Value:
			m[k] = v
		default:
			panic("bad test value")
		}
	}
	return m
}

func TestCmpEval(t *testing.T) {
	r := row("year", 2010, "venue", "VLDB")
	cases := []struct {
		p    Predicate
		want bool
	}{
		{&Cmp{"year", OpEq, Int(2010)}, true},
		{&Cmp{"year", OpNe, Int(2010)}, false},
		{&Cmp{"year", OpLt, Int(2011)}, true},
		{&Cmp{"year", OpLe, Int(2010)}, true},
		{&Cmp{"year", OpGt, Int(2010)}, false},
		{&Cmp{"year", OpGe, Int(2010)}, true},
		{&Cmp{"venue", OpEq, String("VLDB")}, true},
		{&Cmp{"venue", OpEq, String("PODS")}, false},
		{&Cmp{"missing", OpEq, Int(1)}, false},
		{&Cmp{"venue", OpEq, Int(3)}, false}, // incomparable types
	}
	for _, c := range cases {
		if got := c.p.Eval(r); got != c.want {
			t.Errorf("%s on %v = %v, want %v", c.p, r, got, c.want)
		}
	}
}

func TestBetweenEval(t *testing.T) {
	b := &Between{Attr: "price", Lo: Int(7000), Hi: Int(16000)}
	cases := []struct {
		price int
		want  bool
	}{
		{6999, false}, {7000, true}, {12000, true}, {16000, true}, {16001, false},
	}
	for _, c := range cases {
		if got := b.Eval(row("price", c.price)); got != c.want {
			t.Errorf("BETWEEN with price=%d = %v, want %v", c.price, got, c.want)
		}
	}
	if b.Eval(row("other", 1)) {
		t.Error("BETWEEN on missing attribute should be false")
	}
}

func TestInEval(t *testing.T) {
	in := &In{Attr: "make", Vals: []Value{String("BMW"), String("Honda")}}
	if !in.Eval(row("make", "Honda")) {
		t.Error("Honda should match")
	}
	if in.Eval(row("make", "VW")) {
		t.Error("VW should not match")
	}
}

func TestAndOrNotEval(t *testing.T) {
	r := row("a", 1, "b", 2)
	pa := &Cmp{"a", OpEq, Int(1)}
	pb := &Cmp{"b", OpEq, Int(3)}
	if !(&And{Kids: []Predicate{pa}}).Eval(r) {
		t.Error("single-kid AND")
	}
	if (&And{Kids: []Predicate{pa, pb}}).Eval(r) {
		t.Error("AND with false kid should be false")
	}
	if !(&Or{Kids: []Predicate{pa, pb}}).Eval(r) {
		t.Error("OR with true kid should be true")
	}
	if !(&Not{Kid: pb}).Eval(r) {
		t.Error("NOT false should be true")
	}
	if !(&And{}).Eval(r) {
		t.Error("empty AND is TRUE")
	}
	if (&Or{}).Eval(r) {
		t.Error("empty OR is FALSE")
	}
}

func TestTruePredicate(t *testing.T) {
	if !(True{}).Eval(MapRow{}) {
		t.Error("True should be true")
	}
	if (True{}).String() != "TRUE" {
		t.Error("True string")
	}
}

func TestMapRowQualifiedFallback(t *testing.T) {
	r := MapRow{"dblp.venue": String("VLDB")}
	if v, ok := r.Get("venue"); !ok || v.AsString() != "VLDB" {
		t.Error("bare lookup should resolve qualified key")
	}
	r2 := MapRow{"venue": String("VLDB")}
	if v, ok := r2.Get("dblp.venue"); !ok || v.AsString() != "VLDB" {
		t.Error("qualified lookup should resolve bare key")
	}
}

func TestNewAndFlattening(t *testing.T) {
	a := &Cmp{"a", OpEq, Int(1)}
	b := &Cmp{"b", OpEq, Int(2)}
	c := &Cmp{"c", OpEq, Int(3)}
	got := NewAnd(NewAnd(a, b), c)
	and, ok := got.(*And)
	if !ok || len(and.Kids) != 3 {
		t.Fatalf("NewAnd did not flatten: %T %v", got, got)
	}
	if NewAnd() != (True{}) {
		t.Error("empty NewAnd should be True")
	}
	if NewAnd(a) != Predicate(a) {
		t.Error("single-kid NewAnd should be the kid")
	}
	if NewAnd(nil, a, nil) != Predicate(a) {
		t.Error("nil kids should be dropped")
	}
}

func TestNewOrFlattening(t *testing.T) {
	a := &Cmp{"a", OpEq, Int(1)}
	b := &Cmp{"b", OpEq, Int(2)}
	got := NewOr(NewOr(a, b), a)
	or, ok := got.(*Or)
	if !ok || len(or.Kids) != 3 {
		t.Fatalf("NewOr did not flatten: %v", got)
	}
}

func TestUniqueAttributes(t *testing.T) {
	p := MustParse(`dblp.venue="A" AND (dblp.venue="B" OR dblp_author.aid=3)`)
	got := UniqueAttributes(p)
	want := []string{"dblp.venue", "dblp_author.aid"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UniqueAttributes = %v, want %v", got, want)
	}
}

func TestPrimaryAttribute(t *testing.T) {
	if got := PrimaryAttribute(MustParse(`venue="A" OR venue="B"`)); got != "venue" {
		t.Errorf("PrimaryAttribute = %q, want venue", got)
	}
	if got := PrimaryAttribute(MustParse(`venue="A" AND year>2000`)); got != "" {
		t.Errorf("PrimaryAttribute multi = %q, want empty", got)
	}
}

func TestPredicateStringRoundTrip(t *testing.T) {
	inputs := []string{
		`dblp.venue="INFOCOM"`,
		`year BETWEEN 2000 AND 2005`,
		`make IN ("BMW", "Honda")`,
		`(venue="VLDB" OR venue="PODS") AND aid=128`,
		`NOT (year<1990)`,
	}
	for _, in := range inputs {
		p1 := MustParse(in)
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", p1.String(), in, err)
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip: %q -> %q", p1.String(), p2.String())
		}
	}
}

// Property: De Morgan — NOT(a AND b) == (NOT a) OR (NOT b) over random rows.
func TestDeMorganProperty(t *testing.T) {
	f := func(av, bv int8, lim int8) bool {
		r := row("a", int(av), "b", int(bv))
		pa := &Cmp{"a", OpLt, Int(int64(lim))}
		pb := &Cmp{"b", OpGe, Int(int64(lim))}
		lhs := (&Not{Kid: NewAnd(pa, pb)}).Eval(r)
		rhs := NewOr(&Not{Kid: pa}, &Not{Kid: pb}).Eval(r)
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Between(lo,hi) equals cmp>=lo AND cmp<=hi.
func TestBetweenEquivalenceProperty(t *testing.T) {
	f := func(v, lo, hi int16) bool {
		r := row("x", int(v))
		b := &Between{Attr: "x", Lo: Int(int64(lo)), Hi: Int(int64(hi))}
		c := NewAnd(&Cmp{"x", OpGe, Int(int64(lo))}, &Cmp{"x", OpLe, Int(int64(hi))})
		return b.Eval(r) == c.Eval(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
