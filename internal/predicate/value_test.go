package predicate

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(3), KindInt},
		{Float(2.5), KindFloat},
		{String("x"), KindString},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestValueIsNull(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Int(0).IsNull() {
		t.Error("Int(0).IsNull() = true")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be NULL")
	}
}

func TestValueAsInt(t *testing.T) {
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Float(3.9).AsInt(); got != 3 {
		t.Errorf("Float(3.9).AsInt() = %d, want 3 (truncation)", got)
	}
	if got := String("7").AsInt(); got != 0 {
		t.Errorf("String.AsInt() = %d, want 0", got)
	}
}

func TestValueAsFloat(t *testing.T) {
	if got := Int(2).AsFloat(); got != 2.0 {
		t.Errorf("Int(2).AsFloat() = %v", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float(2.5).AsFloat() = %v", got)
	}
	if got := Null().AsFloat(); got != 0 {
		t.Errorf("Null().AsFloat() = %v", got)
	}
}

func TestValueAsString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{String("abc"), "abc"},
		{Int(-5), "-5"},
		{Float(1.5), "1.5"},
		{Null(), ""},
	}
	for _, c := range cases {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("%v.AsString() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareNumericWidening(t *testing.T) {
	c, ok := Compare(Int(3), Float(3.0))
	if !ok || c != 0 {
		t.Errorf("Compare(Int 3, Float 3.0) = %d,%v want 0,true", c, ok)
	}
	c, ok = Compare(Int(3), Float(3.5))
	if !ok || c != -1 {
		t.Errorf("Compare(Int 3, Float 3.5) = %d,%v want -1,true", c, ok)
	}
}

func TestCompareStrings(t *testing.T) {
	c, ok := Compare(String("a"), String("b"))
	if !ok || c != -1 {
		t.Errorf("Compare(a,b) = %d,%v", c, ok)
	}
	c, ok = Compare(String("b"), String("b"))
	if !ok || c != 0 {
		t.Errorf("Compare(b,b) = %d,%v", c, ok)
	}
}

func TestCompareIncomparable(t *testing.T) {
	if _, ok := Compare(String("a"), Int(1)); ok {
		t.Error("string vs int should be incomparable")
	}
	if _, ok := Compare(Null(), Null()); ok {
		t.Error("NULL vs NULL should be incomparable (SQL semantics)")
	}
	if _, ok := Compare(Null(), Int(1)); ok {
		t.Error("NULL vs int should be incomparable")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if Int(3).Equal(String("3")) {
		t.Error("Int(3) should not equal String(\"3\")")
	}
	if Null().Equal(Null()) {
		t.Error("NULL should not equal NULL")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(7), "7"},
		{Float(0.5), "0.5"},
		{String("ab\"c"), `"ab\"c"`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueKeyCollision(t *testing.T) {
	// Int(3) and Float(3) must share a key because Equal treats them equal.
	if Int(3).Key() != Float(3).Key() {
		t.Errorf("Key mismatch: %q vs %q", Int(3).Key(), Float(3).Key())
	}
	if Int(3).Key() == String("3").Key() {
		t.Error("Int(3) and String(3) keys must differ")
	}
	if Float(3.5).Key() == Float(4.5).Key() {
		t.Error("distinct floats collide")
	}
	if Null().Key() == String("").Key() {
		t.Error("NULL key collides with empty string")
	}
}

// Property: Compare is antisymmetric on ints.
func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Compare(Int(a), Int(b))
		c2, ok2 := Compare(Int(b), Int(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective with respect to Equal for (int, float) pairs.
func TestKeyConsistentWithEqualProperty(t *testing.T) {
	f := func(a int64, b float64) bool {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		va, vb := Int(a), Float(b)
		return va.Equal(vb) == (va.Key() == vb.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string Compare agrees with Go's native ordering.
func TestStringCompareProperty(t *testing.T) {
	f := func(a, b string) bool {
		c, ok := Compare(String(a), String(b))
		if !ok {
			return false
		}
		switch {
		case a < b:
			return c < 0
		case a > b:
			return c > 0
		default:
			return c == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
