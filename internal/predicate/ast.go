package predicate

import (
	"sort"
	"strings"
)

// Row is the evaluation context for a predicate: anything that can resolve a
// (possibly table-qualified) attribute name to a value. Lookups should accept
// both the qualified form ("dblp.venue") and the bare column name ("venue")
// when unambiguous; the relstore row implementations do.
type Row interface {
	Get(attr string) (Value, bool)
}

// MapRow is a Row backed by a plain map, convenient in tests and examples.
type MapRow map[string]Value

// Get implements Row.
func (m MapRow) Get(attr string) (Value, bool) {
	v, ok := m[attr]
	if !ok {
		// Fall back to suffix match on the bare column name so a MapRow with
		// qualified keys still answers unqualified lookups and vice versa.
		if i := strings.LastIndexByte(attr, '.'); i >= 0 {
			v, ok = m[attr[i+1:]]
		} else {
			for k, mv := range m {
				if j := strings.LastIndexByte(k, '.'); j >= 0 && k[j+1:] == attr {
					return mv, true
				}
			}
		}
	}
	return v, ok
}

// Op is a comparison operator.
type Op uint8

const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Predicate is a boolean condition over a Row. Implementations are
// immutable; Eval must be safe for concurrent use.
type Predicate interface {
	// Eval reports whether the row satisfies the predicate. Comparisons
	// against NULL or missing attributes are false (SQL three-valued logic
	// collapsed to boolean, which is what the WHERE clause does anyway).
	Eval(row Row) bool
	// String renders the predicate in the dissertation's textual syntax.
	String() string
	// Attributes appends the qualified attribute names the predicate reads
	// to dst and returns the result (possibly with duplicates).
	Attributes(dst []string) []string
}

// Cmp is a single comparison: Attr Op Literal.
type Cmp struct {
	Attr string
	Op   Op
	Val  Value
}

// Eval implements Predicate.
func (c *Cmp) Eval(row Row) bool {
	v, ok := row.Get(c.Attr)
	if !ok || v.IsNull() {
		return false
	}
	r, ok := Compare(v, c.Val)
	if !ok {
		return false
	}
	switch c.Op {
	case OpEq:
		return r == 0
	case OpNe:
		return r != 0
	case OpLt:
		return r < 0
	case OpLe:
		return r <= 0
	case OpGt:
		return r > 0
	case OpGe:
		return r >= 0
	default:
		return false
	}
}

// String implements Predicate.
func (c *Cmp) String() string { return c.Attr + c.Op.String() + c.Val.String() }

// Attributes implements Predicate.
func (c *Cmp) Attributes(dst []string) []string { return append(dst, c.Attr) }

// Between is Attr BETWEEN Lo AND Hi (inclusive on both ends, as in SQL).
type Between struct {
	Attr   string
	Lo, Hi Value
}

// Eval implements Predicate.
func (b *Between) Eval(row Row) bool {
	v, ok := row.Get(b.Attr)
	if !ok || v.IsNull() {
		return false
	}
	lo, ok1 := Compare(v, b.Lo)
	hi, ok2 := Compare(v, b.Hi)
	return ok1 && ok2 && lo >= 0 && hi <= 0
}

// String implements Predicate.
func (b *Between) String() string {
	return b.Attr + " BETWEEN " + b.Lo.String() + " AND " + b.Hi.String()
}

// Attributes implements Predicate.
func (b *Between) Attributes(dst []string) []string { return append(dst, b.Attr) }

// In is Attr IN (v1, v2, ...).
type In struct {
	Attr string
	Vals []Value
}

// Eval implements Predicate.
func (in *In) Eval(row Row) bool {
	v, ok := row.Get(in.Attr)
	if !ok || v.IsNull() {
		return false
	}
	for _, w := range in.Vals {
		if v.Equal(w) {
			return true
		}
	}
	return false
}

// String implements Predicate.
func (in *In) String() string {
	var sb strings.Builder
	sb.WriteString(in.Attr)
	sb.WriteString(" IN (")
	for i, v := range in.Vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// Attributes implements Predicate.
func (in *In) Attributes(dst []string) []string { return append(dst, in.Attr) }

// And is the conjunction of its children (true when empty, like SQL's
// implicit TRUE).
type And struct {
	Kids []Predicate
}

// Eval implements Predicate.
func (a *And) Eval(row Row) bool {
	for _, k := range a.Kids {
		if !k.Eval(row) {
			return false
		}
	}
	return true
}

// String implements Predicate.
func (a *And) String() string { return joinKids(a.Kids, " AND ") }

// Attributes implements Predicate.
func (a *And) Attributes(dst []string) []string {
	for _, k := range a.Kids {
		dst = k.Attributes(dst)
	}
	return dst
}

// Or is the disjunction of its children (false when empty).
type Or struct {
	Kids []Predicate
}

// Eval implements Predicate.
func (o *Or) Eval(row Row) bool {
	for _, k := range o.Kids {
		if k.Eval(row) {
			return true
		}
	}
	return false
}

// String implements Predicate.
func (o *Or) String() string { return joinKids(o.Kids, " OR ") }

// Attributes implements Predicate.
func (o *Or) Attributes(dst []string) []string {
	for _, k := range o.Kids {
		dst = k.Attributes(dst)
	}
	return dst
}

// Not negates its child.
type Not struct {
	Kid Predicate
}

// Eval implements Predicate.
func (n *Not) Eval(row Row) bool { return !n.Kid.Eval(row) }

// String implements Predicate.
func (n *Not) String() string { return "NOT (" + n.Kid.String() + ")" }

// Attributes implements Predicate.
func (n *Not) Attributes(dst []string) []string { return n.Kid.Attributes(dst) }

// True is the always-true predicate (an empty WHERE clause).
type True struct{}

// Eval implements Predicate.
func (True) Eval(Row) bool { return true }

// String implements Predicate.
func (True) String() string { return "TRUE" }

// Attributes implements Predicate.
func (True) Attributes(dst []string) []string { return dst }

func joinKids(kids []Predicate, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		switch k.(type) {
		case *And, *Or:
			parts[i] = "(" + k.String() + ")"
		default:
			parts[i] = k.String()
		}
	}
	return strings.Join(parts, sep)
}

// NewAnd builds a conjunction, flattening nested Ands and eliding the
// trivial cases (0 kids -> True, 1 kid -> the kid).
func NewAnd(kids ...Predicate) Predicate { return newNary(kids, true) }

// NewOr builds a disjunction, flattening nested Ors and eliding the trivial
// cases.
func NewOr(kids ...Predicate) Predicate { return newNary(kids, false) }

func newNary(kids []Predicate, and bool) Predicate {
	flat := make([]Predicate, 0, len(kids))
	for _, k := range kids {
		if k == nil {
			continue
		}
		if and {
			if a, ok := k.(*And); ok {
				flat = append(flat, a.Kids...)
				continue
			}
		} else {
			if o, ok := k.(*Or); ok {
				flat = append(flat, o.Kids...)
				continue
			}
		}
		flat = append(flat, k)
	}
	switch len(flat) {
	case 0:
		if and {
			return True{} // empty conjunction is TRUE
		}
		return &Or{} // empty disjunction is FALSE
	case 1:
		return flat[0]
	}
	if and {
		return &And{Kids: flat}
	}
	return &Or{Kids: flat}
}

// UniqueAttributes returns the sorted, deduplicated list of attributes the
// predicate reads. The mixed AND/OR combination semantics of §4.6 group
// preferences by this set.
func UniqueAttributes(p Predicate) []string {
	attrs := p.Attributes(nil)
	seen := make(map[string]bool, len(attrs))
	out := attrs[:0]
	for _, a := range attrs {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// PrimaryAttribute returns the single attribute a simple (atomic or
// single-attribute) predicate constrains, or "" if it touches several. The
// preference-combination algorithms use it to decide AND vs OR placement.
func PrimaryAttribute(p Predicate) string {
	attrs := UniqueAttributes(p)
	if len(attrs) == 1 {
		return attrs[0]
	}
	return ""
}
