package predicate

import (
	"strings"
	"testing"
)

func TestParseSimpleComparison(t *testing.T) {
	p := MustParse(`dblp.venue="INFOCOM"`)
	c, ok := p.(*Cmp)
	if !ok {
		t.Fatalf("got %T, want *Cmp", p)
	}
	if c.Attr != "dblp.venue" || c.Op != OpEq || c.Val.AsString() != "INFOCOM" {
		t.Errorf("parsed %+v", c)
	}
}

func TestParseAllOperators(t *testing.T) {
	ops := map[string]Op{
		"=": OpEq, "<>": OpNe, "!=": OpNe,
		"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	}
	for text, want := range ops {
		p := MustParse("x " + text + " 5")
		c := p.(*Cmp)
		if c.Op != want {
			t.Errorf("op %q parsed as %v, want %v", text, c.Op, want)
		}
	}
}

func TestParseNumbers(t *testing.T) {
	if v := MustParse("x=42").(*Cmp).Val; v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("int literal: %v", v)
	}
	if v := MustParse("x=-3").(*Cmp).Val; v.AsInt() != -3 {
		t.Errorf("negative literal: %v", v)
	}
	if v := MustParse("x=2.5").(*Cmp).Val; v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("float literal: %v", v)
	}
	if v := MustParse("x=1e3").(*Cmp).Val; v.Kind() != KindFloat || v.AsFloat() != 1000 {
		t.Errorf("exponent literal: %v", v)
	}
}

func TestParseStringQuotes(t *testing.T) {
	if v := MustParse(`x='single'`).(*Cmp).Val; v.AsString() != "single" {
		t.Errorf("single quotes: %v", v)
	}
	if v := MustParse(`x="double"`).(*Cmp).Val; v.AsString() != "double" {
		t.Errorf("double quotes: %v", v)
	}
	if v := MustParse(`x="es\"c"`).(*Cmp).Val; v.AsString() != `es"c` {
		t.Errorf("escape: %v", v)
	}
}

func TestParseBetween(t *testing.T) {
	p := MustParse("price BETWEEN 7000 AND 16000")
	b, ok := p.(*Between)
	if !ok {
		t.Fatalf("got %T", p)
	}
	if b.Lo.AsInt() != 7000 || b.Hi.AsInt() != 16000 {
		t.Errorf("bounds %v..%v", b.Lo, b.Hi)
	}
}

func TestParseBetweenInsideAnd(t *testing.T) {
	// The AND inside BETWEEN must not terminate the conjunction.
	p := MustParse("price BETWEEN 7000 AND 16000 AND mileage BETWEEN 20000 AND 50000")
	a, ok := p.(*And)
	if !ok || len(a.Kids) != 2 {
		t.Fatalf("got %T: %v", p, p)
	}
}

func TestParseIn(t *testing.T) {
	p := MustParse(`make IN ('BMW', 'Honda')`)
	in, ok := p.(*In)
	if !ok || len(in.Vals) != 2 {
		t.Fatalf("got %T: %v", p, p)
	}
}

func TestParsePrecedence(t *testing.T) {
	// AND binds tighter than OR.
	p := MustParse(`a=1 OR b=2 AND c=3`)
	or, ok := p.(*Or)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("top should be OR: %v", p)
	}
	if _, ok := or.Kids[1].(*And); !ok {
		t.Errorf("right kid should be AND: %v", or.Kids[1])
	}
}

func TestParseParens(t *testing.T) {
	p := MustParse(`(a=1 OR b=2) AND c=3`)
	and, ok := p.(*And)
	if !ok || len(and.Kids) != 2 {
		t.Fatalf("top should be AND: %v", p)
	}
	if _, ok := and.Kids[0].(*Or); !ok {
		t.Errorf("left kid should be OR: %v", and.Kids[0])
	}
}

func TestParseNot(t *testing.T) {
	p := MustParse(`NOT a=1`)
	if _, ok := p.(*Not); !ok {
		t.Fatalf("got %T", p)
	}
	p = MustParse(`NOT NOT a=1`)
	n := p.(*Not)
	if _, ok := n.Kid.(*Not); !ok {
		t.Errorf("nested NOT: %v", p)
	}
}

func TestParseKeywordCase(t *testing.T) {
	p := MustParse(`a=1 and b=2 or c=3`)
	if _, ok := p.(*Or); !ok {
		t.Fatalf("lowercase keywords: %v", p)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a=",
		"a",
		"=1",
		"a=1 AND",
		"(a=1",
		"a IN ()",
		"a IN (1,",
		"a BETWEEN 1",
		"a BETWEEN 1 OR 2",
		`a="unterminated`,
		"a ! 1",
		"a=1 b=2",
		"a=1)",
		"a @ 1",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseEvalIntegration(t *testing.T) {
	r := row("dblp.venue", "VLDB", "dblp.year", 2011, "dblp_author.aid", 128)
	cases := []struct {
		src  string
		want bool
	}{
		{`dblp.venue="VLDB" AND dblp.year>=2010`, true},
		{`dblp.venue="PVLDB" OR dblp_author.aid=128`, true},
		{`dblp.year BETWEEN 2000 AND 2005`, false},
		{`dblp.venue IN ("SIGMOD","VLDB")`, true},
		{`NOT (dblp.venue="VLDB")`, false},
	}
	for _, c := range cases {
		if got := MustParse(c.src).Eval(r); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	a := Normalize(`venue = 'VLDB'`)
	b := Normalize(`venue="VLDB"`)
	if a != b {
		t.Errorf("Normalize mismatch: %q vs %q", a, b)
	}
	// Invalid input normalizes to trimmed self.
	if got := Normalize("  not valid ("); got != "not valid (" {
		t.Errorf("invalid normalize = %q", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input should panic")
		}
	}()
	MustParse("((")
}

func TestParseLongDisjunction(t *testing.T) {
	var parts []string
	for i := 0; i < 200; i++ {
		parts = append(parts, "aid="+itoa(i))
	}
	p := MustParse(strings.Join(parts, " OR "))
	or, ok := p.(*Or)
	if !ok || len(or.Kids) != 200 {
		t.Fatalf("long OR mis-parsed: %T", p)
	}
	if !p.Eval(row("aid", 150)) {
		t.Error("eval of long OR")
	}
}

func itoa(i int) string {
	return String("").AsString() + Int(int64(i)).AsString()
}
