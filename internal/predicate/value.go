// Package predicate implements the SQL-predicate fragment HYPRE stores in
// preference-graph nodes: typed values, a predicate AST (comparisons,
// BETWEEN, IN, AND/OR/NOT), a parser for the textual form used throughout
// the dissertation (e.g. `dblp.venue="VLDB" AND year>=2010`), an evaluator
// over rows, and helpers to normalize predicates and extract the attributes
// they constrain.
package predicate

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the value types the engine supports. The DBLP workload
// only needs integers, floats and strings; Null models missing attributes.
type Kind uint8

const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String wraps a string.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it truncates floats.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	default:
		return 0
	}
}

// AsFloat returns the numeric payload widened to float64.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		return 0
	}
}

// AsString returns the string payload, or the printed form for numerics.
func (v Value) AsString() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return ""
	}
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports deep equality with numeric widening (Int(3) == Float(3)).
func (v Value) Equal(o Value) bool {
	c, ok := Compare(v, o)
	return ok && c == 0
}

// Compare orders two values. It returns (-1|0|1, true) when the values are
// comparable: both numeric (compared as float64) or both strings. NULL is
// incomparable with everything, including NULL, mirroring SQL semantics.
func Compare(a, b Value) (int, bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.kind == KindString && b.kind == KindString {
		return strings.Compare(a.s, b.s), true
	}
	return 0, false
}

// String renders the value as a SQL literal.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return strconv.Quote(v.s)
	default:
		return v.AsString()
	}
}

// Key returns a map-key-safe canonical encoding of the value, used by
// hash indexes and DISTINCT counting.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00null"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		// Encode integral floats as ints so Int(3) and Float(3) collide,
		// matching Equal's widening semantics.
		if v.f == float64(int64(v.f)) {
			return "i" + strconv.FormatInt(int64(v.f), 10)
		}
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "s" + v.s
	}
}
