package predicate

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the dissertation's textual predicate syntax into an AST.
//
// Supported grammar (case-insensitive keywords):
//
//	expr    := or
//	or      := and ( OR and )*
//	and     := unary ( AND unary )*
//	unary   := NOT unary | '(' expr ')' | atom
//	atom    := ident cmpop literal
//	         | ident BETWEEN literal AND literal
//	         | ident IN '(' literal ( ',' literal )* ')'
//	         | TRUE
//
// Identifiers may be table-qualified (dblp.venue, dblp_author.aid). String
// literals accept single or double quotes. Numbers parse as int when they
// have no fractional part.
func Parse(s string) (Predicate, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("predicate: trailing input at %q", p.peek().text)
	}
	return pred, nil
}

// MustParse is Parse that panics on error; for tests and literals in
// examples.
func MustParse(s string) Predicate {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkOp     // = <> != < <= > >=
	tkLParen // (
	tkRParen // )
	tkComma
	tkAnd
	tkOr
	tkNot
	tkBetween
	tkIn
	tkTrue
)

type token struct {
	kind tokKind
	text string
	num  float64
	isFl bool
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	n := len(s)
	for i < n {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tkLParen, text: "("})
			i++
		case c == ')':
			toks = append(toks, token{kind: tkRParen, text: ")"})
			i++
		case c == ',':
			toks = append(toks, token{kind: tkComma, text: ","})
			i++
		case c == '=':
			toks = append(toks, token{kind: tkOp, text: "="})
			i++
		case c == '<':
			if i+1 < n && s[i+1] == '=' {
				toks = append(toks, token{kind: tkOp, text: "<="})
				i += 2
			} else if i+1 < n && s[i+1] == '>' {
				toks = append(toks, token{kind: tkOp, text: "<>"})
				i += 2
			} else {
				toks = append(toks, token{kind: tkOp, text: "<"})
				i++
			}
		case c == '>':
			if i+1 < n && s[i+1] == '=' {
				toks = append(toks, token{kind: tkOp, text: ">="})
				i += 2
			} else {
				toks = append(toks, token{kind: tkOp, text: ">"})
				i++
			}
		case c == '!':
			if i+1 < n && s[i+1] == '=' {
				toks = append(toks, token{kind: tkOp, text: "<>"})
				i += 2
			} else {
				return nil, fmt.Errorf("predicate: unexpected '!' at offset %d", i)
			}
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < n && s[j] != quote {
				if s[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(s[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("predicate: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tkString, text: sb.String()})
			i = j + 1
		case c >= '0' && c <= '9' || c == '-' && i+1 < n && s[i+1] >= '0' && s[i+1] <= '9':
			j := i + 1
			isFl := false
			for j < n && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				(s[j] == '-' || s[j] == '+') && (s[j-1] == 'e' || s[j-1] == 'E')) {
				if s[j] == '.' || s[j] == 'e' || s[j] == 'E' {
					isFl = true
				}
				j++
			}
			f, err := strconv.ParseFloat(s[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("predicate: bad number %q: %v", s[i:j], err)
			}
			toks = append(toks, token{kind: tkNumber, text: s[i:j], num: f, isFl: isFl})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < n && isIdentPart(rune(s[j])) {
				j++
			}
			word := s[i:j]
			switch strings.ToUpper(word) {
			case "AND":
				toks = append(toks, token{kind: tkAnd, text: word})
			case "OR":
				toks = append(toks, token{kind: tkOr, text: word})
			case "NOT":
				toks = append(toks, token{kind: tkNot, text: word})
			case "BETWEEN":
				toks = append(toks, token{kind: tkBetween, text: word})
			case "IN":
				toks = append(toks, token{kind: tkIn, text: word})
			case "TRUE":
				toks = append(toks, token{kind: tkTrue, text: word})
			default:
				toks = append(toks, token{kind: tkIdent, text: word})
			}
			i = j
		default:
			return nil, fmt.Errorf("predicate: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tkEOF})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tkEOF {
		p.pos++
	}
	return t
}

func (p *parser) eof() bool { return p.peek().kind == tkEOF }

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("predicate: expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *parser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Predicate{left}
	for p.peek().kind == tkOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	return NewOr(kids...), nil
}

func (p *parser) parseAnd() (Predicate, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []Predicate{left}
	for p.peek().kind == tkAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	return NewAnd(kids...), nil
}

func (p *parser) parseUnary() (Predicate, error) {
	switch p.peek().kind {
	case tkNot:
		p.next()
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Kid: kid}, nil
	case tkLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case tkTrue:
		p.next()
		return True{}, nil
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (Predicate, error) {
	id, err := p.expect(tkIdent, "attribute name")
	if err != nil {
		return nil, err
	}
	switch t := p.peek(); t.kind {
	case tkOp:
		p.next()
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		op, err := opFromText(t.text)
		if err != nil {
			return nil, err
		}
		return &Cmp{Attr: id.text, Op: op, Val: val}, nil
	case tkBetween:
		p.next()
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkAnd, "AND in BETWEEN"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Between{Attr: id.text, Lo: lo, Hi: hi}, nil
	case tkIn:
		p.next()
		if _, err := p.expect(tkLParen, "( after IN"); err != nil {
			return nil, err
		}
		var vals []Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.peek().kind == tkComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tkRParen, ") after IN list"); err != nil {
			return nil, err
		}
		return &In{Attr: id.text, Vals: vals}, nil
	default:
		return nil, fmt.Errorf("predicate: expected operator after %q, got %q", id.text, t.text)
	}
}

func (p *parser) parseLiteral() (Value, error) {
	t := p.next()
	switch t.kind {
	case tkNumber:
		if t.isFl {
			return Float(t.num), nil
		}
		return Int(int64(t.num)), nil
	case tkString:
		return String(t.text), nil
	default:
		return Null(), fmt.Errorf("predicate: expected literal, got %q", t.text)
	}
}

func opFromText(s string) (Op, error) {
	switch s {
	case "=":
		return OpEq, nil
	case "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	default:
		return OpEq, fmt.Errorf("predicate: unknown operator %q", s)
	}
}

// Normalize parses and re-renders a predicate string so syntactic variants
// ("venue = 'VLDB'" vs `venue="VLDB"`) map to a single canonical node key in
// the HYPRE graph. Invalid predicates normalize to themselves.
func Normalize(s string) string {
	p, err := Parse(s)
	if err != nil {
		return strings.TrimSpace(s)
	}
	return p.String()
}
