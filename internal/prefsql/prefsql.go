// Package prefsql implements the Preference SQL comparator the dissertation
// positions HYPRE against (§1.3, §2.5): Kießling-style preference
// constructors — base preferences over attributes, Pareto composition
// (AND), prioritized composition (PRIOR TO), and the ELSE operator — with
// Best-Matches-Only (BMO) evaluation. Preference SQL carries no intensity,
// so composition yields only a strict partial order; the dealership example
// shows exactly the ordering ambiguity (§2.5's t2-vs-t3 problem) the HYPRE
// model resolves.
package prefsql

import (
	"fmt"
	"math"
	"sort"

	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// Preference is a Kießling preference: a strict partial order over tuples,
// exposed through Better. Implementations must be irreflexive and
// transitive on the tuples they compare.
type Preference interface {
	// Better reports whether row a is strictly preferred over row b.
	Better(a, b predicate.Row) bool
	// String renders the PREFERRING fragment.
	String() string
}

// Bool is the base preference "tuples satisfying P are preferred over
// tuples that do not" (the POS/boolean constructor).
type Bool struct {
	P predicate.Predicate
}

// Better implements Preference.
func (p Bool) Better(a, b predicate.Row) bool {
	return p.P.Eval(a) && !p.P.Eval(b)
}

// String implements Preference.
func (p Bool) String() string { return p.P.String() }

// In is the POS preference "attr IN (v1, v2, ...)": members of the set are
// preferred over non-members.
func In(attr string, vals ...predicate.Value) Preference {
	return Bool{P: &predicate.In{Attr: attr, Vals: vals}}
}

// Between is the interval preference "attr BETWEEN lo AND hi": tuples
// inside the interval are best; outside, smaller distance to the interval
// is better (Preference SQL's numeric BETWEEN semantics).
type Between struct {
	Attr   string
	Lo, Hi float64
}

// distance is 0 inside the interval, else the gap to the nearest bound;
// missing attributes are infinitely far.
func (p Between) distance(r predicate.Row) float64 {
	v, ok := r.Get(p.Attr)
	if !ok || !v.IsNumeric() {
		return math.Inf(1)
	}
	x := v.AsFloat()
	switch {
	case x < p.Lo:
		return p.Lo - x
	case x > p.Hi:
		return x - p.Hi
	default:
		return 0
	}
}

// Better implements Preference.
func (p Between) Better(a, b predicate.Row) bool {
	return p.distance(a) < p.distance(b)
}

// String implements Preference.
func (p Between) String() string {
	return fmt.Sprintf("%s BETWEEN %g AND %g", p.Attr, p.Lo, p.Hi)
}

// Pareto is the AND composition (Definition 8): a is better than b iff a is
// at least as good under every member and strictly better under one.
type Pareto struct {
	Kids []Preference
}

// And builds a Pareto composition.
func And(kids ...Preference) Preference {
	if len(kids) == 1 {
		return kids[0]
	}
	return Pareto{Kids: kids}
}

// Better implements Preference.
func (p Pareto) Better(a, b predicate.Row) bool {
	strict := false
	for _, k := range p.Kids {
		if k.Better(b, a) {
			return false // worse somewhere -> not Pareto-better
		}
		if k.Better(a, b) {
			strict = true
		}
	}
	return strict
}

// String implements Preference.
func (p Pareto) String() string {
	out := ""
	for i, k := range p.Kids {
		if i > 0 {
			out += " AND "
		}
		out += k.String()
	}
	return out
}

// Prioritized is the PRIOR TO composition (Definition 7): compare by First;
// only if First is indifferent, compare by Second.
type Prioritized struct {
	First, Second Preference
}

// PriorTo builds a prioritized composition.
func PriorTo(first, second Preference) Preference {
	return Prioritized{First: first, Second: second}
}

// Better implements Preference.
func (p Prioritized) Better(a, b predicate.Row) bool {
	if p.First.Better(a, b) {
		return true
	}
	if p.First.Better(b, a) {
		return false
	}
	return p.Second.Better(a, b)
}

// String implements Preference.
func (p Prioritized) String() string {
	return p.First.String() + " PRIOR TO " + p.Second.String()
}

// Else is the ELSE operator of Preference SQL used for qualitative venue
// preferences ("venue IN ('CIKM') ELSE ('SIGMOD')"): tuples matching A are
// best, then tuples matching B, then the rest — three BMO levels, with no
// way to say how much better A is (the intensity loss of §1.3).
type Else struct {
	A, B predicate.Predicate
}

func (p Else) level(r predicate.Row) int {
	switch {
	case p.A.Eval(r):
		return 0
	case p.B.Eval(r):
		return 1
	default:
		return 2
	}
}

// Better implements Preference.
func (p Else) Better(a, b predicate.Row) bool { return p.level(a) < p.level(b) }

// String implements Preference.
func (p Else) String() string {
	return p.A.String() + " ELSE " + p.B.String()
}

// Result is a BMO-ranked answer: Level 0 holds the best matches only, level
// 1 the best of the remainder, and so on. Tuples within a level are
// mutually incomparable (or equivalent) under the preference — Preference
// SQL cannot order them further, which is the gap HYPRE's intensities fill.
type Result struct {
	Levels [][]relstore.JoinedRow
}

// Flatten returns the rows level by level (arbitrary order inside levels).
func (r Result) Flatten() []relstore.JoinedRow {
	var out []relstore.JoinedRow
	for _, l := range r.Levels {
		out = append(out, l...)
	}
	return out
}

// Top returns the first k rows of the flattened ranking (the TOP k clause).
func (r Result) Top(k int) []relstore.JoinedRow {
	out := r.Flatten()
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Evaluate runs a query and ranks the result by repeated BMO peeling: level
// 0 is the set of rows not dominated by any other row, level 1 is the BMO
// of the remainder, etc. Within each level, rows keep a deterministic
// order (by scan position).
func Evaluate(db *relstore.DB, q relstore.Query, pref Preference) (Result, error) {
	rows, err := db.Select(q)
	if err != nil {
		return Result{}, err
	}
	remaining := make([]int, len(rows))
	for i := range rows {
		remaining[i] = i
	}
	var res Result
	for len(remaining) > 0 {
		var level, rest []int
		for _, i := range remaining {
			dominated := false
			for _, j := range remaining {
				if i != j && pref.Better(rows[j], rows[i]) {
					dominated = true
					break
				}
			}
			if dominated {
				rest = append(rest, i)
			} else {
				level = append(level, i)
			}
		}
		if len(level) == 0 {
			// A cycle in a malformed preference: emit everything to
			// terminate.
			level, rest = remaining, nil
		}
		sort.Ints(level)
		lv := make([]relstore.JoinedRow, len(level))
		for k, i := range level {
			lv[k] = rows[i]
		}
		res.Levels = append(res.Levels, lv)
		remaining = rest
	}
	return res, nil
}

// LevelOf returns the BMO level index of the row whose attribute equals the
// given value, or -1. A convenience for tests and examples.
func (r Result) LevelOf(attr string, v predicate.Value) int {
	for li, level := range r.Levels {
		for _, row := range level {
			if got, ok := row.Get(attr); ok && got.Equal(v) {
				return li
			}
		}
	}
	return -1
}
