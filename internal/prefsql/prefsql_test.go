package prefsql

import (
	"strings"
	"testing"

	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// dealershipDB is the Table 5 / Table 8 fixture.
func dealershipDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB()
	tbl, err := db.CreateTable("dealership",
		relstore.Column{Name: "id", Kind: predicate.KindInt},
		relstore.Column{Name: "price", Kind: predicate.KindInt},
		relstore.Column{Name: "mileage", Kind: predicate.KindInt},
		relstore.Column{Name: "make", Kind: predicate.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	cars := []struct {
		id, price, mileage int64
		make_              string
	}{
		{1, 7000, 43489, "Honda"},
		{2, 16000, 35334, "VW"},
		{3, 20000, 49119, "Honda"},
	}
	for _, c := range cars {
		tbl.Insert(predicate.Int(c.id), predicate.Int(c.price),
			predicate.Int(c.mileage), predicate.String(c.make_))
	}
	return db
}

func carQuery() relstore.Query { return relstore.Query{From: "dealership"} }

func carPrefs() (price, mileage, make_ Preference) {
	price = Between{Attr: "price", Lo: 7000, Hi: 16000}
	mileage = Between{Attr: "mileage", Lo: 20000, Hi: 50000}
	make_ = In("make", predicate.String("BMW"), predicate.String("Honda"))
	return
}

func row(t *testing.T, kv ...any) predicate.MapRow {
	t.Helper()
	m := predicate.MapRow{}
	for i := 0; i+1 < len(kv); i += 2 {
		switch v := kv[i+1].(type) {
		case int:
			m[kv[i].(string)] = predicate.Int(int64(v))
		case string:
			m[kv[i].(string)] = predicate.String(v)
		default:
			t.Fatal("bad kv")
		}
	}
	return m
}

func TestBoolPreference(t *testing.T) {
	p := Bool{P: predicate.MustParse(`make="Honda"`)}
	honda := predicate.MapRow{"make": predicate.String("Honda")}
	vw := predicate.MapRow{"make": predicate.String("VW")}
	if !p.Better(honda, vw) || p.Better(vw, honda) || p.Better(honda, honda) {
		t.Error("Bool ordering wrong")
	}
}

func TestBetweenDistance(t *testing.T) {
	p := Between{Attr: "price", Lo: 7000, Hi: 16000}
	inside := row(t, "price", 12000)
	edge := row(t, "price", 16000)
	near := row(t, "price", 17000)
	far := row(t, "price", 25000)
	if p.Better(inside, edge) || p.Better(edge, inside) {
		t.Error("inside and edge should be indifferent")
	}
	if !p.Better(edge, near) || !p.Better(near, far) {
		t.Error("distance ordering wrong")
	}
	missing := predicate.MapRow{}
	if !p.Better(far, missing) {
		t.Error("missing attribute should be worst")
	}
}

func TestParetoIncomparability(t *testing.T) {
	price, mileage, make_ := carPrefs()
	pref := And(price, mileage, make_)
	t1 := row(t, "price", 7000, "mileage", 43489, "make", "Honda")
	t2 := row(t, "price", 16000, "mileage", 35334, "make", "VW")
	t3 := row(t, "price", 20000, "mileage", 49119, "make", "Honda")
	// t1 dominates both.
	if !pref.Better(t1, t2) || !pref.Better(t1, t3) {
		t.Error("t1 should dominate")
	}
	// The §2.5 problem: t2 and t3 are Pareto-incomparable — Preference SQL
	// has no intensity to break the tie.
	if pref.Better(t2, t3) || pref.Better(t3, t2) {
		t.Error("t2 and t3 should be incomparable under Pareto")
	}
}

func TestPrioritizedBreaksTies(t *testing.T) {
	price, mileage, make_ := carPrefs()
	pref := PriorTo(And(price, mileage), make_)
	t2 := row(t, "price", 16000, "mileage", 35334, "make", "VW")
	t3 := row(t, "price", 20000, "mileage", 49119, "make", "Honda")
	// Under PRIOR TO, price∧mileage decides first: t2 is strictly better
	// there (t3 is 4000 off on price), so make never gets consulted.
	if !pref.Better(t2, t3) {
		t.Error("t2 should win on the prioritized composition")
	}
	// When the first preference ties, the second decides.
	a := row(t, "price", 8000, "mileage", 30000, "make", "Honda")
	b := row(t, "price", 9000, "mileage", 31000, "make", "VW")
	if !pref.Better(a, b) {
		t.Error("make should break the first-preference tie")
	}
}

func TestElseLevels(t *testing.T) {
	p := Else{
		A: predicate.MustParse(`venue="CIKM"`),
		B: predicate.MustParse(`venue="SIGMOD"`),
	}
	cikm := predicate.MapRow{"venue": predicate.String("CIKM")}
	sigmod := predicate.MapRow{"venue": predicate.String("SIGMOD")}
	vldb := predicate.MapRow{"venue": predicate.String("VLDB")}
	if !p.Better(cikm, sigmod) || !p.Better(sigmod, vldb) || !p.Better(cikm, vldb) {
		t.Error("ELSE levels wrong")
	}
	if p.Better(sigmod, cikm) {
		t.Error("ELSE reversed")
	}
	if !strings.Contains(p.String(), "ELSE") {
		t.Error("String")
	}
}

func TestEvaluateBMOLevels(t *testing.T) {
	db := dealershipDB(t)
	price, mileage, make_ := carPrefs()
	res, err := Evaluate(db, carQuery(), And(price, mileage, make_))
	if err != nil {
		t.Fatal(err)
	}
	// Level 0 = {t1}; level 1 = {t2, t3} (incomparable).
	if len(res.Levels) != 2 {
		t.Fatalf("levels = %d", len(res.Levels))
	}
	if len(res.Levels[0]) != 1 || len(res.Levels[1]) != 2 {
		t.Fatalf("level sizes = %d/%d", len(res.Levels[0]), len(res.Levels[1]))
	}
	if got := res.LevelOf("id", predicate.Int(1)); got != 0 {
		t.Errorf("t1 level = %d", got)
	}
	if got := res.LevelOf("id", predicate.Int(2)); got != 1 {
		t.Errorf("t2 level = %d", got)
	}
	if got := res.LevelOf("id", predicate.Int(99)); got != -1 {
		t.Errorf("missing tuple level = %d", got)
	}
}

func TestEvaluatePriorToOrdering(t *testing.T) {
	db := dealershipDB(t)
	price, mileage, make_ := carPrefs()
	res, err := Evaluate(db, carQuery(), PriorTo(And(price, mileage), make_))
	if err != nil {
		t.Fatal(err)
	}
	flat := res.Flatten()
	if len(flat) != 3 {
		t.Fatalf("flat = %d", len(flat))
	}
	ids := make([]int64, 3)
	for i, r := range flat {
		v, _ := r.Get("id")
		ids[i] = v.AsInt()
	}
	// t1 first; then t2 (better on the prioritized price∧mileage); t3 last.
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Errorf("order = %v", ids)
	}
}

func TestTopK(t *testing.T) {
	db := dealershipDB(t)
	price, mileage, make_ := carPrefs()
	res, _ := Evaluate(db, carQuery(), And(price, mileage, make_))
	top := res.Top(2)
	if len(top) != 2 {
		t.Fatalf("top = %d", len(top))
	}
	if v, _ := top[0].Get("id"); v.AsInt() != 1 {
		t.Errorf("best = %v", v)
	}
	if got := res.Top(10); len(got) != 3 {
		t.Errorf("over-ask = %d", len(got))
	}
}

func TestEvaluateCycleGuard(t *testing.T) {
	// A deliberately malformed "preference" (a < b and b < a) must not
	// loop; everything lands in one level.
	db := dealershipDB(t)
	res, err := Evaluate(db, carQuery(), badPref{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, l := range res.Levels {
		total += len(l)
	}
	if total != 3 {
		t.Errorf("lost rows: %d", total)
	}
}

type badPref struct{}

func (badPref) Better(a, b predicate.Row) bool { return true } // cyclic nonsense
func (badPref) String() string                 { return "bad" }

func TestStrings(t *testing.T) {
	price, mileage, make_ := carPrefs()
	s := PriorTo(And(price, mileage), make_).String()
	if !strings.Contains(s, "PRIOR TO") || !strings.Contains(s, "AND") {
		t.Errorf("String = %q", s)
	}
}
