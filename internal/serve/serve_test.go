package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hypre/internal/admit"
	"hypre/internal/hypre"
	"hypre/internal/serve"
	"hypre/internal/workload"
)

func testNet(t testing.TB, seed int64) *workload.Network {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPapers = 500
	cfg.NumAuthors = 120
	cfg.NumVenues = 10
	net, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func newApp(t testing.TB, mutate func(*serve.Options)) (*serve.App, *workload.Network) {
	t.Helper()
	net := testNet(t, 17)
	opts := serve.Options{Net: net}
	if mutate != nil {
		mutate(&opts)
	}
	app, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return app, net
}

// do issues one request against the app's handler and decodes the JSON body.
func do(t testing.TB, app *serve.App, method, path, body string) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	app.Handler().ServeHTTP(w, req)
	var out map[string]any
	if w.Body.Len() > 0 && strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON body %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code, out
}

// profileBody marshals a two-pref profile body; predicates embed quoted
// venue names, so the JSON is built by the encoder, never by hand.
func profileBody(net *workload.Network, k int) string {
	type wire struct {
		Profile []serve.ProfileEntry `json:"profile"`
		K       int                  `json:"k,omitempty"`
	}
	b, err := json.Marshal(wire{
		Profile: []serve.ProfileEntry{
			{Pred: fmt.Sprintf("dblp.venue=%q", net.Venues[0]), Intensity: 0.4},
			{Pred: fmt.Sprintf("dblp.year=%d", net.Cfg.MinYear+1), Intensity: 0.3},
		},
		K: k,
	})
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestMalformedRequests: every rejected request answers its documented
// status and leaves the cache untouched — rejections must not pollute the
// shared serving state.
func TestMalformedRequests(t *testing.T) {
	app, net := newApp(t, func(o *serve.Options) { o.MaxProfilePrefs = 4; o.MaxK = 50 })
	bigProfile := `{"k":3,"profile":[` + strings.Repeat(`{"pred":"dblp.year=2000","intensity":0.1},`, 5)
	bigProfile = strings.TrimSuffix(bigProfile, ",") + `]}`
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", "POST", "/v1/query", `{"k": nope}`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/query", `{"kk":3}`, http.StatusBadRequest},
		{"k missing", "POST", "/v1/query", `{"profile":[{"pred":"dblp.year=2000","intensity":0.1}]}`, http.StatusBadRequest},
		{"k zero", "POST", "/v1/query", strings.Replace(profileBody(net, 3), `"k":3`, `"k":0`, 1), http.StatusBadRequest},
		{"k negative", "POST", "/v1/query", strings.Replace(profileBody(net, 3), `"k":3`, `"k":-2`, 1), http.StatusBadRequest},
		{"k above cap", "POST", "/v1/query", strings.Replace(profileBody(net, 3), `"k":3`, `"k":51`, 1), http.StatusBadRequest},
		{"no profile no session", "POST", "/v1/query", `{"k":3}`, http.StatusBadRequest},
		{"both profile and session", "POST", "/v1/query",
			strings.Replace(profileBody(net, 3), `{"profile"`, `{"session":"s1","profile"`, 1), http.StatusBadRequest},
		{"unknown session", "POST", "/v1/query", `{"session":"ghost","k":3}`, http.StatusNotFound},
		{"bad predicate", "POST", "/v1/query", `{"k":3,"profile":[{"pred":"dblp.venue ~~ x","intensity":0.2}]}`, http.StatusBadRequest},
		{"oversized profile", "POST", "/v1/query", bigProfile, http.StatusRequestEntityTooLarge},
		{"empty canonical profile put", "PUT", "/v1/session/s1/profile", `{"profile":[]}`, http.StatusBadRequest},
		{"get unknown session", "GET", "/v1/session/ghost/profile", "", http.StatusNotFound},
		{"mutate no ops", "POST", "/v1/mutate", `{"ops":[]}`, http.StatusBadRequest},
		{"mutate unknown kind", "POST", "/v1/mutate", `{"ops":[{"kind":"explode","pid":1}]}`, http.StatusBadRequest},
		{"mutate bad json", "POST", "/v1/mutate", `{"ops":`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, body := do(t, app, c.method, c.path, c.body)
			if code != c.want {
				t.Fatalf("%s %s: status %d (body %v), want %d", c.method, c.path, code, body, c.want)
			}
			if body["error"] == "" {
				t.Fatalf("%s %s: rejection carries no error message", c.method, c.path)
			}
		})
	}
	if entries, _ := app.Server().Cache().Stats(); entries != 0 {
		t.Fatalf("rejected requests cached %d entries", entries)
	}
	if m := app.Server().Counters().Snapshot().Misses; m != 0 {
		t.Fatalf("rejected requests reached the evaluator: %d misses", m)
	}
}

// TestSessionRoundTripAndSharedCache: PUT round-trips through GET, a session
// query and an inline query of the same profile share one fingerprint and
// one cache entry, and answers are identical.
func TestSessionRoundTripAndSharedCache(t *testing.T) {
	app, net := newApp(t, nil)
	code, put := do(t, app, "PUT", "/v1/session/alice/profile", profileBody(net, 0))
	if code != http.StatusOK {
		t.Fatalf("PUT profile: %d %v", code, put)
	}
	code, got := do(t, app, "GET", "/v1/session/alice/profile", "")
	if code != http.StatusOK {
		t.Fatalf("GET profile: %d", code)
	}
	if got["fingerprint"] != put["fingerprint"] || got["fingerprint"] == "" {
		t.Fatalf("fingerprint did not round-trip: put %v get %v", put["fingerprint"], got["fingerprint"])
	}
	// Re-PUT the GET body under another session: the canonical profile (and
	// so the fingerprint) must survive the round trip — this is what lets
	// the CI smoke replay a seeded profile.
	prof, _ := json.Marshal(map[string]any{"profile": got["profile"]})
	code, put2 := do(t, app, "PUT", "/v1/session/bob/profile", string(prof))
	if code != http.StatusOK || put2["fingerprint"] != put["fingerprint"] {
		t.Fatalf("re-PUT of round-tripped profile: %d fp %v want %v", code, put2["fingerprint"], put["fingerprint"])
	}

	code, q1 := do(t, app, "POST", "/v1/query", `{"session":"alice","k":5}`)
	if code != http.StatusOK || q1["outcome"] != "miss" {
		t.Fatalf("first session query: %d %v", code, q1)
	}
	code, q2 := do(t, app, "POST", "/v1/query", profileBody(net, 5))
	if code != http.StatusOK || q2["outcome"] != "hit" {
		t.Fatalf("inline query of same profile: %d outcome %v, want hit", code, q2["outcome"])
	}
	if fmt.Sprint(q1["results"]) != fmt.Sprint(q2["results"]) {
		t.Fatalf("session and inline answers diverge:\n%v\n%v", q1["results"], q2["results"])
	}
	if q1["fingerprint"] != q2["fingerprint"] {
		t.Fatalf("fingerprints diverge: %v vs %v", q1["fingerprint"], q2["fingerprint"])
	}
	if len(q1["results"].([]any)) == 0 {
		t.Fatal("query returned no results")
	}
}

// TestMutateInvalidatesAndMatchesUncached: a delete of a ranked pid shows up
// in the next query (no stale answer), and the served answer equals a fresh
// uncached evaluation.
func TestMutateInvalidatesAndMatchesUncached(t *testing.T) {
	app, net := newApp(t, nil)
	if code, _ := do(t, app, "PUT", "/v1/session/u/profile", profileBody(net, 0)); code != 200 {
		t.Fatal("PUT failed")
	}
	code, q1 := do(t, app, "POST", "/v1/query", `{"session":"u","k":5}`)
	if code != 200 {
		t.Fatalf("query: %d", code)
	}
	results := q1["results"].([]any)
	if len(results) == 0 {
		t.Fatal("no results to delete")
	}
	victim := int64(results[0].(map[string]any)["pid"].(float64))

	code, m := do(t, app, "POST", "/v1/mutate", fmt.Sprintf(`{"ops":[{"kind":"delete","pid":%d}]}`, victim))
	if code != 200 || m["applied"].(float64) != 1 {
		t.Fatalf("mutate: %d %v", code, m)
	}
	code, q2 := do(t, app, "POST", "/v1/query", `{"session":"u","k":5}`)
	if code != 200 {
		t.Fatalf("re-query: %d", code)
	}
	for _, r := range q2["results"].([]any) {
		if int64(r.(map[string]any)["pid"].(float64)) == victim {
			t.Fatalf("deleted pid %d still ranked: %v", victim, q2["results"])
		}
	}
	// The mutate response promises the sync already ran: the re-query must
	// have been served from the repaired cache, not a stale bypass.
	if sb := app.Server().Counters().Snapshot().StaleBypasses; sb != 0 {
		t.Fatalf("re-query after mutate took %d stale bypasses, want 0", sb)
	}
	// And it matches a from-scratch evaluation exactly.
	code, prof := do(t, app, "GET", "/v1/session/u/profile", "")
	if code != 200 {
		t.Fatal("GET profile")
	}
	var entries []serve.ProfileEntry
	b, _ := json.Marshal(prof["profile"])
	if err := json.Unmarshal(b, &entries); err != nil {
		t.Fatal(err)
	}
	prefs := make([]hypre.ScoredPred, len(entries))
	for i, e := range entries {
		sp, err := hypre.NewScoredPred(e.Pred, e.Intensity)
		if err != nil {
			t.Fatal(err)
		}
		prefs[i] = sp
	}
	fresh, err := app.Uncached(prefs, 5)
	if err != nil {
		t.Fatal(err)
	}
	served := q2["results"].([]any)
	if len(fresh) != len(served) {
		t.Fatalf("served %d rows, uncached %d", len(served), len(fresh))
	}
	for i, r := range served {
		row := r.(map[string]any)
		if int64(row["pid"].(float64)) != fresh[i].PID || row["score"].(float64) != fresh[i].Intensity {
			t.Fatalf("row %d: served %v, uncached %+v", i, row, fresh[i])
		}
	}
}

// TestQueryAdmissionSheds: with a tight query gate, a burst past the bucket
// answers 429 with a Retry-After hint while earlier arrivals succeed, and
// the mutate class is unaffected.
func TestQueryAdmissionSheds(t *testing.T) {
	app, net := newApp(t, func(o *serve.Options) {
		o.Query = admit.Config{Rate: 1, Burst: 2, MaxQueue: 1, SLO: time.Millisecond}
	})
	body := profileBody(net, 3)
	var ok, shed int
	for i := 0; i < 6; i++ {
		req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader([]byte(body)))
		w := httptest.NewRecorder()
		app.Handler().ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if w.Header().Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d: %s", w.Code, w.Body.String())
		}
	}
	if ok < 2 || shed == 0 {
		t.Fatalf("ok %d shed %d, want >=2 admitted and >0 shed", ok, shed)
	}
	snap := app.QueryGate().Counters().Snapshot()
	if snap.Shed == 0 {
		t.Fatalf("gate ledger missed the sheds: %+v", snap)
	}
	// Mutate rides its own unlimited gate.
	pid := net.Papers[0].PID
	if code, _ := do(t, app, "POST", "/v1/mutate",
		fmt.Sprintf(`{"ops":[{"kind":"update_year","pid":%d,"year":2001}]}`, pid)); code != 200 {
		t.Fatalf("mutate sharing the query gate? status %d", code)
	}
}

// TestConcurrentSessionsAndMutations: sessions store, query, and mutate
// concurrently against one App (run under -race in CI).
func TestConcurrentSessionsAndMutations(t *testing.T) {
	app, net := newApp(t, nil)
	srv := httptest.NewServer(app.Handler())
	defer srv.Close()
	client := srv.Client()
	post := func(path, body string) (int, error) {
		resp, err := client.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("w%d", w)
			prof, _ := json.Marshal(map[string]any{"profile": []serve.ProfileEntry{
				{Pred: fmt.Sprintf("dblp.venue=%q", net.Venues[w%len(net.Venues)]), Intensity: 0.5},
			}})
			req, _ := http.NewRequest("PUT", srv.URL+"/v1/session/"+id+"/profile", bytes.NewReader(prof))
			resp, err := client.Do(req)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("worker %d PUT: status %d", w, resp.StatusCode)
				return
			}
			for i := 0; i < 8; i++ {
				if code, err := post("/v1/query", fmt.Sprintf(`{"session":%q,"k":4}`, id)); err != nil || code != 200 {
					errs <- fmt.Errorf("worker %d query %d: code %d err %v", w, i, code, err)
					return
				}
				if i%3 == 0 {
					pid := net.Papers[(w*31+i*7)%len(net.Papers)].PID
					code, err := post("/v1/mutate", fmt.Sprintf(`{"ops":[{"kind":"update_year","pid":%d,"year":%d}]}`, pid, 1995+i))
					if err != nil || code != 200 {
						errs <- fmt.Errorf("worker %d mutate %d: code %d err %v", w, i, code, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
