// Package serve is the HTTP serving tier: a long-lived multi-tenant
// preference server multiplexing concurrent sessions over one shared
// cache.Server → topk/combine → delta stack. Each session stores a
// canonicalized preference profile under a client-chosen id; queries route
// through the profile-fingerprint result cache (so sessions sharing a
// canonical profile share cache entries and single-flight evaluations),
// mutations commit through the store's batch write path and synchronize the
// delta maintainer inline, and every route class sits behind an admission
// gate that sheds load with Retry-After once the queue delay would blow the
// latency SLO.
//
// cmd/hypred wires this App to a real listener; the serve experiment boots
// it in-process via httptest to measure the whole HTTP path.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"hypre/internal/admit"
	"hypre/internal/cache"
	"hypre/internal/combine"
	"hypre/internal/delta"
	"hypre/internal/hypre"
	"hypre/internal/obs"
	"hypre/internal/relstore"
	"hypre/internal/topk"
	"hypre/internal/workload"
)

// StatusClientClosedRequest is the nginx-convention status answered when the
// client's context ends while its request is queued or in flight — the
// client is gone, but the ledger should not count the abort as a server
// error.
const StatusClientClosedRequest = 499

// Options configures an App. The zero value of every field has a sensible
// default; Net is the only required field.
type Options struct {
	// Net is the citation network whose store the server serves.
	Net *workload.Network
	// CacheBytes is the result/plan cache budget (default: cache.Config's).
	CacheBytes int64
	// Slow is the slow-log threshold (default 25ms).
	Slow time.Duration
	// Query and Mutate gate the two route classes (zero = unlimited).
	Query  admit.Config
	Mutate admit.Config
	// MaxProfilePrefs bounds a stored or inline profile (default 128).
	MaxProfilePrefs int
	// MaxOpsPerBatch bounds one mutate call (default 1024).
	MaxOpsPerBatch int
	// MaxK bounds a query's k (default 1000).
	MaxK int
}

// ProfileEntry is the wire form of one preference.
type ProfileEntry struct {
	Pred      string  `json:"pred"`
	Intensity float64 `json:"intensity"`
}

// session is one stored profile: the canonical preference list, its
// fingerprint, and the wire-form entries GET round-trips.
type session struct {
	canon   []hypre.ScoredPred
	fp      combine.Fingerprint
	entries []ProfileEntry
}

// App is the serving tier's HTTP application.
type App struct {
	db    *relstore.DB
	ev    *combine.Evaluator
	srv   *cache.Server
	maint *delta.Maintainer
	reg   *obs.Registry
	slow  *obs.SlowLog
	opts  Options

	queryGate  *admit.Gate
	mutateGate *admit.Gate

	mux *http.ServeMux

	sessMu   sync.RWMutex
	sessions map[string]*session

	// syncMu serializes mutate batches: ops apply and the maintainer syncs
	// under one lock, so a mutate answer implies the cache has already been
	// repaired for it (queries never see a stale-bypass window after a
	// mutate response returns).
	syncMu sync.Mutex
}

// New builds the App over opts.Net.
func New(opts Options) (*App, error) {
	if opts.Net == nil {
		return nil, errors.New("serve: Options.Net is required")
	}
	if opts.Slow <= 0 {
		opts.Slow = 25 * time.Millisecond
	}
	if opts.MaxProfilePrefs <= 0 {
		opts.MaxProfilePrefs = 128
	}
	if opts.MaxOpsPerBatch <= 0 {
		opts.MaxOpsPerBatch = 1024
	}
	if opts.MaxK <= 0 {
		opts.MaxK = 1000
	}
	reg := obs.NewRegistry()
	slow := obs.NewSlowLog(opts.Slow, 128)
	ev := combine.NewEvaluator(opts.Net.DB, workload.BaseQuery, "dblp.pid")
	srv := cache.NewServer(ev, cache.Config{
		MaxBytes: opts.CacheBytes,
		Registry: reg,
		SlowLog:  slow,
	})
	maint, err := delta.NewMaintainer(ev, nil)
	if err != nil {
		return nil, err
	}
	maint.AttachObs(reg)
	maint.AttachCache(srv)
	ctrl := admit.NewController(reg)
	a := &App{
		db:         opts.Net.DB,
		ev:         ev,
		srv:        srv,
		maint:      maint,
		reg:        reg,
		slow:       slow,
		opts:       opts,
		queryGate:  ctrl.AddClass("query", opts.Query),
		mutateGate: ctrl.AddClass("mutate", opts.Mutate),
		sessions:   make(map[string]*session),
	}
	a.routes()
	return a, nil
}

// Handler is the full endpoint set, debug surface included.
func (a *App) Handler() http.Handler { return a.mux }

// Server exposes the caching tier (tests assert cache state through it).
func (a *App) Server() *cache.Server { return a.srv }

// Registry exposes the metrics registry.
func (a *App) Registry() *obs.Registry { return a.reg }

// QueryGate and MutateGate expose the admission gates' ledgers.
func (a *App) QueryGate() *admit.Gate  { return a.queryGate }
func (a *App) MutateGate() *admit.Gate { return a.mutateGate }

// SeedSession stores a profile server-side (cmd/hypred's -seed.sessions and
// the experiments use it to skip the PUT round trip).
func (a *App) SeedSession(id string, prefs []hypre.ScoredPred) (combine.Fingerprint, error) {
	s, err := a.buildSession(prefs)
	if err != nil {
		return combine.Fingerprint{}, err
	}
	a.sessMu.Lock()
	a.sessions[id] = s
	a.sessMu.Unlock()
	return s.fp, nil
}

// routes mounts the API and the PR 8 debug surface on one mux.
func (a *App) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", a.handleQuery)
	mux.HandleFunc("PUT /v1/session/{id}/profile", a.handlePutProfile)
	mux.HandleFunc("GET /v1/session/{id}/profile", a.handleGetProfile)
	mux.HandleFunc("POST /v1/mutate", a.handleMutate)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	debug := obs.NewDebugMux(obs.DebugOptions{
		Registry: a.reg,
		SlowLog:  a.slow,
		Trace:    a.traceSession,
	})
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)
	a.mux = mux
}

// traceSession is the /debug/trace hook: the query string names a stored
// session, whose profile runs once with tracing forced on.
func (a *App) traceSession(query string, k int) (*obs.Trace, error) {
	a.sessMu.RLock()
	s, ok := a.sessions[query]
	a.sessMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown session %q (store one via PUT /v1/session/{id}/profile)", query)
	}
	tr := obs.NewTrace()
	if _, _, err := a.srv.TopKTraced(s.canon, k, tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// --- wire types ---

type queryRequest struct {
	Session string         `json:"session"`
	Profile []ProfileEntry `json:"profile"`
	K       int            `json:"k"`
}

type resultRow struct {
	PID   int64   `json:"pid"`
	Score float64 `json:"score"`
}

type queryResponse struct {
	Outcome     string      `json:"outcome"`
	Fingerprint string      `json:"fingerprint"`
	K           int         `json:"k"`
	Results     []resultRow `json:"results"`
}

type profileRequest struct {
	Profile []ProfileEntry `json:"profile"`
}

type profileResponse struct {
	Session     string         `json:"session"`
	Fingerprint string         `json:"fingerprint"`
	Profile     []ProfileEntry `json:"profile"`
}

type mutateRequest struct {
	Ops []workload.Op `json:"ops"`
}

type mutateResponse struct {
	Applied     int  `json:"applied"`
	TouchedRows int  `json:"touched_rows"`
	FullRebuild bool `json:"full_rebuild"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

// admitOr runs one arrival through a gate, answering 429 (+Retry-After) on
// shed and 499 on client abort. The bool reports whether the handler should
// continue.
func (a *App) admitOr(w http.ResponseWriter, r *http.Request, g *admit.Gate) bool {
	_, err := g.Admit(r.Context())
	if err == nil {
		return true
	}
	var shed *admit.ShedError
	if errors.As(err, &shed) {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", shed.RetryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, shed.Error())
		return false
	}
	writeError(w, StatusClientClosedRequest, "client closed request while queued")
	return false
}

func (a *App) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !a.admitOr(w, r, a.queryGate) {
		return
	}
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, "k must be >= 1")
		return
	}
	if req.K > a.opts.MaxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k must be <= %d", a.opts.MaxK))
		return
	}
	var prefs []hypre.ScoredPred
	switch {
	case req.Session != "" && req.Profile != nil:
		writeError(w, http.StatusBadRequest, "set session or profile, not both")
		return
	case req.Session != "":
		a.sessMu.RLock()
		s, ok := a.sessions[req.Session]
		a.sessMu.RUnlock()
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", req.Session))
			return
		}
		prefs = s.canon
	case len(req.Profile) > 0:
		if len(req.Profile) > a.opts.MaxProfilePrefs {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("profile has %d preferences, limit %d", len(req.Profile), a.opts.MaxProfilePrefs))
			return
		}
		var err error
		prefs, err = parseProfile(req.Profile)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "a query needs a session id or an inline profile")
		return
	}
	res, outcome, err := a.srv.TopKContext(r.Context(), prefs, req.K, nil)
	if err != nil {
		if r.Context().Err() != nil && errors.Is(err, r.Context().Err()) {
			writeError(w, StatusClientClosedRequest, "client closed request")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	_, fp := combine.CanonicalProfile(prefs)
	rows := make([]resultRow, len(res))
	for i, t := range res {
		rows[i] = resultRow{PID: t.PID, Score: t.Intensity}
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Outcome:     outcome.String(),
		Fingerprint: fp.String(),
		K:           req.K,
		Results:     rows,
	})
}

func (a *App) handlePutProfile(w http.ResponseWriter, r *http.Request) {
	if !a.admitOr(w, r, a.queryGate) {
		return
	}
	id := r.PathValue("id")
	var req profileRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Profile) > a.opts.MaxProfilePrefs {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("profile has %d preferences, limit %d", len(req.Profile), a.opts.MaxProfilePrefs))
		return
	}
	prefs, err := parseProfile(req.Profile)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s, err := a.buildSession(prefs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	a.sessMu.Lock()
	a.sessions[id] = s
	a.sessMu.Unlock()
	writeJSON(w, http.StatusOK, profileResponse{
		Session:     id,
		Fingerprint: s.fp.String(),
		Profile:     s.entries,
	})
}

func (a *App) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	a.sessMu.RLock()
	s, ok := a.sessions[id]
	a.sessMu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	writeJSON(w, http.StatusOK, profileResponse{
		Session:     id,
		Fingerprint: s.fp.String(),
		Profile:     s.entries,
	})
}

func (a *App) handleMutate(w http.ResponseWriter, r *http.Request) {
	if !a.admitOr(w, r, a.mutateGate) {
		return
	}
	var req mutateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "a mutate call needs at least one op")
		return
	}
	if len(req.Ops) > a.opts.MaxOpsPerBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch has %d ops, limit %d", len(req.Ops), a.opts.MaxOpsPerBatch))
		return
	}
	// Apply and sync under one lock: the response promises the caches have
	// absorbed this batch, and interleaved batches would make the per-batch
	// sync stats meaningless.
	a.syncMu.Lock()
	applied := 0
	var applyErr error
	for _, op := range req.Ops {
		if applyErr = op.Do(a.db); applyErr != nil {
			break
		}
		applied++
	}
	stats, syncErr := a.maint.Sync()
	a.syncMu.Unlock()
	if applyErr != nil {
		writeError(w, http.StatusInternalServerError,
			fmt.Sprintf("op %d failed after %d applied: %v", applied, applied, applyErr))
		return
	}
	if syncErr != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("maintenance sync: %v", syncErr))
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{
		Applied:     applied,
		TouchedRows: stats.TouchedRows,
		FullRebuild: stats.FullRebuild,
	})
}

// --- helpers ---

// buildSession canonicalizes a parsed profile; a profile that canonicalizes
// to nothing is rejected (its fingerprint would alias every other empty
// profile and the query would rank nothing).
func (a *App) buildSession(prefs []hypre.ScoredPred) (*session, error) {
	canon, fp := combine.CanonicalProfile(prefs)
	if len(canon) == 0 {
		return nil, errors.New("profile canonicalizes to zero usable preferences")
	}
	if len(canon) > a.opts.MaxProfilePrefs {
		return nil, fmt.Errorf("profile has %d canonical preferences, limit %d", len(canon), a.opts.MaxProfilePrefs)
	}
	entries := make([]ProfileEntry, len(canon))
	for i, p := range canon {
		entries[i] = ProfileEntry{Pred: p.Pred, Intensity: p.Intensity}
	}
	return &session{canon: canon, fp: fp, entries: entries}, nil
}

// parseProfile parses wire preferences into scored predicates.
func parseProfile(entries []ProfileEntry) ([]hypre.ScoredPred, error) {
	prefs := make([]hypre.ScoredPred, 0, len(entries))
	for i, e := range entries {
		sp, err := hypre.NewScoredPred(e.Pred, e.Intensity)
		if err != nil {
			return nil, fmt.Errorf("profile[%d]: %v", i, err)
		}
		prefs = append(prefs, sp)
	}
	return prefs, nil
}

// decodeJSON reads a bounded request body; a false return means the error
// response is already written.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds 1 MiB")
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// Uncached answers a profile query on a fresh evaluator over the same store
// — the reference every cached answer must equal (the serve experiment and
// the e2e smoke assert through it).
func (a *App) Uncached(prefs []hypre.ScoredPred, k int) ([]combine.ScoredTuple, error) {
	canon, _ := combine.CanonicalProfile(prefs)
	ev := combine.NewEvaluator(a.db, workload.BaseQuery, "dblp.pid")
	out, _, err := topk.EvaluateOneShot(ev, canon, k)
	return out, err
}
