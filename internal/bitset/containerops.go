package bitset

import "math/bits"

// Binary set operations between two containers of the same high key. All of
// them are non-mutating: results are freshly allocated (or payload-shared
// via container.shared for the full-run short-circuits, which is safe
// because shared payloads are cow-guarded). Operands are never empty —
// Set-level code skips missing containers first.

// andCtr returns a ∩ b.
func andCtr(a, b *container) container {
	// Full-run short-circuits: intersecting with a full container is the
	// identity, so the other side is returned without touching its payload.
	if a.isFull() {
		return b.shared()
	}
	if b.isFull() {
		return a.shared()
	}
	// Order the dispatch by encoding pair.
	if b.typ < a.typ {
		a, b = b, a
	}
	switch {
	case a.typ == ctArray && b.typ == ctArray:
		return normalize(intersectArrays(a.arr, b.arr))
	case a.typ == ctArray && b.typ == ctBitmap:
		out := container{typ: ctArray, arr: make([]uint16, 0, len(a.arr))}
		for _, v := range a.arr {
			if b.contains(v) {
				out.arr = append(out.arr, v)
			}
		}
		out.card = int32(len(out.arr))
		return normalize(out)
	case a.typ == ctArray && b.typ == ctRun:
		out := container{typ: ctArray,
			arr: intersectArrayRuns(make([]uint16, 0, len(a.arr)), a.arr, b.runs)}
		out.card = int32(len(out.arr))
		return normalize(out)
	case a.typ == ctBitmap && b.typ == ctBitmap:
		// Stays a bitmap regardless of the result cardinality: intersection
		// chains (the PEPS DFS) AND ephemeral results repeatedly, and the
		// word-parallel loop with no re-encoding pass is what keeps each
		// step as cheap as the dense implementation's. Durable sets re-pick
		// encodings at construction (fromWords) or via Optimize.
		n := min(len(a.bmp), len(b.bmp))
		out := container{typ: ctBitmap, bmp: make([]uint64, n)}
		card := 0
		for i := 0; i < n; i++ {
			w := a.bmp[i] & b.bmp[i]
			out.bmp[i] = w
			card += bits.OnesCount64(w)
		}
		out.card = int32(card)
		if card == 0 {
			return container{}
		}
		return out
	case a.typ == ctBitmap && b.typ == ctRun:
		out := container{typ: ctBitmap, bmp: make([]uint64, len(a.bmp))}
		card := 0
		lim := len(a.bmp) << 6
		for _, r := range b.runs {
			lo, hi := int(r.start), int(r.last)+1
			if lo >= lim {
				break
			}
			hi = min(hi, lim)
			wordsSetRange(out.bmp, lo, hi)
		}
		for i := range out.bmp {
			w := out.bmp[i] & a.bmp[i]
			out.bmp[i] = w
			card += bits.OnesCount64(w)
		}
		out.card = int32(card)
		return normalize(out)
	default: // run × run: two-pointer interval intersection
		out := container{typ: ctRun}
		card := 0
		i, j := 0, 0
		for i < len(a.runs) && j < len(b.runs) {
			ra, rb := a.runs[i], b.runs[j]
			lo := max(ra.start, rb.start)
			hi := minU16(ra.last, rb.last)
			if lo <= hi {
				out.runs = append(out.runs, interval{lo, hi})
				card += int(hi) - int(lo) + 1
			}
			if ra.last < rb.last {
				i++
			} else {
				j++
			}
		}
		out.card = int32(card)
		if card == 0 {
			return container{}
		}
		return out
	}
}

// intersectArrays intersects two sorted arrays, galloping through the
// larger side when the sizes are lopsided (gallopRatio).
func intersectArrays(a, b []uint16) container {
	if len(a) > len(b) {
		a, b = b, a
	}
	arr := intersectArraysInto(make([]uint16, 0, len(a)), a, b)
	return container{typ: ctArray, card: int32(len(arr)), arr: arr}
}

// intersectArraysInto appends a ∩ b to dst (a is the smaller side or the
// caller doesn't care), galloping when lopsided.
func intersectArraysInto(dst, a, b []uint16) []uint16 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopRatio*len(a) {
		lo := 0
		for _, v := range a {
			lo = gallopU16(b, lo, v)
			if lo >= len(b) {
				break
			}
			if b[lo] == v {
				dst = append(dst, v)
				lo++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Word-parallel-friendly skip: a[i..i+3] are all below b[j] (resp.
		// b[j..j+3] below a[i]), so none can intersect — stride past them
		// four at a time before the element-wise merge step.
		for i+4 <= len(a) && a[i+3] < b[j] {
			i += 4
		}
		if i == len(a) {
			break
		}
		for j+4 <= len(b) && b[j+3] < a[i] {
			j += 4
		}
		if j == len(b) {
			break
		}
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// gallopU16 returns the smallest index i >= from with arr[i] >= v, probing
// at exponentially growing offsets before binary-searching the bracket.
func gallopU16(arr []uint16, from int, v uint16) int {
	if from >= len(arr) || arr[from] >= v {
		return from
	}
	step := 1
	lo, hi := from, from+1
	for hi < len(arr) && arr[hi] < v {
		lo = hi
		step <<= 1
		hi = from + step
	}
	hi = min(hi, len(arr))
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// andCardCtr returns |a ∩ b| without materializing it.
func andCardCtr(a, b *container) int {
	if a.isFull() {
		return int(b.card)
	}
	if b.isFull() {
		return int(a.card)
	}
	if b.typ < a.typ {
		a, b = b, a
	}
	switch {
	case a.typ == ctArray && b.typ == ctArray:
		return andCardArrays(a.arr, b.arr)
	case a.typ == ctArray && b.typ == ctBitmap:
		n := 0
		for _, v := range a.arr {
			if b.contains(v) {
				n++
			}
		}
		return n
	case a.typ == ctArray && b.typ == ctRun:
		return andCardArrayRuns(a.arr, b.runs)
	case a.typ == ctBitmap && b.typ == ctBitmap:
		n := 0
		for i, lim := 0, min(len(a.bmp), len(b.bmp)); i < lim; i++ {
			n += bits.OnesCount64(a.bmp[i] & b.bmp[i])
		}
		return n
	case a.typ == ctBitmap && b.typ == ctRun:
		n := 0
		for _, r := range b.runs {
			n += onesInRange(a.bmp, int(r.start), int(r.last)+1)
		}
		return n
	default:
		n := 0
		i, j := 0, 0
		for i < len(a.runs) && j < len(b.runs) {
			ra, rb := a.runs[i], b.runs[j]
			lo := max(ra.start, rb.start)
			hi := minU16(ra.last, rb.last)
			if lo <= hi {
				n += int(hi) - int(lo) + 1
			}
			if ra.last < rb.last {
				i++
			} else {
				j++
			}
		}
		return n
	}
}

// andCardArrays counts the sorted-array intersection, galloping when
// lopsided.
func andCardArrays(a, b []uint16) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	if len(b) >= gallopRatio*len(a) {
		lo := 0
		for _, v := range a {
			lo = gallopU16(b, lo, v)
			if lo >= len(b) {
				break
			}
			if b[lo] == v {
				n++
				lo++
			}
		}
		return n
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Same 4-wide stride as intersectArraysInto.
		for i+4 <= len(a) && a[i+3] < b[j] {
			i += 4
		}
		if i == len(a) {
			break
		}
		for j+4 <= len(b) && b[j+3] < a[i] {
			j += 4
		}
		if j == len(b) {
			break
		}
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// onesInRange popcounts bits [lo, hi) of a truncated word vector.
func onesInRange(bmp []uint64, lo, hi int) int {
	hi = min(hi, len(bmp)<<6)
	if lo >= hi {
		return 0
	}
	lw, hw := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if lw == hw {
		return bits.OnesCount64(bmp[lw] & loMask & hiMask)
	}
	n := bits.OnesCount64(bmp[lw] & loMask)
	for w := lw + 1; w < hw; w++ {
		n += bits.OnesCount64(bmp[w])
	}
	return n + bits.OnesCount64(bmp[hw]&hiMask)
}

// intersectsCtr reports a ∩ b ≠ ∅ with early exit.
func intersectsCtr(a, b *container) bool {
	if a.isFull() || b.isFull() {
		return true // operands are never empty
	}
	if b.typ < a.typ {
		a, b = b, a
	}
	switch {
	case a.typ == ctArray && b.typ == ctArray:
		sm, lg := a.arr, b.arr
		if len(sm) > len(lg) {
			sm, lg = lg, sm
		}
		if len(lg) >= gallopRatio*len(sm) {
			lo := 0
			for _, v := range sm {
				lo = gallopU16(lg, lo, v)
				if lo >= len(lg) {
					return false
				}
				if lg[lo] == v {
					return true
				}
			}
			return false
		}
		i, j := 0, 0
		for i < len(sm) && j < len(lg) {
			switch {
			case sm[i] < lg[j]:
				i++
			case sm[i] > lg[j]:
				j++
			default:
				return true
			}
		}
		return false
	case a.typ == ctArray && b.typ == ctBitmap:
		for _, v := range a.arr {
			if b.contains(v) {
				return true
			}
		}
		return false
	case a.typ == ctArray && b.typ == ctRun:
		for _, v := range a.arr {
			if searchRuns(b.runs, v) >= 0 {
				return true
			}
		}
		return false
	case a.typ == ctBitmap && b.typ == ctBitmap:
		for i, lim := 0, min(len(a.bmp), len(b.bmp)); i < lim; i++ {
			if a.bmp[i]&b.bmp[i] != 0 {
				return true
			}
		}
		return false
	case a.typ == ctBitmap && b.typ == ctRun:
		for _, r := range b.runs {
			if onesInRange(a.bmp, int(r.start), int(r.last)+1) > 0 {
				return true
			}
		}
		return false
	default:
		i, j := 0, 0
		for i < len(a.runs) && j < len(b.runs) {
			ra, rb := a.runs[i], b.runs[j]
			if max(ra.start, rb.start) <= minU16(ra.last, rb.last) {
				return true
			}
			if ra.last < rb.last {
				i++
			} else {
				j++
			}
		}
		return false
	}
}

// orCtr returns a ∪ b.
func orCtr(a, b *container) container {
	if a.isFull() || b.isFull() {
		return fullContainer()
	}
	if a.typ == ctRun && b.typ == ctRun {
		return orRuns(a.runs, b.runs)
	}
	if a.typ == ctArray && b.typ == ctArray && int(a.card)+int(b.card) <= 4096 {
		return normalize(mergeArrays(a.arr, b.arr))
	}
	// General case: materialize into a dense accumulator covering both.
	hi := max(a.maxLow(), b.maxLow())
	out := container{typ: ctBitmap, bmp: make([]uint64, hi>>6+1)}
	orInto(out.bmp, a)
	orInto(out.bmp, b)
	card := 0
	for _, w := range out.bmp {
		card += bits.OnesCount64(w)
	}
	out.card = int32(card)
	return normalize(out)
}

// orRuns merges two run lists.
func orRuns(a, b []interval) container {
	out := container{typ: ctRun}
	card := 0
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var r interval
		if j >= len(b) || (i < len(a) && a[i].start <= b[j].start) {
			r = a[i]
			i++
		} else {
			r = b[j]
			j++
		}
		if n := len(out.runs); n > 0 && int(out.runs[n-1].last)+1 >= int(r.start) {
			if r.last > out.runs[n-1].last {
				card += int(r.last) - int(out.runs[n-1].last)
				out.runs[n-1].last = r.last
			}
		} else {
			out.runs = append(out.runs, r)
			card += int(r.last) - int(r.start) + 1
		}
	}
	out.card = int32(card)
	return out
}

// mergeArrays unions two sorted arrays.
func mergeArrays(a, b []uint16) container {
	out := container{typ: ctArray, arr: make([]uint16, 0, len(a)+len(b))}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out.arr = append(out.arr, a[i])
			i++
		case a[i] > b[j]:
			out.arr = append(out.arr, b[j])
			j++
		default:
			out.arr = append(out.arr, a[i])
			i++
			j++
		}
	}
	out.arr = append(out.arr, a[i:]...)
	out.arr = append(out.arr, b[j:]...)
	out.card = int32(len(out.arr))
	return out
}

// orInto sets every bit of c in a dense word vector that covers c.
func orInto(bmp []uint64, c *container) {
	switch c.typ {
	case ctArray:
		for _, v := range c.arr {
			bmp[v>>6] |= 1 << (v & 63)
		}
	case ctBitmap:
		// c.bmp may carry trailing zero words past c's maxLow (AND results
		// keep their allocation length); bmp covers maxLow, so the excess
		// is all-zero and safe to drop.
		for i, w := range c.bmp[:min(len(bmp), len(c.bmp))] {
			bmp[i] |= w
		}
	case ctRun:
		for _, r := range c.runs {
			wordsSetRange(bmp, int(r.start), int(r.last)+1)
		}
	}
}

// andNotCtr returns a \ b.
func andNotCtr(a, b *container) container {
	if b.isFull() {
		return container{}
	}
	switch a.typ {
	case ctArray:
		out := container{typ: ctArray}
		for _, v := range a.arr {
			if !b.contains(v) {
				out.arr = append(out.arr, v)
			}
		}
		out.card = int32(len(out.arr))
		return normalize(out)
	case ctBitmap:
		out := container{typ: ctBitmap, bmp: append([]uint64(nil), a.bmp...)}
		clearFrom(out.bmp, b)
		card := 0
		for _, w := range out.bmp {
			card += bits.OnesCount64(w)
		}
		out.card = int32(card)
		return normalize(out)
	default:
		ab := a.toBitmap()
		return andNotCtr(&ab, b)
	}
}

// clearFrom clears every bit of c from a truncated word vector.
func clearFrom(bmp []uint64, c *container) {
	lim := len(bmp) << 6
	switch c.typ {
	case ctArray:
		for _, v := range c.arr {
			if int(v) < lim {
				bmp[v>>6] &^= 1 << (v & 63)
			}
		}
	case ctBitmap:
		for i, lim := 0, min(len(bmp), len(c.bmp)); i < lim; i++ {
			bmp[i] &^= c.bmp[i]
		}
	case ctRun:
		for _, r := range c.runs {
			lo, hi := int(r.start), int(r.last)+1
			if lo >= lim {
				break
			}
			hi = min(hi, lim)
			clearRange(bmp, lo, hi)
		}
	}
}

// clearRange clears bits [lo, hi) in a word vector that covers hi.
func clearRange(words []uint64, lo, hi int) {
	if lo >= hi {
		return
	}
	lw, hw := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if lw == hw {
		words[lw] &^= loMask & hiMask
		return
	}
	words[lw] &^= loMask
	for w := lw + 1; w < hw; w++ {
		words[w] = 0
	}
	words[hw] &^= hiMask
}

// notCtr complements a within low values [0, limit] (limit inclusive).
func notCtr(a *container, limit int) container {
	if a.isEmpty() {
		return rangeContainer(0, limit)
	}
	if a.typ == ctRun {
		// Complementing runs is runs again: the gaps.
		out := container{typ: ctRun}
		card := 0
		next := 0
		for _, r := range a.runs {
			if int(r.start) > limit {
				break
			}
			if next < int(r.start) {
				out.runs = append(out.runs, interval{uint16(next), r.start - 1})
				card += int(r.start) - next
			}
			next = int(r.last) + 1
		}
		if next <= limit {
			out.runs = append(out.runs, interval{uint16(next), uint16(limit)})
			card += limit - next + 1
		}
		out.card = int32(card)
		if card == 0 {
			return container{}
		}
		return out
	}
	ab := a.toBitmap()
	words := ab.bmp
	n := limit>>6 + 1
	for len(words) < n {
		words = append(words, 0)
	}
	words = words[:n]
	for i := range words {
		words[i] = ^words[i]
	}
	if tail := uint(limit+1) & 63; tail != 0 {
		words[n-1] &= ^uint64(0) >> (64 - tail)
	}
	card := 0
	for _, w := range words {
		card += bits.OnesCount64(w)
	}
	out := container{typ: ctBitmap, card: int32(card), bmp: words}
	return normalize(out)
}

// rangeContainer builds a run container covering [lo, hi] inclusive.
func rangeContainer(lo, hi int) container {
	return container{
		typ:  ctRun,
		card: int32(hi - lo + 1),
		runs: []interval{{uint16(lo), uint16(hi)}},
	}
}

func fullContainer() container { return rangeContainer(0, containerSpan-1) }

func minU16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}
