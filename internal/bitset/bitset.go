// Package bitset implements the adaptive compressed bitmap shared by every
// hot layer of the engine: the combination evaluator's predicate sets and
// PEPS chain intersections (internal/combine), relstore's scan selections,
// tombstone masks, and join-existence vectors, the delta maintainer's
// touched-row masks, and the top-k list builder's iteration.
//
// The representation is roaring-style: keys partition into 64k-wide spans,
// each held by a container that switches between sorted-array, truncated
// dense-bitmap, and run encodings on byte-size thresholds (see container.go).
// Sparse predicate sets therefore cost bytes proportional to their
// cardinality instead of the full domain, while dense sets keep the
// word-parallel algebra of a plain bitmap — which is what makes the swap a
// pure representation change: results are bit-identical to the dense
// implementation it replaces.
//
// Concurrency: a Set is not safe for concurrent mutation, but the binary
// operations (And, Or, AndNot, AndCard, Intersects) never mutate their
// operands, so built Sets can be shared across goroutines. Clone is
// copy-on-write at container granularity: the clone shares payloads until
// either side's first mutation, which is what keeps the delta maintainer's
// bitmap patches cheap.
package bitset

import "math/bits"

// Set is an adaptive compressed bitmap over non-negative integer keys.
//
// The one-container case (any domain under 65536 keys — every per-table
// selection and dense-dictionary bitmap in this engine) is the common one,
// so the key and container vectors start out backed by inline arrays:
// building or intersecting such a set costs one heap object for the Set
// plus the payload, the same allocation count as the dense word-vector
// representation this package replaced. Multi-container sets spill to the
// heap through ordinary append growth.
type Set struct {
	keys []uint32    // sorted container high keys (key >> 16)
	cs   []container // parallel to keys
	card int
	k0   [1]uint32    // inline backing for the single-container case
	c0   [1]container //
}

// New returns an empty set.
func New() *Set {
	s := &Set{}
	s.keys = s.k0[:0:1]
	s.cs = s.c0[:0:1]
	return s
}

// Len returns the cardinality.
func (s *Set) Len() int { return s.card }

// IsEmpty reports whether no key is set.
func (s *Set) IsEmpty() bool { return s.card == 0 }

// find returns the container index holding high key hk, or -1.
func (s *Set) find(hk uint32) int {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.keys[mid] < hk {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.keys) && s.keys[lo] == hk {
		return lo
	}
	return -1
}

// insertAt places a container for hk at sorted position.
func (s *Set) insertAt(hk uint32, c container) {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.keys[mid] < hk {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.keys = append(s.keys, 0)
	s.cs = append(s.cs, container{})
	copy(s.keys[lo+1:], s.keys[lo:])
	copy(s.cs[lo+1:], s.cs[lo:])
	s.keys[lo] = hk
	s.cs[lo] = c
}

// Add sets key i, reporting whether it was newly set.
func (s *Set) Add(i int) bool {
	hk, low := uint32(i>>16), uint16(i)
	if ci := s.find(hk); ci >= 0 {
		if s.cs[ci].add(low) {
			s.card++
			return true
		}
		return false
	}
	s.insertAt(hk, container{typ: ctArray, card: 1, arr: []uint16{low}})
	s.card++
	return true
}

// Remove clears key i, reporting whether it was set.
func (s *Set) Remove(i int) bool {
	ci := s.find(uint32(i >> 16))
	if ci < 0 {
		return false
	}
	if !s.cs[ci].remove(uint16(i)) {
		return false
	}
	s.card--
	if s.cs[ci].isEmpty() {
		s.removeAt(ci)
	}
	return true
}

func (s *Set) removeAt(ci int) {
	s.keys = append(s.keys[:ci], s.keys[ci+1:]...)
	s.cs = append(s.cs[:ci], s.cs[ci+1:]...)
}

// Contains reports whether key i is set.
func (s *Set) Contains(i int) bool {
	ci := s.find(uint32(i >> 16))
	return ci >= 0 && s.cs[ci].contains(uint16(i))
}

// AddRange sets keys [lo, hi) in bulk, landing as run containers for every
// fully covered span — the zone-map bulk-accept and alive-mask shape.
func (s *Set) AddRange(lo, hi int) {
	for lo < hi {
		hk := uint32(lo >> 16)
		spanEnd := (int(hk) + 1) << 16
		end := min(hi, spanEnd)
		cLo, cHi := lo&0xffff, (end-1)&0xffff
		if ci := s.find(hk); ci >= 0 {
			r := rangeContainer(cLo, cHi)
			merged := orCtr(&s.cs[ci], &r)
			s.card += int(merged.card - s.cs[ci].card)
			s.cs[ci] = merged
		} else {
			s.insertAt(hk, rangeContainer(cLo, cHi))
			s.card += cHi - cLo + 1
		}
		lo = end
	}
}

// Clone returns a copy sharing container payloads copy-on-write: O(number
// of containers), with the clone's first mutation of a container unsharing
// just that container. The original must not be mutated in place afterwards
// — cached sets handed to other goroutines are only ever patched through a
// Clone, the same discipline the dense implementation required.
func (s *Set) Clone() *Set {
	out := &Set{
		keys: append([]uint32(nil), s.keys...),
		cs:   make([]container, len(s.cs)),
		card: s.card,
	}
	for i := range s.cs {
		out.cs[i] = s.cs[i].shared()
	}
	return out
}

// And returns s ∩ o as a new set.
func (s *Set) And(o *Set) *Set {
	out := New()
	if n := min(len(s.keys), len(o.keys)); n > 1 {
		out.keys = make([]uint32, 0, n)
		out.cs = make([]container, 0, n)
	}
	i, j := 0, 0
	for i < len(s.keys) && j < len(o.keys) {
		switch {
		case s.keys[i] < o.keys[j]:
			i++
		case s.keys[i] > o.keys[j]:
			j++
		default:
			c := andCtr(&s.cs[i], &o.cs[j])
			if !c.isEmpty() {
				out.keys = append(out.keys, s.keys[i])
				out.cs = append(out.cs, c)
				out.card += int(c.card)
			}
			i++
			j++
		}
	}
	return out
}

// AndCard returns |s ∩ o| without materializing the intersection.
func (s *Set) AndCard(o *Set) int {
	n := 0
	i, j := 0, 0
	for i < len(s.keys) && j < len(o.keys) {
		switch {
		case s.keys[i] < o.keys[j]:
			i++
		case s.keys[i] > o.keys[j]:
			j++
		default:
			n += andCardCtr(&s.cs[i], &o.cs[j])
			i++
			j++
		}
	}
	return n
}

// Intersects reports s ∩ o ≠ ∅, with container-level early exit.
func (s *Set) Intersects(o *Set) bool {
	i, j := 0, 0
	for i < len(s.keys) && j < len(o.keys) {
		switch {
		case s.keys[i] < o.keys[j]:
			i++
		case s.keys[i] > o.keys[j]:
			j++
		default:
			if intersectsCtr(&s.cs[i], &o.cs[j]) {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// Or returns s ∪ o as a new set.
func (s *Set) Or(o *Set) *Set {
	out := New()
	i, j := 0, 0
	for i < len(s.keys) || j < len(o.keys) {
		switch {
		case j >= len(o.keys) || (i < len(s.keys) && s.keys[i] < o.keys[j]):
			out.keys = append(out.keys, s.keys[i])
			out.cs = append(out.cs, s.cs[i].shared())
			out.card += int(s.cs[i].card)
			i++
		case i >= len(s.keys) || s.keys[i] > o.keys[j]:
			out.keys = append(out.keys, o.keys[j])
			out.cs = append(out.cs, o.cs[j].shared())
			out.card += int(o.cs[j].card)
			j++
		default:
			c := orCtr(&s.cs[i], &o.cs[j])
			out.keys = append(out.keys, s.keys[i])
			out.cs = append(out.cs, c)
			out.card += int(c.card)
			i++
			j++
		}
	}
	return out
}

// AndNot returns s \ o as a new set.
func (s *Set) AndNot(o *Set) *Set {
	out := New()
	j := 0
	for i := range s.keys {
		for j < len(o.keys) && o.keys[j] < s.keys[i] {
			j++
		}
		if j < len(o.keys) && o.keys[j] == s.keys[i] {
			c := andNotCtr(&s.cs[i], &o.cs[j])
			if !c.isEmpty() {
				out.keys = append(out.keys, s.keys[i])
				out.cs = append(out.cs, c)
				out.card += int(c.card)
			}
		} else {
			out.keys = append(out.keys, s.keys[i])
			out.cs = append(out.cs, s.cs[i].shared())
			out.card += int(s.cs[i].card)
		}
	}
	return out
}

// AndWith replaces s with s ∩ o in place (s must be privately owned).
func (s *Set) AndWith(o *Set) { s.replaceWith(s.And(o)) }

// AndInto computes a ∩ b into s, reusing s's payload storage when the
// shapes line up — the single-container fast paths that keep a chain of
// intersections (the PEPS DFS) allocation-free in steady state. s must be
// privately owned and must not alias a or b; any previous contents are
// discarded. Empty results park their buffer in the inline container, so a
// dead-end chain step keeps the storage for the next sibling.
func (s *Set) AndInto(a, b *Set) {
	if len(a.keys) != 1 || len(b.keys) != 1 || a.keys[0] != b.keys[0] {
		s.replaceWith(a.And(b))
		return
	}
	ca, cb := &a.cs[0], &b.cs[0]
	if cb.typ < ca.typ {
		ca, cb = cb, ca
	}
	switch {
	case ca.typ == ctBitmap && cb.typ == ctBitmap:
		n := min(len(ca.bmp), len(cb.bmp))
		var dst []uint64
		if c := &s.c0[0]; c.typ == ctBitmap && !c.cow && cap(c.bmp) >= n {
			dst = c.bmp[:n]
		} else {
			dst = make([]uint64, n)
		}
		card := 0
		for i := 0; i < n; i++ {
			w := ca.bmp[i] & cb.bmp[i]
			dst[i] = w
			card += bits.OnesCount64(w)
		}
		s.c0[0] = container{typ: ctBitmap, card: int32(card), bmp: dst}
		s.publishInline(a.keys[0], card)
	case ca.typ == ctArray:
		// Array result no larger than the array operand; probe or merge
		// into a reused element buffer. Scratch results skip re-encoding —
		// they are ephemeral by contract.
		var dst []uint16
		if c := &s.c0[0]; c.typ == ctArray && !c.cow && cap(c.arr) >= len(ca.arr) {
			dst = c.arr[:0]
		} else {
			dst = make([]uint16, 0, len(ca.arr))
		}
		switch cb.typ {
		case ctArray:
			dst = intersectArraysInto(dst, ca.arr, cb.arr)
		case ctBitmap:
			for _, v := range ca.arr {
				if cb.contains(v) {
					dst = append(dst, v)
				}
			}
		default:
			if cb.isFull() {
				dst = append(dst, ca.arr...)
			} else {
				dst = intersectArrayRuns(dst, ca.arr, cb.runs)
			}
		}
		s.c0[0] = container{typ: ctArray, card: int32(len(dst)), arr: dst}
		s.publishInline(a.keys[0], len(dst))
	default:
		s.replaceWith(a.And(b))
	}
}

// publishInline points the set at its inline container, holding card keys
// (an empty view when card is 0, with the container parked for buffer
// reuse).
func (s *Set) publishInline(hk uint32, card int) {
	s.card = card
	if card == 0 {
		s.keys = s.k0[:0]
		s.cs = s.c0[:0]
		return
	}
	s.keys = s.k0[:1]
	s.keys[0] = hk
	s.cs = s.c0[:1]
}

// OrWith replaces s with s ∪ o in place (s must be privately owned).
func (s *Set) OrWith(o *Set) { s.replaceWith(s.Or(o)) }

// AndNotWith replaces s with s \ o in place (s must be privately owned).
func (s *Set) AndNotWith(o *Set) { s.replaceWith(s.AndNot(o)) }

func (s *Set) replaceWith(o *Set) { *s = *o }

// Not complements s in place over the key domain [0, n).
func (s *Set) Not(n int) {
	if n <= 0 {
		s.replaceWith(New())
		return
	}
	out := New()
	lastHK := uint32((n - 1) >> 16)
	ci := 0
	for hk := uint32(0); hk <= lastHK; hk++ {
		limit := containerSpan - 1
		if hk == lastHK {
			limit = (n - 1) & 0xffff
		}
		var c container
		if ci < len(s.keys) && s.keys[ci] == hk {
			c = notCtr(&s.cs[ci], limit)
			ci++
		} else {
			c = rangeContainer(0, limit)
		}
		if !c.isEmpty() {
			out.keys = append(out.keys, hk)
			out.cs = append(out.cs, c)
			out.card += int(c.card)
		}
	}
	s.replaceWith(out)
}

// Retain keeps exactly the keys fn approves — the delta path's
// drop-unpartnered filter. Containers re-encode to their smallest form.
func (s *Set) Retain(fn func(i int) bool) {
	out := New()
	for i, hk := range s.keys {
		base := int(hk) << 16
		kept := container{typ: ctArray}
		s.cs[i].forEach(base, func(v int) bool {
			if fn(v) {
				kept.arr = append(kept.arr, uint16(v-base))
			}
			return true
		})
		kept.card = int32(len(kept.arr))
		if !kept.isEmpty() {
			c := normalize(kept)
			out.keys = append(out.keys, hk)
			out.cs = append(out.cs, c)
			out.card += int(c.card)
		}
	}
	s.replaceWith(out)
}

// ForEach visits every set key ascending; fn returning false stops the walk.
func (s *Set) ForEach(fn func(i int) bool) {
	for i, hk := range s.keys {
		if !s.cs[i].forEach(int(hk)<<16, fn) {
			return
		}
	}
}

// NextSet returns the smallest set key >= from, or ok=false. The
// container holding from is bisected to, so a loop of NextSet jumps costs
// O(log containers) per call, not a scan of the key list.
func (s *Set) NextSet(from int) (int, bool) {
	if from < 0 {
		from = 0
	}
	hk := uint32(from >> 16)
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.keys[mid] < hk {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < len(s.keys); i++ {
		start := 0
		if s.keys[i] == hk {
			start = from & 0xffff
		}
		if v, ok := s.cs[i].nextSet(start); ok {
			return int(s.keys[i])<<16 + v, true
		}
	}
	return 0, false
}

// Max returns the largest set key; ok=false when the set is empty.
func (s *Set) Max() (int, bool) {
	if s.card == 0 {
		return 0, false
	}
	last := len(s.keys) - 1
	return int(s.keys[last])<<16 + s.cs[last].maxLow(), true
}

// Optimize re-encodes every container to its smallest of the three forms,
// including run detection — worth one pass after bulk point construction
// (e.g. the join-existence vector, which is mostly ranges).
func (s *Set) Optimize() {
	for i := range s.cs {
		s.cs[i] = optimize(s.cs[i])
	}
}

// SizeBytes returns the set's serialized footprint: container payloads
// plus one metadata word per container plus a fixed set header — the
// MemStats currency every layer rolls up. Like roaring's size accounting,
// Go object headers are excluded; the matching dense baseline
// (combine.Bitmap.DenseSizeBytes) excludes them too, so the
// dense-over-compressed ratios compare representations one-to-one.
func (s *Set) SizeBytes() int64 {
	n := int64(8)
	for i := range s.cs {
		n += s.cs[i].sizeBytes()
	}
	return n
}

// FromWords builds a set from a dense selection-vector view (bit i of
// words[i>>6] = key i), re-encoding each 64k span adaptively.
func FromWords(words []uint64) *Set {
	out := New()
	for base := 0; base < len(words); base += maxWords {
		chunk := words[base:min(base+maxWords, len(words))]
		c := fromWords(chunk)
		if !c.isEmpty() {
			out.keys = append(out.keys, uint32(base/maxWords))
			out.cs = append(out.cs, c)
			out.card += int(c.card)
		}
	}
	return out
}

// ToWords materializes the dense selection-vector view covering keys
// [0, 64*nWords) — the compatibility bridge for callers still speaking raw
// word slices.
func (s *Set) ToWords(nWords int) []uint64 {
	out := make([]uint64, nWords)
	s.ForEach(func(i int) bool {
		w := i >> 6
		if w >= nWords {
			return false // ascending: nothing further fits
		}
		out[w] |= 1 << (uint(i) & 63)
		return true
	})
	return out
}
