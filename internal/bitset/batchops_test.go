package bitset

import (
	"math/rand"
	"testing"
)

// shapedSet draws a set whose containers are pushed toward a specific
// encoding, with keys clustered around container boundaries (multiples of
// containerSpan ± 1) so the batch kernels cross key-merge edges, and with
// wildly lopsided cardinalities so every skip stride and gallop path runs.
func shapedSet(rng *rand.Rand, maxVal int) (*Set, refSet) {
	s := New()
	ref := refSet{}
	add := func(v int) {
		if v < 0 || v >= maxVal {
			return
		}
		s.Add(v)
		ref[v] = true
	}
	addRange := func(lo, hi int) {
		if lo < 0 {
			lo = 0
		}
		if hi > maxVal {
			hi = maxVal
		}
		if lo >= hi {
			return
		}
		s.AddRange(lo, hi)
		for v := lo; v < hi; v++ {
			ref[v] = true
		}
	}
	nContainers := 1 + maxVal/containerSpan
	for c := 0; c < nContainers; c++ {
		base := c * containerSpan
		switch rng.Intn(5) {
		case 0: // sparse array container
			for n := rng.Intn(40); n > 0; n-- {
				add(base + rng.Intn(containerSpan))
			}
		case 1: // dense enough to force a bitmap
			if rng.Intn(2) == 0 {
				for n := 0; n < 5000; n++ {
					add(base + rng.Intn(containerSpan))
				}
			}
		case 2: // run stretches
			for n := rng.Intn(4); n > 0; n-- {
				lo := base + rng.Intn(containerSpan)
				addRange(lo, lo+1+rng.Intn(3000))
			}
		case 3: // boundary-hugging singletons
			add(base - 1)
			add(base)
			add(base + 1)
			add(base + containerSpan - 1)
		case 4: // empty container (key-merge must skip it)
		}
	}
	s.Optimize()
	return s, ref
}

func refAnd(a, b refSet) refSet {
	out := refSet{}
	for v := range a {
		if b[v] {
			out[v] = true
		}
	}
	return out
}

// The batch intersection kernels sit under And/AndCard/AndInto; every
// randomized pair here crosses the array×array stride paths, the array×run
// forward merge, and bitmap×array transitions, and the results must match
// the map oracle exactly.
func TestBatchKernelShapes(t *testing.T) {
	const maxVal = 4 * containerSpan
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, ra := shapedSet(rng, maxVal)
		b, rb := shapedSet(rng, maxVal)
		want := refAnd(ra, rb)

		checkEqual(t, "And", a.And(b), want, maxVal)
		if got := a.AndCard(b); got != len(want) {
			t.Fatalf("seed %d: AndCard=%d want %d", seed, got, len(want))
		}
		dst := New()
		dst.AndInto(a, b)
		checkEqual(t, "AndInto", dst, want, maxVal)
		// a and b must be untouched by any scratch reuse.
		checkEqual(t, "And lhs intact", a, ra, maxVal)
		checkEqual(t, "And rhs intact", b, rb, maxVal)
	}
}

// AndCardInto prices a whole operand row through one reused scratch slice;
// the counts must match per-pair AndCard no matter how the scratch is
// recycled across calls or how lopsided the operands are.
func TestAndCardIntoScratchReuse(t *testing.T) {
	const maxVal = 3 * containerSpan
	rng := rand.New(rand.NewSource(99))
	var scratch []int
	for round := 0; round < 20; round++ {
		anchor, _ := shapedSet(rng, maxVal)
		ops := make([]*Set, 1+rng.Intn(6))
		for i := range ops {
			if rng.Intn(4) == 0 { // lopsided: near-empty operand
				ops[i] = New()
				ops[i].Add(rng.Intn(maxVal))
			} else {
				ops[i], _ = shapedSet(rng, maxVal)
			}
		}
		scratch = anchor.AndCardInto(ops, scratch[:0])
		if len(scratch) != len(ops) {
			t.Fatalf("round %d: %d counts for %d operands", round, len(scratch), len(ops))
		}
		for i, o := range ops {
			if want := anchor.AndCard(o); scratch[i] != want {
				t.Fatalf("round %d op %d: AndCardInto=%d, AndCard=%d", round, i, scratch[i], want)
			}
		}
	}
}

// Direct brute-force check of the array×run forward merges, including runs
// touching 0 and 65535 and arrays denser than the run cover.
func TestArrayRunsMergeBruteForce(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var arr []uint16
		for v := 0; v < 1<<16; v += 1 + rng.Intn(600) {
			arr = append(arr, uint16(v))
		}
		var runs []interval
		for v := rng.Intn(2000); v < 1<<16; {
			last := v + rng.Intn(4000)
			if last > 0xFFFF {
				last = 0xFFFF
			}
			runs = append(runs, interval{start: uint16(v), last: uint16(last)})
			if last >= 0xFFFF {
				break
			}
			v = last + 1 + rng.Intn(2000)
		}
		inRuns := func(v uint16) bool {
			for _, r := range runs {
				if v >= r.start && v <= r.last {
					return true
				}
			}
			return false
		}
		var want []uint16
		for _, v := range arr {
			if inRuns(v) {
				want = append(want, v)
			}
		}
		got := intersectArrayRuns(nil, arr, runs)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d values, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: [%d]=%d want %d", seed, i, got[i], want[i])
			}
		}
		if n := andCardArrayRuns(arr, runs); n != len(want) {
			t.Fatalf("seed %d: card=%d want %d", seed, n, len(want))
		}
	}
}

// ReadBlock must extract any aligned 1024-row window from any container
// encoding, and the Block word ops must behave like the per-bit oracle.
func TestBlockOpsBruteForce(t *testing.T) {
	const maxVal = 3 * containerSpan
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, ref := shapedSet(rng, maxVal)
		var blk, other Block
		for base := 0; base < maxVal; base += BlockBits {
			s.ReadBlock(base, &blk)
			var got []int
			blk.ForEach(func(i int) bool { got = append(got, i); return true })
			var want []int
			for v := base; v < base+BlockBits; v++ {
				if ref[v] {
					want = append(want, v)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d base %d: %d rows, want %d", seed, base, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d base %d: row %d want %d", seed, base, got[i], want[i])
				}
			}
			if blk.Count() != len(want) {
				t.Fatalf("seed %d base %d: Count=%d want %d", seed, base, blk.Count(), len(want))
			}
			if blk.Any() != (len(want) > 0) {
				t.Fatalf("seed %d base %d: Any=%v with %d rows", seed, base, blk.Any(), len(want))
			}

			other.Reset(base)
			lo, hi := base+rng.Intn(BlockBits), base+rng.Intn(BlockBits)
			if lo > hi {
				lo, hi = hi, lo
			}
			other.SetRange(lo, hi)
			member := func(b *Block, v int) bool {
				found := false
				b.ForEach(func(i int) bool {
					if i == v {
						found = true
						return false
					}
					return true
				})
				return found
			}
			and, or, andNot := blk, blk, blk
			and.And(&other)
			or.Or(&other)
			andNot.AndNot(&other)
			n := base + rng.Intn(BlockBits+1)
			not := blk
			not.Not(n)
			for probe := 0; probe < 40; probe++ {
				v := base + rng.Intn(BlockBits)
				inS, inR := ref[v], v >= lo && v < hi
				if member(&and, v) != (inS && inR) {
					t.Fatalf("seed %d: And wrong at %d", seed, v)
				}
				if member(&or, v) != (inS || inR) {
					t.Fatalf("seed %d: Or wrong at %d", seed, v)
				}
				if member(&andNot, v) != (inS && !inR) {
					t.Fatalf("seed %d: AndNot wrong at %d", seed, v)
				}
				if member(&not, v) != (!inS && v < n) {
					t.Fatalf("seed %d: Not(%d) wrong at %d", seed, n, v)
				}
			}
		}
	}
}
