package bitset

import "math/bits"

// A container holds the low 16 bits of the keys sharing one high-16-bit
// prefix, in whichever of three encodings is smallest for its population:
//
//   - array:  sorted []uint16, 2 bytes per element — sparse populations.
//   - bitmap: dense word vector, truncated after the last set bit (missing
//     high words read as zero), at most 1024 words — mid-density
//     populations. Truncation matters: the evaluator's dense sets over a
//     few-thousand-row domain must not pay the full 8 KiB a fixed roaring
//     container would.
//   - run:    sorted, non-overlapping, non-adjacent [start, last] intervals
//     (inclusive on both ends, so a run touching 65535 needs no 17-bit
//     arithmetic), 4 bytes per run — zone-map bulk-accepts, alive masks,
//     and other range-shaped populations.
//
// Containers are value types inside Set; the payload slices may be shared
// between Sets after Clone, guarded by the cow flag (see ensureOwned).
type container struct {
	typ  ctype
	cow  bool // payload shared with another Set; copy before mutating
	card int32
	arr  []uint16
	bmp  []uint64
	runs []interval
}

type ctype uint8

const (
	ctArray ctype = iota
	ctBitmap
	ctRun
)

// interval is one run: every low value in [start, last], both inclusive.
type interval struct{ start, last uint16 }

const (
	containerSpan = 1 << 16
	maxWords      = containerSpan / 64
	// gallopRatio is the size lopsidedness beyond which array×array
	// intersection switches from the linear merge to galloping
	// (exponential-probe) search: merge is O(n+m), gallop O(n log m).
	gallopRatio = 8
)

// sizes of each encoding in payload bytes, used to pick the smallest.
func sizeArray(card int) int { return 2 * card }
func sizeRun(nRuns int) int  { return 4 * nRuns }
func sizeBitmap(maxLow int) int {
	return 8 * (maxLow>>6 + 1)
}

// isEmpty reports a zero population.
func (c *container) isEmpty() bool { return c.card == 0 }

// isFull reports the container holds every one of its 65536 keys — the
// run-encoded fast-path operand: AND returns the other side unchanged, OR
// returns full, ANDNOT by it returns empty.
func (c *container) isFull() bool {
	return c.typ == ctRun && len(c.runs) == 1 &&
		c.runs[0].start == 0 && c.runs[0].last == containerSpan-1
}

// maxLow returns the largest set low value; the container must be non-empty.
func (c *container) maxLow() int {
	switch c.typ {
	case ctArray:
		return int(c.arr[len(c.arr)-1])
	case ctRun:
		return int(c.runs[len(c.runs)-1].last)
	default:
		for w := len(c.bmp) - 1; w >= 0; w-- {
			if c.bmp[w] != 0 {
				return w<<6 + 63 - bits.LeadingZeros64(c.bmp[w])
			}
		}
		return 0
	}
}

// ensureOwned deep-copies the payload when it is shared with another Set
// (post-Clone), so in-place mutation never leaks into the sibling.
func (c *container) ensureOwned() {
	if !c.cow {
		return
	}
	switch c.typ {
	case ctArray:
		c.arr = append([]uint16(nil), c.arr...)
	case ctBitmap:
		c.bmp = append([]uint64(nil), c.bmp...)
	case ctRun:
		c.runs = append([]interval(nil), c.runs...)
	}
	c.cow = false
}

// shared returns a copy of c whose payload is aliased, flagged cow so the
// copy's first mutation unshares. The receiver is NOT touched — concurrent
// readers may be running ops against it — which is sound under the package
// invariant that a Set is never mutated in place once its containers may be
// aliased (results and Clones alias; mutation goes through Clone or stays
// on privately owned Sets).
func (c *container) shared() container {
	out := *c
	out.cow = true
	return out
}

// contains reports membership of low value v.
func (c *container) contains(v uint16) bool {
	switch c.typ {
	case ctArray:
		i := searchU16(c.arr, v)
		return i < len(c.arr) && c.arr[i] == v
	case ctBitmap:
		w := int(v >> 6)
		return w < len(c.bmp) && c.bmp[w]&(1<<(v&63)) != 0
	default:
		i := searchRuns(c.runs, v)
		return i >= 0
	}
}

// searchU16 returns the smallest index with arr[i] >= v.
func searchU16(arr []uint16, v uint16) int {
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchRuns returns the index of the run containing v, or -1.
func searchRuns(runs []interval, v uint16) int {
	lo, hi := 0, len(runs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case runs[mid].last < v:
			lo = mid + 1
		case runs[mid].start > v:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// add sets low value v, migrating the encoding when the array form stops
// being the smallest. Reports whether the bit was newly set.
func (c *container) add(v uint16) bool {
	switch c.typ {
	case ctArray:
		i := len(c.arr) // ascending insertion (the common order) appends
		if i > 0 && c.arr[i-1] >= v {
			i = searchU16(c.arr, v)
			if i < len(c.arr) && c.arr[i] == v {
				return false
			}
		}
		c.ensureOwned()
		c.arr = append(c.arr, 0)
		copy(c.arr[i+1:], c.arr[i:])
		c.arr[i] = v
		c.card++
		// Migrate once the dense form is smaller: the truncated bitmap
		// costs 8 bytes per word up to the max low value.
		if card := int(c.card); card > 64 && sizeArray(card) > sizeBitmap(c.maxLow()) {
			*c = c.toBitmap()
		}
		return true
	case ctBitmap:
		w := int(v >> 6)
		if w < len(c.bmp) && c.bmp[w]&(1<<(v&63)) != 0 {
			return false
		}
		c.ensureOwned()
		if w >= len(c.bmp) {
			c.bmp = append(c.bmp, make([]uint64, w+1-len(c.bmp))...)
		}
		c.bmp[w] |= 1 << (v & 63)
		c.card++
		return true
	default:
		if searchRuns(c.runs, v) >= 0 {
			return false
		}
		// Runs are built in bulk (ranges, finalizes); point mutation is
		// rare enough that decaying to the dense form is the simple,
		// always-correct move.
		*c = c.toBitmap()
		return c.add(v)
	}
}

// remove clears low value v, reporting whether it was set.
func (c *container) remove(v uint16) bool {
	switch c.typ {
	case ctArray:
		i := searchU16(c.arr, v)
		if i >= len(c.arr) || c.arr[i] != v {
			return false
		}
		c.ensureOwned()
		c.arr = append(c.arr[:i], c.arr[i+1:]...)
		c.card--
		return true
	case ctBitmap:
		w := int(v >> 6)
		if w >= len(c.bmp) || c.bmp[w]&(1<<(v&63)) == 0 {
			return false
		}
		c.ensureOwned()
		c.bmp[w] &^= 1 << (v & 63)
		c.card--
		if c.card <= 32 {
			*c = c.toArray()
		}
		return true
	default:
		if searchRuns(c.runs, v) < 0 {
			return false
		}
		*c = c.toBitmap()
		return c.remove(v)
	}
}

// toBitmap re-encodes any container as a truncated dense bitmap.
func (c *container) toBitmap() container {
	out := container{typ: ctBitmap, card: c.card}
	switch c.typ {
	case ctBitmap:
		out.bmp = append([]uint64(nil), c.bmp...)
	case ctArray:
		if len(c.arr) > 0 {
			out.bmp = make([]uint64, c.arr[len(c.arr)-1]>>6+1)
			for _, v := range c.arr {
				out.bmp[v>>6] |= 1 << (v & 63)
			}
		}
	case ctRun:
		if n := len(c.runs); n > 0 {
			out.bmp = make([]uint64, c.runs[n-1].last>>6+1)
			for _, r := range c.runs {
				wordsSetRange(out.bmp, int(r.start), int(r.last)+1)
			}
		}
	}
	return out
}

// toArray re-encodes any container as a sorted array.
func (c *container) toArray() container {
	out := container{typ: ctArray, card: c.card, arr: make([]uint16, 0, c.card)}
	switch c.typ {
	case ctArray:
		out.arr = append(out.arr, c.arr...)
	case ctBitmap:
		for wi, w := range c.bmp {
			base := wi << 6
			for w != 0 {
				out.arr = append(out.arr, uint16(base+bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	case ctRun:
		for _, r := range c.runs {
			for v := int(r.start); v <= int(r.last); v++ {
				out.arr = append(out.arr, uint16(v))
			}
		}
	}
	return out
}

// wordsSetRange sets bits [lo, hi) in a word vector that already covers hi.
func wordsSetRange(words []uint64, lo, hi int) {
	if lo >= hi {
		return
	}
	lw, hw := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if lw == hw {
		words[lw] |= loMask & hiMask
		return
	}
	words[lw] |= loMask
	for w := lw + 1; w < hw; w++ {
		words[w] = ^uint64(0)
	}
	words[hw] |= hiMask
}

// fromWords builds a container from a dense word vector (low bits of one
// 64k span), detecting run encoding when it is the smallest — this is how a
// zone-map bulk-accepted scan lands as a run container instead of 8 KiB of
// set words. One stats pass picks the encoding, then the payload
// materializes directly into it (no intermediate bitmap copy).
func fromWords(words []uint64) container {
	card, nRuns, maxLow := wordStats(words)
	if card == 0 {
		return container{}
	}
	switch smallestEncoding(card, nRuns, maxLow) {
	case ctArray:
		out := container{typ: ctArray, card: int32(card), arr: make([]uint16, 0, card)}
		for wi, w := range words {
			base := wi << 6
			for w != 0 {
				out.arr = append(out.arr, uint16(base+bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		return out
	case ctRun:
		view := container{typ: ctBitmap, card: int32(card), bmp: words[:maxLow>>6+1]}
		return view.toRuns() // reads the view; the result owns fresh runs
	default:
		return container{typ: ctBitmap, card: int32(card),
			bmp: append(make([]uint64, 0, maxLow>>6+1), words[:maxLow>>6+1]...)}
	}
}

// wordStats walks a dense word vector once, returning its population, the
// number of runs (01 transitions, with set bit 0 of a word not counted as
// a start when it continues the previous word's run), and the highest set
// bit (-1 when empty) — the inputs of the encoding choice.
func wordStats(words []uint64) (card, nRuns, maxLow int) {
	maxLow = -1
	prevTop := false // bit 63 of the previous word
	for wi, w := range words {
		card += bits.OnesCount64(w)
		starts := bits.OnesCount64(w &^ (w << 1))
		if prevTop && w&1 != 0 {
			starts--
		}
		nRuns += starts
		prevTop = w>>63 != 0
		if w != 0 {
			maxLow = wi<<6 + 63 - bits.LeadingZeros64(w)
		}
	}
	return card, nRuns, maxLow
}

// smallestEncoding picks the cheapest of the three encodings for a
// population with the given cardinality, run count, and maximum low value.
func smallestEncoding(card, nRuns, maxLow int) ctype {
	sr, sa, sb := sizeRun(nRuns), sizeArray(card), sizeBitmap(maxLow)
	if sr < sa && sr < sb {
		return ctRun
	}
	if sa <= sb {
		return ctArray
	}
	return ctBitmap
}

// toRuns re-encodes a bitmap container as runs (callers have already
// established run encoding is worthwhile).
func (c *container) toRuns() container {
	out := container{typ: ctRun, card: c.card}
	inRun := false
	start := 0
	for wi := 0; wi <= len(c.bmp); wi++ {
		var w uint64
		if wi < len(c.bmp) {
			w = c.bmp[wi]
		}
		for b := 0; b < 64; b++ {
			set := w&(1<<b) != 0
			switch {
			case set && !inRun:
				start = wi<<6 + b
				inRun = true
			case !set && inRun:
				out.runs = append(out.runs, interval{uint16(start), uint16(wi<<6 + b - 1)})
				inRun = false
			}
		}
	}
	if inRun { // run reaching the container end
		out.runs = append(out.runs, interval{uint16(start), containerSpan - 1})
	}
	return out
}

// normalize re-picks the array/bitmap encoding for an op result (run
// detection is only done at bulk-construction and Optimize time; op results
// keep runs only when the operands' run structure carried through).
func normalize(c container) container {
	if c.card == 0 {
		return container{}
	}
	if c.typ == ctRun {
		return c
	}
	want := ctBitmap
	if sizeArray(int(c.card)) <= sizeBitmap(c.maxLow()) {
		want = ctArray
	}
	if want == c.typ {
		return c
	}
	if want == ctArray {
		return c.toArray()
	}
	return c.toBitmap()
}

// optimize re-picks among all three encodings, including run detection.
func optimize(c container) container {
	if c.card == 0 {
		return container{}
	}
	b := c.toBitmap()
	_, nRuns, _ := wordStats(b.bmp)
	switch smallestEncoding(int(c.card), nRuns, c.maxLow()) {
	case ctRun:
		return b.toRuns()
	case ctArray:
		return b.toArray()
	}
	return b
}

// forEach visits every set low value ascending, offset by base; fn
// returning false stops the walk and propagates false.
func (c *container) forEach(base int, fn func(int) bool) bool {
	switch c.typ {
	case ctArray:
		for _, v := range c.arr {
			if !fn(base + int(v)) {
				return false
			}
		}
	case ctBitmap:
		for wi, w := range c.bmp {
			wb := base + wi<<6
			for w != 0 {
				if !fn(wb + bits.TrailingZeros64(w)) {
					return false
				}
				w &= w - 1
			}
		}
	default:
		for _, r := range c.runs {
			for v := int(r.start); v <= int(r.last); v++ {
				if !fn(base + v) {
					return false
				}
			}
		}
	}
	return true
}

// nextSet returns the smallest set low value >= from, or ok=false.
func (c *container) nextSet(from int) (int, bool) {
	switch c.typ {
	case ctArray:
		if i := searchU16(c.arr, uint16(from)); i < len(c.arr) {
			return int(c.arr[i]), true
		}
	case ctBitmap:
		wi := from >> 6
		if wi < len(c.bmp) {
			if w := c.bmp[wi] >> (uint(from) & 63); w != 0 {
				return from + bits.TrailingZeros64(w), true
			}
			for wi++; wi < len(c.bmp); wi++ {
				if c.bmp[wi] != 0 {
					return wi<<6 + bits.TrailingZeros64(c.bmp[wi]), true
				}
			}
		}
	default:
		for _, r := range c.runs {
			if int(r.last) < from {
				continue
			}
			if int(r.start) >= from {
				return int(r.start), true
			}
			return from, true
		}
	}
	return 0, false
}

// sizeBytes returns the container's serialized footprint — payload bytes
// plus the per-container metadata word (high key, type, cardinality), the
// same convention roaring's size accounting uses. Go object headers are
// excluded on both sides of the dense-vs-compressed comparison, so the
// ratio measures the representations, not the runtime.
func (c *container) sizeBytes() int64 {
	const header = 8
	switch c.typ {
	case ctArray:
		return header + int64(2*len(c.arr))
	case ctBitmap:
		return header + int64(8*len(c.bmp))
	default:
		return header + int64(4*len(c.runs))
	}
}
