package bitset

import (
	"math/rand"
	"testing"
)

// refSet is the oracle: a plain map of set keys.
type refSet map[int]bool

func (r refSet) slice(max int) []int {
	var out []int
	for i := 0; i < max; i++ {
		if r[i] {
			out = append(out, i)
		}
	}
	return out
}

// checkEqual verifies s against the oracle via Len, Contains, ForEach and
// NextSet.
func checkEqual(t *testing.T, tag string, s *Set, ref refSet, max int) {
	t.Helper()
	want := ref.slice(max)
	if s.Len() != len(want) {
		t.Fatalf("%s: Len=%d want %d", tag, s.Len(), len(want))
	}
	var got []int
	s.ForEach(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("%s: ForEach visited %d keys, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: ForEach[%d]=%d want %d", tag, i, got[i], want[i])
		}
	}
	// Spot-check Contains and NextSet around every set key and a few gaps.
	for _, k := range want {
		if !s.Contains(k) {
			t.Fatalf("%s: Contains(%d)=false", tag, k)
		}
		if n, ok := s.NextSet(k); !ok || n != k {
			t.Fatalf("%s: NextSet(%d)=%d,%v want itself", tag, k, n, ok)
		}
	}
	prev := -1
	for _, k := range want {
		if n, ok := s.NextSet(prev + 1); !ok || n != k {
			t.Fatalf("%s: NextSet(%d)=%d,%v want %d", tag, prev+1, n, ok, k)
		}
		prev = k
	}
	if n, ok := s.NextSet(prev + 1); ok {
		t.Fatalf("%s: NextSet past max returned %d", tag, n)
	}
	if m, ok := s.Max(); len(want) > 0 && (!ok || m != want[len(want)-1]) {
		t.Fatalf("%s: Max=%d,%v want %d", tag, m, ok, want[len(want)-1])
	}
}

// genSet builds a random set + oracle with shapes that exercise all three
// encodings and the container boundary: point keys, dense clusters, bulk
// ranges, keys straddling multiples of 65536.
func genSet(rng *rand.Rand, max int) (*Set, refSet) {
	s, ref := New(), refSet{}
	add := func(i int) {
		if i >= 0 && i < max {
			s.Add(i)
			ref[i] = true
		}
	}
	// Sparse points.
	for n := rng.Intn(200); n > 0; n-- {
		add(rng.Intn(max))
	}
	// Dense cluster (forces array→bitmap transitions).
	if rng.Intn(2) == 0 {
		base := rng.Intn(max)
		for n := 600 + rng.Intn(600); n > 0; n-- {
			add(base + rng.Intn(2048))
		}
	}
	// Bulk ranges (run containers), some straddling container boundaries.
	for n := rng.Intn(3); n > 0; n-- {
		lo := rng.Intn(max)
		hi := min(lo+rng.Intn(5000), max)
		s.AddRange(lo, hi)
		for i := lo; i < hi; i++ {
			ref[i] = true
		}
	}
	// Boundary keys.
	for _, b := range []int{containerSpan - 1, containerSpan, containerSpan + 1, 2*containerSpan - 1} {
		if rng.Intn(3) == 0 {
			add(b)
		}
	}
	// Some removals.
	for n := rng.Intn(100); n > 0; n-- {
		i := rng.Intn(max)
		s.Remove(i)
		delete(ref, i)
	}
	return s, ref
}

// TestSetOpsAgainstReference is the randomized equivalence suite: every set
// operation must agree with the map oracle across mixed encodings,
// container-boundary keys, and array/bitmap/run transitions.
func TestSetOpsAgainstReference(t *testing.T) {
	const max = 3 * containerSpan
	rng := rand.New(rand.NewSource(7))
	scratch := New()
	for trial := 0; trial < 60; trial++ {
		a, ra := genSet(rng, max)
		b, rb := genSet(rng, max)
		checkEqual(t, "a", a, ra, max)
		checkEqual(t, "b", b, rb, max)

		and, or, andNot := refSet{}, refSet{}, refSet{}
		card := 0
		for k := range ra {
			if rb[k] {
				and[k] = true
				card++
			} else {
				andNot[k] = true
			}
			or[k] = true
		}
		for k := range rb {
			or[k] = true
		}
		checkEqual(t, "and", a.And(b), and, max)
		checkEqual(t, "or", a.Or(b), or, max)
		checkEqual(t, "andnot", a.AndNot(b), andNot, max)
		if got := a.AndCard(b); got != card {
			t.Fatalf("trial %d: AndCard=%d want %d", trial, got, card)
		}
		if got := a.Intersects(b); got != (card > 0) {
			t.Fatalf("trial %d: Intersects=%v want %v", trial, got, card > 0)
		}
		// Symmetry.
		checkEqual(t, "and-sym", b.And(a), and, max)
		if b.AndCard(a) != card || b.Intersects(a) != (card > 0) {
			t.Fatalf("trial %d: asymmetric AndCard/Intersects", trial)
		}

		// In-place variants on private copies.
		ac := a.Clone()
		ac.AndWith(b)
		checkEqual(t, "andwith", ac, and, max)

		// AndInto scratch reuse: repeated use of one scratch set (the PEPS
		// chain discipline) must keep agreeing with And.
		scratch.AndInto(a, b)
		checkEqual(t, "andinto", scratch, and, max)
		scratch.AndInto(b, a)
		checkEqual(t, "andinto-sym", scratch, and, max)
		oc := a.Clone()
		oc.OrWith(b)
		checkEqual(t, "orwith", oc, or, max)
		nc := a.Clone()
		nc.AndNotWith(b)
		checkEqual(t, "andnotwith", nc, andNot, max)

		// Not over a random domain bound.
		n := 1 + rng.Intn(max)
		not := refSet{}
		for i := 0; i < n; i++ {
			if !ra[i] {
				not[i] = true
			}
		}
		notS := a.Clone()
		notS.Not(n)
		checkEqual(t, "not", notS, not, n)

		// Retain a pseudo-random filter.
		kept := refSet{}
		for k := range ra {
			if k%3 != 0 {
				kept[k] = true
			}
		}
		rs := a.Clone()
		rs.Retain(func(i int) bool { return i%3 != 0 })
		checkEqual(t, "retain", rs, kept, max)

		// The originals must be untouched by everything above.
		checkEqual(t, "a-post", a, ra, max)
		checkEqual(t, "b-post", b, rb, max)
	}
}

// TestCloneCopyOnWrite proves the delta-maintenance discipline: patching a
// clone never leaks into the original, across all encodings.
func TestCloneCopyOnWrite(t *testing.T) {
	const max = 2 * containerSpan
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		a, ra := genSet(rng, max)
		c := a.Clone()
		rc := refSet{}
		for k, v := range ra {
			rc[k] = v
		}
		for n := 0; n < 300; n++ {
			i := rng.Intn(max)
			if rng.Intn(2) == 0 {
				c.Add(i)
				rc[i] = true
			} else {
				c.Remove(i)
				delete(rc, i)
			}
		}
		checkEqual(t, "clone", c, rc, max)
		checkEqual(t, "orig", a, ra, max)

		// A second-generation clone patched again still leaves both
		// ancestors intact (the cache swaps clones in repeatedly).
		g := c.Clone()
		rg := refSet{}
		for k, v := range rc {
			rg[k] = v
		}
		for n := 0; n < 100; n++ {
			i := rng.Intn(max)
			g.Add(i)
			rg[i] = true
		}
		checkEqual(t, "grandclone", g, rg, max)
		checkEqual(t, "clone-post", c, rc, max)
		checkEqual(t, "orig-post", a, ra, max)
	}
}

// TestWordsRoundTrip proves FromWords/ToWords are exact inverses of the
// dense selection-vector view, including run-detected and boundary shapes.
func TestWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		nWords := 1 + rng.Intn(3*maxWords)
		words := make([]uint64, nWords)
		switch trial % 3 {
		case 0: // sparse
			for n := rng.Intn(64); n > 0; n-- {
				i := rng.Intn(nWords * 64)
				words[i>>6] |= 1 << (uint(i) & 63)
			}
		case 1: // dense runs
			for n := 1 + rng.Intn(4); n > 0; n-- {
				lo := rng.Intn(nWords * 64)
				hi := min(lo+1+rng.Intn(20000), nWords*64)
				wordsSetRange(words, lo, hi)
			}
		default: // noise
			for i := range words {
				if rng.Intn(3) == 0 {
					words[i] = rng.Uint64()
				}
			}
		}
		s := FromWords(words)
		card := 0
		ref := refSet{}
		for i := 0; i < nWords*64; i++ {
			if words[i>>6]&(1<<(uint(i)&63)) != 0 {
				ref[i] = true
				card++
			}
		}
		checkEqual(t, "fromwords", s, ref, nWords*64)
		back := s.ToWords(nWords)
		for i := range words {
			if back[i] != words[i] {
				t.Fatalf("trial %d: ToWords[%d]=%#x want %#x", trial, i, back[i], words[i])
			}
		}
	}
}

// TestBuilderMatchesAdds proves the ascending builder (the kernel emission
// path) produces the same set as point Adds, including bulk ranges that
// should land as run containers and out-of-order stragglers.
func TestBuilderMatchesAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		max := 1000 + rng.Intn(3*containerSpan)
		b := NewBuilder(max)
		ref := refSet{}
		pos := 0
		for pos < max {
			switch rng.Intn(4) {
			case 0: // ascending point
				b.Set(pos)
				ref[pos] = true
				pos += 1 + rng.Intn(500)
			case 1: // block range (zone-map bulk-accept shape)
				hi := min(pos+1024, max)
				b.SetRange(pos, hi)
				for i := pos; i < hi; i++ {
					ref[i] = true
				}
				pos = hi + rng.Intn(2000)
			case 2: // out-of-order straggler
				i := rng.Intn(pos + 1)
				b.Set(i)
				ref[i] = true
			default:
				pos += rng.Intn(4000)
			}
		}
		s := b.Finish()
		checkEqual(t, "builder", s, ref, max)
	}
}

// TestFullRunShortCircuit pins the container-level fast paths: ops against
// a full run container must not degrade to elementwise work and must stay
// correct, including when the result aliases an operand copy-on-write.
func TestFullRunShortCircuit(t *testing.T) {
	full := New()
	full.AddRange(0, containerSpan)
	if full.Len() != containerSpan {
		t.Fatalf("full len=%d", full.Len())
	}
	sparse := New()
	for i := 0; i < 100; i++ {
		sparse.Add(i * 131)
	}
	and := sparse.And(full)
	if and.Len() != sparse.Len() || !and.Contains(99*131) {
		t.Fatalf("full∩sparse len=%d want %d", and.Len(), sparse.Len())
	}
	if got := full.AndCard(sparse); got != sparse.Len() {
		t.Fatalf("AndCard=%d", got)
	}
	if !full.Intersects(sparse) {
		t.Fatal("Intersects(full, sparse)=false")
	}
	or := full.Or(sparse)
	if or.Len() != containerSpan {
		t.Fatalf("full∪sparse len=%d", or.Len())
	}
	if diff := sparse.AndNot(full); diff.Len() != 0 {
		t.Fatalf("sparse∖full len=%d", diff.Len())
	}
	// Mutating an aliased result must not write through to the operand.
	and.Add(5)
	if sparse.Contains(5) {
		t.Fatal("aliased result mutation leaked into operand")
	}
}

// TestSizeBytesAdaptive pins the memory story the refactor exists for: a
// sparse set must cost near its cardinality, a bulk range must collapse to
// runs, and a dense set must not exceed the plain word-vector footprint by
// more than the fixed container overhead.
func TestSizeBytesAdaptive(t *testing.T) {
	sparse := New()
	for i := 0; i < 50; i++ {
		sparse.Add(i * 997)
	}
	if got := sparse.SizeBytes(); got > 1024 {
		t.Fatalf("sparse 50-key set costs %d bytes", got)
	}

	run := New()
	run.AddRange(0, 60000)
	if got := run.SizeBytes(); got > 256 {
		t.Fatalf("single-range set costs %d bytes", got)
	}

	dense := New()
	for i := 0; i < 4000; i++ {
		if i%2 == 0 {
			dense.Add(i)
		}
	}
	denseWords := int64((4000/64 + 1) * 8)
	if got := dense.SizeBytes(); got > denseWords+256 {
		t.Fatalf("alternating dense set costs %d bytes (dense words %d)", got, denseWords)
	}
}

// TestEncodingTransitions drives one container through array → bitmap →
// array and into run form, checking exactness at each step.
func TestEncodingTransitions(t *testing.T) {
	s := New()
	ref := refSet{}
	// Fill densely enough to force bitmap.
	for i := 0; i < 6000; i++ {
		s.Add(i)
		ref[i] = true
	}
	checkEqual(t, "dense", s, ref, containerSpan)
	// Shrink back down: bitmap → array on remove.
	for i := 40; i < 6000; i++ {
		s.Remove(i)
		delete(ref, i)
	}
	checkEqual(t, "shrunk", s, ref, containerSpan)
	// Optimize a striped shape into its best encoding without changing it.
	s.AddRange(1000, 30000)
	for i := 1000; i < 30000; i++ {
		ref[i] = true
	}
	s.Optimize()
	checkEqual(t, "optimized", s, ref, containerSpan)
}
