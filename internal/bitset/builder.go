package bitset

// Builder assembles a Set from ascending-ordered emission — the shape of
// relstore's vectorized kernels, which walk blocks in ascending row order.
// Bits land in a dense per-container scratch (sized to the domain, at most
// 8 KiB), and each container compresses to its smallest encoding when the
// emission moves past it, so a scan's selection never materializes the full
// domain in words. Out-of-order emission (earlier containers) falls back to
// Set.Add, so correctness never depends on the ordering — only compactness
// of the fast path does.
type Builder struct {
	s       *Set
	scratch []uint64
	curKey  int32 // high key of the container being filled; -1 = none
	dirty   bool
	max     int // exclusive key bound (domain size hint)
}

// NewBuilder returns a builder for keys in [0, max). max only sizes the
// scratch buffer; emitting beyond it is still correct.
func NewBuilder(max int) *Builder {
	words := maxWords
	if max < containerSpan {
		words = (max + 63) / 64
		if words == 0 {
			words = 1
		}
	}
	return &Builder{s: New(), scratch: make([]uint64, words), curKey: -1, max: max}
}

// Set marks key i.
func (b *Builder) Set(i int) {
	hk := int32(i >> 16)
	if hk != b.curKey && !b.switchTo(hk) {
		b.s.Add(i) // out-of-order straggler
		return
	}
	w := (i & 0xffff) >> 6
	for w >= len(b.scratch) {
		b.scratch = append(b.scratch, 0)
	}
	b.scratch[w] |= 1 << (uint(i) & 63)
	b.dirty = true
}

// SetRange marks keys [lo, hi).
func (b *Builder) SetRange(lo, hi int) {
	for lo < hi {
		hk := int32(lo >> 16)
		end := min(hi, (int(hk)+1)<<16)
		if hk != b.curKey && !b.switchTo(hk) {
			b.s.AddRange(lo, end) // out-of-order straggler
			lo = end
			continue
		}
		cLo, cHi := lo&0xffff, end-int(hk)<<16
		for (cHi+63)/64 > len(b.scratch) {
			b.scratch = append(b.scratch, 0)
		}
		wordsSetRange(b.scratch, cLo, cHi)
		b.dirty = true
		lo = end
	}
}

// switchTo flushes the current container and moves to hk; it reports false
// when hk is behind the emission frontier (already flushed or passed).
func (b *Builder) switchTo(hk int32) bool {
	if hk < b.curKey {
		return false
	}
	b.flush()
	b.curKey = hk
	return true
}

// flush compresses the scratch into its container, run detection included.
func (b *Builder) flush() {
	if !b.dirty {
		return
	}
	c := fromWords(b.scratch)
	if !c.isEmpty() {
		// Emission frontier is ascending, and Set.Add stragglers are always
		// behind it, so appending keeps the key list sorted.
		b.s.keys = append(b.s.keys, uint32(b.curKey))
		b.s.cs = append(b.s.cs, c)
		b.s.card += int(c.card)
	}
	clear(b.scratch)
	b.dirty = false
}

// Finish flushes the pending container and returns the built set. The
// builder must not be reused afterwards.
func (b *Builder) Finish() *Set {
	b.flush()
	return b.s
}
