package bitset

// This file is the partition layer of the compressed bitset: every
// 64k-key container span is an independent unit of work, and the sharded
// evaluation paths (internal/combine's pair-table build, the span-sharded
// PEPS DFS, relstore's partitioned scan kernels, and the delta maintainer's
// span-restricted pair recount) slice, combine, and merge sets one span at
// a time. Because containers partition the key space, every set operation
// distributes over spans exactly: And(s, o) = ⊎_span And(Shard(s, span),
// Shard(o, span)), and |s ∩ o| = Σ_span AndCardSpan — which is what makes
// the sharded results bit-identical to the serial ones.

// Span identifies one 64k-key partition: the container high key (key >> 16).
type Span = uint32

// SpanWidth is the key width of one partition.
const SpanWidth = containerSpan

// SpanOf returns the span holding key i.
func SpanOf(i int) Span { return Span(i >> 16) }

// SpanBase returns the smallest key of a span.
func SpanBase(span Span) int { return int(span) << 16 }

// SpanCount returns the number of spans covering a key domain of size n —
// the single place the span width enters sizing arithmetic outside this
// package.
func SpanCount(n int) int {
	if n <= 0 {
		return 0
	}
	return int(SpanOf(n-1)) + 1
}

// Spans returns the high keys of s's populated containers, ascending. The
// slice aliases the set's internal storage: callers must treat it as
// read-only and must not hold it across mutations of s.
func (s *Set) Spans() []Span { return s.keys }

// SpanUnion returns the sorted union of the populated spans of every given
// set — the partition list a sharded operation over those sets fans out
// over. Spans where no set has a container carry no keys and no work.
func SpanUnion(sets ...*Set) []Span {
	switch len(sets) {
	case 0:
		return nil
	case 1:
		return append([]Span(nil), sets[0].keys...)
	}
	// k-way merge via repeated min; set counts here are small (one per
	// predicate) and span lists are short, so the simple scan wins over a
	// heap.
	pos := make([]int, len(sets))
	var out []Span
	for {
		best, has := Span(0), false
		for i, s := range sets {
			if pos[i] < len(s.keys) && (!has || s.keys[pos[i]] < best) {
				best, has = s.keys[pos[i]], true
			}
		}
		if !has {
			return out
		}
		out = append(out, best)
		for i, s := range sets {
			if pos[i] < len(s.keys) && s.keys[pos[i]] == best {
				pos[i]++
			}
		}
	}
}

// Shard returns a zero-copy single-span view of s: a set holding exactly
// s's keys within span, sharing the container payload copy-on-write (the
// view's first mutation unshares, so the original is never disturbed). An
// absent span yields an empty set. Shards of distinct spans are disjoint,
// and the union of all shards is s — the partition invariant the sharded
// evaluators rely on.
func (s *Set) Shard(span Span) *Set {
	out := New()
	ci := s.find(span)
	if ci < 0 {
		return out
	}
	out.k0[0] = span
	out.c0[0] = s.cs[ci].shared()
	out.keys = out.k0[:1]
	out.cs = out.c0[:1]
	out.card = int(out.c0[0].card)
	return out
}

// AndCardSpan returns |s ∩ o| restricted to one span — the container-local
// count a sharded pair-table worker computes. Summed over SpanUnion(s, o)
// it equals AndCard exactly.
func (s *Set) AndCardSpan(o *Set, span Span) int {
	i := s.find(span)
	if i < 0 {
		return 0
	}
	j := o.find(span)
	if j < 0 {
		return 0
	}
	return andCardCtr(&s.cs[i], &o.cs[j])
}

// AndCardSpans returns |s ∩ o| restricted to the given spans (sorted,
// deduplicated) — the delta maintainer's span-restricted pair recount,
// costing only the partitions a mutation batch actually touched.
func (s *Set) AndCardSpans(o *Set, spans []Span) int {
	n := 0
	for _, span := range spans {
		n += s.AndCardSpan(o, span)
	}
	return n
}

// MergeAscending assembles the partition-sharded results of a scan back
// into one set. Parts must cover pairwise-disjoint, ascending key ranges
// (the shape a block-partitioned kernel fan-out produces); within that
// contract parts may be nil or empty, and consecutive parts may meet
// inside one span — a partition boundary that is not container-aligned
// splits a container across two parts, and the seam containers are OR-ed
// and re-encoded to the same smallest form a serial build would have
// picked. Non-seam containers transfer zero-copy (copy-on-write shared).
func MergeAscending(parts []*Set) *Set {
	out := New()
	for _, p := range parts {
		if p == nil || len(p.keys) == 0 {
			continue
		}
		for i, hk := range p.keys {
			if n := len(out.keys); n > 0 && out.keys[n-1] == hk {
				// Seam: two partial containers of the same span. Their
				// populations are disjoint, so the OR is a concatenation
				// re-encoded to the smallest form (run detection included,
				// matching what one fromWords pass over the whole span
				// chooses).
				merged := optimize(orCtr(&out.cs[n-1], &p.cs[i]))
				out.card += int(merged.card) - int(out.cs[n-1].card)
				out.cs[n-1] = merged
				continue
			}
			out.keys = append(out.keys, hk)
			out.cs = append(out.cs, p.cs[i].shared())
			out.card += int(p.cs[i].card)
		}
	}
	return out
}
