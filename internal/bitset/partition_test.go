package bitset

import (
	"math/rand"
	"testing"
)

// TestPartitionInvariants is the randomized suite for the span layer: the
// shards of a set partition it exactly, per-span intersection counts sum to
// the global count, and MergeAscending reassembles block-partitioned splits
// (container-aligned or not) into the original set.
func TestPartitionInvariants(t *testing.T) {
	const max = 4 * containerSpan
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		s, ref := genSet(rng, max)
		o, _ := genSet(rng, max)

		// Shards partition s: disjoint spans, union equal to s.
		spans := s.Spans()
		for i := 1; i < len(spans); i++ {
			if spans[i-1] >= spans[i] {
				t.Fatalf("trial %d: Spans not ascending: %v", trial, spans)
			}
		}
		total := 0
		for _, span := range spans {
			sh := s.Shard(span)
			total += sh.Len()
			base := SpanBase(span)
			sh.ForEach(func(k int) bool {
				if !ref[k] {
					t.Fatalf("trial %d: shard %d holds %d not in set", trial, span, k)
				}
				if SpanOf(k) != span || k < base || k >= base+containerSpan {
					t.Fatalf("trial %d: shard %d leaked key %d", trial, span, k)
				}
				return true
			})
		}
		if total != s.Len() {
			t.Fatalf("trial %d: shards hold %d keys, set holds %d", trial, total, s.Len())
		}
		if sh := s.Shard(Span(max >> 16)); sh.Len() != 0 {
			t.Fatalf("trial %d: absent span yielded %d keys", trial, sh.Len())
		}

		// Span-local intersection counts sum to the global AndCard, both
		// over the pairwise union and over each operand's own span list.
		union := SpanUnion(s, o)
		sum := 0
		for _, span := range union {
			sum += s.AndCardSpan(o, span)
		}
		if want := s.AndCard(o); sum != want {
			t.Fatalf("trial %d: Σ AndCardSpan=%d, AndCard=%d", trial, sum, want)
		}
		if got := s.AndCardSpans(o, union); got != s.AndCard(o) {
			t.Fatalf("trial %d: AndCardSpans(union)=%d, AndCard=%d", trial, got, s.AndCard(o))
		}
		// SpanUnion covers both operands' spans, sorted.
		seen := map[Span]bool{}
		for i, sp := range union {
			if i > 0 && union[i-1] >= sp {
				t.Fatalf("trial %d: SpanUnion not ascending: %v", trial, union)
			}
			seen[sp] = true
		}
		for _, sp := range s.Spans() {
			if !seen[sp] {
				t.Fatalf("trial %d: SpanUnion missing span %d of s", trial, sp)
			}
		}

		// MergeAscending reassembles arbitrary ascending splits — cut
		// points at random key positions, including inside containers.
		cuts := []int{0}
		for n := 1 + rng.Intn(5); n > 0; n-- {
			cuts = append(cuts, rng.Intn(max))
		}
		cuts = append(cuts, max)
		sortInts(cuts)
		var parts []*Set
		for i := 0; i+1 < len(cuts); i++ {
			lo, hi := cuts[i], cuts[i+1]
			part := New()
			s.ForEach(func(k int) bool {
				if k >= lo && k < hi {
					part.Add(k)
				}
				return true
			})
			if rng.Intn(4) == 0 {
				parts = append(parts, nil) // tolerated gap
			}
			parts = append(parts, part)
		}
		checkEqual(t, "MergeAscending", MergeAscending(parts), ref, max)
	}
}

// TestShardCopyOnWrite proves a shard is a safe independent view: mutating
// the shard never disturbs the original set.
func TestShardCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const max = 3 * containerSpan
	for trial := 0; trial < 20; trial++ {
		s, ref := genSet(rng, max)
		for _, span := range append([]Span(nil), s.Spans()...) {
			sh := s.Shard(span)
			base := SpanBase(span)
			sh.Add(base + rng.Intn(containerSpan))
			sh.Remove(base + rng.Intn(containerSpan))
			sh.AddRange(base, base+100)
		}
		checkEqual(t, "original after shard mutation", s, ref, max)
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
