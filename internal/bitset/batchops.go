package bitset

// Batch intersection kernels: the run×array two-pointer fast paths that
// replace per-element binary searches in the container ops, and the
// AndCardInto batch-cardinality entry point the pair-table build and other
// many-operand callers use to reuse one scratch slice across calls.

// intersectArrayRuns appends arr ∩ runs to dst with a single forward merge
// over both inputs — O(len(arr) + len(runs)) instead of the
// O(len(arr)·log len(runs)) per-element searchRuns probing.
func intersectArrayRuns(dst, arr []uint16, runs []interval) []uint16 {
	j := 0
	for i := 0; i < len(arr) && j < len(runs); {
		switch {
		case arr[i] < runs[j].start:
			i++
		case arr[i] > runs[j].last:
			j++
		default:
			// arr values inside the current run are consecutive in arr;
			// copy the whole covered stretch in one append.
			k := i + 1
			for k < len(arr) && arr[k] <= runs[j].last {
				k++
			}
			dst = append(dst, arr[i:k]...)
			i = k
			j++
		}
	}
	return dst
}

// andCardArrayRuns counts arr ∩ runs with the same forward merge.
func andCardArrayRuns(arr []uint16, runs []interval) int {
	n, j := 0, 0
	for i := 0; i < len(arr) && j < len(runs); {
		switch {
		case arr[i] < runs[j].start:
			i++
		case arr[i] > runs[j].last:
			j++
		default:
			k := i + 1
			for k < len(arr) && arr[k] <= runs[j].last {
				k++
			}
			n += k - i
			i = k
			j++
		}
	}
	return n
}

// AndCardInto computes |s ∩ os[i]| for every operand into dst, growing and
// returning it (pass dst[:0] of a retained scratch to stay allocation-free
// across calls). One call prices a whole anchor row of the pair table; the
// per-operand container walk matches AndCard exactly.
func (s *Set) AndCardInto(os []*Set, dst []int) []int {
	for _, o := range os {
		n := 0
		i, j := 0, 0
		for i < len(s.keys) && j < len(o.keys) {
			switch {
			case s.keys[i] < o.keys[j]:
				i++
			case s.keys[i] > o.keys[j]:
				j++
			default:
				n += andCardCtr(&s.cs[i], &o.cs[j])
				i++
				j++
			}
		}
		dst = append(dst, n)
	}
	return dst
}
