package bitset

import "math/bits"

// BlockBits is the number of keys one Block covers. It divides containerSpan,
// so a block never straddles two containers — extraction and publication stay
// single-container operations.
const (
	BlockBits  = 1024
	blockWords = BlockBits / 64
)

// Block is a fixed-width dense selection fragment: the keys
// [Base, Base+BlockBits) as 16 words. It is the unit of the streaming scan
// path — vectorized kernels write into a Block instead of a Builder, and the
// block-level set algebra below combines predicate subtrees word-parallel
// without ever materializing a full Set. Base must be BlockBits-aligned.
type Block struct {
	base  int
	words [blockWords]uint64
}

// Reset clears the block and re-bases it at base (BlockBits-aligned).
func (b *Block) Reset(base int) {
	b.base = base
	b.words = [blockWords]uint64{}
}

// Base returns the first key the block covers.
func (b *Block) Base() int { return b.base }

// Set sets global key i; i must lie within [Base, Base+BlockBits).
func (b *Block) Set(i int) {
	v := i - b.base
	b.words[v>>6] |= 1 << (uint(v) & 63)
}

// SetRange sets global keys [lo, hi), clamped to the block's window — so a
// kernel emitting a whole-block acceptance can pass the row range unclamped.
func (b *Block) SetRange(lo, hi int) {
	lo = max(lo, b.base)
	hi = min(hi, b.base+BlockBits)
	if lo < hi {
		wordsSetRange(b.words[:], lo-b.base, hi-b.base)
	}
}

// And intersects in place with o (same base).
func (b *Block) And(o *Block) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions in place with o (same base).
func (b *Block) Or(o *Block) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// AndNot clears in place every key set in o (same base).
func (b *Block) AndNot(o *Block) {
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// Not complements the block within the universe [0, n): keys at or beyond n
// stay clear (the block-local mirror of Set.Not).
func (b *Block) Not(n int) {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	if lim := n - b.base; lim < BlockBits {
		clearFromWords(b.words[:], max(lim, 0))
	}
}

// clearFromWords zeroes bits [from, len*64) of a word vector.
func clearFromWords(words []uint64, from int) {
	w := from >> 6
	if off := uint(from) & 63; off != 0 {
		words[w] &= (1 << off) - 1
		w++
	}
	for ; w < len(words); w++ {
		words[w] = 0
	}
}

// Any reports whether any key is set.
func (b *Block) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set keys.
func (b *Block) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every set key in ascending order; fn returning false
// stops the walk.
func (b *Block) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		base := b.base + wi<<6
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}

// ReadBlock extracts s ∩ [base, base+BlockBits) into dst. Because BlockBits
// divides containerSpan the window lies inside at most one container, so the
// extraction is a word copy (bitmap), a scatter (array), or range fills
// (run) — never a container merge. The streaming scan uses this to apply the
// tombstone mask one block at a time.
func (s *Set) ReadBlock(base int, dst *Block) {
	dst.Reset(base)
	ci := s.find(uint32(base) >> 16)
	if ci < 0 {
		return
	}
	c := &s.cs[ci]
	lo := base & (containerSpan - 1)
	hi := lo + BlockBits
	switch c.typ {
	case ctBitmap:
		w0 := lo >> 6
		for i := 0; i < blockWords && w0+i < len(c.bmp); i++ {
			dst.words[i] = c.bmp[w0+i]
		}
	case ctArray:
		for i := searchU16(c.arr, uint16(lo)); i < len(c.arr) && int(c.arr[i]) < hi; i++ {
			v := int(c.arr[i]) - lo
			dst.words[v>>6] |= 1 << (uint(v) & 63)
		}
	case ctRun:
		for _, r := range c.runs {
			if int(r.start) >= hi {
				break
			}
			if int(r.last) < lo {
				continue
			}
			rlo := max(int(r.start), lo)
			rhi := min(int(r.last)+1, hi)
			wordsSetRange(dst.words[:], rlo-lo, rhi-lo)
		}
	}
}
