package topk

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// This file is the randomized property suite for delta-maintained TA lists:
// any sequence of re-grades, removals, and additions applied through
// ApplyDelta must leave lists that rank exactly like lists freshly built
// over the same grade maps — across enough rounds that the overlay grows,
// pids die and resurrect, and maybeCompactList folds overlays back into the
// base.

func cloneGrades(gs []map[int64]float64) []map[int64]float64 {
	out := make([]map[int64]float64, len(gs))
	for i, g := range gs {
		out[i] = make(map[int64]float64, len(g))
		for pid, v := range g {
			out[i][pid] = v
		}
	}
	return out
}

func assertSameTA(t *testing.T, tag string, got, want *Lists, k int) {
	t.Helper()
	g, w := got.TA(k), want.TA(k)
	if len(g) != len(w) {
		t.Fatalf("%s: %d tuples vs fresh %d", tag, len(g), len(w))
	}
	for i := range g {
		if g[i].PID != w[i].PID || math.Abs(g[i].Intensity-w[i].Intensity) > 1e-12 {
			t.Fatalf("%s: rank %d: (pid %d, %v) vs fresh (pid %d, %v)",
				tag, i, g[i].PID, g[i].Intensity, w[i].PID, w[i].Intensity)
		}
	}
}

func TestApplyDeltaMatchesFreshBuild(t *testing.T) {
	names := []string{"venue", "author", "year"}
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nLists := 1 + rng.Intn(len(names))
		nPids := 30 + rng.Intn(120)
		grades := make([]map[int64]float64, nLists)
		for i := range grades {
			grades[i] = map[int64]float64{}
			for pid := int64(0); pid < int64(nPids); pid++ {
				if rng.Float64() < 0.6 {
					grades[i][pid] = float64(1+rng.Intn(1000)) / 1000
				}
			}
		}
		l := NewLists(names[:nLists], cloneGrades(grades))

		for round := 0; round < 10; round++ {
			// Mutate the reference grade maps at a handful of pids: drop,
			// re-grade, or (re-)add per list independently — including pids
			// the lists never held, the benign no-op case.
			touched := map[int64]struct{}{}
			for c := 3 + rng.Intn(15); c > 0; c-- {
				touched[int64(rng.Intn(nPids+10))] = struct{}{}
			}
			pids := make([]int64, 0, len(touched))
			for pid := range touched {
				pids = append(pids, pid)
			}
			for _, pid := range pids {
				for i := range grades {
					switch rng.Intn(3) {
					case 0:
						delete(grades[i], pid)
					case 1:
						grades[i][pid] = float64(1+rng.Intn(1000)) / 1000
					}
				}
			}
			if !l.ApplyDelta(pids, names[:nLists], grades) {
				t.Fatalf("seed %d round %d: ApplyDelta rejected matching layout", seed, round)
			}
			fresh := NewLists(names[:nLists], cloneGrades(grades))
			tag := fmt.Sprintf("seed %d round %d", seed, round)
			assertSameTA(t, tag, l, fresh, nPids+16) // k past every object: full ranking
			assertSameTA(t, tag, l, fresh, 5)        // and the early-termination regime
			if got, want := l.Size(), fresh.Size(); got != want {
				t.Fatalf("seed %d round %d: Size %d vs fresh %d", seed, round, got, want)
			}
		}
	}

	// Layout mismatches must be rejected without touching the lists.
	l := NewLists([]string{"a", "b"}, []map[int64]float64{{1: 0.5}, {2: 0.7}})
	if l.ApplyDelta([]int64{1}, []string{"b", "a"}, []map[int64]float64{{}, {}}) {
		t.Fatal("ApplyDelta accepted reordered attribute names")
	}
	if l.ApplyDelta([]int64{1}, []string{"a"}, []map[int64]float64{{}}) {
		t.Fatal("ApplyDelta accepted a dropped attribute")
	}
}
