package topk

import (
	"errors"
	"sort"

	"hypre/internal/bitset"
	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/obs"
	"hypre/internal/relstore"
)

// This file is the streaming (one-shot) execution path: instead of
// materializing every preference's full bitmap into the evaluator cache and
// then building sorted TA lists, each preference opens a block iterator over
// the store and the per-attribute grades accumulate block by block. The TA
// threshold rule runs on the stream — once the k-th kept grade strictly
// exceeds the best grade any row in a later block could still reach, the
// remaining blocks are never evaluated. Work and memory are proportional to
// the rows scanned, not to the table or the profile's bitmap footprint.

// taSlack pads the streaming threshold before the strict halting comparison.
// A row's grade folds f∧ over the subset of active preferences matching it
// while the threshold folds the full active set; in exact arithmetic
// subset ≤ superset, but each f∧ step rounds, so a subset fold can exceed
// the superset fold by a few ulps. 1e-9 dominates any such accumulation
// (relative error stays near 1e-13 even for thousands of preferences) at
// the cost of scanning on through grade gaps smaller than a billionth.
const taSlack = 1e-9

// StreamStats reports what the streaming evaluation actually did — the
// observables the one-shot experiment records.
type StreamStats struct {
	Streamed      bool // false when the cached/materialized path answered
	BlocksTotal   int  // base-table blocks the scans could have touched
	BlocksScanned int  // merge steps actually taken before the threshold fired
	BlocksSkipped int  // blocks the zone-map prepass ruled out, summed per iterator
	RowsSeen      int  // (pref, row) match pairs streamed into the grade maps
	EarlyExit     bool // the threshold rule stopped the scan before exhaustion
}

// streamPref is one TA-eligible preference of the profile: its intensity
// and the slot of the attribute list it grades into.
type streamPref struct {
	intensity float64
	attr      int
}

// streamPending is the refill state of one preference's block iterator.
type streamPending struct {
	bi   int
	lids []int32
	vals []int64
	done bool
}

// EvaluateStreaming answers the top-k profile query through block-streamed
// scans, byte-identical to BuildLists + Lists.TA over the same store
// snapshot. The evaluator's key attribute must uniquely identify base
// tuples (it is the dblp primary key here); a duplicated key would fold a
// preference's intensity once per duplicate row where the bitmap path folds
// it once per tuple.
//
// Unsupported query shapes surface relstore.ErrStreamUnsupported; the
// caller (EvaluateOneShot) falls back to the materialized path.
func EvaluateStreaming(ev *combine.Evaluator, prefs []hypre.ScoredPred, k int) ([]combine.ScoredTuple, *StreamStats, error) {
	return EvaluateStreamingTraced(ev, prefs, k, nil)
}

// EvaluateStreamingTraced is EvaluateStreaming with per-query observability:
// the whole block-lockstep loop runs under one trace span (scanning and the
// threshold rule are fused per block, inseparable by design), and the scan
// footprint — blocks evaluated, blocks zone-map-skipped, rows streamed, the
// early-exit depth — lands in tr's engine counters. tr may be nil.
func EvaluateStreamingTraced(ev *combine.Evaluator, prefs []hypre.ScoredPred, k int, tr *obs.Trace) ([]combine.ScoredTuple, *StreamStats, error) {
	sp := tr.StartSpan(obs.StageStream)
	out, st, err := evaluateStreaming(ev, prefs, k)
	tr.EndSpan(sp)
	if st != nil {
		tr.AddBlocks(int64(st.BlocksScanned), int64(st.BlocksSkipped), int64(st.RowsSeen))
		// The streaming loop's TA depth is its block count; record the
		// early-exit verdict with it.
		tr.AddTA(int64(st.BlocksScanned), st.EarlyExit)
	}
	return out, st, err
}

func evaluateStreaming(ev *combine.Evaluator, prefs []hypre.ScoredPred, k int) ([]combine.ScoredTuple, *StreamStats, error) {
	st := &StreamStats{Streamed: true}
	// Group by attribute exactly like BuildLists: first-seen order over the
	// non-negative preferences, "" folding into "(multi)".
	var nAttrs int
	attrSlot := map[string]int{}
	var sp []streamPref
	var qs []relstore.Query
	for _, p := range prefs {
		if p.Intensity < 0 {
			continue
		}
		attr := p.Attr
		if attr == "" {
			attr = "(multi)"
		}
		slot, ok := attrSlot[attr]
		if !ok {
			slot = nAttrs
			attrSlot[attr] = slot
			nAttrs++
		}
		sp = append(sp, streamPref{intensity: p.Intensity, attr: slot})
		qs = append(qs, ev.BaseQuery(p.P))
	}
	if k <= 0 || len(sp) == 0 {
		return nil, st, nil
	}

	g, err := ev.DB().OpenAttrRowIterGroup(qs, ev.KeyAttr())
	if err != nil {
		return nil, st, err
	}
	defer g.Close()

	// Grades accumulate in per-attribute arrays covering only the current
	// block: every key value lives in exactly one base row, so its grade is
	// final the moment all iterators move past that row's block, and no
	// table-sized (or answer-sized) grade map ever exists. A slot value of 0
	// is "no match" — f∧'s identity — so zero-intensity matches fold away
	// exactly like the materialized path's explicit zero entries do
	// (multiplying the product by 1-0 is exact).
	grades := make([][]float64, nAttrs)
	for i := range grades {
		grades[i] = make([]float64, bitset.BlockBits)
	}
	var pids [bitset.BlockBits]int64
	var touched bitset.Block
	pend := make([]streamPending, len(sp))
	for i, it := range g.Iters {
		if nb := it.NumBlocks(); nb > st.BlocksTotal {
			st.BlocksTotal = nb
		}
		st.BlocksSkipped += it.ZoneSkipped()
		bi, lids, vals, ok := it.NextBlock()
		pend[i] = streamPending{bi: bi, lids: lids, vals: vals, done: !ok}
	}

	top := make(taHeap, 0, k)
	var aggScratch, tauAttr []float64
	tauSeen := make([]bool, nAttrs)
	for {
		// Advance to the smallest pending block index across preferences.
		cur, any := 0, false
		for i := range pend {
			if !pend[i].done && (!any || pend[i].bi < cur) {
				cur, any = pend[i].bi, true
			}
		}
		if !any {
			break
		}
		st.BlocksScanned++
		base := cur * bitset.BlockBits
		touched.Reset(base)
		for i := range pend {
			if pend[i].done || pend[i].bi != cur {
				continue
			}
			acc := grades[sp[i].attr]
			intensity := sp[i].intensity
			for j, lid := range pend[i].lids {
				slot := int(lid) - base
				acc[slot] = hypre.FAnd(acc[slot], intensity)
				pids[slot] = pend[i].vals[j]
				touched.Set(int(lid))
			}
			st.RowsSeen += len(pend[i].lids)
			bi, lids, vals, ok := g.Iters[i].NextBlock()
			pend[i] = streamPending{bi: bi, lids: lids, vals: vals, done: !ok}
		}
		// Every iterator has moved past cur, so the block's rows hold their
		// final grades (a unique key appears in exactly one row); push each
		// touched row once, zeroing its slots for the next block.
		touched.ForEach(func(lid int) bool {
			slot := lid - base
			vals := aggScratch[:0]
			for a := range grades {
				if g := grades[a][slot]; g != 0 {
					vals = append(vals, g)
				}
				grades[a][slot] = 0
			}
			aggScratch = vals
			top.push(taScored{pid: pids[slot], grade: hypre.FAndAll(vals...)}, k)
			return true
		})
		if len(top) >= k {
			tau := streamThreshold(sp, pend, nAttrs, &tauAttr, tauSeen)
			if top[0].grade > tau+taSlack {
				st.EarlyExit = true
				break
			}
		}
	}

	sort.Slice(top, func(i, j int) bool { return top[i].better(top[j]) })
	out := make([]combine.ScoredTuple, len(top))
	for i, s := range top {
		out[i] = combine.ScoredTuple{PID: s.pid, Intensity: s.grade}
	}
	return out, st, nil
}

// streamThreshold is the best overall grade a not-yet-streamed row can still
// reach: the f∧ fold of the active preferences' intensities (active = the
// iterator still has blocks pending; an exhausted preference cannot match
// any later row), grouped per attribute exactly like row grades are — FAnd
// within the attribute in profile order, then FAndAll across the populated
// attributes — so a hypothetical row matching every active preference folds
// to exactly this value and any real row folds below it (up to the ulp
// divergence taSlack absorbs).
func streamThreshold(sp []streamPref, pend []streamPending, nAttrs int, attrScratch *[]float64, seen []bool) float64 {
	perAttr := (*attrScratch)[:0]
	for i := 0; i < nAttrs; i++ {
		perAttr = append(perAttr, 0)
		seen[i] = false
	}
	*attrScratch = perAttr
	for i := range sp {
		if pend[i].done {
			continue
		}
		a := sp[i].attr
		perAttr[a] = hypre.FAnd(perAttr[a], sp[i].intensity)
		seen[a] = true
	}
	vals := perAttr[:0]
	for a, g := range perAttr {
		if seen[a] {
			vals = append(vals, g)
		}
	}
	return hypre.FAndAll(vals...)
}

// EvaluateOneShot is the cost-based entry point for a single top-k profile
// query: a profile whose predicates are already materialized in the
// evaluator's bitmap cache pays O(result) random access through the cached
// path (BuildLists + TA), while a cold one-shot profile streams — no full
// bitmaps are built and no cache entries are left behind. Query shapes the
// streaming planner refuses fall back to the materialized path, so the
// answer is always the same; only the work differs.
func EvaluateOneShot(ev *combine.Evaluator, prefs []hypre.ScoredPred, k int) ([]combine.ScoredTuple, *StreamStats, error) {
	return EvaluateOneShotTraced(ev, prefs, k, nil)
}

// EvaluateOneShotTraced is EvaluateOneShot with the router decision and the
// chosen path's stage spans recorded into tr (nil = disabled).
func EvaluateOneShotTraced(ev *combine.Evaluator, prefs []hypre.ScoredPred, k int, tr *obs.Trace) ([]combine.ScoredTuple, *StreamStats, error) {
	eligible := 0
	cached := 0
	for _, p := range prefs {
		if p.Intensity >= 0 {
			eligible++
		}
	}
	if eligible > 0 {
		all := make([]hypre.ScoredPred, 0, eligible)
		for _, p := range prefs {
			if p.Intensity >= 0 {
				all = append(all, p)
			}
		}
		cached = ev.CachedCount(all)
	}
	if eligible > 0 && cached == eligible {
		tr.SetExec("materialized")
		return evalMaterialized(ev, prefs, k, tr)
	}
	out, st, err := EvaluateStreamingTraced(ev, prefs, k, tr)
	if errors.Is(err, relstore.ErrStreamUnsupported) {
		tr.SetExec("materialized_fallback")
		return evalMaterialized(ev, prefs, k, tr)
	}
	tr.SetExec("streaming")
	return out, st, err
}

func evalMaterialized(ev *combine.Evaluator, prefs []hypre.ScoredPred, k int, tr *obs.Trace) ([]combine.ScoredTuple, *StreamStats, error) {
	sp := tr.StartSpan(obs.StageBuildLists)
	lists, err := BuildLists(ev, prefs)
	tr.EndSpan(sp)
	if err != nil {
		return nil, nil, err
	}
	sp = tr.StartSpan(obs.StageTA)
	out := lists.TATraced(k, tr)
	tr.EndSpan(sp)
	return out, &StreamStats{}, nil
}
