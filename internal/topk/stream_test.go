package topk

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// streamDB builds a randomized dblp-shaped store: papers with a unique pid
// key, a venue drawn from a pool whose size steers predicate selectivity, a
// numeric score column, and a dblp_author join table with zipf-ish author
// popularity.
func streamDB(t *testing.T, rng *rand.Rand, nPapers, nVenues, nAuthors int) *combine.Evaluator {
	t.Helper()
	db := relstore.NewDB()
	dblp, err := db.CreateTable("dblp",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "venue", Kind: predicate.KindString},
		relstore.Column{Name: "score", Kind: predicate.KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	da, err := db.CreateTable("dblp_author",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "aid", Kind: predicate.KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < nPapers; p++ {
		pid := int64(p + 1)
		venue := fmt.Sprintf("V%d", rng.Intn(nVenues))
		score := int64(rng.Intn(100))
		if _, err := dblp.Insert(predicate.Int(pid), predicate.String(venue), predicate.Int(score)); err != nil {
			t.Fatal(err)
		}
		for n := rng.Intn(3); n > 0; n-- {
			aid := int64(rng.Intn(nAuthors*nAuthors)) / int64(nAuthors) // skewed
			if _, err := da.Insert(predicate.Int(pid), predicate.Int(aid)); err != nil {
				t.Fatal(err)
			}
		}
	}
	base := func(w predicate.Predicate) relstore.Query {
		return relstore.Query{
			From:  "dblp",
			Join:  &relstore.JoinSpec{Table: "dblp_author", LeftCol: "pid", RightCol: "pid"},
			Where: w,
		}
	}
	return combine.NewEvaluator(db, base, "dblp.pid")
}

// streamProfile draws a random profile across the supported leaf shapes and
// an occasional composite or negative (skipped) preference.
func streamProfile(t *testing.T, rng *rand.Rand, size, nVenues, nAuthors int) []hypre.ScoredPred {
	t.Helper()
	intensity := func() float64 {
		if rng.Float64() < 0.1 {
			return -rng.Float64() // negative: both paths must skip it
		}
		return float64(rng.Intn(100)) / 100
	}
	prefs := make([]hypre.ScoredPred, 0, size)
	for i := 0; i < size; i++ {
		var p predicate.Predicate
		attr := ""
		switch rng.Intn(5) {
		case 0:
			p = &predicate.Cmp{Attr: "dblp.venue", Op: predicate.OpEq,
				Val: predicate.String(fmt.Sprintf("V%d", rng.Intn(nVenues)))}
			attr = "venue"
		case 1:
			p = &predicate.Cmp{Attr: "dblp_author.aid", Op: predicate.OpEq,
				Val: predicate.Int(int64(rng.Intn(nAuthors)))}
			attr = "aid"
		case 2:
			lo := int64(rng.Intn(90))
			p = &predicate.Between{Attr: "dblp.score",
				Lo: predicate.Int(lo), Hi: predicate.Int(lo + int64(rng.Intn(30)))}
			attr = "score"
		case 3:
			p = &predicate.In{Attr: "dblp.venue", Vals: []predicate.Value{
				predicate.String(fmt.Sprintf("V%d", rng.Intn(nVenues))),
				predicate.String(fmt.Sprintf("V%d", rng.Intn(nVenues))),
			}}
			attr = "venue"
		default:
			p = predicate.NewOr(
				&predicate.Cmp{Attr: "dblp.venue", Op: predicate.OpEq,
					Val: predicate.String(fmt.Sprintf("V%d", rng.Intn(nVenues)))},
				&predicate.Not{Kid: &predicate.Cmp{Attr: "dblp.score", Op: predicate.OpLt,
					Val: predicate.Int(int64(rng.Intn(100)))}},
			)
		}
		// The Pred string is the evaluator's cache identity, so it must
		// describe the predicate, not the profile slot.
		prefs = append(prefs, hypre.ScoredPred{
			Pred: fmt.Sprint(p), P: p, Intensity: intensity(), Attr: attr,
		})
	}
	return prefs
}

func sameRanking(a, b []combine.ScoredTuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].PID != b[i].PID ||
			math.Float64bits(a[i].Intensity) != math.Float64bits(b[i].Intensity) {
			return false
		}
	}
	return true
}

// The streaming path must be byte-identical to the materialized path —
// same top-k pids, same ranks, bit-equal grades — across seeds, profile
// sizes, and selectivities (venue pool width is the selectivity dial).
func TestStreamingMatchesMaterialized(t *testing.T) {
	earlyExits := 0
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nPapers := []int{0, 60, 1024, 3000}[rng.Intn(4)]
		nVenues := []int{2, 8, 40}[rng.Intn(3)] // wide pool = low selectivity per venue
		nAuthors := 30
		ev := streamDB(t, rng, nPapers, nVenues, nAuthors)
		for pi := 0; pi < 4; pi++ {
			prefs := streamProfile(t, rng, 1+rng.Intn(12), nVenues, nAuthors)
			for _, k := range []int{1, 5, 100} {
				lists, err := BuildLists(ev, prefs)
				if err != nil {
					t.Fatal(err)
				}
				want := lists.TA(k)
				got, st, err := EvaluateStreaming(ev, prefs, k)
				if err != nil {
					t.Fatalf("seed %d profile %d k %d: %v", seed, pi, k, err)
				}
				if !sameRanking(got, want) {
					t.Fatalf("seed %d profile %d k %d: streaming diverged\n got %v\nwant %v",
						seed, pi, k, got, want)
				}
				if st.EarlyExit {
					earlyExits++
					if st.BlocksScanned >= st.BlocksTotal && st.BlocksTotal > 1 {
						t.Fatalf("seed %d profile %d k %d: early exit without saving blocks", seed, pi, k)
					}
				}
			}
		}
	}
	if earlyExits == 0 {
		t.Error("threshold early exit never fired across the sweep")
	}
}

// EvaluateOneShot must route by cache state: cold profiles stream, fully
// cached profiles take the materialized path, and both give one answer.
func TestEvaluateOneShotRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ev := streamDB(t, rng, 1500, 8, 30)
	prefs := streamProfile(t, rng, 6, 8, 30)

	cold, st, err := EvaluateOneShot(ev, prefs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Streamed {
		t.Error("cold profile did not stream")
	}
	if ev.CachedCount(prefs) != 0 {
		t.Error("streaming left bitmap cache entries behind")
	}

	if err := ev.MaterializeAll(prefs); err != nil {
		t.Fatal(err)
	}
	warm, st2, err := EvaluateOneShot(ev, prefs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Streamed {
		t.Error("fully cached profile streamed instead of using the bitmap path")
	}
	if !sameRanking(cold, warm) {
		t.Fatalf("paths disagree:\ncold %v\nwarm %v", cold, warm)
	}
}

// A query shape the streaming planner refuses (a conjunct reading both
// sides of the join) must fall back to the materialized path transparently.
func TestEvaluateOneShotUnsupportedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ev := streamDB(t, rng, 800, 4, 30)
	mixed := predicate.NewOr(
		&predicate.Cmp{Attr: "dblp.venue", Op: predicate.OpEq, Val: predicate.String("V1")},
		&predicate.Cmp{Attr: "dblp_author.aid", Op: predicate.OpEq, Val: predicate.Int(3)},
	)
	prefs := []hypre.ScoredPred{
		{Pred: "mixed", P: mixed, Intensity: 0.8, Attr: ""},
		{Pred: "v", P: &predicate.Cmp{Attr: "dblp.venue", Op: predicate.OpEq,
			Val: predicate.String("V2")}, Intensity: 0.5, Attr: "venue"},
	}
	got, st, err := EvaluateOneShot(ev, prefs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Streamed {
		t.Error("mixed-side conjunct should have fallen back to the materialized path")
	}
	lists, err := BuildLists(ev, prefs)
	if err != nil {
		t.Fatal(err)
	}
	if want := lists.TA(5); !sameRanking(got, want) {
		t.Fatalf("fallback diverged:\n got %v\nwant %v", got, want)
	}
}
