// Package topk implements the Top-K baseline of §7.6.1: Fagin's Threshold
// Algorithm (TA) over per-attribute sorted grade lists built from
// quantitative preferences, with the f∧ aggregation function of Eq. 4.3.
// PEPS is evaluated against it in Figs. 37/38.
package topk

import (
	"sort"
	"sync"

	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/obs"
)

// ListEntry is one (object, grade) pair of an attribute list.
type ListEntry struct {
	PID   int64
	Grade float64
}

// entryBefore is the canonical list order: grade descending, ties by pid
// ascending (the determinism rule of every TA output).
func entryBefore(a, b ListEntry) bool {
	if a.Grade != b.Grade {
		return a.Grade > b.Grade
	}
	return a.PID < b.PID
}

// Lists is the TA input: m sorted lists, one per attribute, each ordered
// descending by grade, with random access by pid (Definition 20's setup).
//
// Lists is delta-maintainable (delta.go): each list is a large sorted base
// run plus a small sorted overlay of re-graded entries and a tombstone set
// masking stale base entries, merged on the fly during sorted access —
// ApplyDelta touches O(changed) entries instead of re-sorting n, which is
// what lets a cached plan survive a maintenance Sync. Readers and the
// maintainer synchronize on the embedded RWMutex: TA rankings run under the
// read lock and see one consistent version.
type Lists struct {
	Names   []string
	mu      sync.RWMutex
	sorted  [][]ListEntry
	overlay [][]ListEntry        // sorted; pids disjoint from unmasked base entries
	dead    []map[int64]struct{} // pids masked out of the base run
	grades  []map[int64]float64  // current grade per live pid (random access)
}

// NewLists builds the structure from per-attribute grade maps; each list is
// sorted descending by grade (ties by pid for determinism).
func NewLists(names []string, gradeMaps []map[int64]float64) *Lists {
	l := &Lists{Names: names, grades: gradeMaps,
		overlay: make([][]ListEntry, len(gradeMaps)),
		dead:    make([]map[int64]struct{}, len(gradeMaps))}
	for _, m := range gradeMaps {
		list := make([]ListEntry, 0, len(m))
		for pid, g := range m {
			list = append(list, ListEntry{PID: pid, Grade: g})
		}
		sort.Slice(list, func(i, j int) bool { return entryBefore(list[i], list[j]) })
		l.sorted = append(l.sorted, list)
	}
	return l
}

// liveLen is list i's merged length: base minus masked plus overlay.
// Callers hold l.mu.
func (l *Lists) liveLen(i int) int {
	return len(l.sorted[i]) - len(l.dead[i]) + len(l.overlay[i])
}

// Size returns the total number of live (pid, grade) entries — the storage
// cost §7.6.1 calls out as TA's scalability problem.
func (l *Lists) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for i := range l.sorted {
		n += l.liveLen(i)
	}
	return n
}

// SizeBytes estimates the structure's resident footprint for cache byte
// accounting: each entry is stored twice (a 16-byte sorted pair plus a
// grade-map slot, costed at 16 bytes of payload), plus the attribute names.
// TA and aggregate only read the structure, so a cached Lists may serve
// concurrent rankings (delta maintenance takes the write lock).
func (l *Lists) SizeBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var n int64
	for i, s := range l.sorted {
		n += int64(len(s)+len(l.overlay[i])) * 16
	}
	for _, m := range l.grades {
		n += int64(len(m)) * 16
	}
	for _, name := range l.Names {
		n += int64(len(name))
	}
	return n
}

// aggregate computes the overall grade t(R) = f∧ over the grades of R in
// every list where it appears (absent lists contribute 0, the identity of
// f∧), matching §7.6.1's final combination step which "also added all the
// tuples that are in only one list". Callers hold l.mu at least shared.
func (l *Lists) aggregate(pid int64) float64 {
	vals := make([]float64, 0, len(l.grades))
	for _, m := range l.grades {
		if g, ok := m[pid]; ok {
			vals = append(vals, g)
		}
	}
	return hypre.FAndAll(vals...)
}

// taHeap is a bounded min-heap over scored objects, rooted at the worst
// kept entry under the (grade descending, pid ascending) ranking — so
// keeping the k best costs O(log k) per newly seen object instead of the
// O(k log k) full re-sort the insert step used to pay.
type taHeap []taScored

type taScored struct {
	pid   int64
	grade float64
}

// better reports whether a ranks strictly above b (higher grade, ties by
// smaller pid — the determinism rule of the final TA output).
func (a taScored) better(b taScored) bool {
	if a.grade != b.grade {
		return a.grade > b.grade
	}
	return a.pid < b.pid
}

func (h taHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h[parent].better(h[i]) { // parent already worse or equal: heap holds
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (h taHeap) siftDown(i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && h[worst].better(h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && h[worst].better(h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// push keeps the k best entries: below capacity it inserts, at capacity it
// replaces the root (the worst kept) only when s outranks it.
func (h *taHeap) push(s taScored, k int) {
	if len(*h) < k {
		*h = append(*h, s)
		h.siftUp(len(*h) - 1)
		return
	}
	if s.better((*h)[0]) {
		(*h)[0] = s
		h.siftDown(0)
	}
}

// TA runs Fagin's Threshold Algorithm (Definition 20) and returns the top-k
// objects by aggregated grade, descending (ties by pid):
//
//  1. Sorted access in parallel to each list; every newly seen object is
//     random-accessed in the other lists and its overall grade computed.
//  2. After each depth, the threshold τ is the aggregate of the last grades
//     seen under sorted access; once k objects have grade strictly above τ,
//     halt. (Strict: an unseen object can still reach exactly τ, and under
//     the grade-desc/pid-asc ranking it would displace a kept object with
//     an equal grade but larger pid — the streaming path's equivalence
//     suite caught the >= variant doing exactly that.)
func (l *Lists) TA(k int) []combine.ScoredTuple { return l.TATraced(k, nil) }

// TATraced is TA with per-query observability: the sorted-access depth the
// loop reached (TA rounds) and whether the threshold rule halted it before
// list exhaustion land in tr's engine counters. tr may be nil (TA calls it
// that way); the algorithm is unchanged.
func (l *Lists) TATraced(k int, tr *obs.Trace) []combine.ScoredTuple {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if k <= 0 || len(l.sorted) == 0 {
		return nil
	}
	seen := map[int64]bool{}
	top := make(taHeap, 0, k)

	insert := func(pid int64) {
		if seen[pid] {
			return
		}
		seen[pid] = true
		top.push(taScored{pid: pid, grade: l.aggregate(pid)}, k)
	}

	// Sorted access walks each list's merged view — base run minus masked
	// entries, interleaved with the overlay — which yields exactly the
	// sequence a fresh sort of the grade maps would (entryBefore order, pids
	// unique across the merge).
	cursors := make([]listCursor, len(l.sorted))
	maxDepth := 0
	for i := range l.sorted {
		cursors[i] = listCursor{main: l.sorted[i], over: l.overlay[i], dead: l.dead[i]}
		if n := l.liveLen(i); n > maxDepth {
			maxDepth = n
		}
	}
	rounds, earlyExit := 0, false
	for depth := 0; depth < maxDepth; depth++ {
		lastGrades := make([]float64, 0, len(l.sorted))
		exhausted := true
		for i := range cursors {
			if e, ok := cursors[i].next(); ok {
				insert(e.PID)
				lastGrades = append(lastGrades, e.Grade)
				exhausted = false
			} else if l.liveLen(i) > 0 {
				// An exhausted list contributes its floor grade of 0.
				lastGrades = append(lastGrades, 0)
			}
		}
		if exhausted {
			break
		}
		rounds++
		tau := hypre.FAndAll(lastGrades...)
		// top[0] is the k-th (worst kept) grade, the halting bound.
		if len(top) >= k && top[0].grade > tau {
			earlyExit = true
			break
		}
	}
	tr.AddTA(int64(rounds), earlyExit)

	sort.Slice(top, func(i, j int) bool { return top[i].better(top[j]) })
	out := make([]combine.ScoredTuple, len(top))
	for i, s := range top {
		out[i] = combine.ScoredTuple{PID: s.pid, Intensity: s.grade}
	}
	return out
}

// BuildLists materializes the per-attribute grade tables of §7.6.1
// (intensity_venue, intensity_author) from a profile: preferences are
// grouped by attribute; each tuple's grade within an attribute is the f∧
// combination of the intensities of the matching preferences (the composite
// grade used for multi-author papers). Only non-negative preferences
// participate (TA grades live in [0, 1]).
func BuildLists(ev *combine.Evaluator, prefs []hypre.ScoredPred) (*Lists, error) {
	groups := groupByAttr(prefs)
	names := make([]string, 0, len(groups))
	maps := make([]map[int64]float64, 0, len(groups))
	for _, g := range groups {
		grades := map[int64]float64{}
		for _, p := range g.prefs {
			// Iterate the cached dense bitmap directly: the TA baseline
			// shares the evaluator's bitmap cache instead of materializing
			// IntSet slices of its own. Per-pid accumulation is
			// order-insensitive, so dense-index iteration matches the
			// sorted-slice walk exactly.
			b, err := ev.PredBitmap(p)
			if err != nil {
				return nil, err
			}
			intensity := p.Intensity
			b.ForEachPid(ev.Dict(), func(pid int64) {
				grades[pid] = hypre.FAnd(grades[pid], intensity)
			})
		}
		names = append(names, g.name)
		maps = append(maps, grades)
	}
	return NewLists(names, maps), nil
}

// attrGroup is one attribute's slice of a profile: the list name and the
// non-negative preferences grading into it, in first-seen order.
type attrGroup struct {
	name  string
	prefs []hypre.ScoredPred
}

// groupByAttr groups a profile's preferences by attribute exactly as
// BuildLists always has (first-seen order, negatives skipped, unnamed
// attributes pooled under "(multi)") — shared with the delta path so
// ApplyDelta grades land in the same lists a fresh build would produce.
func groupByAttr(prefs []hypre.ScoredPred) []attrGroup {
	byAttr := map[string]int{}
	var groups []attrGroup
	for _, p := range prefs {
		if p.Intensity < 0 {
			continue
		}
		attr := p.Attr
		if attr == "" {
			attr = "(multi)"
		}
		gi, ok := byAttr[attr]
		if !ok {
			gi = len(groups)
			byAttr[attr] = gi
			groups = append(groups, attrGroup{name: attr})
		}
		groups[gi].prefs = append(groups[gi].prefs, p)
	}
	return groups
}
