package topk

import (
	"math"
	"testing"

	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestTAOnHandBuiltLists(t *testing.T) {
	venue := map[int64]float64{1: 0.9, 2: 0.7, 3: 0.5}
	author := map[int64]float64{2: 0.8, 3: 0.2, 4: 0.6}
	l := NewLists([]string{"venue", "author"}, []map[int64]float64{venue, author})
	got := l.TA(3)
	if len(got) != 3 {
		t.Fatalf("got %d tuples", len(got))
	}
	// Aggregates: 1 -> 0.9 ; 2 -> f∧(0.7,0.8)=0.94 ; 3 -> f∧(0.5,0.2)=0.6 ;
	// 4 -> 0.6. Top-3: 2 (0.94), 1 (0.9), then 3 or 4 at 0.6 (pid tie-break
	// -> 3).
	if got[0].PID != 2 || !almostEq(got[0].Intensity, hypre.FAnd(0.7, 0.8)) {
		t.Errorf("top = %+v", got[0])
	}
	if got[1].PID != 1 || !almostEq(got[1].Intensity, 0.9) {
		t.Errorf("second = %+v", got[1])
	}
	if got[2].PID != 3 || !almostEq(got[2].Intensity, 0.6) {
		t.Errorf("third = %+v", got[2])
	}
}

func TestTAExhaustive(t *testing.T) {
	// With k >= all objects, TA must return every object, exactly ranked.
	venue := map[int64]float64{1: 0.3, 2: 0.6}
	author := map[int64]float64{3: 0.9}
	l := NewLists([]string{"v", "a"}, []map[int64]float64{venue, author})
	got := l.TA(10)
	if len(got) != 3 {
		t.Fatalf("got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Intensity > got[i-1].Intensity {
			t.Error("not sorted")
		}
	}
}

func TestTAKZeroAndEmpty(t *testing.T) {
	l := NewLists(nil, nil)
	if got := l.TA(5); got != nil {
		t.Errorf("empty lists returned %v", got)
	}
	l2 := NewLists([]string{"v"}, []map[int64]float64{{1: 0.5}})
	if got := l2.TA(0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
}

func TestTAEarlyTermination(t *testing.T) {
	// The threshold must let TA stop before exhausting long lists: the top
	// object appears at depth 0 of both lists with grade far above the rest.
	venue := map[int64]float64{5000: 0.99}
	author := map[int64]float64{5000: 0.99}
	for i := int64(0); i < 1000; i++ {
		venue[i] = 0.01
		author[i] = 0.01
	}
	l := NewLists([]string{"v", "a"}, []map[int64]float64{venue, author})
	got := l.TA(1)
	if len(got) != 1 || got[0].PID != 5000 {
		t.Fatalf("got %+v", got)
	}
}

func TestListsSize(t *testing.T) {
	l := NewLists([]string{"v", "a"},
		[]map[int64]float64{{1: 0.5, 2: 0.4}, {1: 0.3}})
	if l.Size() != 3 {
		t.Errorf("Size = %d", l.Size())
	}
}

// taDB builds a small store for BuildLists integration.
func taDB(t *testing.T) *combine.Evaluator {
	t.Helper()
	db := relstore.NewDB()
	dblp, _ := db.CreateTable("dblp",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "venue", Kind: predicate.KindString},
	)
	da, _ := db.CreateTable("dblp_author",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "aid", Kind: predicate.KindInt},
	)
	rows := []struct {
		pid   int64
		venue string
		aids  []int64
	}{
		{1, "VLDB", []int64{7}},
		{2, "VLDB", []int64{7, 8}},
		{3, "PODS", []int64{8}},
	}
	for _, r := range rows {
		dblp.Insert(predicate.Int(r.pid), predicate.String(r.venue))
		for _, a := range r.aids {
			da.Insert(predicate.Int(r.pid), predicate.Int(a))
		}
	}
	base := func(w predicate.Predicate) relstore.Query {
		return relstore.Query{
			From:  "dblp",
			Join:  &relstore.JoinSpec{Table: "dblp_author", LeftCol: "pid", RightCol: "pid"},
			Where: w,
		}
	}
	return combine.NewEvaluator(db, base, "dblp.pid")
}

func mustSP(t *testing.T, pred string, in float64) hypre.ScoredPred {
	t.Helper()
	p, err := hypre.NewScoredPred(pred, in)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildListsGroupsByAttribute(t *testing.T) {
	ev := taDB(t)
	prefs := []hypre.ScoredPred{
		mustSP(t, `dblp.venue="VLDB"`, 0.5),
		mustSP(t, `dblp_author.aid=7`, 0.4),
		mustSP(t, `dblp_author.aid=8`, 0.3),
	}
	l, err := BuildLists(ev, prefs)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Names) != 2 {
		t.Fatalf("attr lists = %v", l.Names)
	}
	got := l.TA(3)
	if len(got) != 3 {
		t.Fatalf("TA returned %d", len(got))
	}
	// Paper 2: venue 0.5, authors f∧(0.4,0.3)=0.58 -> total f∧(0.5,0.58).
	want2 := hypre.FAnd(0.5, hypre.FAnd(0.4, 0.3))
	if got[0].PID != 2 || !almostEq(got[0].Intensity, want2) {
		t.Errorf("top = %+v, want pid 2 @ %v", got[0], want2)
	}
	// Paper 1: f∧(0.5, 0.4) = 0.7 ; paper 3: aid 8 only = 0.3.
	if got[1].PID != 1 || !almostEq(got[1].Intensity, hypre.FAnd(0.5, 0.4)) {
		t.Errorf("second = %+v", got[1])
	}
	if got[2].PID != 3 || !almostEq(got[2].Intensity, 0.3) {
		t.Errorf("third = %+v", got[2])
	}
}

func TestBuildListsSkipsNegative(t *testing.T) {
	ev := taDB(t)
	prefs := []hypre.ScoredPred{
		mustSP(t, `dblp.venue="VLDB"`, 0.5),
		mustSP(t, `dblp.venue="PODS"`, -0.4),
	}
	l, err := BuildLists(ev, prefs)
	if err != nil {
		t.Fatal(err)
	}
	got := l.TA(10)
	for _, tu := range got {
		if tu.PID == 3 {
			t.Error("negatively-preferred tuple graded")
		}
	}
}
