package topk

import (
	"sort"

	"hypre/internal/combine"
	"hypre/internal/hypre"
)

// Delta maintenance of TA's sorted lists. Rebuilding a profile's lists
// costs O(n log n) in the list sizes, which under a sustained update stream
// turns every maintenance Sync into a table-sized bill per cached plan. The
// overlay design keeps the big base runs immutable and routes churn through
// two touched-sized side structures per list: re-graded entries land in a
// small sorted overlay, stale base entries are masked by a tombstone set,
// and sorted access merges the three on the fly in the exact (grade desc,
// pid asc) order a fresh sort would produce. When the side structures
// outgrow a fraction of the base, the list is merge-compacted from its
// grade map — amortized O(changed) per maintained update.

// listCursor iterates one list's merged view in entryBefore order: the base
// run (skipping masked pids) interleaved with the overlay.
type listCursor struct {
	main, over []ListEntry
	dead       map[int64]struct{}
	mi, oi     int
}

// next yields the merged sequence's next entry.
func (c *listCursor) next() (ListEntry, bool) {
	for c.mi < len(c.main) {
		if _, masked := c.dead[c.main[c.mi].PID]; !masked {
			break
		}
		c.mi++
	}
	hasM := c.mi < len(c.main)
	hasO := c.oi < len(c.over)
	switch {
	case hasM && (!hasO || entryBefore(c.main[c.mi], c.over[c.oi])):
		e := c.main[c.mi]
		c.mi++
		return e, true
	case hasO:
		e := c.over[c.oi]
		c.oi++
		return e, true
	default:
		return ListEntry{}, false
	}
}

// ApplyDelta re-grades the touched pids in place: newGrades is shaped like
// a fresh build's grade maps for the same profile (names must match the
// lists' attributes — DeltaGrades produces exactly that), and a pid absent
// from newGrades[i] leaves list i. Untouched entries are not visited. The
// result is equivalent to rebuilding the lists from scratch over the new
// grade maps; returns false (lists unchanged) when the attribute layout
// does not line up and the caller should rebuild instead.
func (l *Lists) ApplyDelta(pids []int64, names []string, newGrades []map[int64]float64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(names) != len(l.Names) || len(newGrades) != len(l.Names) {
		return false
	}
	for i, n := range names {
		if n != l.Names[i] {
			return false
		}
	}
	for i := range l.grades {
		g := l.grades[i]
		ng := newGrades[i]
		dirty := false
		for _, pid := range pids {
			gOld, had := g[pid]
			gNew, has := ng[pid]
			if had == has && (!had || gOld == gNew) {
				continue
			}
			dirty = true
			if had {
				// Retire the pid's current entry: lift it out of the overlay
				// if it lives there, otherwise mask its base slot. A pid
				// masked once stays masked — re-additions live in the
				// overlay, so the base entry is stale forever.
				if !l.removeOverlay(i, ListEntry{PID: pid, Grade: gOld}) {
					if l.dead[i] == nil {
						l.dead[i] = make(map[int64]struct{})
					}
					l.dead[i][pid] = struct{}{}
				}
			}
			if has {
				l.insertOverlay(i, ListEntry{PID: pid, Grade: gNew})
				g[pid] = gNew
			} else {
				delete(g, pid)
			}
		}
		if dirty {
			l.maybeCompactList(i)
		}
	}
	return true
}

// removeOverlay deletes the exact entry from list i's overlay, reporting
// whether it was there. Callers hold l.mu exclusively.
func (l *Lists) removeOverlay(i int, e ListEntry) bool {
	ov := l.overlay[i]
	j := sort.Search(len(ov), func(k int) bool { return !entryBefore(ov[k], e) })
	if j < len(ov) && ov[j] == e {
		l.overlay[i] = append(ov[:j], ov[j+1:]...)
		return true
	}
	return false
}

// insertOverlay places e at its sorted position in list i's overlay.
// Callers hold l.mu exclusively.
func (l *Lists) insertOverlay(i int, e ListEntry) {
	ov := append(l.overlay[i], ListEntry{})
	j := sort.Search(len(ov)-1, func(k int) bool { return !entryBefore(ov[k], e) })
	copy(ov[j+1:], ov[j:])
	ov[j] = e
	l.overlay[i] = ov
}

// maybeCompactList folds list i's overlay and tombstones back into one
// sorted base run once they exceed a quarter of it (with a floor so small
// lists don't thrash) — re-sorted from the grade map, which is the current
// membership by construction. Callers hold l.mu exclusively.
func (l *Lists) maybeCompactList(i int) {
	side := len(l.overlay[i]) + len(l.dead[i])
	if limit := max(64, len(l.sorted[i])/4); side <= limit {
		return
	}
	list := make([]ListEntry, 0, len(l.grades[i]))
	for pid, g := range l.grades[i] {
		list = append(list, ListEntry{PID: pid, Grade: g})
	}
	sort.Slice(list, func(a, b int) bool { return entryBefore(list[a], list[b]) })
	l.sorted[i] = list
	l.overlay[i] = nil
	l.dead[i] = nil
}

// DeltaGrades computes the current per-attribute grades of just the given
// pids for a profile, against the evaluator's (already refreshed) predicate
// bitmaps — the newGrades input ApplyDelta wants. Grouping, negative-
// preference skipping, and f∧ accumulation mirror BuildLists exactly
// (shared groupByAttr), so names aligns with the Lists a fresh build of the
// same profile produced. Pids with no dense id match no bitmap and come
// back absent, i.e. "leaves every list".
func DeltaGrades(ev *combine.Evaluator, prefs []hypre.ScoredPred, pids []int64) (names []string, grades []map[int64]float64, err error) {
	type target struct {
		pid int64
		di  int
	}
	targets := make([]target, 0, len(pids))
	for _, pid := range pids {
		if di, ok := ev.DenseID(pid); ok {
			targets = append(targets, target{pid: pid, di: di})
		}
	}
	groups := groupByAttr(prefs)
	names = make([]string, 0, len(groups))
	grades = make([]map[int64]float64, 0, len(groups))
	for _, grp := range groups {
		m := map[int64]float64{}
		for _, p := range grp.prefs {
			b, err := ev.PredBitmap(p)
			if err != nil {
				return nil, nil, err
			}
			for _, tg := range targets {
				if b.Contains(tg.di) {
					m[tg.pid] = hypre.FAnd(m[tg.pid], p.Intensity)
				}
			}
		}
		names = append(names, grp.name)
		grades = append(grades, m)
	}
	return names, grades, nil
}
