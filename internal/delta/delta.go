// Package delta is the incremental-maintenance subsystem: it keeps a
// combine.Evaluator's predicate bitmaps, the pre-computed pair table, and
// therefore PEPS top-k answers consistent with a mutating relational store,
// at the cost of the mutation deltas instead of a full rematerialization.
//
// The pipeline per Sync:
//
//  1. Drain the committed mutations of the base table and the join table
//     from their bounded change logs (relstore.ChangedSince, epoch-keyed).
//  2. Map join-table changes back to affected base rows through the join
//     key — using each change's pre-image for deletes and updates, so rows
//     partnered with the OLD key are repaired too, not just the new one.
//  3. Re-evaluate every cached predicate over exactly the touched base
//     rows (Evaluator.RefreshRows → relstore.MatchLeftRows, vectorized
//     kernels restricted to the touched rows' blocks) and patch the cached
//     bitmaps copy-on-write.
//  4. Recount only the pair-table entries with a changed endpoint
//     (PairTable.Refresh).
//
// When a change log has been trimmed past the maintainer's last-synced
// epoch (or the evaluator cannot refresh in place), Sync falls back loudly
// to a full rebuild: Evaluator.Invalidate + BuildPairTable.
//
// Requirements: the evaluator's key attribute must be a unique non-NULL
// key of the base table (dblp.pid) — each base row then owns its dense
// bitmap bit, which is what makes the per-row patch exact. Updating the
// key column itself triggers a full rebuild rather than silent corruption.
package delta

import (
	"fmt"
	"time"

	"hypre/internal/bitset"
	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/obs"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// Maintainer owns one evaluator + pair table pair and keeps both in sync
// with the store. Sync must not run concurrently with itself, but store
// mutations may race a Sync: every read Sync issues (change-log drains,
// Value lookups, MatchLeftRows scans) takes the store's shared state
// locks, and any mutation committed after the epochs captured at the top
// of the call is simply replayed — idempotently — by the next Sync.
// Mid-Sync the cached bitmaps may transiently mix pre- and post-mutation
// rows; they converge on the next Sync once the logs quiesce.
type Maintainer struct {
	ev    *combine.Evaluator
	db    *relstore.DB
	prefs []hypre.ScoredPred
	pt    *combine.PairTable

	left, right  *relstore.Table // base and (optional) join table
	leftName     string
	leftJoinCol  string
	rightJoinCol string
	rightJoinPos int // position of rightJoinCol in the join table
	keyCol       string
	keyPos       int // position of the key column in the base table
	leftEpoch    uint64
	rightEpoch   uint64

	cache CacheSyncer

	// Observability, attached before serving like the cache syncer. All
	// three stay nil when unattached; Sync then never reads the clock.
	syncHist    *obs.Histogram // delta_sync: wall time per Sync
	touchedHist *obs.Histogram // delta_touched_rows: re-evaluated rows per Sync
	rebuilds    *obs.Counter   // delta_full_rebuilds: loud-fallback count
}

// AttachObs registers the maintainer's maintenance metrics with a registry:
// a per-Sync wall-time histogram ("delta_sync"), a touched-rows histogram
// ("delta_touched_rows"), and a full-rebuild counter ("delta_full_rebuilds").
// Call before serving traffic, alongside AttachCache.
func (m *Maintainer) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.syncHist = reg.Histogram("delta_sync")
	m.touchedHist = reg.Histogram("delta_touched_rows")
	m.rebuilds = reg.Counter("delta_full_rebuilds")
}

// CacheSyncer is the hook a serving-tier cache registers to ride the
// maintainer's delta pipeline: after each successful Sync it receives the
// touched base-row mask and the epochs the maintainer synced to, so it can
// invalidate exactly the entries whose predicate membership moved and
// re-open itself for the new store snapshot. A full rebuild (log trimmed,
// key-column rewrite) instead drops everything via InvalidateAll.
// internal/cache.Server implements it.
type CacheSyncer interface {
	ApplyDelta(touched *bitset.Set, leftEpoch, rightEpoch uint64)
	InvalidateAll(leftEpoch, rightEpoch uint64)
}

// AttachCache registers a cache for delta-aware invalidation. Call before
// serving traffic; the maintainer notifies it on every Sync. The cache is
// immediately synchronized to the maintainer's current epochs.
func (m *Maintainer) AttachCache(cs CacheSyncer) {
	m.cache = cs
	cs.ApplyDelta(nil, m.leftEpoch, m.rightEpoch)
}

// SyncStats reports what one Sync cost.
type SyncStats struct {
	// TouchedRows is the number of distinct base rows re-evaluated.
	TouchedRows int
	// ChangedPreds is the number of cached predicates whose tuple set moved.
	ChangedPreds int
	// RecheckedChanges is the number of raw change-log entries drained.
	RecheckedChanges int
	// FullRebuild reports that the incremental path was unavailable (log
	// trimmed, key-column update, or evaluator fallback mode) and the
	// caches were rebuilt from scratch.
	FullRebuild bool
}

// NewMaintainer materializes the profile, builds the pair table, and
// snapshots the tables' epochs, so the first Sync only replays mutations
// committed after this call began.
func NewMaintainer(ev *combine.Evaluator, prefs []hypre.ScoredPred) (*Maintainer, error) {
	base := ev.BaseQuery(predicate.True{})
	db := ev.DB()
	left := db.Table(base.From)
	if left == nil {
		return nil, fmt.Errorf("delta: unknown base table %q", base.From)
	}
	m := &Maintainer{
		ev:       ev,
		db:       db,
		prefs:    prefs,
		left:     left,
		leftName: base.From,
	}
	if base.Join != nil {
		right := db.Table(base.Join.Table)
		if right == nil {
			return nil, fmt.Errorf("delta: unknown join table %q", base.Join.Table)
		}
		pos := right.ColumnIndex(base.Join.RightCol)
		if pos < 0 {
			return nil, fmt.Errorf("delta: %s has no column %q", base.Join.Table, base.Join.RightCol)
		}
		m.right = right
		m.leftJoinCol = base.Join.LeftCol
		m.rightJoinCol = base.Join.RightCol
		m.rightJoinPos = pos
	}
	m.keyCol = ev.KeyColumn(base.From)
	m.keyPos = left.ColumnIndex(m.keyCol)
	if m.keyPos < 0 {
		return nil, fmt.Errorf("delta: %s has no key column %q", base.From, m.keyCol)
	}
	// Capture epochs before building: mutations racing the build are
	// replayed by the first Sync, and re-evaluating a row is idempotent.
	m.leftEpoch = left.Epoch()
	if m.right != nil {
		m.rightEpoch = m.right.Epoch()
	}
	pt, err := combine.BuildPairTable(prefs, ev)
	if err != nil {
		return nil, err
	}
	m.pt = pt
	return m, nil
}

// Evaluator returns the maintained evaluator.
func (m *Maintainer) Evaluator() *combine.Evaluator { return m.ev }

// PairTable returns the maintained pair table (replaced, never mutated, by
// Sync).
func (m *Maintainer) PairTable() *combine.PairTable { return m.pt }

// TopK answers a top-k query over the maintained state: pure bitmap algebra
// and pair-table lookups, no store scans.
func (m *Maintainer) TopK(k int, v combine.Variant) (combine.TopKResult, error) {
	return combine.PEPS(m.prefs, m.pt, m.ev, k, v)
}

// TopKTraced is TopK with the PEPS DFS span and expansion counters
// recorded into tr (nil = disabled).
func (m *Maintainer) TopKTraced(k int, v combine.Variant, tr *obs.Trace) (combine.TopKResult, error) {
	return combine.PEPSTraced(m.prefs, m.pt, m.ev, k, v, tr)
}

// Sync drains the tables' change logs and repairs the evaluator's bitmap
// cache and the pair table incrementally; see the package comment for the
// pipeline. It is cheap when nothing changed (two epoch reads).
func (m *Maintainer) Sync() (SyncStats, error) { return m.SyncTraced(nil) }

// SyncTraced is Sync under observability: the whole pass runs inside a
// delta_sync span, the touched-row footprint lands in tr's engine counters,
// and — when AttachObs has run — the attached histograms and the rebuild
// counter observe the pass whether or not it is traced.
func (m *Maintainer) SyncTraced(tr *obs.Trace) (SyncStats, error) {
	var started time.Time
	if m.syncHist != nil {
		started = time.Now()
	}
	sp := tr.StartSpan(obs.StageDeltaSync)
	st, err := m.sync()
	tr.EndSpan(sp)
	tr.AddTouchedRows(int64(st.TouchedRows))
	if m.syncHist != nil {
		m.syncHist.RecordDuration(time.Since(started))
		m.touchedHist.Record(int64(st.TouchedRows))
		if st.FullRebuild {
			m.rebuilds.Add(1)
		}
	}
	return st, err
}

func (m *Maintainer) sync() (SyncStats, error) {
	lEpoch := m.left.Epoch()
	var rEpoch uint64
	if m.right != nil {
		rEpoch = m.right.Epoch()
	}
	lch, ok := m.left.ChangedSince(m.leftEpoch)
	if !ok {
		return m.rebuild(lEpoch, rEpoch)
	}
	var rch []relstore.RowChange
	if m.right != nil {
		rch, ok = m.right.ChangedSince(m.rightEpoch)
		if !ok {
			return m.rebuild(lEpoch, rEpoch)
		}
	}
	if len(lch) == 0 && len(rch) == 0 {
		m.leftEpoch, m.rightEpoch = lEpoch, rEpoch
		if m.cache != nil {
			// Nothing touched, but the stamp may have advanced (empty
			// commits); let the cache re-open for the new epochs.
			m.cache.ApplyDelta(nil, lEpoch, rEpoch)
		}
		return SyncStats{}, nil
	}

	// The touched-row mask accumulates directly in compressed form: change
	// logs name rows in roughly ascending batches, so the mask stays a
	// handful of array/bitmap containers regardless of how wide the table
	// is.
	touched := bitset.New()
	for _, c := range lch {
		// A key-column update would re-key the row's dense bitmap slot;
		// the incremental patch cannot express that, so rebuild loudly.
		if c.Kind == relstore.ChangeUpdate &&
			indexKeyChanged(c.Old[m.keyPos], m.left.Value(c.Row, m.keyCol)) {
			return m.rebuild(lEpoch, rEpoch)
		}
		touched.Add(c.Row)
	}
	for _, c := range rch {
		// Affected base rows are the join partners of the change's key —
		// the current key for inserts, the pre-image key for deletes, and
		// both for updates (old partners lost it, new partners gained it).
		switch c.Kind {
		case relstore.ChangeInsert:
			if err := m.addPartners(touched, m.right.Value(c.Row, m.rightJoinCol)); err != nil {
				return SyncStats{}, err
			}
		case relstore.ChangeDelete:
			if err := m.addPartners(touched, c.Old[m.rightJoinPos]); err != nil {
				return SyncStats{}, err
			}
		case relstore.ChangeUpdate:
			if err := m.addPartners(touched, c.Old[m.rightJoinPos]); err != nil {
				return SyncStats{}, err
			}
			if err := m.addPartners(touched, m.right.Value(c.Row, m.rightJoinCol)); err != nil {
				return SyncStats{}, err
			}
		}
	}
	changed, prev, spans, ok, err := m.ev.RefreshRowSetDelta(touched)
	if err != nil {
		return SyncStats{}, err
	}
	if !ok {
		return m.rebuild(lEpoch, rEpoch)
	}
	if len(changed) > 0 {
		// Recount only the partitions the patch actually touched when they
		// are a minority of the dense-id domain (each repriced pair then
		// pays two span-restricted counts, so the span path must cover
		// under half the spans to win); small domains — a single 64k span —
		// keep the whole-set recount.
		totalSpans := bitset.SpanCount(m.ev.Dict().Size())
		var pt *combine.PairTable
		if 2*len(spans) < totalSpans {
			pt, err = m.pt.RefreshSpans(m.ev, prev, spans)
		} else {
			pt, err = m.pt.Refresh(m.ev, changed)
		}
		if err != nil {
			return SyncStats{}, err
		}
		m.pt = pt
	}
	m.leftEpoch, m.rightEpoch = lEpoch, rEpoch
	if m.cache != nil {
		m.cache.ApplyDelta(touched, lEpoch, rEpoch)
	}
	return SyncStats{
		TouchedRows:      touched.Len(),
		ChangedPreds:     len(changed),
		RecheckedChanges: len(lch) + len(rch),
	}, nil
}

// addPartners folds the base rows joining with key into touched.
func (m *Maintainer) addPartners(touched *bitset.Set, key predicate.Value) error {
	lids, err := m.db.LookupRowIDs(m.leftName, m.leftJoinCol, key)
	if err != nil {
		return err
	}
	for _, lid := range lids {
		touched.Add(lid)
	}
	return nil
}

// rebuild is the loud fallback: drop every derived cache and rebuild from
// the store's current state.
func (m *Maintainer) rebuild(lEpoch, rEpoch uint64) (SyncStats, error) {
	m.ev.Invalidate()
	pt, err := combine.BuildPairTable(m.prefs, m.ev)
	if err != nil {
		return SyncStats{}, err
	}
	m.pt = pt
	m.leftEpoch, m.rightEpoch = lEpoch, rEpoch
	if m.cache != nil {
		m.cache.InvalidateAll(lEpoch, rEpoch)
	}
	return SyncStats{FullRebuild: true}, nil
}

// indexKeyChanged reports whether a value change re-keys an equality
// lookup, under the store's integral-float collapsing.
func indexKeyChanged(a, b predicate.Value) bool {
	eq, ok := predicate.Compare(a, b)
	return !ok || eq != 0
}
