// Package delta is the incremental-maintenance subsystem: it keeps a
// combine.Evaluator's predicate bitmaps, the pre-computed pair table, and
// therefore PEPS top-k answers consistent with a mutating relational store,
// at the cost of the mutation deltas instead of a full rematerialization.
//
// The pipeline per Sync:
//
//  1. Drain the committed mutations of the base table and the join table
//     from their bounded change logs (relstore.ChangedSince, epoch-keyed).
//  2. Map join-table changes back to affected base rows through the join
//     key — using each change's pre-image for deletes and updates, so rows
//     partnered with the OLD key are repaired too, not just the new one.
//  3. Re-evaluate every cached predicate over exactly the touched base
//     rows (Evaluator.RefreshRows → relstore.MatchLeftRows, vectorized
//     kernels restricted to the touched rows' blocks) and patch the cached
//     bitmaps copy-on-write.
//  4. Recount only the pair-table entries with a changed endpoint
//     (PairTable.Refresh).
//
// Tombstone compaction slots in as a step 2½: a compaction renumbers the
// base table's row ids, so Sync composes the published remaps
// (relstore.SnapshotSince delivers them atomically with the change drain),
// reindexes the evaluator's row plumbing (Evaluator.RemapRows), and clears
// the pids of dropped rows by dictionary id (Evaluator.DropPids) before the
// row-driven refresh — dropped rows arrive as Row = -1 change entries whose
// pre-images carry the pid. Join-table compactions need none of this:
// nothing the maintainer derives is keyed by join-table row ids.
//
// When a change log has been trimmed past the maintainer's last-synced
// epoch, the compaction history has been evicted, or the evaluator cannot
// refresh in place, Sync falls back loudly to a full rebuild:
// Evaluator.Invalidate + BuildPairTable. The fallback reports its cause
// (SyncStats.RebuildCause, per-cause obs counters), so an operator can tell
// an undersized change log from a key-column rewrite.
//
// Requirements: the evaluator's key attribute must be a unique non-NULL
// key of the base table (dblp.pid) — each base row then owns its dense
// bitmap bit, which is what makes the per-row patch exact. Updating the
// key column itself triggers a full rebuild rather than silent corruption.
package delta

import (
	"fmt"
	"slices"
	"time"

	"hypre/internal/bitset"
	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/obs"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// Maintainer owns one evaluator + pair table pair and keeps both in sync
// with the store. Sync must not run concurrently with itself, but store
// mutations may race a Sync: every read Sync issues (change-log drains,
// Value lookups, MatchLeftRows scans) takes the store's shared state
// locks, and any mutation committed after the epochs captured at the top
// of the call is simply replayed — idempotently — by the next Sync.
// Mid-Sync the cached bitmaps may transiently mix pre- and post-mutation
// rows; they converge on the next Sync once the logs quiesce.
type Maintainer struct {
	ev    *combine.Evaluator
	db    *relstore.DB
	prefs []hypre.ScoredPred
	pt    *combine.PairTable

	left, right  *relstore.Table // base and (optional) join table
	leftName     string
	leftJoinCol  string
	rightJoinCol string
	rightJoinPos int // position of rightJoinCol in the join table
	keyCol       string
	keyPos       int // position of the key column in the base table
	leftEpoch    uint64
	rightEpoch   uint64

	cache CacheSyncer

	// Observability, attached before serving like the cache syncer. All
	// stay nil when unattached; Sync then never reads the clock.
	syncHist    *obs.Histogram // delta_sync: wall time per Sync
	touchedHist *obs.Histogram // delta_touched_rows: re-evaluated rows per Sync
	rebuilds    *obs.Counter   // delta_full_rebuilds: loud-fallback count
	reg         *obs.Registry  // per-cause rebuild counters, created on demand
}

// AttachObs registers the maintainer's maintenance metrics with a registry:
// a per-Sync wall-time histogram ("delta_sync"), a touched-rows histogram
// ("delta_touched_rows"), a full-rebuild counter ("delta_full_rebuilds"),
// and — on demand, as fallbacks occur — one counter per rebuild cause
// ("delta_rebuilds_log_overflow", "delta_rebuilds_key_rewrite",
// "delta_rebuilds_compaction_lost", "delta_rebuilds_evaluator"). Call
// before serving traffic, alongside AttachCache.
func (m *Maintainer) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.reg = reg
	m.syncHist = reg.Histogram("delta_sync")
	m.touchedHist = reg.Histogram("delta_touched_rows")
	m.rebuilds = reg.Counter("delta_full_rebuilds")
}

// CacheSyncer is the hook a serving-tier cache registers to ride the
// maintainer's delta pipeline: after each successful Sync it receives the
// touched base-row mask, the pids of compaction-dropped rows, and the
// epochs the maintainer synced to, so it can repair exactly the entries
// whose predicate membership moved and re-open itself for the new store
// snapshot. ApplyRemap arrives first on the Syncs that absorbed a
// compaction, carrying the composed old→new row-id map for whatever the
// cache keys by base row id. A full rebuild (log trimmed, key-column
// rewrite) instead drops everything via InvalidateAll.
// internal/cache.Server implements it.
type CacheSyncer interface {
	ApplyDelta(touched *bitset.Set, droppedPids []int64, leftEpoch, rightEpoch uint64)
	ApplyRemap(remap []int32)
	InvalidateAll(leftEpoch, rightEpoch uint64)
}

// AttachCache registers a cache for delta-aware invalidation. Call before
// serving traffic; the maintainer notifies it on every Sync. The cache is
// immediately synchronized to the maintainer's current epochs.
func (m *Maintainer) AttachCache(cs CacheSyncer) {
	m.cache = cs
	cs.ApplyDelta(nil, nil, m.leftEpoch, m.rightEpoch)
}

// Rebuild causes, reported in SyncStats.RebuildCause and as obs counter
// suffixes ("delta_rebuilds_" + cause).
const (
	// CauseLogOverflow: a change log was trimmed past the last-synced epoch
	// (undersized relstore.WithChangeLogCap for the sync cadence).
	CauseLogOverflow = "log_overflow"
	// CauseKeyRewrite: a base-row key-column update re-keyed a dense bitmap
	// slot, which the incremental patch cannot express.
	CauseKeyRewrite = "key_rewrite"
	// CauseCompactionLost: the base table compacted more times than its
	// bounded remap history retains since the last sync.
	CauseCompactionLost = "compaction_lost"
	// CauseEvaluator: the evaluator had no incremental plumbing to patch
	// (never seeded, or running in a fallback mode).
	CauseEvaluator = "evaluator"
)

// SyncStats reports what one Sync cost.
type SyncStats struct {
	// TouchedRows is the number of distinct base rows re-evaluated.
	TouchedRows int
	// ChangedPreds is the number of cached predicates whose tuple set moved.
	ChangedPreds int
	// RecheckedChanges is the number of raw change-log entries drained.
	RecheckedChanges int
	// Compactions is the number of base-table compaction remaps absorbed.
	Compactions int
	// DroppedPids is the number of distinct pids cleared because compaction
	// dropped their rows before this Sync could re-evaluate them.
	DroppedPids int
	// FullRebuild reports that the incremental path was unavailable and the
	// caches were rebuilt from scratch; RebuildCause says why (one of the
	// Cause* constants).
	FullRebuild  bool
	RebuildCause string
}

// NewMaintainer materializes the profile, builds the pair table, and
// snapshots the tables' epochs, so the first Sync only replays mutations
// committed after this call began.
func NewMaintainer(ev *combine.Evaluator, prefs []hypre.ScoredPred) (*Maintainer, error) {
	base := ev.BaseQuery(predicate.True{})
	db := ev.DB()
	left := db.Table(base.From)
	if left == nil {
		return nil, fmt.Errorf("delta: unknown base table %q", base.From)
	}
	m := &Maintainer{
		ev:       ev,
		db:       db,
		prefs:    prefs,
		left:     left,
		leftName: base.From,
	}
	if base.Join != nil {
		right := db.Table(base.Join.Table)
		if right == nil {
			return nil, fmt.Errorf("delta: unknown join table %q", base.Join.Table)
		}
		pos := right.ColumnIndex(base.Join.RightCol)
		if pos < 0 {
			return nil, fmt.Errorf("delta: %s has no column %q", base.Join.Table, base.Join.RightCol)
		}
		m.right = right
		m.leftJoinCol = base.Join.LeftCol
		m.rightJoinCol = base.Join.RightCol
		m.rightJoinPos = pos
	}
	m.keyCol = ev.KeyColumn(base.From)
	m.keyPos = left.ColumnIndex(m.keyCol)
	if m.keyPos < 0 {
		return nil, fmt.Errorf("delta: %s has no key column %q", base.From, m.keyCol)
	}
	// Capture epochs before building: mutations racing the build are
	// replayed by the first Sync, and re-evaluating a row is idempotent.
	m.leftEpoch = left.Epoch()
	if m.right != nil {
		m.rightEpoch = m.right.Epoch()
	}
	pt, err := combine.BuildPairTable(prefs, ev)
	if err != nil {
		return nil, err
	}
	m.pt = pt
	return m, nil
}

// Evaluator returns the maintained evaluator.
func (m *Maintainer) Evaluator() *combine.Evaluator { return m.ev }

// PairTable returns the maintained pair table (replaced, never mutated, by
// Sync).
func (m *Maintainer) PairTable() *combine.PairTable { return m.pt }

// TopK answers a top-k query over the maintained state: pure bitmap algebra
// and pair-table lookups, no store scans.
func (m *Maintainer) TopK(k int, v combine.Variant) (combine.TopKResult, error) {
	return combine.PEPS(m.prefs, m.pt, m.ev, k, v)
}

// TopKTraced is TopK with the PEPS DFS span and expansion counters
// recorded into tr (nil = disabled).
func (m *Maintainer) TopKTraced(k int, v combine.Variant, tr *obs.Trace) (combine.TopKResult, error) {
	return combine.PEPSTraced(m.prefs, m.pt, m.ev, k, v, tr)
}

// Sync drains the tables' change logs and repairs the evaluator's bitmap
// cache and the pair table incrementally; see the package comment for the
// pipeline. It is cheap when nothing changed (two epoch reads).
func (m *Maintainer) Sync() (SyncStats, error) { return m.SyncTraced(nil) }

// SyncTraced is Sync under observability: the whole pass runs inside a
// delta_sync span, the touched-row footprint lands in tr's engine counters,
// and — when AttachObs has run — the attached histograms and the rebuild
// counter observe the pass whether or not it is traced.
func (m *Maintainer) SyncTraced(tr *obs.Trace) (SyncStats, error) {
	var started time.Time
	if m.syncHist != nil {
		started = time.Now()
	}
	sp := tr.StartSpan(obs.StageDeltaSync)
	st, err := m.sync()
	tr.EndSpan(sp)
	tr.AddTouchedRows(int64(st.TouchedRows))
	if m.syncHist != nil {
		m.syncHist.RecordDuration(time.Since(started))
		m.touchedHist.Record(int64(st.TouchedRows))
		if st.FullRebuild {
			m.rebuilds.Add(1)
			m.reg.Counter("delta_rebuilds_" + st.RebuildCause).Add(1)
		}
	}
	return st, err
}

func (m *Maintainer) sync() (SyncStats, error) {
	// One atomic drain per table: epoch, changes, and compaction remaps
	// captured under a single lock acquisition, so the drained changes are
	// remapped through exactly the compactions the snapshot reports.
	ls := m.left.SnapshotSince(m.leftEpoch)
	rs := relstore.SyncSnapshot{LogOK: true, CompOK: true}
	if m.right != nil {
		rs = m.right.SnapshotSince(m.rightEpoch)
	}
	lEpoch, rEpoch := ls.Epoch, rs.Epoch
	if !ls.LogOK || !rs.LogOK {
		return m.rebuild(lEpoch, rEpoch, CauseLogOverflow)
	}
	// Join-table compactions (rs.Compactions) are deliberately ignored:
	// nothing the maintainer derives is keyed by join-table row ids — the
	// drained entries' Row fields were remapped in place, and Value lookups
	// below use the current ids. Only losing the BASE table's remap history
	// strands row-keyed state.
	if !ls.CompOK {
		return m.rebuild(lEpoch, rEpoch, CauseCompactionLost)
	}
	lch, rch := ls.Changes, rs.Changes
	if len(lch) == 0 && len(rch) == 0 && len(ls.Compactions) == 0 {
		m.leftEpoch, m.rightEpoch = lEpoch, rEpoch
		if m.cache != nil {
			// Nothing touched, but the stamp may have advanced (empty
			// commits); let the cache re-open for the new epochs.
			m.cache.ApplyDelta(nil, nil, lEpoch, rEpoch)
		}
		return SyncStats{}, nil
	}

	// The touched-row mask accumulates directly in compressed form: change
	// logs name rows in roughly ascending batches, so the mask stays a
	// handful of array/bitmap containers regardless of how wide the table
	// is.
	touched := bitset.New()
	var droppedPids []int64
	dropSeen := map[int64]struct{}{}
	for _, c := range lch {
		if c.Row < 0 {
			// Pre-image of a row compaction dropped: there is no row left to
			// re-evaluate, so its pid leaves the bitmaps by dictionary id
			// (DropPids below). Every key a dropped row ever held appears in
			// some -1 entry's pre-image — intermediate keys in the follow-up
			// update's Old, the final key in the delete's.
			pid := c.Old[m.keyPos].AsInt()
			if _, dup := dropSeen[pid]; !dup {
				dropSeen[pid] = struct{}{}
				droppedPids = append(droppedPids, pid)
			}
			continue
		}
		// A key-column update would re-key the row's dense bitmap slot;
		// the incremental patch cannot express that, so rebuild loudly.
		if c.Kind == relstore.ChangeUpdate &&
			indexKeyChanged(c.Old[m.keyPos], m.left.Value(c.Row, m.keyCol)) {
			return m.rebuild(lEpoch, rEpoch, CauseKeyRewrite)
		}
		touched.Add(c.Row)
	}
	for _, c := range rch {
		// Affected base rows are the join partners of the change's key —
		// the current key for inserts, the pre-image key for deletes, and
		// both for updates (old partners lost it, new partners gained it).
		// A compaction-dropped join row (Row = -1) has only its pre-image
		// key; the keys it held later all surface in its successor entries.
		switch c.Kind {
		case relstore.ChangeInsert:
			if c.Row < 0 {
				continue // dropped inserts are pruned from the log; be safe
			}
			if err := m.addPartners(touched, m.right.Value(c.Row, m.rightJoinCol)); err != nil {
				return SyncStats{}, err
			}
		case relstore.ChangeDelete:
			if err := m.addPartners(touched, c.Old[m.rightJoinPos]); err != nil {
				return SyncStats{}, err
			}
		case relstore.ChangeUpdate:
			if err := m.addPartners(touched, c.Old[m.rightJoinPos]); err != nil {
				return SyncStats{}, err
			}
			if c.Row < 0 {
				continue
			}
			if err := m.addPartners(touched, m.right.Value(c.Row, m.rightJoinCol)); err != nil {
				return SyncStats{}, err
			}
		}
	}

	// Compaction absorption, before the row-driven refresh: reindex the
	// evaluator's row plumbing through the composed remap, then clear the
	// dropped pids' bits — a pid re-inserted under a surviving row is
	// restored by the refresh, which evaluates current store state.
	var remap []int32
	if len(ls.Compactions) > 0 {
		remap = composeRemaps(ls.Compactions)
		if !m.ev.RemapRows(remap) {
			return m.rebuild(lEpoch, rEpoch, CauseEvaluator)
		}
	}
	var dChanged []string
	var dPrev map[string]*combine.Bitmap
	var dSpans []bitset.Span
	var dIDs []int32
	if len(droppedPids) > 0 {
		var ok bool
		dChanged, dPrev, dSpans, dIDs, ok = m.ev.DropPids(droppedPids)
		if !ok {
			return m.rebuild(lEpoch, rEpoch, CauseEvaluator)
		}
	}
	changed, prev, spans, ids, ok, err := m.ev.RefreshRowSetDelta(touched)
	if err != nil {
		return SyncStats{}, err
	}
	if !ok {
		return m.rebuild(lEpoch, rEpoch, CauseEvaluator)
	}
	// Merge the two patch passes into one pair-table recount. For a
	// predicate both passes changed, the true pre-sync bitmap is DropPids'
	// pre-image (it patched first).
	changed = mergeChanged(dChanged, changed)
	if len(dPrev) > 0 {
		if prev == nil {
			prev = dPrev
		} else {
			for p, b := range dPrev {
				prev[p] = b
			}
		}
	}
	spans = mergeSpans(dSpans, spans)
	ids = mergeIDs(dIDs, ids)
	if len(changed) > 0 {
		// Reprice changed pairs from the exact flipped ids when the flip set
		// is batch-sized — O(prefs × ids) work, independent of how large the
		// store has grown, which is what keeps per-sync cost flat under a
		// sustained stream. Past idRecountMax the per-id probing overtakes
		// container popcounts and the recount falls back to the partition
		// paths: span-restricted when the touched spans are a minority of
		// the dense-id domain, whole-set otherwise.
		totalSpans := bitset.SpanCount(m.ev.Dict().Size())
		var pt *combine.PairTable
		switch {
		case len(ids) > 0 && len(ids) <= idRecountMax:
			pt, err = m.pt.RefreshIDs(m.ev, prev, ids)
		case 2*len(spans) < totalSpans:
			pt, err = m.pt.RefreshSpans(m.ev, prev, spans)
		default:
			pt, err = m.pt.Refresh(m.ev, changed)
		}
		if err != nil {
			return SyncStats{}, err
		}
		m.pt = pt
	}
	m.leftEpoch, m.rightEpoch = lEpoch, rEpoch
	if m.cache != nil {
		if remap != nil {
			m.cache.ApplyRemap(remap)
		}
		m.cache.ApplyDelta(touched, droppedPids, lEpoch, rEpoch)
	}
	return SyncStats{
		TouchedRows:      touched.Len(),
		ChangedPreds:     len(changed),
		RecheckedChanges: len(lch) + len(rch),
		Compactions:      len(ls.Compactions),
		DroppedPids:      len(droppedPids),
	}, nil
}

// composeRemaps folds an ordered run of compaction remaps into one old→new
// map over the first record's domain. Compaction preserves relative row
// order, so rows inserted between two compactions land strictly after every
// composed survivor in the new id space — a plumbing rebuilt over just the
// composed domain stays a valid prefix that the row-driven refresh extends.
func composeRemaps(comps []relstore.Compaction) []int32 {
	remap := comps[0].Remap
	for _, c := range comps[1:] {
		next := make([]int32, len(remap))
		for i, mid := range remap {
			if mid < 0 || int(mid) >= len(c.Remap) {
				next[i] = -1
			} else {
				next[i] = c.Remap[mid]
			}
		}
		remap = next
	}
	return remap
}

// mergeChanged unions two changed-predicate lists, preserving first-seen
// order.
func mergeChanged(a, b []string) []string {
	if len(a) == 0 {
		return b
	}
	seen := make(map[string]struct{}, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, s := range a {
		if _, dup := seen[s]; !dup {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	for _, s := range b {
		if _, dup := seen[s]; !dup {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	return out
}

// mergeSpans unions two sorted span lists into one sorted, deduplicated
// list.
func mergeSpans(a, b []bitset.Span) []bitset.Span {
	if len(a) == 0 {
		return b
	}
	out := append(append(make([]bitset.Span, 0, len(a)+len(b)), a...), b...)
	slices.Sort(out)
	return slices.Compact(out)
}

// idRecountMax caps the flip set the per-id pair repricing accepts: each
// flipped id costs one membership probe per preference, so past a thousand
// or so ids the probing overtakes the container popcounts of the partition
// recounts. Sustained-stream syncs flip a batch's worth of ids — far under
// the cap; bulk rewrites fall through to the span/whole-set paths.
const idRecountMax = 1024

// mergeIDs unions two sorted flipped-dense-id lists into one sorted,
// deduplicated list.
func mergeIDs(a, b []int32) []int32 {
	if len(a) == 0 {
		return b
	}
	out := append(append(make([]int32, 0, len(a)+len(b)), a...), b...)
	slices.Sort(out)
	return slices.Compact(out)
}

// addPartners folds the base rows joining with key into touched.
func (m *Maintainer) addPartners(touched *bitset.Set, key predicate.Value) error {
	lids, err := m.db.LookupRowIDs(m.leftName, m.leftJoinCol, key)
	if err != nil {
		return err
	}
	for _, lid := range lids {
		touched.Add(lid)
	}
	return nil
}

// rebuild is the loud fallback: drop every derived cache and rebuild from
// the store's current state, reporting why the incremental path bailed.
func (m *Maintainer) rebuild(lEpoch, rEpoch uint64, cause string) (SyncStats, error) {
	m.ev.Invalidate()
	pt, err := combine.BuildPairTable(m.prefs, m.ev)
	if err != nil {
		return SyncStats{}, err
	}
	m.pt = pt
	m.leftEpoch, m.rightEpoch = lEpoch, rEpoch
	if m.cache != nil {
		m.cache.InvalidateAll(lEpoch, rEpoch)
	}
	return SyncStats{FullRebuild: true, RebuildCause: cause}, nil
}

// indexKeyChanged reports whether a value change re-keys an equality
// lookup, under the store's integral-float collapsing.
func indexKeyChanged(a, b predicate.Value) bool {
	eq, ok := predicate.Compare(a, b)
	return !ok || eq != 0
}
