package delta_test

import (
	"fmt"
	"testing"

	"hypre/internal/combine"
	"hypre/internal/delta"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
	"hypre/internal/workload"
)

// testProfile builds a small positive profile over the synthetic network:
// venue, year-range, and author predicates — the three predicate shapes the
// extraction rules produce (left-column equality, left-column range, and
// join-side equality), so every delta path gets exercised.
func testProfile(t *testing.T, net *workload.Network) []hypre.ScoredPred {
	t.Helper()
	specs := []struct {
		pred      string
		intensity float64
	}{
		{fmt.Sprintf("dblp.venue=%q", net.Venues[0]), 0.9},
		{fmt.Sprintf("dblp.venue=%q", net.Venues[1]), 0.8},
		{fmt.Sprintf("dblp.venue=%q", net.Venues[2]), 0.55},
		{"dblp.year>=2005", 0.7},
		{"dblp.year<=1999", 0.35},
		{"dblp_author.aid=0", 0.65},
		{"dblp_author.aid=1", 0.5},
		{"dblp_author.aid=3", 0.4},
		{"dblp.year=2010", 0.3},
	}
	prefs := make([]hypre.ScoredPred, 0, len(specs))
	for _, s := range specs {
		sp, err := hypre.NewScoredPred(s.pred, s.intensity)
		if err != nil {
			t.Fatalf("bad predicate %q: %v", s.pred, err)
		}
		prefs = append(prefs, sp)
	}
	return prefs
}

func smallNet(t *testing.T, seed int64) *workload.Network {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPapers = 900
	cfg.NumAuthors = 250
	cfg.NumVenues = 12
	net, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// rebuildSurvivors copies every table's live rows into a brand-new store —
// fresh row ids, fresh dictionaries, fresh zone maps, no tombstones — the
// "fresh store rebuilt from the surviving rows" oracle.
func rebuildSurvivors(t *testing.T, db *relstore.DB) *relstore.DB {
	t.Helper()
	out := relstore.NewDB()
	for _, name := range db.TableNames() {
		src := db.Table(name)
		schema := src.Schema()
		dst, err := out.CreateTable(name, schema.Columns...)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < src.Len(); id++ {
			if !src.Alive(id) {
				continue
			}
			row := make([]predicate.Value, len(schema.Columns))
			for i, c := range schema.Columns {
				row[i] = src.Value(id, c.Name)
			}
			if _, err := dst.Insert(row...); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, ix := range []struct{ table, col string }{
		{"dblp", "pid"}, {"dblp_author", "pid"}, {"dblp_author", "aid"},
	} {
		if err := out.Table(ix.table).BuildIndex(ix.col); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// freshTopKOn runs the full pipeline (materialize + pair table + PEPS) on
// an arbitrary store.
func freshTopKOn(t *testing.T, db *relstore.DB, prefs []hypre.ScoredPred, k int) combine.TopKResult {
	t.Helper()
	ev := combine.NewEvaluator(db, workload.BaseQuery, "dblp.pid")
	pt, err := combine.BuildPairTable(prefs, ev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := combine.PEPS(prefs, pt, ev, k, combine.Complete)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// freshTopK answers the same query by full rematerialization over the
// store's current state — the oracle every Sync is compared against.
func freshTopK(t *testing.T, net *workload.Network, prefs []hypre.ScoredPred, k int) combine.TopKResult {
	t.Helper()
	ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	pt, err := combine.BuildPairTable(prefs, ev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := combine.PEPS(prefs, pt, ev, k, combine.Complete)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertSameRanking(t *testing.T, tag string, got, want combine.TopKResult) {
	t.Helper()
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("%s: got %d tuples, want %d", tag, len(got.Tuples), len(want.Tuples))
	}
	for i := range got.Tuples {
		if got.Tuples[i].PID != want.Tuples[i].PID ||
			got.Tuples[i].Intensity != want.Tuples[i].Intensity {
			t.Fatalf("%s: rank %d: got (pid %d, %v), want (pid %d, %v)", tag, i,
				got.Tuples[i].PID, got.Tuples[i].Intensity,
				want.Tuples[i].PID, want.Tuples[i].Intensity)
		}
	}
}

// TestSyncMatchesRematerialize is the acceptance property: after every
// mutation batch, the incrementally maintained evaluator + pair table yield
// top-k rankings byte-identical to a full rematerialization over the
// mutated store.
func TestSyncMatchesRematerialize(t *testing.T) {
	const k = 60
	for seed := int64(1); seed <= 4; seed++ {
		net := smallNet(t, seed)
		prefs := testProfile(t, net)
		ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
		m, err := delta.NewMaintainer(ev, prefs)
		if err != nil {
			t.Fatal(err)
		}
		scfg := workload.DefaultStreamConfig()
		scfg.Seed = seed * 101
		stream, err := workload.NewUpdateStream(net, scfg)
		if err != nil {
			t.Fatal(err)
		}
		sawChange := false
		for batch := 0; batch < 6; batch++ {
			if _, err := stream.Apply(40); err != nil {
				t.Fatal(err)
			}
			st, err := m.Sync()
			if err != nil {
				t.Fatal(err)
			}
			if st.FullRebuild {
				t.Fatalf("seed %d batch %d: unexpected full rebuild", seed, batch)
			}
			if st.ChangedPreds > 0 {
				sawChange = true
			}
			inc, err := m.TopK(k, combine.Complete)
			if err != nil {
				t.Fatal(err)
			}
			tag := fmt.Sprintf("seed %d batch %d", seed, batch)
			assertSameRanking(t, tag, inc, freshTopK(t, net, prefs, k))

			// The strongest oracle: a brand-new store holding only the
			// surviving rows (no tombstones, compacted ids) must rank
			// byte-identically too.
			if batch == 2 || batch == 5 {
				rebuilt := rebuildSurvivors(t, net.DB)
				assertSameRanking(t, tag+" (rebuilt store)", inc,
					freshTopKOn(t, rebuilt, prefs, k))
			}

			// The approximate variant must agree with its own fresh oracle
			// too (same pair table, different seed filter).
			incA, err := m.TopK(k, combine.Approximate)
			if err != nil {
				t.Fatal(err)
			}
			ev2 := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
			pt2, err := combine.BuildPairTable(prefs, ev2)
			if err != nil {
				t.Fatal(err)
			}
			rematA, err := combine.PEPS(prefs, pt2, ev2, k, combine.Approximate)
			if err != nil {
				t.Fatal(err)
			}
			assertSameRanking(t, tag+" (approximate)", incA, rematA)
		}
		if !sawChange {
			t.Fatalf("seed %d: stream never changed a predicate bitmap; test is vacuous", seed)
		}
	}
}

// TestSyncNoChanges proves an idle Sync is a no-op (two epoch reads).
func TestSyncNoChanges(t *testing.T) {
	net := smallNet(t, 9)
	prefs := testProfile(t, net)
	ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	m, err := delta.NewMaintainer(ev, prefs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if st.TouchedRows != 0 || st.ChangedPreds != 0 || st.FullRebuild {
		t.Fatalf("idle sync did work: %+v", st)
	}
}

// TestKeyColumnUpdateForcesRebuild: rewriting the base table's key column
// cannot be patched incrementally and must fall back loudly.
func TestKeyColumnUpdateForcesRebuild(t *testing.T) {
	net := smallNet(t, 11)
	prefs := testProfile(t, net)
	ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	m, err := delta.NewMaintainer(ev, prefs)
	if err != nil {
		t.Fatal(err)
	}
	dblp := net.DB.Table("dblp")
	oldPid := dblp.Value(0, "pid").AsInt()
	if err := dblp.UpdateCol(0, "pid", predicate.Int(oldPid+1_000_000)); err != nil {
		t.Fatal(err)
	}
	st, err := m.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRebuild {
		t.Fatalf("key-column update did not force a rebuild: %+v", st)
	}
	inc, err := m.TopK(40, combine.Complete)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, "post-rebuild", inc, freshTopK(t, net, prefs, 40))
}
