package delta_test

import (
	"testing"

	"hypre/internal/combine"
	"hypre/internal/delta"
	"hypre/internal/workload"
)

// TestRefreshRowsCopyOnWrite proves the delta patch discipline on the
// container-backed bitmaps: bitmaps handed out before a Sync keep their
// exact pre-mutation tuple sets (the cache swaps in patched clones, it
// never mutates in place), while the cache itself converges to what a fresh
// evaluator over the mutated store materializes. This is the property that
// makes the copy-on-write container sharing of bitset.Clone sound.
func TestRefreshRowsCopyOnWrite(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		net := smallNet(t, seed)
		prefs := testProfile(t, net)
		ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
		m, err := delta.NewMaintainer(ev, prefs)
		if err != nil {
			t.Fatal(err)
		}

		// Snapshot the handed-out bitmaps and their tuple sets.
		type snap struct {
			bm   *combine.Bitmap
			pids combine.IntSet
		}
		snaps := make([]snap, len(prefs))
		for i, p := range prefs {
			bm, err := ev.PredBitmap(p)
			if err != nil {
				t.Fatal(err)
			}
			snaps[i] = snap{bm: bm, pids: bm.ToIntSet(ev.Dict())}
		}

		// Mutate the store and let the maintainer patch the caches.
		scfg := workload.DefaultStreamConfig()
		scfg.Seed = seed * 101
		stream, err := workload.NewUpdateStream(net, scfg)
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 3; batch++ {
			if _, err := stream.Apply(48); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Sync(); err != nil {
				t.Fatal(err)
			}
		}

		// Old bitmaps must be byte-identical to their snapshots: the patch
		// went through clones, never through the aliased containers.
		for i := range snaps {
			got := snaps[i].bm.ToIntSet(ev.Dict())
			if len(got) != len(snaps[i].pids) {
				t.Fatalf("seed %d: pred %d old bitmap mutated: %d tuples, had %d",
					seed, i, len(got), len(snaps[i].pids))
			}
			for j := range got {
				if got[j] != snaps[i].pids[j] {
					t.Fatalf("seed %d: pred %d old bitmap tuple %d = %d, had %d",
						seed, i, j, got[j], snaps[i].pids[j])
				}
			}
		}

		// The patched cache must agree with a fresh evaluator on the
		// mutated store.
		ev2 := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
		if err := ev2.Materialize(prefs); err != nil {
			t.Fatal(err)
		}
		for i, p := range prefs {
			cur, err := ev.PredSet(p)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ev2.PredSet(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(cur) != len(want) {
				t.Fatalf("seed %d: pred %d patched set has %d tuples, fresh store says %d",
					seed, i, len(cur), len(want))
			}
			for j := range cur {
				if cur[j] != want[j] {
					t.Fatalf("seed %d: pred %d patched tuple %d = %d, want %d",
						seed, i, j, cur[j], want[j])
				}
			}
		}
	}
}
