package delta_test

import (
	"math/rand"
	"sync"
	"testing"

	"hypre/internal/combine"
	"hypre/internal/delta"
	"hypre/internal/predicate"
	"hypre/internal/workload"
)

// TestShardedEvalVsMutationRace races the partition-sharded evaluation
// paths against online store mutations and incremental Sync, for the race
// detector: a mutator thread commits update/delete/insert batches and (on
// its own maintainer, queries and Sync being single-threaded by contract)
// drains them incrementally, while reader threads concurrently run the
// sharded pipeline end to end — partitioned scan kernels under the store's
// shared state locks, the (span × anchor) pair-count sweep, and span-
// sharded PEPS — each on a private evaluator so every store read races a
// commit. Results are checked for sanity only; byte-equivalence against
// the serial path is proven by the quiescent suites.
func TestShardedEvalVsMutationRace(t *testing.T) {
	net := smallNet(t, 11)
	prefs := testProfile(t, net)
	ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
	ev.Workers = 4
	m, err := delta.NewMaintainer(ev, prefs)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // mutator + incremental maintainer
		defer wg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(5))
		dblp := net.DB.Table("dblp")
		links := net.DB.Table("dblp_author")
		for round := 0; round < 30; round++ {
			for op := 0; op < 8; op++ {
				switch rng.Intn(3) {
				case 0:
					_ = dblp.UpdateCol(rng.Intn(dblp.Len()), "year",
						predicate.Int(int64(1995+rng.Intn(20))))
				case 1:
					dblp.Delete(rng.Intn(dblp.Len()))
				default:
					if _, err := links.Insert(
						predicate.Int(int64(rng.Intn(dblp.Len()))),
						predicate.Int(int64(rng.Intn(10))),
					); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if _, err := m.Sync(); err != nil {
				t.Error(err)
				return
			}
			if _, err := m.TopK(25, combine.Complete); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
				rev.Workers = 2 + r
				pt, err := combine.BuildPairTable(prefs, rev)
				if err != nil {
					t.Error(err)
					return
				}
				res, err := combine.PEPSSharded(prefs, pt, rev, 25, combine.Complete)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Tuples) > 25 {
					t.Errorf("sharded PEPS returned %d tuples for k=25", len(res.Tuples))
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
