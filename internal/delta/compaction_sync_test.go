package delta_test

import (
	"fmt"
	"testing"

	"hypre/internal/combine"
	"hypre/internal/delta"
	"hypre/internal/relstore"
	"hypre/internal/workload"
)

// TestSyncThroughCompactionNoRebuilds is the write-path acceptance property
// for compaction absorption: with threshold-triggered compaction live on
// the store and a delete-heavy stream forcing it to fire repeatedly, every
// Sync must stay on the incremental path (no full rebuilds — the remap +
// DropPids absorption handles the row-id churn) and keep the top-k ranking
// byte-identical to a full rematerialization over the compacted store.
func TestSyncThroughCompactionNoRebuilds(t *testing.T) {
	const k = 60
	for seed := int64(11); seed <= 13; seed++ {
		cfg := workload.DefaultConfig()
		cfg.Seed = seed
		cfg.NumPapers = 1500 // past one block, so compaction is eligible
		cfg.NumAuthors = 250
		cfg.NumVenues = 12
		var sc relstore.StoreCounters
		net, err := workload.GenerateWith(cfg,
			relstore.WithCompaction(0.04),
			relstore.WithChangeLogCap(1<<15),
			relstore.WithStoreCounters(&sc))
		if err != nil {
			t.Fatal(err)
		}
		prefs := testProfile(t, net)
		ev := combine.NewEvaluator(net.DB, workload.BaseQuery, "dblp.pid")
		m, err := delta.NewMaintainer(ev, prefs)
		if err != nil {
			t.Fatal(err)
		}
		scfg := workload.DefaultStreamConfig()
		scfg.Seed = seed * 131
		scfg.InsertFrac, scfg.DeleteFrac, scfg.UpdateFrac, scfg.LinkFrac = 0.20, 0.45, 0.25, 0.10
		stream, err := workload.NewUpdateStream(net, scfg)
		if err != nil {
			t.Fatal(err)
		}
		absorbed := 0
		for batch := 0; batch < 8; batch++ {
			if _, err := stream.Apply(60); err != nil {
				t.Fatal(err)
			}
			st, err := m.Sync()
			if err != nil {
				t.Fatal(err)
			}
			if st.FullRebuild {
				t.Fatalf("seed %d batch %d: full rebuild (%s) despite compaction absorption",
					seed, batch, st.RebuildCause)
			}
			absorbed += st.Compactions
			inc, err := m.TopK(k, combine.Complete)
			if err != nil {
				t.Fatal(err)
			}
			tag := fmt.Sprintf("seed %d batch %d (%d compactions absorbed)", seed, batch, st.Compactions)
			assertSameRanking(t, tag, inc, freshTopK(t, net, prefs, k))
		}
		if absorbed == 0 {
			t.Fatalf("seed %d: no base-table compaction absorbed (%d store-wide); test is vacuous",
				seed, sc.Compactions.Load())
		}
	}
}
