// Package core is the stable entry point of the HYPRE library: it wires
// the citation-network store (or any relational dataset), the HYPRE
// preference graph, and the Chapter 5 combination algorithms into one
// System that applications use to personalize queries.
//
// Typical use:
//
//	sys, _ := core.NewSystem(workload.DefaultConfig())
//	sys.AddQuantitative(42, `dblp.venue="VLDB"`, 0.8)
//	sys.AddQualitative(42, `dblp.venue="VLDB"`, `dblp.venue="ICDE"`, 0.3)
//	top, _ := sys.TopK(42, 10, core.Complete)
package core

import (
	"fmt"

	"hypre/internal/combine"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
	"hypre/internal/topk"
	"hypre/internal/workload"
)

// Re-exported types so callers only import core.
type (
	// Graph is the HYPRE preference graph.
	Graph = hypre.Graph
	// ScoredPred is a preference usable in combinations.
	ScoredPred = hypre.ScoredPred
	// ScoredTuple is one ranked result.
	ScoredTuple = combine.ScoredTuple
	// Variant selects the PEPS flavour.
	Variant = combine.Variant
	// QualResult reports how a qualitative insert resolved.
	QualResult = hypre.QualResult
)

// PEPS variants.
const (
	Complete    = combine.Complete
	Approximate = combine.Approximate
)

// System bundles a dataset, the preference graph, and per-user combination
// state.
type System struct {
	DB    *relstore.DB
	Graph *hypre.Graph
	Net   *workload.Network // nil when built over a custom DB

	base    func(predicate.Predicate) relstore.Query
	keyAttr string

	ev     *combine.Evaluator
	tables map[int64]*combine.PairTable
}

// NewSystem generates a synthetic DBLP citation network with the given
// configuration and an empty preference graph on top of it.
func NewSystem(cfg workload.Config) (*System, error) {
	net, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	s := newSystem(net.DB, workload.BaseQuery, "dblp.pid")
	s.Net = net
	return s, nil
}

// NewSystemWithWorkload additionally extracts preferences from the network
// (the five §6.2 rules) and builds the full multi-user HYPRE graph.
func NewSystemWithWorkload(cfg workload.Config) (*System, *workload.Prefs, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, nil, err
	}
	prefs := workload.Extract(s.Net, workload.DefaultExtractConfig())
	if _, err := s.Graph.Build(prefs.Quant, prefs.Qual); err != nil {
		return nil, nil, err
	}
	return s, prefs, nil
}

// NewSystemOver builds a System over a caller-provided relational store:
// base maps a WHERE predicate to the query to run, keyAttr is the tuple
// identity attribute (e.g. "dealership.id").
func NewSystemOver(db *relstore.DB, base func(predicate.Predicate) relstore.Query, keyAttr string) *System {
	return newSystem(db, base, keyAttr)
}

func newSystem(db *relstore.DB, base func(predicate.Predicate) relstore.Query, keyAttr string) *System {
	return &System{
		DB:      db,
		Graph:   hypre.NewGraph(hypre.DefaultAvg),
		base:    base,
		keyAttr: keyAttr,
		ev:      combine.NewEvaluator(db, base, keyAttr),
		tables:  make(map[int64]*combine.PairTable),
	}
}

// AddQuantitative records "I like <predicate> with intensity v" for a user.
func (s *System) AddQuantitative(uid int64, pred string, intensity float64) error {
	if _, err := s.Graph.AddQuantitative(uid, pred, intensity); err != nil {
		return err
	}
	delete(s.tables, uid)
	return nil
}

// AddQualitative records "<left> is preferred over <right> with strength v"
// for a user.
func (s *System) AddQualitative(uid int64, left, right string, strength float64) (QualResult, error) {
	r, err := s.Graph.AddQualitative(uid, left, right, strength)
	if err == nil {
		delete(s.tables, uid)
	}
	return r, err
}

// Profile returns the user's usable preferences, descending by intensity.
func (s *System) Profile(uid int64) []ScoredPred { return s.Graph.PositiveProfile(uid) }

// pairTable returns the user's pre-computed combinations-of-two table,
// building it on first use and after profile changes.
func (s *System) pairTable(uid int64) (*combine.PairTable, []ScoredPred, error) {
	prefs := s.Profile(uid)
	if pt, ok := s.tables[uid]; ok && len(pt.Prefs) == len(prefs) {
		return pt, prefs, nil
	}
	pt, err := combine.BuildPairTable(prefs, s.ev)
	if err != nil {
		return nil, nil, err
	}
	s.tables[uid] = pt
	return pt, prefs, nil
}

// TopK runs PEPS for the user and returns the k most preferred tuples in
// descending combined-intensity order.
func (s *System) TopK(uid int64, k int, v Variant) ([]ScoredTuple, error) {
	pt, prefs, err := s.pairTable(uid)
	if err != nil {
		return nil, err
	}
	res, err := combine.PEPS(prefs, pt, s.ev, k, v)
	if err != nil {
		return nil, err
	}
	return res.Tuples, nil
}

// TopKFor runs PEPS over an arbitrary preference list — the entry point
// for contextual resolution (ctxpref.Graph.Resolve output) or any other
// externally assembled profile. Non-positive preferences are dropped, as in
// query enhancement.
func (s *System) TopKFor(prefs []ScoredPred, k int, v Variant) ([]ScoredTuple, error) {
	pos := make([]ScoredPred, 0, len(prefs))
	for _, p := range prefs {
		if p.Intensity > 0 {
			pos = append(pos, p)
		}
	}
	pt, err := combine.BuildPairTable(pos, s.ev)
	if err != nil {
		return nil, err
	}
	res, err := combine.PEPS(pos, pt, s.ev, k, v)
	if err != nil {
		return nil, err
	}
	return res.Tuples, nil
}

// GroupTopK merges several users' profiles under the given group strategy
// (§8.2's group recommendation extension) and runs PEPS over the merged
// positive preferences.
func (s *System) GroupTopK(uids []int64, strategy hypre.GroupStrategy, k int, v Variant) ([]ScoredTuple, error) {
	merged, err := s.Graph.GroupProfile(uids, strategy)
	if err != nil {
		return nil, err
	}
	pos := merged[:0]
	for _, p := range merged {
		if p.Intensity > 0 {
			pos = append(pos, p)
		}
	}
	pt, err := combine.BuildPairTable(pos, s.ev)
	if err != nil {
		return nil, err
	}
	res, err := combine.PEPS(pos, pt, s.ev, k, v)
	if err != nil {
		return nil, err
	}
	return res.Tuples, nil
}

// TopKBaseline runs the Fagin TA baseline. TA only understands scores, so
// it sees just the preferences the user supplied quantitatively — the
// qualitative knowledge HYPRE converts is invisible to it (§7.6.3).
func (s *System) TopKBaseline(uid int64, k int) ([]ScoredTuple, error) {
	lists, err := topk.BuildLists(s.ev, s.Graph.QuantOnlyProfile(uid))
	if err != nil {
		return nil, err
	}
	return lists.TA(k), nil
}

// EnhancedQuery renders the mixed-clause rewritten WHERE fragment of §4.6
// for the user's profile (capped at maxPrefs preferences; 0 = all).
func (s *System) EnhancedQuery(uid int64, maxPrefs int) (string, float64) {
	prefs := s.Profile(uid)
	if maxPrefs > 0 && len(prefs) > maxPrefs {
		prefs = prefs[:maxPrefs]
	}
	e := hypre.EnhanceMixed(prefs)
	return e.Text(), e.Intensity
}

// TupleByKey fetches one row of the base table by the key attribute, for
// display.
func (s *System) TupleByKey(table string, keyCol string, key int64) (predicate.Row, bool) {
	tbl := s.DB.Table(table)
	if tbl == nil {
		return nil, false
	}
	rows, err := s.DB.Select(relstore.Query{
		From:  table,
		Where: &predicate.Cmp{Attr: keyCol, Op: predicate.OpEq, Val: predicate.Int(key)},
		Limit: 1,
	})
	if err != nil || len(rows) == 0 {
		return nil, false
	}
	return rows[0], true
}

// DescribeTuple formats selected attributes of a row.
func DescribeTuple(r predicate.Row, attrs ...string) string {
	out := ""
	for i, a := range attrs {
		if i > 0 {
			out += " "
		}
		v, ok := r.Get(a)
		if !ok {
			out += a + "=?"
			continue
		}
		out += fmt.Sprintf("%s=%s", a, v.AsString())
	}
	return out
}
