package core

import (
	"strings"
	"testing"

	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
	"hypre/internal/workload"
)

func smallCfg() workload.Config {
	cfg := workload.DefaultConfig()
	cfg.NumPapers = 400
	cfg.NumAuthors = 150
	cfg.NumVenues = 12
	return cfg
}

func TestNewSystemAndManualPrefs(t *testing.T) {
	sys, err := NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddQuantitative(1, `dblp.venue="VLDB"`, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddQuantitative(1, `dblp.venue="SIGMOD"`, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddQualitative(1, `dblp.venue="VLDB"`, `dblp.venue="ICDE"`, 0.4); err != nil {
		t.Fatal(err)
	}
	prof := sys.Profile(1)
	if len(prof) != 3 {
		t.Fatalf("profile = %d", len(prof))
	}
	top, err := sys.TopK(1, 5, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Fatal("no results")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Intensity > top[i-1].Intensity {
			t.Error("not descending")
		}
	}
}

func TestSystemPairTableInvalidation(t *testing.T) {
	sys, err := NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	sys.AddQuantitative(1, `dblp.venue="VLDB"`, 0.8)
	if _, err := sys.TopK(1, 3, Complete); err != nil {
		t.Fatal(err)
	}
	// Adding a preference must invalidate the cached pair table.
	sys.AddQuantitative(1, `dblp.venue="SIGMOD"`, 0.6)
	top, err := sys.TopK(1, 3, Complete)
	if err != nil {
		t.Fatal(err)
	}
	foundSIGMOD := false
	for _, tu := range top {
		if sys.Net.VenueOf(tu.PID) == "SIGMOD" {
			foundSIGMOD = true
		}
	}
	_ = foundSIGMOD // SIGMOD tuples may or may not crack top-3; the real check:
	prof := sys.Profile(1)
	if len(prof) != 2 {
		t.Fatalf("profile = %d after second insert", len(prof))
	}
}

func TestSystemWithWorkload(t *testing.T) {
	sys, prefs, err := NewSystemWithWorkload(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(prefs.Users) == 0 {
		t.Fatal("no users")
	}
	uid := prefs.Users[0]
	top, err := sys.TopK(uid, 10, Approximate)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Fatal("no personalized results")
	}
	base, err := sys.TopKBaseline(uid, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("no baseline results")
	}
}

func TestEnhancedQuery(t *testing.T) {
	sys, err := NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	sys.AddQuantitative(2, `dblp.venue="INFOCOM"`, 0.23)
	sys.AddQuantitative(2, `dblp.venue="PODS"`, 0.14)
	sys.AddQuantitative(2, `dblp_author.aid=128`, 0.19)
	text, intensity := sys.EnhancedQuery(2, 0)
	if !strings.Contains(text, "OR") || !strings.Contains(text, "AND") {
		t.Errorf("enhanced = %q", text)
	}
	if intensity <= 0 {
		t.Errorf("intensity = %v", intensity)
	}
	capped, _ := sys.EnhancedQuery(2, 1)
	if strings.Contains(capped, "AND") {
		t.Errorf("capped enhanced = %q", capped)
	}
}

func TestSystemOverCustomDB(t *testing.T) {
	// The dealership scenario of §2.5 over a custom store.
	db := relstore.NewDB()
	tbl, _ := db.CreateTable("dealership",
		relstore.Column{Name: "id", Kind: predicate.KindInt},
		relstore.Column{Name: "price", Kind: predicate.KindInt},
		relstore.Column{Name: "mileage", Kind: predicate.KindInt},
		relstore.Column{Name: "make", Kind: predicate.KindString},
	)
	rows := []struct {
		id, price, mileage int64
		make_              string
	}{
		{1, 7000, 43489, "Honda"},
		{2, 16000, 35334, "VW"},
		{3, 20000, 49119, "Honda"},
	}
	for _, r := range rows {
		tbl.Insert(predicate.Int(r.id), predicate.Int(r.price),
			predicate.Int(r.mileage), predicate.String(r.make_))
	}
	base := func(w predicate.Predicate) relstore.Query {
		return relstore.Query{From: "dealership", Where: w}
	}
	sys := NewSystemOver(db, base, "dealership.id")
	sys.AddQuantitative(7, `price BETWEEN 7000 AND 16000`, 0.8)
	sys.AddQuantitative(7, `mileage BETWEEN 20000 AND 50000`, 0.5)
	sys.AddQuantitative(7, `make IN ("BMW","Honda")`, 0.2)
	top, err := sys.TopK(7, 3, Complete)
	if err != nil {
		t.Fatal(err)
	}
	// Table 9's expected ranking: t1 (0.92) > t2 (0.9) > t3 (0.6) — the
	// ordering Preference SQL gets wrong (§2.5).
	if len(top) != 3 || top[0].PID != 1 || top[1].PID != 2 || top[2].PID != 3 {
		t.Fatalf("ranking = %+v", top)
	}
	if top[0].Intensity < 0.919 || top[0].Intensity > 0.921 {
		t.Errorf("t1 intensity = %v, want 0.92", top[0].Intensity)
	}
}

func TestGroupTopK(t *testing.T) {
	sys, err := NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	sys.AddQuantitative(1, `dblp.venue="VLDB"`, 0.9)
	sys.AddQuantitative(2, `dblp.venue="VLDB"`, 0.3)
	sys.AddQuantitative(2, `dblp.venue="SIGMOD"`, 0.8)
	top, err := sys.GroupTopK([]int64{1, 2}, hypre.GroupAverage, 5, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Fatal("no group results")
	}
	// Average strategy: VLDB = 0.6 beats SIGMOD = 0.8 held by one... no:
	// GroupAverage averages over holders, so SIGMOD keeps 0.8 and should
	// lead. Verify the top tuple is a SIGMOD paper.
	if got := sys.Net.VenueOf(top[0].PID); got != "SIGMOD" {
		t.Errorf("group top venue = %q, want SIGMOD", got)
	}
	// Least-misery flips it: VLDB min = 0.3, SIGMOD min = 0.8 — still
	// SIGMOD; most-pleasure keeps VLDB at 0.9 on top.
	topMP, err := sys.GroupTopK([]int64{1, 2}, hypre.GroupMostPleasure, 5, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Net.VenueOf(topMP[0].PID); got != "VLDB" {
		t.Errorf("most-pleasure top venue = %q, want VLDB", got)
	}
	if _, err := sys.GroupTopK(nil, hypre.GroupAverage, 5, Complete); err == nil {
		t.Error("empty group accepted")
	}
}

func TestTupleByKeyAndDescribe(t *testing.T) {
	sys, err := NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	row, ok := sys.TupleByKey("dblp", "pid", 1)
	if !ok {
		t.Fatal("paper 1 missing")
	}
	desc := DescribeTuple(row, "pid", "venue", "nonexistent")
	if !strings.Contains(desc, "pid=1") || !strings.Contains(desc, "nonexistent=?") {
		t.Errorf("desc = %q", desc)
	}
	if _, ok := sys.TupleByKey("nope", "pid", 1); ok {
		t.Error("unknown table resolved")
	}
	if _, ok := sys.TupleByKey("dblp", "pid", 10_000_000); ok {
		t.Error("unknown key resolved")
	}
}
