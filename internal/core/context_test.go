package core

import (
	"testing"

	"hypre/internal/ctxpref"
	"hypre/internal/hypre"
)

// TestContextualTopK wires ctxpref resolution into the System: the active
// context decides which preferences feed PEPS.
func TestContextualTopK(t *testing.T) {
	sys, err := NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}

	mood := ctxpref.NewHierarchy("mood")
	if err := mood.Add("focused", ctxpref.All); err != nil {
		t.Fatal(err)
	}
	if err := mood.Add("browsing", ctxpref.All); err != nil {
		t.Fatal(err)
	}
	model := ctxpref.NewModel(mood)

	mk := func(pred string, in float64) hypre.ScoredPred {
		p, err := hypre.NewScoredPred(pred, in)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cg, err := ctxpref.Build(model, []ctxpref.Entry{
		{State: ctxpref.State{"focused"}, Pref: mk(`dblp.venue="VLDB"`, 0.9)},
		{State: ctxpref.State{"browsing"}, Pref: mk(`dblp.venue="KDD"`, 0.8)},
		{State: ctxpref.State{ctxpref.All}, Pref: mk(`dblp.year>=2005`, 0.3)},
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		state     ctxpref.State
		wantVenue string
	}{
		{ctxpref.State{"focused"}, "VLDB"},
		{ctxpref.State{"browsing"}, "KDD"},
	} {
		prefs, err := cg.Resolve(tc.state)
		if err != nil {
			t.Fatal(err)
		}
		top, err := sys.TopKFor(prefs, 5, Complete)
		if err != nil {
			t.Fatal(err)
		}
		if len(top) == 0 {
			t.Fatalf("context %v: no results", tc.state)
		}
		if got := sys.Net.VenueOf(top[0].PID); got != tc.wantVenue {
			t.Errorf("context %v: top venue %q, want %q", tc.state, got, tc.wantVenue)
		}
	}
}

func TestTopKForDropsNonPositive(t *testing.T) {
	sys, err := NewSystem(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	neg, err := hypre.NewScoredPred(`dblp.venue="VLDB"`, -0.5)
	if err != nil {
		t.Fatal(err)
	}
	top, err := sys.TopKFor([]hypre.ScoredPred{neg}, 5, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 0 {
		t.Errorf("negative-only profile returned %d tuples", len(top))
	}
}
