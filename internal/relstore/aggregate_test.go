package relstore

import (
	"testing"

	"hypre/internal/predicate"
)

func TestSelectOrdered(t *testing.T) {
	db := movieDB(t)
	rows, err := db.SelectOrdered(Query{From: "movies"}, OrderBy{Attr: "year"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	prev := int64(0)
	for _, r := range rows {
		v, _ := r.Get("year")
		if v.AsInt() < prev {
			t.Fatalf("ascending order broken at %d", v.AsInt())
		}
		prev = v.AsInt()
	}
	desc, _ := db.SelectOrdered(Query{From: "movies"}, OrderBy{Attr: "year", Desc: true})
	if v, _ := desc[0].Get("year"); v.AsInt() != 2013 {
		t.Errorf("desc first = %v", v)
	}
}

func TestSelectOrderedLimitAfterSort(t *testing.T) {
	db := movieDB(t)
	rows, err := db.SelectOrdered(Query{From: "movies", Limit: 2}, OrderBy{Attr: "year", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("limit = %d rows", len(rows))
	}
	// LIMIT must apply after sorting: the two newest movies, not the first
	// two scanned.
	v0, _ := rows[0].Get("year")
	v1, _ := rows[1].Get("year")
	if v0.AsInt() != 2013 || v1.AsInt() != 2011 {
		t.Errorf("top-2 years = %d, %d", v0.AsInt(), v1.AsInt())
	}
}

func TestSelectOrderedNullsLast(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t",
		Column{"id", predicate.KindInt}, Column{"v", predicate.KindInt})
	tbl.Insert(i(1), predicate.Null())
	tbl.Insert(i(2), i(10))
	tbl.Insert(i(3), predicate.Null())
	tbl.Insert(i(4), i(5))
	for _, desc := range []bool{false, true} {
		rows, err := db.SelectOrdered(Query{From: "t"}, OrderBy{Attr: "v", Desc: desc})
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k < 4; k++ {
			if v, _ := rows[k].Get("v"); !v.IsNull() {
				t.Errorf("desc=%v: NULLs not last: %v", desc, v)
			}
		}
	}
}

func TestCountGroupBy(t *testing.T) {
	db := movieDB(t)
	groups, err := db.CountGroupBy(Query{From: "movies"}, "genre")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("groups = %d", len(groups))
	}
	// comedy and drama tie at 2, ordered by key; then horror/thriller at 1.
	if groups[0].Count != 2 || groups[1].Count != 2 {
		t.Errorf("head counts = %d, %d", groups[0].Count, groups[1].Count)
	}
	if groups[0].Key.AsString() != "comedy" || groups[1].Key.AsString() != "drama" {
		t.Errorf("tie order = %v, %v", groups[0].Key, groups[1].Key)
	}
}

func TestCountGroupByWithWhere(t *testing.T) {
	db := movieDB(t)
	groups, err := db.CountGroupBy(
		Query{From: "movies", Where: predicate.MustParse("year<1990")}, "director")
	if err != nil {
		t.Fatal(err)
	}
	// Curtiz has 2 pre-1990 movies, Hitchcock 1.
	if groups[0].Key.AsString() != "M. Curtiz" || groups[0].Count != 2 {
		t.Errorf("head = %+v", groups[0])
	}
}

func TestCountDistinctGroupBy(t *testing.T) {
	db := dblpDB(t)
	q := Query{
		From: "dblp",
		Join: &JoinSpec{Table: "dblp_author", LeftCol: "pid", RightCol: "pid"},
	}
	groups, err := db.CountDistinctGroupBy(q, "dblp.venue", "dblp.pid")
	if err != nil {
		t.Fatal(err)
	}
	byVenue := map[string]int{}
	for _, g := range groups {
		byVenue[g.Key.AsString()] = g.Count
	}
	// t9 has 2 authors: plain row counting would report INFOCOM=3; the
	// distinct version must say 2 papers.
	if byVenue["INFOCOM"] != 2 {
		t.Errorf("INFOCOM distinct papers = %d, want 2", byVenue["INFOCOM"])
	}
	if byVenue["PVLDB"] != 3 {
		t.Errorf("PVLDB = %d", byVenue["PVLDB"])
	}
}

func TestMinMax(t *testing.T) {
	db := movieDB(t)
	min, max, ok, err := db.MinMax(Query{From: "movies"}, "year")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if min.AsInt() != 1942 || max.AsInt() != 2013 {
		t.Errorf("range = %v..%v", min, max)
	}
	_, _, ok, err = db.MinMax(Query{From: "movies", Where: predicate.MustParse("year>3000")}, "year")
	if err != nil || ok {
		t.Errorf("empty result should report ok=false (ok=%v)", ok)
	}
}
