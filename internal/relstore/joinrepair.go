package relstore

import "hypre/internal/predicate"

// Incremental repair of the cached join plumbing. Instead of rebuilding the
// existence vector and right→left CSR O(n) every time an epoch moves, the
// repair drains both tables' change logs since the entry was built and
// recomputes only what those changes can have perturbed, against the
// *current* state (which makes each step idempotent and multi-change rows
// safe — intermediate keys are all visible as pre-images):
//
//   - every changed right row gets its partner list recomputed (overlay);
//   - every changed left row gets its existence bit recomputed;
//   - every left row whose join key matches a touched key (a changed right
//     row's pre-image or current key, via the left index) gets its
//     existence bit recomputed — right-side churn can flip it;
//   - every right row whose key matches a changed left row's pre-image or
//     current key gets its partner list recomputed — left-side churn can
//     grow or shrink it.
//
// Deletes need no CSR surgery: consumers filter tombstones downstream of
// the stitch and never consult a dead rid's list, so stale dead lids in
// untouched lists are harmless (fresh rebuilds still exclude them).
//
// The repair refuses — returning nil, which sends joinEntry to the loud
// O(n) rebuild — when a log was trimmed past the entry's build epoch, when
// either table compacted (row ids moved), when the change set or its key
// fan-out is a table-sized fraction, or when the accumulated overlay would
// exceed its bound (the rebuild resets it).

// joinRepairMaxChanges caps how many log entries a repair will walk; past
// this the O(n) rebuild is competitive anyway.
const joinRepairMaxChanges = 1 << 12

// repairJoinEntry patches e into a fresh entry at (lgen, rgen), or returns
// nil when a full rebuild is required. Callers hold both tables' state
// locks at least shared.
func (t *Table) repairJoinEntry(e *existsEntry, right *Table, leftPos, rightPos int, lgen, rgen uint64) *existsEntry {
	if lc, ok := t.compactionsSinceLocked(e.lgen); !ok || len(lc) > 0 {
		return nil
	}
	if rc, ok := right.compactionsSinceLocked(e.rgen); !ok || len(rc) > 0 {
		return nil
	}
	lch, ok := t.changedSinceLocked(e.lgen)
	if !ok {
		return nil
	}
	rch, ok := right.changedSinceLocked(e.rgen)
	if !ok {
		return nil
	}
	if len(lch)+len(rch) > joinRepairMaxChanges {
		return nil
	}

	lidx := t.ensureIndex(leftPos)
	ridx := right.ensureIndex(rightPos)
	lcol := t.cols[leftPos]
	rcol := right.cols[rightPos]

	// Touched sets: right rows needing a partner-list recompute, left rows
	// needing an existence recompute.
	ridSet := make(map[int]struct{}, len(rch))
	lidSet := make(map[int]struct{}, len(lch))
	addLeftOfKey := func(k predicate.Value) {
		for _, lid := range lidx[k] {
			lidSet[lid] = struct{}{}
		}
	}
	addRightOfKey := func(k predicate.Value) {
		for _, rid := range ridx[k] {
			ridSet[rid] = struct{}{}
		}
	}
	for _, ch := range rch {
		if ch.Row >= 0 {
			ridSet[ch.Row] = struct{}{}
		}
		if ch.Old != nil {
			addLeftOfKey(indexKey(ch.Old[rightPos]))
		}
		if ch.Row >= 0 && ch.Row < right.n && !right.isDead(ch.Row) {
			addLeftOfKey(indexKey(rcol.value(ch.Row)))
		}
	}
	for _, ch := range lch {
		if ch.Row >= 0 {
			lidSet[ch.Row] = struct{}{}
		}
		if ch.Old != nil {
			addRightOfKey(indexKey(ch.Old[leftPos]))
		}
		if ch.Row >= 0 && ch.Row < t.n && !t.isDead(ch.Row) {
			addRightOfKey(indexKey(lcol.value(ch.Row)))
		}
	}
	if len(ridSet)+len(lidSet) > joinRepairMaxChanges {
		return nil // hot-key fan-out: the touched set became table-sized
	}
	if len(e.patched)+len(ridSet) > patchedCap(right.n) {
		return nil // overlay would dominate the CSR; rebuild resets it
	}

	patched := make(map[int32][]int32, len(e.patched)+len(ridSet))
	for k, v := range e.patched {
		patched[k] = v
	}
	for rid := range ridSet {
		if rid >= right.n || right.isDead(rid) {
			patched[int32(rid)] = nil
			continue
		}
		var ps []int32
		for _, lid := range lidx[indexKey(rcol.value(rid))] {
			if !t.isDead(lid) {
				ps = append(ps, int32(lid))
			}
		}
		patched[int32(rid)] = ps
	}
	sel := e.sel.Clone()
	for lid := range lidSet {
		if lid >= t.n || t.isDead(lid) {
			sel.Remove(lid)
			continue
		}
		alive := false
		for _, rid := range ridx[indexKey(lcol.value(lid))] {
			if !right.isDead(rid) {
				alive = true
				break
			}
		}
		if alive {
			sel.Add(lid)
		} else {
			sel.Remove(lid)
		}
	}
	return &existsEntry{sel: sel, off: e.off, lids: e.lids, patched: patched,
		lgen: lgen, rgen: rgen}
}

// patchedCap bounds the overlay relative to the table it shadows.
func patchedCap(n int) int {
	if c := n / 8; c > 1024 {
		return c
	}
	return 1024
}
