// Package relstore is an in-memory relational engine standing in for the
// MySQL instance the dissertation used. It supports exactly the query
// surface the HYPRE algorithms need: typed tables, hash indexes, selection
// with arbitrary predicate trees, one equi-join (dblp ⋈ dblp_author), LIMIT,
// and COUNT(DISTINCT col). Query answers are tuple sets and counts, which is
// all the preference-combination algorithms consume, so the engine swap
// preserves their behaviour.
//
// Storage is columnar: each table keeps one typed vector per attribute
// (int64/float64 payload words, dictionary-encoded strings) with per-block
// min/max zone maps, and predicates compile to vectorized kernels that
// evaluate a whole block per step into selection bitmaps (see vecscan.go).
// The row-oriented API (Row, Value, Select) reboxes values on demand.
package relstore

import (
	"fmt"
	"sort"
	"sync"

	"hypre/internal/predicate"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind predicate.Kind
}

// Schema describes a relation: its name and ordered columns.
type Schema struct {
	Name    string
	Columns []Column
}

// Arity returns the number of columns, matching Table 10's "Arity" column.
func (s *Schema) Arity() int { return len(s.Columns) }

// Table holds the rows of one relation as typed column vectors plus optional
// hash indexes. Reads are safe concurrently; lazy structures (indexes, the
// join-existence vectors) are built under mu, and Insert takes mu, so the
// "concurrent reads after the load phase" contract of DB extends to scans
// that race with index builds.
type Table struct {
	schema *Schema
	colIdx map[string]int // bare column name -> position
	cols   []*column
	n      int // row count

	mu      sync.RWMutex
	gen     uint64            // bumped on every Insert; invalidates exists vectors
	indexes map[int]hashIndex // column position -> value-key -> row ids
	exists  map[existsKey]*existsEntry
}

type hashIndex map[predicate.Value][]int

// existsKey identifies a cached join-existence vector: which right table and
// which (left, right) join columns it was computed for.
type existsKey struct {
	right    *Table
	leftPos  int
	rightPos int
}

// existsEntry caches the join plumbing for one (left, right, columns)
// combination: the join-existence vector (bit lid set when the left row has
// at least one partner in the right table) and the right-row → left-rows
// mapping in CSR form, so scans stitch right selections back to left rows
// with two array reads instead of a hash probe per row. Generations of both
// tables at build time detect staleness after inserts.
type existsEntry struct {
	sel  []uint64
	off  []int32 // len right.n+1; lids[off[rid]:off[rid+1]] = left partners
	lids []int32
	lgen uint64
	rgen uint64
}

// indexKey canonicalizes a value for hash-index and DISTINCT keying:
// integral floats collapse to ints so Int(3) and Float(3) collide, matching
// Value.Equal's widening semantics (and what Value.Key encoded as a
// string). Keying by the Value itself avoids the per-row string allocation
// Key() cost on every insert, index build, and join probe.
func indexKey(v predicate.Value) predicate.Value {
	if v.Kind() == predicate.KindFloat {
		f := v.AsFloat()
		if f == float64(int64(f)) {
			return predicate.Int(int64(f))
		}
	}
	return v
}

func newTable(s *Schema) *Table {
	ci := make(map[string]int, len(s.Columns))
	cols := make([]*column, len(s.Columns))
	for i, c := range s.Columns {
		ci[c.Name] = i
		cols[i] = &column{}
	}
	return &Table{schema: s, colIdx: ci, cols: cols, indexes: make(map[int]hashIndex)}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows (Table 10's "Cardinality").
func (t *Table) Len() int { return t.n }

// ColumnIndex resolves a bare column name to its position, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Insert appends a row. The value count must match the schema arity; values
// are stored as given (the engine trusts callers on types, like MySQL in
// non-strict mode).
func (t *Table) Insert(vals ...predicate.Value) (int, error) {
	if len(vals) != len(t.schema.Columns) {
		return 0, fmt.Errorf("relstore: %s expects %d values, got %d",
			t.schema.Name, len(t.schema.Columns), len(vals))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.n
	for i, v := range vals {
		t.cols[i].append(v)
	}
	t.n++
	t.gen++
	for col, idx := range t.indexes {
		k := indexKey(t.cols[col].value(id))
		idx[k] = append(idx[k], id)
	}
	return id, nil
}

// BuildIndex creates (or rebuilds) a hash index on the named column.
func (t *Table) BuildIndex(col string) error {
	pos, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("relstore: %s has no column %q", t.schema.Name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buildIndexLocked(pos)
	return nil
}

func (t *Table) buildIndexLocked(pos int) hashIndex {
	idx := make(hashIndex, t.n)
	c := t.cols[pos]
	for id := 0; id < t.n; id++ {
		k := indexKey(c.value(id))
		idx[k] = append(idx[k], id)
	}
	t.indexes[pos] = idx
	return idx
}

// indexFor returns the hash index on column pos if one exists. The returned
// map is safe for concurrent reads (only Insert mutates it, and concurrent
// Insert+scan was never supported).
func (t *Table) indexFor(pos int) (hashIndex, bool) {
	t.mu.RLock()
	idx, ok := t.indexes[pos]
	t.mu.RUnlock()
	return idx, ok
}

// ensureIndex returns the hash index on pos, building it if missing.
func (t *Table) ensureIndex(pos int) hashIndex {
	if idx, ok := t.indexFor(pos); ok {
		return idx
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx, ok := t.indexes[pos]; ok {
		return idx
	}
	return t.buildIndexLocked(pos)
}

// lookup returns row ids whose column equals v, using the index when
// present; found reports whether an index existed.
func (t *Table) lookup(pos int, v predicate.Value) (ids []int, found bool) {
	idx, ok := t.indexFor(pos)
	if !ok {
		return nil, false
	}
	return idx[indexKey(v)], true
}

// existsVec returns the cached join-existence selection vector for
// left ⋈ right on (leftPos = rightPos): bit lid set iff the left row has at
// least one matching right row.
func (t *Table) existsVec(right *Table, leftPos, rightPos int) []uint64 {
	return t.joinEntry(right, leftPos, rightPos).sel
}

// joinEntry returns the cached join plumbing (existence vector + right→left
// CSR), rebuilding it when either table changed.
func (t *Table) joinEntry(right *Table, leftPos, rightPos int) *existsEntry {
	key := existsKey{right: right, leftPos: leftPos, rightPos: rightPos}
	t.mu.RLock()
	e, ok := t.exists[key]
	lgen := t.gen
	t.mu.RUnlock()
	right.mu.RLock()
	rgen := right.gen
	right.mu.RUnlock()
	if ok && e.lgen == lgen && e.rgen == rgen {
		return e
	}

	// Build outside t.mu using only read paths, then publish.
	lidx := t.ensureIndex(leftPos)
	sel := make([]uint64, selWords(t.n))
	off := make([]int32, right.n+1)
	var lids []int32
	rc := right.cols[rightPos]
	for rid := 0; rid < right.n; rid++ {
		for _, lid := range lidx[indexKey(rc.value(rid))] {
			sel[lid>>6] |= 1 << (uint(lid) & 63)
			lids = append(lids, int32(lid))
		}
		off[rid+1] = int32(len(lids))
	}
	e = &existsEntry{sel: sel, off: off, lids: lids, lgen: lgen, rgen: rgen}
	t.mu.Lock()
	if t.exists == nil {
		t.exists = make(map[existsKey]*existsEntry)
	}
	t.exists[key] = e
	t.mu.Unlock()
	return e
}

// Row returns a predicate.Row view of row id.
func (t *Table) Row(id int) RowRef { return RowRef{t: t, id: id} }

// Value returns the raw value at (row, bare column), or NULL.
func (t *Table) Value(id int, col string) predicate.Value {
	pos, ok := t.colIdx[col]
	if !ok || id < 0 || id >= t.n {
		return predicate.Null()
	}
	return t.cols[pos].value(id)
}

// RowRef is a single-table row view implementing predicate.Row. Attribute
// lookups accept both "col" and "table.col".
type RowRef struct {
	t  *Table
	id int
}

// ID returns the row's position in its table.
func (r RowRef) ID() int { return r.id }

// Get implements predicate.Row.
func (r RowRef) Get(attr string) (predicate.Value, bool) {
	name := attr
	if tbl, col, ok := splitQualified(attr); ok {
		if tbl != r.t.schema.Name {
			return predicate.Null(), false
		}
		name = col
	}
	pos, ok := r.t.colIdx[name]
	if !ok {
		return predicate.Null(), false
	}
	return r.t.cols[pos].value(r.id), true
}

func splitQualified(attr string) (table, col string, ok bool) {
	for i := len(attr) - 1; i >= 0; i-- {
		if attr[i] == '.' {
			return attr[:i], attr[i+1:], true
		}
	}
	return "", attr, false
}

// DB is a set of named tables. It is safe for concurrent reads after the
// load phase; writes take the mutex.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable registers a new relation and returns it.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("relstore: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("relstore: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("relstore: duplicate column %q in %q", c.Name, name)
		}
		seen[c.Name] = true
	}
	t := newTable(&Schema{Name: name, Columns: cols})
	db.tables[name] = t
	db.order = append(db.order, name)
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames lists tables in creation order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// TableStat is one row of the Table-10-style statistics report.
type TableStat struct {
	Name        string
	Arity       int
	Cardinality int
}

// Stats returns per-table arity and cardinality, sorted by table name, the
// data behind Table 10.
func (db *DB) Stats() []TableStat {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]TableStat, 0, len(db.tables))
	for name, t := range db.tables {
		out = append(out, TableStat{Name: name, Arity: t.schema.Arity(), Cardinality: t.Len()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
