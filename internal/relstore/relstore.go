// Package relstore is an in-memory relational engine standing in for the
// MySQL instance the dissertation used. It supports exactly the query
// surface the HYPRE algorithms need: typed tables, hash indexes, selection
// with arbitrary predicate trees, one equi-join (dblp ⋈ dblp_author), LIMIT,
// and COUNT(DISTINCT col). Query answers are tuple sets and counts, which is
// all the preference-combination algorithms consume, so the engine swap
// preserves their behaviour.
package relstore

import (
	"fmt"
	"sort"
	"sync"

	"hypre/internal/predicate"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind predicate.Kind
}

// Schema describes a relation: its name and ordered columns.
type Schema struct {
	Name    string
	Columns []Column
}

// Arity returns the number of columns, matching Table 10's "Arity" column.
func (s *Schema) Arity() int { return len(s.Columns) }

// Table holds the rows of one relation plus optional hash indexes.
type Table struct {
	schema  *Schema
	colIdx  map[string]int      // bare column name -> position
	rows    [][]predicate.Value // row-major storage
	indexes map[int]hashIndex   // column position -> value-key -> row ids
}

type hashIndex map[predicate.Value][]int

// indexKey canonicalizes a value for hash-index and DISTINCT keying:
// integral floats collapse to ints so Int(3) and Float(3) collide, matching
// Value.Equal's widening semantics (and what Value.Key encoded as a
// string). Keying by the Value itself avoids the per-row string allocation
// Key() cost on every insert, index build, and join probe.
func indexKey(v predicate.Value) predicate.Value {
	if v.Kind() == predicate.KindFloat {
		f := v.AsFloat()
		if f == float64(int64(f)) {
			return predicate.Int(int64(f))
		}
	}
	return v
}

func newTable(s *Schema) *Table {
	ci := make(map[string]int, len(s.Columns))
	for i, c := range s.Columns {
		ci[c.Name] = i
	}
	return &Table{schema: s, colIdx: ci, indexes: make(map[int]hashIndex)}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of rows (Table 10's "Cardinality").
func (t *Table) Len() int { return len(t.rows) }

// ColumnIndex resolves a bare column name to its position, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Insert appends a row. The value count must match the schema arity; values
// are stored as given (the engine trusts callers on types, like MySQL in
// non-strict mode).
func (t *Table) Insert(vals ...predicate.Value) (int, error) {
	if len(vals) != len(t.schema.Columns) {
		return 0, fmt.Errorf("relstore: %s expects %d values, got %d",
			t.schema.Name, len(t.schema.Columns), len(vals))
	}
	row := make([]predicate.Value, len(vals))
	copy(row, vals)
	id := len(t.rows)
	t.rows = append(t.rows, row)
	for col, idx := range t.indexes {
		k := indexKey(row[col])
		idx[k] = append(idx[k], id)
	}
	return id, nil
}

// BuildIndex creates (or rebuilds) a hash index on the named column.
func (t *Table) BuildIndex(col string) error {
	pos, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("relstore: %s has no column %q", t.schema.Name, col)
	}
	idx := make(hashIndex, len(t.rows))
	for id, row := range t.rows {
		k := indexKey(row[pos])
		idx[k] = append(idx[k], id)
	}
	t.indexes[pos] = idx
	return nil
}

// lookup returns row ids whose column equals v, using the index when
// present; found reports whether an index existed.
func (t *Table) lookup(pos int, v predicate.Value) (ids []int, found bool) {
	idx, ok := t.indexes[pos]
	if !ok {
		return nil, false
	}
	return idx[indexKey(v)], true
}

// Row returns a predicate.Row view of row id.
func (t *Table) Row(id int) RowRef { return RowRef{t: t, id: id} }

// Value returns the raw value at (row, bare column), or NULL.
func (t *Table) Value(id int, col string) predicate.Value {
	pos, ok := t.colIdx[col]
	if !ok || id < 0 || id >= len(t.rows) {
		return predicate.Null()
	}
	return t.rows[id][pos]
}

// RowRef is a single-table row view implementing predicate.Row. Attribute
// lookups accept both "col" and "table.col".
type RowRef struct {
	t  *Table
	id int
}

// ID returns the row's position in its table.
func (r RowRef) ID() int { return r.id }

// Get implements predicate.Row.
func (r RowRef) Get(attr string) (predicate.Value, bool) {
	name := attr
	if tbl, col, ok := splitQualified(attr); ok {
		if tbl != r.t.schema.Name {
			return predicate.Null(), false
		}
		name = col
	}
	pos, ok := r.t.colIdx[name]
	if !ok {
		return predicate.Null(), false
	}
	return r.t.rows[r.id][pos], true
}

func splitQualified(attr string) (table, col string, ok bool) {
	for i := len(attr) - 1; i >= 0; i-- {
		if attr[i] == '.' {
			return attr[:i], attr[i+1:], true
		}
	}
	return "", attr, false
}

// DB is a set of named tables. It is safe for concurrent reads after the
// load phase; writes take the mutex.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable registers a new relation and returns it.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("relstore: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("relstore: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("relstore: duplicate column %q in %q", c.Name, name)
		}
		seen[c.Name] = true
	}
	t := newTable(&Schema{Name: name, Columns: cols})
	db.tables[name] = t
	db.order = append(db.order, name)
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames lists tables in creation order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// TableStat is one row of the Table-10-style statistics report.
type TableStat struct {
	Name        string
	Arity       int
	Cardinality int
}

// Stats returns per-table arity and cardinality, sorted by table name, the
// data behind Table 10.
func (db *DB) Stats() []TableStat {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]TableStat, 0, len(db.tables))
	for name, t := range db.tables {
		out = append(out, TableStat{Name: name, Arity: t.schema.Arity(), Cardinality: t.Len()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
