// Package relstore is an in-memory relational engine standing in for the
// MySQL instance the dissertation used. It supports exactly the query
// surface the HYPRE algorithms need: typed tables, hash indexes, selection
// with arbitrary predicate trees, one equi-join (dblp ⋈ dblp_author), LIMIT,
// and COUNT(DISTINCT col). Query answers are tuple sets and counts, which is
// all the preference-combination algorithms consume, so the engine swap
// preserves their behaviour.
//
// Storage is columnar: each table keeps one typed vector per attribute
// (int64/float64 payload words, dictionary-encoded strings with an
// adaptive raw-storage fallback for high-cardinality columns) with
// per-block min/max zone maps, and predicates compile to vectorized
// kernels that evaluate a whole block per step into selection bitmaps
// (see vecscan.go). The row-oriented API (Row, Value, Select) reboxes
// values on demand.
//
// The store is mutable and serves online workloads: Delete tombstones,
// Update overwrites in place (rebuilding the touched block's zone map
// exactly), scans and mutations interleave safely under a reader/writer
// epoch discipline, and every committed mutation lands in a bounded
// per-table change log with pre-images so derived caches can be repaired
// incrementally (MatchLeftRows + internal/delta) instead of
// rematerialized. See mutate.go for the full write-path contract.
package relstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hypre/internal/bitset"
	"hypre/internal/predicate"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind predicate.Kind
}

// Schema describes a relation: its name and ordered columns.
type Schema struct {
	Name    string
	Columns []Column
}

// Arity returns the number of columns, matching Table 10's "Arity" column.
func (s *Schema) Arity() int { return len(s.Columns) }

// Table holds the rows of one relation as typed column vectors plus optional
// hash indexes. The store is mutable: Insert appends, Update overwrites in
// place, Delete tombstones (row ids are stable forever; see mutate.go for
// the update path, snapshot semantics, and the change log).
//
// Concurrency: every mutation takes the state lock exclusively; every scan
// holds it shared for the scan's full duration, acquiring multi-table locks
// in creation (seq) order so reader pairs can never deadlock against
// writers. A scan therefore observes one consistent epoch of each table it
// touches — mutations wait for in-flight readers and advance the epoch
// atomically. Lazy structures (indexes, the join-existence vectors) are
// built under mu, nested inside the state lock, and rebuilt when the epoch
// they were built at goes stale.
type Table struct {
	schema *Schema
	colIdx map[string]int // bare column name -> position
	cols   []*column
	n      int // physical row count, tombstoned rows included

	seq     uint64       // creation ticket; canonical shared-lock order
	state   sync.RWMutex // data lock: mutations exclusive, whole scans shared
	nPublic atomic.Int64 // committed row count; lock-free Len for any caller
	dead    *bitset.Set  // tombstone mask (compressed; mutated under state lock)
	nDead   int

	chLog    []RowChange // committed mutations, ascending epoch (mutate.go)
	logFloor uint64      // epochs <= logFloor have been trimmed from chLog

	cfg   dbConfig     // write-path knobs, fixed at creation (NewDB options)
	batch *applyBatch  // non-nil while a commit hold is applying (state held)
	comps []Compaction // recent row-id remaps, ascending epoch (compact.go)
	// compactFloor is the newest evicted compaction epoch: consumers whose
	// sync point is <= compactFloor can no longer learn which remaps they
	// missed and must rebuild.
	compactFloor uint64

	mu      sync.RWMutex
	gen     uint64            // epoch: bumped on every mutation; invalidates caches
	indexes map[int]hashIndex // column position -> value-key -> row ids
	exists  map[existsKey]*existsEntry
}

type hashIndex map[predicate.Value][]int

// existsKey identifies a cached join-existence vector: which right table and
// which (left, right) join columns it was computed for.
type existsKey struct {
	right    *Table
	leftPos  int
	rightPos int
}

// existsEntry caches the join plumbing for one (left, right, columns)
// combination: the join-existence selection (lid set when the left row has
// at least one partner in the right table — compressed, and usually
// run-encoded since most rows have partners) and the right-row → left-rows
// mapping in CSR form, so scans stitch right selections back to left rows
// with two array reads instead of a hash probe per row. Generations of both
// tables at build time detect staleness. Entries are immutable once
// published (repairs and rebuilds swap in a fresh entry), so results may
// alias the selection's containers copy-on-write.
//
// Staleness is healed incrementally when the change logs still cover the
// gap: a repair clones the selection COW, recomputes only the touched rows,
// and overlays replacement partner lists in patched, leaving the base CSR
// arrays shared with the previous entry. partners() is the one read path.
// Partner lists may retain tombstoned lids (consumers filter liveness
// downstream), and lists of dead rids are never consulted — which is what
// keeps the repair's touched set proportional to the change log, not n.
type existsEntry struct {
	sel     *bitset.Set
	off     []int32 // len right.n+1 at build; lids[off[rid]:off[rid+1]] = left partners
	lids    []int32
	patched map[int32][]int32 // rid -> replacement partner list (nil = no partners)
	lgen    uint64
	rgen    uint64
}

// partners returns the left partner rows of right row rid: the patched
// overlay when the row was touched since the base CSR was built, the CSR
// slice otherwise. Rows appended after the base build have no CSR slot and
// live only in the overlay.
func (e *existsEntry) partners(rid int) []int32 {
	if e.patched != nil {
		if p, ok := e.patched[int32(rid)]; ok {
			return p
		}
	}
	if rid >= 0 && rid+1 < len(e.off) {
		return e.lids[e.off[rid]:e.off[rid+1]]
	}
	return nil
}

// indexKey canonicalizes a value for hash-index and DISTINCT keying:
// integral floats collapse to ints so Int(3) and Float(3) collide, matching
// Value.Equal's widening semantics (and what Value.Key encoded as a
// string). Keying by the Value itself avoids the per-row string allocation
// Key() cost on every insert, index build, and join probe.
func indexKey(v predicate.Value) predicate.Value {
	if v.Kind() == predicate.KindFloat {
		f := v.AsFloat()
		if f == float64(int64(f)) {
			return predicate.Int(int64(f))
		}
	}
	return v
}

// tableSeq hands out creation tickets for the canonical lock order.
var tableSeq atomic.Uint64

func newTable(s *Schema, cfg dbConfig) *Table {
	ci := make(map[string]int, len(s.Columns))
	cols := make([]*column, len(s.Columns))
	for i, c := range s.Columns {
		ci[c.Name] = i
		cols[i] = &column{}
	}
	return &Table{schema: s, colIdx: ci, cols: cols, dead: bitset.New(),
		seq: tableSeq.Add(1), indexes: make(map[int]hashIndex), cfg: cfg}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of physical rows, tombstoned rows included — the
// valid row-id range is always [0, Len). Use Live for the result-visible
// cardinality. Len is lock-free (safe under or outside the scan locks);
// concurrent inserts make it a momentarily-stale lower bound.
func (t *Table) Len() int { return int(t.nPublic.Load()) }

// Live returns the number of rows that are not tombstoned (Table 10's
// "Cardinality").
func (t *Table) Live() int {
	t.state.RLock()
	defer t.state.RUnlock()
	return t.n - t.nDead
}

// ColumnIndex resolves a bare column name to its position, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// Insert appends a row. The value count must match the schema arity; values
// are stored as given (the engine trusts callers on types, like MySQL in
// non-strict mode). Safe to call concurrently with scans: the insert waits
// for in-flight readers and commits atomically.
func (t *Table) Insert(vals ...predicate.Value) (int, error) {
	if len(vals) != len(t.schema.Columns) {
		return 0, fmt.Errorf("relstore: %s expects %d values, got %d",
			t.schema.Name, len(t.schema.Columns), len(vals))
	}
	if t.cfg.groupCommit {
		var id int
		t.commit(func() { id = t.insertLocked(vals) })
		return id, nil
	}
	t.state.Lock()
	defer t.state.Unlock()
	return t.insertLocked(vals), nil
}

func (t *Table) insertLocked(vals []predicate.Value) int {
	id := t.n
	for i, v := range vals {
		t.cols[i].append(v)
	}
	t.n++
	t.nPublic.Store(int64(t.n))
	epoch := t.commitEpochLocked(func() {
		for col, idx := range t.indexes {
			k := indexKey(t.cols[col].value(id))
			idx[k] = append(idx[k], id)
		}
	})
	t.logChange(RowChange{Epoch: epoch, Row: id, Kind: ChangeInsert})
	return id
}

// BuildIndex creates (or rebuilds) a hash index on the named column.
func (t *Table) BuildIndex(col string) error {
	pos, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("relstore: %s has no column %q", t.schema.Name, col)
	}
	t.state.RLock()
	defer t.state.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buildIndexLocked(pos)
	return nil
}

// buildIndexLocked builds the index over live rows only; deleted ids linger
// in existing buckets (lazy repair) but fresh builds never include them.
// Callers hold t.state at least shared and t.mu exclusively.
func (t *Table) buildIndexLocked(pos int) hashIndex {
	idx := make(hashIndex, t.n)
	c := t.cols[pos]
	for id := 0; id < t.n; id++ {
		if t.isDead(id) {
			continue
		}
		k := indexKey(c.value(id))
		idx[k] = append(idx[k], id)
	}
	t.indexes[pos] = idx
	return idx
}

// indexFor returns the hash index on column pos if one exists. The returned
// map is safe for concurrent reads (only Insert mutates it, and concurrent
// Insert+scan was never supported).
func (t *Table) indexFor(pos int) (hashIndex, bool) {
	t.mu.RLock()
	idx, ok := t.indexes[pos]
	t.mu.RUnlock()
	return idx, ok
}

// ensureIndex returns the hash index on pos, building it if missing.
func (t *Table) ensureIndex(pos int) hashIndex {
	if idx, ok := t.indexFor(pos); ok {
		return idx
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx, ok := t.indexes[pos]; ok {
		return idx
	}
	return t.buildIndexLocked(pos)
}

// lookup returns row ids whose column equals v, using the index when
// present; found reports whether an index existed.
func (t *Table) lookup(pos int, v predicate.Value) (ids []int, found bool) {
	idx, ok := t.indexFor(pos)
	if !ok {
		return nil, false
	}
	return idx[indexKey(v)], true
}

// existsVec returns the cached join-existence selection for left ⋈ right
// on (leftPos = rightPos): lid set iff the left row has at least one
// matching right row. The returned set is immutable.
func (t *Table) existsVec(right *Table, leftPos, rightPos int) *bitset.Set {
	return t.joinEntry(right, leftPos, rightPos).sel
}

// joinEntry returns the cached join plumbing (existence vector + right→left
// CSR), healing it when either table's epoch moved: an incremental repair
// from the change logs when they still cover the gap (joinrepair.go), a
// full O(n) rebuild as the loud fallback (log overflow, compaction, or an
// oversized patch set). Tombstoned rows on either side are excluded from
// fresh builds. Callers hold the state locks of both tables at least
// shared.
func (t *Table) joinEntry(right *Table, leftPos, rightPos int) *existsEntry {
	key := existsKey{right: right, leftPos: leftPos, rightPos: rightPos}
	t.mu.RLock()
	e, ok := t.exists[key]
	lgen := t.gen
	t.mu.RUnlock()
	right.mu.RLock()
	rgen := right.gen
	right.mu.RUnlock()
	if ok && e.lgen == lgen && e.rgen == rgen {
		return e
	}
	if ok {
		if ne := t.repairJoinEntry(e, right, leftPos, rightPos, lgen, rgen); ne != nil {
			t.mu.Lock()
			if t.exists == nil {
				t.exists = make(map[existsKey]*existsEntry)
			}
			t.exists[key] = ne
			t.mu.Unlock()
			if sc := t.cfg.counters; sc != nil {
				sc.JoinRepairs.Add(1)
			}
			return ne
		}
	}
	if sc := t.cfg.counters; sc != nil {
		sc.JoinRebuilds.Add(1)
	}

	// Build outside t.mu using only read paths, then publish.
	lidx := t.ensureIndex(leftPos)
	sel := bitset.New()
	off := make([]int32, right.n+1)
	var lids []int32
	rc := right.cols[rightPos]
	for rid := 0; rid < right.n; rid++ {
		if !right.isDead(rid) {
			for _, lid := range lidx[indexKey(rc.value(rid))] {
				if t.isDead(lid) {
					continue
				}
				sel.Add(lid)
				lids = append(lids, int32(lid))
			}
		}
		off[rid+1] = int32(len(lids))
	}
	// Most left rows have at least one partner, so the selection is
	// range-shaped: one re-encoding pass usually collapses it to runs.
	sel.Optimize()
	e = &existsEntry{sel: sel, off: off, lids: lids, lgen: lgen, rgen: rgen}
	t.mu.Lock()
	if t.exists == nil {
		t.exists = make(map[existsKey]*existsEntry)
	}
	t.exists[key] = e
	t.mu.Unlock()
	return e
}

// TableMemStats reports the footprint of a table's bitset-backed masks —
// the store-side half of the bitmapmem accounting.
type TableMemStats struct {
	// TombstoneBytes is the compressed tombstone mask.
	TombstoneBytes int64
	// JoinMaskBytes sums the cached join-existence selections.
	JoinMaskBytes int64
}

// MemStats reports the current compressed footprint of the table's masks.
func (t *Table) MemStats() TableMemStats {
	t.state.RLock()
	defer t.state.RUnlock()
	st := TableMemStats{TombstoneBytes: t.dead.SizeBytes()}
	t.mu.RLock()
	for _, e := range t.exists {
		st.JoinMaskBytes += e.sel.SizeBytes()
	}
	t.mu.RUnlock()
	return st
}

// Row returns a predicate.Row view of row id.
func (t *Table) Row(id int) RowRef { return RowRef{t: t, id: id} }

// Value returns the raw value at (row, bare column), or NULL. Tombstoned
// rows still answer (their payloads stay in the vectors); check Alive when
// liveness matters. Value takes the state lock shared, so it is safe
// against concurrent mutations (each call reads one committed epoch).
func (t *Table) Value(id int, col string) predicate.Value {
	pos, ok := t.colIdx[col]
	if !ok || id < 0 {
		return predicate.Null()
	}
	t.state.RLock()
	defer t.state.RUnlock()
	if id >= t.n {
		return predicate.Null()
	}
	return t.cols[pos].value(id)
}

// RowRef is a single-table row view implementing predicate.Row. Attribute
// lookups accept both "col" and "table.col".
type RowRef struct {
	t  *Table
	id int
}

// ID returns the row's position in its table.
func (r RowRef) ID() int { return r.id }

// Get implements predicate.Row.
func (r RowRef) Get(attr string) (predicate.Value, bool) {
	name := attr
	if tbl, col, ok := splitQualified(attr); ok {
		if tbl != r.t.schema.Name {
			return predicate.Null(), false
		}
		name = col
	}
	pos, ok := r.t.colIdx[name]
	if !ok {
		return predicate.Null(), false
	}
	return r.t.cols[pos].value(r.id), true
}

func splitQualified(attr string) (table, col string, ok bool) {
	for i := len(attr) - 1; i >= 0; i-- {
		if attr[i] == '.' {
			return attr[:i], attr[i+1:], true
		}
	}
	return "", attr, false
}

// DB is a set of named tables. It is safe for concurrent reads after the
// load phase; writes take the mutex.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	order  []string
	cfg    dbConfig
}

// dbConfig holds the write-path knobs shared by every table of a DB, fixed
// at NewDB time.
type dbConfig struct {
	logCap      int     // change-log capacity; 0 means maxChangeLog
	groupCommit bool    // route mutations through the commit queue
	compactFrac float64 // dead-row fraction triggering compaction; 0 disables
	counters    *StoreCounters
	cq          *commitQueue // store-wide group-commit queue (groupcommit.go)
}

// DBOption configures the write path of a new DB.
type DBOption func(*dbConfig)

// WithChangeLogCap sets the per-table change-log capacity (entries). Streams
// should size this to cover at least one maintenance interval of mutations,
// or delta consumers hit the trim point and pay full rebuilds. n <= 0 keeps
// the default.
func WithChangeLogCap(n int) DBOption {
	return func(c *dbConfig) {
		if n > 0 {
			c.logCap = n
		}
	}
}

// WithGroupCommit routes Insert/Delete/Update/UpdateCol (and Batch.Commit)
// through a store-wide commit queue that coalesces concurrently submitted
// mutations into one exclusive-lock acquisition per hold, one epoch bump
// per touched table, and one zone-repair pass — with leadership rotating
// among the writers (see groupcommit.go). Semantics are identical to serial
// application in the order the queue admitted the ops; a writer with no
// concurrent peers leads a hold of one (lock, apply, a free yield, unlock).
func WithGroupCommit(on bool) DBOption {
	return func(c *dbConfig) { c.groupCommit = on }
}

// WithCompaction enables threshold-triggered tombstone compaction: when a
// commit leaves a table's dead-row fraction at or above frac (and the table
// has at least a block of rows), the columnar vectors are compacted and a
// row-id remap is published through the epoch gate (CompactionsSince) for
// derived caches to apply. frac <= 0 disables (the default: row ids are
// then stable forever, the pre-PR9 contract).
func WithCompaction(frac float64) DBOption {
	return func(c *dbConfig) { c.compactFrac = frac }
}

// WithStoreCounters attaches write-path counters (group-commit batching,
// log overflows, compactions, join repairs) to every table of the DB.
func WithStoreCounters(sc *StoreCounters) DBOption {
	return func(c *dbConfig) { c.counters = sc }
}

// NewDB returns an empty database.
func NewDB(opts ...DBOption) *DB {
	db := &DB{tables: make(map[string]*Table)}
	for _, o := range opts {
		o(&db.cfg)
	}
	db.cfg.cq = &commitQueue{}
	return db
}

// CreateTable registers a new relation and returns it.
func (db *DB) CreateTable(name string, cols ...Column) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("relstore: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("relstore: table %q needs at least one column", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("relstore: duplicate column %q in %q", c.Name, name)
		}
		seen[c.Name] = true
	}
	t := newTable(&Schema{Name: name, Columns: cols}, db.cfg)
	db.cfg.cq.register(t)
	db.tables[name] = t
	db.order = append(db.order, name)
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// TableNames lists tables in creation order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// TableStat is one row of the Table-10-style statistics report.
type TableStat struct {
	Name        string
	Arity       int
	Cardinality int
}

// Stats returns per-table arity and cardinality, sorted by table name, the
// data behind Table 10.
func (db *DB) Stats() []TableStat {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]TableStat, 0, len(db.tables))
	for name, t := range db.tables {
		out = append(out, TableStat{Name: name, Arity: t.schema.Arity(), Cardinality: t.Live()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
