package relstore

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"hypre/internal/bitset"
	"hypre/internal/predicate"
)

// This file is the randomized property suite for the sustained-stream write
// path: the group-commit queue (leadership rotation, multi-table holds),
// the key-addressed Batch API, and the row-restricted scalar evaluation the
// delta refresh rides on. The concurrency properties are meant to run under
// -race: the writers genuinely overlap, so the suite doubles as a data-race
// probe over the commit queue and the hold's lock discipline.

// logicalState serializes a table's live rows by value, sorted — the
// row-order- and row-id-agnostic comparison key for stores that applied the
// same logical ops through different write paths (or compacted at different
// times).
func logicalState(t *testing.T, db *DB, table string, cols []string) []string {
	t.Helper()
	tab := db.Table(table)
	if tab == nil {
		t.Fatalf("no table %q", table)
	}
	var out []string
	for id := 0; id < tab.Len(); id++ {
		if !tab.Alive(id) {
			continue
		}
		s := ""
		for _, c := range cols {
			s += tab.Value(id, c).Key() + "|"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// streamTables creates the two-table paper/link schema both twins use.
func streamTables(t *testing.T, db *DB) {
	t.Helper()
	if _, err := db.CreateTable("papers",
		Column{Name: "pid", Kind: predicate.KindInt},
		Column{Name: "score", Kind: predicate.KindInt},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("links",
		Column{Name: "pid", Kind: predicate.KindInt},
		Column{Name: "ref", Kind: predicate.KindInt},
	); err != nil {
		t.Fatal(err)
	}
}

// planStreamOps builds one writer's op list over its own key partition
// (writer w owns pids congruent to w): ops on disjoint keys commute, so the
// concurrent group-commit store and the serially applied twin must converge
// to the same logical state no matter how the queue interleaves the
// writers. Every op is a Batch — single-table or paper+links multi-table —
// so the suite exercises the key-addressed staging API end to end.
func planStreamOps(rng *rand.Rand, w, writers, ops int) []func(db *DB) error {
	owned := []int64{}
	for p := int64(w); len(owned) < 6; p += int64(writers) {
		owned = append(owned, p) // seeded pids this writer may touch
	}
	next := int64(2048 + w) // above any seeded pid, still in w's partition
	plan := make([]func(db *DB) error, 0, ops)
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0: // multi-table insert: a paper with 1-2 links
			pid := next
			next += int64(writers)
			owned = append(owned, pid)
			links := 1 + rng.Intn(2)
			score := int64(rng.Intn(100))
			refs := []int64{int64(rng.Intn(50)), int64(rng.Intn(50))}
			plan = append(plan, func(db *DB) error {
				b := db.NewBatch().Insert("papers", predicate.Int(pid), predicate.Int(score))
				for l := 0; l < links; l++ {
					b.Insert("links", predicate.Int(pid), predicate.Int(refs[l]))
				}
				return b.Commit()
			})
		case 1: // multi-table delete: a paper and all its links
			pid := owned[rng.Intn(len(owned))]
			plan = append(plan, func(db *DB) error {
				return db.NewBatch().
					DeleteOneByKey("papers", "pid", predicate.Int(pid)).
					DeleteByKey("links", "pid", predicate.Int(pid)).
					Commit()
			})
		case 2: // re-score one paper by key
			pid := owned[rng.Intn(len(owned))]
			score := int64(rng.Intn(100))
			plan = append(plan, func(db *DB) error {
				return db.NewBatch().
					UpdateColByKey("papers", "pid", predicate.Int(pid), "score", predicate.Int(score)).
					Commit()
			})
		default: // link churn only
			pid := owned[rng.Intn(len(owned))]
			ref := int64(rng.Intn(50))
			plan = append(plan, func(db *DB) error {
				return db.NewBatch().
					Insert("links", predicate.Int(pid), predicate.Int(ref)).
					Commit()
			})
		}
	}
	return plan
}

// TestGroupCommitMatchesSerialRandomized: concurrent key-partitioned
// writers through the group-commit queue (with compaction enabled, so
// holds, promotions, and row-id remaps all fire) must leave the same
// logical state as the same ops applied one by one on a serial,
// never-compacting twin.
func TestGroupCommitMatchesSerialRandomized(t *testing.T) {
	// Seeding must clear one full block (1024 rows): compaction only
	// considers tables at least a block long, and the suite wants real
	// row-id remaps in flight, not just an armed-but-idle threshold.
	const writers, opsPerWriter, seeded = 8, 60, 1100
	for seed := int64(40); seed < 44; seed++ {
		var sc StoreCounters
		group := NewDB(WithGroupCommit(true), WithCompaction(0.05), WithStoreCounters(&sc))
		serial := NewDB()
		streamTables(t, group)
		streamTables(t, serial)
		for _, db := range []*DB{group, serial} {
			for p := int64(0); p < seeded; p++ {
				if _, err := db.Table("papers").Insert(predicate.Int(p), predicate.Int(p%7)); err != nil {
					t.Fatal(err)
				}
				if _, err := db.Table("links").Insert(predicate.Int(p), predicate.Int(p%11)); err != nil {
					t.Fatal(err)
				}
			}
		}

		plans := make([][]func(db *DB) error, writers)
		for w := range plans {
			plans[w] = planStreamOps(rand.New(rand.NewSource(seed*1000+int64(w))), w, writers, opsPerWriter)
		}

		var wg sync.WaitGroup
		errs := make([]error, writers)
		for w := range plans {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, op := range plans[w] {
					if err := op(group); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("seed %d writer %d: %v", seed, w, err)
			}
		}
		for _, plan := range plans {
			for _, op := range plan {
				if err := op(serial); err != nil {
					t.Fatal(err)
				}
			}
		}

		for _, tc := range []struct {
			table string
			cols  []string
		}{
			{"papers", []string{"pid", "score"}},
			{"links", []string{"pid", "ref"}},
		} {
			g := logicalState(t, group, tc.table, tc.cols)
			s := logicalState(t, serial, tc.table, tc.cols)
			if !eqStrings(g, s) {
				t.Fatalf("seed %d: %s diverged: group %d rows, serial %d rows",
					seed, tc.table, len(g), len(s))
			}
		}
		if sc.GroupCommitOps.Load() == 0 {
			t.Fatalf("seed %d: no op went through the commit queue; test is vacuous", seed)
		}
		if sc.Compactions.Load() == 0 {
			t.Fatalf("seed %d: compaction never fired; the remap axis is untested", seed)
		}
	}
}

// TestBatchStagingErrorAppliesNothing: a batch holding a staging error
// (unknown table, unknown column, arity mismatch) must report it from
// Commit without applying any staged mutation — including the valid ones
// staged before the error.
func TestBatchStagingErrorAppliesNothing(t *testing.T) {
	for _, group := range []bool{false, true} {
		db := NewDB(WithGroupCommit(group))
		streamTables(t, db)
		if _, err := db.Table("papers").Insert(predicate.Int(1), predicate.Int(10)); err != nil {
			t.Fatal(err)
		}
		before := db.Table("papers").Live()
		cases := []*Batch{
			db.NewBatch().Insert("papers", predicate.Int(2), predicate.Int(20)).Insert("nope", predicate.Int(3)),
			db.NewBatch().Insert("papers", predicate.Int(2)), // arity
			db.NewBatch().UpdateColByKey("papers", "pid", predicate.Int(1), "zz", predicate.Int(0)),
			db.NewBatch().DeleteByKey("papers", "zz", predicate.Int(1)),
		}
		for i, b := range cases {
			if err := b.Commit(); err == nil {
				t.Fatalf("group=%v case %d: staged error not reported", group, i)
			}
		}
		if got := db.Table("papers").Live(); got != before {
			t.Fatalf("group=%v: failed batches mutated the store: %d live rows, want %d", group, got, before)
		}
	}
}

// TestBatchMultiTableEffects: one batch's staged mutations across two
// tables all land, and zero-match key addressing is benign.
func TestBatchMultiTableEffects(t *testing.T) {
	for _, group := range []bool{false, true} {
		db := NewDB(WithGroupCommit(group))
		streamTables(t, db)
		err := db.NewBatch().
			Insert("papers", predicate.Int(7), predicate.Int(70)).
			Insert("links", predicate.Int(7), predicate.Int(1)).
			Insert("links", predicate.Int(7), predicate.Int(2)).
			DeleteByKey("papers", "pid", predicate.Int(999)). // no match: benign
			Commit()
		if err != nil {
			t.Fatal(err)
		}
		if got := db.Table("papers").Live(); got != 1 {
			t.Fatalf("group=%v: papers live = %d, want 1", group, got)
		}
		if got := db.Table("links").Live(); got != 2 {
			t.Fatalf("group=%v: links live = %d, want 2", group, got)
		}
		err = db.NewBatch().
			UpdateColByKey("papers", "pid", predicate.Int(7), "score", predicate.Int(71)).
			DeleteByKey("links", "pid", predicate.Int(7)).
			Commit()
		if err != nil {
			t.Fatal(err)
		}
		if v := db.Table("papers").Value(0, "score").AsInt(); v != 71 {
			t.Fatalf("group=%v: score = %d, want 71", group, v)
		}
		if got := db.Table("links").Live(); got != 0 {
			t.Fatalf("group=%v: links live = %d, want 0", group, got)
		}
	}
}

// TestEvalRowsMatchesEvalVec: the row-restricted scalar evaluation (the
// delta refresh's flat path) must agree with the block-kernel evaluation on
// every predicate shape, for any touched-row set, once both are masked to
// the touched rows — including the NOT-within-universe collapse.
func TestEvalRowsMatchesEvalVec(t *testing.T) {
	cols := []string{"k", "a", "s"}
	for seed := int64(500); seed < 510; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		n := []int{40, 700, 2300}[rng.Intn(3)]
		tab, _ := buildPropTables(t, rng, db, "pt", cols, n)
		resolve := func(a string) int {
			if pos, ok := tab.colIdx[a]; ok {
				return pos
			}
			return -1
		}
		attrs := []string{"k", "a", "s", "zz"}
		for qi := 0; qi < 30; qi++ {
			p := propPred(rng, attrs, 2)
			touched := bitset.New()
			for c := 1 + rng.Intn(50); c > 0; c-- {
				touched.Add(rng.Intn(n))
			}
			rows := rowsOf(touched, tab.n)
			blks := blocksOf(touched, tab.n)
			rsel, rok := tab.evalRows(p, resolve, rows)
			vsel, vok := tab.evalVec(p, resolve, blks)
			if rok != vok {
				t.Fatalf("seed %d q %d (%s): rows ok=%v vec ok=%v", seed, qi, p, rok, vok)
			}
			if !rok {
				continue
			}
			vsel.AndWith(touched)
			if rsel.Len() != vsel.Len() {
				t.Fatalf("seed %d q %d (%s): rows path %d matches, vec path %d",
					seed, qi, p, rsel.Len(), vsel.Len())
			}
			rsel.ForEach(func(i int) bool {
				if !vsel.Contains(i) {
					t.Fatalf("seed %d q %d (%s): row %d only on rows path", seed, qi, p, i)
				}
				return true
			})
		}
	}
}
