package relstore

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hypre/internal/predicate"
)

// TestConcurrentMutateAndScan is the race test for the epoch/snapshot
// discipline: writers Insert/Update/Delete on both tables of a join while
// readers run the full scan surface — counts, distinct scans, the bulk row
// scan, MatchLeftRows, lazy index builds. Every scan holds the tables'
// shared state locks for its duration, so under -race this must be clean
// and every scan must observe internally consistent state (no partial
// batches, no torn rows). Run it with -race (CI does).
func TestConcurrentMutateAndScan(t *testing.T) {
	db := NewDB()
	lt, err := db.CreateTable("lt",
		Column{Name: "k", Kind: predicate.KindInt},
		Column{Name: "a", Kind: predicate.KindInt},
		Column{Name: "s", Kind: predicate.KindString})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := db.CreateTable("rt",
		Column{Name: "k", Kind: predicate.KindInt},
		Column{Name: "x", Kind: predicate.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	seedRng := rand.New(rand.NewSource(77))
	for i := 0; i < 800; i++ {
		if _, err := lt.Insert(predicate.Int(int64(i%97)), predicate.Int(int64(seedRng.Intn(50))),
			predicate.String([]string{"A", "B", "C"}[seedRng.Intn(3)])); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if _, err := rt.Insert(predicate.Int(int64(i%97)), predicate.Int(int64(seedRng.Intn(20)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := lt.BuildIndex("k"); err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var writers, readers sync.WaitGroup

	// Two writers, one per table.
	writers.Add(2)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewSource(1))
		for op := 0; op < 400; op++ {
			switch rng.Intn(3) {
			case 0:
				if _, err := lt.Insert(predicate.Int(int64(rng.Intn(97))),
					predicate.Int(int64(rng.Intn(50))), predicate.String("Z")); err != nil {
					t.Error(err)
					return
				}
			case 1:
				lt.Delete(rng.Intn(lt.Len()))
			default:
				id := rng.Intn(lt.Len())
				if lt.Alive(id) {
					// The row may die between the check and the update;
					// the update then fails loudly, which is fine.
					_ = lt.UpdateCol(id, "a", predicate.Int(int64(rng.Intn(50))))
				}
			}
		}
	}()
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewSource(2))
		for op := 0; op < 400; op++ {
			switch rng.Intn(3) {
			case 0:
				if _, err := rt.Insert(predicate.Int(int64(rng.Intn(97))),
					predicate.Int(int64(rng.Intn(20)))); err != nil {
					t.Error(err)
					return
				}
			case 1:
				rt.Delete(rng.Intn(rt.Len()))
			default:
				id := rng.Intn(rt.Len())
				if rt.Alive(id) {
					_ = rt.UpdateCol(id, "x", predicate.Int(int64(rng.Intn(20))))
				}
			}
		}
	}()

	// Readers hammer the scan surface until the writers finish.
	join := &JoinSpec{Table: "rt", LeftCol: "k", RightCol: "k"}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for !done.Load() {
				where := &predicate.Cmp{Attr: "a", Op: predicate.OpGe,
					Val: predicate.Int(int64(rng.Intn(50)))}
				q := Query{From: "lt", Where: where}
				if rng.Intn(2) == 0 {
					q.Join = join
				}
				if _, err := db.Count(q); err != nil {
					t.Error(err)
					return
				}
				if _, err := db.DistinctInts(q, "lt.a"); err != nil {
					t.Error(err)
					return
				}
				if err := db.ScanAttrRows(q, "lt.a", func(int, int64) {}); err != nil {
					t.Error(err)
					return
				}
				touched := make([]uint64, selWords(lt.Len()))
				for i := 0; i < 40; i++ {
					selSet(touched, rng.Intn(lt.Len()))
				}
				if _, err := db.MatchLeftRows(q, touched); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(10 + r))
	}

	// Readers keep scanning until both writers drained their op budget.
	writers.Wait()
	done.Store(true)
	readers.Wait()

	// Post-quiescence sanity: the store still answers exactly.
	liveCount := 0
	for id := 0; id < lt.Len(); id++ {
		if lt.Alive(id) {
			liveCount++
		}
	}
	if lt.Live() != liveCount {
		t.Fatalf("Live() = %d, want %d", lt.Live(), liveCount)
	}
}
