package relstore

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"hypre/internal/predicate"
)

// This file proves the columnar engine answers every query exactly like a
// row-major reference scan: randomized tables over all Value kinds
// (including NULLs, integral floats that collapse onto ints under indexKey,
// and the odd NaN), randomized predicate trees over every node type, with
// and without hash indexes, with and without a join — so whichever access
// path the engine picks (index candidates, vectorized kernels with zone
// maps, right-driven stitching, row-at-a-time fallback), the answers match.

// refTable is the retained row-major reference: rows are plain Value slices
// and every query is answered by a naive scan with predicate.Eval.
type refTable struct {
	name string
	cols []string
	rows [][]predicate.Value
}

func (rt *refTable) colIdx(name string) int {
	for i, c := range rt.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// refRow mirrors JoinedRow.Get / RowRef.Get semantics exactly: qualified
// names bind to the named table only, bare names bind left-first.
type refRow struct {
	left, right *refTable
	lrow, rrow  []predicate.Value
	hasRight    bool
}

func refGetOne(t *refTable, row []predicate.Value, attr string) (predicate.Value, bool) {
	name := attr
	if tbl, col, ok := splitQualified(attr); ok {
		if tbl != t.name {
			return predicate.Null(), false
		}
		name = col
	}
	pos := t.colIdx(name)
	if pos < 0 {
		return predicate.Null(), false
	}
	return row[pos], true
}

func (r refRow) Get(attr string) (predicate.Value, bool) {
	if v, ok := refGetOne(r.left, r.lrow, attr); ok {
		return v, true
	}
	if r.hasRight {
		return refGetOne(r.right, r.rrow, attr)
	}
	return predicate.Null(), false
}

// refScan enumerates the matching (lid, rid) pairs (rid = -1 when
// unjoined) in left-ascending order, the reference result set.
func refScan(left, right *refTable, join *JoinSpec, where predicate.Predicate, limit int) [][2]int {
	if where == nil {
		where = predicate.True{}
	}
	var out [][2]int
	if join == nil {
		for lid, lrow := range left.rows {
			if where.Eval(refRow{left: left, lrow: lrow}) {
				out = append(out, [2]int{lid, -1})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
		return out
	}
	lpos, rpos := left.colIdx(join.LeftCol), right.colIdx(join.RightCol)
	for lid, lrow := range left.rows {
		lk := indexKey(lrow[lpos])
		for rid, rrow := range right.rows {
			if indexKey(rrow[rpos]) != lk {
				continue
			}
			if where.Eval(refRow{left: left, right: right, lrow: lrow, rrow: rrow, hasRight: true}) {
				out = append(out, [2]int{lid, rid})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// propValue draws one random value: every kind, NULLs, integral floats that
// must collide with ints, and rare NaNs.
func propValue(rng *rand.Rand) predicate.Value {
	switch r := rng.Float64(); {
	case r < 0.10:
		return predicate.Null()
	case r < 0.45:
		return predicate.Int(int64(rng.Intn(21) - 5))
	case r < 0.60:
		return predicate.Float(float64(rng.Intn(21) - 5)) // integral float
	case r < 0.72:
		return predicate.Float(float64(rng.Intn(40))/4 - 3)
	case r < 0.73:
		return predicate.Float(math.NaN())
	default:
		return predicate.String([]string{"A", "B", "C", "DD", "e"}[rng.Intn(5)])
	}
}

func propOp(rng *rand.Rand) predicate.Op {
	return []predicate.Op{predicate.OpEq, predicate.OpNe, predicate.OpLt,
		predicate.OpLe, predicate.OpGt, predicate.OpGe}[rng.Intn(6)]
}

// propPred builds a random predicate tree over the attribute pool (which
// includes qualified, bare, and unresolvable names).
func propPred(rng *rand.Rand, attrs []string, depth int) predicate.Predicate {
	attr := func() string { return attrs[rng.Intn(len(attrs))] }
	if depth <= 0 || rng.Float64() < 0.55 {
		switch rng.Intn(4) {
		case 0:
			return &predicate.Cmp{Attr: attr(), Op: propOp(rng), Val: propValue(rng)}
		case 1:
			return &predicate.Between{Attr: attr(), Lo: propValue(rng), Hi: propValue(rng)}
		case 2:
			n := 1 + rng.Intn(3)
			vals := make([]predicate.Value, n)
			for i := range vals {
				vals[i] = propValue(rng)
			}
			return &predicate.In{Attr: attr(), Vals: vals}
		default:
			return &predicate.Cmp{Attr: attr(), Op: predicate.OpEq, Val: propValue(rng)}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &predicate.Not{Kid: propPred(rng, attrs, depth-1)}
	case 1:
		kids := make([]predicate.Predicate, 2+rng.Intn(2))
		for i := range kids {
			kids[i] = propPred(rng, attrs, depth-1)
		}
		return &predicate.And{Kids: kids}
	default:
		kids := make([]predicate.Predicate, 2+rng.Intn(2))
		for i := range kids {
			kids[i] = propPred(rng, attrs, depth-1)
		}
		return &predicate.Or{Kids: kids}
	}
}

// buildPropTables creates one (columnar, reference) table pair with random
// contents. Column "s" holds row/8 so consecutive blocks carry tight
// numeric ranges, forcing the zone-map skip/accept paths on range scans.
func buildPropTables(t *testing.T, rng *rand.Rand, db *DB, name string, cols []string, nRows int) (*Table, *refTable) {
	t.Helper()
	specs := make([]Column, len(cols))
	for i, c := range cols {
		specs[i] = Column{Name: c, Kind: predicate.KindInt}
	}
	tab, err := db.CreateTable(name, specs...)
	if err != nil {
		t.Fatal(err)
	}
	ref := &refTable{name: name, cols: cols}
	for r := 0; r < nRows; r++ {
		row := make([]predicate.Value, len(cols))
		for i, c := range cols {
			if c == "s" {
				row[i] = predicate.Int(int64(r / 8))
			} else {
				row[i] = propValue(rng)
			}
		}
		if _, err := tab.Insert(row...); err != nil {
			t.Fatal(err)
		}
		ref.rows = append(ref.rows, row)
	}
	return tab, ref
}

func pairKeys(pairs [][2]int) []string {
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = fmt.Sprintf("%d/%d", p[0], p[1])
	}
	sort.Strings(out)
	return out
}

func gotPairs(rows []JoinedRow) [][2]int {
	out := make([][2]int, len(rows))
	for i, r := range rows {
		rid := -1
		if r.HasRight {
			rid = r.Right.ID()
		}
		out[i] = [2]int{r.Left.ID(), rid}
	}
	return out
}

func valueKeySet(vals []predicate.Value) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.Key()
	}
	sort.Strings(out)
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// refDistinct computes the reference DISTINCT attr over the matched rows.
func refDistinct(left, right *refTable, pairs [][2]int, attr string) []predicate.Value {
	seen := map[predicate.Value]struct{}{}
	var out []predicate.Value
	for _, p := range pairs {
		row := refRow{left: left, lrow: left.rows[p[0]]}
		if p[1] >= 0 {
			row.right, row.rrow, row.hasRight = right, right.rows[p[1]], true
		}
		v, ok := row.Get(attr)
		if !ok || v.IsNull() {
			continue
		}
		k := indexKey(v)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, v)
	}
	return out
}

func TestColumnarMatchesRowReferenceSingleTable(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		sizes := []int{0, 1, 37, 257, 1023, 1024, 1500, 2600}
		n := sizes[rng.Intn(len(sizes))]
		tab, ref := buildPropTables(t, rng, db, "lt", []string{"a", "b", "s"}, n)

		// Random index coverage exercises the candidate access path.
		if rng.Float64() < 0.5 {
			if err := tab.BuildIndex("a"); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Float64() < 0.3 {
			if err := tab.BuildIndex("s"); err != nil {
				t.Fatal(err)
			}
		}

		attrs := []string{"a", "b", "s", "lt.a", "lt.s", "zz", "other.a"}
		for qi := 0; qi < 25; qi++ {
			where := propPred(rng, attrs, 2)
			limit := 0
			if rng.Float64() < 0.25 {
				limit = 1 + rng.Intn(5)
			}
			q := Query{From: "lt", Where: where, Limit: limit}
			want := refScan(ref, nil, nil, where, limit)

			rows, err := db.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			if !eqStrings(pairKeys(gotPairs(rows)), pairKeys(want)) {
				t.Fatalf("seed %d q %d: Select mismatch for %s: got %d rows, want %d",
					seed, qi, where, len(rows), len(want))
			}
			cnt, err := db.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			if cnt != len(want) {
				t.Fatalf("seed %d q %d: Count = %d, want %d (%s)", seed, qi, cnt, len(want), where)
			}
			if limit == 0 {
				dv, err := db.DistinctValues(q, "a")
				if err != nil {
					t.Fatal(err)
				}
				wantDV := refDistinct(ref, nil, refScan(ref, nil, nil, where, 0), "a")
				if !eqStrings(valueKeySet(dv), valueKeySet(wantDV)) {
					t.Fatalf("seed %d q %d: DistinctValues mismatch (%s)", seed, qi, where)
				}
				min, max, ok, err := db.MinMax(q, "s")
				if err != nil {
					t.Fatal(err)
				}
				wantMin, wantMax, wantOK := refMinMax(ref, nil, want, "s")
				if ok != wantOK || (ok && (min.Key() != wantMin.Key() || max.Key() != wantMax.Key())) {
					t.Fatalf("seed %d q %d: MinMax mismatch (%s)", seed, qi, where)
				}
			}
		}
	}
}

func refMinMax(left, right *refTable, pairs [][2]int, attr string) (min, max predicate.Value, ok bool) {
	for _, p := range pairs {
		row := refRow{left: left, lrow: left.rows[p[0]]}
		if p[1] >= 0 {
			row.right, row.rrow, row.hasRight = right, right.rows[p[1]], true
		}
		v, has := row.Get(attr)
		if !has || v.IsNull() {
			continue
		}
		if !ok {
			min, max, ok = v, v, true
			continue
		}
		if c, cmp := predicate.Compare(v, min); cmp && c < 0 {
			min = v
		}
		if c, cmp := predicate.Compare(v, max); cmp && c > 0 {
			max = v
		}
	}
	return min, max, ok
}

func TestColumnarMatchesRowReferenceJoin(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		nl := []int{3, 60, 300, 1200}[rng.Intn(4)]
		nr := []int{0, 5, 40, 200}[rng.Intn(4)]
		lt, lref := buildPropTables(t, rng, db, "lt", []string{"k", "a", "s"}, nl)
		_, rref := buildPropTables(t, rng, db, "rt", []string{"k", "x"}, nr)
		if rng.Float64() < 0.5 {
			if err := lt.BuildIndex("a"); err != nil {
				t.Fatal(err)
			}
		}

		join := &JoinSpec{Table: "rt", LeftCol: "k", RightCol: "k"}
		attrs := []string{"a", "s", "x", "k", "lt.a", "rt.x", "rt.k", "zz"}
		for qi := 0; qi < 20; qi++ {
			where := propPred(rng, attrs, 2)
			q := Query{From: "lt", Join: join, Where: where}
			want := refScan(lref, rref, join, where, 0)

			rows, err := db.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			if !eqStrings(pairKeys(gotPairs(rows)), pairKeys(want)) {
				t.Fatalf("seed %d q %d: join Select mismatch for %s: got %d rows, want %d",
					seed, qi, where, len(rows), len(want))
			}

			// COUNT(DISTINCT) and the aggregate surface.
			cd, err := db.CountDistinct(q, "lt.s")
			if err != nil {
				t.Fatal(err)
			}
			if wantCD := len(refDistinct(lref, rref, want, "lt.s")); cd != wantCD {
				t.Fatalf("seed %d q %d: CountDistinct = %d, want %d (%s)", seed, qi, cd, wantCD, where)
			}
			groups, err := db.CountGroupBy(q, "x")
			if err != nil {
				t.Fatal(err)
			}
			if wantG := refGroupCount(lref, rref, want, "x"); !eqGroups(groups, wantG) {
				t.Fatalf("seed %d q %d: CountGroupBy mismatch (%s)", seed, qi, where)
			}

			// The bulk scan APIs: distinct ints and at-most-once row visits.
			wantInts := map[int64]bool{}
			for _, v := range refDistinct(lref, rref, want, "lt.s") {
				wantInts[v.AsInt()] = true
			}
			gotInts := map[int64]bool{}
			if err := db.ScanAttrInts(q, "lt.s", func(v int64) { gotInts[v] = true }); err != nil {
				t.Fatal(err)
			}
			if !eqInt64Sets(gotInts, wantInts) {
				t.Fatalf("seed %d q %d: ScanAttrInts mismatch (%s)", seed, qi, where)
			}
			wantRows := map[int]bool{}
			for _, p := range want {
				if v, ok := refGetOne(lref, lref.rows[p[0]], "lt.s"); ok && !v.IsNull() {
					wantRows[p[0]] = true
				}
			}
			gotRows := map[int]bool{}
			if err := db.ScanAttrRows(q, "lt.s", func(lid int, _ int64) {
				if gotRows[lid] {
					t.Fatalf("seed %d q %d: ScanAttrRows visited row %d twice", seed, qi, lid)
				}
				gotRows[lid] = true
			}); err != nil {
				t.Fatal(err)
			}
			if len(gotRows) != len(wantRows) {
				t.Fatalf("seed %d q %d: ScanAttrRows rows = %d, want %d (%s)",
					seed, qi, len(gotRows), len(wantRows), where)
			}
			for lid := range wantRows {
				if !gotRows[lid] {
					t.Fatalf("seed %d q %d: ScanAttrRows missed row %d (%s)", seed, qi, lid, where)
				}
			}
		}
	}
}

func refGroupCount(left, right *refTable, pairs [][2]int, attr string) map[string]int {
	out := map[string]int{}
	for _, p := range pairs {
		row := refRow{left: left, lrow: left.rows[p[0]]}
		if p[1] >= 0 {
			row.right, row.rrow, row.hasRight = right, right.rows[p[1]], true
		}
		v, ok := row.Get(attr)
		if !ok || v.IsNull() {
			continue
		}
		out[v.Key()]++
	}
	return out
}

func eqGroups(got []GroupCount, want map[string]int) bool {
	if len(got) != len(want) {
		return false
	}
	for _, g := range got {
		if want[g.Key.Key()] != g.Count {
			return false
		}
	}
	return true
}

func eqInt64Sets(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
