package relstore

import "sync/atomic"

// StoreCounters is the write-path observability surface: lock-free counters
// the relstore increments as the sustained-stream machinery runs. One
// instance is attached per DB (WithStoreCounters); the stream bench
// snapshots it into the BENCH_*.json record so a throughput number can be
// attributed to batching, and a staleness spike to log overflow. The
// metrics package re-exports the type (metrics.StoreCounters) so the
// serving tier's counters all surface in one place.
type StoreCounters struct {
	// GroupCommitBatches counts commit-queue drain rounds: each is one
	// exclusive-lock acquisition, one epoch bump, and one zone-repair pass
	// applied on behalf of GroupCommitOps queued writers.
	GroupCommitBatches atomic.Int64
	// GroupCommitOps counts mutations committed through the queue. The mean
	// batch size GroupCommitOps/GroupCommitBatches is the amortization the
	// group-commit path buys over serial lock-per-op.
	GroupCommitOps atomic.Int64
	// LogOverflows counts change-log trims: the oldest half of a table's
	// log was dropped, so any delta consumer still behind the trim point
	// will be forced into a full rebuild. A stream that sizes the log with
	// WithChangeLogCap should keep this at zero.
	LogOverflows atomic.Int64
	// Compactions counts threshold-triggered tombstone compactions (row-id
	// remaps published to derived caches).
	Compactions atomic.Int64
	// JoinRepairs counts join existence-vector/CSR patches applied from the
	// change log instead of an O(n) rebuild.
	JoinRepairs atomic.Int64
	// JoinRebuilds counts full join-plumbing rebuilds: first builds plus
	// the loud fallbacks (log overflow, oversized patch set, compaction).
	JoinRebuilds atomic.Int64
}

// StoreSnapshot is a plain-value copy of the counters for JSON records.
type StoreSnapshot struct {
	GroupCommitBatches int64 `json:"group_commit_batches"`
	GroupCommitOps     int64 `json:"group_commit_ops"`
	LogOverflows       int64 `json:"log_overflows"`
	Compactions        int64 `json:"compactions"`
	JoinRepairs        int64 `json:"join_repairs"`
	JoinRebuilds       int64 `json:"join_rebuilds"`
}

// Snapshot reads every counter once (individually atomic, collectively
// approximate under concurrent writers).
func (c *StoreCounters) Snapshot() StoreSnapshot {
	return StoreSnapshot{
		GroupCommitBatches: c.GroupCommitBatches.Load(),
		GroupCommitOps:     c.GroupCommitOps.Load(),
		LogOverflows:       c.LogOverflows.Load(),
		Compactions:        c.Compactions.Load(),
		JoinRepairs:        c.JoinRepairs.Load(),
		JoinRebuilds:       c.JoinRebuilds.Load(),
	}
}
