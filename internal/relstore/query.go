package relstore

import (
	"fmt"
	"sort"

	"hypre/internal/predicate"
)

// JoinSpec describes an inner equi-join against a second table:
// From.LeftCol = Table.RightCol.
type JoinSpec struct {
	Table    string
	LeftCol  string
	RightCol string
}

// Query is a SELECT over one table, optionally equi-joined with a second,
// filtered by Where, truncated at Limit rows (0 = unlimited). This covers
// every query the dissertation's algorithms issue.
type Query struct {
	From  string
	Join  *JoinSpec
	Where predicate.Predicate
	Limit int
}

// JoinedRow is a (possibly joined) result row. It implements predicate.Row;
// qualified attributes resolve against the owning table, bare names resolve
// left-first.
type JoinedRow struct {
	Left     RowRef
	Right    RowRef
	HasRight bool
}

// Get implements predicate.Row.
func (j JoinedRow) Get(attr string) (predicate.Value, bool) {
	if v, ok := j.Left.Get(attr); ok {
		return v, true
	}
	if j.HasRight {
		return j.Right.Get(attr)
	}
	return predicate.Null(), false
}

// Select runs the query and returns matching rows.
func (db *DB) Select(q Query) ([]JoinedRow, error) {
	var out []JoinedRow
	err := db.scan(q, func(r JoinedRow) bool {
		out = append(out, r)
		return q.Limit <= 0 || len(out) < q.Limit
	})
	return out, err
}

// Count runs the query and returns the number of matching rows.
func (db *DB) Count(q Query) (int, error) {
	n := 0
	err := db.scan(q, func(JoinedRow) bool {
		n++
		return q.Limit <= 0 || n < q.Limit
	})
	return n, err
}

// CountDistinct returns COUNT(DISTINCT attr) over the query result — the
// shape of every counting query in Chapter 5 (count(distinct dblp.pid)).
func (db *DB) CountDistinct(q Query, attr string) (int, error) {
	vals, err := db.DistinctValues(q, attr)
	return len(vals), err
}

// DistinctValues returns the distinct non-NULL values of attr over the query
// result, in first-seen order. The similarity/overlap metrics and coverage
// computation consume these sets.
func (db *DB) DistinctValues(q Query, attr string) ([]predicate.Value, error) {
	seen := make(map[predicate.Value]struct{})
	var out []predicate.Value
	err := db.scanAttr(q, attr, func(v predicate.Value) bool {
		k := indexKey(v)
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, v)
		}
		return q.Limit <= 0 || len(out) < q.Limit
	})
	return out, err
}

// DistinctInts returns the distinct non-NULL values of an integer attribute
// (the tuple-id collection query behind every predicate-set
// materialization), deduplicated without per-value key allocation. Values
// are widened with AsInt, matching DistinctValues followed by AsInt on each
// element.
func (db *DB) DistinctInts(q Query, attr string) ([]int64, error) {
	seen := make(map[int64]struct{})
	var out []int64
	err := db.scanAttr(q, attr, func(v predicate.Value) bool {
		i := v.AsInt()
		if _, dup := seen[i]; !dup {
			seen[i] = struct{}{}
			out = append(out, i)
		}
		return q.Limit <= 0 || len(out) < q.Limit
	})
	return out, err
}

// scanAttr streams the non-NULL values of attr for every matching row,
// resolving the attribute to a (side, column) slot once instead of per row.
func (db *DB) scanAttr(q Query, attr string, emit func(predicate.Value) bool) error {
	left := db.Table(q.From)
	if left == nil {
		return fmt.Errorf("relstore: unknown table %q", q.From)
	}
	var right *Table
	if q.Join != nil {
		right = db.Table(q.Join.Table)
	}
	side, pos := bindAttr(attr, left, right)
	return db.scanIDs(q, func(lid, rid int, hasRight bool) bool {
		var v predicate.Value
		switch {
		case side == sideLeft:
			v = left.rows[lid][pos]
		case side == sideRight && hasRight:
			v = right.rows[rid][pos]
		default:
			return true
		}
		if v.IsNull() {
			return true
		}
		return emit(v)
	})
}

// scan drives query execution, invoking emit for each matching row until
// emit returns false or rows are exhausted.
func (db *DB) scan(q Query, emit func(JoinedRow) bool) error {
	left := db.Table(q.From)
	var right *Table
	if q.Join != nil && left != nil {
		right = db.Table(q.Join.Table)
	}
	return db.scanIDs(q, func(lid, rid int, hasRight bool) bool {
		row := JoinedRow{Left: left.Row(lid)}
		if hasRight {
			row.Right = right.Row(rid)
			row.HasRight = true
		}
		return emit(row)
	})
}

// scanIDs is the row-id core of query execution: it streams the (left,
// right) row-id pairs that satisfy the query. The WHERE tree is compiled
// once into a closure over raw row slices (no per-row attribute-name
// resolution), and the access path is chosen among: left-index candidates,
// right-index candidates walked through the join (for predicates that only
// constrain the joined table, e.g. dblp_author.aid=6), and a full left
// scan.
func (db *DB) scanIDs(q Query, emit func(lid, rid int, hasRight bool) bool) error {
	left := db.Table(q.From)
	if left == nil {
		return fmt.Errorf("relstore: unknown table %q", q.From)
	}
	where := q.Where
	if where == nil {
		where = predicate.True{}
	}

	var right *Table
	var leftPos, rightPos int
	if q.Join != nil {
		right = db.Table(q.Join.Table)
		if right == nil {
			return fmt.Errorf("relstore: unknown join table %q", q.Join.Table)
		}
		leftPos = left.ColumnIndex(q.Join.LeftCol)
		rightPos = right.ColumnIndex(q.Join.RightCol)
		if leftPos < 0 {
			return fmt.Errorf("relstore: %s has no column %q", q.From, q.Join.LeftCol)
		}
		if rightPos < 0 {
			return fmt.Errorf("relstore: %s has no column %q", q.Join.Table, q.Join.RightCol)
		}
		if _, ok := right.indexes[rightPos]; !ok {
			if err := right.BuildIndex(q.Join.RightCol); err != nil {
				return err
			}
		}
	}

	filter, compiled := compileFilter(where, left, right)
	match := func(lid, rid int, hasRight bool) bool {
		if compiled {
			var rrow []predicate.Value
			if hasRight {
				rrow = right.rows[rid]
			}
			return filter(left.rows[lid], rrow)
		}
		row := JoinedRow{Left: left.Row(lid)}
		if hasRight {
			row.Right = right.Row(rid)
			row.HasRight = true
		}
		return where.Eval(row)
	}

	emitLeft := func(lid int) bool {
		if right == nil {
			if match(lid, 0, false) {
				return emit(lid, 0, false)
			}
			return true
		}
		ids, _ := right.lookup(rightPos, left.rows[lid][leftPos])
		for _, rid := range ids {
			if match(lid, rid, true) {
				if !emit(lid, rid, true) {
					return false
				}
			}
		}
		return true
	}

	if leftIDs, ok := candidateIDs(left, where); ok {
		for _, lid := range leftIDs {
			if !emitLeft(lid) {
				return nil
			}
		}
		return nil
	}

	// Right-driven path: the predicate constrains only the joined table
	// (no usable left index), but a right index narrows the right rows;
	// walk them back through the join via the left join-column index.
	// Candidates must come from attributes that actually *evaluate*
	// against the right table (bindAttr, which resolves bare names
	// left-first like JoinedRow.Get) — resolveColumn alone would happily
	// match a bare name that both tables carry, under-approximating the
	// result set.
	if right != nil {
		if rightIDs, ok := rightCandidateIDs(left, right, where); ok {
			if _, ok := left.indexes[leftPos]; !ok {
				if err := left.BuildIndex(q.Join.LeftCol); err != nil {
					return err
				}
			}
			for _, rid := range rightIDs {
				lids, _ := left.lookup(leftPos, right.rows[rid][rightPos])
				for _, lid := range lids {
					if match(lid, rid, true) {
						if !emit(lid, rid, true) {
							return nil
						}
					}
				}
			}
			return nil
		}
	}

	for lid := range left.rows {
		if !emitLeft(lid) {
			return nil
		}
	}
	return nil
}

// attrSide tags which table a bound attribute lives in.
type attrSide uint8

const (
	sideNone attrSide = iota
	sideLeft
	sideRight
)

// bindAttr resolves an attribute reference to a (side, column position)
// slot, mirroring JoinedRow.Get's semantics exactly: qualified names bind
// to the named table only, bare names bind left-first. sideNone means the
// attribute resolves on neither side (lookups on it always miss).
func bindAttr(attr string, left, right *Table) (attrSide, int) {
	if tbl, col, ok := splitQualified(attr); ok {
		if tbl == left.schema.Name {
			if pos := left.ColumnIndex(col); pos >= 0 {
				return sideLeft, pos
			}
			return sideNone, 0
		}
		if right != nil && tbl == right.schema.Name {
			if pos := right.ColumnIndex(col); pos >= 0 {
				return sideRight, pos
			}
		}
		return sideNone, 0
	}
	if pos := left.ColumnIndex(attr); pos >= 0 {
		return sideLeft, pos
	}
	if right != nil {
		if pos := right.ColumnIndex(attr); pos >= 0 {
			return sideRight, pos
		}
	}
	return sideNone, 0
}

// rowFilter evaluates a compiled predicate over raw row slices (rrow is
// nil for unjoined rows).
type rowFilter func(lrow, rrow []predicate.Value) bool

// compileFilter lowers a predicate tree to a closure tree with every
// attribute pre-resolved to a row slot. Returns ok=false for node types it
// does not know, in which case the caller falls back to Predicate.Eval.
// The compiled form replicates Eval's collapsed three-valued logic:
// comparisons against NULL or unresolvable attributes are false.
func compileFilter(p predicate.Predicate, left, right *Table) (rowFilter, bool) {
	switch node := p.(type) {
	case predicate.True:
		return func(_, _ []predicate.Value) bool { return true }, true
	case *predicate.Cmp:
		side, pos := bindAttr(node.Attr, left, right)
		if side == sideNone {
			return func(_, _ []predicate.Value) bool { return false }, true
		}
		op, val := node.Op, node.Val
		return func(lrow, rrow []predicate.Value) bool {
			v, ok := slotValue(side, pos, lrow, rrow)
			if !ok || v.IsNull() {
				return false
			}
			r, ok := predicate.Compare(v, val)
			if !ok {
				return false
			}
			switch op {
			case predicate.OpEq:
				return r == 0
			case predicate.OpNe:
				return r != 0
			case predicate.OpLt:
				return r < 0
			case predicate.OpLe:
				return r <= 0
			case predicate.OpGt:
				return r > 0
			case predicate.OpGe:
				return r >= 0
			default:
				return false
			}
		}, true
	case *predicate.Between:
		side, pos := bindAttr(node.Attr, left, right)
		if side == sideNone {
			return func(_, _ []predicate.Value) bool { return false }, true
		}
		lo, hi := node.Lo, node.Hi
		return func(lrow, rrow []predicate.Value) bool {
			v, ok := slotValue(side, pos, lrow, rrow)
			if !ok || v.IsNull() {
				return false
			}
			cl, ok1 := predicate.Compare(v, lo)
			ch, ok2 := predicate.Compare(v, hi)
			return ok1 && ok2 && cl >= 0 && ch <= 0
		}, true
	case *predicate.In:
		side, pos := bindAttr(node.Attr, left, right)
		if side == sideNone {
			return func(_, _ []predicate.Value) bool { return false }, true
		}
		vals := node.Vals
		return func(lrow, rrow []predicate.Value) bool {
			v, ok := slotValue(side, pos, lrow, rrow)
			if !ok || v.IsNull() {
				return false
			}
			for _, w := range vals {
				if v.Equal(w) {
					return true
				}
			}
			return false
		}, true
	case *predicate.Not:
		kid, ok := compileFilter(node.Kid, left, right)
		if !ok {
			return nil, false
		}
		return func(lrow, rrow []predicate.Value) bool { return !kid(lrow, rrow) }, true
	case *predicate.And:
		kids, ok := compileKids(node.Kids, left, right)
		if !ok {
			return nil, false
		}
		return func(lrow, rrow []predicate.Value) bool {
			for _, k := range kids {
				if !k(lrow, rrow) {
					return false
				}
			}
			return true
		}, true
	case *predicate.Or:
		kids, ok := compileKids(node.Kids, left, right)
		if !ok {
			return nil, false
		}
		return func(lrow, rrow []predicate.Value) bool {
			for _, k := range kids {
				if k(lrow, rrow) {
					return true
				}
			}
			return false
		}, true
	default:
		return nil, false
	}
}

func compileKids(ps []predicate.Predicate, left, right *Table) ([]rowFilter, bool) {
	out := make([]rowFilter, len(ps))
	for i, p := range ps {
		k, ok := compileFilter(p, left, right)
		if !ok {
			return nil, false
		}
		out[i] = k
	}
	return out, true
}

func slotValue(side attrSide, pos int, lrow, rrow []predicate.Value) (predicate.Value, bool) {
	if side == sideLeft {
		return lrow[pos], true
	}
	if rrow == nil {
		return predicate.Null(), false
	}
	return rrow[pos], true
}

// candidateIDs inspects the predicate for index-usable equality conditions
// on t's columns and, if any are found, returns a superset of the matching
// row ids (sorted, deduplicated). The full predicate is still evaluated per
// row afterwards, so over-approximation is safe; under-approximation is not.
func candidateIDs(t *Table, p predicate.Predicate) ([]int, bool) {
	return candidateIDsResolve(t, p, func(attr string) int {
		return resolveColumn(t, attr)
	})
}

// rightCandidateIDs is candidateIDs for the joined table, resolving
// attributes exactly as evaluation does (bare names bind left-first), so a
// bare column name both tables carry never yields right-table candidates
// for a predicate that semantically filters the left table.
func rightCandidateIDs(left, right *Table, p predicate.Predicate) ([]int, bool) {
	return candidateIDsResolve(right, p, func(attr string) int {
		if side, pos := bindAttr(attr, left, right); side == sideRight {
			return pos
		}
		return -1
	})
}

func candidateIDsResolve(t *Table, p predicate.Predicate, resolve func(string) int) ([]int, bool) {
	switch node := p.(type) {
	case *predicate.Cmp:
		if node.Op != predicate.OpEq {
			return nil, false
		}
		pos := resolve(node.Attr)
		if pos < 0 {
			return nil, false
		}
		ids, ok := t.lookup(pos, node.Val)
		return ids, ok
	case *predicate.In:
		pos := resolve(node.Attr)
		if pos < 0 {
			return nil, false
		}
		if _, ok := t.indexes[pos]; !ok {
			return nil, false
		}
		var all []int
		for _, v := range node.Vals {
			ids, _ := t.lookup(pos, v)
			all = append(all, ids...)
		}
		return dedupeIDs(all), true
	case *predicate.And:
		// Any single conjunct's candidates are a valid superset of the AND.
		best := []int(nil)
		found := false
		for _, k := range node.Kids {
			if ids, ok := candidateIDsResolve(t, k, resolve); ok {
				if !found || len(ids) < len(best) {
					best, found = ids, true
				}
			}
		}
		return best, found
	case *predicate.Or:
		// All disjuncts must be index-usable for the union to be a superset.
		var all []int
		for _, k := range node.Kids {
			ids, ok := candidateIDsResolve(t, k, resolve)
			if !ok {
				return nil, false
			}
			all = append(all, ids...)
		}
		return dedupeIDs(all), true
	default:
		return nil, false
	}
}

// resolveColumn maps an attribute reference (bare or table-qualified) to a
// column position in t, or -1 when the attribute belongs to another table.
func resolveColumn(t *Table, attr string) int {
	if tbl, col, ok := splitQualified(attr); ok {
		if tbl != t.schema.Name {
			return -1
		}
		return t.ColumnIndex(col)
	}
	return t.ColumnIndex(attr)
}

func dedupeIDs(ids []int) []int {
	if len(ids) <= 1 {
		return ids
	}
	sort.Ints(ids)
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
