package relstore

import (
	"fmt"
	"sort"

	"hypre/internal/predicate"
)

// JoinSpec describes an inner equi-join against a second table:
// From.LeftCol = Table.RightCol.
type JoinSpec struct {
	Table    string
	LeftCol  string
	RightCol string
}

// Query is a SELECT over one table, optionally equi-joined with a second,
// filtered by Where, truncated at Limit rows (0 = unlimited). This covers
// every query the dissertation's algorithms issue.
type Query struct {
	From  string
	Join  *JoinSpec
	Where predicate.Predicate
	Limit int
}

// JoinedRow is a (possibly joined) result row. It implements predicate.Row;
// qualified attributes resolve against the owning table, bare names resolve
// left-first.
type JoinedRow struct {
	Left     RowRef
	Right    RowRef
	HasRight bool
}

// Get implements predicate.Row.
func (j JoinedRow) Get(attr string) (predicate.Value, bool) {
	if v, ok := j.Left.Get(attr); ok {
		return v, true
	}
	if j.HasRight {
		return j.Right.Get(attr)
	}
	return predicate.Null(), false
}

// Select runs the query and returns matching rows.
func (db *DB) Select(q Query) ([]JoinedRow, error) {
	var out []JoinedRow
	err := db.scan(q, func(r JoinedRow) bool {
		out = append(out, r)
		return q.Limit <= 0 || len(out) < q.Limit
	})
	return out, err
}

// Count runs the query and returns the number of matching rows.
func (db *DB) Count(q Query) (int, error) {
	n := 0
	err := db.scan(q, func(JoinedRow) bool {
		n++
		return q.Limit <= 0 || n < q.Limit
	})
	return n, err
}

// CountDistinct returns COUNT(DISTINCT attr) over the query result — the
// shape of every counting query in Chapter 5 (count(distinct dblp.pid)).
func (db *DB) CountDistinct(q Query, attr string) (int, error) {
	seen := make(map[string]struct{})
	err := db.scan(q, func(r JoinedRow) bool {
		if v, ok := r.Get(attr); ok && !v.IsNull() {
			seen[v.Key()] = struct{}{}
		}
		return q.Limit <= 0 || len(seen) < q.Limit
	})
	return len(seen), err
}

// DistinctValues returns the distinct non-NULL values of attr over the query
// result, in first-seen order. The similarity/overlap metrics and coverage
// computation consume these sets.
func (db *DB) DistinctValues(q Query, attr string) ([]predicate.Value, error) {
	seen := make(map[string]struct{})
	var out []predicate.Value
	err := db.scan(q, func(r JoinedRow) bool {
		if v, ok := r.Get(attr); ok && !v.IsNull() {
			k := v.Key()
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, v)
			}
		}
		return q.Limit <= 0 || len(out) < q.Limit
	})
	return out, err
}

// scan drives query execution, invoking emit for each matching row until
// emit returns false or rows are exhausted.
func (db *DB) scan(q Query, emit func(JoinedRow) bool) error {
	left := db.Table(q.From)
	if left == nil {
		return fmt.Errorf("relstore: unknown table %q", q.From)
	}
	where := q.Where
	if where == nil {
		where = predicate.True{}
	}

	var right *Table
	var leftPos, rightPos int
	if q.Join != nil {
		right = db.Table(q.Join.Table)
		if right == nil {
			return fmt.Errorf("relstore: unknown join table %q", q.Join.Table)
		}
		leftPos = left.ColumnIndex(q.Join.LeftCol)
		rightPos = right.ColumnIndex(q.Join.RightCol)
		if leftPos < 0 {
			return fmt.Errorf("relstore: %s has no column %q", q.From, q.Join.LeftCol)
		}
		if rightPos < 0 {
			return fmt.Errorf("relstore: %s has no column %q", q.Join.Table, q.Join.RightCol)
		}
		if _, ok := right.indexes[rightPos]; !ok {
			if err := right.BuildIndex(q.Join.RightCol); err != nil {
				return err
			}
		}
	}

	leftIDs, usedIndex := candidateIDs(left, where)
	emitLeft := func(id int) bool {
		lr := left.Row(id)
		if right == nil {
			row := JoinedRow{Left: lr}
			if where.Eval(row) {
				return emit(row)
			}
			return true
		}
		ids, _ := right.lookup(rightPos, left.rows[id][leftPos])
		for _, rid := range ids {
			row := JoinedRow{Left: lr, Right: right.Row(rid), HasRight: true}
			if where.Eval(row) {
				if !emit(row) {
					return false
				}
			}
		}
		return true
	}

	if usedIndex {
		for _, id := range leftIDs {
			if !emitLeft(id) {
				return nil
			}
		}
		return nil
	}
	for id := range left.rows {
		if !emitLeft(id) {
			return nil
		}
	}
	return nil
}

// candidateIDs inspects the predicate for index-usable equality conditions
// on t's columns and, if any are found, returns a superset of the matching
// row ids (sorted, deduplicated). The full predicate is still evaluated per
// row afterwards, so over-approximation is safe; under-approximation is not.
func candidateIDs(t *Table, p predicate.Predicate) ([]int, bool) {
	switch node := p.(type) {
	case *predicate.Cmp:
		if node.Op != predicate.OpEq {
			return nil, false
		}
		pos := resolveColumn(t, node.Attr)
		if pos < 0 {
			return nil, false
		}
		ids, ok := t.lookup(pos, node.Val)
		return ids, ok
	case *predicate.In:
		pos := resolveColumn(t, node.Attr)
		if pos < 0 {
			return nil, false
		}
		if _, ok := t.indexes[pos]; !ok {
			return nil, false
		}
		var all []int
		for _, v := range node.Vals {
			ids, _ := t.lookup(pos, v)
			all = append(all, ids...)
		}
		return dedupeIDs(all), true
	case *predicate.And:
		// Any single conjunct's candidates are a valid superset of the AND.
		best := []int(nil)
		found := false
		for _, k := range node.Kids {
			if ids, ok := candidateIDs(t, k); ok {
				if !found || len(ids) < len(best) {
					best, found = ids, true
				}
			}
		}
		return best, found
	case *predicate.Or:
		// All disjuncts must be index-usable for the union to be a superset.
		var all []int
		for _, k := range node.Kids {
			ids, ok := candidateIDs(t, k)
			if !ok {
				return nil, false
			}
			all = append(all, ids...)
		}
		return dedupeIDs(all), true
	default:
		return nil, false
	}
}

// resolveColumn maps an attribute reference (bare or table-qualified) to a
// column position in t, or -1 when the attribute belongs to another table.
func resolveColumn(t *Table, attr string) int {
	if tbl, col, ok := splitQualified(attr); ok {
		if tbl != t.schema.Name {
			return -1
		}
		return t.ColumnIndex(col)
	}
	return t.ColumnIndex(attr)
}

func dedupeIDs(ids []int) []int {
	if len(ids) <= 1 {
		return ids
	}
	sort.Ints(ids)
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
