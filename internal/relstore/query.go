package relstore

import (
	"fmt"
	"math"
	"sort"

	"hypre/internal/bitset"
	"hypre/internal/predicate"
)

// JoinSpec describes an inner equi-join against a second table:
// From.LeftCol = Table.RightCol.
type JoinSpec struct {
	Table    string
	LeftCol  string
	RightCol string
}

// Query is a SELECT over one table, optionally equi-joined with a second,
// filtered by Where, truncated at Limit rows (0 = unlimited). This covers
// every query the dissertation's algorithms issue.
type Query struct {
	From  string
	Join  *JoinSpec
	Where predicate.Predicate
	Limit int
}

// JoinedRow is a (possibly joined) result row. It implements predicate.Row;
// qualified attributes resolve against the owning table, bare names resolve
// left-first.
type JoinedRow struct {
	Left     RowRef
	Right    RowRef
	HasRight bool
}

// Get implements predicate.Row.
func (j JoinedRow) Get(attr string) (predicate.Value, bool) {
	if v, ok := j.Left.Get(attr); ok {
		return v, true
	}
	if j.HasRight {
		return j.Right.Get(attr)
	}
	return predicate.Null(), false
}

// Select runs the query and returns matching rows.
func (db *DB) Select(q Query) ([]JoinedRow, error) {
	var out []JoinedRow
	err := db.scan(q, func(r JoinedRow) bool {
		out = append(out, r)
		return q.Limit <= 0 || len(out) < q.Limit
	})
	return out, err
}

// Count runs the query and returns the number of matching rows.
func (db *DB) Count(q Query) (int, error) {
	n := 0
	err := db.scan(q, func(JoinedRow) bool {
		n++
		return q.Limit <= 0 || n < q.Limit
	})
	return n, err
}

// CountDistinct returns COUNT(DISTINCT attr) over the query result — the
// shape of every counting query in Chapter 5 (count(distinct dblp.pid)).
func (db *DB) CountDistinct(q Query, attr string) (int, error) {
	vals, err := db.DistinctValues(q, attr)
	return len(vals), err
}

// DistinctValues returns the distinct non-NULL values of attr over the query
// result, in first-seen order. The similarity/overlap metrics and coverage
// computation consume these sets.
func (db *DB) DistinctValues(q Query, attr string) ([]predicate.Value, error) {
	seen := make(map[predicate.Value]struct{})
	var out []predicate.Value
	err := db.scanAttr(q, attr, func(v predicate.Value) bool {
		k := indexKey(v)
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, v)
		}
		return q.Limit <= 0 || len(out) < q.Limit
	})
	return out, err
}

// DistinctInts returns the distinct non-NULL values of an integer attribute
// (the tuple-id collection query behind every predicate-set
// materialization), deduplicated without per-value key allocation. Values
// are widened with AsInt, matching DistinctValues followed by AsInt on each
// element.
func (db *DB) DistinctInts(q Query, attr string) ([]int64, error) {
	seen := make(map[int64]struct{})
	var out []int64
	err := db.scanAttr(q, attr, func(v predicate.Value) bool {
		i := v.AsInt()
		if _, dup := seen[i]; !dup {
			seen[i] = struct{}{}
			out = append(out, i)
		}
		return q.Limit <= 0 || len(out) < q.Limit
	})
	return out, err
}

// ScanAttrInts is the bulk materialization scan: it streams the integer
// widening of a non-NULL left-table attribute for the rows matching q,
// visiting each left row at most once no matter how many join partners it
// has. Values may repeat only when distinct left rows share one (and never
// for a key column like dblp.pid), so set-building callers dedupe — the
// evaluator's bitmap does it for free. Queries with a Limit or a non-left
// attribute fall back to the exact DistinctInts semantics.
func (db *DB) ScanAttrInts(q Query, attr string, emit func(int64)) error {
	left := db.Table(q.From)
	if left == nil {
		return fmt.Errorf("relstore: unknown table %q", q.From)
	}
	var right *Table
	if q.Join != nil {
		right = db.Table(q.Join.Table)
	}
	if q.Limit <= 0 {
		if side, _ := bindAttr(attr, left, right); side == sideLeft {
			return db.ScanAttrRows(q, attr, func(_ int, v int64) { emit(v) })
		}
	}
	seen := make(map[int64]struct{})
	cnt := 0
	return db.scanAttr(q, attr, func(v predicate.Value) bool {
		i := v.AsInt()
		if _, dup := seen[i]; !dup {
			seen[i] = struct{}{}
			emit(i)
			cnt++
		}
		return q.Limit <= 0 || cnt < q.Limit
	})
}

// ScanAttrRows is ScanAttrInts with the matching left row id alongside each
// value, so a caller that has precomputed a per-row mapping (the evaluator's
// row→dense-index remap) can skip value hashing entirely. attr must bind to
// the left table and q.Limit must be 0. Each matching left row is emitted
// exactly once (ascending on the vectorized path), rows whose attr is NULL
// are skipped. When the WHERE tree splits into single-side conjuncts, the
// scan is fully vectorized: one kernel pass per side with zone-map pruning,
// stitched through the join-column index, with no per-row predicate
// interpretation and no intermediate id slices.
func (db *DB) ScanAttrRows(q Query, attr string, emit func(lid int, v int64)) error {
	left, right, leftPos, rightPos, pos, where, err := db.resolveAttrRowScan(q, attr)
	if err != nil {
		return err
	}
	unlock := lockShared(left, right)
	defer unlock()
	if db.scanAttrRowsVec(left, right, leftPos, rightPos, pos, where, emit) {
		return nil
	}
	// Row-at-a-time fallback, deduped by left row id.
	seen := make([]uint64, selWords(left.Len()))
	c := left.cols[pos]
	return db.scanIDsLocked(q, left, right, leftPos, rightPos, func(lid, _ int, _ bool) bool {
		w, m := lid>>6, uint64(1)<<(uint(lid)&63)
		if seen[w]&m != 0 {
			return true
		}
		seen[w] |= m
		if v, ok := c.intAt(lid); ok {
			emit(lid, v)
		}
		return true
	})
}

// scanAttrRowsVec is the vectorized core of ScanAttrRows. It reports false
// when the query shape defeats vectorization (non-conjunctive cross-side
// predicates, unknown node types), in which case the caller falls back.
// Callers hold the state locks of both tables.
func (db *DB) scanAttrRowsVec(left, right *Table, leftPos, rightPos, attrPos int,
	where predicate.Predicate, emit func(lid int, v int64)) bool {
	lsel, ok := db.matchLeftVec(left, right, leftPos, rightPos, where, nil)
	if !ok {
		return false
	}
	emitSelRows(left, attrPos, lsel, emit)
	return true
}

// resolveAttrRowScan is the shared prologue of ScanAttrRows and
// ScanAttrRowSet: table/join resolution, the left-bound-attribute and
// no-Limit constraints, and WHERE defaulting.
func (db *DB) resolveAttrRowScan(q Query, attr string) (left, right *Table,
	leftPos, rightPos, attrPos int, where predicate.Predicate, err error) {
	left = db.Table(q.From)
	if left == nil {
		return nil, nil, 0, 0, 0, nil, fmt.Errorf("relstore: unknown table %q", q.From)
	}
	if q.Join != nil {
		right, leftPos, rightPos, err = db.resolveJoin(q)
		if err != nil {
			return nil, nil, 0, 0, 0, nil, err
		}
	}
	side, pos := bindAttr(attr, left, right)
	if side != sideLeft {
		return nil, nil, 0, 0, 0, nil, fmt.Errorf("relstore: attr-row scans need a left-table attribute, got %q", attr)
	}
	if q.Limit > 0 {
		return nil, nil, 0, 0, 0, nil, fmt.Errorf("relstore: attr-row scans do not support Limit")
	}
	where = q.Where
	if where == nil {
		where = predicate.True{}
	}
	return left, right, leftPos, rightPos, pos, where, nil
}

// ScanAttrRowSet is the set-valued fast path of ScanAttrRows: the
// compressed selection of left rows matching the query whose attr is
// non-NULL-convertible, with no per-row emission — the consumer keeps the
// container bitmap the vectorized scan already produced instead of paying
// a decompress/recompress round trip. Same constraints as ScanAttrRows
// (left-bound integer attr, no Limit); ok=false means the query shape
// defeats the vectorized engine and the caller must fall back to
// ScanAttrRows.
//
// Rows at or beyond splitAt are excluded from the selection and instead
// passed to spill with their attr value, read under the scan's shared
// state lock — the same one-consistent-epoch guarantee ScanAttrRows's
// emission has. splitAt < 0 disables spilling (the whole selection
// returns). The evaluator uses this to collect pids of rows inserted
// after its seed without a second, differently-timed store read.
func (db *DB) ScanAttrRowSet(q Query, attr string, splitAt int, spill func(lid int, v int64)) (*bitset.Set, bool, error) {
	left, right, leftPos, rightPos, pos, where, err := db.resolveAttrRowScan(q, attr)
	if err != nil {
		return nil, false, err
	}
	unlock := lockShared(left, right)
	defer unlock()
	lsel, ok := db.matchLeftVec(left, right, leftPos, rightPos, where, nil)
	if !ok {
		return nil, false, nil
	}
	attrRowSetTail(left, pos, lsel, splitAt, spill)
	return lsel, true, nil
}

// attrRowSetTail is the shared epilogue of ScanAttrRowSet and
// ScanAttrRowSetParts: drop rows whose attr does not convert (the rows
// ScanAttrRows would not have emitted) — one typed probe per selected row,
// skipped entirely for fully convertible columns (every key column) — then
// split off rows at or beyond splitAt through spill (splitAt < 0 disables).
func attrRowSetTail(left *Table, pos int, lsel *bitset.Set, splitAt int, spill func(lid int, v int64)) {
	c := left.cols[pos]
	if c.nNoInt > 0 {
		lsel.Retain(func(lid int) bool {
			_, ok := c.intAt(lid)
			return ok
		})
	}
	if splitAt >= 0 {
		if m, has := lsel.Max(); has && m >= splitAt {
			for lid, lok := lsel.NextSet(splitAt); lok; lid, lok = lsel.NextSet(lid + 1) {
				if v, vok := c.intAt(lid); vok {
					spill(lid, v)
				}
			}
			lsel.Retain(func(lid int) bool { return lid < splitAt })
		}
	}
}

// matchLeftVec computes the selection of live left rows satisfying the
// (possibly joined) WHERE, entirely through the vectorized kernels.
//
// touched (nil for a full scan) switches the delta mode: left-side kernels
// run only over the blocks containing touched rows, the result is masked to
// touched, and — critically — the join is answered with O(|touched|)
// per-row index probes instead of the cached existence vector and
// right→left CSR. A mutation batch invalidates those O(n)-to-rebuild
// structures; the delta path must not pay their repair just to re-evaluate
// a handful of rows (the next full scan repairs them lazily instead).
// Callers hold the state locks of both tables.
func (db *DB) matchLeftVec(left, right *Table, leftPos, rightPos int,
	where predicate.Predicate, touched *bitset.Set) (*bitset.Set, bool) {
	var blks []int32
	var rows []int32
	if touched != nil {
		blks = blocksOf(touched, left.n)
		rows = rowsOf(touched, left.n)
	}
	// evalL evaluates a left-side predicate over the touched restriction:
	// at the touched rows themselves when they are sparse in their blocks
	// (the per-sync delta regime — cost tracks the batch, not the table),
	// through the block kernels otherwise.
	evalL := func(p predicate.Predicate, resolve func(string) int) (*bitset.Set, bool) {
		if rows != nil && len(rows) < rowEvalMaxPerBlock*len(blks) {
			if sel, ok := left.evalRows(p, resolve, rows); ok {
				return sel, true
			}
		}
		return left.evalVec(p, resolve, blks)
	}
	resolveL := func(a string) int {
		if side, p := bindAttr(a, left, right); side == sideLeft {
			return p
		}
		return -1
	}
	if right == nil {
		sel, ok := evalL(where, resolveL)
		if !ok {
			return nil, false
		}
		if touched != nil {
			sel.AndWith(touched)
		}
		left.selDropDead(sel)
		return sel, true
	}

	// Split the conjunction by side: each conjunct must read only one
	// table's columns for its kernel to run against that table alone.
	var leftParts, rightParts []predicate.Predicate
	for _, c := range flattenAnd(where) {
		side, ok := classifySide(c, left, right)
		if !ok {
			return nil, false
		}
		if side == sideRight {
			rightParts = append(rightParts, c)
		} else {
			leftParts = append(leftParts, c)
		}
	}
	var lsel *bitset.Set
	if len(leftParts) > 0 {
		var ok bool
		lsel, ok = evalL(predicate.NewAnd(leftParts...), resolveL)
		if !ok {
			return nil, false
		}
	}
	if len(rightParts) == 0 {
		if lsel == nil {
			lsel = fullSelection(left.n)
		}
		if touched != nil {
			// Delta mode: the join only demands existence for the touched
			// rows, so probe the right index per row instead of repairing
			// the O(n) existence vector.
			lsel.AndWith(touched)
			left.selDropDead(lsel)
			rightIdx := right.ensureIndex(rightPos)
			lc := left.cols[leftPos]
			dropUnpartnered(lsel, func(lid int) bool {
				for _, rid := range rightIdx[indexKey(lc.value(lid))] {
					if !right.isDead(rid) {
						return true
					}
				}
				return false
			})
			return lsel, true
		}
		// The join only demands existence: AND with the cached selection of
		// left rows that have at least one partner (dead rows on either
		// side are already excluded from the cached selection).
		lsel.AndWith(left.existsVec(right, leftPos, rightPos))
	} else {
		rightPred := predicate.NewAnd(rightParts...)
		if touched != nil {
			// Delta mode: instead of walking every right row the predicate
			// matches (O(degree) for a popular join key) and stitching back
			// through the stale CSR, probe each touched row's few join
			// partners directly — O(|touched| × fanout), independent of the
			// table sizes.
			rf, okc := compileIDFilter(rightPred, left, right)
			if !okc {
				return nil, false
			}
			if lsel == nil {
				lsel = fullSelection(left.n)
			}
			lsel.AndWith(touched)
			left.selDropDead(lsel)
			rightIdx := right.ensureIndex(rightPos)
			lc := left.cols[leftPos]
			dropUnpartnered(lsel, func(lid int) bool {
				for _, rid := range rightIdx[indexKey(lc.value(lid))] {
					if !right.isDead(rid) && rf(lid, rid, true) {
						return true
					}
				}
				return false
			})
			return lsel, true
		}

		// Walk the matching right rows back through the join via the cached
		// right→left CSR: every left row they reach is a hit, then
		// intersect with the left selection.
		hit := bitset.New()
		je := left.joinEntry(right, leftPos, rightPos)
		stitch := func(rid int) {
			for _, lid := range je.partners(rid) {
				hit.Add(int(lid))
			}
		}
		// Index-usable right predicates (the ubiquitous dblp_author.aid=N)
		// touch only their candidate rows; everything else gets one
		// vectorized pass over the right table.
		if rids, ok := rightCandidateIDs(left, right, rightPred); ok {
			rf, okc := compileIDFilter(rightPred, left, right)
			if !okc {
				return nil, false
			}
			for _, rid := range rids {
				if !right.isDead(rid) && rf(0, rid, true) {
					stitch(rid)
				}
			}
		} else {
			resolveR := func(a string) int {
				if side, p := bindAttr(a, left, right); side == sideRight {
					return p
				}
				return -1
			}
			rsel, ok := right.evalVec(rightPred, resolveR, nil)
			if !ok {
				return nil, false
			}
			right.selDropDead(rsel)
			rsel.ForEach(func(rid int) bool {
				stitch(rid)
				return true
			})
		}
		if lsel == nil {
			lsel = hit
		} else {
			lsel.AndWith(hit)
		}
	}
	left.selDropDead(lsel)
	return lsel, true
}

func emitSelRows(t *Table, pos int, sel *bitset.Set, emit func(lid int, v int64)) {
	c := t.cols[pos]
	sel.ForEach(func(lid int) bool {
		if v, ok := c.intAt(lid); ok {
			emit(lid, v)
		}
		return true
	})
}

// flattenAnd returns the conjuncts of p (p itself when it is not an AND).
func flattenAnd(p predicate.Predicate) []predicate.Predicate {
	a, ok := p.(*predicate.And)
	if !ok {
		return []predicate.Predicate{p}
	}
	var out []predicate.Predicate
	for _, k := range a.Kids {
		out = append(out, flattenAnd(k)...)
	}
	return out
}

// classifySide reports which single table's columns a predicate subtree
// reads: sideLeft (including attribute-free and unresolvable-only subtrees,
// whose leaves are constant under either table) or sideRight. ok=false
// means the subtree mixes both sides.
func classifySide(p predicate.Predicate, left, right *Table) (attrSide, bool) {
	hasL, hasR := false, false
	for _, a := range p.Attributes(nil) {
		switch side, _ := bindAttr(a, left, right); side {
		case sideLeft:
			hasL = true
		case sideRight:
			hasR = true
		}
	}
	if hasL && hasR {
		return sideNone, false
	}
	if hasR {
		return sideRight, true
	}
	return sideLeft, true
}

// PrepareQuery eagerly builds the lazy access structures the query's scans
// use (join-column hash indexes and the join-existence vector), so that a
// following parallel materialization phase takes only read paths.
func (db *DB) PrepareQuery(q Query) error {
	left := db.Table(q.From)
	if left == nil {
		return fmt.Errorf("relstore: unknown table %q", q.From)
	}
	if q.Join == nil {
		return nil
	}
	right, leftPos, rightPos, err := db.resolveJoin(q)
	if err != nil {
		return err
	}
	unlock := lockShared(left, right)
	defer unlock()
	right.ensureIndex(rightPos)
	left.ensureIndex(leftPos)
	left.existsVec(right, leftPos, rightPos)
	return nil
}

// MatchLeftRowSet reports which of the given left rows currently satisfy
// the query: touched is a compressed selection over left row ids, and the
// result is a fresh selection ⊆ touched holding exactly the live touched
// rows the query matches (for a join, rows with at least one matching
// partner). This is the delta-maintenance primitive: after a mutation
// batch, each cached predicate re-evaluates only the touched rows — through
// the vectorized kernels restricted to the touched rows' blocks when the
// WHERE splits by side, through the compiled per-row filter otherwise —
// instead of rescanning the table. touched is never mutated.
func (db *DB) MatchLeftRowSet(q Query, touched *bitset.Set) (*bitset.Set, error) {
	left := db.Table(q.From)
	if left == nil {
		return nil, fmt.Errorf("relstore: unknown table %q", q.From)
	}
	if q.Limit > 0 {
		return nil, fmt.Errorf("relstore: MatchLeftRows does not support Limit")
	}
	var right *Table
	var leftPos, rightPos int
	if q.Join != nil {
		var err error
		right, leftPos, rightPos, err = db.resolveJoin(q)
		if err != nil {
			return nil, err
		}
	}
	where := q.Where
	if where == nil {
		where = predicate.True{}
	}
	unlock := lockShared(left, right)
	defer unlock()

	if touched.IsEmpty() {
		return bitset.New(), nil
	}
	if sel, ok := db.matchLeftVec(left, right, leftPos, rightPos, where, touched); ok {
		sel.AndWith(touched)
		return sel, nil
	}

	// Per-row fallback: the compiled typed filter when the tree compiles,
	// boxed Predicate.Eval otherwise.
	filter, compiled := compileIDFilter(where, left, right)
	match := func(lid, rid int, hasRight bool) bool {
		if compiled {
			return filter(lid, rid, hasRight)
		}
		row := JoinedRow{Left: left.Row(lid)}
		if hasRight {
			row.Right = right.Row(rid)
			row.HasRight = true
		}
		return where.Eval(row)
	}
	var rightIdx hashIndex
	if right != nil {
		rightIdx = right.ensureIndex(rightPos)
	}
	out := bitset.New()
	touched.ForEach(func(lid int) bool {
		if lid >= left.n {
			return false // touched bits are ascending; nothing left in range
		}
		if left.isDead(lid) {
			return true
		}
		if right == nil {
			if match(lid, 0, false) {
				out.Add(lid)
			}
			return true
		}
		for _, rid := range rightIdx[indexKey(left.cols[leftPos].value(lid))] {
			if !right.isDead(rid) && match(lid, rid, true) {
				out.Add(lid)
				break
			}
		}
		return true
	})
	return out, nil
}

// MatchLeftRows is MatchLeftRowSet over dense word-slice selections (bit
// lid of touched[lid>>6]) — the compatibility bridge for callers still
// speaking raw selection vectors.
func (db *DB) MatchLeftRows(q Query, touched []uint64) ([]uint64, error) {
	left := db.Table(q.From)
	if left == nil {
		return nil, fmt.Errorf("relstore: unknown table %q", q.From)
	}
	out, err := db.MatchLeftRowSet(q, bitset.FromWords(touched))
	if err != nil {
		return nil, err
	}
	return out.ToWords(selWords(left.Len())), nil
}

// LookupRowIDs returns the live row ids of table whose column equals v,
// through the column's hash index (built on first use). Equality follows
// indexKey semantics (integral floats collapse onto ints). The delta layer
// uses it to map a join-table change back to the base rows partnered with
// the changed key.
func (db *DB) LookupRowIDs(table, col string, v predicate.Value) ([]int, error) {
	t := db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("relstore: unknown table %q", table)
	}
	pos := t.ColumnIndex(col)
	if pos < 0 {
		return nil, fmt.Errorf("relstore: %s has no column %q", table, col)
	}
	t.state.RLock()
	defer t.state.RUnlock()
	idx := t.ensureIndex(pos)
	var out []int
	for _, id := range idx[indexKey(v)] {
		if !t.isDead(id) {
			out = append(out, id)
		}
	}
	return out, nil
}

// resolveJoin validates the join spec and resolves its column positions.
func (db *DB) resolveJoin(q Query) (right *Table, leftPos, rightPos int, err error) {
	left := db.Table(q.From)
	right = db.Table(q.Join.Table)
	if right == nil {
		return nil, 0, 0, fmt.Errorf("relstore: unknown join table %q", q.Join.Table)
	}
	leftPos = left.ColumnIndex(q.Join.LeftCol)
	rightPos = right.ColumnIndex(q.Join.RightCol)
	if leftPos < 0 {
		return nil, 0, 0, fmt.Errorf("relstore: %s has no column %q", q.From, q.Join.LeftCol)
	}
	if rightPos < 0 {
		return nil, 0, 0, fmt.Errorf("relstore: %s has no column %q", q.Join.Table, q.Join.RightCol)
	}
	return right, leftPos, rightPos, nil
}

// scanAttr streams the non-NULL values of attr for every matching row,
// resolving the attribute to a (side, column) slot once instead of per row.
func (db *DB) scanAttr(q Query, attr string, emit func(predicate.Value) bool) error {
	left := db.Table(q.From)
	if left == nil {
		return fmt.Errorf("relstore: unknown table %q", q.From)
	}
	var right *Table
	if q.Join != nil {
		right = db.Table(q.Join.Table)
	}
	side, pos := bindAttr(attr, left, right)
	return db.scanIDs(q, func(lid, rid int, hasRight bool) bool {
		var v predicate.Value
		switch {
		case side == sideLeft:
			v = left.cols[pos].value(lid)
		case side == sideRight && hasRight:
			v = right.cols[pos].value(rid)
		default:
			return true
		}
		if v.IsNull() {
			return true
		}
		return emit(v)
	})
}

// scan drives query execution, invoking emit for each matching row until
// emit returns false or rows are exhausted.
func (db *DB) scan(q Query, emit func(JoinedRow) bool) error {
	left := db.Table(q.From)
	var right *Table
	if q.Join != nil && left != nil {
		right = db.Table(q.Join.Table)
	}
	return db.scanIDs(q, func(lid, rid int, hasRight bool) bool {
		row := JoinedRow{Left: left.Row(lid)}
		if hasRight {
			row.Right = right.Row(rid)
			row.HasRight = true
		}
		return emit(row)
	})
}

// scanIDs resolves the query's tables, takes their shared data locks for
// the scan's duration (one consistent epoch per table), and runs the
// locked core.
func (db *DB) scanIDs(q Query, emit func(lid, rid int, hasRight bool) bool) error {
	left := db.Table(q.From)
	if left == nil {
		return fmt.Errorf("relstore: unknown table %q", q.From)
	}
	var right *Table
	var leftPos, rightPos int
	if q.Join != nil {
		var err error
		right, leftPos, rightPos, err = db.resolveJoin(q)
		if err != nil {
			return err
		}
	}
	unlock := lockShared(left, right)
	defer unlock()
	return db.scanIDsLocked(q, left, right, leftPos, rightPos, emit)
}

// scanIDsLocked is the row-id core of query execution: it streams the (left,
// right) row-id pairs that satisfy the query. The WHERE tree is compiled
// once into typed closures over the column vectors (no per-row
// attribute-name resolution or Value boxing), and the access path is chosen
// among: left-index candidates, a vectorized full scan when the tree reads
// only left columns, right-index candidates walked through the join (for
// predicates that only constrain the joined table, e.g. dblp_author.aid=6),
// and a full left scan. Tombstoned rows never reach emit. Callers hold the
// state locks of both tables.
func (db *DB) scanIDsLocked(q Query, left, right *Table, leftPos, rightPos int,
	emit func(lid, rid int, hasRight bool) bool) error {
	where := q.Where
	if where == nil {
		where = predicate.True{}
	}
	var rightIdx hashIndex
	if right != nil {
		rightIdx = right.ensureIndex(rightPos)
	}

	filter, compiled := compileIDFilter(where, left, right)
	match := func(lid, rid int, hasRight bool) bool {
		if compiled {
			return filter(lid, rid, hasRight)
		}
		row := JoinedRow{Left: left.Row(lid)}
		if hasRight {
			row.Right = right.Row(rid)
			row.HasRight = true
		}
		return where.Eval(row)
	}

	emitLeft := func(lid int) bool {
		if left.isDead(lid) {
			return true
		}
		if right == nil {
			if match(lid, 0, false) {
				return emit(lid, 0, false)
			}
			return true
		}
		rids := rightIdx[indexKey(left.cols[leftPos].value(lid))]
		for _, rid := range rids {
			if right.isDead(rid) {
				continue
			}
			if match(lid, rid, true) {
				if !emit(lid, rid, true) {
					return false
				}
			}
		}
		return true
	}

	if leftIDs, ok := candidateIDs(left, where); ok {
		for _, lid := range leftIDs {
			if !emitLeft(lid) {
				return nil
			}
		}
		return nil
	}

	// Vectorized full scan: when the WHERE tree reads only left columns,
	// one kernel pass computes the whole left selection; selected rows emit
	// their join partners (if any) with no per-row re-evaluation.
	if side, ok := classifySide(where, left, right); ok && side == sideLeft && compiled {
		if sel, ok := left.evalVec(where, func(a string) int {
			if s, p := bindAttr(a, left, right); s == sideLeft {
				return p
			}
			return -1
		}, nil); ok {
			left.selDropDead(sel)
			sel.ForEach(func(lid int) bool {
				if right == nil {
					return emit(lid, 0, false)
				}
				for _, rid := range rightIdx[indexKey(left.cols[leftPos].value(lid))] {
					if right.isDead(rid) {
						continue
					}
					if !emit(lid, rid, true) {
						return false
					}
				}
				return true
			})
			return nil
		}
	}

	// Right-driven path: the predicate constrains only the joined table
	// (no usable left index), but a right index narrows the right rows;
	// walk them back through the join via the left join-column index.
	// Candidates must come from attributes that actually *evaluate*
	// against the right table (bindAttr, which resolves bare names
	// left-first like JoinedRow.Get) — resolveColumn alone would happily
	// match a bare name that both tables carry, under-approximating the
	// result set.
	if right != nil {
		if rightIDs, ok := rightCandidateIDs(left, right, where); ok {
			lidx := left.ensureIndex(leftPos)
			for _, rid := range rightIDs {
				if right.isDead(rid) {
					continue
				}
				lids := lidx[indexKey(right.cols[rightPos].value(rid))]
				for _, lid := range lids {
					if left.isDead(lid) {
						continue
					}
					if match(lid, rid, true) {
						if !emit(lid, rid, true) {
							return nil
						}
					}
				}
			}
			return nil
		}
	}

	for lid := 0; lid < left.n; lid++ {
		if !emitLeft(lid) {
			return nil
		}
	}
	return nil
}

// attrSide tags which table a bound attribute lives in.
type attrSide uint8

const (
	sideNone attrSide = iota
	sideLeft
	sideRight
)

// bindAttr resolves an attribute reference to a (side, column position)
// slot, mirroring JoinedRow.Get's semantics exactly: qualified names bind
// to the named table only, bare names bind left-first. sideNone means the
// attribute resolves on neither side (lookups on it always miss).
func bindAttr(attr string, left, right *Table) (attrSide, int) {
	if tbl, col, ok := splitQualified(attr); ok {
		if tbl == left.schema.Name {
			if pos := left.ColumnIndex(col); pos >= 0 {
				return sideLeft, pos
			}
			return sideNone, 0
		}
		if right != nil && tbl == right.schema.Name {
			if pos := right.ColumnIndex(col); pos >= 0 {
				return sideRight, pos
			}
		}
		return sideNone, 0
	}
	if pos := left.ColumnIndex(attr); pos >= 0 {
		return sideLeft, pos
	}
	if right != nil {
		if pos := right.ColumnIndex(attr); pos >= 0 {
			return sideRight, pos
		}
	}
	return sideNone, 0
}

// idFilter evaluates a compiled predicate over (left row id, right row id)
// pairs; hasRight is false for unjoined rows.
type idFilter func(lid, rid int, hasRight bool) bool

// compileIDFilter lowers a predicate tree to a closure tree with every
// attribute pre-resolved to a typed column and every literal pre-analyzed,
// so per-row evaluation touches the column vectors directly with no Value
// boxing. Returns ok=false for node types it does not know, in which case
// the caller falls back to Predicate.Eval. The compiled form replicates
// Eval's collapsed three-valued logic: comparisons against NULL or
// unresolvable attributes are false.
func compileIDFilter(p predicate.Predicate, left, right *Table) (idFilter, bool) {
	alwaysFalse := func(int, int, bool) bool { return false }
	switch node := p.(type) {
	case predicate.True:
		return func(int, int, bool) bool { return true }, true
	case *predicate.Cmp:
		side, pos := bindAttr(node.Attr, left, right)
		if side == sideNone {
			return alwaysFalse, true
		}
		op, lit := node.Op, analyzeLit(node.Val)
		if side == sideLeft {
			c := left.cols[pos]
			return func(lid, _ int, _ bool) bool {
				c3, ok := c.cmp3At(lid, lit)
				return ok && opMatch(c3, op)
			}, true
		}
		c := right.cols[pos]
		return func(_, rid int, hasRight bool) bool {
			if !hasRight {
				return false
			}
			c3, ok := c.cmp3At(rid, lit)
			return ok && opMatch(c3, op)
		}, true
	case *predicate.Between:
		side, pos := bindAttr(node.Attr, left, right)
		if side == sideNone {
			return alwaysFalse, true
		}
		lo, hi := analyzeLit(node.Lo), analyzeLit(node.Hi)
		check := func(c *column, row int) bool {
			cl, ok1 := c.cmp3At(row, lo)
			ch, ok2 := c.cmp3At(row, hi)
			return ok1 && ok2 && cl >= 0 && ch <= 0
		}
		if side == sideLeft {
			c := left.cols[pos]
			return func(lid, _ int, _ bool) bool { return check(c, lid) }, true
		}
		c := right.cols[pos]
		return func(_, rid int, hasRight bool) bool { return hasRight && check(c, rid) }, true
	case *predicate.In:
		side, pos := bindAttr(node.Attr, left, right)
		if side == sideNone {
			return alwaysFalse, true
		}
		lits := make([]litVal, len(node.Vals))
		for i, v := range node.Vals {
			lits[i] = analyzeLit(v)
		}
		check := func(c *column, row int) bool {
			for _, lv := range lits {
				if c3, ok := c.cmp3At(row, lv); ok && c3 == 0 {
					return true
				}
			}
			return false
		}
		if side == sideLeft {
			c := left.cols[pos]
			return func(lid, _ int, _ bool) bool { return check(c, lid) }, true
		}
		c := right.cols[pos]
		return func(_, rid int, hasRight bool) bool { return hasRight && check(c, rid) }, true
	case *predicate.Not:
		kid, ok := compileIDFilter(node.Kid, left, right)
		if !ok {
			return nil, false
		}
		return func(lid, rid int, hasRight bool) bool { return !kid(lid, rid, hasRight) }, true
	case *predicate.And:
		kids, ok := compileIDKids(node.Kids, left, right)
		if !ok {
			return nil, false
		}
		return func(lid, rid int, hasRight bool) bool {
			for _, k := range kids {
				if !k(lid, rid, hasRight) {
					return false
				}
			}
			return true
		}, true
	case *predicate.Or:
		kids, ok := compileIDKids(node.Kids, left, right)
		if !ok {
			return nil, false
		}
		return func(lid, rid int, hasRight bool) bool {
			for _, k := range kids {
				if k(lid, rid, hasRight) {
					return true
				}
			}
			return false
		}, true
	default:
		return nil, false
	}
}

func compileIDKids(ps []predicate.Predicate, left, right *Table) ([]idFilter, bool) {
	out := make([]idFilter, len(ps))
	for i, p := range ps {
		k, ok := compileIDFilter(p, left, right)
		if !ok {
			return nil, false
		}
		out[i] = k
	}
	return out, true
}

// candidateIDs inspects the predicate for index-usable equality conditions
// on t's columns and, if any are found, returns a superset of the matching
// row ids (sorted, deduplicated). The full predicate is still evaluated per
// row afterwards, so over-approximation is safe; under-approximation is not.
func candidateIDs(t *Table, p predicate.Predicate) ([]int, bool) {
	return candidateIDsResolve(t, p, func(attr string) int {
		return resolveColumn(t, attr)
	})
}

// rightCandidateIDs is candidateIDs for the joined table, resolving
// attributes exactly as evaluation does (bare names bind left-first), so a
// bare column name both tables carry never yields right-table candidates
// for a predicate that semantically filters the left table.
func rightCandidateIDs(left, right *Table, p predicate.Predicate) ([]int, bool) {
	return candidateIDsResolve(right, p, func(attr string) int {
		if side, pos := bindAttr(attr, left, right); side == sideRight {
			return pos
		}
		return -1
	})
}

func candidateIDsResolve(t *Table, p predicate.Predicate, resolve func(string) int) ([]int, bool) {
	switch node := p.(type) {
	case *predicate.Cmp:
		if node.Op != predicate.OpEq {
			return nil, false
		}
		pos := resolve(node.Attr)
		if pos < 0 || !indexUsable(t, pos, node.Val) {
			return nil, false
		}
		ids, ok := t.lookup(pos, node.Val)
		return ids, ok
	case *predicate.In:
		pos := resolve(node.Attr)
		if pos < 0 {
			return nil, false
		}
		if _, ok := t.indexFor(pos); !ok {
			return nil, false
		}
		var all []int
		for _, v := range node.Vals {
			if !indexUsable(t, pos, v) {
				return nil, false
			}
			ids, _ := t.lookup(pos, v)
			all = append(all, ids...)
		}
		return dedupeIDs(all), true
	case *predicate.And:
		// Any single conjunct's candidates are a valid superset of the AND.
		best := []int(nil)
		found := false
		for _, k := range node.Kids {
			if ids, ok := candidateIDsResolve(t, k, resolve); ok {
				if !found || len(ids) < len(best) {
					best, found = ids, true
				}
			}
		}
		return best, found
	case *predicate.Or:
		// All disjuncts must be index-usable for the union to be a superset.
		var all []int
		for _, k := range node.Kids {
			ids, ok := candidateIDsResolve(t, k, resolve)
			if !ok {
				return nil, false
			}
			all = append(all, ids...)
		}
		return dedupeIDs(all), true
	default:
		return nil, false
	}
}

// indexUsable reports whether hash-index equality on (column pos, literal)
// reproduces Compare's equality. NaN breaks it from both sides: a NaN
// literal "equals" every number but hashes to an unreachable key, and NaN
// rows "equal" every numeric literal but live under unreachable keys.
func indexUsable(t *Table, pos int, lit predicate.Value) bool {
	if lit.Kind() == predicate.KindFloat && math.IsNaN(lit.AsFloat()) {
		return false
	}
	return !t.cols[pos].anyNaN()
}

// resolveColumn maps an attribute reference (bare or table-qualified) to a
// column position in t, or -1 when the attribute belongs to another table.
func resolveColumn(t *Table, attr string) int {
	if tbl, col, ok := splitQualified(attr); ok {
		if tbl != t.schema.Name {
			return -1
		}
		return t.ColumnIndex(col)
	}
	return t.ColumnIndex(attr)
}

func dedupeIDs(ids []int) []int {
	if len(ids) <= 1 {
		return ids
	}
	sort.Ints(ids)
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
