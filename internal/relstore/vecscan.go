package relstore

import (
	"hypre/internal/bitset"
	"hypre/internal/predicate"
)

// This file is the vectorized half of the engine: predicates evaluate one
// column block at a time into adaptive compressed selections (bitset.Set:
// per-64k-key containers that are sorted arrays when sparse, truncated
// word vectors when dense, and runs when range-shaped). Kernels emit
// through a bitset.Builder, so a selective scan never materializes the full
// domain in words, and a zone-map bulk-accept lands as a run container.
// AND/OR/NOT compose selections with container-level set algebra, so a
// whole WHERE tree costs a handful of tight typed loops instead of one
// interpreted predicate walk per row.

// selSink is the output surface of the vectorized kernels: bitset.Builder
// for full materialized selections and bitset.Block for the streaming
// one-block-at-a-time path. The kernels are generic (monomorphized per
// sink), so the materialized hot path keeps its direct Builder calls with no
// interface dispatch.
type selSink interface {
	Set(i int)
	SetRange(lo, hi int)
}

// selWords returns the number of 64-bit words covering n rows — the sizing
// helper for the dense []uint64 compatibility bridges.
func selWords(n int) int { return (n + 63) / 64 }

// selSet sets bit i of a dense word-slice selection (the bridge format
// MatchLeftRows still accepts).
func selSet(sel []uint64, i int) { sel[i>>6] |= 1 << (uint(i) & 63) }

// fullSelection returns the selection of every row id in [0, n) — one run
// container per 64k span.
func fullSelection(n int) *bitset.Set {
	s := bitset.New()
	s.AddRange(0, n)
	return s
}

// selDropDead subtracts t's tombstones from a root-level selection; no-op
// when the table has no dead rows. (Leaves cannot subtract tombstones
// themselves: a NOT above them would resurrect the dead rows.)
func (t *Table) selDropDead(sel *bitset.Set) {
	if t.nDead > 0 {
		sel.AndNotWith(t.dead)
	}
}

// dropUnpartnered clears every set bit whose row fails the probe — the
// delta-mode join-existence test, one index probe per surviving row.
func dropUnpartnered(sel *bitset.Set, hasPartner func(lid int) bool) {
	sel.Retain(hasPartner)
}

// blocksOf lists the (ascending) block indexes containing at least one set
// bit of sel — the restriction list that lets delta maintenance re-evaluate
// only the touched rows' blocks through the vectorized kernels. NextSet
// jumps from block boundary to block boundary, so the walk costs one
// container probe per populated block instead of one step per set bit.
func blocksOf(sel *bitset.Set, n int) []int32 {
	var out []int32
	for i, ok := sel.NextSet(0); ok && i < n; i, ok = sel.NextSet(i) {
		bi := i / blockSize
		out = append(out, int32(bi))
		i = (bi + 1) * blockSize
	}
	return out
}

// evalVec evaluates a predicate over every row of t as a compressed
// selection. resolve maps attribute references to column positions; -1
// means the attribute does not bind to this table, which makes the leaf
// constant false — exactly the collapsed three-valued semantics of the row
// filter. ok=false means the tree contains a node the vectorized engine
// does not know; callers fall back to the row-at-a-time scan.
//
// blks restricts the kernels to the listed blocks (nil = all): leaves fill
// only those blocks' spans, the set algebra runs over whatever landed, and
// bits outside the listed blocks are unspecified — callers that restrict
// MUST mask the result with their touched-row selection. This is the
// delta-maintenance path: after a mutation batch only the touched blocks
// re-run, not the table.
func (t *Table) evalVec(p predicate.Predicate, resolve func(string) int, blks []int32) (*bitset.Set, bool) {
	switch node := p.(type) {
	case predicate.True:
		return fullSelection(t.n), true
	case *predicate.Cmp:
		b := bitset.NewBuilder(t.n)
		if pos := resolve(node.Attr); pos >= 0 {
			scanCmp(t, pos, node.Op, node.Val, b, blks)
		}
		return b.Finish(), true
	case *predicate.Between:
		b := bitset.NewBuilder(t.n)
		if pos := resolve(node.Attr); pos >= 0 {
			scanBetween(t, pos, node.Lo, node.Hi, b, blks)
		}
		return b.Finish(), true
	case *predicate.In:
		b := bitset.NewBuilder(t.n)
		if pos := resolve(node.Attr); pos >= 0 {
			scanIn(t, pos, node.Vals, b, blks)
		}
		return b.Finish(), true
	case *predicate.Not:
		sel, ok := t.evalVec(node.Kid, resolve, blks)
		if !ok {
			return nil, false
		}
		sel.Not(t.n)
		return sel, true
	case *predicate.And:
		var acc *bitset.Set
		for _, k := range node.Kids {
			sel, ok := t.evalVec(k, resolve, blks)
			if !ok {
				return nil, false
			}
			if acc == nil {
				acc = sel
			} else {
				acc.AndWith(sel)
			}
			if acc.IsEmpty() {
				return acc, true
			}
		}
		if acc == nil { // empty conjunction is TRUE
			acc = fullSelection(t.n)
		}
		return acc, true
	case *predicate.Or:
		acc := bitset.New()
		for _, k := range node.Kids {
			sel, ok := t.evalVec(k, resolve, blks)
			if !ok {
				return nil, false
			}
			acc.OrWith(sel)
		}
		return acc, true
	default:
		return nil, false
	}
}

// blockAt maps kernel iteration k to a block index: identity when blks is
// nil (full scan), the k-th listed block otherwise.
func blockAt(blks []int32, k int) int {
	if blks == nil {
		return k
	}
	return int(blks[k])
}

// blockIters returns the kernel iteration count for a column under an
// optional block restriction.
func blockIters(c *column, blks []int32) int {
	if blks == nil {
		return len(c.zones)
	}
	return len(blks)
}

// scanCmp is the vectorized kernel for Attr Op Literal: per block it applies
// the zone-map test, then either skips, bulk-accepts, or runs the tight
// typed row loop. NULL literals match nothing (Compare against NULL fails).
func scanCmp[S selSink](t *Table, pos int, op predicate.Op, val predicate.Value, sel S, blks []int32) {
	c := t.cols[pos]
	lit := analyzeLit(val)
	switch {
	case lit.isNum:
		scanCmpNum(t, c, op, lit.f, sel, blks)
	case lit.isStr:
		scanCmpStr(t, c, op, lit.s, sel, blks)
	}
}

func scanCmpNum[S selSink](t *Table, c *column, op predicate.Op, lit float64, sel S, blks []int32) {
	for k, nk := 0, blockIters(c, blks); k < nk; k++ {
		bi := blockAt(blks, k)
		z := &c.zones[bi]
		lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
		if !z.hasNum {
			continue
		}
		if !z.hasNaN {
			if zoneSkipCmp(z, op, lit) {
				continue
			}
			if z.pureNum() && zoneFullCmp(z, op, lit) {
				sel.SetRange(lo, hi)
				continue
			}
		}
		if z.pureInt() {
			nums := c.nums[lo:hi]
			for i, u := range nums {
				if opMatch(cmp3f(float64(int64(u)), lit), op) {
					sel.Set(lo + i)
				}
			}
			continue
		}
		for r := lo; r < hi; r++ {
			if v, ok := c.numAt(r); ok && opMatch(cmp3f(v, lit), op) {
				sel.Set(r)
			}
		}
	}
}

// zoneSkipCmp reports that no numeric row of the block can match (valid only
// when the block has no NaN, which would "equal" everything).
func zoneSkipCmp(z *zone, op predicate.Op, lit float64) bool {
	switch op {
	case predicate.OpEq:
		return lit < z.min || lit > z.max
	case predicate.OpNe:
		return z.min == z.max && z.min == lit
	case predicate.OpLt:
		return z.min >= lit
	case predicate.OpLe:
		return z.min > lit
	case predicate.OpGt:
		return z.max <= lit
	case predicate.OpGe:
		return z.max < lit
	default:
		return true
	}
}

// zoneFullCmp reports that every row of a pure-numeric block matches.
func zoneFullCmp(z *zone, op predicate.Op, lit float64) bool {
	switch op {
	case predicate.OpEq:
		return z.min == z.max && z.min == lit
	case predicate.OpNe:
		return lit < z.min || lit > z.max
	case predicate.OpLt:
		return z.max < lit
	case predicate.OpLe:
		return z.max <= lit
	case predicate.OpGt:
		return z.min > lit
	case predicate.OpGe:
		return z.min >= lit
	default:
		return false
	}
}

func scanCmpStr[S selSink](t *Table, c *column, op predicate.Op, lit string, sel S, blks []int32) {
	if op == predicate.OpEq && !c.rawMode {
		// Dictionary equality: one code comparison per row, and a literal
		// absent from the dictionary empties the scan before touching any.
		code, ok := c.dict.code(lit)
		if !ok {
			return
		}
		for k, nk := 0, blockIters(c, blks); k < nk; k++ {
			bi := blockAt(blks, k)
			z := &c.zones[bi]
			if !z.hasStr {
				continue
			}
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			if z.pureStr() {
				codes := c.codes[lo:hi]
				for i, cd := range codes {
					if cd == code {
						sel.Set(lo + i)
					}
				}
				continue
			}
			for r := lo; r < hi; r++ {
				if c.kinds[r] == predicate.KindString && c.codes[r] == code {
					sel.Set(r)
				}
			}
		}
		return
	}
	if op == predicate.OpEq {
		// Raw-mode equality: direct string comparison per string row.
		for k, nk := 0, blockIters(c, blks); k < nk; k++ {
			bi := blockAt(blks, k)
			z := &c.zones[bi]
			if !z.hasStr {
				continue
			}
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			if z.pureStr() {
				raws := c.rawStrs[lo:hi]
				for i, s := range raws {
					if s == lit {
						sel.Set(lo + i)
					}
				}
				continue
			}
			for r := lo; r < hi; r++ {
				if c.kinds[r] == predicate.KindString && c.rawStrs[r] == lit {
					sel.Set(r)
				}
			}
		}
		return
	}
	lv := litVal{isStr: true, s: lit}
	for k, nk := 0, blockIters(c, blks); k < nk; k++ {
		bi := blockAt(blks, k)
		z := &c.zones[bi]
		if !z.hasStr {
			continue
		}
		lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
		for r := lo; r < hi; r++ {
			if c3, ok := c.cmp3At(r, lv); ok && opMatch(c3, op) {
				sel.Set(r)
			}
		}
	}
}

// scanBetween is the kernel for Attr BETWEEN Lo AND Hi. A row matches when
// it is comparable with both bounds and lies inside; bounds of different
// classes (one numeric, one string) can never both compare, so the result
// is empty.
func scanBetween[S selSink](t *Table, pos int, lov, hiv predicate.Value, sel S, blks []int32) {
	c := t.cols[pos]
	llo, lhi := analyzeLit(lov), analyzeLit(hiv)
	switch {
	case llo.isNum && lhi.isNum:
		for k, nk := 0, blockIters(c, blks); k < nk; k++ {
			bi := blockAt(blks, k)
			z := &c.zones[bi]
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			if !z.hasNum {
				continue
			}
			if !z.hasNaN {
				if z.max < llo.f || z.min > lhi.f {
					continue
				}
				if z.pureNum() && z.min >= llo.f && z.max <= lhi.f {
					sel.SetRange(lo, hi)
					continue
				}
			}
			if z.pureInt() {
				nums := c.nums[lo:hi]
				for i, u := range nums {
					v := float64(int64(u))
					if cmp3f(v, llo.f) >= 0 && cmp3f(v, lhi.f) <= 0 {
						sel.Set(lo + i)
					}
				}
				continue
			}
			for r := lo; r < hi; r++ {
				if v, ok := c.numAt(r); ok && cmp3f(v, llo.f) >= 0 && cmp3f(v, lhi.f) <= 0 {
					sel.Set(r)
				}
			}
		}
	case llo.isStr && lhi.isStr:
		for k, nk := 0, blockIters(c, blks); k < nk; k++ {
			bi := blockAt(blks, k)
			z := &c.zones[bi]
			if !z.hasStr {
				continue
			}
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			for r := lo; r < hi; r++ {
				if c.kinds[r] != predicate.KindString {
					continue
				}
				s := c.strAt(r)
				if s >= llo.s && s <= lhi.s {
					sel.Set(r)
				}
			}
		}
	}
}

// scanIn is the kernel for Attr IN (v1, ...): numeric members match by
// widened three-way equality, string members resolve to dictionary codes
// once (absent strings can never match) — or compare raw strings when the
// column has migrated off the dictionary.
func scanIn[S selSink](t *Table, pos int, vals []predicate.Value, sel S, blks []int32) {
	c := t.cols[pos]
	var nums []float64
	var codes []uint32
	var strs []string
	nanVal := false
	for _, v := range vals {
		lv := analyzeLit(v)
		switch {
		case lv.isNum:
			nums = append(nums, lv.f)
			if lv.f != lv.f { // a NaN member "equals" every number
				nanVal = true
			}
		case lv.isStr:
			if c.rawMode {
				strs = append(strs, lv.s)
			} else if code, ok := c.dict.code(lv.s); ok {
				codes = append(codes, code)
			}
		}
	}
	if len(nums) == 0 && len(codes) == 0 && len(strs) == 0 {
		return
	}
	for k, nk := 0, blockIters(c, blks); k < nk; k++ {
		bi := blockAt(blks, k)
		z := &c.zones[bi]
		lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
		if !z.hasNum && !z.hasStr {
			continue
		}
		if !z.hasStr && !z.hasNaN && !nanVal && len(nums) > 0 {
			inRange := false
			for _, f := range nums {
				if f >= z.min && f <= z.max {
					inRange = true
					break
				}
			}
			if !inRange {
				continue
			}
		}
		for r := lo; r < hi; r++ {
			switch c.kinds[r] {
			case predicate.KindInt, predicate.KindFloat:
				v, _ := c.numAt(r)
				for _, f := range nums {
					if cmp3f(v, f) == 0 {
						sel.Set(r)
						break
					}
				}
			case predicate.KindString:
				if c.rawMode {
					s := c.rawStrs[r]
					for _, m := range strs {
						if s == m {
							sel.Set(r)
							break
						}
					}
					continue
				}
				cd := c.codes[r]
				for _, code := range codes {
					if cd == code {
						sel.Set(r)
						break
					}
				}
			}
		}
	}
}
