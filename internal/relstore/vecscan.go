package relstore

import (
	"math/bits"

	"hypre/internal/predicate"
)

// This file is the vectorized half of the engine: predicates evaluate one
// column block at a time into selection bitmaps (one bit per row id, tail
// bits always zero), with zone maps skipping blocks that cannot match and
// bulk-accepting blocks that cannot fail. AND/OR/NOT compose selections with
// word-parallel algebra, so a whole WHERE tree costs a handful of tight
// typed loops instead of one interpreted predicate walk per row.

// selWords returns the number of 64-bit words covering n rows.
func selWords(n int) int { return (n + 63) / 64 }

func selSet(sel []uint64, i int) { sel[i>>6] |= 1 << (uint(i) & 63) }

// selSetRange sets bits [lo, hi).
func selSetRange(sel []uint64, lo, hi int) {
	if lo >= hi {
		return
	}
	lw, hw := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if lw == hw {
		sel[lw] |= loMask & hiMask
		return
	}
	sel[lw] |= loMask
	for w := lw + 1; w < hw; w++ {
		sel[w] = ^uint64(0)
	}
	sel[hw] |= hiMask
}

func selAnd(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

func selOr(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

// selNot complements dst in place, keeping bits >= n zero.
func selNot(dst []uint64, n int) {
	for i := range dst {
		dst[i] = ^dst[i]
	}
	if tail := uint(n) & 63; tail != 0 {
		dst[len(dst)-1] &= ^uint64(0) >> (64 - tail)
	}
}

func selAny(sel []uint64) bool {
	for _, w := range sel {
		if w != 0 {
			return true
		}
	}
	return false
}

// selForEach invokes fn for every set bit in ascending order; fn returning
// false stops the walk.
func selForEach(sel []uint64, fn func(i int) bool) {
	for wi, w := range sel {
		base := wi << 6
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			if !fn(i) {
				return
			}
			w &= w - 1
		}
	}
}

// evalVec evaluates a predicate over every row of t as a selection bitmap.
// resolve maps attribute references to column positions; -1 means the
// attribute does not bind to this table, which makes the leaf constant
// false — exactly the collapsed three-valued semantics of the row filter.
// ok=false means the tree contains a node the vectorized engine does not
// know; callers fall back to the row-at-a-time scan.
func (t *Table) evalVec(p predicate.Predicate, resolve func(string) int) ([]uint64, bool) {
	switch node := p.(type) {
	case predicate.True:
		sel := make([]uint64, selWords(t.n))
		selSetRange(sel, 0, t.n)
		return sel, true
	case *predicate.Cmp:
		sel := make([]uint64, selWords(t.n))
		if pos := resolve(node.Attr); pos >= 0 {
			t.scanCmp(pos, node.Op, node.Val, sel)
		}
		return sel, true
	case *predicate.Between:
		sel := make([]uint64, selWords(t.n))
		if pos := resolve(node.Attr); pos >= 0 {
			t.scanBetween(pos, node.Lo, node.Hi, sel)
		}
		return sel, true
	case *predicate.In:
		sel := make([]uint64, selWords(t.n))
		if pos := resolve(node.Attr); pos >= 0 {
			t.scanIn(pos, node.Vals, sel)
		}
		return sel, true
	case *predicate.Not:
		sel, ok := t.evalVec(node.Kid, resolve)
		if !ok {
			return nil, false
		}
		selNot(sel, t.n)
		return sel, true
	case *predicate.And:
		var acc []uint64
		for _, k := range node.Kids {
			sel, ok := t.evalVec(k, resolve)
			if !ok {
				return nil, false
			}
			if acc == nil {
				acc = sel
			} else {
				selAnd(acc, sel)
			}
			if !selAny(acc) {
				return acc, true
			}
		}
		if acc == nil { // empty conjunction is TRUE
			acc = make([]uint64, selWords(t.n))
			selSetRange(acc, 0, t.n)
		}
		return acc, true
	case *predicate.Or:
		acc := make([]uint64, selWords(t.n))
		for _, k := range node.Kids {
			sel, ok := t.evalVec(k, resolve)
			if !ok {
				return nil, false
			}
			selOr(acc, sel)
		}
		return acc, true
	default:
		return nil, false
	}
}

// scanCmp is the vectorized kernel for Attr Op Literal: per block it applies
// the zone-map test, then either skips, bulk-accepts, or runs the tight
// typed row loop. NULL literals match nothing (Compare against NULL fails).
func (t *Table) scanCmp(pos int, op predicate.Op, val predicate.Value, sel []uint64) {
	c := t.cols[pos]
	lit := analyzeLit(val)
	switch {
	case lit.isNum:
		t.scanCmpNum(c, op, lit.f, sel)
	case lit.isStr:
		t.scanCmpStr(c, op, lit.s, sel)
	}
}

func (t *Table) scanCmpNum(c *column, op predicate.Op, lit float64, sel []uint64) {
	for bi := range c.zones {
		z := &c.zones[bi]
		lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
		if !z.hasNum {
			continue
		}
		if !z.hasNaN {
			if zoneSkipCmp(z, op, lit) {
				continue
			}
			if z.pureNum() && zoneFullCmp(z, op, lit) {
				selSetRange(sel, lo, hi)
				continue
			}
		}
		if z.pureInt() {
			nums := c.nums[lo:hi]
			for i, u := range nums {
				if opMatch(cmp3f(float64(int64(u)), lit), op) {
					selSet(sel, lo+i)
				}
			}
			continue
		}
		for r := lo; r < hi; r++ {
			if v, ok := c.numAt(r); ok && opMatch(cmp3f(v, lit), op) {
				selSet(sel, r)
			}
		}
	}
}

// zoneSkipCmp reports that no numeric row of the block can match (valid only
// when the block has no NaN, which would "equal" everything).
func zoneSkipCmp(z *zone, op predicate.Op, lit float64) bool {
	switch op {
	case predicate.OpEq:
		return lit < z.min || lit > z.max
	case predicate.OpNe:
		return z.min == z.max && z.min == lit
	case predicate.OpLt:
		return z.min >= lit
	case predicate.OpLe:
		return z.min > lit
	case predicate.OpGt:
		return z.max <= lit
	case predicate.OpGe:
		return z.max < lit
	default:
		return true
	}
}

// zoneFullCmp reports that every row of a pure-numeric block matches.
func zoneFullCmp(z *zone, op predicate.Op, lit float64) bool {
	switch op {
	case predicate.OpEq:
		return z.min == z.max && z.min == lit
	case predicate.OpNe:
		return lit < z.min || lit > z.max
	case predicate.OpLt:
		return z.max < lit
	case predicate.OpLe:
		return z.max <= lit
	case predicate.OpGt:
		return z.min > lit
	case predicate.OpGe:
		return z.min >= lit
	default:
		return false
	}
}

func (t *Table) scanCmpStr(c *column, op predicate.Op, lit string, sel []uint64) {
	if op == predicate.OpEq {
		// Dictionary equality: one code comparison per row, and a literal
		// absent from the dictionary empties the scan before touching any.
		code, ok := c.dict.code(lit)
		if !ok {
			return
		}
		for bi := range c.zones {
			z := &c.zones[bi]
			if !z.hasStr {
				continue
			}
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			if z.pureStr() {
				codes := c.codes[lo:hi]
				for i, cd := range codes {
					if cd == code {
						selSet(sel, lo+i)
					}
				}
				continue
			}
			for r := lo; r < hi; r++ {
				if c.kinds[r] == predicate.KindString && c.codes[r] == code {
					selSet(sel, r)
				}
			}
		}
		return
	}
	lv := litVal{isStr: true, s: lit}
	for bi := range c.zones {
		z := &c.zones[bi]
		if !z.hasStr {
			continue
		}
		lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
		for r := lo; r < hi; r++ {
			if c3, ok := c.cmp3At(r, lv); ok && opMatch(c3, op) {
				selSet(sel, r)
			}
		}
	}
}

// scanBetween is the kernel for Attr BETWEEN Lo AND Hi. A row matches when
// it is comparable with both bounds and lies inside; bounds of different
// classes (one numeric, one string) can never both compare, so the result
// is empty.
func (t *Table) scanBetween(pos int, lov, hiv predicate.Value, sel []uint64) {
	c := t.cols[pos]
	llo, lhi := analyzeLit(lov), analyzeLit(hiv)
	switch {
	case llo.isNum && lhi.isNum:
		for bi := range c.zones {
			z := &c.zones[bi]
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			if !z.hasNum {
				continue
			}
			if !z.hasNaN {
				if z.max < llo.f || z.min > lhi.f {
					continue
				}
				if z.pureNum() && z.min >= llo.f && z.max <= lhi.f {
					selSetRange(sel, lo, hi)
					continue
				}
			}
			if z.pureInt() {
				nums := c.nums[lo:hi]
				for i, u := range nums {
					v := float64(int64(u))
					if cmp3f(v, llo.f) >= 0 && cmp3f(v, lhi.f) <= 0 {
						selSet(sel, lo+i)
					}
				}
				continue
			}
			for r := lo; r < hi; r++ {
				if v, ok := c.numAt(r); ok && cmp3f(v, llo.f) >= 0 && cmp3f(v, lhi.f) <= 0 {
					selSet(sel, r)
				}
			}
		}
	case llo.isStr && lhi.isStr:
		for bi := range c.zones {
			z := &c.zones[bi]
			if !z.hasStr {
				continue
			}
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			for r := lo; r < hi; r++ {
				if c.kinds[r] != predicate.KindString {
					continue
				}
				s := c.dict.strs[c.codes[r]]
				if s >= llo.s && s <= lhi.s {
					selSet(sel, r)
				}
			}
		}
	}
}

// scanIn is the kernel for Attr IN (v1, ...): numeric members match by
// widened three-way equality, string members resolve to dictionary codes
// once (absent strings can never match).
func (t *Table) scanIn(pos int, vals []predicate.Value, sel []uint64) {
	c := t.cols[pos]
	var nums []float64
	var codes []uint32
	nanVal := false
	for _, v := range vals {
		lv := analyzeLit(v)
		switch {
		case lv.isNum:
			nums = append(nums, lv.f)
			if lv.f != lv.f { // a NaN member "equals" every number
				nanVal = true
			}
		case lv.isStr:
			if code, ok := c.dict.code(lv.s); ok {
				codes = append(codes, code)
			}
		}
	}
	if len(nums) == 0 && len(codes) == 0 {
		return
	}
	for bi := range c.zones {
		z := &c.zones[bi]
		lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
		if !z.hasNum && !z.hasStr {
			continue
		}
		if !z.hasStr && !z.hasNaN && !nanVal && len(nums) > 0 {
			inRange := false
			for _, f := range nums {
				if f >= z.min && f <= z.max {
					inRange = true
					break
				}
			}
			if !inRange {
				continue
			}
		}
		for r := lo; r < hi; r++ {
			switch c.kinds[r] {
			case predicate.KindInt, predicate.KindFloat:
				v, _ := c.numAt(r)
				for _, f := range nums {
					if cmp3f(v, f) == 0 {
						selSet(sel, r)
						break
					}
				}
			case predicate.KindString:
				cd := c.codes[r]
				for _, code := range codes {
					if cd == code {
						selSet(sel, r)
						break
					}
				}
			}
		}
	}
}

