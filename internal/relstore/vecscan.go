package relstore

import (
	"math/bits"

	"hypre/internal/predicate"
)

// This file is the vectorized half of the engine: predicates evaluate one
// column block at a time into selection bitmaps (one bit per row id, tail
// bits always zero), with zone maps skipping blocks that cannot match and
// bulk-accepting blocks that cannot fail. AND/OR/NOT compose selections with
// word-parallel algebra, so a whole WHERE tree costs a handful of tight
// typed loops instead of one interpreted predicate walk per row.

// selWords returns the number of 64-bit words covering n rows.
func selWords(n int) int { return (n + 63) / 64 }

func selSet(sel []uint64, i int) { sel[i>>6] |= 1 << (uint(i) & 63) }

// selSetRange sets bits [lo, hi).
func selSetRange(sel []uint64, lo, hi int) {
	if lo >= hi {
		return
	}
	lw, hw := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if lw == hw {
		sel[lw] |= loMask & hiMask
		return
	}
	sel[lw] |= loMask
	for w := lw + 1; w < hw; w++ {
		sel[w] = ^uint64(0)
	}
	sel[hw] |= hiMask
}

func selAnd(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

// selAndNot clears from dst every bit set in src — the tombstone subtraction
// every root-level selection pays before rows are emitted. (Leaves cannot
// subtract tombstones themselves: a NOT above them would resurrect the dead
// rows.)
func selAndNot(dst, src []uint64) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] &^= src[i]
	}
}

// selDropDead subtracts t's tombstones from a root-level selection; no-op
// when the table has no dead rows.
func (t *Table) selDropDead(sel []uint64) {
	if t.nDead > 0 {
		selAndNot(sel, t.dead)
	}
}

// selMask is dst &= src with missing src words reading as zero (the mask
// may be shorter than the selection when rows were inserted after the mask
// was built).
func selMask(dst, src []uint64) {
	n := len(src)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] &= src[i]
	}
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// dropUnpartnered clears every set bit whose row fails the probe — the
// delta-mode join-existence test, one index probe per surviving row.
func dropUnpartnered(sel []uint64, hasPartner func(lid int) bool) {
	for wi := range sel {
		w := sel[wi]
		base := wi << 6
		for w != 0 {
			lid := base + bits.TrailingZeros64(w)
			w &= w - 1
			if !hasPartner(lid) {
				sel[wi] &^= 1 << (uint(lid) & 63)
			}
		}
	}
}

// blocksOf lists the (ascending) block indexes containing at least one set
// bit of sel — the restriction list that lets delta maintenance re-evaluate
// only the touched rows' blocks through the vectorized kernels.
func blocksOf(sel []uint64, n int) []int32 {
	var out []int32
	nb := (n + blockSize - 1) / blockSize
	wordsPerBlock := blockSize / 64
	for bi := 0; bi < nb; bi++ {
		lo := bi * wordsPerBlock
		hi := lo + wordsPerBlock
		if hi > len(sel) {
			hi = len(sel)
		}
		for w := lo; w < hi; w++ {
			if sel[w] != 0 {
				out = append(out, int32(bi))
				break
			}
		}
	}
	return out
}

func selOr(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

// selNot complements dst in place, keeping bits >= n zero.
func selNot(dst []uint64, n int) {
	for i := range dst {
		dst[i] = ^dst[i]
	}
	if tail := uint(n) & 63; tail != 0 {
		dst[len(dst)-1] &= ^uint64(0) >> (64 - tail)
	}
}

func selAny(sel []uint64) bool {
	for _, w := range sel {
		if w != 0 {
			return true
		}
	}
	return false
}

// selForEach invokes fn for every set bit in ascending order; fn returning
// false stops the walk.
func selForEach(sel []uint64, fn func(i int) bool) {
	for wi, w := range sel {
		base := wi << 6
		for w != 0 {
			i := base + bits.TrailingZeros64(w)
			if !fn(i) {
				return
			}
			w &= w - 1
		}
	}
}

// evalVec evaluates a predicate over every row of t as a selection bitmap.
// resolve maps attribute references to column positions; -1 means the
// attribute does not bind to this table, which makes the leaf constant
// false — exactly the collapsed three-valued semantics of the row filter.
// ok=false means the tree contains a node the vectorized engine does not
// know; callers fall back to the row-at-a-time scan.
//
// blks restricts the kernels to the listed blocks (nil = all): leaves fill
// only those blocks' words, the boolean algebra runs over full-length word
// arrays, and bits outside the listed blocks are unspecified — callers that
// restrict MUST mask the result with their touched-row selection. This is
// the delta-maintenance path: after a mutation batch only the touched
// blocks re-run, not the table.
func (t *Table) evalVec(p predicate.Predicate, resolve func(string) int, blks []int32) ([]uint64, bool) {
	switch node := p.(type) {
	case predicate.True:
		sel := make([]uint64, selWords(t.n))
		selSetRange(sel, 0, t.n)
		return sel, true
	case *predicate.Cmp:
		sel := make([]uint64, selWords(t.n))
		if pos := resolve(node.Attr); pos >= 0 {
			t.scanCmp(pos, node.Op, node.Val, sel, blks)
		}
		return sel, true
	case *predicate.Between:
		sel := make([]uint64, selWords(t.n))
		if pos := resolve(node.Attr); pos >= 0 {
			t.scanBetween(pos, node.Lo, node.Hi, sel, blks)
		}
		return sel, true
	case *predicate.In:
		sel := make([]uint64, selWords(t.n))
		if pos := resolve(node.Attr); pos >= 0 {
			t.scanIn(pos, node.Vals, sel, blks)
		}
		return sel, true
	case *predicate.Not:
		sel, ok := t.evalVec(node.Kid, resolve, blks)
		if !ok {
			return nil, false
		}
		selNot(sel, t.n)
		return sel, true
	case *predicate.And:
		var acc []uint64
		for _, k := range node.Kids {
			sel, ok := t.evalVec(k, resolve, blks)
			if !ok {
				return nil, false
			}
			if acc == nil {
				acc = sel
			} else {
				selAnd(acc, sel)
			}
			if !selAny(acc) {
				return acc, true
			}
		}
		if acc == nil { // empty conjunction is TRUE
			acc = make([]uint64, selWords(t.n))
			selSetRange(acc, 0, t.n)
		}
		return acc, true
	case *predicate.Or:
		acc := make([]uint64, selWords(t.n))
		for _, k := range node.Kids {
			sel, ok := t.evalVec(k, resolve, blks)
			if !ok {
				return nil, false
			}
			selOr(acc, sel)
		}
		return acc, true
	default:
		return nil, false
	}
}

// blockAt maps kernel iteration k to a block index: identity when blks is
// nil (full scan), the k-th listed block otherwise.
func blockAt(blks []int32, k int) int {
	if blks == nil {
		return k
	}
	return int(blks[k])
}

// blockIters returns the kernel iteration count for a column under an
// optional block restriction.
func blockIters(c *column, blks []int32) int {
	if blks == nil {
		return len(c.zones)
	}
	return len(blks)
}

// scanCmp is the vectorized kernel for Attr Op Literal: per block it applies
// the zone-map test, then either skips, bulk-accepts, or runs the tight
// typed row loop. NULL literals match nothing (Compare against NULL fails).
func (t *Table) scanCmp(pos int, op predicate.Op, val predicate.Value, sel []uint64, blks []int32) {
	c := t.cols[pos]
	lit := analyzeLit(val)
	switch {
	case lit.isNum:
		t.scanCmpNum(c, op, lit.f, sel, blks)
	case lit.isStr:
		t.scanCmpStr(c, op, lit.s, sel, blks)
	}
}

func (t *Table) scanCmpNum(c *column, op predicate.Op, lit float64, sel []uint64, blks []int32) {
	for k, nk := 0, blockIters(c, blks); k < nk; k++ {
		bi := blockAt(blks, k)
		z := &c.zones[bi]
		lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
		if !z.hasNum {
			continue
		}
		if !z.hasNaN {
			if zoneSkipCmp(z, op, lit) {
				continue
			}
			if z.pureNum() && zoneFullCmp(z, op, lit) {
				selSetRange(sel, lo, hi)
				continue
			}
		}
		if z.pureInt() {
			nums := c.nums[lo:hi]
			for i, u := range nums {
				if opMatch(cmp3f(float64(int64(u)), lit), op) {
					selSet(sel, lo+i)
				}
			}
			continue
		}
		for r := lo; r < hi; r++ {
			if v, ok := c.numAt(r); ok && opMatch(cmp3f(v, lit), op) {
				selSet(sel, r)
			}
		}
	}
}

// zoneSkipCmp reports that no numeric row of the block can match (valid only
// when the block has no NaN, which would "equal" everything).
func zoneSkipCmp(z *zone, op predicate.Op, lit float64) bool {
	switch op {
	case predicate.OpEq:
		return lit < z.min || lit > z.max
	case predicate.OpNe:
		return z.min == z.max && z.min == lit
	case predicate.OpLt:
		return z.min >= lit
	case predicate.OpLe:
		return z.min > lit
	case predicate.OpGt:
		return z.max <= lit
	case predicate.OpGe:
		return z.max < lit
	default:
		return true
	}
}

// zoneFullCmp reports that every row of a pure-numeric block matches.
func zoneFullCmp(z *zone, op predicate.Op, lit float64) bool {
	switch op {
	case predicate.OpEq:
		return z.min == z.max && z.min == lit
	case predicate.OpNe:
		return lit < z.min || lit > z.max
	case predicate.OpLt:
		return z.max < lit
	case predicate.OpLe:
		return z.max <= lit
	case predicate.OpGt:
		return z.min > lit
	case predicate.OpGe:
		return z.min >= lit
	default:
		return false
	}
}

func (t *Table) scanCmpStr(c *column, op predicate.Op, lit string, sel []uint64, blks []int32) {
	if op == predicate.OpEq && !c.rawMode {
		// Dictionary equality: one code comparison per row, and a literal
		// absent from the dictionary empties the scan before touching any.
		code, ok := c.dict.code(lit)
		if !ok {
			return
		}
		for k, nk := 0, blockIters(c, blks); k < nk; k++ {
			bi := blockAt(blks, k)
			z := &c.zones[bi]
			if !z.hasStr {
				continue
			}
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			if z.pureStr() {
				codes := c.codes[lo:hi]
				for i, cd := range codes {
					if cd == code {
						selSet(sel, lo+i)
					}
				}
				continue
			}
			for r := lo; r < hi; r++ {
				if c.kinds[r] == predicate.KindString && c.codes[r] == code {
					selSet(sel, r)
				}
			}
		}
		return
	}
	if op == predicate.OpEq {
		// Raw-mode equality: direct string comparison per string row.
		for k, nk := 0, blockIters(c, blks); k < nk; k++ {
			bi := blockAt(blks, k)
			z := &c.zones[bi]
			if !z.hasStr {
				continue
			}
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			if z.pureStr() {
				raws := c.rawStrs[lo:hi]
				for i, s := range raws {
					if s == lit {
						selSet(sel, lo+i)
					}
				}
				continue
			}
			for r := lo; r < hi; r++ {
				if c.kinds[r] == predicate.KindString && c.rawStrs[r] == lit {
					selSet(sel, r)
				}
			}
		}
		return
	}
	lv := litVal{isStr: true, s: lit}
	for k, nk := 0, blockIters(c, blks); k < nk; k++ {
		bi := blockAt(blks, k)
		z := &c.zones[bi]
		if !z.hasStr {
			continue
		}
		lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
		for r := lo; r < hi; r++ {
			if c3, ok := c.cmp3At(r, lv); ok && opMatch(c3, op) {
				selSet(sel, r)
			}
		}
	}
}

// scanBetween is the kernel for Attr BETWEEN Lo AND Hi. A row matches when
// it is comparable with both bounds and lies inside; bounds of different
// classes (one numeric, one string) can never both compare, so the result
// is empty.
func (t *Table) scanBetween(pos int, lov, hiv predicate.Value, sel []uint64, blks []int32) {
	c := t.cols[pos]
	llo, lhi := analyzeLit(lov), analyzeLit(hiv)
	switch {
	case llo.isNum && lhi.isNum:
		for k, nk := 0, blockIters(c, blks); k < nk; k++ {
			bi := blockAt(blks, k)
			z := &c.zones[bi]
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			if !z.hasNum {
				continue
			}
			if !z.hasNaN {
				if z.max < llo.f || z.min > lhi.f {
					continue
				}
				if z.pureNum() && z.min >= llo.f && z.max <= lhi.f {
					selSetRange(sel, lo, hi)
					continue
				}
			}
			if z.pureInt() {
				nums := c.nums[lo:hi]
				for i, u := range nums {
					v := float64(int64(u))
					if cmp3f(v, llo.f) >= 0 && cmp3f(v, lhi.f) <= 0 {
						selSet(sel, lo+i)
					}
				}
				continue
			}
			for r := lo; r < hi; r++ {
				if v, ok := c.numAt(r); ok && cmp3f(v, llo.f) >= 0 && cmp3f(v, lhi.f) <= 0 {
					selSet(sel, r)
				}
			}
		}
	case llo.isStr && lhi.isStr:
		for k, nk := 0, blockIters(c, blks); k < nk; k++ {
			bi := blockAt(blks, k)
			z := &c.zones[bi]
			if !z.hasStr {
				continue
			}
			lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
			for r := lo; r < hi; r++ {
				if c.kinds[r] != predicate.KindString {
					continue
				}
				s := c.strAt(r)
				if s >= llo.s && s <= lhi.s {
					selSet(sel, r)
				}
			}
		}
	}
}

// scanIn is the kernel for Attr IN (v1, ...): numeric members match by
// widened three-way equality, string members resolve to dictionary codes
// once (absent strings can never match) — or compare raw strings when the
// column has migrated off the dictionary.
func (t *Table) scanIn(pos int, vals []predicate.Value, sel []uint64, blks []int32) {
	c := t.cols[pos]
	var nums []float64
	var codes []uint32
	var strs []string
	nanVal := false
	for _, v := range vals {
		lv := analyzeLit(v)
		switch {
		case lv.isNum:
			nums = append(nums, lv.f)
			if lv.f != lv.f { // a NaN member "equals" every number
				nanVal = true
			}
		case lv.isStr:
			if c.rawMode {
				strs = append(strs, lv.s)
			} else if code, ok := c.dict.code(lv.s); ok {
				codes = append(codes, code)
			}
		}
	}
	if len(nums) == 0 && len(codes) == 0 && len(strs) == 0 {
		return
	}
	for k, nk := 0, blockIters(c, blks); k < nk; k++ {
		bi := blockAt(blks, k)
		z := &c.zones[bi]
		lo, hi := bi*blockSize, min((bi+1)*blockSize, t.n)
		if !z.hasNum && !z.hasStr {
			continue
		}
		if !z.hasStr && !z.hasNaN && !nanVal && len(nums) > 0 {
			inRange := false
			for _, f := range nums {
				if f >= z.min && f <= z.max {
					inRange = true
					break
				}
			}
			if !inRange {
				continue
			}
		}
		for r := lo; r < hi; r++ {
			switch c.kinds[r] {
			case predicate.KindInt, predicate.KindFloat:
				v, _ := c.numAt(r)
				for _, f := range nums {
					if cmp3f(v, f) == 0 {
						selSet(sel, r)
						break
					}
				}
			case predicate.KindString:
				if c.rawMode {
					s := c.rawStrs[r]
					for _, m := range strs {
						if s == m {
							selSet(sel, r)
							break
						}
					}
					continue
				}
				cd := c.codes[r]
				for _, code := range codes {
					if cd == code {
						selSet(sel, r)
						break
					}
				}
			}
		}
	}
}
