package relstore

import (
	"fmt"
	"sort"

	"hypre/internal/predicate"
)

// OrderBy sorts rows by an attribute. NULL and missing values sort last in
// both directions.
type OrderBy struct {
	Attr string
	Desc bool
}

// SelectOrdered runs the query and sorts the result. The sort is stable, so
// scan order breaks ties deterministically. Limit (if set on the query)
// applies after sorting, as in SQL.
func (db *DB) SelectOrdered(q Query, order OrderBy) ([]JoinedRow, error) {
	limit := q.Limit
	q.Limit = 0
	rows, err := db.Select(q)
	if err != nil {
		return nil, err
	}
	key := func(r JoinedRow) (predicate.Value, bool) {
		v, ok := r.Get(order.Attr)
		return v, ok && !v.IsNull()
	}
	sort.SliceStable(rows, func(i, j int) bool {
		vi, oki := key(rows[i])
		vj, okj := key(rows[j])
		switch {
		case !oki && !okj:
			return false
		case !oki:
			return false // NULLs last
		case !okj:
			return true
		}
		c, ok := predicate.Compare(vi, vj)
		if !ok {
			return false
		}
		if order.Desc {
			return c > 0
		}
		return c < 0
	})
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows, nil
}

// GroupCount is one GROUP BY row: a grouping key and its count.
type GroupCount struct {
	Key   predicate.Value
	Count int
}

// CountGroupBy computes SELECT attr, COUNT(*) ... GROUP BY attr over the
// query result, sorted by descending count (ties by key) — the shape of
// every §6.2 extraction query ("number of papers per venue", "citations per
// author"). NULL keys are skipped.
func (db *DB) CountGroupBy(q Query, attr string) ([]GroupCount, error) {
	counts := map[string]*GroupCount{}
	err := db.scan(q, func(r JoinedRow) bool {
		v, ok := r.Get(attr)
		if !ok || v.IsNull() {
			return true
		}
		k := v.Key()
		if g, ok := counts[k]; ok {
			g.Count++
		} else {
			counts[k] = &GroupCount{Key: v, Count: 1}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]GroupCount, 0, len(counts))
	for _, g := range counts {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key.Key() < out[j].Key.Key()
	})
	return out, nil
}

// CountDistinctGroupBy is CountGroupBy counting DISTINCT distinctAttr per
// group instead of rows — e.g. distinct papers per venue through the
// dblp ⋈ dblp_author join, where plain row counts would double-count
// multi-author papers.
func (db *DB) CountDistinctGroupBy(q Query, attr, distinctAttr string) ([]GroupCount, error) {
	type acc struct {
		key  predicate.Value
		seen map[string]struct{}
	}
	groups := map[string]*acc{}
	err := db.scan(q, func(r JoinedRow) bool {
		v, ok := r.Get(attr)
		if !ok || v.IsNull() {
			return true
		}
		d, ok := r.Get(distinctAttr)
		if !ok || d.IsNull() {
			return true
		}
		k := v.Key()
		g, ok := groups[k]
		if !ok {
			g = &acc{key: v, seen: map[string]struct{}{}}
			groups[k] = g
		}
		g.seen[d.Key()] = struct{}{}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]GroupCount, 0, len(groups))
	for _, g := range groups {
		out = append(out, GroupCount{Key: g.key, Count: len(g.seen)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key.Key() < out[j].Key.Key()
	})
	return out, nil
}

// MinMax returns the minimum and maximum non-NULL values of attr over the
// query result; ok is false when no comparable value was seen. Used for
// normalizing dynamic intensities (hypre.LinearRamp bounds).
func (db *DB) MinMax(q Query, attr string) (min, max predicate.Value, ok bool, err error) {
	err = db.scan(q, func(r JoinedRow) bool {
		v, has := r.Get(attr)
		if !has || v.IsNull() {
			return true
		}
		if !ok {
			min, max, ok = v, v, true
			return true
		}
		if c, cmp := predicate.Compare(v, min); cmp && c < 0 {
			min = v
		}
		if c, cmp := predicate.Compare(v, max); cmp && c > 0 {
			max = v
		}
		return true
	})
	if err != nil {
		return predicate.Null(), predicate.Null(), false, fmt.Errorf("relstore: MinMax: %w", err)
	}
	return min, max, ok, nil
}
