package relstore

import (
	"fmt"

	"hypre/internal/predicate"
)

// Batch collects key-addressed mutations — possibly spanning tables — and
// commits them as one unit. Under group commit the whole batch is a single
// queue entry: one enqueue, one wake, and atomic visibility (no scan can
// observe a paper without its authorship links), which is what lets a
// logical op that touches several tables flow through the leader as one op
// group instead of stalling per mutation. On a serial store Commit degrades
// to applying the mutations in order, each through the normal serial path.
//
// Mutations are validated (table, columns, arity) as they are added;
// Commit reports the first staging error without applying anything. Apply
// effects (rows matched, assigned ids) are not reported back — batch
// callers address rows by key and treat zero matches as the benign tail of
// a racing delete, exactly like the key-addressed Table methods.
type Batch struct {
	db   *DB
	muts []tableMut
	err  error
}

// NewBatch starts an empty mutation batch against the store.
func (db *DB) NewBatch() *Batch { return &Batch{db: db} }

// table resolves a table name, recording the first failure.
func (b *Batch) table(name string) *Table {
	if b.err != nil {
		return nil
	}
	t := b.db.Table(name)
	if t == nil {
		b.err = fmt.Errorf("relstore: no table %q", name)
	}
	return t
}

// pos resolves a column of t, recording the first failure.
func (b *Batch) pos(t *Table, col string) int {
	if b.err != nil {
		return -1
	}
	p, ok := t.colIdx[col]
	if !ok {
		b.err = fmt.Errorf("relstore: %s has no column %q", t.schema.Name, col)
	}
	return p
}

// Insert stages an append of one row.
func (b *Batch) Insert(table string, vals ...predicate.Value) *Batch {
	t := b.table(table)
	if t == nil {
		return b
	}
	if len(vals) != len(t.schema.Columns) {
		b.err = fmt.Errorf("relstore: %s expects %d values, got %d",
			t.schema.Name, len(t.schema.Columns), len(vals))
		return b
	}
	b.muts = append(b.muts, tableMut{t: t, do: func() { t.insertLocked(vals) }})
	return b
}

// DeleteByKey stages a tombstone of every live row whose col equals key.
func (b *Batch) DeleteByKey(table, col string, key predicate.Value) *Batch {
	return b.deleteByKey(table, col, key, -1)
}

// DeleteOneByKey stages a tombstone of at most one live row whose col
// equals key.
func (b *Batch) DeleteOneByKey(table, col string, key predicate.Value) *Batch {
	return b.deleteByKey(table, col, key, 1)
}

func (b *Batch) deleteByKey(table, col string, key predicate.Value, limit int) *Batch {
	t := b.table(table)
	if t == nil {
		return b
	}
	if pos := b.pos(t, col); pos >= 0 {
		b.muts = append(b.muts, tableMut{t: t, do: func() { t.deleteByKeyLocked(pos, key, limit) }})
	}
	return b
}

// UpdateColByKey stages an overwrite of col on every live row whose keyCol
// equals key.
func (b *Batch) UpdateColByKey(table, keyCol string, key predicate.Value, col string, v predicate.Value) *Batch {
	t := b.table(table)
	if t == nil {
		return b
	}
	kpos := b.pos(t, keyCol)
	pos := b.pos(t, col)
	if kpos >= 0 && pos >= 0 {
		b.muts = append(b.muts, tableMut{t: t, do: func() {
			for _, id := range t.matchLiveLocked(kpos, key) {
				// The staged column resolves ahead of time, so the only
				// updateColLocked failure mode (unknown position) is gone.
				_ = t.updateColLocked(id, pos, v)
			}
		}})
	}
	return b
}

// Commit applies the staged mutations: as one atomic op group through the
// group-commit queue, or in staging order through the serial write path.
// The batch must not be reused after Commit.
func (b *Batch) Commit() error {
	if b.err != nil {
		return b.err
	}
	if len(b.muts) == 0 {
		return nil
	}
	if b.db.cfg.groupCommit {
		b.db.cfg.cq.commit(b.muts)
		return nil
	}
	for _, m := range b.muts {
		m.t.state.Lock()
		m.do()
		m.t.maybeCompactLocked()
		m.t.state.Unlock()
	}
	return nil
}
