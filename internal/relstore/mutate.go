package relstore

import (
	"fmt"

	"hypre/internal/predicate"
)

// This file is the write half of the online-mutation subsystem. Deletes are
// tombstones over the columnar vectors (row ids stay stable forever, so the
// evaluator's row→dense-id plumbing survives any mutation mix); updates
// overwrite in place and rebuild the touched block's zone map exactly.
// Hash-index repair is lazy for deletes (dead ids linger in buckets and are
// filtered at every consumption point; fresh builds skip them) and eager
// for updates (the old-key bucket drops the id, the new-key bucket gains
// it — an update must be findable under its new value immediately).
// Join-CSR repair is lazy: each mutation bumps the table epoch, and the
// cached existence vector + right→left CSR rebuild on next use when their
// build epoch is stale.
//
// Snapshot semantics: a scan holds the state lock of every table it touches
// (shared, acquired in creation order) for its full duration, so it
// observes exactly one epoch per table; mutations wait for in-flight
// readers and commit atomically under the exclusive lock. Committed
// mutations are additionally journaled in a bounded change log with
// pre-images, which the delta-maintenance layer drains via ChangedSince to
// repair derived caches incrementally instead of rematerializing.

// ChangeKind tags one committed mutation in a table's change log.
type ChangeKind uint8

const (
	// ChangeInsert is a row append; Old is nil.
	ChangeInsert ChangeKind = iota
	// ChangeUpdate is an in-place overwrite; Old is the full pre-image row.
	ChangeUpdate
	// ChangeDelete is a tombstone; Old is the full pre-image row.
	ChangeDelete
)

// RowChange is one committed mutation: the epoch it committed at, the row it
// touched, and (for updates and deletes) the row's pre-image — which is what
// lets a delta consumer map a join-table change back to the base rows that
// were partnered with the OLD key, not just the new one.
type RowChange struct {
	Epoch uint64
	Row   int
	Kind  ChangeKind
	Old   []predicate.Value
}

// maxChangeLog bounds the per-table change log. On overflow the oldest half
// is trimmed and ChangedSince reports ok=false for epochs older than the
// trim point, telling delta consumers to fall back to a full rebuild.
const maxChangeLog = 1 << 15

// Epoch returns the table's current mutation epoch: 0 for a fresh table,
// bumped by every committed Insert/Update/Delete.
func (t *Table) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gen
}

// EpochStamp folds the named tables' epochs into one monotonically
// non-decreasing version stamp. Every committed mutation bumps exactly one
// table's epoch, so the sum moves on every commit — the cheap freshness
// probe the result-cache tier reads per request to decide whether its
// entries still describe the store it is serving (unknown table names
// contribute nothing, matching Table's nil return).
func (db *DB) EpochStamp(names ...string) uint64 {
	var stamp uint64
	for _, name := range names {
		if t := db.Table(name); t != nil {
			stamp += t.Epoch()
		}
	}
	return stamp
}

// Alive reports whether row id exists and is not tombstoned.
func (t *Table) Alive(id int) bool {
	t.state.RLock()
	defer t.state.RUnlock()
	return id >= 0 && id < t.n && !t.isDead(id)
}

// isDead is the unlocked tombstone probe for scan internals; callers hold
// the state lock at least shared.
func (t *Table) isDead(id int) bool {
	return t.nDead > 0 && t.dead.Contains(id)
}

// Delete tombstones row id. It returns false when the id is out of range or
// the row is already dead. The row's values stay in the column vectors
// (zone maps remain sound over-approximations); every read path filters the
// tombstone bitmap.
func (t *Table) Delete(id int) bool {
	t.state.Lock()
	defer t.state.Unlock()
	if id < 0 || id >= t.n || t.isDead(id) {
		return false
	}
	old := t.rowVals(id)
	t.dead.Add(id)
	t.nDead++
	t.mu.Lock()
	t.gen++
	epoch := t.gen
	t.mu.Unlock()
	t.logChange(RowChange{Epoch: epoch, Row: id, Kind: ChangeDelete, Old: old})
	return true
}

// Update overwrites row id with a full replacement row. Changed columns that
// carry a hash index are repaired eagerly (old bucket drops the id, new
// bucket gains it); the touched zone-map blocks are rebuilt exactly.
func (t *Table) Update(id int, vals ...predicate.Value) error {
	if len(vals) != len(t.schema.Columns) {
		return fmt.Errorf("relstore: %s expects %d values, got %d",
			t.schema.Name, len(t.schema.Columns), len(vals))
	}
	t.state.Lock()
	defer t.state.Unlock()
	return t.updateLocked(id, vals)
}

// UpdateCol overwrites a single column of row id, leaving the rest of the
// row untouched.
func (t *Table) UpdateCol(id int, col string, v predicate.Value) error {
	pos, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("relstore: %s has no column %q", t.schema.Name, col)
	}
	t.state.Lock()
	defer t.state.Unlock()
	if id < 0 || id >= t.n {
		return fmt.Errorf("relstore: %s has no row %d", t.schema.Name, id)
	}
	if t.isDead(id) {
		return fmt.Errorf("relstore: %s row %d is deleted", t.schema.Name, id)
	}
	vals := t.rowVals(id)
	vals[pos] = v
	return t.updateLocked(id, vals)
}

func (t *Table) updateLocked(id int, vals []predicate.Value) error {
	if id < 0 || id >= t.n {
		return fmt.Errorf("relstore: %s has no row %d", t.schema.Name, id)
	}
	if t.isDead(id) {
		return fmt.Errorf("relstore: %s row %d is deleted", t.schema.Name, id)
	}
	old := t.rowVals(id)
	for i, v := range vals {
		// Skip untouched columns: a single-column update must not pay the
		// zone rebuild (and dict re-hash) of its four siblings. NaN never
		// compares equal to itself, so a NaN write conservatively re-sets.
		if old[i] == v {
			continue
		}
		t.cols[i].set(id, v)
	}
	t.mu.Lock()
	t.gen++
	epoch := t.gen
	for col, idx := range t.indexes {
		oldK, newK := indexKey(old[col]), indexKey(vals[col])
		if oldK == newK {
			continue
		}
		idx[oldK] = removeID(idx[oldK], id)
		idx[newK] = append(idx[newK], id)
	}
	t.mu.Unlock()
	t.logChange(RowChange{Epoch: epoch, Row: id, Kind: ChangeUpdate, Old: old})
	return nil
}

// removeID drops id from an index bucket in place.
func removeID(ids []int, id int) []int {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// rowVals boxes the full row — the pre-image capture for the change log.
// Callers hold the state lock.
func (t *Table) rowVals(id int) []predicate.Value {
	out := make([]predicate.Value, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.value(id)
	}
	return out
}

// logChange appends one committed mutation, trimming the oldest half when
// the log exceeds maxChangeLog. Callers hold the state lock exclusively.
func (t *Table) logChange(ch RowChange) {
	if len(t.chLog) >= maxChangeLog {
		half := len(t.chLog) / 2
		t.logFloor = t.chLog[half-1].Epoch
		t.chLog = append(t.chLog[:0:0], t.chLog[half:]...)
	}
	t.chLog = append(t.chLog, ch)
}

// ChangedSince returns copies of the committed mutations with epoch >
// since, oldest first. ok=false means the log no longer reaches back that
// far (trimmed) and the caller must fall back to a full rebuild of whatever
// it derived from the table.
func (t *Table) ChangedSince(since uint64) (changes []RowChange, ok bool) {
	t.state.RLock()
	defer t.state.RUnlock()
	if since < t.logFloor {
		return nil, false
	}
	// Binary search for the first entry past since (epochs ascend).
	lo, hi := 0, len(t.chLog)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.chLog[mid].Epoch <= since {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(t.chLog) {
		return nil, true
	}
	return append([]RowChange(nil), t.chLog[lo:]...), true
}

// lockShared acquires the data locks of up to two tables shared, in
// creation order (so concurrent scans over the same table pair can never
// deadlock against a pending writer), and returns the matching unlock. b
// may be nil or equal to a.
func lockShared(a, b *Table) func() {
	if b == a {
		b = nil
	}
	if b == nil {
		a.state.RLock()
		return a.state.RUnlock
	}
	first, second := a, b
	if b.seq < a.seq {
		first, second = b, a
	}
	first.state.RLock()
	second.state.RLock()
	return func() {
		second.state.RUnlock()
		first.state.RUnlock()
	}
}
