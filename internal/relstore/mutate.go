package relstore

import (
	"fmt"

	"hypre/internal/predicate"
)

// This file is the write half of the online-mutation subsystem. Deletes are
// tombstones over the columnar vectors (row ids stay stable forever, so the
// evaluator's row→dense-id plumbing survives any mutation mix); updates
// overwrite in place and rebuild the touched block's zone map exactly.
// Hash-index repair is lazy for deletes (dead ids linger in buckets and are
// filtered at every consumption point; fresh builds skip them) and eager
// for updates (the old-key bucket drops the id, the new-key bucket gains
// it — an update must be findable under its new value immediately).
// Join-CSR repair is lazy: each mutation bumps the table epoch, and the
// cached existence vector + right→left CSR rebuild on next use when their
// build epoch is stale.
//
// Snapshot semantics: a scan holds the state lock of every table it touches
// (shared, acquired in creation order) for its full duration, so it
// observes exactly one epoch per table; mutations wait for in-flight
// readers and commit atomically under the exclusive lock. Committed
// mutations are additionally journaled in a bounded change log with
// pre-images, which the delta-maintenance layer drains via ChangedSince to
// repair derived caches incrementally instead of rematerializing.

// ChangeKind tags one committed mutation in a table's change log.
type ChangeKind uint8

const (
	// ChangeInsert is a row append; Old is nil.
	ChangeInsert ChangeKind = iota
	// ChangeUpdate is an in-place overwrite; Old is the full pre-image row.
	ChangeUpdate
	// ChangeDelete is a tombstone; Old is the full pre-image row.
	ChangeDelete
)

// RowChange is one committed mutation: the epoch it committed at, the row it
// touched, and (for updates and deletes) the row's pre-image — which is what
// lets a delta consumer map a join-table change back to the base rows that
// were partnered with the OLD key, not just the new one.
type RowChange struct {
	Epoch uint64
	Row   int
	Kind  ChangeKind
	Old   []predicate.Value
}

// maxChangeLog is the default per-table change-log bound (override with
// WithChangeLogCap). On overflow the oldest half is trimmed and ChangedSince
// reports ok=false for epochs older than the trim point, telling delta
// consumers to fall back to a full rebuild.
const maxChangeLog = 1 << 15

// logCapacity is the table's configured change-log bound.
func (t *Table) logCapacity() int {
	if t.cfg.logCap > 0 {
		return t.cfg.logCap
	}
	return maxChangeLog
}

// Epoch returns the table's current mutation epoch: 0 for a fresh table,
// bumped by every committed Insert/Update/Delete.
func (t *Table) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gen
}

// EpochStamp folds the named tables' epochs into one monotonically
// non-decreasing version stamp. Every committed mutation bumps exactly one
// table's epoch, so the sum moves on every commit — the cheap freshness
// probe the result-cache tier reads per request to decide whether its
// entries still describe the store it is serving (unknown table names
// contribute nothing, matching Table's nil return).
func (db *DB) EpochStamp(names ...string) uint64 {
	var stamp uint64
	for _, name := range names {
		if t := db.Table(name); t != nil {
			stamp += t.Epoch()
		}
	}
	return stamp
}

// Alive reports whether row id exists and is not tombstoned.
func (t *Table) Alive(id int) bool {
	t.state.RLock()
	defer t.state.RUnlock()
	return id >= 0 && id < t.n && !t.isDead(id)
}

// isDead is the unlocked tombstone probe for scan internals; callers hold
// the state lock at least shared.
func (t *Table) isDead(id int) bool {
	return t.nDead > 0 && t.dead.Contains(id)
}

// commitEpochLocked assigns the epoch of one committing mutation: inside a
// group-commit hold every op shares the hold's epoch, bumped lazily on the
// table's first mutation so untouched tables keep theirs; outside one, the
// op bumps the table generation itself. fn, when non-nil, runs under t.mu
// (the eager index-repair hook). Callers hold the state lock exclusively.
func (t *Table) commitEpochLocked(fn func()) uint64 {
	t.mu.Lock()
	var epoch uint64
	if t.batch != nil {
		if t.batch.epoch == 0 {
			t.gen++
			t.batch.epoch = t.gen
		}
		epoch = t.batch.epoch
	} else {
		t.gen++
		epoch = t.gen
	}
	if fn != nil {
		fn()
	}
	t.mu.Unlock()
	return epoch
}

// Delete tombstones row id. It returns false when the id is out of range or
// the row is already dead. The row's values stay in the column vectors
// (zone maps remain sound over-approximations); every read path filters the
// tombstone bitmap.
func (t *Table) Delete(id int) bool {
	if t.cfg.groupCommit {
		var ok bool
		t.commit(func() { ok = t.deleteLocked(id) })
		return ok
	}
	t.state.Lock()
	defer t.state.Unlock()
	ok := t.deleteLocked(id)
	t.maybeCompactLocked()
	return ok
}

func (t *Table) deleteLocked(id int) bool {
	if id < 0 || id >= t.n || t.isDead(id) {
		return false
	}
	old := t.rowVals(id)
	t.dead.Add(id)
	t.nDead++
	epoch := t.commitEpochLocked(nil)
	t.logChange(RowChange{Epoch: epoch, Row: id, Kind: ChangeDelete, Old: old})
	return true
}

// DeleteByKey tombstones every live row whose col equals key, returning how
// many died. The index probe and the deletes run inside one committed
// critical section: a key-addressed writer pays one commit instead of a
// shared-lock lookup followed by a separate commit — under sustained
// concurrent scans the separate read round-trip costs a reader-gap wait per
// op, and it lets the group-commit queue actually coalesce (a writer whose
// op is a pure enqueue can pile up behind a leader; one stuck in a read
// phase cannot). Key-addressed ops are also compaction-proof by
// construction: they never hold a row id across commits.
func (t *Table) DeleteByKey(col string, key predicate.Value) (int, error) {
	pos, ok := t.colIdx[col]
	if !ok {
		return 0, fmt.Errorf("relstore: %s has no column %q", t.schema.Name, col)
	}
	var n int
	if t.cfg.groupCommit {
		t.commit(func() { n = t.deleteByKeyLocked(pos, key, -1) })
		return n, nil
	}
	t.state.Lock()
	defer t.state.Unlock()
	n = t.deleteByKeyLocked(pos, key, -1)
	t.maybeCompactLocked()
	return n, nil
}

// DeleteOneByKey tombstones at most one live row whose col equals key.
func (t *Table) DeleteOneByKey(col string, key predicate.Value) (int, error) {
	pos, ok := t.colIdx[col]
	if !ok {
		return 0, fmt.Errorf("relstore: %s has no column %q", t.schema.Name, col)
	}
	var n int
	if t.cfg.groupCommit {
		t.commit(func() { n = t.deleteByKeyLocked(pos, key, 1) })
		return n, nil
	}
	t.state.Lock()
	defer t.state.Unlock()
	n = t.deleteByKeyLocked(pos, key, 1)
	t.maybeCompactLocked()
	return n, nil
}

// UpdateColByKey overwrites col of every live row whose keyCol equals key,
// returning how many rows changed. Zero matches is not an error — a
// key-addressed update whose target died is the benign tail of a racing
// delete.
func (t *Table) UpdateColByKey(keyCol string, key predicate.Value, col string, v predicate.Value) (int, error) {
	kpos, ok := t.colIdx[keyCol]
	if !ok {
		return 0, fmt.Errorf("relstore: %s has no column %q", t.schema.Name, keyCol)
	}
	pos, ok := t.colIdx[col]
	if !ok {
		return 0, fmt.Errorf("relstore: %s has no column %q", t.schema.Name, col)
	}
	var n int
	var err error
	apply := func() {
		for _, id := range t.matchLiveLocked(kpos, key) {
			if e := t.updateColLocked(id, pos, v); e != nil {
				err = e
				return
			}
			n++
		}
	}
	if t.cfg.groupCommit {
		t.commit(apply)
		return n, err
	}
	t.state.Lock()
	defer t.state.Unlock()
	apply()
	return n, err
}

// deleteByKeyLocked tombstones up to limit (-1 = all) live rows matching
// (pos, key). Callers hold the state lock exclusively.
func (t *Table) deleteByKeyLocked(pos int, key predicate.Value, limit int) int {
	n := 0
	for _, id := range t.matchLiveLocked(pos, key) {
		if limit >= 0 && n >= limit {
			break
		}
		if t.deleteLocked(id) {
			n++
		}
	}
	return n
}

// matchLiveLocked probes the hash index on pos (building it if missing) and
// returns a copy of the live matching row ids — a copy because the caller
// is about to mutate, and eager index repair may rewrite the bucket being
// iterated. Callers hold the state lock exclusively.
func (t *Table) matchLiveLocked(pos int, key predicate.Value) []int {
	idx := t.ensureIndex(pos)
	var out []int
	for _, id := range idx[indexKey(key)] {
		if !t.isDead(id) {
			out = append(out, id)
		}
	}
	return out
}

// Update overwrites row id with a full replacement row. Changed columns that
// carry a hash index are repaired eagerly (old bucket drops the id, new
// bucket gains it); the touched zone-map blocks are rebuilt exactly.
func (t *Table) Update(id int, vals ...predicate.Value) error {
	if len(vals) != len(t.schema.Columns) {
		return fmt.Errorf("relstore: %s expects %d values, got %d",
			t.schema.Name, len(t.schema.Columns), len(vals))
	}
	if t.cfg.groupCommit {
		var err error
		t.commit(func() { err = t.updateLocked(id, vals) })
		return err
	}
	t.state.Lock()
	defer t.state.Unlock()
	return t.updateLocked(id, vals)
}

// UpdateCol overwrites a single column of row id, leaving the rest of the
// row untouched.
func (t *Table) UpdateCol(id int, col string, v predicate.Value) error {
	pos, ok := t.colIdx[col]
	if !ok {
		return fmt.Errorf("relstore: %s has no column %q", t.schema.Name, col)
	}
	if t.cfg.groupCommit {
		var err error
		t.commit(func() { err = t.updateColLocked(id, pos, v) })
		return err
	}
	t.state.Lock()
	defer t.state.Unlock()
	return t.updateColLocked(id, pos, v)
}

func (t *Table) updateColLocked(id, pos int, v predicate.Value) error {
	if id < 0 || id >= t.n {
		return fmt.Errorf("relstore: %s has no row %d", t.schema.Name, id)
	}
	if t.isDead(id) {
		return fmt.Errorf("relstore: %s row %d is deleted", t.schema.Name, id)
	}
	vals := t.rowVals(id)
	vals[pos] = v
	return t.updateLocked(id, vals)
}

func (t *Table) updateLocked(id int, vals []predicate.Value) error {
	if id < 0 || id >= t.n {
		return fmt.Errorf("relstore: %s has no row %d", t.schema.Name, id)
	}
	if t.isDead(id) {
		return fmt.Errorf("relstore: %s row %d is deleted", t.schema.Name, id)
	}
	old := t.rowVals(id)
	for i, v := range vals {
		// Skip untouched columns: a single-column update must not pay the
		// zone rebuild (and dict re-hash) of its four siblings. NaN never
		// compares equal to itself, so a NaN write conservatively re-sets.
		if old[i] == v {
			continue
		}
		if b := t.batch; b != nil {
			// Defer the zone rebuild to the batch's single repair pass.
			blk := t.cols[i].setRaw(id, v)
			b.touched = append(b.touched, zoneTouch{c: t.cols[i], blk: blk})
		} else {
			t.cols[i].set(id, v)
		}
	}
	epoch := t.commitEpochLocked(func() {
		for col, idx := range t.indexes {
			oldK, newK := indexKey(old[col]), indexKey(vals[col])
			if oldK == newK {
				continue
			}
			idx[oldK] = removeID(idx[oldK], id)
			idx[newK] = append(idx[newK], id)
		}
	})
	t.logChange(RowChange{Epoch: epoch, Row: id, Kind: ChangeUpdate, Old: old})
	return nil
}

// removeID drops id from an index bucket in place.
func removeID(ids []int, id int) []int {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// rowVals boxes the full row — the pre-image capture for the change log.
// Callers hold the state lock.
func (t *Table) rowVals(id int) []predicate.Value {
	out := make([]predicate.Value, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.value(id)
	}
	return out
}

// logChange appends one committed mutation, trimming the oldest half when
// the log exceeds its capacity (logCapacity / WithChangeLogCap). Callers
// hold the state lock exclusively.
func (t *Table) logChange(ch RowChange) {
	if len(t.chLog) >= t.logCapacity() {
		half := len(t.chLog) / 2
		if half == 0 {
			half = 1
		}
		t.logFloor = t.chLog[half-1].Epoch
		t.chLog = append(t.chLog[:0:0], t.chLog[half:]...)
		if sc := t.cfg.counters; sc != nil {
			sc.LogOverflows.Add(1)
		}
	}
	t.chLog = append(t.chLog, ch)
}

// ChangedSince returns copies of the committed mutations with epoch >
// since, oldest first. ok=false means the log no longer reaches back that
// far (trimmed) and the caller must fall back to a full rebuild of whatever
// it derived from the table.
func (t *Table) ChangedSince(since uint64) (changes []RowChange, ok bool) {
	t.state.RLock()
	defer t.state.RUnlock()
	return t.changedSinceLocked(since)
}

// changedSinceLocked is ChangedSince for callers already holding the state
// lock (at least shared) — the join-repair path runs inside a scan's lock
// scope, where re-acquiring the shared lock could deadlock behind a queued
// writer.
func (t *Table) changedSinceLocked(since uint64) (changes []RowChange, ok bool) {
	if since < t.logFloor {
		return nil, false
	}
	// Binary search for the first entry past since (epochs ascend).
	lo, hi := 0, len(t.chLog)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.chLog[mid].Epoch <= since {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(t.chLog) {
		return nil, true
	}
	return append([]RowChange(nil), t.chLog[lo:]...), true
}

// SyncSnapshot is one atomic drain of a table's maintenance feeds: the
// current epoch, the committed changes since the consumer's epoch, and the
// compaction remaps it must compose first — all captured under a single
// shared acquisition, so a compaction cannot slip between the reads and
// leave the consumer with changes remapped through a compaction record it
// never saw (double-applying the remap on the next drain).
type SyncSnapshot struct {
	Epoch       uint64
	Changes     []RowChange
	Compactions []Compaction
	// LogOK=false: the change log was trimmed past since (rebuild).
	LogOK bool
	// CompOK=false: compaction history was evicted past since (rebuild).
	CompOK bool
}

// SnapshotSince captures a SyncSnapshot for a consumer synced to epoch
// since. The returned slices are copies/immutable and safe to use after the
// lock is released.
func (t *Table) SnapshotSince(since uint64) SyncSnapshot {
	t.state.RLock()
	defer t.state.RUnlock()
	var s SyncSnapshot
	t.mu.RLock()
	s.Epoch = t.gen
	t.mu.RUnlock()
	s.Changes, s.LogOK = t.changedSinceLocked(since)
	s.Compactions, s.CompOK = t.compactionsSinceLocked(since)
	return s
}

// lockShared acquires the data locks of up to two tables shared, in
// creation order (so concurrent scans over the same table pair can never
// deadlock against a pending writer), and returns the matching unlock. b
// may be nil or equal to a.
func lockShared(a, b *Table) func() {
	if b == a {
		b = nil
	}
	if b == nil {
		a.state.RLock()
		return a.state.RUnlock
	}
	first, second := a, b
	if b.seq < a.seq {
		first, second = b, a
	}
	first.state.RLock()
	second.state.RLock()
	return func() {
		second.state.RUnlock()
		first.state.RUnlock()
	}
}
