package relstore

import (
	"testing"

	"hypre/internal/predicate"
)

func i(v int64) predicate.Value   { return predicate.Int(v) }
func s(v string) predicate.Value  { return predicate.String(v) }
func f(v float64) predicate.Value { return predicate.Float(v) }

// paperDB builds the Movie relation of Table 3.
func movieDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	tbl, err := db.CreateTable("movies",
		Column{"mid", predicate.KindString},
		Column{"title", predicate.KindString},
		Column{"year", predicate.KindInt},
		Column{"director", predicate.KindString},
		Column{"genre", predicate.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]predicate.Value{
		{s("m1"), s("Casablanca"), i(1942), s("M. Curtiz"), s("drama")},
		{s("m2"), s("Psycho"), i(1960), s("A. Hitchcock"), s("horror")},
		{s("m3"), s("Schindler's List"), i(1993), s("S. Spielberg"), s("drama")},
		{s("m4"), s("White Christmas"), i(1954), s("M. Curtiz"), s("comedy")},
		{s("m5"), s("The Adventures of Tintin"), i(2011), s("S. Spielberg"), s("comedy")},
		{s("m6"), s("The Girl on the Train"), i(2013), s("L. Brand"), s("thriller")},
	}
	for _, r := range rows {
		if _, err := tbl.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("t"); err == nil {
		t.Error("zero-column table should fail")
	}
	if _, err := db.CreateTable("t", Column{"a", predicate.KindInt}, Column{"a", predicate.KindInt}); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := db.CreateTable("ok", Column{"a", predicate.KindInt}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("ok", Column{"a", predicate.KindInt}); err == nil {
		t.Error("duplicate table should fail")
	}
}

func TestInsertArityMismatch(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("t", Column{"a", predicate.KindInt}, Column{"b", predicate.KindInt})
	if _, err := tbl.Insert(i(1)); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := tbl.Insert(i(1), i(2), i(3)); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestSelectFullScan(t *testing.T) {
	db := movieDB(t)
	rows, err := db.Select(Query{From: "movies", Where: predicate.MustParse(`genre="drama"`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("drama count = %d, want 2", len(rows))
	}
}

func TestSelectQualifiedAttr(t *testing.T) {
	db := movieDB(t)
	rows, err := db.Select(Query{From: "movies", Where: predicate.MustParse(`movies.genre="comedy" AND movies.year>2000`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows", len(rows))
	}
	if v, _ := rows[0].Get("mid"); v.AsString() != "m5" {
		t.Errorf("got %v", v)
	}
}

func TestSelectWrongTableQualifier(t *testing.T) {
	db := movieDB(t)
	rows, err := db.Select(Query{From: "movies", Where: predicate.MustParse(`other.genre="comedy"`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("wrong qualifier matched %d rows", len(rows))
	}
}

func TestSelectLimit(t *testing.T) {
	db := movieDB(t)
	rows, err := db.Select(Query{From: "movies", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("limit ignored: %d", len(rows))
	}
}

func TestSelectUnknownTable(t *testing.T) {
	db := movieDB(t)
	if _, err := db.Select(Query{From: "nope"}); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestIndexLookupMatchesScan(t *testing.T) {
	db := movieDB(t)
	tbl := db.Table("movies")
	where := predicate.MustParse(`genre="comedy"`)
	scan, _ := db.Select(Query{From: "movies", Where: where})
	if err := tbl.BuildIndex("genre"); err != nil {
		t.Fatal(err)
	}
	indexed, _ := db.Select(Query{From: "movies", Where: where})
	if len(scan) != len(indexed) {
		t.Fatalf("index path %d rows, scan path %d", len(indexed), len(scan))
	}
}

func TestIndexedOrUnion(t *testing.T) {
	db := movieDB(t)
	db.Table("movies").BuildIndex("genre")
	where := predicate.MustParse(`genre="comedy" OR genre="drama"`)
	n, err := db.Count(Query{From: "movies", Where: where})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("OR union count = %d, want 4", n)
	}
}

func TestIndexedInLookup(t *testing.T) {
	db := movieDB(t)
	db.Table("movies").BuildIndex("director")
	n, err := db.Count(Query{From: "movies", Where: predicate.MustParse(`director IN ("M. Curtiz","L. Brand")`)})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("IN count = %d, want 3", n)
	}
}

func TestIndexedAndPicksCandidates(t *testing.T) {
	db := movieDB(t)
	db.Table("movies").BuildIndex("genre")
	// AND with one indexable conjunct must still apply the full predicate.
	n, err := db.Count(Query{From: "movies", Where: predicate.MustParse(`genre="comedy" AND year<2000`)})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count = %d, want 1 (White Christmas)", n)
	}
}

func TestInsertUpdatesExistingIndex(t *testing.T) {
	db := movieDB(t)
	tbl := db.Table("movies")
	tbl.BuildIndex("genre")
	tbl.Insert(s("m7"), s("New Comedy"), i(2014), s("X"), s("comedy"))
	n, _ := db.Count(Query{From: "movies", Where: predicate.MustParse(`genre="comedy"`)})
	if n != 3 {
		t.Fatalf("after insert, comedy count = %d, want 3", n)
	}
}

func TestBuildIndexUnknownColumn(t *testing.T) {
	db := movieDB(t)
	if err := db.Table("movies").BuildIndex("nope"); err == nil {
		t.Error("indexing unknown column should fail")
	}
}

func TestCountDistinct(t *testing.T) {
	db := movieDB(t)
	n, err := db.CountDistinct(Query{From: "movies"}, "director")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("distinct directors = %d, want 4", n)
	}
	n, _ = db.CountDistinct(Query{From: "movies"}, "genre")
	if n != 4 {
		t.Fatalf("distinct genres = %d, want 4", n)
	}
}

func TestDistinctValuesOrderAndDedup(t *testing.T) {
	db := movieDB(t)
	vals, err := db.DistinctValues(Query{From: "movies"}, "genre")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 || vals[0].AsString() != "drama" || vals[1].AsString() != "horror" {
		t.Fatalf("distinct values = %v", vals)
	}
}

func TestStats(t *testing.T) {
	db := movieDB(t)
	st := db.Stats()
	if len(st) != 1 || st[0].Name != "movies" || st[0].Arity != 5 || st[0].Cardinality != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableNames(t *testing.T) {
	db := NewDB()
	db.CreateTable("b", Column{"x", predicate.KindInt})
	db.CreateTable("a", Column{"x", predicate.KindInt})
	names := db.TableNames()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("creation order lost: %v", names)
	}
}

func TestValueAccessor(t *testing.T) {
	db := movieDB(t)
	tbl := db.Table("movies")
	if v := tbl.Value(0, "title"); v.AsString() != "Casablanca" {
		t.Errorf("Value = %v", v)
	}
	if v := tbl.Value(0, "nope"); !v.IsNull() {
		t.Errorf("unknown column should be NULL, got %v", v)
	}
	if v := tbl.Value(99, "title"); !v.IsNull() {
		t.Errorf("out-of-range row should be NULL, got %v", v)
	}
}
