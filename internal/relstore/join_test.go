package relstore

import (
	"testing"
	"testing/quick"

	"hypre/internal/predicate"
)

// dblpDB builds the Table 6 DBLP relation plus a dblp_author link table.
func dblpDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	dblp, err := db.CreateTable("dblp",
		Column{"pid", predicate.KindString},
		Column{"title", predicate.KindString},
		Column{"year", predicate.KindInt},
		Column{"venue", predicate.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	papers := []struct {
		pid, title string
		year       int64
		venue      string
	}{
		{"t1", "Automated Selection of Materialized Views", 2000, "VLDB"},
		{"t2", "Composite Subset Measures", 2006, "VLDB"},
		{"t3", "Keymantic", 2010, "PVLDB"},
		{"t4", "Proximity Rank Join", 2010, "PVLDB"},
		{"t5", "iNextCube", 2009, "PVLDB"},
		{"t6", "Processing Proximity Relations", 2010, "SIGMOD"},
		{"t7", "Relational Joins on GPUs", 2008, "SIGMOD"},
		{"t8", "Refresh: Weak Privacy Model", 2010, "INFOCOM"},
		{"t9", "Congestion Control", 2007, "INFOCOM"},
	}
	for _, p := range papers {
		dblp.Insert(s(p.pid), s(p.title), i(p.year), s(p.venue))
	}
	da, err := db.CreateTable("dblp_author",
		Column{"pid", predicate.KindString},
		Column{"aid", predicate.KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	links := []struct {
		pid string
		aid int64
	}{
		{"t1", 1}, {"t1", 2}, {"t2", 2}, {"t3", 3}, {"t4", 4},
		{"t5", 2}, {"t6", 5}, {"t7", 1}, {"t8", 6}, {"t9", 6}, {"t9", 2},
	}
	for _, l := range links {
		da.Insert(s(l.pid), i(l.aid))
	}
	return db
}

func joinQuery(where predicate.Predicate) Query {
	return Query{
		From:  "dblp",
		Join:  &JoinSpec{Table: "dblp_author", LeftCol: "pid", RightCol: "pid"},
		Where: where,
	}
}

func TestJoinBasic(t *testing.T) {
	db := dblpDB(t)
	rows, err := db.Select(joinQuery(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("join cardinality = %d, want 11", len(rows))
	}
}

func TestJoinWithBothSidesFiltered(t *testing.T) {
	db := dblpDB(t)
	// The canonical query of §5.3.1.
	where := predicate.MustParse(`dblp.venue="INFOCOM" AND dblp_author.aid=6`)
	n, err := db.CountDistinct(joinQuery(where), "dblp.pid")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("INFOCOM∧aid=6 distinct pids = %d, want 2", n)
	}
}

func TestJoinStarvation(t *testing.T) {
	db := dblpDB(t)
	// Two venue predicates ANDed — the information-starvation case (§4.6).
	where := predicate.MustParse(`dblp.venue="SIGMOD" AND dblp.venue="VLDB"`)
	n, err := db.Count(joinQuery(where))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("starvation query returned %d rows", n)
	}
}

func TestJoinMixedClause(t *testing.T) {
	db := dblpDB(t)
	// The rewritten query of §4.6: OR within attribute, AND across.
	where := predicate.MustParse(
		`(dblp.venue="INFOCOM" OR dblp.venue="PVLDB") AND (dblp_author.aid=2 OR dblp_author.aid=6)`)
	vals, err := db.DistinctValues(joinQuery(where), "dblp.pid")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, v := range vals {
		got[v.AsString()] = true
	}
	for _, want := range []string{"t5", "t8", "t9"} {
		if !got[want] {
			t.Errorf("missing %s in %v", want, vals)
		}
	}
	if len(got) != 3 {
		t.Errorf("distinct pids = %v, want 3", vals)
	}
}

func TestJoinCountDistinctVsCount(t *testing.T) {
	db := dblpDB(t)
	where := predicate.MustParse(`dblp.pid="t9"`)
	n, _ := db.Count(joinQuery(where))
	d, _ := db.CountDistinct(joinQuery(where), "dblp.pid")
	if n != 2 || d != 1 {
		t.Fatalf("t9: count=%d distinct=%d, want 2/1", n, d)
	}
}

func TestJoinLeftIndexAssist(t *testing.T) {
	db := dblpDB(t)
	db.Table("dblp").BuildIndex("venue")
	where := predicate.MustParse(`dblp.venue="SIGMOD"`)
	n, err := db.Count(joinQuery(where))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("indexed join count = %d, want 2", n)
	}
}

func TestJoinUnknownJoinTable(t *testing.T) {
	db := dblpDB(t)
	_, err := db.Select(Query{From: "dblp", Join: &JoinSpec{Table: "nope", LeftCol: "pid", RightCol: "pid"}})
	if err == nil {
		t.Error("unknown join table should fail")
	}
	_, err = db.Select(Query{From: "dblp", Join: &JoinSpec{Table: "dblp_author", LeftCol: "zz", RightCol: "pid"}})
	if err == nil {
		t.Error("unknown left col should fail")
	}
	_, err = db.Select(Query{From: "dblp", Join: &JoinSpec{Table: "dblp_author", LeftCol: "pid", RightCol: "zz"}})
	if err == nil {
		t.Error("unknown right col should fail")
	}
}

func TestJoinRowAttributeResolution(t *testing.T) {
	db := dblpDB(t)
	rows, err := db.Select(joinQuery(predicate.MustParse(`dblp.pid="t1" AND dblp_author.aid=1`)))
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows=%d err=%v", len(rows), err)
	}
	r := rows[0]
	if v, ok := r.Get("dblp.venue"); !ok || v.AsString() != "VLDB" {
		t.Errorf("dblp.venue = %v", v)
	}
	if v, ok := r.Get("dblp_author.aid"); !ok || v.AsInt() != 1 {
		t.Errorf("dblp_author.aid = %v", v)
	}
	// Bare ambiguous attribute resolves left-first.
	if v, ok := r.Get("pid"); !ok || v.AsString() != "t1" {
		t.Errorf("bare pid = %v", v)
	}
	if _, ok := r.Get("nonexistent"); ok {
		t.Error("nonexistent attr resolved")
	}
}

// Property: for random venue subsets, the indexed OR path returns the same
// count as a forced full scan.
func TestIndexedOrEqualsScanProperty(t *testing.T) {
	db := dblpDB(t)
	venues := []string{"VLDB", "PVLDB", "SIGMOD", "INFOCOM", "PODS"}
	db.Table("dblp").BuildIndex("venue")
	fresh := dblpDB(t) // no index: full-scan reference
	f := func(mask uint8) bool {
		var kids []predicate.Predicate
		for b, v := range venues {
			if mask&(1<<uint(b)) != 0 {
				kids = append(kids, &predicate.Cmp{Attr: "dblp.venue", Op: predicate.OpEq, Val: predicate.String(v)})
			}
		}
		if len(kids) == 0 {
			return true
		}
		where := predicate.NewOr(kids...)
		a, err1 := db.Count(Query{From: "dblp", Where: where})
		b, err2 := fresh.Count(Query{From: "dblp", Where: where})
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinRightIndexAssist(t *testing.T) {
	// Only the joined table is constrained and only it is indexed: the
	// right-driven access path must walk the author index back through the
	// join and agree with the full-scan result.
	db := dblpDB(t)
	if err := db.Table("dblp_author").BuildIndex("aid"); err != nil {
		t.Fatal(err)
	}
	where := predicate.MustParse(`dblp_author.aid=2`)
	n, err := db.Count(joinQuery(where))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 { // links t1, t2, t5, t9
		t.Fatalf("right-driven join count = %d, want 4", n)
	}
	pids, err := db.DistinctValues(joinQuery(where), "dblp.pid")
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) != 4 {
		t.Fatalf("distinct pids = %d, want 4", len(pids))
	}
}

func TestJoinBareSharedColumnBindsLeft(t *testing.T) {
	// Regression: both tables carry a bare column "v"; evaluation binds
	// bare names left-first, so a right-side index on v must NOT be used
	// as the candidate source (it would under-approximate: the predicate
	// filters left.v, not right.v).
	db := NewDB()
	lt, err := db.CreateTable("lt", Column{"k", predicate.KindInt}, Column{"v", predicate.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := db.CreateTable("rt", Column{"k", predicate.KindInt}, Column{"v", predicate.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	lt.Insert(i(1), i(5))
	lt.Insert(i(2), i(0))
	rt.Insert(i(1), i(0))
	rt.Insert(i(2), i(5))
	if err := rt.BuildIndex("v"); err != nil {
		t.Fatal(err)
	}
	q := Query{
		From:  "lt",
		Join:  &JoinSpec{Table: "rt", LeftCol: "k", RightCol: "k"},
		Where: &predicate.Cmp{Attr: "v", Op: predicate.OpEq, Val: i(5)},
	}
	n, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	// left.v=5 only holds for k=1 (whose joined right.v is 0).
	if n != 1 {
		t.Fatalf("bare shared column count = %d, want 1 (left binding)", n)
	}
}
