package relstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hypre/internal/predicate"
)

// This file is the randomized mutation property suite: a seeded stream of
// inserts, deletes, and updates runs against the columnar store and two
// oracles. Oracle A is an id-preserving row-major reference (physical rows
// plus a tombstone set), proving the mutated store's row-id results exact.
// Oracle B is a second store rebuilt from scratch out of the surviving
// rows, proving the mutated store's value-level answers — selects, joins,
// aggregates, distinct scans — byte-identical to a never-mutated store
// holding the same logical data.

// refScanLive is refScan over a reference with tombstones: dead rows on
// either side never match.
func refScanLive(left, right *refTable, join *JoinSpec, where predicate.Predicate,
	deadL, deadR map[int]bool, limit int) [][2]int {
	if where == nil {
		where = predicate.True{}
	}
	var out [][2]int
	if join == nil {
		for lid, lrow := range left.rows {
			if deadL[lid] {
				continue
			}
			if where.Eval(refRow{left: left, lrow: lrow}) {
				out = append(out, [2]int{lid, -1})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
		return out
	}
	lpos, rpos := left.colIdx(join.LeftCol), right.colIdx(join.RightCol)
	for lid, lrow := range left.rows {
		if deadL[lid] {
			continue
		}
		lk := indexKey(lrow[lpos])
		for rid, rrow := range right.rows {
			if deadR[rid] || indexKey(rrow[rpos]) != lk {
				continue
			}
			if where.Eval(refRow{left: left, right: right, lrow: lrow, rrow: rrow, hasRight: true}) {
				out = append(out, [2]int{lid, rid})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// mutateTables runs a seeded op stream over a (store, reference) table
// pair, returning the tombstone set.
func mutateTables(t *testing.T, rng *rand.Rand, tab *Table, ref *refTable, ops int) map[int]bool {
	t.Helper()
	dead := map[int]bool{}
	liveIDs := func() []int {
		var ids []int
		for id := range ref.rows {
			if !dead[id] {
				ids = append(ids, id)
			}
		}
		return ids
	}
	randRow := func() []predicate.Value {
		row := make([]predicate.Value, len(ref.cols))
		for i := range row {
			row[i] = propValue(rng)
		}
		return row
	}
	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.35: // insert
			row := randRow()
			id, err := tab.Insert(row...)
			if err != nil {
				t.Fatal(err)
			}
			if id != len(ref.rows) {
				t.Fatalf("insert returned id %d, want %d", id, len(ref.rows))
			}
			ref.rows = append(ref.rows, row)
		case r < 0.55: // delete
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if !tab.Delete(id) {
				t.Fatalf("Delete(%d) of a live row returned false", id)
			}
			if tab.Delete(id) {
				t.Fatalf("double Delete(%d) returned true", id)
			}
			dead[id] = true
		case r < 0.80: // full-row update
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			row := randRow()
			if err := tab.Update(id, row...); err != nil {
				t.Fatal(err)
			}
			ref.rows[id] = append([]predicate.Value(nil), row...)
		default: // single-column update
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			ci := rng.Intn(len(ref.cols))
			v := propValue(rng)
			if err := tab.UpdateCol(id, ref.cols[ci], v); err != nil {
				t.Fatal(err)
			}
			row := append([]predicate.Value(nil), ref.rows[id]...)
			row[ci] = v
			ref.rows[id] = row
		}
	}
	// Mutating a dead row must fail loudly.
	for id := range dead {
		if err := tab.Update(id, randRow()...); err == nil {
			t.Fatalf("Update of deleted row %d succeeded", id)
		}
		if err := tab.UpdateCol(id, ref.cols[0], predicate.Int(1)); err == nil {
			t.Fatalf("UpdateCol of deleted row %d succeeded", id)
		}
		break
	}
	return dead
}

// rebuildFromSurvivors loads the live rows of each reference into a fresh
// store (fresh ids, fresh dictionaries, fresh zone maps) with the same
// indexes — oracle B.
func rebuildFromSurvivors(t *testing.T, tables []*refTable, deads []map[int]bool,
	indexes map[string][]string) *DB {
	t.Helper()
	db := NewDB()
	for ti, ref := range tables {
		specs := make([]Column, len(ref.cols))
		for i, c := range ref.cols {
			specs[i] = Column{Name: c, Kind: predicate.KindInt}
		}
		tab, err := db.CreateTable(ref.name, specs...)
		if err != nil {
			t.Fatal(err)
		}
		for id, row := range ref.rows {
			if deads[ti][id] {
				continue
			}
			if _, err := tab.Insert(row...); err != nil {
				t.Fatal(err)
			}
		}
		for _, col := range indexes[ref.name] {
			if err := tab.BuildIndex(col); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// rowKey serializes a joined result row by value, for store-vs-store
// comparison where row ids differ.
func rowKey(r JoinedRow, leftCols, rightCols []string) string {
	s := ""
	for _, c := range leftCols {
		v, _ := r.Left.Get(c)
		s += v.Key() + "|"
	}
	s += "//"
	if r.HasRight {
		for _, c := range rightCols {
			v, _ := r.Right.Get(c)
			s += v.Key() + "|"
		}
	}
	return s
}

func selectKeys(t *testing.T, db *DB, q Query, leftCols, rightCols []string) []string {
	t.Helper()
	rows, err := db.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = rowKey(r, leftCols, rightCols)
	}
	sort.Strings(out)
	return out
}

func TestMutationPropertySuite(t *testing.T) {
	leftCols, rightCols := []string{"k", "a", "s"}, []string{"k", "x"}
	for seed := int64(200); seed < 210; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		nl := []int{20, 200, 900, 1400}[rng.Intn(4)]
		nr := []int{10, 60, 300}[rng.Intn(3)]
		lt, lref := buildPropTables(t, rng, db, "lt", leftCols, nl)
		rt, rref := buildPropTables(t, rng, db, "rt", rightCols, nr)
		indexes := map[string][]string{}
		if rng.Float64() < 0.6 {
			if err := lt.BuildIndex("a"); err != nil {
				t.Fatal(err)
			}
			indexes["lt"] = append(indexes["lt"], "a")
		}
		if rng.Float64() < 0.5 {
			if err := rt.BuildIndex("k"); err != nil {
				t.Fatal(err)
			}
			indexes["rt"] = append(indexes["rt"], "k")
		}

		deadL := mutateTables(t, rng, lt, lref, 80)
		deadR := mutateTables(t, rng, rt, rref, 40)

		if got, want := lt.Live(), len(lref.rows)-len(deadL); got != want {
			t.Fatalf("seed %d: lt.Live() = %d, want %d", seed, got, want)
		}
		rebuilt := rebuildFromSurvivors(t, []*refTable{lref, rref},
			[]map[int]bool{deadL, deadR}, indexes)

		join := &JoinSpec{Table: "rt", LeftCol: "k", RightCol: "k"}
		attrs := []string{"a", "s", "x", "k", "lt.a", "rt.x", "rt.k", "zz"}
		for qi := 0; qi < 18; qi++ {
			where := propPred(rng, attrs, 2)
			useJoin := rng.Float64() < 0.6
			q := Query{From: "lt", Where: where}
			var wantPairs [][2]int
			if useJoin {
				q.Join = join
				wantPairs = refScanLive(lref, rref, join, where, deadL, deadR, 0)
			} else {
				wantPairs = refScanLive(lref, nil, nil, where, deadL, nil, 0)
			}
			tag := fmt.Sprintf("seed %d q %d (%s)", seed, qi, where)

			// Oracle A: id-exact against the tombstoned reference.
			rows, err := db.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			if !eqStrings(pairKeys(gotPairs(rows)), pairKeys(wantPairs)) {
				t.Fatalf("%s: Select mismatch: got %d rows, want %d", tag, len(rows), len(wantPairs))
			}
			cnt, err := db.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			if cnt != len(wantPairs) {
				t.Fatalf("%s: Count = %d, want %d", tag, cnt, len(wantPairs))
			}

			// Oracle B: value-identical against the rebuilt-from-survivors
			// store, across the query surface the algorithms use.
			gotKeys := selectKeys(t, db, q, leftCols, rightCols)
			rebKeys := selectKeys(t, rebuilt, q, leftCols, rightCols)
			if !eqStrings(gotKeys, rebKeys) {
				t.Fatalf("%s: mutated store Select != rebuilt store (%d vs %d rows)",
					tag, len(gotKeys), len(rebKeys))
			}
			cd1, err := db.CountDistinct(q, "lt.s")
			if err != nil {
				t.Fatal(err)
			}
			cd2, err := rebuilt.CountDistinct(q, "lt.s")
			if err != nil {
				t.Fatal(err)
			}
			if cd1 != cd2 {
				t.Fatalf("%s: CountDistinct %d != rebuilt %d", tag, cd1, cd2)
			}
			g1, err := db.CountGroupBy(q, "x")
			if err != nil {
				t.Fatal(err)
			}
			g2, err := rebuilt.CountGroupBy(q, "x")
			if err != nil {
				t.Fatal(err)
			}
			if len(g1) != len(g2) {
				t.Fatalf("%s: CountGroupBy groups %d != rebuilt %d", tag, len(g1), len(g2))
			}
			for i := range g1 {
				if g1[i].Count != g2[i].Count || g1[i].Key.Key() != g2[i].Key.Key() {
					t.Fatalf("%s: CountGroupBy row %d: (%s,%d) != rebuilt (%s,%d)", tag, i,
						g1[i].Key.Key(), g1[i].Count, g2[i].Key.Key(), g2[i].Count)
				}
			}
			i1 := map[int64]bool{}
			if err := db.ScanAttrInts(q, "lt.s", func(v int64) { i1[v] = true }); err != nil {
				t.Fatal(err)
			}
			i2 := map[int64]bool{}
			if err := rebuilt.ScanAttrInts(q, "lt.s", func(v int64) { i2[v] = true }); err != nil {
				t.Fatal(err)
			}
			if !eqInt64Sets(i1, i2) {
				t.Fatalf("%s: ScanAttrInts %d values != rebuilt %d", tag, len(i1), len(i2))
			}
			m1, _, ok1, err := db.MinMax(q, "s")
			if err != nil {
				t.Fatal(err)
			}
			m2, _, ok2, err := rebuilt.MinMax(q, "s")
			if err != nil {
				t.Fatal(err)
			}
			if ok1 != ok2 || (ok1 && m1.Key() != m2.Key()) {
				t.Fatalf("%s: MinMax mismatch vs rebuilt", tag)
			}

			// MatchLeftRows: the delta primitive must agree with the
			// reference on a random touched set.
			touched := make([]uint64, selWords(lt.Len()))
			for i := 0; i < lt.Len(); i++ {
				if rng.Float64() < 0.2 {
					selSet(touched, i)
				}
			}
			got, err := db.MatchLeftRows(q, touched)
			if err != nil {
				t.Fatal(err)
			}
			wantLids := map[int]bool{}
			for _, p := range wantPairs {
				wantLids[p[0]] = true
			}
			for lid := 0; lid < lt.Len(); lid++ {
				w, m := lid>>6, uint64(1)<<(uint(lid)&63)
				wantBit := touched[w]&m != 0 && wantLids[lid]
				gotBit := got[w]&m != 0
				if wantBit != gotBit {
					t.Fatalf("%s: MatchLeftRows row %d = %v, want %v", tag, lid, gotBit, wantBit)
				}
			}
		}
	}
}
