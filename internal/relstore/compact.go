package relstore

import "hypre/internal/bitset"

// This file is the tombstone-compaction half of the sustained-write path.
// Deletes are tombstones, so a long-lived stream monotonically grows the
// physical row count and every scan keeps paying for dead rows. When a
// commit leaves the dead-row fraction at or above the WithCompaction
// threshold, the table compacts: live rows are re-appended into fresh
// column vectors (rebuilding zone maps and string dictionaries tight), the
// tombstone mask resets, and the old→new row-id remap is published as a
// Compaction record for derived caches — evaluator row plumbing, delta
// masks, cache footprints — to apply incrementally via CompactionsSince.
// Compaction is the one event that breaks the "row ids are stable forever"
// contract, which is why it is opt-in per DB and announced through the same
// epoch gate as every other mutation.

// Compaction is one published row-id remap: Remap[old] is the row's new id,
// or -1 when the row was dead and dropped. Epoch is the generation the
// compaction committed at — a consumer synced to epoch e needs exactly the
// records with Epoch > e, oldest first, composed in order.
type Compaction struct {
	Epoch  uint64
	OldLen int
	Remap  []int32
}

// maxCompactions bounds the retained remap history. A consumer further
// behind than the evicted record cannot reconstruct current row ids and
// must rebuild (CompactionsSince reports ok=false).
const maxCompactions = 4

// maybeCompactLocked compacts when the dead-row fraction crosses the
// configured threshold. Callers hold the state lock exclusively; no-op
// unless WithCompaction enabled it and the table is at least a block big
// (tiny tables churn 100% of their rows and would compact every commit).
func (t *Table) maybeCompactLocked() {
	frac := t.cfg.compactFrac
	if frac <= 0 || t.nDead == 0 || t.n < blockSize {
		return
	}
	if float64(t.nDead) < frac*float64(t.n) {
		return
	}
	t.compactLocked()
}

// compactLocked rewrites the table without its dead rows and publishes the
// remap. Callers hold the state lock exclusively (and are outside any
// group-commit batch — the leader compacts after closing the batch).
func (t *Table) compactLocked() {
	remap := make([]int32, t.n)
	live := 0
	for id := 0; id < t.n; id++ {
		if t.isDead(id) {
			remap[id] = -1
		} else {
			remap[id] = int32(live)
			live++
		}
	}
	for i, c := range t.cols {
		nc := &column{}
		for id := 0; id < t.n; id++ {
			if remap[id] >= 0 {
				nc.append(c.value(id))
			}
		}
		t.cols[i] = nc
	}
	oldLen := t.n
	t.n = live
	t.nPublic.Store(int64(live))
	t.dead = bitset.New()
	t.nDead = 0

	// Remap the change log so consumers behind the compaction can still
	// drain it: surviving rows get their new id; entries for dropped rows
	// keep their pre-images under Row = -1 (updates included — a re-key
	// that later died still tells the consumer which OLD key's partners to
	// refresh), except dropped inserts, which vanish entirely: any pid they
	// introduced either died with them (the kept -1 delete carries it) or
	// was never seen by a consumer this far behind.
	nl := make([]RowChange, 0, len(t.chLog))
	for _, ch := range t.chLog {
		if ch.Row >= 0 && ch.Row < len(remap) && remap[ch.Row] >= 0 {
			ch.Row = int(remap[ch.Row])
			nl = append(nl, ch)
			continue
		}
		if ch.Kind == ChangeInsert {
			continue
		}
		ch.Row = -1
		nl = append(nl, ch)
	}
	t.chLog = nl

	t.mu.Lock()
	t.gen++
	epoch := t.gen
	// Row-id-keyed derived structures are now all wrong: drop the hash
	// indexes and join plumbing and let them rebuild lazily over the
	// compacted vectors.
	t.indexes = make(map[int]hashIndex)
	t.exists = nil
	t.mu.Unlock()

	t.comps = append(t.comps, Compaction{Epoch: epoch, OldLen: oldLen, Remap: remap})
	if len(t.comps) > maxCompactions {
		t.compactFloor = t.comps[0].Epoch
		t.comps = append(t.comps[:0:0], t.comps[1:]...)
	}
	if sc := t.cfg.counters; sc != nil {
		sc.Compactions.Add(1)
	}
}

// CompactionsSince returns the row-id remaps committed after epoch since,
// oldest first — compose them in order to map a pre-compaction row id
// forward. ok=false means the history no longer reaches back that far and
// the caller must rebuild whatever it keyed by row id.
func (t *Table) CompactionsSince(since uint64) ([]Compaction, bool) {
	t.state.RLock()
	defer t.state.RUnlock()
	return t.compactionsSinceLocked(since)
}

func (t *Table) compactionsSinceLocked(since uint64) ([]Compaction, bool) {
	if since < t.compactFloor {
		return nil, false
	}
	var out []Compaction
	for _, c := range t.comps {
		if c.Epoch > since {
			out = append(out, c)
		}
	}
	return out, true
}
