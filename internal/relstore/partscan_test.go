package relstore

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"hypre/internal/predicate"
)

// partScanDB builds a multi-block joined fixture: a papers table wide
// enough to span many kernel blocks (with NULLs, strings, floats, deletes)
// and an authorship join table.
func partScanDB(t testing.TB, rows int, seed int64) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := NewDB()
	papers, err := db.CreateTable("papers",
		Column{"pid", predicate.KindInt},
		Column{"year", predicate.KindInt},
		Column{"score", predicate.KindFloat},
		Column{"venue", predicate.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	links, err := db.CreateTable("writes",
		Column{"pid", predicate.KindInt},
		Column{"aid", predicate.KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	venues := []string{"VLDB", "SIGMOD", "ICDE", "KDD", "WWW"}
	for r := 0; r < rows; r++ {
		year := predicate.Value(predicate.Int(int64(1990 + rng.Intn(30))))
		if rng.Intn(40) == 0 {
			year = predicate.Null()
		}
		if _, err := papers.Insert(
			predicate.Int(int64(r)),
			year,
			predicate.Float(rng.Float64()*10),
			predicate.String(venues[rng.Intn(len(venues))]),
		); err != nil {
			t.Fatal(err)
		}
		for n := rng.Intn(3); n > 0; n-- {
			if _, err := links.Insert(predicate.Int(int64(r)), predicate.Int(int64(rng.Intn(50)))); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Tombstones so the dead mask participates.
	for n := rows / 50; n > 0; n-- {
		papers.Delete(rng.Intn(rows))
	}
	return db
}

// TestScanAttrRowSetPartsMatchesSerial proves the block-partitioned kernel
// fan-out yields the exact selection (and spill stream) of the serial scan
// across partition counts, query shapes, and split points.
func TestScanAttrRowSetPartsMatchesSerial(t *testing.T) {
	const rows = 5000 // ~5 kernel blocks
	db := partScanDB(t, rows, 7)
	join := &JoinSpec{Table: "writes", LeftCol: "pid", RightCol: "pid"}
	queries := []Query{
		{From: "papers"},
		{From: "papers", Where: mustPred(t, `year >= 2005`)},
		{From: "papers", Where: mustPred(t, `venue = "VLDB"`)},
		{From: "papers", Where: mustPred(t, `NOT (venue = "SIGMOD")`)},
		{From: "papers", Where: mustPred(t, `year BETWEEN 1995 AND 2010 AND score < 4.5`)},
		{From: "papers", Join: join, Where: mustPred(t, `year >= 2000`)},
		{From: "papers", Join: join, Where: mustPred(t, `aid = 7`)},
		{From: "papers", Join: join, Where: mustPred(t, `venue IN ("VLDB","KDD") AND aid < 10`)},
	}
	for qi, q := range queries {
		for _, splitAt := range []int{-1, rows - 100} {
			var wantSpill [][2]int64
			want, ok, err := db.ScanAttrRowSet(q, "pid", splitAt, func(lid int, v int64) {
				wantSpill = append(wantSpill, [2]int64{int64(lid), v})
			})
			if err != nil || !ok {
				t.Fatalf("query %d: serial scan ok=%v err=%v", qi, ok, err)
			}
			for _, parts := range []int{1, 2, 3, runtime.NumCPU(), 64} {
				var gotSpill [][2]int64
				got, ok, err := db.ScanAttrRowSetParts(q, "pid", splitAt, func(lid int, v int64) {
					gotSpill = append(gotSpill, [2]int64{int64(lid), v})
				}, parts)
				if err != nil || !ok {
					t.Fatalf("query %d parts %d: ok=%v err=%v", qi, parts, ok, err)
				}
				tag := fmt.Sprintf("query %d parts %d splitAt %d", qi, parts, splitAt)
				if got.Len() != want.Len() {
					t.Fatalf("%s: %d rows, want %d", tag, got.Len(), want.Len())
				}
				got.ForEach(func(lid int) bool {
					if !want.Contains(lid) {
						t.Fatalf("%s: stray row %d", tag, lid)
					}
					return true
				})
				if len(gotSpill) != len(wantSpill) {
					t.Fatalf("%s: %d spills, want %d", tag, len(gotSpill), len(wantSpill))
				}
				for i := range gotSpill {
					if gotSpill[i] != wantSpill[i] {
						t.Fatalf("%s: spill[%d]=%v want %v", tag, i, gotSpill[i], wantSpill[i])
					}
				}
			}
		}
	}
}

func mustPred(t testing.TB, src string) predicate.Predicate {
	t.Helper()
	p, err := predicate.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
