package relstore

import (
	"math"

	"hypre/internal/predicate"
)

// blockSize is the zone-map granularity: one min/max/flags entry per
// blockSize rows per column. 1024 rows = 16 selection-vector words, so block
// boundaries always align with the 64-bit words of a selection bitmap.
const blockSize = 1024

// zone is the per-block statistics entry of one column: the numeric min/max
// over the block plus kind flags. Kernels use it to skip blocks that cannot
// match a predicate and to bulk-accept blocks that cannot fail it.
type zone struct {
	min, max float64 // over non-NaN numeric values; valid when hasNum && !hasNaN only
	hasNum   bool    // any int/float row (including NaN floats)
	hasInt   bool
	hasFloat bool
	hasStr   bool
	hasNull  bool
	hasNaN   bool // NaN compares "equal" to everything under predicate.Compare, so it disables pruning
}

// pureNum reports whether every row of the block is a non-NaN numeric, the
// precondition for bulk-accepting the block on a range test.
func (z *zone) pureNum() bool {
	return z.hasNum && !z.hasStr && !z.hasNull && !z.hasNaN
}

// pureInt reports whether every row of the block is an int, enabling the
// tight typed loop without per-row kind dispatch.
func (z *zone) pureInt() bool {
	return z.hasInt && !z.hasFloat && !z.hasStr && !z.hasNull
}

// pureStr reports whether every row of the block is a string.
func (z *zone) pureStr() bool {
	return z.hasStr && !z.hasNum && !z.hasNull
}

// Adaptive dictionary thresholds: a column starts out dictionary-encoded,
// but once it has seen dictAdaptMinDistinct distinct strings and more than
// one string in dictAdaptRatioDen is distinct (i.e. the dictionary barely
// deduplicates — titles, abstracts), it migrates to raw per-row storage and
// stops paying the hash-map insert on every append.
const (
	dictAdaptMinDistinct = 256
	dictAdaptRatioDen    = 2 // migrate when distinct > strings/dictAdaptRatioDen
)

// strDict is a per-column string dictionary: values are stored once and rows
// carry 32-bit codes, so equality scans compare codes instead of bytes.
type strDict struct {
	idx  map[string]uint32
	strs []string
}

// code returns the dictionary code of s, ok=false when s never occurs in the
// column — which lets an equality scan return empty without touching a row.
func (d *strDict) code(s string) (uint32, bool) {
	c, ok := d.idx[s]
	return c, ok
}

func (d *strDict) add(s string) uint32 {
	if d.idx == nil {
		d.idx = make(map[string]uint32)
	}
	if c, ok := d.idx[s]; ok {
		return c
	}
	c := uint32(len(d.strs))
	d.idx[s] = c
	d.strs = append(d.strs, s)
	return c
}

// column is the typed columnar storage of one attribute. Rows keep a kind
// tag; numeric payloads live in nums (int64 bits for KindInt, float64 bits
// for KindFloat), string payloads are dictionary codes in codes — or, after
// the adaptive-dictionary migration, raw strings in rawStrs. The payload
// vectors are allocated lazily on the first value of their class, so a pure
// string column never pays for a numeric vector and vice versa.
type column struct {
	kinds   []predicate.Kind
	nums    []uint64 // len == len(kinds) once allocated
	codes   []uint32 // len == len(kinds) once allocated; dict mode only
	rawStrs []string // len == len(kinds) once allocated; raw mode only
	rawMode bool     // high-cardinality column migrated off the dictionary
	nStr    int      // string rows appended (adaptive-dictionary statistic)
	nNoInt  int      // rows intAt cannot convert (NULL/bool); 0 lets set scans skip the per-row probe
	dict    strDict
	zones   []zone
	nan     bool // any NaN row anywhere (column-level anyNaN shortcut)
}

func (c *column) len() int { return len(c.kinds) }

// anyNaN reports whether any row holds a NaN float. NaN three-way-compares
// as "equal" to every number under predicate.Compare, which hash-index
// equality cannot reproduce, so candidate pruning must refuse such columns.
func (c *column) anyNaN() bool { return c.nan }

// append stores v as the next row and folds it into the block's zone entry.
func (c *column) append(v predicate.Value) {
	row := len(c.kinds)
	k := v.Kind()
	c.kinds = append(c.kinds, k)
	switch k {
	case predicate.KindInt:
		c.growNums(row)
		c.nums = append(c.nums, uint64(v.AsInt()))
	case predicate.KindFloat:
		c.growNums(row)
		c.nums = append(c.nums, math.Float64bits(v.AsFloat()))
	case predicate.KindString:
		c.nStr++
		if c.rawMode {
			c.growRaw(row)
			c.rawStrs = append(c.rawStrs, v.AsString())
		} else {
			c.growCodes(row)
			c.codes = append(c.codes, c.dict.add(v.AsString()))
			if len(c.dict.strs) >= dictAdaptMinDistinct &&
				len(c.dict.strs)*dictAdaptRatioDen > c.nStr {
				c.migrateToRaw()
			}
		}
	default:
		c.nNoInt++
	}
	// Keep any already-allocated sibling vector in lockstep so row offsets
	// stay valid for every row regardless of its kind.
	if c.nums != nil && len(c.nums) <= row {
		c.nums = append(c.nums, 0)
	}
	if c.codes != nil && len(c.codes) <= row {
		c.codes = append(c.codes, 0)
	}
	if c.rawStrs != nil && len(c.rawStrs) <= row {
		c.rawStrs = append(c.rawStrs, "")
	}

	bi := row / blockSize
	if bi == len(c.zones) {
		c.zones = append(c.zones, zone{min: math.Inf(1), max: math.Inf(-1)})
	}
	c.zones[bi].fold(k, v)
	if c.zones[bi].hasNaN {
		c.nan = true
	}
}

// fold accumulates one row's kind and value into the zone entry.
func (z *zone) fold(k predicate.Kind, v predicate.Value) {
	switch k {
	case predicate.KindNull:
		z.hasNull = true
	case predicate.KindString:
		z.hasStr = true
	default:
		z.hasNum = true
		if k == predicate.KindInt {
			z.hasInt = true
		} else {
			z.hasFloat = true
		}
		f := v.AsFloat()
		if math.IsNaN(f) {
			z.hasNaN = true
		} else {
			if f < z.min {
				z.min = f
			}
			if f > z.max {
				z.max = f
			}
		}
	}
}

// set overwrites row in place (the update path) and rebuilds the affected
// block's zone entry exactly — updates must be able to *shrink* a zone, or
// repeated updates would degrade every block to "anything goes".
func (c *column) set(row int, v predicate.Value) {
	c.rebuildZone(c.setRaw(row, v))
}

// setRaw overwrites the row's payload without touching zone state and
// returns the block it dirtied. Group-commit batches use it to defer the
// zone rebuild to one pass per batch (endBatchLocked); until that pass runs
// the block's zone is stale, which is safe only because the exclusive state
// lock keeps every reader out for the batch's whole critical section.
func (c *column) setRaw(row int, v predicate.Value) (blk int) {
	switch c.kinds[row] {
	case predicate.KindString:
		c.nStr--
	case predicate.KindInt, predicate.KindFloat:
	default:
		c.nNoInt--
	}
	k := v.Kind()
	c.kinds[row] = k
	switch k {
	case predicate.KindInt:
		c.ensureNums()
		c.nums[row] = uint64(v.AsInt())
	case predicate.KindFloat:
		c.ensureNums()
		c.nums[row] = math.Float64bits(v.AsFloat())
	case predicate.KindString:
		c.nStr++
		if c.rawMode {
			c.ensureRaw()
			c.rawStrs[row] = v.AsString()
		} else {
			c.ensureCodes()
			c.codes[row] = c.dict.add(v.AsString())
		}
	default:
		c.nNoInt++
	}
	return row / blockSize
}

// rebuildZone recomputes one block's zone entry from its rows and refreshes
// the column-level NaN shortcut.
func (c *column) rebuildZone(bi int) {
	c.rebuildZoneOnly(bi)
	c.refreshNaN()
}

// rebuildZoneOnly recomputes one block's zone entry exactly from its rows.
// Tombstoned rows still participate — their values remain in the vectors,
// so including them keeps the zone a sound over-approximation and the typed
// bulk loops valid for every physical row.
func (c *column) rebuildZoneOnly(bi int) {
	lo := bi * blockSize
	hi := lo + blockSize
	if hi > len(c.kinds) {
		hi = len(c.kinds)
	}
	z := zone{min: math.Inf(1), max: math.Inf(-1)}
	for r := lo; r < hi; r++ {
		z.fold(c.kinds[r], c.value(r))
	}
	c.zones[bi] = z
}

// refreshNaN recomputes the column-level anyNaN shortcut from the zones.
func (c *column) refreshNaN() {
	nan := false
	for i := range c.zones {
		if c.zones[i].hasNaN {
			nan = true
			break
		}
	}
	c.nan = nan
}

// migrateToRaw abandons the dictionary for raw per-row string storage: the
// adaptive fallback for high-cardinality columns (titles, abstracts) where
// nearly every value is distinct and the dictionary map is pure overhead.
func (c *column) migrateToRaw() {
	raw := make([]string, len(c.kinds))
	for r, k := range c.kinds {
		if k == predicate.KindString {
			raw[r] = c.dict.strs[c.codes[r]]
		}
	}
	c.rawStrs = raw
	c.codes = nil
	c.dict = strDict{}
	c.rawMode = true
}

func (c *column) growNums(row int) {
	if c.nums == nil {
		c.nums = make([]uint64, row, row+64)
	}
}

func (c *column) growCodes(row int) {
	if c.codes == nil {
		c.codes = make([]uint32, row, row+64)
	}
}

func (c *column) growRaw(row int) {
	if c.rawStrs == nil {
		c.rawStrs = make([]string, row, row+64)
	}
}

func (c *column) ensureNums() {
	if c.nums == nil {
		c.nums = make([]uint64, len(c.kinds))
	}
}

func (c *column) ensureCodes() {
	if c.codes == nil {
		c.codes = make([]uint32, len(c.kinds))
	}
}

func (c *column) ensureRaw() {
	if c.rawStrs == nil {
		c.rawStrs = make([]string, len(c.kinds))
	}
}

// strAt returns the string payload of a KindString row in either storage
// mode.
func (c *column) strAt(row int) string {
	if c.rawMode {
		return c.rawStrs[row]
	}
	return c.dict.strs[c.codes[row]]
}

// value reboxes the row as a predicate.Value.
func (c *column) value(row int) predicate.Value {
	switch c.kinds[row] {
	case predicate.KindInt:
		return predicate.Int(int64(c.nums[row]))
	case predicate.KindFloat:
		return predicate.Float(math.Float64frombits(c.nums[row]))
	case predicate.KindString:
		return predicate.String(c.strAt(row))
	default:
		return predicate.Null()
	}
}

// numAt returns the row's numeric payload widened to float64, ok=false for
// NULL/string rows.
func (c *column) numAt(row int) (float64, bool) {
	switch c.kinds[row] {
	case predicate.KindInt:
		return float64(int64(c.nums[row])), true
	case predicate.KindFloat:
		return math.Float64frombits(c.nums[row]), true
	default:
		return 0, false
	}
}

// intAt returns the row's value widened with AsInt (matching
// Value.AsInt: floats truncate, strings and NULLs are 0) plus a null flag.
func (c *column) intAt(row int) (int64, bool) {
	switch c.kinds[row] {
	case predicate.KindInt:
		return int64(c.nums[row]), true
	case predicate.KindFloat:
		return int64(math.Float64frombits(c.nums[row])), true
	case predicate.KindString:
		return 0, true
	default:
		return 0, false
	}
}

// litVal is a predicate literal pre-analyzed for typed comparison: the
// numeric widening and string payload are extracted once per scan instead of
// once per row.
type litVal struct {
	isNum bool
	isStr bool
	f     float64
	s     string
}

func analyzeLit(v predicate.Value) litVal {
	switch {
	case v.IsNumeric():
		return litVal{isNum: true, f: v.AsFloat()}
	case v.Kind() == predicate.KindString:
		return litVal{isStr: true, s: v.AsString()}
	default:
		return litVal{}
	}
}

// cmp3At three-way-compares the row's value against a pre-analyzed literal,
// mirroring predicate.Compare exactly: ok=false for NULL or kind-mismatched
// operands, and NaN floats compare as 0 against every number (float64
// three-way collapses NaN to "equal", which is the engine's historical
// behaviour the vectorized kernels must preserve).
func (c *column) cmp3At(row int, lit litVal) (int, bool) {
	switch c.kinds[row] {
	case predicate.KindInt:
		if !lit.isNum {
			return 0, false
		}
		return cmp3f(float64(int64(c.nums[row])), lit.f), true
	case predicate.KindFloat:
		if !lit.isNum {
			return 0, false
		}
		return cmp3f(math.Float64frombits(c.nums[row]), lit.f), true
	case predicate.KindString:
		if !lit.isStr {
			return 0, false
		}
		s := c.strAt(row)
		switch {
		case s < lit.s:
			return -1, true
		case s > lit.s:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

func cmp3f(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// opMatch applies a comparison operator to a three-way result.
func opMatch(c int, op predicate.Op) bool {
	switch op {
	case predicate.OpEq:
		return c == 0
	case predicate.OpNe:
		return c != 0
	case predicate.OpLt:
		return c < 0
	case predicate.OpLe:
		return c <= 0
	case predicate.OpGt:
		return c > 0
	case predicate.OpGe:
		return c >= 0
	default:
		return false
	}
}
