package relstore

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"hypre/internal/bitset"
	"hypre/internal/predicate"
)

// This file is the streaming half of the scan engine: a pull-based block
// iterator that runs the same vectorized kernels as ScanAttrRowSet, but one
// 1024-row block at a time into bitset.Block scratches — a selection never
// round-trips through a fully materialized bitset.Set, and the join side is
// answered by per-row index probes (or pre-resolved candidate rows) instead
// of the O(n)-to-build existence vector / right→left CSR. Consumers that
// stop pulling early (the top-k threshold rule) simply never pay for the
// remaining blocks.

// The kernels address rows block-relative through bitset.Block, so the two
// packages must agree on the block width.
var _ [bitset.BlockBits - blockSize]struct{}
var _ [blockSize - bitset.BlockBits]struct{}

// ErrStreamUnsupported reports a query shape the streaming iterator cannot
// serve (mixed-side conjuncts, nodes the vectorized kernels don't know, a
// Limit, or a non-left attr). Callers fall back to the materialized path.
var ErrStreamUnsupported = errors.New("relstore: query shape unsupported by streaming scan")

// AttrRowIter streams the rows ScanAttrRowSet would select, block by block,
// in ascending row order. It holds its tables' shared state locks from Open
// to Close, so one scan sees one consistent epoch; keep iterators short-lived
// (they block writers).
type AttrRowIter struct {
	left, right       *Table
	leftPos, rightPos int
	attrPos           int
	nBlocks           int
	maxBlock          int // last block that can yield a row; -1 = provably empty
	cur               int // next block to consider

	leftTree predicate.Predicate // nil = no left-side restriction
	resolve  func(string) int
	probe    func(lid int) bool // join admission per row; nil = no join test
	cand     *bitset.Set        // candidate mode: admitted rows; nil = scan mode
	possible []bool             // scan mode: zone-map verdict per block

	be      blockEval
	sel     bitset.Block
	deadBlk bitset.Block
	lids    []int32
	vals    []int64

	unlock func()
}

// AttrRowIterGroup is a set of iterators over one consistent snapshot: all
// distinct tables are share-locked once, in canonical order, before any
// iterator plans — the safe way to stream several predicates of one profile
// concurrently without interleaving lock acquisition with a waiting writer.
type AttrRowIterGroup struct {
	Iters  []*AttrRowIter
	unlock func()
}

// OpenAttrRowIterGroup opens one streaming iterator per query, all over the
// same attr and the same locked snapshot. On error nothing stays locked.
func (db *DB) OpenAttrRowIterGroup(qs []Query, attr string) (*AttrRowIterGroup, error) {
	var tables []*Table
	for _, q := range qs {
		t := db.Table(q.From)
		if t == nil {
			return nil, fmt.Errorf("relstore: unknown table %q", q.From)
		}
		tables = append(tables, t)
		if q.Join != nil {
			r := db.Table(q.Join.Table)
			if r == nil {
				return nil, fmt.Errorf("relstore: unknown join table %q", q.Join.Table)
			}
			tables = append(tables, r)
		}
	}
	unlock := lockSharedTables(tables)
	g := &AttrRowIterGroup{unlock: unlock}
	for _, q := range qs {
		it, err := db.planAttrRowIter(q, attr)
		if err != nil {
			unlock()
			return nil, err
		}
		g.Iters = append(g.Iters, it)
	}
	return g, nil
}

// Close releases the group's snapshot locks. Idempotent.
func (g *AttrRowIterGroup) Close() {
	if g.unlock != nil {
		g.unlock()
		g.unlock = nil
	}
}

// OpenAttrRowIter opens a single streaming iterator; the caller must Close
// it to release the snapshot lock.
func (db *DB) OpenAttrRowIter(q Query, attr string) (*AttrRowIter, error) {
	g, err := db.OpenAttrRowIterGroup([]Query{q}, attr)
	if err != nil {
		return nil, err
	}
	it := g.Iters[0]
	it.unlock = g.unlock
	return it, nil
}

// Close releases a single-iterator snapshot lock (no-op for group members;
// the group owns their locks). Idempotent.
func (it *AttrRowIter) Close() {
	if it.unlock != nil {
		it.unlock()
		it.unlock = nil
	}
}

// lockSharedTables takes the shared state locks of a table set —
// deduplicated, in creation (seq) order, the multi-table generalization of
// lockShared — and returns the paired release.
func lockSharedTables(ts []*Table) func() {
	sorted := make([]*Table, 0, len(ts))
	for _, t := range ts {
		if !slices.Contains(sorted, t) {
			sorted = append(sorted, t)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].seq < sorted[j].seq })
	for _, t := range sorted {
		t.state.RLock()
	}
	return func() {
		for i := len(sorted) - 1; i >= 0; i-- {
			sorted[i].state.RUnlock()
		}
	}
}

// planAttrRowIter validates the query shape and builds the block plan.
// Callers hold the state locks of every involved table.
//
// Two plan modes:
//
//   - scan mode: every block gets a zone-map prepass verdict; surviving
//     blocks evaluate the left predicate tree through the kernels into a
//     Block scratch, subtract tombstones, and admit rows through the join
//     probe. Work is proportional to the blocks the zone maps cannot rule
//     out.
//
//   - candidate mode: when the right-side restriction is index-usable (the
//     ubiquitous author.aid = N), the matching right rows are resolved up
//     front and walked back through the left join index, bucketing admitted
//     rows per block. Work is proportional to the answer, not the table.
func (db *DB) planAttrRowIter(q Query, attr string) (*AttrRowIter, error) {
	left, right, leftPos, rightPos, attrPos, where, err := db.resolveAttrRowScan(q, attr)
	if err != nil {
		return nil, err
	}
	it := &AttrRowIter{
		left: left, right: right,
		leftPos: leftPos, rightPos: rightPos, attrPos: attrPos,
		nBlocks:  (left.n + blockSize - 1) / blockSize,
		maxBlock: -1,
	}
	it.resolve = func(a string) int {
		if side, p := bindAttr(a, left, right); side == sideLeft {
			return p
		}
		return -1
	}

	// Split the WHERE by side, exactly as matchLeftVec does.
	var leftParts, rightParts []predicate.Predicate
	if right == nil {
		leftParts = append(leftParts, where)
	} else {
		for _, c := range flattenAnd(where) {
			side, ok := classifySide(c, left, right)
			if !ok {
				return nil, ErrStreamUnsupported
			}
			if side == sideRight {
				rightParts = append(rightParts, c)
			} else {
				leftParts = append(leftParts, c)
			}
		}
	}
	var leftTree predicate.Predicate
	if len(leftParts) > 0 {
		leftTree = predicate.NewAnd(leftParts...)
	}
	if leftTree != nil {
		if _, isTrue := leftTree.(predicate.True); isTrue {
			leftTree = nil
		} else if !vecOK(leftTree) {
			return nil, ErrStreamUnsupported
		}
	}
	it.leftTree = leftTree

	if right != nil {
		rightIdx := right.ensureIndex(rightPos)
		lc := left.cols[leftPos]
		if len(rightParts) == 0 {
			// Existence-only join: any live partner admits the row.
			it.probe = func(lid int) bool {
				for _, rid := range rightIdx[indexKey(lc.value(lid))] {
					if !right.isDead(rid) {
						return true
					}
				}
				return false
			}
		} else {
			rightPred := predicate.NewAnd(rightParts...)
			rf, okc := compileIDFilter(rightPred, left, right)
			if !okc {
				return nil, ErrStreamUnsupported
			}
			if rids, ok := rightCandidateIDs(left, right, rightPred); ok {
				return it.planCandidates(rids, rf)
			}
			it.probe = func(lid int) bool {
				for _, rid := range rightIdx[indexKey(lc.value(lid))] {
					if !right.isDead(rid) && rf(lid, rid, true) {
						return true
					}
				}
				return false
			}
		}
	}

	// Scan mode: zone-map prepass over every block.
	it.possible = make([]bool, it.nBlocks)
	for bi := range it.possible {
		if it.leftTree == nil || left.blockPossible(it.leftTree, it.resolve, bi) {
			it.possible[bi] = true
			it.maxBlock = bi
		}
	}
	return it, nil
}

// planCandidates finishes an index-usable right restriction: filter the
// candidate right rows, walk each one's left partners, and collect the
// admitted left rows (live, left-predicate-passing) in a compressed set —
// distinct right rows reaching the same left row dedup for free, and
// NextBlock pulls sorted 1024-row windows straight out of the containers.
func (it *AttrRowIter) planCandidates(rids []int, rf idFilter) (*AttrRowIter, error) {
	left, right := it.left, it.right
	var lf idFilter
	if it.leftTree != nil {
		var ok bool
		lf, ok = compileIDFilter(it.leftTree, left, right)
		if !ok {
			return nil, ErrStreamUnsupported
		}
	}
	lidx := left.ensureIndex(it.leftPos)
	rc := right.cols[it.rightPos]
	it.cand = bitset.New()
	for _, rid := range rids {
		if right.isDead(rid) || !rf(0, rid, true) {
			continue
		}
		for _, lid := range lidx[indexKey(rc.value(rid))] {
			if left.isDead(lid) {
				continue
			}
			if lf != nil && !lf(lid, 0, false) {
				continue
			}
			it.cand.Add(lid)
		}
	}
	if m, ok := it.cand.Max(); ok {
		it.maxBlock = m / blockSize
	}
	return it, nil
}

// NumBlocks returns the number of blocks covering the scanned table.
func (it *AttrRowIter) NumBlocks() int { return it.nBlocks }

// ZoneSkipped returns how many blocks the zone-map prepass ruled out at
// plan time — blocks NextBlock will never evaluate. Candidate mode reports
// 0: its work is proportional to the answer, not to surviving blocks, so
// "skipped" has no block-count meaning there.
func (it *AttrRowIter) ZoneSkipped() int {
	if it.possible == nil {
		return 0
	}
	n := 0
	for _, ok := range it.possible {
		if !ok {
			n++
		}
	}
	return n
}

// MaxBlock returns the last block index that can still yield a row (-1 when
// the scan is provably empty) — the bound that lets a consumer retire this
// predicate from its stopping rule.
func (it *AttrRowIter) MaxBlock() int { return it.maxBlock }

// NextBlock advances to the next block containing at least one matching row
// and returns its index plus the matching rows (ascending row ids with
// their attr values, rows with non-convertible attrs dropped exactly like
// attrRowSetTail). The returned slices are reused by the next call.
// ok=false means the scan is exhausted. A consumer that stops pulling
// leaves all later blocks unevaluated.
func (it *AttrRowIter) NextBlock() (bi int, lids []int32, vals []int64, ok bool) {
	for it.cur <= it.maxBlock {
		var b int
		if it.cand != nil {
			nxt, any := it.cand.NextSet(it.cur * blockSize)
			if !any {
				break
			}
			b = nxt / blockSize
			it.cur = b + 1
			it.cand.ReadBlock(b*blockSize, &it.sel)
			it.emitSel(false)
		} else {
			b = it.cur
			it.cur++
			if !it.possible[b] {
				continue
			}
			it.evalScanBlock(b)
		}
		if len(it.lids) > 0 {
			return b, it.lids, it.vals, true
		}
	}
	return 0, nil, nil, false
}

// emitSel converts the selected rows of it.sel into the output slices; the
// join probe only applies in scan mode (candidate rows were admitted at plan
// time).
func (it *AttrRowIter) emitSel(probed bool) {
	it.lids, it.vals = it.lids[:0], it.vals[:0]
	c := it.left.cols[it.attrPos]
	it.sel.ForEach(func(lid int) bool {
		if probed && it.probe != nil && !it.probe(lid) {
			return true
		}
		if v, vok := c.intAt(lid); vok {
			it.lids = append(it.lids, int32(lid))
			it.vals = append(it.vals, v)
		}
		return true
	})
}

// evalScanBlock runs the kernels over one block (scan mode): left tree into
// the Block scratch, tombstone subtraction, then per-row join probe and
// attr conversion.
func (it *AttrRowIter) evalScanBlock(b int) {
	t := it.left
	base := b * blockSize
	it.lids, it.vals = it.lids[:0], it.vals[:0]
	sel := &it.sel
	if it.leftTree == nil {
		sel.Reset(base)
		sel.SetRange(base, min(base+blockSize, t.n))
	} else {
		t.evalBlock(it.leftTree, it.resolve, b, sel, &it.be)
		if !sel.Any() {
			return
		}
	}
	if t.nDead > 0 {
		t.dead.ReadBlock(base, &it.deadBlk)
		sel.AndNot(&it.deadBlk)
	}
	it.emitSel(true)
}

// blockEval is the reusable scratch of the per-block tree evaluator: spare
// Blocks for inner nodes and the one-element block-restriction list the
// kernels take.
type blockEval struct {
	free []*bitset.Block
	blks [1]int32
}

func (be *blockEval) get() *bitset.Block {
	if n := len(be.free); n > 0 {
		b := be.free[n-1]
		be.free = be.free[:n-1]
		return b
	}
	return new(bitset.Block)
}

func (be *blockEval) put(b *bitset.Block) { be.free = append(be.free, b) }

// evalBlock evaluates a vecOK predicate tree over one block into dst — the
// Block-granular mirror of evalVec's composition: leaves run the vectorized
// kernels restricted to this block, inner nodes combine word-parallel.
func (t *Table) evalBlock(p predicate.Predicate, resolve func(string) int, bi int, dst *bitset.Block, be *blockEval) {
	base := bi * blockSize
	dst.Reset(base)
	be.blks[0] = int32(bi)
	switch node := p.(type) {
	case predicate.True:
		dst.SetRange(base, min(base+blockSize, t.n))
	case *predicate.Cmp:
		if pos := resolve(node.Attr); pos >= 0 {
			scanCmp(t, pos, node.Op, node.Val, dst, be.blks[:])
		}
	case *predicate.Between:
		if pos := resolve(node.Attr); pos >= 0 {
			scanBetween(t, pos, node.Lo, node.Hi, dst, be.blks[:])
		}
	case *predicate.In:
		if pos := resolve(node.Attr); pos >= 0 {
			scanIn(t, pos, node.Vals, dst, be.blks[:])
		}
	case *predicate.Not:
		t.evalBlock(node.Kid, resolve, bi, dst, be)
		dst.Not(t.n)
	case *predicate.And:
		if len(node.Kids) == 0 { // empty conjunction is TRUE
			dst.SetRange(base, min(base+blockSize, t.n))
			return
		}
		t.evalBlock(node.Kids[0], resolve, bi, dst, be)
		tmp := be.get()
		for _, k := range node.Kids[1:] {
			if !dst.Any() {
				break
			}
			t.evalBlock(k, resolve, bi, tmp, be)
			dst.And(tmp)
		}
		be.put(tmp)
	case *predicate.Or:
		tmp := be.get()
		for _, k := range node.Kids {
			t.evalBlock(k, resolve, bi, tmp, be)
			dst.Or(tmp)
		}
		be.put(tmp)
	}
}

// vecOK reports whether every node of p is one the vectorized kernels know —
// the upfront version of the mid-walk ok=false evalVec reports, needed
// because the iterator must refuse a tree before streaming starts.
func vecOK(p predicate.Predicate) bool {
	switch node := p.(type) {
	case predicate.True, *predicate.Cmp, *predicate.Between, *predicate.In:
		return true
	case *predicate.Not:
		return vecOK(node.Kid)
	case *predicate.And:
		for _, k := range node.Kids {
			if !vecOK(k) {
				return false
			}
		}
		return true
	case *predicate.Or:
		for _, k := range node.Kids {
			if !vecOK(k) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// blockPossible is the zone-map prepass: can any row of block bi satisfy p?
// Over-approximation is fine (the kernels re-check); returning false for a
// block with a matching row would be a wrong answer, so every uncertain
// case says true. The leaf tests mirror the kernels' own zone skips.
func (t *Table) blockPossible(p predicate.Predicate, resolve func(string) int, bi int) bool {
	switch node := p.(type) {
	case predicate.True:
		return true
	case *predicate.Cmp:
		pos := resolve(node.Attr)
		if pos < 0 {
			return false
		}
		z := &t.cols[pos].zones[bi]
		lit := analyzeLit(node.Val)
		switch {
		case lit.isNum:
			if !z.hasNum {
				return false
			}
			return z.hasNaN || !zoneSkipCmp(z, node.Op, lit.f)
		case lit.isStr:
			return z.hasStr
		default: // NULL literal matches nothing
			return false
		}
	case *predicate.Between:
		pos := resolve(node.Attr)
		if pos < 0 {
			return false
		}
		z := &t.cols[pos].zones[bi]
		llo, lhi := analyzeLit(node.Lo), analyzeLit(node.Hi)
		switch {
		case llo.isNum && lhi.isNum:
			if !z.hasNum {
				return false
			}
			return z.hasNaN || !(z.max < llo.f || z.min > lhi.f)
		case llo.isStr && lhi.isStr:
			return z.hasStr
		default: // mixed-class bounds can never both compare
			return false
		}
	case *predicate.In:
		pos := resolve(node.Attr)
		if pos < 0 {
			return false
		}
		z := &t.cols[pos].zones[bi]
		for _, v := range node.Vals {
			lv := analyzeLit(v)
			switch {
			case lv.isStr && z.hasStr:
				return true
			case lv.isNum && z.hasNum:
				if z.hasNaN || lv.f != lv.f || (lv.f >= z.min && lv.f <= z.max) {
					return true
				}
			}
		}
		return false
	case *predicate.Not:
		// A NOT can match rows its kid's zones exclude; no pruning.
		return true
	case *predicate.And:
		for _, k := range node.Kids {
			if !t.blockPossible(k, resolve, bi) {
				return false
			}
		}
		return true
	case *predicate.Or:
		for _, k := range node.Kids {
			if t.blockPossible(k, resolve, bi) {
				return true
			}
		}
		return false
	default:
		return true
	}
}
