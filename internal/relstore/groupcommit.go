package relstore

import (
	"runtime"
	"sync"
)

// This file is the multi-writer group-commit path (relstore.WithGroupCommit).
//
// The serial write path pays one exclusive state-lock acquisition, one epoch
// bump, and one exact zone-map rebuild per mutation — fine for a single
// writer, but under N concurrent writers the exclusive lock serializes them
// one op at a time, every reader gap is re-fought N times, and the exact
// per-update zone rebuild (a fold over the touched block's rows) dominates
// the stream's CPU. The commit queue amortizes all three costs: the first
// writer to arrive becomes the *leader*, locks the store once, and applies
// every op that queues behind it — round after round — as one *hold*; the
// deferred zone-repair pass then fixes each dirtied block once per hold
// instead of once per update, and the whole hold shares one epoch bump per
// touched table. A writer with no concurrent peers is a leader whose queue
// stays empty: lock, apply, one free yield, unlock — the serial path plus a
// queue-mutex hop.
//
// The queue is store-wide, not per-table, for two reasons. First, an op
// stream that alternates tables (insert a paper, then its links) would
// starve per-table queues — each writer's next mutation lands in the other
// table's queue, so neither chain sustains. Second, it makes multi-table
// atomic batches (Batch) possible: a paper insert and its authorship links
// commit as one unit, invisible in any intermediate state. The price is
// that a hold pins every table of the store; maxHoldOps bounds how long.
//
// Semantics are identical to applying the queued ops serially in admission
// order: the hold runs under every table's exclusive state lock (taken in
// creation order, the same order scans use, so there is no deadlock), no
// scan observes an intermediate state, and each op's change-log entries
// carry its table's hold-shared epoch (epochs stay non-decreasing, which is
// all ChangedSince needs). Each op still performs its own eager index
// repair; only the zone repair and the epoch bump are hold-batched.
//
// Tables must be created before group-commit traffic starts: a hold locks
// the table set captured at its start, so CreateTable racing with committing
// writers is not supported (the same load-then-serve discipline the lazy
// index maps already assume).

// maxHoldOps bounds one lock hold: the leader ends the hold (repairing
// zones, letting waiting readers in) at least every maxHoldOps applied op
// groups, so reader admission latency stays bounded no matter how hard the
// writers push.
const maxHoldOps = 256

// holdPatience is how many consecutive empty queue drains (each preceded by
// one processor yield) the leader tolerates before concluding the stream
// went quiet and ending the hold. A woken follower needs a few scheduler
// slots to return from its previous commit, plan its next op, and enqueue
// it; a too-eager break ends holds the stream could still extend.
const holdPatience = 2

// commitQueue is the store-wide coalescing point, shared by every table of
// one DB.
type commitQueue struct {
	mu      sync.Mutex
	tables  []*Table // every table of the store, creation (seq) order
	pending []*pendingOp
	active  bool // a leader is draining; arrivals must enqueue
}

// tableMut is one planned mutation: a closure that applies it to its table
// under the exclusive state lock (capturing its own result vars).
type tableMut struct {
	t  *Table
	do func()
}

// pendingOp is one queued op group — one or more mutations that commit as a
// unit; done signals completion. If the leader ends its tenure with the
// queue non-empty it promotes the head op instead of applying it: promoted
// is set before done is closed (the close is the happens-before edge), and
// the woken owner leads the next hold starting from its own muts.
type pendingOp struct {
	muts     []tableMut
	promoted bool
	done     chan struct{}
}

// register adds a newly created table to the hold's lock set.
func (q *commitQueue) register(t *Table) {
	q.mu.Lock()
	q.tables = append(q.tables, t)
	q.mu.Unlock()
}

// commit runs an op group through the group-commit queue: as leader if none
// is active, otherwise by enqueueing and waiting — either for a leader to
// apply the group, or for a promotion, in which case this writer leads the
// next hold itself.
func (q *commitQueue) commit(muts []tableMut) {
	q.mu.Lock()
	if q.active {
		p := &pendingOp{muts: muts, done: make(chan struct{})}
		q.pending = append(q.pending, p)
		q.mu.Unlock()
		<-p.done
		if p.promoted {
			q.lead(p.muts)
		}
		return
	}
	q.active = true
	q.mu.Unlock()
	q.lead(muts)
}

// commit routes one single-table mutation through the store's commit queue.
func (t *Table) commit(do func()) {
	t.cfg.cq.commit([]tableMut{{t: t, do: do}})
}

// lead runs one hold: lock every table once, apply the leader's own op
// group plus every group that queues behind it — round after round — then
// run the deferred zone-repair pass and release the locks. Three details
// make holds coalesce instead of degenerating to one op each:
//
//   - Completion signals (close(p.done)) fire while the leader still holds
//     the locks. An op is committed the moment its closures run — any read
//     that could observe the store serializes behind the hold anyway — so
//     waking followers early lets them submit their next op into the queue
//     while the current hold is still open.
//   - When a drain comes up empty the leader yields the processor and
//     retries, up to holdPatience times, before concluding the stream went
//     quiet. Woken followers enqueue during the yields; readers that get
//     scheduled park on the held state locks almost immediately, so a yield
//     costs a few context switches, not a reader timeslice.
//   - Tenure lasts one hold. A leader that kept draining would starve its
//     own op stream — it would sit in the queue applying everyone else's
//     ops until the followers ran dry, then trickle out its own backlog one
//     solo hold at a time. Instead, a leader that ends its hold with the
//     queue non-empty hands leadership to the longest-waiting follower
//     (promotion: woken with its muts unapplied) and goes back to being an
//     ordinary writer.
//
// The hold therefore adapts to contention: a solo writer pays one lock
// round, one epoch bump, one zone rebuild and one (free) yield per op,
// while N saturating writers rotate leadership and share one lock round,
// one epoch per touched table and one zone-repair pass per maxHoldOps op
// groups — which is what turns the per-update exact zone rebuild from the
// stream's dominant cost into a per-hold one.
func (q *commitQueue) lead(muts []tableMut) {
	q.mu.Lock()
	tabs := q.tables
	q.mu.Unlock()
	var counters *StoreCounters
	if len(tabs) > 0 {
		counters = tabs[0].cfg.counters
	}
	for _, t := range tabs {
		t.state.Lock()
	}
	for _, t := range tabs {
		t.beginBatchLocked()
	}
	applied := 0
	for _, m := range muts {
		m.do()
	}
	applied++
	empties := 0
	for applied < maxHoldOps {
		q.mu.Lock()
		batch := q.pending
		q.pending = nil
		q.mu.Unlock()
		if len(batch) == 0 {
			if empties >= holdPatience {
				break
			}
			empties++
			runtime.Gosched()
			continue
		}
		empties = 0
		for _, p := range batch {
			for _, m := range p.muts {
				m.do()
			}
			close(p.done)
		}
		applied += len(batch)
	}
	for _, t := range tabs {
		t.endBatchLocked()
		t.maybeCompactLocked()
	}
	for i := len(tabs) - 1; i >= 0; i-- {
		tabs[i].state.Unlock()
	}
	if counters != nil {
		counters.GroupCommitBatches.Add(1)
		counters.GroupCommitOps.Add(int64(applied))
	}
	q.mu.Lock()
	if len(q.pending) == 0 {
		q.active = false
		q.mu.Unlock()
		return
	}
	p := q.pending[0]
	q.pending = q.pending[1:]
	q.mu.Unlock()
	p.promoted = true
	close(p.done)
}

// applyBatch is the in-flight hold context for one table: the shared epoch
// every op in the hold commits at (assigned lazily on the table's first
// mutation, so untouched tables keep their epoch), and the zone blocks the
// hold dirtied (repaired once in endBatchLocked instead of once per set).
type applyBatch struct {
	epoch   uint64
	touched []zoneTouch
}

type zoneTouch struct {
	c   *column
	blk int
}

// beginBatchLocked opens a hold on this table. The epoch is not bumped here:
// commitEpochLocked assigns it on the first mutation, so a hold that never
// touches the table leaves its epoch (and every derived cache keyed on it)
// alone. Caller holds the state lock exclusively.
func (t *Table) beginBatchLocked() {
	t.batch = &applyBatch{}
}

// endBatchLocked repairs every zone block the hold dirtied — each block
// once, and each touched column's NaN shortcut once — then closes the hold.
// Caller holds the state lock exclusively.
func (t *Table) endBatchLocked() {
	b := t.batch
	t.batch = nil
	if len(b.touched) == 0 {
		return
	}
	type colBlk struct {
		c   *column
		blk int
	}
	seen := make(map[colBlk]struct{}, len(b.touched))
	cols := make(map[*column]struct{})
	for _, z := range b.touched {
		k := colBlk{z.c, z.blk}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		z.c.rebuildZoneOnly(z.blk)
		cols[z.c] = struct{}{}
	}
	for c := range cols {
		c.refreshNaN()
	}
}
