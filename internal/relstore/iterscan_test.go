package relstore

import (
	"errors"
	"math/rand"
	"testing"

	"hypre/internal/predicate"
)

// The streaming block iterator must emit exactly the (row, attr) stream the
// materialized scan path produces, for every query shape it accepts —
// randomized tables (all value kinds, NaNs, tombstones), random predicate
// trees, joined and unjoined, across both plan modes (zone-map scan and
// index candidates).
func TestAttrRowIterMatchesScan(t *testing.T) {
	supported := 0
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		nl := []int{0, 1, 300, 1023, 1024, 2600}[rng.Intn(6)]
		nr := []int{0, 40, 200}[rng.Intn(3)]
		lt, _ := buildPropTables(t, rng, db, "lt", []string{"k", "a", "s"}, nl)
		rt, _ := buildPropTables(t, rng, db, "rt", []string{"k", "x"}, nr)
		if rng.Float64() < 0.5 {
			if err := lt.BuildIndex("a"); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < nl/10; i++ {
			lt.Delete(rng.Intn(nl))
		}
		for i := 0; i < nr/10; i++ {
			rt.Delete(rng.Intn(nr))
		}

		join := &JoinSpec{Table: "rt", LeftCol: "k", RightCol: "k"}
		attrs := []string{"a", "s", "x", "k", "lt.a", "rt.x", "rt.k", "zz"}
		for qi := 0; qi < 30; qi++ {
			q := Query{From: "lt", Where: propPred(rng, attrs, 2)}
			if rng.Float64() < 0.5 {
				q.Join = join
			}

			want := map[int]int64{}
			if err := db.ScanAttrRows(q, "s", func(lid int, v int64) {
				want[lid] = v
			}); err != nil {
				t.Fatal(err)
			}

			it, err := db.OpenAttrRowIter(q, "s")
			if errors.Is(err, ErrStreamUnsupported) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			supported++
			got := map[int]int64{}
			prevBlock := -1
			for {
				bi, lids, vals, ok := it.NextBlock()
				if !ok {
					break
				}
				if bi <= prevBlock || bi > it.MaxBlock() {
					t.Fatalf("seed %d q %d: block %d out of order (prev %d, max %d)",
						seed, qi, bi, prevBlock, it.MaxBlock())
				}
				prevBlock = bi
				if len(lids) == 0 || len(lids) != len(vals) {
					t.Fatalf("seed %d q %d: bad block shape %d/%d", seed, qi, len(lids), len(vals))
				}
				prev := -1
				for i, lid := range lids {
					if int(lid)/blockSize != bi || int(lid) <= prev {
						t.Fatalf("seed %d q %d: row %d out of place in block %d", seed, qi, lid, bi)
					}
					prev = int(lid)
					got[int(lid)] = vals[i]
				}
			}
			it.Close()

			if len(got) != len(want) {
				t.Fatalf("seed %d q %d: iter rows = %d, want %d (%s)",
					seed, qi, len(got), len(want), q.Where)
			}
			for lid, v := range want {
				if gv, ok := got[lid]; !ok || gv != v {
					t.Fatalf("seed %d q %d: row %d = %d,%v want %d (%s)",
						seed, qi, lid, gv, ok, v, q.Where)
				}
			}
		}
	}
	if supported == 0 {
		t.Fatal("no query the streaming iterator supports was generated")
	}
}

// A group shares one snapshot: iterators opened together see the same rows
// even while another goroutine mutates — exercised indirectly by the
// concurrent suite; here just check the group surface opens, streams, and
// closes over multiple queries including duplicates of the same tables.
func TestAttrRowIterGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := NewDB()
	buildPropTables(t, rng, db, "lt", []string{"k", "a", "s"}, 2600)
	buildPropTables(t, rng, db, "rt", []string{"k", "x"}, 200)
	join := &JoinSpec{Table: "rt", LeftCol: "k", RightCol: "k"}
	qs := []Query{
		{From: "lt", Where: &predicate.Cmp{Attr: "a", Op: predicate.OpGe, Val: predicate.Int(0)}},
		{From: "lt", Join: join, Where: &predicate.Cmp{Attr: "x", Op: predicate.OpEq, Val: predicate.Int(1)}},
		{From: "lt", Where: predicate.True{}},
	}
	g, err := db.OpenAttrRowIterGroup(qs, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i, it := range g.Iters {
		n := 0
		for {
			_, lids, _, ok := it.NextBlock()
			if !ok {
				break
			}
			n += len(lids)
		}
		want := map[int]int64{}
		if err := db.ScanAttrRows(qs[i], "s", func(lid int, v int64) { want[lid] = v }); err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("query %d: streamed %d rows, want %d", i, n, len(want))
		}
	}
}
