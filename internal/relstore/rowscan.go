package relstore

import (
	"hypre/internal/bitset"
	"hypre/internal/predicate"
)

// This file is the row-restricted counterpart of vecscan.go, for delta
// maintenance. The block kernels re-evaluate whole 1024-row blocks; after a
// small mutation batch over a large table that is almost all waste — 60
// scattered updates dirty up to 60 distinct blocks, so the per-sync cost of
// the block path grows with the table (more blocks to scatter over) even
// though the batch is constant. evalRows instead tests the predicate at
// exactly the listed rows: O(|touched| x tree size), independent of table
// size, which is what keeps delta maintenance flat as the store grows.
//
// Semantics match evalVec leaf-for-leaf (same literal analysis, same
// three-valued collapse: an unbound attribute or NULL literal matches
// nothing). NOT complements within the listed-row universe rather than the
// full domain; callers of the restricted path mask the result with their
// touched-row selection anyway, and complement-then-mask equals
// complement-within-universe, distributing through AND/OR.

// rowEvalMaxPerBlock gates the scalar path: one interpreted row test costs
// on the order of a few dozen vectorized block-kernel rows, so the row path
// wins while the touched rows average fewer than this many per touched
// 1024-row block.
const rowEvalMaxPerBlock = 32

// rowsOf lists the set bits of sel below n, ascending — the row universe
// for evalRows.
func rowsOf(sel *bitset.Set, n int) []int32 {
	out := make([]int32, 0, sel.Len())
	sel.ForEach(func(i int) bool {
		if i < n {
			out = append(out, int32(i))
		}
		return true
	})
	return out
}

// evalRows evaluates a predicate at the listed rows only, as a selection
// over those rows. ok=false mirrors evalVec: the tree holds a node this
// path does not know, and the caller falls back.
func (t *Table) evalRows(p predicate.Predicate, resolve func(string) int, rows []int32) (*bitset.Set, bool) {
	switch node := p.(type) {
	case predicate.True:
		s := bitset.New()
		for _, r := range rows {
			s.Add(int(r))
		}
		return s, true
	case *predicate.Cmp:
		s := bitset.New()
		if pos := resolve(node.Attr); pos >= 0 {
			t.rowsCmp(pos, node.Op, node.Val, s, rows)
		}
		return s, true
	case *predicate.Between:
		s := bitset.New()
		if pos := resolve(node.Attr); pos >= 0 {
			t.rowsBetween(pos, node.Lo, node.Hi, s, rows)
		}
		return s, true
	case *predicate.In:
		s := bitset.New()
		if pos := resolve(node.Attr); pos >= 0 {
			t.rowsIn(pos, node.Vals, s, rows)
		}
		return s, true
	case *predicate.Not:
		sel, ok := t.evalRows(node.Kid, resolve, rows)
		if !ok {
			return nil, false
		}
		out := bitset.New()
		for _, r := range rows {
			if !sel.Contains(int(r)) {
				out.Add(int(r))
			}
		}
		return out, true
	case *predicate.And:
		var acc *bitset.Set
		for _, k := range node.Kids {
			sel, ok := t.evalRows(k, resolve, rows)
			if !ok {
				return nil, false
			}
			if acc == nil {
				acc = sel
			} else {
				acc.AndWith(sel)
			}
			if acc.IsEmpty() {
				return acc, true
			}
		}
		if acc == nil { // empty conjunction is TRUE
			acc = bitset.New()
			for _, r := range rows {
				acc.Add(int(r))
			}
		}
		return acc, true
	case *predicate.Or:
		acc := bitset.New()
		for _, k := range node.Kids {
			sel, ok := t.evalRows(k, resolve, rows)
			if !ok {
				return nil, false
			}
			acc.OrWith(sel)
		}
		return acc, true
	default:
		return nil, false
	}
}

// rowsCmp is the scalar Attr Op Literal test at each listed row — the same
// match logic as scanCmp's inner row loops, minus the zone machinery.
func (t *Table) rowsCmp(pos int, op predicate.Op, val predicate.Value, sel *bitset.Set, rows []int32) {
	c := t.cols[pos]
	lit := analyzeLit(val)
	switch {
	case lit.isNum:
		for _, r := range rows {
			if v, ok := c.numAt(int(r)); ok && opMatch(cmp3f(v, lit.f), op) {
				sel.Add(int(r))
			}
		}
	case lit.isStr:
		if op == predicate.OpEq && !c.rawMode {
			code, ok := c.dict.code(lit.s)
			if !ok {
				return
			}
			for _, r := range rows {
				if c.kinds[r] == predicate.KindString && c.codes[r] == code {
					sel.Add(int(r))
				}
			}
			return
		}
		if op == predicate.OpEq {
			for _, r := range rows {
				if c.kinds[r] == predicate.KindString && c.rawStrs[r] == lit.s {
					sel.Add(int(r))
				}
			}
			return
		}
		lv := litVal{isStr: true, s: lit.s}
		for _, r := range rows {
			if c3, ok := c.cmp3At(int(r), lv); ok && opMatch(c3, op) {
				sel.Add(int(r))
			}
		}
	}
}

// rowsBetween is the scalar BETWEEN test at each listed row.
func (t *Table) rowsBetween(pos int, lov, hiv predicate.Value, sel *bitset.Set, rows []int32) {
	c := t.cols[pos]
	llo, lhi := analyzeLit(lov), analyzeLit(hiv)
	switch {
	case llo.isNum && lhi.isNum:
		for _, r := range rows {
			if v, ok := c.numAt(int(r)); ok && cmp3f(v, llo.f) >= 0 && cmp3f(v, lhi.f) <= 0 {
				sel.Add(int(r))
			}
		}
	case llo.isStr && lhi.isStr:
		for _, r := range rows {
			if c.kinds[r] != predicate.KindString {
				continue
			}
			s := c.strAt(int(r))
			if s >= llo.s && s <= lhi.s {
				sel.Add(int(r))
			}
		}
	}
}

// rowsIn is the scalar IN test at each listed row, with the member list
// analyzed once exactly like scanIn.
func (t *Table) rowsIn(pos int, vals []predicate.Value, sel *bitset.Set, rows []int32) {
	c := t.cols[pos]
	var nums []float64
	var codes []uint32
	var strs []string
	for _, v := range vals {
		lv := analyzeLit(v)
		switch {
		case lv.isNum:
			nums = append(nums, lv.f)
		case lv.isStr:
			if c.rawMode {
				strs = append(strs, lv.s)
			} else if code, ok := c.dict.code(lv.s); ok {
				codes = append(codes, code)
			}
		}
	}
	if len(nums) == 0 && len(codes) == 0 && len(strs) == 0 {
		return
	}
	for _, ri := range rows {
		r := int(ri)
		switch c.kinds[r] {
		case predicate.KindInt, predicate.KindFloat:
			v, _ := c.numAt(r)
			for _, f := range nums {
				if cmp3f(v, f) == 0 {
					sel.Add(r)
					break
				}
			}
		case predicate.KindString:
			if c.rawMode {
				s := c.rawStrs[r]
				for _, m := range strs {
					if s == m {
						sel.Add(r)
						break
					}
				}
				continue
			}
			cd := c.codes[r]
			for _, code := range codes {
				if cd == code {
					sel.Add(r)
					break
				}
			}
		}
	}
}
