package relstore

import (
	"fmt"
	"testing"

	"hypre/internal/predicate"
)

// TestAdaptiveDictMigration: a high-cardinality string column (every value
// distinct, like titles/abstracts) must abandon the dictionary for raw
// storage, a low-cardinality one (venues) must keep it, and query answers
// must be identical in both modes — before and after in-place updates.
func TestAdaptiveDictMigration(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("papers",
		Column{Name: "id", Kind: predicate.KindInt},
		Column{Name: "title", Kind: predicate.KindString},
		Column{Name: "venue", Kind: predicate.KindString})
	if err != nil {
		t.Fatal(err)
	}
	venues := []string{"VLDB", "SIGMOD", "PODS"}
	const n = 1500
	for i := 0; i < n; i++ {
		if _, err := tab.Insert(predicate.Int(int64(i)),
			predicate.String(fmt.Sprintf("Unique title %d", i)),
			predicate.String(venues[i%len(venues)])); err != nil {
			t.Fatal(err)
		}
	}
	titleCol := tab.cols[tab.ColumnIndex("title")]
	venueCol := tab.cols[tab.ColumnIndex("venue")]
	if !titleCol.rawMode {
		t.Fatalf("title column (all-distinct, %d rows) did not migrate to raw storage", n)
	}
	if venueCol.rawMode {
		t.Fatal("venue column (3 distinct values) migrated to raw storage")
	}

	// Equality, range, and IN scans on the raw-mode column.
	q := Query{From: "papers", Where: &predicate.Cmp{
		Attr: "title", Op: predicate.OpEq, Val: predicate.String("Unique title 700")}}
	rows, err := db.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Left.ID() != 700 {
		t.Fatalf("raw-mode equality scan: got %d rows", len(rows))
	}
	cnt, err := db.Count(Query{From: "papers", Where: &predicate.In{
		Attr: "title", Vals: []predicate.Value{
			predicate.String("Unique title 3"), predicate.String("Unique title 4"),
			predicate.String("no such title")}}})
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 2 {
		t.Fatalf("raw-mode IN scan: got %d rows, want 2", cnt)
	}

	// Updates on a raw-mode column stay consistent.
	if err := tab.UpdateCol(700, "title", predicate.String("Renamed")); err != nil {
		t.Fatal(err)
	}
	cnt, err = db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 0 {
		t.Fatalf("updated-away title still matches: %d rows", cnt)
	}
	cnt, err = db.Count(Query{From: "papers", Where: &predicate.Cmp{
		Attr: "title", Op: predicate.OpEq, Val: predicate.String("Renamed")}})
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 1 {
		t.Fatalf("renamed title not found: %d rows", cnt)
	}

	// The dictionary-mode column still answers through codes.
	cnt, err = db.Count(Query{From: "papers", Where: &predicate.Cmp{
		Attr: "venue", Op: predicate.OpEq, Val: predicate.String("VLDB")}})
	if err != nil {
		t.Fatal(err)
	}
	if want := (n + 2) / 3; cnt != want {
		t.Fatalf("dict-mode equality scan: got %d rows, want %d", cnt, want)
	}
}
