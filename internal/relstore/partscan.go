package relstore

import (
	"sync"

	"hypre/internal/bitset"
	"hypre/internal/predicate"
)

// This file is the partition-sharded half of the vectorized scan engine:
// the left-table kernel pass — the dominant cost of a predicate
// materialization — fans out over contiguous block partitions, each worker
// emitting into its own bitset.Builder (zero contention, per-container
// compression as the block walk passes), and the per-partition selections
// merge back with bitset.MergeAscending. Join handling stays serial: the
// existence vector / right-side candidate walk is computed once and
// intersected with the merged selection, exactly as the serial path would.

// ScanAttrRowSetParts is ScanAttrRowSet with the left-table kernel pass
// sharded over up to parts contiguous block partitions. Results are
// identical to ScanAttrRowSet (the partition fan-out only re-orders which
// kernel fills which blocks); parts <= 1, a table too small to split, or a
// WHERE shape whose conjuncts mix both join sides all take the serial path.
// Like ScanAttrRowSet, ok=false means the query defeats the vectorized
// engine entirely and the caller must fall back to ScanAttrRows.
func (db *DB) ScanAttrRowSetParts(q Query, attr string, splitAt int, spill func(lid int, v int64), parts int) (*bitset.Set, bool, error) {
	left, right, leftPos, rightPos, pos, where, err := db.resolveAttrRowScan(q, attr)
	if err != nil {
		return nil, false, err
	}
	unlock := lockShared(left, right)
	defer unlock()
	lsel, ok := db.matchLeftVecParts(left, right, leftPos, rightPos, where, parts)
	if !ok {
		return nil, false, nil
	}
	attrRowSetTail(left, pos, lsel, splitAt, spill)
	return lsel, true, nil
}

// matchLeftVecParts is matchLeftVec (full-scan mode) with the left kernel
// pass partitioned over block ranges. Callers hold both tables' state
// locks. The decomposition: WHERE splits by join side; the join/right-side
// admission (existence vector or right-candidate walk, plus tombstones) is
// computed once through the serial path with a TRUE left predicate; the
// left conjuncts alone fan out per partition; and the merged selection
// intersects the admission set — set algebra guarantees the same rows as
// one serial pass.
func (db *DB) matchLeftVecParts(left, right *Table, leftPos, rightPos int,
	where predicate.Predicate, parts int) (*bitset.Set, bool) {
	nBlocks := (left.n + blockSize - 1) / blockSize
	if parts > nBlocks {
		parts = nBlocks
	}
	if parts <= 1 {
		return db.matchLeftVec(left, right, leftPos, rightPos, where, nil)
	}

	var leftParts, rightParts []predicate.Predicate
	if right == nil {
		leftParts = []predicate.Predicate{where}
	} else {
		for _, c := range flattenAnd(where) {
			side, ok := classifySide(c, left, right)
			if !ok {
				return nil, false
			}
			if side == sideRight {
				rightParts = append(rightParts, c)
			} else {
				leftParts = append(leftParts, c)
			}
		}
	}
	// Admission set: live left rows the join and right-side conjuncts
	// allow. With no left conjuncts it already is the answer.
	admitWhere := predicate.Predicate(predicate.True{})
	if len(rightParts) > 0 {
		admitWhere = predicate.NewAnd(rightParts...)
	}
	admit, ok := db.matchLeftVec(left, right, leftPos, rightPos, admitWhere, nil)
	if !ok {
		return nil, false
	}
	if len(leftParts) == 0 {
		return admit, true
	}
	leftPred := predicate.NewAnd(leftParts...)

	resolveL := func(a string) int {
		if side, p := bindAttr(a, left, right); side == sideLeft {
			return p
		}
		return -1
	}
	sels := make([]*bitset.Set, parts)
	oks := make([]bool, parts)
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			blkLo, blkHi := w*nBlocks/parts, (w+1)*nBlocks/parts
			if blkLo == blkHi {
				sels[w], oks[w] = bitset.New(), true
				return
			}
			blks := make([]int32, 0, blkHi-blkLo)
			for b := blkLo; b < blkHi; b++ {
				blks = append(blks, int32(b))
			}
			sel, ok := left.evalVec(leftPred, resolveL, blks)
			if !ok {
				return
			}
			// Kernels only filled the listed blocks; NOT/TRUE nodes cover
			// the whole domain — clamp to the partition's row range.
			mask := bitset.New()
			mask.AddRange(blkLo*blockSize, min(blkHi*blockSize, left.n))
			sel.AndWith(mask)
			sels[w], oks[w] = sel, true
		}(w)
	}
	wg.Wait()
	for _, ok := range oks {
		if !ok {
			// A shape evalVec cannot run (the same answer every partition
			// got): let the serial path decide the fallback.
			return db.matchLeftVec(left, right, leftPos, rightPos, where, nil)
		}
	}
	merged := bitset.MergeAscending(sels)
	merged.AndWith(admit)
	return merged, true
}
