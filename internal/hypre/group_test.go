package hypre

import "testing"

func groupGraph(t *testing.T) *Graph {
	t.Helper()
	h := NewGraph(DefaultFixed)
	// Alice (1) loves VLDB, likes KDD, hates INFOCOM.
	h.AddQuantitative(1, `venue="VLDB"`, 0.9)
	h.AddQuantitative(1, `venue="KDD"`, 0.4)
	h.AddQuantitative(1, `venue="INFOCOM"`, -0.8)
	// Bob (2) likes VLDB mildly, loves KDD.
	h.AddQuantitative(2, `venue="VLDB"`, 0.3)
	h.AddQuantitative(2, `venue="KDD"`, 0.8)
	// Carol (3) only knows SIGMOD.
	h.AddQuantitative(3, `venue="SIGMOD"`, 0.6)
	return h
}

func findPred(prefs []ScoredPred, pred string) (float64, bool) {
	for _, p := range prefs {
		if p.Pred == pred {
			return p.Intensity, true
		}
	}
	return 0, false
}

func TestGroupAverage(t *testing.T) {
	h := groupGraph(t)
	prefs, err := h.GroupProfile([]int64{1, 2, 3}, GroupAverage)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := findPred(prefs, `venue="VLDB"`); !ok || !almostEq(v, 0.6) {
		t.Errorf("VLDB avg = %v", v)
	}
	if v, ok := findPred(prefs, `venue="KDD"`); !ok || !almostEq(v, 0.6) {
		t.Errorf("KDD avg = %v", v)
	}
	// Carol's SIGMOD participates at her value (only holder).
	if v, ok := findPred(prefs, `venue="SIGMOD"`); !ok || !almostEq(v, 0.6) {
		t.Errorf("SIGMOD avg = %v", v)
	}
	// Alice's dislike survives.
	if v, ok := findPred(prefs, `venue="INFOCOM"`); !ok || !almostEq(v, -0.8) {
		t.Errorf("INFOCOM avg = %v", v)
	}
}

func TestGroupLeastMisery(t *testing.T) {
	h := groupGraph(t)
	prefs, err := h.GroupProfile([]int64{1, 2}, GroupLeastMisery)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := findPred(prefs, `venue="VLDB"`); !almostEq(v, 0.3) {
		t.Errorf("VLDB min = %v", v)
	}
	if v, _ := findPred(prefs, `venue="KDD"`); !almostEq(v, 0.4) {
		t.Errorf("KDD min = %v", v)
	}
}

func TestGroupMostPleasure(t *testing.T) {
	h := groupGraph(t)
	prefs, err := h.GroupProfile([]int64{1, 2}, GroupMostPleasure)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := findPred(prefs, `venue="VLDB"`); !almostEq(v, 0.9) {
		t.Errorf("VLDB max = %v", v)
	}
	if v, _ := findPred(prefs, `venue="KDD"`); !almostEq(v, 0.8) {
		t.Errorf("KDD max = %v", v)
	}
}

func TestGroupFairAverage(t *testing.T) {
	h := groupGraph(t)
	prefs, err := h.GroupProfile([]int64{1, 2, 3}, GroupFairAverage)
	if err != nil {
		t.Fatal(err)
	}
	// SIGMOD held only by Carol: 0.6 / 3 members.
	if v, _ := findPred(prefs, `venue="SIGMOD"`); !almostEq(v, 0.2) {
		t.Errorf("SIGMOD fair = %v", v)
	}
	// VLDB held by two: (0.9 + 0.3) / 3.
	if v, _ := findPred(prefs, `venue="VLDB"`); !almostEq(v, 0.4) {
		t.Errorf("VLDB fair = %v", v)
	}
}

func TestGroupProfileSortedAndValidated(t *testing.T) {
	h := groupGraph(t)
	prefs, err := h.GroupProfile([]int64{1, 2, 3}, GroupAverage)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(prefs); i++ {
		if prefs[i].Intensity > prefs[i-1].Intensity {
			t.Fatal("not sorted")
		}
	}
	if _, err := h.GroupProfile(nil, GroupAverage); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := h.GroupProfile([]int64{1}, GroupStrategy(99)); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestGroupSingletonEqualsProfile(t *testing.T) {
	h := groupGraph(t)
	solo, err := h.GroupProfile([]int64{1}, GroupAverage)
	if err != nil {
		t.Fatal(err)
	}
	own := h.Profile(1)
	if len(solo) != len(own) {
		t.Fatalf("sizes: %d vs %d", len(solo), len(own))
	}
	for i := range own {
		v, ok := findPred(solo, own[i].Pred)
		if !ok || !almostEq(v, own[i].Intensity) {
			t.Errorf("pred %s: %v vs %v", own[i].Pred, v, own[i].Intensity)
		}
	}
}

func TestGroupStrategyStrings(t *testing.T) {
	names := map[GroupStrategy]string{
		GroupAverage:      "average",
		GroupLeastMisery:  "least-misery",
		GroupMostPleasure: "most-pleasure",
		GroupFairAverage:  "fair-average",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%v", s)
		}
	}
}
