package hypre

import (
	"math"
	"testing"
)

func TestAddQuantitativeBasic(t *testing.T) {
	h := NewGraph(DefaultFixed)
	id, err := h.AddQuantitative(2, `dblp.venue="INFOCOM"`, 0.23)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := h.Node(id)
	if !ok || info.UID != 2 || !info.HasIntensity || info.Intensity != 0.23 {
		t.Fatalf("node = %+v", info)
	}
	if info.Source != SourceUser || !info.FromQuant {
		t.Errorf("provenance = %+v", info)
	}
}

func TestAddQuantitativeValidation(t *testing.T) {
	h := NewGraph(DefaultFixed)
	if _, err := h.AddQuantitative(1, `venue="X"`, 1.5); err == nil {
		t.Error("out-of-range intensity accepted")
	}
	if _, err := h.AddQuantitative(1, `not a predicate ((`, 0.5); err == nil {
		t.Error("invalid predicate accepted")
	}
}

func TestAddQuantitativeDuplicateAverages(t *testing.T) {
	h := NewGraph(DefaultFixed)
	// Algorithm 1 Step 1: a duplicate (uid, predicate) averages intensities.
	id1, _ := h.AddQuantitative(1, `venue="VLDB"`, 0.4)
	id2, _ := h.AddQuantitative(1, `venue="VLDB"`, 0.8)
	if id1 != id2 {
		t.Fatalf("duplicate created a new node: %d vs %d", id1, id2)
	}
	info, _ := h.Node(id1)
	if !almostEq(info.Intensity, 0.6) {
		t.Errorf("averaged intensity = %v, want 0.6", info.Intensity)
	}
	// Syntactic variants normalize to the same node.
	id3, _ := h.AddQuantitative(1, `venue = 'VLDB'`, 0.6)
	if id3 != id1 {
		t.Errorf("normalization failed: %d vs %d", id3, id1)
	}
}

func TestQuantitativePerUserIsolation(t *testing.T) {
	h := NewGraph(DefaultFixed)
	a, _ := h.AddQuantitative(1, `venue="VLDB"`, 0.4)
	b, _ := h.AddQuantitative(2, `venue="VLDB"`, 0.8)
	if a == b {
		t.Fatal("same predicate for different users must be different nodes")
	}
	if got := len(h.UserNodes(1)); got != 1 {
		t.Errorf("user 1 nodes = %d", got)
	}
}

func TestAddQualitativeScenario3BothNew(t *testing.T) {
	h := NewGraph(DefaultFixed) // seed 0.5
	res, err := h.AddQualitative(1, `venue="VLDB"`, `venue="SIGMOD"`, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflict != NoConflict || !res.LeftComputed || !res.RightComputed {
		t.Fatalf("res = %+v", res)
	}
	right, _ := h.Node(res.RightID)
	left, _ := h.Node(res.LeftID)
	if right.Intensity != 0.5 || right.Source != SourceDefault {
		t.Errorf("right = %+v, want default 0.5", right)
	}
	want := IntensityLeft(0.8, 0.5)
	if !almostEq(left.Intensity, want) || left.Source != SourceComputed {
		t.Errorf("left = %+v, want %v", left, want)
	}
	if left.Intensity < right.Intensity {
		t.Error("edge invariant violated")
	}
}

func TestAddQualitativeScenario2RightKnown(t *testing.T) {
	h := NewGraph(DefaultFixed)
	h.AddQuantitative(1, `venue="SIGMOD"`, 0.8)
	res, err := h.AddQualitative(1, `venue="VLDB"`, `venue="SIGMOD"`, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.LeftComputed || res.RightComputed {
		t.Fatalf("res = %+v", res)
	}
	left, _ := h.Node(res.LeftID)
	if !almostEq(left.Intensity, IntensityLeft(0.3, 0.8)) {
		t.Errorf("left intensity = %v", left.Intensity)
	}
	// Fig. 8's example: venue=SIGMOD keeps its user-provided value.
	right, _ := h.Node(res.RightID)
	if right.Intensity != 0.8 || right.Source != SourceUser {
		t.Errorf("right mutated: %+v", right)
	}
}

func TestAddQualitativeScenario2LeftKnown(t *testing.T) {
	h := NewGraph(DefaultFixed)
	h.AddQuantitative(1, `venue="VLDB"`, 0.6)
	res, err := h.AddQualitative(1, `venue="VLDB"`, `venue="ICDE"`, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeftComputed || !res.RightComputed {
		t.Fatalf("res = %+v", res)
	}
	right, _ := h.Node(res.RightID)
	if !almostEq(right.Intensity, IntensityRight(0.5, 0.6)) {
		t.Errorf("right intensity = %v", right.Intensity)
	}
}

func TestAddQualitativeConsistentBothKnown(t *testing.T) {
	h := NewGraph(DefaultFixed)
	h.AddQuantitative(1, `venue="A"`, 0.8)
	h.AddQuantitative(1, `venue="B"`, 0.3)
	res, err := h.AddQualitative(1, `venue="A"`, `venue="B"`, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflict != NoConflict || res.LeftComputed || res.RightComputed {
		t.Fatalf("consistent insert recomputed: %+v", res)
	}
	a, _ := h.Node(res.LeftID)
	b, _ := h.Node(res.RightID)
	if a.Intensity != 0.8 || b.Intensity != 0.3 {
		t.Error("values should be untouched")
	}
}

func TestAddQualitativeIncompatibleLeafRecompute(t *testing.T) {
	h := NewGraph(DefaultFixed)
	h.AddQuantitative(1, `venue="A"`, 0.2)
	h.AddQuantitative(1, `venue="B"`, 0.7)
	// A preferred over B, but intensity(A) < intensity(B): incompatible.
	// Both nodes are leaves, so the left one is recomputed (Fig. 14 case).
	res, err := h.AddQualitative(1, `venue="A"`, `venue="B"`, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflict != NoConflict || !res.LeftComputed {
		t.Fatalf("res = %+v", res)
	}
	a, _ := h.Node(res.LeftID)
	if !almostEq(a.Intensity, IntensityLeft(0.5, 0.7)) || a.Intensity < 0.7 {
		t.Errorf("recomputed left = %v", a.Intensity)
	}
}

func TestAddQualitativeIncompatibleRightLeafRecompute(t *testing.T) {
	h := NewGraph(DefaultFixed)
	// Make left an interior node first: X -> A.
	h.AddQuantitative(1, `venue="A"`, 0.2)
	if _, err := h.AddQualitative(1, `venue="X"`, `venue="A"`, 0.1); err != nil {
		t.Fatal(err)
	}
	h.AddQuantitative(1, `venue="B"`, 0.7)
	// A -> B incompatible (0.2 < 0.7); left has degree > 0, right is a leaf,
	// so the right node is recomputed downward (Fig. 15 case).
	res, err := h.AddQualitative(1, `venue="A"`, `venue="B"`, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflict != NoConflict || !res.RightComputed || res.LeftComputed {
		t.Fatalf("res = %+v", res)
	}
	b, _ := h.Node(res.RightID)
	if !almostEq(b.Intensity, IntensityRight(0.5, 0.2)) {
		t.Errorf("recomputed right = %v", b.Intensity)
	}
}

func TestAddQualitativeIncompatibleInteriorDiscard(t *testing.T) {
	h := NewGraph(DefaultFixed)
	// Build A and B as interior nodes with incompatible intensities.
	h.AddQuantitative(1, `venue="A"`, 0.2)
	h.AddQuantitative(1, `venue="B"`, 0.7)
	if _, err := h.AddQualitative(1, `venue="A"`, `venue="C"`, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddQualitative(1, `venue="D"`, `venue="B"`, 0.1); err != nil {
		t.Fatal(err)
	}
	res, err := h.AddQualitative(1, `venue="A"`, `venue="B"`, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflict != ConflictIncompatible {
		t.Fatalf("res = %+v, want DISCARD", res)
	}
	st := h.GraphStats()
	if st.Discards != 1 {
		t.Errorf("stats = %+v", st)
	}
	// DISCARD edges do not contribute to the PREFERS order.
	if h.Store().PathExists(res.LeftID, res.RightID, LabelPrefers) {
		t.Error("DISCARD edge traversable as PREFERS")
	}
}

func TestAddQualitativeCycleConflict(t *testing.T) {
	h := NewGraph(DefaultFixed)
	if _, err := h.AddQualitative(1, `venue="A"`, `venue="B"`, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddQualitative(1, `venue="B"`, `venue="C"`, 0.3); err != nil {
		t.Fatal(err)
	}
	res, err := h.AddQualitative(1, `venue="C"`, `venue="A"`, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflict != ConflictCycle {
		t.Fatalf("res = %+v, want CYCLE", res)
	}
	st := h.GraphStats()
	if st.Cycles != 1 || st.Prefers != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAddQualitativeSelfPreferenceRejected(t *testing.T) {
	h := NewGraph(DefaultFixed)
	if _, err := h.AddQualitative(1, `venue="A"`, `venue = 'A'`, 0.3); err == nil {
		t.Error("self preference (after normalization) should be rejected")
	}
}

func TestAddQualitativeNegativeStrengthFlips(t *testing.T) {
	h := NewGraph(DefaultFixed)
	res, err := h.AddQualitative(1, `venue="A"`, `venue="B"`, -0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Proposition 7: B becomes the preferred endpoint.
	left, _ := h.Node(res.LeftID)
	if left.Predicate != `venue="B"` {
		t.Errorf("left = %q, want flipped to B", left.Predicate)
	}
	right, _ := h.Node(res.RightID)
	if left.Intensity < right.Intensity {
		t.Error("invariant broken after flip")
	}
}

func TestAddQualitativeValidation(t *testing.T) {
	h := NewGraph(DefaultFixed)
	if _, err := h.AddQualitative(1, `((`, `venue="B"`, 0.3); err == nil {
		t.Error("invalid left predicate accepted")
	}
	if _, err := h.AddQualitative(1, `venue="A"`, `((`, 0.3); err == nil {
		t.Error("invalid right predicate accepted")
	}
	if _, err := h.AddQualitative(1, `venue="A"`, `venue="B"`, 1.2); err == nil {
		t.Error("out-of-range strength accepted")
	}
}

func TestEdgeInvariantAfterRandomInserts(t *testing.T) {
	// Invariant (§4.5): for every PREFERS edge, intensity(left) >=
	// intensity(right) whenever both are assigned.
	h := NewGraph(DefaultAvg)
	venues := []string{"A", "B", "C", "D", "E", "F"}
	seeds := []float64{0.1, 0.9, 0.4, 0.7, 0.2}
	for i, v := range venues[:5] {
		h.AddQuantitative(7, `venue="`+v+`"`, seeds[i])
	}
	pairs := [][2]int{{0, 1}, {1, 2}, {3, 4}, {2, 5}, {5, 4}, {0, 3}, {4, 1}}
	for i, p := range pairs {
		h.AddQualitative(7, `venue="`+venues[p[0]]+`"`, `venue="`+venues[p[1]]+`"`, 0.1*float64(i+1))
	}
	for _, n := range h.UserNodes(7) {
		for _, e := range h.PrefersEdges(n.ID) {
			from, _ := h.Node(e.From)
			to, _ := h.Node(e.To)
			if from.HasIntensity && to.HasIntensity && from.Intensity < to.Intensity-1e-9 {
				t.Errorf("invariant violated on edge %d->%d: %v < %v",
					e.From, e.To, from.Intensity, to.Intensity)
			}
		}
	}
	// No PREFERS cycle may exist: every CYCLE-candidate edge was labeled.
	for _, n := range h.UserNodes(7) {
		for _, e := range h.PrefersEdges(n.ID) {
			if h.Store().PathExists(e.To, e.From, LabelPrefers) {
				t.Errorf("PREFERS cycle through %d->%d", e.From, e.To)
			}
		}
	}
}

func TestBuildCounts(t *testing.T) {
	h := NewGraph(DefaultFixed)
	quant := []QuantPref{
		{1, `venue="A"`, 0.5},
		{1, `venue="B"`, 0.3},
	}
	qual := []QualPref{
		{1, `venue="A"`, `venue="B"`, 0.2},
		{1, `venue="B"`, `venue="A"`, 0.2}, // closes a cycle
	}
	res, err := h.Build(quant, qual)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuantInserted != 2 || res.QualInserted != 2 || res.Cycles != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestUserNodesOrdering(t *testing.T) {
	h := NewGraph(DefaultFixed)
	h.AddQuantitative(1, `venue="LOW"`, 0.1)
	h.AddQuantitative(1, `venue="HIGH"`, 0.9)
	h.AddQuantitative(1, `venue="MID"`, 0.5)
	nodes := h.UserNodes(1)
	if len(nodes) != 3 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	if nodes[0].Intensity != 0.9 || nodes[1].Intensity != 0.5 || nodes[2].Intensity != 0.1 {
		t.Errorf("order = %v %v %v", nodes[0].Intensity, nodes[1].Intensity, nodes[2].Intensity)
	}
}

func TestProfileFilters(t *testing.T) {
	h := NewGraph(DefaultFixed)
	h.AddQuantitative(1, `venue="POS"`, 0.6)
	h.AddQuantitative(1, `venue="NEG"`, -0.8)
	h.AddQuantitative(1, `venue="ZERO"`, 0)
	all := h.Profile(1)
	if len(all) != 3 {
		t.Fatalf("Profile = %d", len(all))
	}
	pos := h.PositiveProfile(1)
	if len(pos) != 1 || pos[0].Pred != `venue="POS"` {
		t.Fatalf("PositiveProfile = %v", pos)
	}
	neg := h.NegativeProfile(1)
	if len(neg) != 1 || neg[0].Intensity != -0.8 {
		t.Fatalf("NegativeProfile = %v", neg)
	}
}

func TestNodeIDLookup(t *testing.T) {
	h := NewGraph(DefaultFixed)
	id, _ := h.AddQuantitative(1, `venue="A"`, 0.5)
	got, ok := h.NodeID(1, `venue = 'A'`)
	if !ok || got != id {
		t.Errorf("NodeID = %v %v", got, ok)
	}
	if _, ok := h.NodeID(2, `venue="A"`); ok {
		t.Error("wrong user resolved")
	}
}

func TestDefaultStrategies(t *testing.T) {
	seedWith := func(s DefaultStrategy, vals []float64) float64 {
		h := NewGraph(s)
		for i, v := range vals {
			h.AddQuantitative(5, `aid=`+string(rune('0'+i)), v)
		}
		res, err := h.AddQualitative(5, `venue="NEW1"`, `venue="NEW2"`, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		right, _ := h.Node(res.RightID)
		return right.Intensity
	}
	vals := []float64{-0.2, 0.4, 0.8}
	if got := seedWith(DefaultFixed, vals); got != 0.5 {
		t.Errorf("fixed = %v", got)
	}
	if got := seedWith(DefaultMin, vals); got != -0.2 {
		t.Errorf("min = %v", got)
	}
	if got := seedWith(DefaultMinPos, vals); got != 0.4 {
		t.Errorf("min_pos = %v", got)
	}
	if got := seedWith(DefaultMax, vals); got != 0.8 {
		t.Errorf("max = %v", got)
	}
	if got := seedWith(DefaultMaxPos, vals); got != 0.8 {
		t.Errorf("max_pos = %v", got)
	}
	if got := seedWith(DefaultAvg, vals); !almostEq(got, (-0.2+0.4+0.8)/3) {
		t.Errorf("avg = %v", got)
	}
	if got := seedWith(DefaultAvgPos, vals); !almostEq(got, 0.6) {
		t.Errorf("avg_pos = %v", got)
	}
	// Fallbacks with no prior values.
	if got := seedWith(DefaultMinPos, nil); got != 0 {
		t.Errorf("min_pos fallback = %v", got)
	}
	if got := seedWith(DefaultAvg, nil); got != 0.98 {
		t.Errorf("avg fallback = %v", got)
	}
	if got := seedWith(DefaultFixed, nil); got != 0.5 {
		t.Errorf("fixed fallback = %v", got)
	}
	// max_pos excludes values >= 1.
	if got := seedWith(DefaultMaxPos, []float64{1.0, 0.3}); got != 0.3 {
		t.Errorf("max_pos with saturated value = %v", got)
	}
	// avg saturation guard.
	if got := seedWith(DefaultAvg, []float64{1, 1}); got != 0.98 {
		t.Errorf("avg saturation = %v", got)
	}
}

func TestStrategyAndConflictStrings(t *testing.T) {
	if DefaultFixed.String() != "default" || DefaultAvgPos.String() != "avg_pos" {
		t.Error("strategy names")
	}
	if len(AllDefaultStrategies()) != 7 {
		t.Error("strategy list")
	}
	if NoConflict.String() != "none" || ConflictCycle.String() != "cycle" ||
		ConflictIncompatible.String() != "incompatible" {
		t.Error("conflict names")
	}
}

func TestFig26PrefGrowthCounting(t *testing.T) {
	// After qualitative conversion, the number of usable quantitative
	// preferences grows (Fig. 26/27): count FromQuant vs all with intensity.
	h := NewGraph(DefaultFixed)
	h.AddQuantitative(1, `venue="A"`, 0.5)
	h.AddQuantitative(1, `venue="B"`, 0.3)
	h.AddQualitative(1, `venue="C"`, `venue="D"`, 0.2)
	h.AddQualitative(1, `venue="E"`, `venue="A"`, 0.1)
	fromQuant, withIntensity := 0, 0
	for _, n := range h.UserNodes(1) {
		if n.FromQuant {
			fromQuant++
		}
		if n.HasIntensity {
			withIntensity++
		}
	}
	if fromQuant != 2 {
		t.Errorf("fromQuant = %d", fromQuant)
	}
	if withIntensity != 5 {
		t.Errorf("withIntensity = %d, want 5 (all nodes gained values)", withIntensity)
	}
	if math.Abs(float64(withIntensity)/float64(fromQuant)-2.5) > 1e-9 {
		t.Errorf("growth ratio = %v", float64(withIntensity)/float64(fromQuant))
	}
}
