// Package hypre implements the dissertation's primary contribution: the
// HYPRE (Hybrid Preference) graph model of Chapters 3–4. It stores
// quantitative preferences (an SQL predicate with an intensity in [-1, 1])
// and qualitative preferences (predicate A preferred over predicate B with
// strength in [0, 1]) in one labeled directed acyclic graph, converts
// qualitative preferences into quantitative ones by intensity propagation
// (Eq. 4.1/4.2), detects and marks conflicts (CYCLE / DISCARD edges), and
// rewrites user queries with combined preference predicates (§4.6).
package hypre

import (
	"fmt"
	"math"
)

// Intensity bounds (Definition 13).
const (
	MinIntensity = -1.0
	MaxIntensity = 1.0
)

// Side selects which endpoint of a qualitative preference an intensity is
// being computed for (the LEFT/RIGHT argument of Algorithm 8).
type Side int

const (
	// Left is the preferred endpoint of a qualitative edge.
	Left Side = iota
	// Right is the less-preferred endpoint.
	Right
)

// String returns "LEFT" or "RIGHT".
func (s Side) String() string {
	if s == Left {
		return "LEFT"
	}
	return "RIGHT"
}

// ValidQuantIntensity reports whether v is a legal quantitative intensity
// (Definition 14: [-1, 1]).
func ValidQuantIntensity(v float64) bool {
	return !math.IsNaN(v) && v >= MinIntensity && v <= MaxIntensity
}

// ValidQualIntensity reports whether v is a legal qualitative-preference
// strength (Definition 14: [0, 1]; negative strengths are normalized away
// by flipping the edge per Proposition 7 before reaching the graph).
func ValidQualIntensity(v float64) bool {
	return !math.IsNaN(v) && v >= 0 && v <= MaxIntensity
}

func sign(v float64) float64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// IntensityLeft computes the intensity for the left (preferred) node of a
// qualitative preference from the edge strength ql and the right node's
// quantitative intensity qt — Equation (4.1):
//
//	Intensity_Left(ql, qt) = min(1, qt * 2^(sign(qt)*ql))
//
// The result is always >= qt for qt in [-1, 1] and ql in [0, 1], preserving
// the edge invariant intensity(left) >= intensity(right).
func IntensityLeft(ql, qt float64) float64 {
	return math.Min(MaxIntensity, qt*math.Pow(2, sign(qt)*ql))
}

// IntensityRight computes the intensity for the right (less preferred) node
// from the edge strength ql and the left node's quantitative intensity qt —
// Equation (4.2):
//
//	Intensity_Right(ql, qt) = max(-1, qt * 2^(-sign(qt)*ql))
//
// The result is always <= qt.
func IntensityRight(ql, qt float64) float64 {
	return math.Max(MinIntensity, qt*math.Pow(2, -sign(qt)*ql))
}

// ComputeIntensity is Algorithm 8: it dispatches to IntensityLeft or
// IntensityRight based on the side.
func ComputeIntensity(side Side, ql, qt float64) float64 {
	if side == Left {
		return IntensityLeft(ql, qt)
	}
	return IntensityRight(ql, qt)
}

// FAnd is the inflationary conjunction composition function — Equation
// (4.3): f∧(p1, p2) = 1 − (1−p1)(1−p2). By Proposition 1 it is associative
// and commutative, so the combined intensity of an AND chain does not
// depend on combination order.
func FAnd(p1, p2 float64) float64 {
	return 1 - (1-p1)*(1-p2)
}

// FAndAll folds FAnd over the list: 1 − Π(1−pi). Empty input yields 0
// (the identity of f∧).
func FAndAll(ps ...float64) float64 {
	prod := 1.0
	for _, p := range ps {
		prod *= 1 - p
	}
	return 1 - prod
}

// FOr is the reserved disjunction composition function — Equation (4.4):
// f∨(p1, p2) = (p1 + p2) / 2. By Proposition 2 the folded result depends on
// the fold order; HYPRE folds in the order preferences are appended to the
// OR group (descending intensity), which yields the largest combined value
// among orders (Proposition 2's inequality chain).
func FOr(p1, p2 float64) float64 {
	return (p1 + p2) / 2
}

// FOrSeq left-folds FOr over the list in the given order:
// f∨(...f∨(f∨(p1,p2),p3)...,pn). Single element returns itself; empty
// returns 0.
func FOrSeq(ps ...float64) float64 {
	if len(ps) == 0 {
		return 0
	}
	acc := ps[0]
	for _, p := range ps[1:] {
		acc = FOr(acc, p)
	}
	return acc
}

// MinPreferencesToExceed is Proposition 6's lower bound: the least K such
// that combining K preferences of intensity p2 under f∧ can reach p1, i.e.
// K = log(1−p1)/log(1−p2). It returns +Inf when p2 <= 0 (no number of
// non-positive preferences inflates) and 1 when p2 >= p1.
func MinPreferencesToExceed(p1, p2 float64) float64 {
	if p2 >= p1 {
		return 1
	}
	if p2 <= 0 {
		return math.Inf(1)
	}
	if p1 >= 1 {
		return math.Inf(1)
	}
	return math.Log(1-p1) / math.Log(1-p2)
}

// NormalizeQualitative applies Proposition 7: a qualitative preference
// "A over B with strength s" where s < 0 is equivalent to "B over A with
// strength -s". It returns the possibly swapped (left, right, strength).
func NormalizeQualitative(left, right string, s float64) (string, string, float64) {
	if s < 0 {
		return right, left, -s
	}
	return left, right, s
}

// ClampIntensity forces v into [-1, 1].
func ClampIntensity(v float64) float64 {
	return math.Max(MinIntensity, math.Min(MaxIntensity, v))
}

// CheckQuantIntensity returns an error describing an out-of-range
// quantitative intensity.
func CheckQuantIntensity(v float64) error {
	if !ValidQuantIntensity(v) {
		return fmt.Errorf("hypre: quantitative intensity %v outside [-1, 1]", v)
	}
	return nil
}

// CheckQualIntensity returns an error describing an out-of-range
// qualitative strength.
func CheckQualIntensity(v float64) error {
	if !ValidQualIntensity(v) {
		return fmt.Errorf("hypre: qualitative intensity %v outside [0, 1]", v)
	}
	return nil
}
