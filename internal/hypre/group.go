package hypre

import (
	"fmt"
	"sort"
)

// GroupStrategy selects how member intensities merge when building a group
// profile — the §8.2 extension ("combining multiple profiles into a group
// ... a system can have access to more preferences and recommend items
// using the collective list").
type GroupStrategy int

const (
	// GroupAverage averages the intensities of members who hold the
	// preference (absent members abstain) — the consensus view.
	GroupAverage GroupStrategy = iota
	// GroupLeastMisery takes the minimum over holding members — nobody is
	// dragged to something a member dislikes.
	GroupLeastMisery
	// GroupMostPleasure takes the maximum — one enthusiast suffices.
	GroupMostPleasure
	// GroupFairAverage averages over all group members, counting absent
	// members as 0 — popular preferences win over niche ones.
	GroupFairAverage
)

// String names the strategy.
func (s GroupStrategy) String() string {
	switch s {
	case GroupAverage:
		return "average"
	case GroupLeastMisery:
		return "least-misery"
	case GroupMostPleasure:
		return "most-pleasure"
	case GroupFairAverage:
		return "fair-average"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// GroupProfile merges the profiles of several users into one preference
// list under the given strategy, sorted descending by merged intensity
// (ties by predicate text). Preferences are matched by normalized predicate
// text; each user's full profile (positive and negative) participates, so
// a member's dislike can pull a group intensity below zero.
func (h *Graph) GroupProfile(uids []int64, strategy GroupStrategy) ([]ScoredPred, error) {
	if len(uids) == 0 {
		return nil, fmt.Errorf("hypre: group needs at least one member")
	}
	type acc struct {
		sum   float64
		min   float64
		max   float64
		count int
	}
	accs := map[string]*acc{}
	var order []string
	for _, uid := range uids {
		for _, p := range h.Profile(uid) {
			a, ok := accs[p.Pred]
			if !ok {
				a = &acc{min: p.Intensity, max: p.Intensity}
				accs[p.Pred] = a
				order = append(order, p.Pred)
			}
			a.sum += p.Intensity
			a.count++
			if p.Intensity < a.min {
				a.min = p.Intensity
			}
			if p.Intensity > a.max {
				a.max = p.Intensity
			}
		}
	}
	out := make([]ScoredPred, 0, len(order))
	for _, pred := range order {
		a := accs[pred]
		var v float64
		switch strategy {
		case GroupAverage:
			v = a.sum / float64(a.count)
		case GroupLeastMisery:
			v = a.min
		case GroupMostPleasure:
			v = a.max
		case GroupFairAverage:
			v = a.sum / float64(len(uids))
		default:
			return nil, fmt.Errorf("hypre: unknown group strategy %v", strategy)
		}
		sp, err := NewScoredPred(pred, ClampIntensity(v))
		if err != nil {
			continue
		}
		out = append(out, sp)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Intensity != out[j].Intensity {
			return out[i].Intensity > out[j].Intensity
		}
		return out[i].Pred < out[j].Pred
	})
	return out, nil
}
