package hypre

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestIntensityLeftExamples(t *testing.T) {
	cases := []struct {
		ql, qt, want float64
	}{
		{0, 0.5, 0.5}, // zero strength: equally preferred, value unchanged
		{1, 0.5, 1.0}, // 0.5 * 2^1 = 1.0
		{1, 0.6, 1.0}, // clamped at 1
		{0.5, 0.4, 0.4 * math.Sqrt2},
		{1, -0.5, -0.25}, // negative qt: sign flips the exponent
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := IntensityLeft(c.ql, c.qt); !almostEq(got, c.want) {
			t.Errorf("IntensityLeft(%v,%v) = %v, want %v", c.ql, c.qt, got, c.want)
		}
	}
}

func TestIntensityRightExamples(t *testing.T) {
	cases := []struct {
		ql, qt, want float64
	}{
		{0, 0.5, 0.5},
		{1, 0.5, 0.25},
		{1, -0.6, -1.0 * math.Min(1, 0.6*2)}, // -1.2 clamped to -1
		{0.5, 0.4, 0.4 / math.Sqrt2},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := IntensityRight(c.ql, c.qt); !almostEq(got, c.want) {
			t.Errorf("IntensityRight(%v,%v) = %v, want %v", c.ql, c.qt, got, c.want)
		}
	}
}

func TestComputeIntensityDispatch(t *testing.T) {
	if ComputeIntensity(Left, 1, 0.5) != IntensityLeft(1, 0.5) {
		t.Error("Left dispatch")
	}
	if ComputeIntensity(Right, 1, 0.5) != IntensityRight(1, 0.5) {
		t.Error("Right dispatch")
	}
	if Left.String() != "LEFT" || Right.String() != "RIGHT" {
		t.Error("Side strings")
	}
}

// Property 1 of §4.4: Intensity_Left(ql, qt) >= qt for all legal inputs.
func TestIntensityLeftDominatesProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		ql := float64(a) / 65535     // [0,1]
		qt := float64(b)/32767.5 - 1 // [-1,1]
		l := IntensityLeft(ql, qt)
		return l >= qt-1e-12 && l <= MaxIntensity+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property 2 of §4.4: Intensity_Right(ql, qt) <= qt, within [-1,1].
func TestIntensityRightDominatedProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		ql := float64(a) / 65535
		qt := float64(b)/32767.5 - 1
		r := IntensityRight(ql, qt)
		return r <= qt+1e-12 && r >= MinIntensity-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property 3 of §4.4: zero qualitative strength leaves the value unchanged.
func TestZeroStrengthIdentityProperty(t *testing.T) {
	f := func(b uint16) bool {
		qt := float64(b)/32767.5 - 1
		return almostEq(IntensityLeft(0, qt), qt) && almostEq(IntensityRight(0, qt), qt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFAndExamples(t *testing.T) {
	// §4.6.1: f∧(0.8, 0.5) = 0.9 ; f∧(0.9, 0.2) = 0.92 ; f∧(0.5, 0.2) = 0.6.
	if got := FAnd(0.8, 0.5); !almostEq(got, 0.9) {
		t.Errorf("FAnd(0.8,0.5) = %v", got)
	}
	if got := FAnd(0.9, 0.2); !almostEq(got, 0.92) {
		t.Errorf("FAnd(0.9,0.2) = %v", got)
	}
	if got := FAndAll(0.8, 0.5, 0.2); !almostEq(got, 0.92) {
		t.Errorf("FAndAll = %v", got)
	}
	if got := FAndAll(); got != 0 {
		t.Errorf("empty FAndAll = %v", got)
	}
}

// Proposition 1: f∧ composition is order-independent.
func TestFAndOrderIndependenceProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p1 := float64(a) / 255
		p2 := float64(b) / 255
		p3 := float64(c) / 255
		x := FAnd(p1, FAnd(p2, p3))
		y := FAnd(p2, FAnd(p1, p3))
		z := FAnd(p3, FAnd(p1, p2))
		return almostEq(x, y) && almostEq(y, z) && almostEq(x, FAndAll(p1, p2, p3))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Inflationary behaviour: f∧(p1,p2) >= max(p1,p2) for non-negative inputs.
func TestFAndInflationaryProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		p1 := float64(a) / 255
		p2 := float64(b) / 255
		v := FAnd(p1, p2)
		return v >= p1-1e-12 && v >= p2-1e-12 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFOrExamples(t *testing.T) {
	if got := FOr(0.8, 0.4); !almostEq(got, 0.6) {
		t.Errorf("FOr = %v", got)
	}
	if got := FOrSeq(0.8); got != 0.8 {
		t.Errorf("single FOrSeq = %v", got)
	}
	if got := FOrSeq(); got != 0 {
		t.Errorf("empty FOrSeq = %v", got)
	}
}

// Proposition 2: for p1 >= p2 >= p3, folding with the largest last gives the
// largest value: f∨(p1, f∨(p2,p3)) >= f∨(p2, f∨(p1,p3)) >= f∨(p3, f∨(p1,p2)).
func TestFOrOrderDependenceProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		ps := []float64{float64(a) / 255, float64(b) / 255, float64(c) / 255}
		// sort descending
		if ps[0] < ps[1] {
			ps[0], ps[1] = ps[1], ps[0]
		}
		if ps[1] < ps[2] {
			ps[1], ps[2] = ps[2], ps[1]
		}
		if ps[0] < ps[1] {
			ps[0], ps[1] = ps[1], ps[0]
		}
		x := FOr(ps[0], FOr(ps[1], ps[2]))
		y := FOr(ps[1], FOr(ps[0], ps[2]))
		z := FOr(ps[2], FOr(ps[0], ps[1]))
		return x >= y-1e-12 && y >= z-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Reserved behaviour: min(p1,p2) <= f∨(p1,p2) <= max(p1,p2).
func TestFOrReservedProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		p1 := float64(a) / 255
		p2 := float64(b) / 255
		v := FOr(p1, p2)
		return v >= math.Min(p1, p2)-1e-12 && v <= math.Max(p1, p2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinPreferencesToExceed(t *testing.T) {
	// Proposition 6: K = log(1-p1)/log(1-p2).
	k := MinPreferencesToExceed(0.9, 0.5)
	if !almostEq(k, math.Log(0.1)/math.Log(0.5)) {
		t.Errorf("K = %v", k)
	}
	if MinPreferencesToExceed(0.5, 0.6) != 1 {
		t.Error("p2 >= p1 should need 1")
	}
	if !math.IsInf(MinPreferencesToExceed(0.5, 0), 1) {
		t.Error("p2 = 0 should need infinity")
	}
	if !math.IsInf(MinPreferencesToExceed(1, 0.5), 1) {
		t.Error("p1 = 1 should need infinity")
	}
}

// Sanity: FAndAll of ceil(K) copies of p2 indeed reaches p1.
func TestMinPreferencesBoundTightProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		p1 := 0.1 + 0.8*float64(a)/255 // (0.1, 0.9)
		p2 := 0.05 + 0.5*float64(b)/255
		k := MinPreferencesToExceed(p1, p2)
		if math.IsInf(k, 1) {
			return true
		}
		n := int(math.Ceil(k))
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = p2
		}
		return FAndAll(vals...) >= p1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeQualitative(t *testing.T) {
	l, r, s := NormalizeQualitative("A", "B", 0.3)
	if l != "A" || r != "B" || s != 0.3 {
		t.Errorf("positive should be unchanged: %v %v %v", l, r, s)
	}
	// Proposition 7: negative strength flips the edge.
	l, r, s = NormalizeQualitative("A", "B", -0.3)
	if l != "B" || r != "A" || s != 0.3 {
		t.Errorf("negative should flip: %v %v %v", l, r, s)
	}
}

func TestValidation(t *testing.T) {
	if !ValidQuantIntensity(-1) || !ValidQuantIntensity(1) || !ValidQuantIntensity(0) {
		t.Error("bounds should be valid")
	}
	if ValidQuantIntensity(1.01) || ValidQuantIntensity(-1.01) || ValidQuantIntensity(math.NaN()) {
		t.Error("out of range accepted")
	}
	if ValidQualIntensity(-0.1) {
		t.Error("negative qualitative strength accepted")
	}
	if CheckQuantIntensity(2) == nil || CheckQualIntensity(-1) == nil {
		t.Error("checks should error")
	}
	if CheckQuantIntensity(0.5) != nil || CheckQualIntensity(0.5) != nil {
		t.Error("valid values rejected")
	}
}

func TestClampIntensity(t *testing.T) {
	if ClampIntensity(2) != 1 || ClampIntensity(-2) != -1 || ClampIntensity(0.3) != 0.3 {
		t.Error("clamp wrong")
	}
}
