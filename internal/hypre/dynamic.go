package hypre

import (
	"math"

	"hypre/internal/predicate"
)

// IntensityFunc computes a per-tuple intensity in [-1, 1] — §3.2's
// observation that "intensity can be seen as a constant value or as a
// function to allow dynamic ranking of preferences", e.g. 'I like *recent*
// comedies' where recency is a function of the year attribute.
type IntensityFunc func(row predicate.Row) float64

// DynamicPred is a preference whose intensity depends on the matched tuple:
// the predicate gates applicability, Fn supplies the strength.
type DynamicPred struct {
	Pred string
	P    predicate.Predicate
	Fn   IntensityFunc
}

// NewDynamicPred parses the predicate and attaches the intensity function.
func NewDynamicPred(pred string, fn IntensityFunc) (DynamicPred, error) {
	p, err := predicate.Parse(pred)
	if err != nil {
		return DynamicPred{}, err
	}
	return DynamicPred{Pred: p.String(), P: p, Fn: fn}, nil
}

// Bind evaluates the dynamic preference against one tuple, returning the
// (clamped) intensity and whether the predicate matched.
func (d DynamicPred) Bind(row predicate.Row) (float64, bool) {
	if !d.P.Eval(row) {
		return 0, false
	}
	return ClampIntensity(d.Fn(row)), true
}

// LinearRamp builds the workhorse intensity function: the attribute's value
// is mapped linearly from [attrLo, attrHi] onto [outLo, outHi] and clamped.
// "I like recent papers" becomes LinearRamp("year", 1990, 2013, 0, 1);
// "I dislike high mileage" becomes LinearRamp("mileage", 0, 200000, 0, -1).
// Missing or non-numeric attributes yield outLo.
func LinearRamp(attr string, attrLo, attrHi, outLo, outHi float64) IntensityFunc {
	return func(row predicate.Row) float64 {
		v, ok := row.Get(attr)
		if !ok || !v.IsNumeric() || attrHi == attrLo {
			return outLo
		}
		t := (v.AsFloat() - attrLo) / (attrHi - attrLo)
		t = math.Max(0, math.Min(1, t))
		return outLo + t*(outHi-outLo)
	}
}

// TupleIntensityDynamic extends TupleIntensity with dynamic preferences:
// the combined value is f∧ over the static intensities of matching static
// preferences and the bound intensities of matching dynamic ones. It
// returns the combined intensity and the total number of matches.
func TupleIntensityDynamic(row predicate.Row, static []ScoredPred, dynamic []DynamicPred) (float64, int) {
	var vals []float64
	for _, p := range static {
		if p.P.Eval(row) {
			vals = append(vals, p.Intensity)
		}
	}
	for _, d := range dynamic {
		if v, ok := d.Bind(row); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, 0
	}
	return FAndAll(vals...), len(vals)
}

// RankDynamic scores every row against the static+dynamic preference lists
// and returns indexes of rows ordered by descending combined intensity
// (ties keep input order). Rows matching nothing are excluded.
type RankedRow struct {
	Index     int
	Intensity float64
	Matches   int
}

// RankDynamic evaluates all rows.
func RankDynamic(rows []predicate.Row, static []ScoredPred, dynamic []DynamicPred) []RankedRow {
	var out []RankedRow
	for i, r := range rows {
		v, n := TupleIntensityDynamic(r, static, dynamic)
		if n == 0 {
			continue
		}
		out = append(out, RankedRow{Index: i, Intensity: v, Matches: n})
	}
	// insertion sort keeps stability without importing sort for a tiny list
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Intensity > out[j-1].Intensity; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
