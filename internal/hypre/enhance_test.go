package hypre

import (
	"strings"
	"testing"

	"hypre/internal/predicate"
)

func sp(t *testing.T, pred string, intensity float64) ScoredPred {
	t.Helper()
	p, err := NewScoredPred(pred, intensity)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewScoredPred(t *testing.T) {
	p := sp(t, `dblp.venue = 'VLDB'`, 0.5)
	if p.Attr != "dblp.venue" {
		t.Errorf("Attr = %q", p.Attr)
	}
	if p.Pred != `dblp.venue="VLDB"` {
		t.Errorf("Pred = %q (not normalized)", p.Pred)
	}
	if _, err := NewScoredPred("((", 0.5); err == nil {
		t.Error("invalid predicate accepted")
	}
}

func TestEnhanceAnd(t *testing.T) {
	prefs := []ScoredPred{
		sp(t, `price BETWEEN 7000 AND 16000`, 0.8),
		sp(t, `mileage BETWEEN 20000 AND 50000`, 0.5),
		sp(t, `make IN ("BMW","Honda")`, 0.2),
	}
	e := EnhanceAnd(prefs)
	if !almostEq(e.Intensity, 0.92) {
		t.Errorf("intensity = %v, want 0.92", e.Intensity)
	}
	r := predicate.MapRow{
		"price":   predicate.Int(7000),
		"mileage": predicate.Int(43489),
		"make":    predicate.String("Honda"),
	}
	if !e.Where.Eval(r) {
		t.Error("t1 should match the conjunction")
	}
	r["price"] = predicate.Int(20000)
	if e.Where.Eval(r) {
		t.Error("t3 must not match the conjunction")
	}
}

func TestEnhanceOr(t *testing.T) {
	prefs := []ScoredPred{
		sp(t, `venue="A"`, 0.8),
		sp(t, `venue="B"`, 0.4),
	}
	e := EnhanceOr(prefs)
	if !almostEq(e.Intensity, 0.6) {
		t.Errorf("intensity = %v, want 0.6", e.Intensity)
	}
	if !e.Where.Eval(predicate.MapRow{"venue": predicate.String("B")}) {
		t.Error("B should match")
	}
}

func TestEnhanceMixedGrouping(t *testing.T) {
	// §4.6's uid=2 example: venues OR-ed together, authors OR-ed together,
	// the two groups AND-ed.
	prefs := []ScoredPred{
		sp(t, `dblp.venue="INFOCOM"`, 0.23),
		sp(t, `dblp.venue="PODS"`, 0.14),
		sp(t, `dblp_author.aid=128`, 0.19),
		sp(t, `dblp_author.aid=116`, 0.14),
	}
	e := EnhanceMixed(prefs)
	text := e.Text()
	if !strings.Contains(text, "OR") || !strings.Contains(text, "AND") {
		t.Errorf("mixed clause text = %q", text)
	}
	// Matches: INFOCOM paper by author 128.
	r := predicate.MapRow{
		"dblp.venue":      predicate.String("INFOCOM"),
		"dblp_author.aid": predicate.Int(128),
	}
	if !e.Where.Eval(r) {
		t.Error("INFOCOM+128 should match")
	}
	// INFOCOM paper by another author fails the author group.
	r["dblp_author.aid"] = predicate.Int(999)
	if e.Where.Eval(r) {
		t.Error("author group should filter")
	}
	// Intensity: f∧(f∨(0.23,0.14), f∨(0.19,0.14)).
	want := FAnd(FOrSeq(0.23, 0.14), FOrSeq(0.19, 0.14))
	if !almostEq(e.Intensity, want) {
		t.Errorf("intensity = %v, want %v", e.Intensity, want)
	}
}

func TestEnhanceMixedSingleGroup(t *testing.T) {
	prefs := []ScoredPred{
		sp(t, `venue="A"`, 0.5),
		sp(t, `venue="B"`, 0.3),
	}
	e := EnhanceMixed(prefs)
	if strings.Contains(e.Text(), "AND") {
		t.Errorf("single attribute should be pure OR: %q", e.Text())
	}
	if !almostEq(e.Intensity, 0.4) {
		t.Errorf("intensity = %v", e.Intensity)
	}
}

func TestEnhanceMixedMultiAttrPredicate(t *testing.T) {
	// A predicate spanning two attributes forms its own AND-ed group.
	prefs := []ScoredPred{
		sp(t, `venue="VLDB" AND year>=2010`, 0.6),
		sp(t, `venue="PVLDB"`, 0.4),
	}
	e := EnhanceMixed(prefs)
	if !strings.Contains(e.Text(), "AND") {
		t.Errorf("text = %q", e.Text())
	}
	want := FAnd(0.6, 0.4)
	if !almostEq(e.Intensity, want) {
		t.Errorf("intensity = %v, want %v", e.Intensity, want)
	}
}

func TestEnhanceEmpty(t *testing.T) {
	e := EnhanceAnd(nil)
	if e.Intensity != 0 || !e.Where.Eval(predicate.MapRow{}) {
		t.Error("empty AND should be TRUE with intensity 0")
	}
	eo := EnhanceOr(nil)
	if eo.Where.Eval(predicate.MapRow{}) {
		t.Error("empty OR should be FALSE")
	}
	em := EnhanceMixed(nil)
	if em.Intensity != 0 {
		t.Error("empty mixed intensity")
	}
}

func TestTupleIntensityDealership(t *testing.T) {
	// Example 6 / Table 9 end to end.
	prefs := []ScoredPred{
		sp(t, `price BETWEEN 7000 AND 16000`, 0.8),
		sp(t, `mileage BETWEEN 20000 AND 50000`, 0.5),
		sp(t, `make IN ("BMW","Honda")`, 0.2),
	}
	mk := func(price, mileage int64, make_ string) predicate.MapRow {
		return predicate.MapRow{
			"price":   predicate.Int(price),
			"mileage": predicate.Int(mileage),
			"make":    predicate.String(make_),
		}
	}
	t1, n1 := TupleIntensity(mk(7000, 43489, "Honda"), prefs)
	t2, n2 := TupleIntensity(mk(16000, 35334, "VW"), prefs)
	t3, n3 := TupleIntensity(mk(20000, 49119, "Honda"), prefs)
	if !almostEq(t1, 0.92) || n1 != 3 {
		t.Errorf("t1 = %v (%d prefs), want 0.92 (3)", t1, n1)
	}
	if !almostEq(t2, 0.9) || n2 != 2 {
		t.Errorf("t2 = %v (%d prefs), want 0.9 (2)", t2, n2)
	}
	if !almostEq(t3, 0.6) || n3 != 2 {
		t.Errorf("t3 = %v (%d prefs), want 0.6 (2)", t3, n3)
	}
	// The paper's expected ranking: t1 > t2 > t3.
	if !(t1 > t2 && t2 > t3) {
		t.Errorf("ranking broken: %v %v %v", t1, t2, t3)
	}
	// No-match tuple.
	z, nz := TupleIntensity(mk(99999, 99999, "Fiat"), prefs)
	if z != 0 || nz != 0 {
		t.Errorf("no-match = %v (%d)", z, nz)
	}
}

func TestDescribePrefs(t *testing.T) {
	prefs := []ScoredPred{sp(t, `a=1`, 0.5), sp(t, `b=2`, 0.4)}
	if got := DescribePrefs(prefs); got != "a=1; b=2" {
		t.Errorf("DescribePrefs = %q", got)
	}
}

func TestProfileEndToEnd(t *testing.T) {
	h := NewGraph(DefaultFixed)
	h.AddQuantitative(2, `dblp.venue="INFOCOM"`, 0.23)
	h.AddQuantitative(2, `dblp.venue="PODS"`, 0.14)
	h.AddQuantitative(2, `dblp_author.aid=128`, 0.19)
	h.AddQuantitative(2, `dblp_author.aid=116`, 0.14)
	prefs := h.PositiveProfile(2)
	if len(prefs) != 4 {
		t.Fatalf("profile = %d", len(prefs))
	}
	e := EnhanceMixed(prefs)
	text := e.Text()
	// The rewritten query of §4.6 groups venue and author predicates.
	if !strings.Contains(text, `dblp.venue="INFOCOM"`) || !strings.Contains(text, "AND") {
		t.Errorf("enhanced = %q", text)
	}
}
