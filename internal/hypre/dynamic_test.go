package hypre

import (
	"testing"
	"testing/quick"

	"hypre/internal/predicate"
)

func movieRow(year int64, genre string) predicate.MapRow {
	return predicate.MapRow{
		"year":  predicate.Int(year),
		"genre": predicate.String(genre),
	}
}

func TestNewDynamicPredValidation(t *testing.T) {
	if _, err := NewDynamicPred("((", LinearRamp("year", 0, 1, 0, 1)); err == nil {
		t.Error("invalid predicate accepted")
	}
	d, err := NewDynamicPred(`genre = 'comedy'`, LinearRamp("year", 1990, 2010, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Pred != `genre="comedy"` {
		t.Errorf("not normalized: %q", d.Pred)
	}
}

func TestLinearRamp(t *testing.T) {
	fn := LinearRamp("year", 1990, 2010, 0, 1)
	cases := []struct {
		year int64
		want float64
	}{
		{1990, 0}, {2000, 0.5}, {2010, 1},
		{1980, 0}, // clamped below
		{2020, 1}, // clamped above
	}
	for _, c := range cases {
		if got := fn(movieRow(c.year, "x")); !almostEq(got, c.want) {
			t.Errorf("ramp(%d) = %v, want %v", c.year, got, c.want)
		}
	}
	// Descending ramp (dislike grows with the attribute).
	down := LinearRamp("mileage", 0, 100, 0, -1)
	if got := down(predicate.MapRow{"mileage": predicate.Int(50)}); !almostEq(got, -0.5) {
		t.Errorf("down ramp = %v", got)
	}
	// Missing / non-numeric attribute -> outLo.
	if got := fn(predicate.MapRow{}); got != 0 {
		t.Errorf("missing attr = %v", got)
	}
	if got := fn(predicate.MapRow{"year": predicate.String("x")}); got != 0 {
		t.Errorf("non-numeric = %v", got)
	}
	// Degenerate interval -> outLo.
	deg := LinearRamp("year", 5, 5, 0.2, 0.9)
	if got := deg(movieRow(5, "x")); !almostEq(got, 0.2) {
		t.Errorf("degenerate = %v", got)
	}
}

func TestDynamicPredBind(t *testing.T) {
	d, _ := NewDynamicPred(`genre="comedy"`, LinearRamp("year", 2000, 2010, 0, 1))
	if v, ok := d.Bind(movieRow(2010, "comedy")); !ok || !almostEq(v, 1) {
		t.Errorf("bind = %v %v", v, ok)
	}
	if _, ok := d.Bind(movieRow(2010, "drama")); ok {
		t.Error("gate failed")
	}
	// Fn results outside [-1,1] are clamped.
	wild, _ := NewDynamicPred(`genre="comedy"`, func(predicate.Row) float64 { return 7 })
	if v, _ := wild.Bind(movieRow(2000, "comedy")); v != 1 {
		t.Errorf("clamp = %v", v)
	}
}

func TestTupleIntensityDynamicRecentComedies(t *testing.T) {
	// §3.2's example: "I like recent comedies".
	static := []ScoredPred{}
	recent, _ := NewDynamicPred(`genre="comedy"`, LinearRamp("year", 1950, 2010, 0, 1))
	dyn := []DynamicPred{recent}

	newC, n1 := TupleIntensityDynamic(movieRow(2010, "comedy"), static, dyn)
	oldC, n2 := TupleIntensityDynamic(movieRow(1950, "comedy"), static, dyn)
	drama, n3 := TupleIntensityDynamic(movieRow(2010, "drama"), static, dyn)
	if n1 != 1 || n2 != 1 || n3 != 0 {
		t.Fatalf("matches = %d %d %d", n1, n2, n3)
	}
	if !(newC > oldC) || drama != 0 {
		t.Errorf("ranking: new=%v old=%v drama=%v", newC, oldC, drama)
	}
}

func TestTupleIntensityDynamicMixesWithStatic(t *testing.T) {
	static := []ScoredPred{mustScored(t, `genre="comedy"`, 0.5)}
	recent, _ := NewDynamicPred(`year>=2000`, LinearRamp("year", 2000, 2010, 0, 0.8))
	v, n := TupleIntensityDynamic(movieRow(2010, "comedy"), static, []DynamicPred{recent})
	if n != 2 {
		t.Fatalf("matches = %d", n)
	}
	if !almostEq(v, FAnd(0.5, 0.8)) {
		t.Errorf("combined = %v, want %v", v, FAnd(0.5, 0.8))
	}
}

func mustScored(t *testing.T, pred string, in float64) ScoredPred {
	t.Helper()
	p, err := NewScoredPred(pred, in)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRankDynamic(t *testing.T) {
	rows := []predicate.Row{
		movieRow(1942, "drama"),
		movieRow(2011, "comedy"),
		movieRow(1954, "comedy"),
		movieRow(2013, "thriller"),
	}
	recent, _ := NewDynamicPred(`genre="comedy"`, LinearRamp("year", 1940, 2013, 0.1, 1))
	ranked := RankDynamic(rows, nil, []DynamicPred{recent})
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Index != 1 || ranked[1].Index != 2 {
		t.Errorf("order = %+v", ranked)
	}
	if ranked[0].Intensity <= ranked[1].Intensity {
		t.Error("intensity order wrong")
	}
}

// Property: LinearRamp is monotone in the attribute and stays within the
// output interval.
func TestLinearRampMonotoneProperty(t *testing.T) {
	fn := LinearRamp("x", 0, 1000, -0.2, 0.9)
	f := func(a, b uint16) bool {
		ra := predicate.MapRow{"x": predicate.Int(int64(a))}
		rb := predicate.MapRow{"x": predicate.Int(int64(b))}
		va, vb := fn(ra), fn(rb)
		if va < -0.2-1e-12 || va > 0.9+1e-12 {
			return false
		}
		if a <= b {
			return va <= vb+1e-12
		}
		return vb <= va+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
