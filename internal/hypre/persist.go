package hypre

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"hypre/internal/graphdb"
)

// persistHeader carries the HYPRE-level state the graph store does not
// hold: the DEFAULT_VALUE strategy and the per-user intensity history the
// Table 12 aggregates are computed from.
type persistHeader struct {
	Version  int
	Strategy int
	UserIDs  []int64
	UserVals [][]float64
}

const persistVersion = 1

// Save serializes the preference graph (all users) to w: a small header
// with the strategy and DEFAULT_VALUE history, followed by the graph-store
// snapshot.
func (h *Graph) Save(w io.Writer) error {
	hdr := persistHeader{Version: persistVersion, Strategy: int(h.strategy)}
	ids := make([]int64, 0, len(h.userSeen))
	for uid := range h.userSeen {
		ids = append(ids, uid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, uid := range ids {
		hdr.UserIDs = append(hdr.UserIDs, uid)
		hdr.UserVals = append(hdr.UserVals, append([]float64(nil), h.userSeen[uid]...))
	}
	if err := gob.NewEncoder(w).Encode(hdr); err != nil {
		return fmt.Errorf("hypre: save header: %w", err)
	}
	return h.g.Snapshot(w)
}

// Load reconstructs a preference graph previously written by Save,
// rebuilding the (uid, predicate) -> node map from node properties.
func Load(r io.Reader) (*Graph, error) {
	var hdr persistHeader
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("hypre: load header: %w", err)
	}
	if hdr.Version != persistVersion {
		return nil, fmt.Errorf("hypre: unsupported save version %d", hdr.Version)
	}
	store, err := graphdb.Restore(r)
	if err != nil {
		return nil, err
	}
	h := &Graph{
		g:        store,
		strategy: DefaultStrategy(hdr.Strategy),
		byKey:    make(map[string]graphdb.NodeID),
		userSeen: make(map[int64][]float64, len(hdr.UserIDs)),
	}
	for i, uid := range hdr.UserIDs {
		h.userSeen[uid] = append([]float64(nil), hdr.UserVals[i]...)
	}
	store.ForEachNode(func(id graphdb.NodeID, _ []string, props graphdb.Props) bool {
		uidV, okU := props[propUID]
		predV, okP := props[propPredicate]
		if okU && okP {
			h.byKey[nodeKey(uidV.AsInt(), predV.AsString())] = id
		}
		return true
	})
	return h, nil
}
