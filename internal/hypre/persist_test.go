package hypre

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	h := NewGraph(DefaultAvg)
	h.AddQuantitative(1, `venue="VLDB"`, 0.8)
	h.AddQuantitative(1, `venue="KDD"`, 0.4)
	h.AddQualitative(1, `venue="PODS"`, `venue="ICDE"`, 0.3)
	h.AddQuantitative(2, `venue="WWW"`, 0.6)
	h.AddQualitative(2, `venue="WWW"`, `venue="CIKM"`, 0.2)

	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Profiles identical.
	for _, uid := range []int64{1, 2} {
		want := h.Profile(uid)
		got := r.Profile(uid)
		if len(got) != len(want) {
			t.Fatalf("uid %d: %d vs %d prefs", uid, len(got), len(want))
		}
		for i := range want {
			if got[i].Pred != want[i].Pred || !almostEq(got[i].Intensity, want[i].Intensity) {
				t.Errorf("uid %d pref %d: %+v vs %+v", uid, i, got[i], want[i])
			}
		}
	}
	// Stats identical.
	if h.GraphStats() != r.GraphStats() {
		t.Errorf("stats: %+v vs %+v", h.GraphStats(), r.GraphStats())
	}
	// byKey rebuilt: duplicate insert must still hit the same node.
	idOrig, _ := r.NodeID(1, `venue="VLDB"`)
	idDup, err := r.AddQuantitative(1, `venue="VLDB"`, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if idDup != idOrig {
		t.Errorf("duplicate created new node after load: %d vs %d", idDup, idOrig)
	}
	// userSeen restored: default-value aggregates keep working.
	res, err := r.AddQualitative(1, `venue="NEW1"`, `venue="NEW2"`, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	seed, _ := r.Node(res.RightID)
	hOrig := NewGraph(DefaultAvg)
	hOrig.AddQuantitative(1, `venue="VLDB"`, 0.8)
	hOrig.AddQuantitative(1, `venue="KDD"`, 0.4)
	hOrig.AddQualitative(1, `venue="PODS"`, `venue="ICDE"`, 0.3)
	hOrig.AddQuantitative(1, `venue="VLDB"`, 0.8) // mirror the duplicate insert above
	resO, _ := hOrig.AddQualitative(1, `venue="NEW1"`, `venue="NEW2"`, 0.4)
	seedO, _ := hOrig.Node(resO.RightID)
	if !almostEq(seed.Intensity, seedO.Intensity) {
		t.Errorf("seed after load %v, fresh graph %v", seed.Intensity, seedO.Intensity)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadConflictEdges(t *testing.T) {
	h := NewGraph(DefaultFixed)
	h.AddQualitative(1, `venue="A"`, `venue="B"`, 0.3)
	h.AddQualitative(1, `venue="B"`, `venue="A"`, 0.3) // CYCLE
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := r.GraphStats()
	if st.Cycles != 1 || st.Prefers != 1 {
		t.Errorf("stats after load = %+v", st)
	}
}
