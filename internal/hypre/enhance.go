package hypre

import (
	"sort"
	"strings"

	"hypre/internal/predicate"
)

// ScoredPred is one usable preference: a parsed predicate with its
// intensity and the attribute it constrains. It is the currency between the
// HYPRE graph, the combination algorithms of Chapter 5, and query
// enhancement.
type ScoredPred struct {
	Pred      string              // normalized predicate text
	P         predicate.Predicate // parsed form
	Intensity float64
	Attr      string // primary attribute ("" if the predicate spans several)
}

// NewScoredPred parses a predicate string into a ScoredPred.
func NewScoredPred(pred string, intensity float64) (ScoredPred, error) {
	p, err := predicate.Parse(pred)
	if err != nil {
		return ScoredPred{}, err
	}
	return ScoredPred{
		Pred:      p.String(),
		P:         p,
		Intensity: intensity,
		Attr:      predicate.PrimaryAttribute(p),
	}, nil
}

// Profile returns the user's usable preferences — every node with an
// intensity value — sorted descending by intensity. This is the list the
// Chapter 5 algorithms take as input.
func (h *Graph) Profile(uid int64) []ScoredPred {
	var out []ScoredPred
	for _, n := range h.UserNodes(uid) {
		if !n.HasIntensity {
			continue
		}
		sp, err := NewScoredPred(n.Predicate, n.Intensity)
		if err != nil {
			continue
		}
		out = append(out, sp)
	}
	return out
}

// PositiveProfile returns the user's preferences with strictly positive
// intensity, sorted descending — the list used to enhance queries (§4.3:
// "excluding preferences with negative values").
func (h *Graph) PositiveProfile(uid int64) []ScoredPred {
	all := h.Profile(uid)
	out := all[:0]
	for _, p := range all {
		if p.Intensity > 0 {
			out = append(out, p)
		}
	}
	return out
}

// QuantOnlyProfile returns only the preferences the user supplied directly
// as quantitative ones (intensity > 0), excluding everything HYPRE derived
// from qualitative edges — the view a quantitative-only system like
// Fagin's TA gets to see (§7.6.3).
func (h *Graph) QuantOnlyProfile(uid int64) []ScoredPred {
	var out []ScoredPred
	for _, n := range h.UserNodes(uid) {
		if !n.HasIntensity || !n.FromQuant || n.Intensity <= 0 {
			continue
		}
		sp, err := NewScoredPred(n.Predicate, n.Intensity)
		if err != nil {
			continue
		}
		out = append(out, sp)
	}
	return out
}

// NegativeProfile returns the user's negative preferences (intensity < 0),
// most negative first. Query enhancement applies them as exclusion filters.
func (h *Graph) NegativeProfile(uid int64) []ScoredPred {
	var out []ScoredPred
	for _, p := range h.Profile(uid) {
		if p.Intensity < 0 {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Intensity < out[j].Intensity })
	return out
}

// Enhanced is a preference-enhanced WHERE clause with its combined
// intensity value.
type Enhanced struct {
	Where     predicate.Predicate
	Intensity float64
	Preds     []ScoredPred
}

// Text renders the enhanced clause.
func (e Enhanced) Text() string {
	if e.Where == nil {
		return "TRUE"
	}
	return e.Where.String()
}

// EnhanceAnd combines all preferences with AND semantics (§5.3's AND
// semantics): the conjunction of every predicate, with combined intensity
// f∧ over all members (order-independent by Proposition 1).
func EnhanceAnd(prefs []ScoredPred) Enhanced {
	kids := make([]predicate.Predicate, len(prefs))
	vals := make([]float64, len(prefs))
	for i, p := range prefs {
		kids[i] = p.P
		vals[i] = p.Intensity
	}
	return Enhanced{
		Where:     predicate.NewAnd(kids...),
		Intensity: FAndAll(vals...),
		Preds:     append([]ScoredPred(nil), prefs...),
	}
}

// EnhanceOr combines all preferences with OR semantics: the disjunction of
// every predicate, intensity folded by f∨ in the given order (descending
// intensity input gives the maximal fold per Proposition 2).
func EnhanceOr(prefs []ScoredPred) Enhanced {
	kids := make([]predicate.Predicate, len(prefs))
	vals := make([]float64, len(prefs))
	for i, p := range prefs {
		kids[i] = p.P
		vals[i] = p.Intensity
	}
	return Enhanced{
		Where:     predicate.NewOr(kids...),
		Intensity: FOrSeq(vals...),
		Preds:     append([]ScoredPred(nil), prefs...),
	}
}

// EnhanceMixed implements the mixed-clause rule of §4.6: predicates on the
// same attribute are OR-ed (avoiding information starvation), predicates on
// different attributes are AND-ed (staying selective). Group order follows
// first appearance; within a group, members keep their input order. The
// combined intensity f∧-folds the per-group f∨ folds.
func EnhanceMixed(prefs []ScoredPred) Enhanced {
	type group struct {
		attr  string
		preds []ScoredPred
	}
	var groups []*group
	byAttr := map[string]*group{}
	for _, p := range prefs {
		attr := p.Attr
		if attr == "" {
			// Multi-attribute predicates form their own singleton group.
			groups = append(groups, &group{attr: "", preds: []ScoredPred{p}})
			continue
		}
		g, ok := byAttr[attr]
		if !ok {
			g = &group{attr: attr}
			byAttr[attr] = g
			groups = append(groups, g)
		}
		g.preds = append(g.preds, p)
	}
	var kids []predicate.Predicate
	var groupVals []float64
	for _, g := range groups {
		var ps []predicate.Predicate
		var vals []float64
		for _, p := range g.preds {
			ps = append(ps, p.P)
			vals = append(vals, p.Intensity)
		}
		kids = append(kids, predicate.NewOr(ps...))
		groupVals = append(groupVals, FOrSeq(vals...))
	}
	return Enhanced{
		Where:     predicate.NewAnd(kids...),
		Intensity: FAndAll(groupVals...),
		Preds:     append([]ScoredPred(nil), prefs...),
	}
}

// TupleIntensity computes the combined intensity of a single tuple against
// a preference list, as in Example 6 / Table 9: f∧ over the intensities of
// the preferences the tuple matches. It returns the combined value and the
// number of matching preferences (0 matches yield intensity 0).
func TupleIntensity(row predicate.Row, prefs []ScoredPred) (float64, int) {
	var vals []float64
	for _, p := range prefs {
		if p.P.Eval(row) {
			vals = append(vals, p.Intensity)
		}
	}
	if len(vals) == 0 {
		return 0, 0
	}
	return FAndAll(vals...), len(vals)
}

// DescribePrefs renders a preference list compactly for logs and example
// output.
func DescribePrefs(prefs []ScoredPred) string {
	var sb strings.Builder
	for i, p := range prefs {
		if i > 0 {
			sb.WriteString("; ")
		}
		sb.WriteString(p.Pred)
	}
	return sb.String()
}
