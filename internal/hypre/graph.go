package hypre

import (
	"fmt"
	"sort"
	"strconv"

	"hypre/internal/graphdb"
	"hypre/internal/predicate"
)

// Edge labels (§4.2): PREFERS carries the qualitative partial order; CYCLE
// marks an edge that would have closed a cycle; DISCARD marks an edge whose
// intensity constraint could not be satisfied. Only PREFERS edges are
// traversed.
const (
	LabelPrefers = "PREFERS"
	LabelCycle   = "CYCLE"
	LabelDiscard = "DISCARD"
)

// Node property names, mirroring Fig. 12.
const (
	propUID       = "uid"
	propPredicate = "predicate"
	propIntensity = "intensity"
	propSource    = "source"
	propFromQuant = "fromQuantitative"
)

// uidIndexLabel is the label+property index of §4.3.
const uidIndexLabel = "uidIndex"

// Source records the provenance of a node's intensity value.
type Source string

const (
	// SourceUser marks an intensity supplied directly by the user (a
	// quantitative preference).
	SourceUser Source = "user"
	// SourceComputed marks an intensity derived via Eq. 4.1/4.2.
	SourceComputed Source = "computed"
	// SourceDefault marks a DEFAULT_VALUE seed (§6.3.1).
	SourceDefault Source = "default"
)

// ConflictKind classifies the outcome of inserting a qualitative edge.
type ConflictKind int

const (
	// NoConflict: the edge was inserted as PREFERS.
	NoConflict ConflictKind = iota
	// ConflictCycle: the edge would close a PREFERS cycle; inserted as CYCLE.
	ConflictCycle
	// ConflictIncompatible: both endpoints are interior nodes with
	// incompatible intensities; inserted as DISCARD.
	ConflictIncompatible
)

// String names the conflict kind.
func (c ConflictKind) String() string {
	switch c {
	case NoConflict:
		return "none"
	case ConflictCycle:
		return "cycle"
	case ConflictIncompatible:
		return "incompatible"
	default:
		return "conflict(" + strconv.Itoa(int(c)) + ")"
	}
}

// DefaultStrategy selects how the DEFAULT_VALUE seed of Algorithm 1 is
// chosen per user (Table 12).
type DefaultStrategy int

const (
	// DefaultFixed always seeds with 0.5 ("default" row of Table 12).
	DefaultFixed DefaultStrategy = iota
	// DefaultMin seeds with the user's minimum provided intensity.
	DefaultMin
	// DefaultMinPos seeds with the minimum non-negative intensity, 0 if none.
	DefaultMinPos
	// DefaultMax seeds with the maximum provided intensity.
	DefaultMax
	// DefaultMaxPos seeds with the maximum intensity in [0, 1), 0 if none.
	DefaultMaxPos
	// DefaultAvg seeds with the average intensity (0.98 if the average is 1,
	// so propagation does not saturate every derived value at 1).
	DefaultAvg
	// DefaultAvgPos seeds with the average of non-negative intensities,
	// 0 if none.
	DefaultAvgPos
)

// String names the strategy as in Table 12.
func (d DefaultStrategy) String() string {
	switch d {
	case DefaultFixed:
		return "default"
	case DefaultMin:
		return "min"
	case DefaultMinPos:
		return "min_pos"
	case DefaultMax:
		return "max"
	case DefaultMaxPos:
		return "max_pos"
	case DefaultAvg:
		return "avg"
	case DefaultAvgPos:
		return "avg_pos"
	default:
		return "strategy(" + strconv.Itoa(int(d)) + ")"
	}
}

// AllDefaultStrategies lists every Table 12 strategy, for the ablation
// experiment.
func AllDefaultStrategies() []DefaultStrategy {
	return []DefaultStrategy{DefaultFixed, DefaultMin, DefaultMinPos,
		DefaultMax, DefaultMaxPos, DefaultAvg, DefaultAvgPos}
}

// Graph is the HYPRE preference graph: one graphdb store holding every
// user's profile, keyed by the uid property (§4.2 "we can easily create
// only one graph and, using the user_id property of a node, select all the
// nodes for a particular user").
type Graph struct {
	g        *graphdb.Graph
	strategy DefaultStrategy
	// byKey maps uid+normalized predicate to the node id, implementing
	// createOrReturnNodeId() without a graph scan.
	byKey map[string]graphdb.NodeID
	// userSeen tracks the user-provided intensities per uid for the
	// DEFAULT_VALUE aggregates of Table 12.
	userSeen map[int64][]float64
}

// NewGraph returns an empty HYPRE graph using the given DEFAULT_VALUE
// strategy.
func NewGraph(strategy DefaultStrategy) *Graph {
	g := graphdb.New()
	g.CreateIndex(uidIndexLabel, propUID)
	return &Graph{
		g:        g,
		strategy: strategy,
		byKey:    make(map[string]graphdb.NodeID),
		userSeen: make(map[int64][]float64),
	}
}

// Store exposes the underlying graph store (for the Cypher layer and
// benchmarks).
func (h *Graph) Store() *graphdb.Graph { return h.g }

func nodeKey(uid int64, pred string) string {
	return strconv.FormatInt(uid, 10) + "\x00" + pred
}

// createOrReturnNode implements createOrReturnNodeId() of Algorithm 1: it
// returns the existing node for (uid, predicate) or creates one without an
// intensity value.
func (h *Graph) createOrReturnNode(uid int64, pred string) graphdb.NodeID {
	key := nodeKey(uid, pred)
	if id, ok := h.byKey[key]; ok {
		return id
	}
	id := h.g.CreateNode(graphdb.NodeSpec{
		Labels: []string{uidIndexLabel},
		Props: graphdb.Props{
			propUID:       predicate.Int(uid),
			propPredicate: predicate.String(pred),
		},
	})
	h.byKey[key] = id
	return id
}

// AddQuantitative inserts a quantitative preference (Step 1 of the graph
// construction, §4.5). If the user already has a node for the predicate
// with a user-provided intensity, the two are averaged (Algorithm 1's
// duplicate rule); a computed or default intensity is overwritten by the
// user-provided one.
func (h *Graph) AddQuantitative(uid int64, pred string, intensity float64) (graphdb.NodeID, error) {
	if err := CheckQuantIntensity(intensity); err != nil {
		return 0, err
	}
	pred = predicate.Normalize(pred)
	if _, err := predicate.Parse(pred); err != nil {
		return 0, fmt.Errorf("hypre: invalid predicate %q: %v", pred, err)
	}
	id := h.createOrReturnNode(uid, pred)
	old, hasOld := h.intensity(id)
	src, _ := h.source(id)
	switch {
	case hasOld && src == SourceUser:
		intensity = (old + intensity) / 2
	default:
		// keep the fresh user value
	}
	h.setIntensity(id, intensity, SourceUser)
	h.g.SetProp(id, propFromQuant, predicate.Int(1))
	h.userSeen[uid] = append(h.userSeen[uid], intensity)
	return id, nil
}

// QuantPref is a (predicate, intensity) pair for batch insertion.
type QuantPref struct {
	UID       int64
	Pred      string
	Intensity float64
}

// AddQuantitativeBatch inserts many quantitative preferences, mirroring the
// 100k-row batch transactions of §6.3 Step 1. It returns the number
// inserted and the first error encountered (insertion continues past
// invalid entries, counting only successes).
func (h *Graph) AddQuantitativeBatch(prefs []QuantPref) (int, error) {
	var firstErr error
	n := 0
	for _, p := range prefs {
		if _, err := h.AddQuantitative(p.UID, p.Pred, p.Intensity); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n++
	}
	return n, firstErr
}

// QualResult reports how a qualitative insertion was resolved.
type QualResult struct {
	LeftID   graphdb.NodeID
	RightID  graphdb.NodeID
	EdgeID   graphdb.EdgeID
	Conflict ConflictKind
	// LeftComputed / RightComputed report whether the insertion assigned a
	// new intensity to that endpoint.
	LeftComputed  bool
	RightComputed bool
}

// AddQualitative inserts a qualitative preference "left preferred over
// right with strength ql" for the user — Algorithm 1's per-edge step plus
// the three scenarios of §6.3 Step 2. Negative strengths are normalized by
// Proposition 7 (swap endpoints, negate strength).
func (h *Graph) AddQualitative(uid int64, left, right string, ql float64) (QualResult, error) {
	left, right, ql = NormalizeQualitative(left, right, ql)
	if err := CheckQualIntensity(ql); err != nil {
		return QualResult{}, err
	}
	left = predicate.Normalize(left)
	right = predicate.Normalize(right)
	if _, err := predicate.Parse(left); err != nil {
		return QualResult{}, fmt.Errorf("hypre: invalid left predicate %q: %v", left, err)
	}
	if _, err := predicate.Parse(right); err != nil {
		return QualResult{}, fmt.Errorf("hypre: invalid right predicate %q: %v", right, err)
	}
	if left == right {
		return QualResult{}, fmt.Errorf("hypre: qualitative preference endpoints are identical (%q)", left)
	}

	res := QualResult{
		LeftID:  h.createOrReturnNode(uid, left),
		RightID: h.createOrReturnNode(uid, right),
	}
	edgeProps := graphdb.Props{propIntensity: predicate.Float(ql)}

	// Conflict 1 (§6.2.3): the new edge would close a PREFERS cycle.
	if h.g.PathExists(res.RightID, res.LeftID, LabelPrefers) {
		eid, err := h.g.CreateEdge(res.LeftID, res.RightID, LabelCycle, edgeProps)
		res.EdgeID, res.Conflict = eid, ConflictCycle
		return res, err
	}

	li, hasL := h.intensity(res.LeftID)
	ri, hasR := h.intensity(res.RightID)
	switch {
	case !hasL && !hasR:
		// Scenario 3: two fresh nodes. Seed the right node with
		// DEFAULT_VALUE and lift the left node above it.
		seed := h.defaultValue(uid)
		h.setIntensity(res.RightID, seed, SourceDefault)
		h.setIntensity(res.LeftID, IntensityLeft(ql, seed), SourceComputed)
		res.LeftComputed, res.RightComputed = true, true
	case hasR && !hasL:
		// Scenario 2a: right known, compute left above it (Eq. 4.1).
		h.setIntensity(res.LeftID, IntensityLeft(ql, ri), SourceComputed)
		res.LeftComputed = true
	case hasL && !hasR:
		// Scenario 2b: left known, compute right below it (Eq. 4.2).
		h.setIntensity(res.RightID, IntensityRight(ql, li), SourceComputed)
		res.RightComputed = true
	default:
		// Scenario 1: both known. Consistent values need no recomputation;
		// incompatible values (Conflict 2 of §6.2.3) are repaired by
		// recomputing a leaf endpoint, or DISCARDed when both endpoints are
		// interior nodes (recomputing would propagate the conflict).
		if li < ri {
			switch {
			case h.degree(res.LeftID) == 0:
				h.setIntensity(res.LeftID, IntensityLeft(ql, ri), SourceComputed)
				res.LeftComputed = true
			case h.degree(res.RightID) == 0:
				h.setIntensity(res.RightID, IntensityRight(ql, li), SourceComputed)
				res.RightComputed = true
			default:
				eid, err := h.g.CreateEdge(res.LeftID, res.RightID, LabelDiscard, edgeProps)
				res.EdgeID, res.Conflict = eid, ConflictIncompatible
				return res, err
			}
		}
	}

	eid, err := h.g.CreateEdge(res.LeftID, res.RightID, LabelPrefers, edgeProps)
	res.EdgeID = eid
	return res, err
}

// QualPref is a qualitative preference row for batch insertion.
type QualPref struct {
	UID         int64
	Left, Right string
	Intensity   float64
}

// BuildResult summarizes a two-step graph construction (Algorithm 1 over a
// full workload).
type BuildResult struct {
	QuantInserted int
	QualInserted  int
	Cycles        int
	Discards      int
}

// Build runs Algorithm 1: Step 1 inserts all quantitative preferences,
// Step 2 inserts all qualitative preferences one at a time, resolving
// conflicts as it goes.
func (h *Graph) Build(quant []QuantPref, qual []QualPref) (BuildResult, error) {
	var res BuildResult
	n, err := h.AddQuantitativeBatch(quant)
	if err != nil {
		return res, err
	}
	res.QuantInserted = n
	for _, q := range qual {
		r, err := h.AddQualitative(q.UID, q.Left, q.Right, q.Intensity)
		if err != nil {
			return res, err
		}
		res.QualInserted++
		switch r.Conflict {
		case ConflictCycle:
			res.Cycles++
		case ConflictIncompatible:
			res.Discards++
		}
	}
	return res, nil
}

// degree is the total PREFERS degree (in + out) of a node — Algorithm 1's
// degree() test for whether a node has other connections.
func (h *Graph) degree(id graphdb.NodeID) int {
	return h.g.InDegree(id, LabelPrefers) + h.g.OutDegree(id, LabelPrefers)
}

func (h *Graph) intensity(id graphdb.NodeID) (float64, bool) {
	v, ok := h.g.Prop(id, propIntensity)
	if !ok {
		return 0, false
	}
	return v.AsFloat(), true
}

func (h *Graph) source(id graphdb.NodeID) (Source, bool) {
	v, ok := h.g.Prop(id, propSource)
	if !ok {
		return "", false
	}
	return Source(v.AsString()), true
}

func (h *Graph) setIntensity(id graphdb.NodeID, v float64, src Source) {
	h.g.SetProp(id, propIntensity, predicate.Float(ClampIntensity(v)))
	h.g.SetProp(id, propSource, predicate.String(string(src)))
}

// defaultValue picks the DEFAULT_VALUE seed for a user according to the
// configured Table 12 strategy, over the intensities the user has provided
// so far.
func (h *Graph) defaultValue(uid int64) float64 {
	vals := h.userSeen[uid]
	switch h.strategy {
	case DefaultFixed:
		return 0.5
	case DefaultMin:
		if len(vals) == 0 {
			return 0.5
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case DefaultMinPos:
		m, found := 0.0, false
		for _, v := range vals {
			if v >= 0 && (!found || v < m) {
				m, found = v, true
			}
		}
		return m
	case DefaultMax:
		if len(vals) == 0 {
			return 0.5
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case DefaultMaxPos:
		m, found := 0.0, false
		for _, v := range vals {
			if v >= 0 && v < 1 && (!found || v > m) {
				m, found = v, true
			}
		}
		return m
	case DefaultAvg:
		if len(vals) == 0 {
			return 0.98
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		avg := sum / float64(len(vals))
		if avg >= 1 {
			return 0.98
		}
		return avg
	case DefaultAvgPos:
		sum, n := 0.0, 0
		for _, v := range vals {
			if v >= 0 {
				sum += v
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	default:
		return 0.5
	}
}

// NodeInfo is the exported view of one preference node.
type NodeInfo struct {
	ID           graphdb.NodeID
	UID          int64
	Predicate    string
	Intensity    float64
	HasIntensity bool
	Source       Source
	FromQuant    bool
}

// Node returns the info for one node id.
func (h *Graph) Node(id graphdb.NodeID) (NodeInfo, bool) {
	uidv, ok := h.g.Prop(id, propUID)
	if !ok {
		return NodeInfo{}, false
	}
	info := NodeInfo{ID: id, UID: uidv.AsInt()}
	if v, ok := h.g.Prop(id, propPredicate); ok {
		info.Predicate = v.AsString()
	}
	if v, ok := h.g.Prop(id, propIntensity); ok {
		info.Intensity = v.AsFloat()
		info.HasIntensity = true
	}
	if s, ok := h.source(id); ok {
		info.Source = s
	}
	if v, ok := h.g.Prop(id, propFromQuant); ok && v.AsInt() == 1 {
		info.FromQuant = true
	}
	return info, true
}

// NodeID returns the node for (uid, predicate) if it exists.
func (h *Graph) NodeID(uid int64, pred string) (graphdb.NodeID, bool) {
	id, ok := h.byKey[nodeKey(uid, predicate.Normalize(pred))]
	return id, ok
}

// UserNodes returns all preference nodes of a user via the uid index,
// sorted by descending intensity (nodes without intensity last), ties by
// node id — the ordered retrieval of §4.3.
func (h *Graph) UserNodes(uid int64) []NodeInfo {
	ids := h.g.FindNodes(uidIndexLabel, propUID, predicate.Int(uid))
	out := make([]NodeInfo, 0, len(ids))
	for _, id := range ids {
		if info, ok := h.Node(id); ok {
			out = append(out, info)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.HasIntensity != b.HasIntensity:
			return a.HasIntensity
		case a.Intensity != b.Intensity:
			return a.Intensity > b.Intensity
		default:
			return a.ID < b.ID
		}
	})
	return out
}

// Stats summarizes the graph for Table 11-style reporting.
type Stats struct {
	Nodes    int
	Edges    int
	Prefers  int
	Cycles   int
	Discards int
}

// GraphStats counts nodes and per-label edges.
func (h *Graph) GraphStats() Stats {
	s := Stats{Nodes: h.g.NodeCount(), Edges: h.g.EdgeCount()}
	h.g.ForEachNode(func(id graphdb.NodeID, _ []string, _ graphdb.Props) bool {
		for _, e := range h.g.OutEdges(id, "") {
			switch e.Label {
			case LabelPrefers:
				s.Prefers++
			case LabelCycle:
				s.Cycles++
			case LabelDiscard:
				s.Discards++
			}
		}
		return true
	})
	return s
}

// PrefersEdges returns the PREFERS edges leaving a node, each with its
// qualitative strength.
func (h *Graph) PrefersEdges(id graphdb.NodeID) []QualEdge {
	var out []QualEdge
	for _, e := range h.g.OutEdges(id, LabelPrefers) {
		qe := QualEdge{EdgeID: e.ID, From: e.From, To: e.To}
		if v, ok := e.Props[propIntensity]; ok {
			qe.Intensity = v.AsFloat()
		}
		out = append(out, qe)
	}
	return out
}

// QualEdge is the exported view of a PREFERS edge.
type QualEdge struct {
	EdgeID    graphdb.EdgeID
	From, To  graphdb.NodeID
	Intensity float64
}
