package workload

import (
	"fmt"
	"sort"

	"hypre/internal/hypre"
)

// ExtractConfig tunes the preference extraction rules of §6.2.
type ExtractConfig struct {
	// TopVenues keeps only the K most published-in venues per user (the
	// paper keeps Top-5 to avoid the near-zero long tail).
	TopVenues int
	// MinAuthorIntensity filters quantitative author preferences below this
	// threshold (the paper uses 0.1) — the unfiltered list still feeds
	// qualitative extraction.
	MinAuthorIntensity float64
	// NegativeTopAuthors bounds how many top cited authors contribute
	// negative venue preferences per user (keeps the workload size sane;
	// the rule itself is the paper's).
	NegativeTopAuthors int
}

// DefaultExtractConfig mirrors the dissertation's choices.
func DefaultExtractConfig() ExtractConfig {
	return ExtractConfig{TopVenues: 5, MinAuthorIntensity: 0.1, NegativeTopAuthors: 3}
}

// Prefs is the extracted preference workload: the quantitative_pref and
// qualitative_pref tables of §6.1, in memory.
type Prefs struct {
	Quant []hypre.QuantPref
	Qual  []hypre.QualPref
	// Users lists the user ids (author ids) that have at least one
	// preference, ascending.
	Users []int64
}

// CountByUser returns, per user, the total number of preferences
// (quantitative + qualitative) — the distribution of Fig. 17.
func (p *Prefs) CountByUser() map[int64]int {
	m := make(map[int64]int)
	for _, q := range p.Quant {
		m[q.UID]++
	}
	for _, q := range p.Qual {
		m[q.UID]++
	}
	return m
}

// venuePref is an intermediate (venue, intensity) pair.
type scored struct {
	key       string
	intensity float64
}

// Extract derives user preferences from the citation network following the
// five rules of §6.2:
//
//  1. Venue preference (quantitative): share of the user's papers in each
//     of their top-K venues.
//  2. Author preference (quantitative): share of the user's citations going
//     to each cited author, filtered below MinAuthorIntensity.
//  3. Qualitative author preference: consecutive pairs of the (unfiltered)
//     author list, strength = intensity difference.
//  4. Qualitative venue preference: consecutive pairs of the venue list.
//  5. Negative venue preference (quantitative): −intensityA(B) ×
//     intensityB(V) for venues V where a cited author B published but the
//     user A did not.
func Extract(net *Network, cfg ExtractConfig) *Prefs {
	if cfg.TopVenues <= 0 {
		cfg.TopVenues = 5
	}
	prefs := &Prefs{}
	userSet := map[int64]bool{}

	// Per-author venue intensities are needed twice (rules 1 and 5), so
	// compute them once.
	venuePrefs := make(map[int][]scored, len(net.PapersByAuthor))
	venueSets := make(map[int]map[string]bool, len(net.PapersByAuthor))
	for a, paperIdx := range net.PapersByAuthor {
		counts := map[string]int{}
		all := map[string]bool{}
		for _, pi := range paperIdx {
			v := net.Venues[net.Papers[pi].Venue]
			counts[v]++
			all[v] = true
		}
		venueSets[a] = all
		venuePrefs[a] = topVenueShares(counts, cfg.TopVenues)
	}

	authors := make([]int, 0, len(net.PapersByAuthor))
	for a := range net.PapersByAuthor {
		authors = append(authors, a)
	}
	sort.Ints(authors)

	for _, a := range authors {
		uid := int64(a)
		emitted := false

		// Rule 1: venue preferences.
		for _, vp := range venuePrefs[a] {
			prefs.Quant = append(prefs.Quant, hypre.QuantPref{
				UID:       uid,
				Pred:      venuePredicate(vp.key),
				Intensity: vp.intensity,
			})
			emitted = true
		}

		// Rule 2 input: citation counts per cited author.
		citedCounts := map[int]int{}
		totalCited := 0
		for _, pi := range net.PapersByAuthor[a] {
			for _, cpid := range net.Papers[pi].Cites {
				ci := net.PaperByPID[cpid]
				for _, b := range net.Papers[ci].Authors {
					if b == a {
						continue
					}
					citedCounts[b]++
					totalCited++
				}
			}
		}
		authorList := make([]scored, 0, len(citedCounts))
		for b, c := range citedCounts {
			authorList = append(authorList, scored{
				key:       fmt.Sprintf("%d", b),
				intensity: float64(c) / float64(totalCited),
			})
		}
		sort.Slice(authorList, func(i, j int) bool {
			if authorList[i].intensity != authorList[j].intensity {
				return authorList[i].intensity > authorList[j].intensity
			}
			return authorList[i].key < authorList[j].key
		})

		// Rule 2: filtered quantitative author preferences.
		for _, ap := range authorList {
			if ap.intensity < cfg.MinAuthorIntensity {
				continue
			}
			prefs.Quant = append(prefs.Quant, hypre.QuantPref{
				UID:       uid,
				Pred:      authorPredicate(ap.key),
				Intensity: ap.intensity,
			})
			emitted = true
		}

		// Rule 3: qualitative author preferences from consecutive pairs of
		// the unfiltered list (§6.2.2 uses the larger dataset on purpose).
		for i := 0; i+1 < len(authorList); i++ {
			prefs.Qual = append(prefs.Qual, hypre.QualPref{
				UID:       uid,
				Left:      authorPredicate(authorList[i].key),
				Right:     authorPredicate(authorList[i+1].key),
				Intensity: authorList[i].intensity - authorList[i+1].intensity,
			})
			emitted = true
		}

		// Rule 4: qualitative venue preferences from consecutive pairs.
		vps := venuePrefs[a]
		for i := 0; i+1 < len(vps); i++ {
			prefs.Qual = append(prefs.Qual, hypre.QualPref{
				UID:       uid,
				Left:      venuePredicate(vps[i].key),
				Right:     venuePredicate(vps[i+1].key),
				Intensity: vps[i].intensity - vps[i+1].intensity,
			})
			emitted = true
		}

		// Rule 5: negative venue preferences from the top cited authors.
		myVenues := venueSets[a]
		for i := 0; i < len(authorList) && i < cfg.NegativeTopAuthors; i++ {
			b := atoiSafe(authorList[i].key)
			for _, vb := range venuePrefs[b] {
				if myVenues[vb.key] {
					continue
				}
				prefs.Quant = append(prefs.Quant, hypre.QuantPref{
					UID:       uid,
					Pred:      venuePredicate(vb.key),
					Intensity: -authorList[i].intensity * vb.intensity,
				})
				emitted = true
			}
		}

		if emitted {
			userSet[uid] = true
		}
	}

	prefs.Users = make([]int64, 0, len(userSet))
	for u := range userSet {
		prefs.Users = append(prefs.Users, u)
	}
	sort.Slice(prefs.Users, func(i, j int) bool { return prefs.Users[i] < prefs.Users[j] })
	return prefs
}

// topVenueShares keeps the K most frequent venues and normalizes the counts
// by the total over those K (the paper's Top-5 rule).
func topVenueShares(counts map[string]int, k int) []scored {
	type vc struct {
		venue string
		count int
	}
	list := make([]vc, 0, len(counts))
	for v, c := range counts {
		list = append(list, vc{v, c})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].count != list[j].count {
			return list[i].count > list[j].count
		}
		return list[i].venue < list[j].venue
	})
	if len(list) > k {
		list = list[:k]
	}
	total := 0
	for _, e := range list {
		total += e.count
	}
	out := make([]scored, len(list))
	for i, e := range list {
		out[i] = scored{key: e.venue, intensity: float64(e.count) / float64(total)}
	}
	return out
}

func venuePredicate(venue string) string {
	return fmt.Sprintf("dblp.venue=%q", venue)
}

func authorPredicate(aid string) string {
	return "dblp_author.aid=" + aid
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// PickUsers selects the "rich" and "modest" exemplar users: the users whose
// preference counts are closest to the paper's uid=2 (~170 preferences) and
// uid=38437 (~50 preferences) profiles. Ties break toward the smaller uid.
func (p *Prefs) PickUsers(richTarget, modestTarget int) (rich, modest int64) {
	counts := p.CountByUser()
	best := func(target int) int64 {
		var bestUID int64 = -1
		bestDiff := 1 << 30
		for _, uid := range p.Users {
			d := counts[uid] - target
			if d < 0 {
				d = -d
			}
			if d < bestDiff || (d == bestDiff && uid < bestUID) {
				bestDiff, bestUID = d, uid
			}
		}
		return bestUID
	}
	return best(richTarget), best(modestTarget)
}

// UserPrefs returns the subset of preferences belonging to one user.
func (p *Prefs) UserPrefs(uid int64) ([]hypre.QuantPref, []hypre.QualPref) {
	var qt []hypre.QuantPref
	var ql []hypre.QualPref
	for _, q := range p.Quant {
		if q.UID == uid {
			qt = append(qt, q)
		}
	}
	for _, q := range p.Qual {
		if q.UID == uid {
			ql = append(ql, q)
		}
	}
	return qt, ql
}
