package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hypre/internal/relstore"
)

// ParseDBLP reads the DBLP-Citation-network text format the dissertation's
// dataset (arnetminer V4) ships in: one block per paper, fields marked by
// line prefixes —
//
//	#*  title
//	#@  author list, comma separated
//	#t  year
//	#c  venue
//	#index  paper id
//	#%  one cited paper id (repeated)
//	#!  abstract (ignored beyond storage)
//
// Blocks are separated by blank lines. The parser builds the same Network
// structure the synthetic generator produces — relational tables included —
// so every experiment and the full HYPRE pipeline run unchanged on the real
// dump when it is available. Authors are interned to dense ids in order of
// first appearance; papers without an #index are rejected; citations to
// unknown ids are kept in the citation table but not in Paper.Cites
// (dangling references are common in the real dump).
func ParseDBLP(r io.Reader) (*Network, error) {
	type rawPaper struct {
		title   string
		authors []string
		year    int
		venue   string
		id      int64
		hasID   bool
		cites   []int64
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	var papers []rawPaper
	cur := rawPaper{}
	started := false
	flush := func() error {
		if !started {
			return nil
		}
		if !cur.hasID {
			return fmt.Errorf("workload: paper block %q has no #index", cur.title)
		}
		papers = append(papers, cur)
		cur = rawPaper{}
		started = false
		return nil
	}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(line) == "" {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		switch {
		case strings.HasPrefix(line, "#*"):
			if err := flush(); err != nil { // titles start a new block
				return nil, err
			}
			started = true
			cur.title = strings.TrimSpace(line[2:])
		case strings.HasPrefix(line, "#@"):
			started = true
			for _, a := range strings.Split(line[2:], ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					cur.authors = append(cur.authors, a)
				}
			}
		case strings.HasPrefix(line, "#t"):
			started = true
			y, err := strconv.Atoi(strings.TrimSpace(line[2:]))
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad year %q", lineNo, line)
			}
			cur.year = y
		case strings.HasPrefix(line, "#c"):
			started = true
			cur.venue = strings.TrimSpace(line[2:])
		case strings.HasPrefix(line, "#index"):
			started = true
			id, err := strconv.ParseInt(strings.TrimSpace(line[6:]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad index %q", lineNo, line)
			}
			cur.id = id
			cur.hasID = true
		case strings.HasPrefix(line, "#%"):
			started = true
			ref := strings.TrimSpace(line[2:])
			if ref == "" {
				continue
			}
			id, err := strconv.ParseInt(ref, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad citation %q", lineNo, line)
			}
			cur.cites = append(cur.cites, id)
		case strings.HasPrefix(line, "#!"):
			started = true // abstract: acknowledged, not stored
		default:
			// The real dump contains stray continuation lines; ignore them.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: scan: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(papers) == 0 {
		return nil, fmt.Errorf("workload: no paper blocks found")
	}

	// Intern venues and authors.
	net := &Network{
		DB:             nil, // filled by loadTables
		PapersByAuthor: make(map[int][]int),
		PaperByPID:     make(map[int64]int),
	}
	venueIdx := map[string]int{}
	authorIdx := map[string]int{}
	for _, rp := range papers {
		venue := rp.venue
		if venue == "" {
			venue = "(unknown)"
		}
		if _, ok := venueIdx[venue]; !ok {
			venueIdx[venue] = len(net.Venues)
			net.Venues = append(net.Venues, venue)
		}
	}
	known := map[int64]bool{}
	for _, rp := range papers {
		known[rp.id] = true
	}
	for i, rp := range papers {
		p := Paper{PID: rp.id, Year: rp.year, Venue: venueIdx[nonEmpty(rp.venue)]}
		for _, name := range rp.authors {
			aid, ok := authorIdx[name]
			if !ok {
				aid = len(net.Authors)
				authorIdx[name] = aid
				net.Authors = append(net.Authors, name)
			}
			p.Authors = append(p.Authors, aid)
			net.PapersByAuthor[aid] = append(net.PapersByAuthor[aid], i)
		}
		for _, c := range rp.cites {
			if known[c] {
				p.Cites = append(p.Cites, c)
			}
		}
		if _, dup := net.PaperByPID[p.PID]; dup {
			return nil, fmt.Errorf("workload: duplicate paper id %d", p.PID)
		}
		net.Papers = append(net.Papers, p)
		net.PaperByPID[p.PID] = i
	}

	// Keep Cfg roughly descriptive so downstream consumers can introspect.
	net.Cfg = Config{
		NumPapers:  len(net.Papers),
		NumAuthors: len(net.Authors),
		NumVenues:  len(net.Venues),
	}
	// Reuse the generator's table loader for schema + indexes.
	net.DB = relstore.NewDB()
	if err := loadTables(net); err != nil {
		return nil, err
	}
	return net, nil
}

func nonEmpty(v string) string {
	if v == "" {
		return "(unknown)"
	}
	return v
}
