package workload

import (
	"sort"
)

// HistogramBin is one bin of the preference-count distribution (Fig. 17):
// Count users each have PrefCount preferences.
type HistogramBin struct {
	PrefCount int
	Users     int
}

// PrefDistribution computes the Fig. 17 histogram: for each distinct
// preference count, how many users have exactly that many preferences,
// sorted ascending by preference count.
func (p *Prefs) PrefDistribution() []HistogramBin {
	byUser := p.CountByUser()
	byCount := map[int]int{}
	for _, c := range byUser {
		byCount[c]++
	}
	bins := make([]HistogramBin, 0, len(byCount))
	for c, u := range byCount {
		bins = append(bins, HistogramBin{PrefCount: c, Users: u})
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].PrefCount < bins[j].PrefCount })
	return bins
}

// TailRatio summarizes the long-tail shape: the fraction of users whose
// preference count is below the mean. A long-tailed distribution has a
// large majority below the mean (a few power users pull it up).
func (p *Prefs) TailRatio() float64 {
	byUser := p.CountByUser()
	if len(byUser) == 0 {
		return 0
	}
	total := 0
	for _, c := range byUser {
		total += c
	}
	mean := float64(total) / float64(len(byUser))
	below := 0
	for _, c := range byUser {
		if float64(c) < mean {
			below++
		}
	}
	return float64(below) / float64(len(byUser))
}

// MaxPrefCount returns the largest per-user preference count (the head of
// the Fig. 17 distribution).
func (p *Prefs) MaxPrefCount() int {
	max := 0
	for _, c := range p.CountByUser() {
		if c > max {
			max = c
		}
	}
	return max
}
