package workload

import (
	"fmt"
	"math/rand"
	"time"

	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// This file is the sustained-stream half of the update workload: the same
// seeded op mix as UpdateStream, but pre-planned into pid-keyed Op values
// that concurrent writers can execute against the store. Two properties
// make the plans concurrency- and compaction-proof:
//
//   - Ops name rows by pid, never by row id; Do resolves the current row
//     through the store's hash index at execution time, so a plan stays
//     valid across tombstone compactions that renumber every row.
//   - PlanPartitions hands each writer a pid-disjoint slice of the live
//     set (and a private fresh-pid namespace), so any interleaving of the
//     writers reaches the same final logical state — which is what lets
//     the stream experiment compare a group-commit store against a serial
//     twin by ranking equality rather than by trust.
//
// Pacer adds the open-loop arrival mode: seeded exponential interarrival
// gaps for a target ops/sec, so the stream experiment can drive the store
// at a fixed offered load instead of as-fast-as-possible (closed loop),
// and measure maintenance staleness under that load.

// OpKind tags one planned mutation.
type OpKind uint8

const (
	// OpInsert adds a paper with its authorship links.
	OpInsert OpKind = iota
	// OpDelete removes a paper and its links.
	OpDelete
	// OpUpdateVenue rewrites the paper's venue in place.
	OpUpdateVenue
	// OpUpdateYear rewrites the paper's year in place.
	OpUpdateYear
	// OpLinkAdd inserts one authorship link.
	OpLinkAdd
	// OpLinkDel deletes one of the paper's authorship links.
	OpLinkDel
)

// Op is one pre-planned mutation against the DBLP pair of tables, keyed by
// pid. Fields beyond PID are populated per kind. The JSON form (kind as its
// lowercase name, see opjson.go) is the wire format of the serving tier's
// /v1/mutate batches.
type Op struct {
	Kind    OpKind  `json:"kind"`
	PID     int64   `json:"pid"`
	Venue   string  `json:"venue,omitempty"`
	Year    int64   `json:"year,omitempty"`
	Authors []int64 `json:"authors,omitempty"` // OpInsert: initial links; OpLinkAdd: Authors[0]
}

// Do executes the op against the store as one key-addressed mutation batch
// (relstore.Batch): the op's mutations — a paper insert with its links, a
// paper delete with its link teardown — commit as a single atomic unit, and
// each key resolves through the store's hash index inside the committed
// critical section. An op is therefore a pure write-path call with no
// shared-lock read preamble (which is what lets ops queue up behind a
// group-commit leader instead of stalling in a lookup) and stays valid
// across tombstone compactions that renumber every row. A target pid that
// is no longer live degrades to a no-op (zero rows matched) rather than an
// error.
func (op Op) Do(db *relstore.DB) error {
	b := db.NewBatch()
	pid := predicate.Int(op.PID)
	switch op.Kind {
	case OpInsert:
		title := fmt.Sprintf("Paper %d on %s topics", op.PID, op.Venue)
		abstract := fmt.Sprintf("Abstract of paper %d.", op.PID)
		b.Insert("dblp", pid, predicate.String(title),
			predicate.String(op.Venue), predicate.Int(op.Year), predicate.String(abstract))
		for _, aid := range op.Authors {
			b.Insert("dblp_author", pid, predicate.Int(aid))
		}
	case OpDelete:
		b.DeleteByKey("dblp", "pid", pid)
		b.DeleteByKey("dblp_author", "pid", pid)
	case OpUpdateVenue:
		b.UpdateColByKey("dblp", "pid", pid, "venue", predicate.String(op.Venue))
	case OpUpdateYear:
		b.UpdateColByKey("dblp", "pid", pid, "year", predicate.Int(op.Year))
	case OpLinkAdd:
		b.Insert("dblp_author", pid, predicate.Int(op.Authors[0]))
	case OpLinkDel:
		b.DeleteOneByKey("dblp_author", "pid", pid)
	}
	return b.Commit()
}

// PlanPartitions pre-plans writers×perWriter ops with the stream's mix and
// seed: the current live pid set is dealt round-robin across the writers,
// each writer draws from a derived RNG and allocates fresh pids in a
// stride-writers namespace, and every op targets only pids its own writer
// owns. The plans are pure — nothing is mutated until Do — so the same
// plan can be executed against twin stores (group-commit vs serial) and
// compared for equivalence.
func (s *UpdateStream) PlanPartitions(writers, perWriter int) [][]Op {
	owned := make([][]int64, writers)
	for i, pid := range s.pids {
		w := i % writers
		owned[w] = append(owned[w], pid)
	}
	plans := make([][]Op, writers)
	for w := 0; w < writers; w++ {
		plans[w] = s.planOne(w, writers, perWriter, owned[w])
	}
	return plans
}

// planOne generates one writer's op list over its owned pid set.
func (s *UpdateStream) planOne(w, writers, n int, owned []int64) []Op {
	rng := rand.New(rand.NewSource(s.cfg.Seed*1_000_003 + int64(w)))
	next := s.next + int64(w) // fresh pids: next + w + k*writers
	c := s.cfg
	ops := make([]Op, 0, n)
	newPaper := func() Op {
		pid := next
		next += int64(writers)
		venue := s.net.Venues[rng.Intn(len(s.net.Venues))]
		year := s.net.Cfg.MinYear + rng.Intn(s.net.Cfg.MaxYear-s.net.Cfg.MinYear+1)
		nAuth := 1 + rng.Intn(3)
		authors := make([]int64, 0, nAuth)
		seen := map[int64]bool{}
		for a := 0; a < nAuth; a++ {
			aid := int64(rng.Intn(len(s.net.Authors)))
			if !seen[aid] {
				seen[aid] = true
				authors = append(authors, aid)
			}
		}
		owned = append(owned, pid)
		return Op{Kind: OpInsert, PID: pid, Venue: venue, Year: int64(year), Authors: authors}
	}
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < c.InsertFrac || len(owned) == 0:
			ops = append(ops, newPaper())
		case r < c.InsertFrac+c.DeleteFrac:
			j := rng.Intn(len(owned))
			pid := owned[j]
			owned[j] = owned[len(owned)-1]
			owned = owned[:len(owned)-1]
			ops = append(ops, Op{Kind: OpDelete, PID: pid})
		case r < c.InsertFrac+c.DeleteFrac+c.LinkFrac:
			pid := owned[rng.Intn(len(owned))]
			if rng.Float64() < 0.5 {
				aid := int64(rng.Intn(len(s.net.Authors)))
				ops = append(ops, Op{Kind: OpLinkAdd, PID: pid, Authors: []int64{aid}})
			} else {
				ops = append(ops, Op{Kind: OpLinkDel, PID: pid})
			}
		default:
			pid := owned[rng.Intn(len(owned))]
			if rng.Float64() < 0.5 {
				venue := s.net.Venues[rng.Intn(len(s.net.Venues))]
				ops = append(ops, Op{Kind: OpUpdateVenue, PID: pid, Venue: venue})
			} else {
				year := s.net.Cfg.MinYear + rng.Intn(s.net.Cfg.MaxYear-s.net.Cfg.MinYear+1)
				ops = append(ops, Op{Kind: OpUpdateYear, PID: pid, Year: int64(year)})
			}
		}
	}
	return ops
}

// Pacer is the open-loop arrival process: exponential interarrival gaps
// drawn from a seeded RNG for a target mean rate, independent of how fast
// the store absorbs the ops (the defining property of open-loop load — a
// slow server builds a backlog instead of slowing the offered rate).
type Pacer struct {
	rng  *rand.Rand
	mean float64 // seconds between arrivals
	next time.Duration
}

// NewPacer builds a pacer for opsPerSec mean arrivals per second.
func NewPacer(seed int64, opsPerSec float64) *Pacer {
	if opsPerSec <= 0 {
		opsPerSec = 1
	}
	return &Pacer{rng: rand.New(rand.NewSource(seed)), mean: 1 / opsPerSec}
}

// Next returns the arrival time of the next op, as an offset from the
// stream's start. Arrivals are strictly non-decreasing.
func (p *Pacer) Next() time.Duration {
	gap := p.rng.ExpFloat64() * p.mean
	p.next += time.Duration(gap * float64(time.Second))
	return p.next
}
