package workload

import (
	"math/rand"
	"sort"
)

// This file generates the serving-path read workload: a seeded Zipf-skewed
// sequence of profile owners, modeling a preference-serving front end where
// a small set of hot users issues most of the top-k queries. The cacheserve
// experiment replays the same sequence against the cached and uncached
// evaluation paths.

// ProfileMixConfig controls the Zipf draw.
type ProfileMixConfig struct {
	Seed int64
	// S is the Zipf skew exponent (must be > 1; larger = hotter head).
	S float64
	// Distinct caps how many users participate (0 = everyone offered).
	Distinct int
}

// DefaultProfileMixConfig is the cacheserve mix: skew 1.3 over 64 users —
// hot enough that repeats dominate, long-tailed enough that the cache keeps
// missing on cold profiles throughout the run.
func DefaultProfileMixConfig() ProfileMixConfig {
	return ProfileMixConfig{Seed: 11, S: 1.3, Distinct: 64}
}

// ProfileMix is a materialized query sequence plus its popularity ranking.
type ProfileMix struct {
	// Seq is the replay order: Seq[i] is the uid of query i.
	Seq []int64
	// Ranked lists the participating users, hottest first.
	Ranked []int64
}

// ZipfProfileSequence draws n queries over users under cfg. Rank-to-user
// assignment is a seeded shuffle, so the hottest profile is an arbitrary
// user rather than whoever sorts first; the same (users, n, cfg) always
// yields the same sequence.
func ZipfProfileSequence(users []int64, n int, cfg ProfileMixConfig) *ProfileMix {
	if len(users) == 0 || n <= 0 {
		return &ProfileMix{}
	}
	if cfg.S <= 1 {
		cfg.S = DefaultProfileMixConfig().S
	}
	pool := make([]int64, len(users))
	copy(pool, users)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if cfg.Distinct > 0 && len(pool) > cfg.Distinct {
		pool = pool[:cfg.Distinct]
	}
	z := rand.NewZipf(rng, cfg.S, 1, uint64(len(pool)-1))
	seq := make([]int64, n)
	for i := range seq {
		seq[i] = pool[z.Uint64()]
	}
	return &ProfileMix{Seq: seq, Ranked: pool}
}

// DistinctQueried counts how many users actually appear in the sequence.
func (m *ProfileMix) DistinctQueried() int {
	seen := make(map[int64]bool, len(m.Ranked))
	for _, uid := range m.Seq {
		seen[uid] = true
	}
	return len(seen)
}

// TopShare reports the fraction of queries issued by the k hottest users in
// the sequence — the skew knob's observable effect.
func (m *ProfileMix) TopShare(k int) float64 {
	if len(m.Seq) == 0 || k <= 0 {
		return 0
	}
	counts := map[int64]int{}
	for _, uid := range m.Seq {
		counts[uid]++
	}
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	if k > len(all) {
		k = len(all)
	}
	top := 0
	for _, c := range all[:k] {
		top += c
	}
	return float64(top) / float64(len(m.Seq))
}
