package workload

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the HTTP half of the traffic generator: the same two arrival
// disciplines the store-level stream experiment uses — closed loop (a fixed
// worker pool, each worker issuing its next request the moment the previous
// answer lands) and open loop (a Pacer schedules arrivals at a fixed offered
// rate regardless of how fast the server answers) — driving a real HTTP
// server instead of the store API.
//
// The open-loop latency ledger is coordinated-omission-free: each request's
// latency is measured from its SCHEDULED arrival time, not from when a
// goroutine got around to sending it, so a stalled server inflates the tail
// instead of silently thinning the sample.

// HTTPRequest is one pre-built request of a drive plan.
type HTTPRequest struct {
	Method string
	Path   string // joined to the driver's base URL
	Body   []byte // nil for GET
}

// HTTPDriverConfig shapes one DriveHTTP run.
type HTTPDriverConfig struct {
	// Open selects the arrival discipline: open loop (Pacer at OpsPerSec)
	// when true, closed loop (Workers in lockstep) when false.
	Open bool
	// OpsPerSec is the open-loop offered rate (ignored when closed loop).
	OpsPerSec float64
	// Workers is the closed-loop pool size (default 4). In open loop it
	// bounds in-flight requests; 0 means unbounded (goroutine per arrival).
	Workers int
	// Seed derives the Pacer's interarrival sequence.
	Seed int64
	// Timeout bounds one request (default 10s).
	Timeout time.Duration
}

// HTTPResult is one drive's ledger.
type HTTPResult struct {
	Issued int // requests sent
	OK     int // 2xx answers
	Shed   int // 429 answers
	Errors int // transport errors and non-2xx/429 statuses

	// OKLats holds one latency sample per 2xx answer — closed loop: send to
	// last body byte; open loop: scheduled arrival to last body byte.
	OKLats []time.Duration
	// Wall is the whole drive's duration.
	Wall time.Duration
	// StatusCounts tallies answers by HTTP status.
	StatusCounts map[int]int
	// ShedWithRetryAfter counts 429s carrying a parseable positive
	// Retry-After header; load-shedding is well-formed iff it equals Shed.
	ShedWithRetryAfter int
	// FirstError samples the first transport/status failure for reporting.
	FirstError string
}

// P50 and P99 are the OK-latency percentiles (0 when no OKs).
func (r *HTTPResult) P50() time.Duration { return percentileDur(r.OKLats, 0.50) }
func (r *HTTPResult) P99() time.Duration { return percentileDur(r.OKLats, 0.99) }

func percentileDur(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lats))
	copy(s, lats)
	for i := 1; i < len(s); i++ { // insertion sort: samples are few thousand
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	i := int(p * float64(len(s)-1))
	return s[i]
}

// DriveHTTP issues every request of the plan against baseURL under cfg's
// arrival discipline and returns the ledger. client may be nil (a default
// client with cfg.Timeout is built). The error return is reserved for plan
// problems; per-request failures land in the ledger instead.
func DriveHTTP(client *http.Client, baseURL string, reqs []HTTPRequest, cfg HTTPDriverConfig) (*HTTPResult, error) {
	if len(reqs) == 0 {
		return &HTTPResult{StatusCounts: map[int]int{}}, nil
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	res := &HTTPResult{StatusCounts: make(map[int]int)}
	var mu sync.Mutex
	record := func(lat time.Duration, status int, err error) {
		mu.Lock()
		defer mu.Unlock()
		res.Issued++
		if err != nil {
			res.Errors++
			if res.FirstError == "" {
				res.FirstError = err.Error()
			}
			return
		}
		res.StatusCounts[status]++
		switch {
		case status >= 200 && status < 300:
			res.OK++
			res.OKLats = append(res.OKLats, lat)
		case status == http.StatusTooManyRequests:
			res.Shed++
		default:
			res.Errors++
			if res.FirstError == "" {
				res.FirstError = fmt.Sprintf("unexpected status %d on %s %s", status, reqs[0].Method, reqs[0].Path)
			}
		}
	}
	issue := func(r HTTPRequest) (int, error) {
		var body io.Reader
		if r.Body != nil {
			body = bytes.NewReader(r.Body)
		}
		req, err := http.NewRequest(r.Method, baseURL+r.Path, body)
		if err != nil {
			return 0, err
		}
		if r.Body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			if ra >= 1 {
				mu.Lock()
				res.ShedWithRetryAfter++
				mu.Unlock()
			}
		}
		return resp.StatusCode, nil
	}

	start := time.Now()
	if !cfg.Open {
		workers := cfg.Workers
		if workers <= 0 {
			workers = 4
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1) - 1)
					if i >= len(reqs) {
						return
					}
					t0 := time.Now()
					status, err := issue(reqs[i])
					record(time.Since(t0), status, err)
				}
			}()
		}
		wg.Wait()
		res.Wall = time.Since(start)
		return res, nil
	}

	// Open loop: schedule every arrival up front from the Pacer, then fire
	// each at its offset. A bounded semaphore (Workers > 0) caps in-flight
	// requests; an arrival that cannot get a slot by its scheduled time still
	// charges its wait to latency — that is the point of open loop.
	pacer := NewPacer(cfg.Seed, cfg.OpsPerSec)
	offsets := make([]time.Duration, len(reqs))
	for i := range reqs {
		offsets[i] = pacer.Next()
	}
	var sem chan struct{}
	if cfg.Workers > 0 {
		sem = make(chan struct{}, cfg.Workers)
	}
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			scheduled := start.Add(offsets[i])
			if d := time.Until(scheduled); d > 0 {
				time.Sleep(d)
			}
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			status, err := issue(reqs[i])
			record(time.Since(scheduled), status, err)
		}(i)
	}
	wg.Wait()
	res.Wall = time.Since(start)
	return res, nil
}
