package workload

import (
	"testing"

	"hypre/internal/hypre"
	"hypre/internal/predicate"
)

func smallNet(t *testing.T) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumPapers = 600
	cfg.NumAuthors = 200
	cfg.NumVenues = 15
	net, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumPapers = 0 },
		func(c *Config) { c.NumAuthors = 0 },
		func(c *Config) { c.NumVenues = 0 },
		func(c *Config) { c.MinYear = 3000 },
		func(c *Config) { c.MaxAuthorsPerPaper = 0 },
		func(c *Config) { c.MeanCitations = -1 },
		func(c *Config) { c.ZipfS = 1.0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateTables(t *testing.T) {
	net := smallNet(t)
	stats := net.DB.Stats()
	byName := map[string][2]int{}
	for _, s := range stats {
		byName[s.Name] = [2]int{s.Arity, s.Cardinality}
	}
	// Table 10's schema: dblp has arity 5, author 2, citation 2, dblp_author 2.
	if got := byName["dblp"]; got[0] != 5 || got[1] != 600 {
		t.Errorf("dblp = %v", got)
	}
	if got := byName["author"]; got[0] != 2 || got[1] != 200 {
		t.Errorf("author = %v", got)
	}
	if got := byName["citation"]; got[0] != 2 {
		t.Errorf("citation = %v", got)
	}
	if got := byName["dblp_author"]; got[0] != 2 || got[1] < 600 {
		t.Errorf("dblp_author = %v (must have >= one row per paper)", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumPapers = 300
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Papers) != len(b.Papers) {
		t.Fatal("different sizes")
	}
	for i := range a.Papers {
		if a.Papers[i].Venue != b.Papers[i].Venue || a.Papers[i].Year != b.Papers[i].Year ||
			len(a.Papers[i].Cites) != len(b.Papers[i].Cites) {
			t.Fatalf("paper %d differs", i)
		}
	}
}

func TestGenerateCitationsPointBackward(t *testing.T) {
	net := smallNet(t)
	for i := range net.Papers {
		for _, c := range net.Papers[i].Cites {
			j, ok := net.PaperByPID[c]
			if !ok {
				t.Fatalf("citation to unknown pid %d", c)
			}
			if j >= i {
				t.Fatalf("paper %d cites non-earlier paper %d", i, j)
			}
		}
	}
}

func TestGenerateSkewedDistributions(t *testing.T) {
	net := smallNet(t)
	// Venue distribution must be clearly skewed (Zipf), not uniform.
	if g := net.GiniVenue(); g < 0.4 {
		t.Errorf("venue Gini = %v, want skew >= 0.4", g)
	}
	if m := net.MeanPapersPerAuthor(); m <= 1 {
		t.Errorf("mean papers/author = %v", m)
	}
}

func TestVenueOf(t *testing.T) {
	net := smallNet(t)
	if v := net.VenueOf(net.Papers[0].PID); v != net.Venues[net.Papers[0].Venue] {
		t.Errorf("VenueOf = %q", v)
	}
	if v := net.VenueOf(999999); v != "" {
		t.Errorf("unknown pid should return empty, got %q", v)
	}
}

func TestExtractRules(t *testing.T) {
	net := smallNet(t)
	prefs := Extract(net, DefaultExtractConfig())
	if len(prefs.Quant) == 0 || len(prefs.Qual) == 0 || len(prefs.Users) == 0 {
		t.Fatalf("empty extraction: %d quant, %d qual, %d users",
			len(prefs.Quant), len(prefs.Qual), len(prefs.Users))
	}
	// All predicates must parse and all intensities be legal.
	for _, q := range prefs.Quant {
		if _, err := predicate.Parse(q.Pred); err != nil {
			t.Fatalf("bad quant predicate %q: %v", q.Pred, err)
		}
		if !hypre.ValidQuantIntensity(q.Intensity) {
			t.Fatalf("bad quant intensity %v", q.Intensity)
		}
	}
	for _, q := range prefs.Qual {
		if _, err := predicate.Parse(q.Left); err != nil {
			t.Fatalf("bad qual left %q: %v", q.Left, err)
		}
		if _, err := predicate.Parse(q.Right); err != nil {
			t.Fatalf("bad qual right %q: %v", q.Right, err)
		}
		// Qualitative strengths from consecutive sorted pairs are >= 0.
		if q.Intensity < 0 || q.Intensity > 1 {
			t.Fatalf("bad qual intensity %v", q.Intensity)
		}
	}
}

func TestExtractTopVenuesCap(t *testing.T) {
	net := smallNet(t)
	prefs := Extract(net, ExtractConfig{TopVenues: 2, MinAuthorIntensity: 0.1, NegativeTopAuthors: 0})
	// No user may have more than 2 positive venue preferences.
	posVenues := map[int64]int{}
	for _, q := range prefs.Quant {
		if q.Intensity > 0 && q.Pred[:10] == "dblp.venue" {
			posVenues[q.UID]++
		}
	}
	for uid, n := range posVenues {
		if n > 2 {
			t.Fatalf("user %d has %d venue prefs, cap 2", uid, n)
		}
	}
}

func TestExtractAuthorIntensityFilter(t *testing.T) {
	net := smallNet(t)
	prefs := Extract(net, DefaultExtractConfig())
	for _, q := range prefs.Quant {
		if len(q.Pred) > 15 && q.Pred[:15] == "dblp_author.aid" && q.Intensity < 0.1 {
			t.Fatalf("author pref below threshold survived: %+v", q)
		}
	}
}

func TestExtractNegativePrefsExist(t *testing.T) {
	net := smallNet(t)
	prefs := Extract(net, DefaultExtractConfig())
	neg := 0
	for _, q := range prefs.Quant {
		if q.Intensity < 0 {
			neg++
			// Rule 5 only emits venue predicates.
			if q.Pred[:10] != "dblp.venue" {
				t.Fatalf("negative non-venue pref: %+v", q)
			}
		}
	}
	if neg == 0 {
		t.Error("no negative preferences extracted")
	}
}

func TestExtractQualitativeOrdering(t *testing.T) {
	// Consecutive-pair extraction means left intensity >= right intensity,
	// so strengths are non-negative differences; spot-check monotonicity by
	// rebuilding one user's author list.
	net := smallNet(t)
	prefs := Extract(net, DefaultExtractConfig())
	for _, q := range prefs.Qual[:min(50, len(prefs.Qual))] {
		if q.Intensity < 0 {
			t.Fatalf("negative qualitative strength %v", q.Intensity)
		}
	}
}

func TestPrefDistributionLongTail(t *testing.T) {
	net := smallNet(t)
	prefs := Extract(net, DefaultExtractConfig())
	bins := prefs.PrefDistribution()
	if len(bins) < 3 {
		t.Fatalf("degenerate distribution: %v", bins)
	}
	total := 0
	for _, b := range bins {
		total += b.Users
	}
	if total != len(prefs.Users) {
		t.Errorf("histogram covers %d users, want %d", total, len(prefs.Users))
	}
	// Fig. 17's shape: most users sit below the mean (long tail).
	if r := prefs.TailRatio(); r < 0.5 {
		t.Errorf("tail ratio = %v, want >= 0.5", r)
	}
	if prefs.MaxPrefCount() <= 0 {
		t.Error("max pref count should be positive")
	}
}

func TestPickUsers(t *testing.T) {
	net := smallNet(t)
	prefs := Extract(net, DefaultExtractConfig())
	rich, modest := prefs.PickUsers(170, 50)
	if rich < 0 || modest < 0 {
		t.Fatalf("PickUsers failed: %d %d", rich, modest)
	}
	counts := prefs.CountByUser()
	if counts[rich] < counts[modest] {
		t.Errorf("rich user (%d prefs) has fewer than modest (%d)", counts[rich], counts[modest])
	}
}

func TestUserPrefsSubset(t *testing.T) {
	net := smallNet(t)
	prefs := Extract(net, DefaultExtractConfig())
	uid := prefs.Users[0]
	qt, ql := prefs.UserPrefs(uid)
	for _, q := range qt {
		if q.UID != uid {
			t.Fatal("foreign quant pref")
		}
	}
	for _, q := range ql {
		if q.UID != uid {
			t.Fatal("foreign qual pref")
		}
	}
	if len(qt)+len(ql) != prefs.CountByUser()[uid] {
		t.Errorf("subset size mismatch")
	}
}

func TestBaseQueryShape(t *testing.T) {
	net := smallNet(t)
	q := BaseQuery(predicate.MustParse(`dblp.venue="VLDB"`))
	n, err := net.DB.CountDistinct(q, "dblp.pid")
	if err != nil {
		t.Fatal(err)
	}
	// VLDB is the most popular seed venue under Zipf; it must have papers.
	if n == 0 {
		t.Error("no VLDB papers")
	}
}

func TestExtractedPrefsBuildGraph(t *testing.T) {
	// End-to-end: the extracted workload must insert cleanly into HYPRE.
	net := smallNet(t)
	prefs := Extract(net, DefaultExtractConfig())
	uid := prefs.Users[0]
	qt, ql := prefs.UserPrefs(uid)
	h := hypre.NewGraph(hypre.DefaultFixed)
	res, err := h.Build(qt, ql)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuantInserted != len(qt) || res.QualInserted != len(ql) {
		t.Errorf("build = %+v, want %d quant %d qual", res, len(qt), len(ql))
	}
	if len(h.Profile(uid)) == 0 {
		t.Error("empty profile after build")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
