// Package workload builds the experimental workload of Chapter 6: a
// DBLP-like citation network in the relational store, and user preferences
// extracted from the data itself using the dissertation's five extraction
// rules (§6.2). The real DBLP-Citation-network V4 dump is not available
// offline, so the generator synthesizes a network with the statistical
// features the algorithms are sensitive to — Zipf-like venue popularity,
// long-tailed per-author paper counts and citation counts — which yields
// the long-tailed preference-count distribution of Fig. 17 and the
// starvation/flooding behaviours of §4.6. See DESIGN.md "Substitutions".
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// Config controls the size and shape of the synthetic citation network.
type Config struct {
	Seed       int64
	NumPapers  int
	NumAuthors int
	NumVenues  int
	MinYear    int
	MaxYear    int
	// MaxAuthorsPerPaper bounds the author list length (>= 1).
	MaxAuthorsPerPaper int
	// MeanCitations is the mean of the per-paper citation count
	// distribution (geometric).
	MeanCitations float64
	// ZipfS is the skew of the venue/author popularity distributions
	// (> 1; higher = more skew).
	ZipfS float64
}

// DefaultConfig is the laptop-scale default used by tests and examples:
// large enough to exhibit the paper's long-tail shapes, small enough to run
// in milliseconds.
func DefaultConfig() Config {
	return Config{
		Seed:               42,
		NumPapers:          4000,
		NumAuthors:         1200,
		NumVenues:          40,
		MinYear:            1990,
		MaxYear:            2013,
		MaxAuthorsPerPaper: 4,
		MeanCitations:      3,
		ZipfS:              1.3,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumPapers <= 0:
		return fmt.Errorf("workload: NumPapers must be positive")
	case c.NumAuthors <= 0:
		return fmt.Errorf("workload: NumAuthors must be positive")
	case c.NumVenues <= 0:
		return fmt.Errorf("workload: NumVenues must be positive")
	case c.MinYear > c.MaxYear:
		return fmt.Errorf("workload: MinYear > MaxYear")
	case c.MaxAuthorsPerPaper < 1:
		return fmt.Errorf("workload: MaxAuthorsPerPaper must be >= 1")
	case c.MeanCitations < 0:
		return fmt.Errorf("workload: MeanCitations must be >= 0")
	case c.ZipfS <= 1:
		return fmt.Errorf("workload: ZipfS must be > 1")
	}
	return nil
}

// Paper is the in-memory form of one dblp row plus its links.
type Paper struct {
	PID     int64
	Year    int
	Venue   int   // venue index
	Authors []int // author ids
	Cites   []int64
}

// Network is the generated citation network: both the relational tables and
// the in-memory adjacency used by preference extraction.
type Network struct {
	Cfg     Config
	DB      *relstore.DB
	Papers  []Paper
	Venues  []string
	Authors []string
	// PapersByAuthor maps author id -> indexes into Papers.
	PapersByAuthor map[int][]int
	// PaperByPID maps pid -> index into Papers.
	PaperByPID map[int64]int
}

var venueSeeds = []string{
	"VLDB", "SIGMOD", "PODS", "ICDE", "EDBT", "CIKM", "KDD", "WWW",
	"INFOCOM", "SIGIR", "ICDT", "SOCC", "MDM", "DASFAA", "SSDBM",
}

// Generate builds the network and loads it into a fresh relational store
// with the four Chapter 6 tables (dblp, author, citation, dblp_author) and
// indexes on the columns the preference predicates touch.
func Generate(cfg Config) (*Network, error) {
	return GenerateWith(cfg)
}

// GenerateWith is Generate over a store built with the given options — the
// write-path experiments use it to spin up twin networks that differ only
// in commit strategy (group commit, compaction, change-log capacity).
func GenerateWith(cfg Config, opts ...relstore.DBOption) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	net := &Network{
		Cfg:            cfg,
		DB:             relstore.NewDB(opts...),
		Venues:         make([]string, cfg.NumVenues),
		Authors:        make([]string, cfg.NumAuthors),
		PapersByAuthor: make(map[int][]int),
		PaperByPID:     make(map[int64]int),
	}
	for i := range net.Venues {
		if i < len(venueSeeds) {
			net.Venues[i] = venueSeeds[i]
		} else {
			net.Venues[i] = fmt.Sprintf("CONF-%d", i)
		}
	}
	for i := range net.Authors {
		net.Authors[i] = fmt.Sprintf("Author %d", i)
	}

	// Skewed samplers: venue popularity and author productivity follow a
	// Zipf law, the citation target distribution prefers earlier (already
	// popular) papers.
	venueZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.NumVenues-1))
	authorZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.NumAuthors-1))

	net.Papers = make([]Paper, cfg.NumPapers)
	for i := range net.Papers {
		p := &net.Papers[i]
		p.PID = int64(i + 1)
		p.Year = cfg.MinYear + rng.Intn(cfg.MaxYear-cfg.MinYear+1)
		p.Venue = int(venueZipf.Uint64())
		nAuth := 1 + rng.Intn(cfg.MaxAuthorsPerPaper)
		seen := map[int]bool{}
		for len(p.Authors) < nAuth {
			a := int(authorZipf.Uint64())
			if !seen[a] {
				seen[a] = true
				p.Authors = append(p.Authors, a)
				net.PapersByAuthor[a] = append(net.PapersByAuthor[a], i)
			}
		}
		// Citations point at earlier papers with preferential attachment:
		// papers with low index (generated earlier) are cited more.
		if i > 0 {
			nCites := geometric(rng, cfg.MeanCitations)
			cited := map[int]bool{}
			for c := 0; c < nCites; c++ {
				// Squaring the uniform biases toward index 0: a crude but
				// effective rich-get-richer rule.
				u := rng.Float64()
				target := int(u * u * float64(i))
				if target >= i {
					target = i - 1
				}
				if !cited[target] {
					cited[target] = true
					p.Cites = append(p.Cites, net.Papers[target].PID)
				}
			}
		}
		net.PaperByPID[p.PID] = i
	}

	if err := loadTables(net); err != nil {
		return nil, err
	}
	return net, nil
}

// geometric samples a geometric-ish count with the given mean.
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean)
	n := 0
	for rng.Float64() > p && n < 64 {
		n++
	}
	return n
}

func loadTables(net *Network) error {
	db := net.DB
	dblp, err := db.CreateTable("dblp",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "title", Kind: predicate.KindString},
		relstore.Column{Name: "venue", Kind: predicate.KindString},
		relstore.Column{Name: "year", Kind: predicate.KindInt},
		relstore.Column{Name: "abstract", Kind: predicate.KindString},
	)
	if err != nil {
		return err
	}
	author, err := db.CreateTable("author",
		relstore.Column{Name: "aid", Kind: predicate.KindInt},
		relstore.Column{Name: "full_name", Kind: predicate.KindString},
	)
	if err != nil {
		return err
	}
	citation, err := db.CreateTable("citation",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "cid", Kind: predicate.KindInt},
	)
	if err != nil {
		return err
	}
	dblpAuthor, err := db.CreateTable("dblp_author",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "aid", Kind: predicate.KindInt},
	)
	if err != nil {
		return err
	}

	for i := range net.Papers {
		p := &net.Papers[i]
		title := fmt.Sprintf("Paper %d on %s topics", p.PID, net.Venues[p.Venue])
		abstract := fmt.Sprintf("Abstract of paper %d.", p.PID)
		if _, err := dblp.Insert(
			predicate.Int(p.PID), predicate.String(title),
			predicate.String(net.Venues[p.Venue]), predicate.Int(int64(p.Year)),
			predicate.String(abstract)); err != nil {
			return err
		}
		for _, a := range p.Authors {
			if _, err := dblpAuthor.Insert(predicate.Int(p.PID), predicate.Int(int64(a))); err != nil {
				return err
			}
		}
		for _, c := range p.Cites {
			if _, err := citation.Insert(predicate.Int(p.PID), predicate.Int(c)); err != nil {
				return err
			}
		}
	}
	for a, name := range net.Authors {
		if _, err := author.Insert(predicate.Int(int64(a)), predicate.String(name)); err != nil {
			return err
		}
	}

	// Indexes on the columns the extracted predicates filter on.
	for _, ix := range []struct{ table, col string }{
		{"dblp", "pid"}, {"dblp", "venue"}, {"dblp", "year"},
		{"dblp_author", "pid"}, {"dblp_author", "aid"},
		{"citation", "pid"}, {"author", "aid"},
	} {
		if err := db.Table(ix.table).BuildIndex(ix.col); err != nil {
			return err
		}
	}
	return nil
}

// BaseQuery is the canonical evaluation query of Chapter 5:
// SELECT ... FROM dblp JOIN dblp_author ON dblp.pid = dblp_author.pid.
func BaseQuery(where predicate.Predicate) relstore.Query {
	return relstore.Query{
		From:  "dblp",
		Join:  &relstore.JoinSpec{Table: "dblp_author", LeftCol: "pid", RightCol: "pid"},
		Where: where,
	}
}

// VenueOf returns the venue name of a paper by pid.
func (n *Network) VenueOf(pid int64) string {
	if i, ok := n.PaperByPID[pid]; ok {
		return n.Venues[n.Papers[i].Venue]
	}
	return ""
}

// MeanPapersPerAuthor reports the average productivity, for sanity checks.
func (n *Network) MeanPapersPerAuthor() float64 {
	total := 0
	for _, ps := range n.PapersByAuthor {
		total += len(ps)
	}
	if len(n.PapersByAuthor) == 0 {
		return 0
	}
	return float64(total) / float64(len(n.PapersByAuthor))
}

// GiniVenue computes a concentration measure over venue paper counts to
// verify the generator produces a skewed (long-tailed) venue distribution.
func (n *Network) GiniVenue() float64 {
	counts := make([]float64, len(n.Venues))
	for i := range n.Papers {
		counts[n.Papers[i].Venue]++
	}
	return gini(counts)
}

func gini(xs []float64) float64 {
	nf := float64(len(xs))
	if nf == 0 {
		return 0
	}
	var sum, absDiff float64
	for _, a := range xs {
		sum += a
		for _, b := range xs {
			absDiff += math.Abs(a - b)
		}
	}
	if sum == 0 {
		return 0
	}
	return absDiff / (2 * nf * sum)
}
