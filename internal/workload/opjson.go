package workload

import (
	"encoding/json"
	"fmt"
)

// JSON names for OpKind, in const order. These are wire-format: the serving
// tier's /v1/mutate endpoint accepts them, so renames are compatibility
// breaks, not refactors.
var opKindNames = [...]string{
	OpInsert:      "insert",
	OpDelete:      "delete",
	OpUpdateVenue: "update_venue",
	OpUpdateYear:  "update_year",
	OpLinkAdd:     "link_add",
	OpLinkDel:     "link_del",
}

// String names the kind for logs and JSON.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its name.
func (k OpKind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(opKindNames) {
		return nil, fmt.Errorf("workload: unknown op kind %d", uint8(k))
	}
	return json.Marshal(opKindNames[k])
}

// UnmarshalJSON decodes a kind name; unknown names are an error, so a typoed
// mutation request is rejected instead of silently becoming an insert (the
// zero kind).
func (k *OpKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("workload: op kind must be a string: %w", err)
	}
	for i, name := range opKindNames {
		if name == s {
			*k = OpKind(i)
			return nil
		}
	}
	return fmt.Errorf("workload: unknown op kind %q", s)
}
