package workload

import (
	"strings"
	"testing"

	"hypre/internal/hypre"
	"hypre/internal/predicate"
)

const sampleDump = `#*Automated Selection of Materialized Views and Indexes in SQL Databases
#@Sanjay Agrawal,Surajit Chaudhuri
#t2000
#cVLDB
#index1

#*Composite Subset Measures
#@Lei Chen,Raghu Ramakrishnan
#t2006
#cVLDB
#index2
#%1

#*Keymantic: Semantic Keyword-based Searching
#@Sonia Bergamaschi
#t2010
#cPVLDB
#index3
#%1
#%2
#%999
#!We study keyword search over data integration systems.

#*Congestion Control in Distributed Media Streaming
#@Lei Chen
#t2007
#cINFOCOM
#index4
#%2
`

func TestParseDBLPBasic(t *testing.T) {
	net, err := ParseDBLP(strings.NewReader(sampleDump))
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Papers) != 4 {
		t.Fatalf("papers = %d", len(net.Papers))
	}
	if len(net.Authors) != 5 {
		t.Fatalf("authors = %d: %v", len(net.Authors), net.Authors)
	}
	if len(net.Venues) != 3 {
		t.Fatalf("venues = %d: %v", len(net.Venues), net.Venues)
	}
	// Author interning: "Lei Chen" appears on papers 2 and 4 as one id.
	var lei int = -1
	for i, name := range net.Authors {
		if name == "Lei Chen" {
			lei = i
		}
	}
	if lei < 0 {
		t.Fatal("Lei Chen not interned")
	}
	if got := len(net.PapersByAuthor[lei]); got != 2 {
		t.Errorf("Lei Chen papers = %d", got)
	}
	// Dangling citation (#%999) must be dropped from Cites.
	p3 := net.Papers[net.PaperByPID[3]]
	if len(p3.Cites) != 2 {
		t.Errorf("paper 3 cites = %v", p3.Cites)
	}
	// VenueOf resolves through the interned indexes.
	if v := net.VenueOf(4); v != "INFOCOM" {
		t.Errorf("VenueOf(4) = %q", v)
	}
}

func TestParseDBLPTables(t *testing.T) {
	net, err := ParseDBLP(strings.NewReader(sampleDump))
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string]int{}
	for _, s := range net.DB.Stats() {
		stats[s.Name] = s.Cardinality
	}
	if stats["dblp"] != 4 || stats["author"] != 5 || stats["dblp_author"] != 6 {
		t.Errorf("stats = %v", stats)
	}
	// The canonical enhanced query runs against parsed data.
	n, err := net.DB.CountDistinct(
		BaseQuery(predicate.MustParse(`dblp.venue="VLDB"`)), "dblp.pid")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("VLDB papers = %d", n)
	}
}

func TestParseDBLPExtractionPipeline(t *testing.T) {
	// End to end: the real-format dump feeds the §6.2 extraction and a
	// HYPRE graph build without any special-casing.
	net, err := ParseDBLP(strings.NewReader(sampleDump))
	if err != nil {
		t.Fatal(err)
	}
	prefs := Extract(net, DefaultExtractConfig())
	if len(prefs.Quant) == 0 {
		t.Fatal("no preferences extracted from parsed dump")
	}
	g := hypre.NewGraph(hypre.DefaultAvg)
	if _, err := g.Build(prefs.Quant, prefs.Qual); err != nil {
		t.Fatal(err)
	}
}

func TestParseDBLPErrors(t *testing.T) {
	cases := map[string]string{
		"empty input":     "",
		"missing index":   "#*Title Only\n#t2000\n",
		"bad year":        "#*T\n#tnineteen\n#index1\n",
		"bad citation":    "#*T\n#index1\n#%abc\n",
		"bad index":       "#*T\n#indexxyz\n",
		"duplicate index": "#*A\n#index1\n\n#*B\n#index1\n",
	}
	for name, src := range cases {
		if _, err := ParseDBLP(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseDBLPMissingVenueInterned(t *testing.T) {
	src := "#*No Venue Paper\n#@A Author\n#t2001\n#index7\n"
	net, err := ParseDBLP(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if v := net.VenueOf(7); v != "(unknown)" {
		t.Errorf("venue = %q", v)
	}
}

func TestParseDBLPStrayLinesIgnored(t *testing.T) {
	src := "#*T\nstray continuation\n#index1\n#cVLDB\n"
	net, err := ParseDBLP(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Papers) != 1 {
		t.Errorf("papers = %d", len(net.Papers))
	}
}
