package workload

import (
	"fmt"
	"math/rand"

	"hypre/internal/predicate"
)

// This file generates the online-mutation workload: a seeded stream of
// paper inserts, deletes, attribute updates, and authorship-link churn over
// the synthetic DBLP network — the write traffic the `-exp updates`
// experiment replays against the mutable store to price incremental cache
// maintenance against rematerialization.

// StreamConfig controls the op mix of an update stream. The four fractions
// should sum to at most 1; any remainder falls to attribute updates.
type StreamConfig struct {
	Seed int64
	// InsertFrac inserts a new paper (with 1–3 authorship links).
	InsertFrac float64
	// DeleteFrac deletes a random live paper and its authorship links.
	DeleteFrac float64
	// UpdateFrac rewrites a random live paper's venue or year in place.
	UpdateFrac float64
	// LinkFrac inserts or deletes a single dblp_author link (authorship
	// churn without touching the papers table).
	LinkFrac float64
}

// DefaultStreamConfig is the mix the update-stream experiment uses: mostly
// in-place updates, with enough inserts/deletes/link churn to exercise
// every delta path.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Seed:       7,
		InsertFrac: 0.20,
		DeleteFrac: 0.15,
		UpdateFrac: 0.45,
		LinkFrac:   0.20,
	}
}

// UpdateStream applies a deterministic, seeded mutation mix to a network's
// store. It tracks the live paper set itself, so ops always target valid
// rows; on a compaction-enabled store it reindexes that snapshot through
// every published row-id remap before each op, so its row-addressed
// deletes and updates stay valid while the store compacts under it.
type UpdateStream struct {
	net  *Network
	cfg  StreamConfig
	rng  *rand.Rand
	next int64 // next fresh pid

	// alive papers: parallel row-id / pid views of the live set.
	rows []int
	pids []int64

	// compEpoch is the newest dblp compaction epoch already reflected in
	// rows (remaps up to it are absorbed; newer ones pend).
	compEpoch uint64

	// Counters by op kind, for reporting.
	Inserts, Deletes, Updates, LinkOps int
}

// NewUpdateStream builds a stream over the network's store, snapshotting
// the current live paper set.
func NewUpdateStream(net *Network, cfg StreamConfig) (*UpdateStream, error) {
	dblp := net.DB.Table("dblp")
	if dblp == nil {
		return nil, fmt.Errorf("workload: network store has no dblp table")
	}
	s := &UpdateStream{net: net, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	// The live-set snapshot below is in the store's current id space:
	// remaps already published are baked in, so only ones committed after
	// the current epoch apply.
	s.compEpoch = dblp.Epoch()
	for id := 0; id < dblp.Len(); id++ {
		if !dblp.Alive(id) {
			continue
		}
		pid := dblp.Value(id, "pid").AsInt()
		s.rows = append(s.rows, id)
		s.pids = append(s.pids, pid)
		if pid >= s.next {
			s.next = pid + 1
		}
	}
	return s, nil
}

// Live returns the number of papers the stream currently considers alive.
func (s *UpdateStream) Live() int { return len(s.rows) }

// Apply runs n ops against the store and reports how many actually mutated
// something (a delete drawn on an empty live set degrades to an insert, so
// in practice every op lands).
func (s *UpdateStream) Apply(n int) (applied int, err error) {
	for i := 0; i < n; i++ {
		if err := s.absorbCompactions(); err != nil {
			return applied, err
		}
		var did bool
		r := s.rng.Float64()
		c := s.cfg
		switch {
		case r < c.InsertFrac:
			did, err = s.insertPaper()
		case r < c.InsertFrac+c.DeleteFrac:
			did, err = s.deletePaper()
		case r < c.InsertFrac+c.DeleteFrac+c.LinkFrac:
			did, err = s.linkChurn()
		default:
			did, err = s.updatePaper()
		}
		if err != nil {
			return applied, err
		}
		if did {
			applied++
		}
	}
	return applied, nil
}

// absorbCompactions reindexes the live-row snapshot through every row-id
// remap the store published since the last op. It runs before each op, so
// at most one dblp compaction can pend (only a delete's commit can cross
// the dead-row threshold, and an op deletes at most one paper) and every
// tracked row is in the pre-remap id space. Rows the stream tracks are
// live by construction, so a remap that drops one is a corruption worth
// failing loudly over. dblp_author needs nothing: link rows are looked up
// by key at use time.
func (s *UpdateStream) absorbCompactions() error {
	dblp := s.net.DB.Table("dblp")
	comps, ok := dblp.CompactionsSince(s.compEpoch)
	if !ok {
		return fmt.Errorf("workload: dblp compaction history evicted under the stream")
	}
	for _, c := range comps {
		for i, row := range s.rows {
			if row >= len(c.Remap) {
				return fmt.Errorf("workload: tracked row %d outside remap domain %d", row, len(c.Remap))
			}
			nw := c.Remap[row]
			if nw < 0 {
				return fmt.Errorf("workload: compaction dropped tracked live row %d (pid %d)", row, s.pids[i])
			}
			s.rows[i] = int(nw)
		}
		s.compEpoch = c.Epoch
	}
	return nil
}

func (s *UpdateStream) insertPaper() (bool, error) {
	pid := s.next
	s.next++
	venue := s.net.Venues[s.rng.Intn(len(s.net.Venues))]
	year := s.net.Cfg.MinYear + s.rng.Intn(s.net.Cfg.MaxYear-s.net.Cfg.MinYear+1)
	title := fmt.Sprintf("Paper %d on %s topics", pid, venue)
	abstract := fmt.Sprintf("Abstract of paper %d.", pid)
	dblp := s.net.DB.Table("dblp")
	id, err := dblp.Insert(predicate.Int(pid), predicate.String(title),
		predicate.String(venue), predicate.Int(int64(year)), predicate.String(abstract))
	if err != nil {
		return false, err
	}
	links := s.net.DB.Table("dblp_author")
	nAuth := 1 + s.rng.Intn(3)
	seen := map[int]bool{}
	for a := 0; a < nAuth; a++ {
		aid := s.rng.Intn(len(s.net.Authors))
		if seen[aid] {
			continue
		}
		seen[aid] = true
		if _, err := links.Insert(predicate.Int(pid), predicate.Int(int64(aid))); err != nil {
			return false, err
		}
	}
	s.rows = append(s.rows, id)
	s.pids = append(s.pids, pid)
	s.Inserts++
	return true, nil
}

func (s *UpdateStream) deletePaper() (bool, error) {
	if len(s.rows) == 0 {
		return s.insertPaper()
	}
	i := s.rng.Intn(len(s.rows))
	row, pid := s.rows[i], s.pids[i]
	dblp := s.net.DB.Table("dblp")
	if !dblp.Delete(row) {
		return false, fmt.Errorf("workload: delete of live paper row %d failed", row)
	}
	// Referential cleanup: the paper's authorship links go with it.
	linkIDs, err := s.net.DB.LookupRowIDs("dblp_author", "pid", predicate.Int(pid))
	if err != nil {
		return false, err
	}
	links := s.net.DB.Table("dblp_author")
	for _, lid := range linkIDs {
		links.Delete(lid)
	}
	last := len(s.rows) - 1
	s.rows[i], s.pids[i] = s.rows[last], s.pids[last]
	s.rows, s.pids = s.rows[:last], s.pids[:last]
	s.Deletes++
	return true, nil
}

func (s *UpdateStream) updatePaper() (bool, error) {
	if len(s.rows) == 0 {
		return s.insertPaper()
	}
	row := s.rows[s.rng.Intn(len(s.rows))]
	dblp := s.net.DB.Table("dblp")
	var err error
	if s.rng.Float64() < 0.5 {
		venue := s.net.Venues[s.rng.Intn(len(s.net.Venues))]
		err = dblp.UpdateCol(row, "venue", predicate.String(venue))
	} else {
		year := s.net.Cfg.MinYear + s.rng.Intn(s.net.Cfg.MaxYear-s.net.Cfg.MinYear+1)
		err = dblp.UpdateCol(row, "year", predicate.Int(int64(year)))
	}
	if err != nil {
		return false, err
	}
	s.Updates++
	return true, nil
}

func (s *UpdateStream) linkChurn() (bool, error) {
	if len(s.rows) == 0 {
		return s.insertPaper()
	}
	pid := s.pids[s.rng.Intn(len(s.pids))]
	links := s.net.DB.Table("dblp_author")
	if s.rng.Float64() < 0.5 {
		aid := s.rng.Intn(len(s.net.Authors))
		if _, err := links.Insert(predicate.Int(pid), predicate.Int(int64(aid))); err != nil {
			return false, err
		}
		s.LinkOps++
		return true, nil
	}
	linkIDs, err := s.net.DB.LookupRowIDs("dblp_author", "pid", predicate.Int(pid))
	if err != nil {
		return false, err
	}
	if len(linkIDs) == 0 {
		return false, nil
	}
	links.Delete(linkIDs[s.rng.Intn(len(linkIDs))])
	s.LinkOps++
	return true, nil
}
