package workload

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestOpKindJSONRoundTrip(t *testing.T) {
	for k := OpInsert; k <= OpLinkDel; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back OpKind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Fatalf("round trip %v: got %v err %v", k, back, err)
		}
	}
	var k OpKind
	if err := json.Unmarshal([]byte(`"vaporize"`), &k); err == nil {
		t.Fatal("unknown kind must be rejected")
	}
	if err := json.Unmarshal([]byte(`3`), &k); err == nil {
		t.Fatal("numeric kind must be rejected")
	}
	op := Op{Kind: OpUpdateVenue, PID: 42, Venue: "SIGMOD"}
	b, err := json.Marshal(op)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"update_venue","pid":42,"venue":"SIGMOD"}`
	if string(b) != want {
		t.Fatalf("op JSON = %s, want %s", b, want)
	}
}

// TestDriveHTTPClosedLoop: every planned request is issued exactly once, OKs
// and errors are tallied by status, and latency samples match the OK count.
func TestDriveHTTPClosedLoop(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.URL.Path == "/boom" {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	reqs := make([]HTTPRequest, 0, 40)
	for i := 0; i < 36; i++ {
		reqs = append(reqs, HTTPRequest{Method: "GET", Path: "/ok"})
	}
	for i := 0; i < 4; i++ {
		reqs = append(reqs, HTTPRequest{Method: "POST", Path: "/boom", Body: []byte(`{}`)})
	}
	res, err := DriveHTTP(nil, srv.URL, reqs, HTTPDriverConfig{Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 40 || hits.Load() != 40 {
		t.Fatalf("issued %d, server saw %d, want 40", res.Issued, hits.Load())
	}
	if res.OK != 36 || res.Errors != 4 || res.Shed != 0 {
		t.Fatalf("ledger: %+v", res)
	}
	if len(res.OKLats) != 36 {
		t.Fatalf("latency samples %d, want 36", len(res.OKLats))
	}
	if res.StatusCounts[200] != 36 || res.StatusCounts[500] != 4 {
		t.Fatalf("status counts: %v", res.StatusCounts)
	}
	if res.FirstError == "" {
		t.Fatal("FirstError not sampled for 500s")
	}
	if res.P99() < res.P50() {
		t.Fatalf("p99 %v < p50 %v", res.P99(), res.P50())
	}
}

// TestDriveHTTPOpenLoopShed: a server that sheds every other request with a
// Retry-After header; the open-loop driver counts shed separately from
// errors and validates the header on every 429.
func TestDriveHTTPOpenLoopShed(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok")) //nolint:errcheck
	}))
	defer srv.Close()

	reqs := make([]HTTPRequest, 30)
	for i := range reqs {
		reqs[i] = HTTPRequest{Method: "GET", Path: "/q"}
	}
	res, err := DriveHTTP(nil, srv.URL, reqs, HTTPDriverConfig{
		Open: true, OpsPerSec: 2000, Seed: 9, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Issued != 30 || res.Errors != 0 {
		t.Fatalf("ledger: %+v", res)
	}
	if res.OK != 15 || res.Shed != 15 {
		t.Fatalf("OK %d shed %d, want 15/15", res.OK, res.Shed)
	}
	if res.ShedWithRetryAfter != res.Shed {
		t.Fatalf("Retry-After on %d of %d sheds", res.ShedWithRetryAfter, res.Shed)
	}
	if res.Wall <= 0 {
		t.Fatal("wall clock not recorded")
	}
}

// TestDriveHTTPOpenLoopChargesScheduledTime: a deliberately slow server must
// show open-loop latencies that include queueing behind the single in-flight
// slot — the coordinated-omission guard.
func TestDriveHTTPOpenLoopChargesScheduledTime(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(20 * time.Millisecond)
		w.Write([]byte("ok")) //nolint:errcheck
	}))
	defer srv.Close()
	reqs := make([]HTTPRequest, 6)
	for i := range reqs {
		reqs[i] = HTTPRequest{Method: "GET", Path: "/q"}
	}
	// Offered at 1000/s against a 20ms server with one slot: the last
	// arrival queues ~5 service times, so its charged latency must be well
	// above one service time.
	res, err := DriveHTTP(nil, srv.URL, reqs, HTTPDriverConfig{
		Open: true, OpsPerSec: 1000, Seed: 4, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 6 {
		t.Fatalf("ledger: %+v first error %s", res, res.FirstError)
	}
	if max := res.P99(); max < 60*time.Millisecond {
		t.Fatalf("open-loop tail %v does not include queue wait", max)
	}
}
