package combine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"hypre/internal/hypre"
)

// This file defines the canonical profile fingerprint the result/plan cache
// tier keys on. At serving scale repeated preference profiles are the
// common case, but two sessions rarely hand the engine byte-identical
// slices: the same preferences arrive permuted, or split into duplicate
// entries whose intensities compose to the same weight. Canonicalization
// maps every such variant to one normal form, and the fingerprint is a
// 128-bit FNV-1a hash of that form — deterministic across processes, so
// cache keys survive serialization and can be compared in logs.

// Fingerprint is the 128-bit canonical-profile hash.
type Fingerprint [16]byte

// String renders the fingerprint as hex, for logs and test failures.
func (f Fingerprint) String() string { return fmt.Sprintf("%x", f[:]) }

// CanonicalProfile reduces a preference profile to the normal form the
// top-k paths actually evaluate, plus its fingerprint:
//
//   - negative-intensity preferences are dropped (every TA path — BuildLists,
//     EvaluateStreaming, EvaluateOneShot — skips them identically);
//   - duplicate preferences (same normalized predicate text) merge into one
//     entry whose intensity is the f∧ fold of the duplicates' intensities,
//     folded in descending-intensity order — exactly the composition the
//     grade accumulation would have applied to the duplicates one by one;
//   - the surviving preferences sort by (attribute, predicate text), fixing
//     both the per-attribute fold order and the attribute-list order that
//     BuildLists otherwise inherits from first-seen profile order.
//
// Two profiles that are permutations of each other, or that split a weight
// across duplicate predicates, therefore canonicalize to the same slice and
// the same fingerprint. The caching tier evaluates the canonical slice it
// fingerprints, so a fingerprint hit always returns the bytes the canonical
// evaluation would have produced.
func CanonicalProfile(prefs []hypre.ScoredPred) ([]hypre.ScoredPred, Fingerprint) {
	kept := make([]hypre.ScoredPred, 0, len(prefs))
	for _, p := range prefs {
		if p.Intensity >= 0 {
			kept = append(kept, p)
		}
	}
	// Sort before merging so duplicate runs are adjacent and the f∧ fold
	// over them is order-deterministic (descending intensity within a
	// predicate, ties already equal).
	sort.SliceStable(kept, func(i, j int) bool {
		if kept[i].Attr != kept[j].Attr {
			return kept[i].Attr < kept[j].Attr
		}
		if kept[i].Pred != kept[j].Pred {
			return kept[i].Pred < kept[j].Pred
		}
		return kept[i].Intensity > kept[j].Intensity
	})
	out := kept[:0]
	for _, p := range kept {
		if n := len(out); n > 0 && out[n-1].Pred == p.Pred && out[n-1].Attr == p.Attr {
			out[n-1].Intensity = hypre.FAnd(out[n-1].Intensity, p.Intensity)
			continue
		}
		out = append(out, p)
	}

	h := fnv.New128a()
	var word [8]byte
	for _, p := range out {
		h.Write([]byte(p.Attr))
		h.Write([]byte{0x1f})
		h.Write([]byte(p.Pred))
		h.Write([]byte{0x1f})
		binary.BigEndian.PutUint64(word[:], math.Float64bits(p.Intensity))
		h.Write(word[:])
		h.Write([]byte{0x1e})
	}
	var fp Fingerprint
	h.Sum(fp[:0])
	return out, fp
}

// ProfileFingerprint is CanonicalProfile when only the key is needed.
func ProfileFingerprint(prefs []hypre.ScoredPred) Fingerprint {
	_, fp := CanonicalProfile(prefs)
	return fp
}
