package combine

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"hypre/internal/hypre"
)

// pepsReference is the pre-refactor PEPS hot path, kept verbatim as the
// equivalence oracle: it re-evaluates every conjunction from scratch
// through Evaluator.Applicable + Evaluator.Run (the double evaluation the
// incremental DFS eliminated) and rebuilds the full tuple ranking at every
// anchor boundary via collectTuples. The incremental implementation must
// return byte-identical Tuples.
func pepsReference(prefs []hypre.ScoredPred, pt *PairTable, ev *Evaluator, k int, variant Variant) (TopKResult, error) {
	var res TopKResult
	if k <= 0 || len(prefs) == 0 {
		return res, nil
	}

	suffixBound := make([]float64, len(prefs)+1)
	prod := 1.0
	for a := len(prefs) - 1; a >= 0; a-- {
		p := prefs[a].Intensity
		if p < 0 {
			p = 0
		}
		prod *= 1 - p
		suffixBound[a] = 1 - prod
	}

	var order Records
	expansions := 0

	for i := range prefs {
		r, err := ev.Run(NewCombo(prefs[i]))
		if err != nil {
			return res, err
		}
		if r.NumTuples > 0 {
			order = append(order, r)
		}
	}

	kthIntensity := func() (float64, int) {
		tuples := collectTuples(order, math.MaxInt32)
		if len(tuples) < k {
			return -1, len(tuples)
		}
		return tuples[k-1].Intensity, len(tuples)
	}

	for a := 0; a < len(prefs); a++ {
		res.AnchorsUsed = a + 1
		anchor := prefs[a].Intensity

		var seeds []PairEntry
		for _, e := range pt.CombsOfTwo(a) {
			switch variant {
			case Approximate:
				if e.Intensity <= anchor {
					continue
				}
			case Complete:
				if e.Intensity <= anchor {
					need := hypre.MinPreferencesToExceed(anchor, pt.Prefs[e.J].Intensity)
					if math.IsInf(need, 1) || need > float64(len(prefs)-2) {
						continue
					}
				}
			}
			seeds = append(seeds, e)
		}

		var dfs func(chain []int, c Combo) error
		dfs = func(chain []int, c Combo) error {
			if expansions >= maxChainExpansions {
				return nil
			}
			expansions++
			r, err := ev.Run(c)
			if err != nil {
				return err
			}
			order = append(order, r)
			res.CombosExpanded++
			last := chain[len(chain)-1]
			for _, e := range pt.CombsOfTwo(last) {
				next := e.J
				cand := c.And(pt.Prefs[next])
				ok, err := ev.Applicable(cand)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				if err := dfs(append(chain, next), cand); err != nil {
					return err
				}
			}
			return nil
		}
		for _, e := range seeds {
			c := NewCombo(pt.Prefs[e.I]).And(pt.Prefs[e.J])
			if err := dfs([]int{e.I, e.J}, c); err != nil {
				return res, err
			}
		}

		if kth, n := kthIntensity(); n >= k && a+1 < len(prefs) && suffixBound[a+1] <= kth {
			break
		}
	}

	res.Tuples = collectTuples(order, k)
	return res, nil
}

// equivPool is the Table 6 profile universe the equivalence trials draw
// from: mixed venue/author/year predicates with distinct intensities.
func equivPool(t *testing.T) []hypre.ScoredPred {
	t.Helper()
	return []hypre.ScoredPred{
		mustSP(t, `dblp.venue="VLDB"`, 0.50),
		mustSP(t, `dblp.venue="PVLDB"`, 0.45),
		mustSP(t, `dblp.venue="SIGMOD"`, 0.40),
		mustSP(t, `dblp.venue="INFOCOM"`, 0.35),
		mustSP(t, `dblp_author.aid=1`, 0.30),
		mustSP(t, `dblp_author.aid=2`, 0.25),
		mustSP(t, `dblp_author.aid=3`, 0.20),
		mustSP(t, `dblp_author.aid=6`, 0.15),
		mustSP(t, `dblp.year>=2009`, 0.10),
		mustSP(t, `dblp.year<2008`, 0.05),
	}
}

func assertIdenticalTopK(t *testing.T, label string, inc, ref TopKResult) {
	t.Helper()
	if inc.CombosExpanded != ref.CombosExpanded {
		t.Errorf("%s: CombosExpanded %d != %d", label, inc.CombosExpanded, ref.CombosExpanded)
	}
	if inc.AnchorsUsed != ref.AnchorsUsed {
		t.Errorf("%s: AnchorsUsed %d != %d", label, inc.AnchorsUsed, ref.AnchorsUsed)
	}
	if len(inc.Tuples) != len(ref.Tuples) {
		t.Fatalf("%s: %d tuples != %d", label, len(inc.Tuples), len(ref.Tuples))
	}
	for i := range ref.Tuples {
		// Byte-identical: same pid AND bit-identical float (the incremental
		// chain carries Π(1−pᵢ), so its f∧ arithmetic matches FAndAll
		// exactly, not just within epsilon).
		if inc.Tuples[i].PID != ref.Tuples[i].PID ||
			math.Float64bits(inc.Tuples[i].Intensity) != math.Float64bits(ref.Tuples[i].Intensity) {
			t.Fatalf("%s: tuple %d = %+v, want %+v", label, i, inc.Tuples[i], ref.Tuples[i])
		}
	}
}

// TestPEPSIncrementalMatchesRecompute proves the incremental DFS (one
// intersection per step, tracker-based ranking) returns byte-identical
// TopKResult.Tuples to the pre-refactor recompute path, across the seed
// fixture's profiles, both variants, and a sweep of K.
func TestPEPSIncrementalMatchesRecompute(t *testing.T) {
	profiles := [][]hypre.ScoredPred{
		profileUID2(t),
		equivPool(t),
		equivPool(t)[:1],
	}
	for pi, prefs := range profiles {
		ev := testEvaluator(t)
		pt, err := BuildPairTable(prefs, ev)
		if err != nil {
			t.Fatal(err)
		}
		for _, variant := range []Variant{Complete, Approximate} {
			for _, k := range []int{1, 2, 3, 5, 9, 20} {
				inc, err := PEPS(prefs, pt, ev, k, variant)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := pepsReference(prefs, pt, ev, k, variant)
				if err != nil {
					t.Fatal(err)
				}
				assertIdenticalTopK(t, variant.String()+"/k="+itoa(k)+"/profile="+itoa(pi), inc, ref)
			}
		}
	}
}

// TestPEPSIncrementalMatchesRecomputeRandom fuzzes random descending
// profiles drawn from the pool.
func TestPEPSIncrementalMatchesRecomputeRandom(t *testing.T) {
	pool := equivPool(t)
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		perm := rng.Perm(len(pool))
		n := 2 + rng.Intn(len(pool)-1)
		prefs := make([]hypre.ScoredPred, 0, n)
		for _, i := range perm[:n] {
			prefs = append(prefs, pool[i])
		}
		// The algorithms' precondition: descending intensity.
		sort.Slice(prefs, func(i, j int) bool { return prefs[i].Intensity > prefs[j].Intensity })

		ev := testEvaluator(t)
		pt, err := BuildPairTable(prefs, ev)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(12)
		variant := Variant(rng.Intn(2))
		inc, err := PEPS(prefs, pt, ev, k, variant)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := pepsReference(prefs, pt, ev, k, variant)
		if err != nil {
			t.Fatal(err)
		}
		assertIdenticalTopK(t, "trial="+itoa(trial), inc, ref)
	}
}

// TestBuildPairTableParallelDeterministic checks the worker-pool build is
// deterministic and agrees with a sequential evaluation through the
// counting API.
func TestBuildPairTableParallelDeterministic(t *testing.T) {
	prefs := equivPool(t)
	ev := testEvaluator(t)
	a, err := BuildPairTable(prefs, ev)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPairTable(prefs, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("non-deterministic pair count: %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, a.Pairs[i], b.Pairs[i])
		}
	}
	// Sequential oracle.
	for _, e := range a.Pairs {
		c := NewCombo(prefs[e.I]).And(prefs[e.J])
		n, err := ev.Count(c)
		if err != nil {
			t.Fatal(err)
		}
		if n != e.Count {
			t.Errorf("pair (%d,%d): table count %d, evaluator %d", e.I, e.J, e.Count, n)
		}
		if math.Float64bits(e.Intensity) != math.Float64bits(c.Intensity()) {
			t.Errorf("pair (%d,%d): intensity mismatch", e.I, e.J)
		}
	}
}
