package combine

import (
	"slices"

	"hypre/internal/bitset"
	"hypre/internal/relstore"
)

// This file absorbs tombstone compaction into the evaluator's caches. A
// relstore compaction breaks exactly one assumption the delta machinery
// leans on — that row ids are stable forever — so the maintainer applies
// the published remap in two touched-work steps before its normal refresh:
// RemapRows reindexes the row→dense/pid plumbing through the remap, and
// DropPids copy-on-write-clears the dense bits of pids whose rows were
// dropped (their pre-images arrive as Row = -1 change-log entries). Dense
// ids themselves are dictionary-assigned and never move, which is what
// keeps the predicate bitmaps and the pair table dimensionally stable
// across any number of compactions.

// RemapRows reindexes the evaluator's row-id plumbing through one
// compaction remap (remap[old] = new id, -1 = dropped). Rows the plumbing
// had not yet seen (inserted after the last refresh) get a fresh slot with
// their pid read from the compacted store. ok=false means the evaluator has
// no incremental plumbing and the caller must rebuild.
func (ev *Evaluator) RemapRows(remap []int32) (ok bool) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if len(ev.bits) == 0 && !ev.seeded {
		return true // nothing cached, nothing keyed by row id
	}
	if !ev.seeded || ev.rowDense == nil {
		return false
	}
	tbl := ev.db.Table(ev.seedFrom)
	if tbl == nil {
		return false
	}
	live := 0
	for _, nw := range remap {
		if nw >= 0 {
			live++
		}
	}
	keyCol := ev.KeyColumn(ev.seedFrom)
	nd := make([]int32, live)
	np := make([]int64, live)
	for i := range nd {
		nd[i] = -1
	}
	for old, nw := range remap {
		if nw < 0 {
			continue
		}
		if old < len(ev.rowDense) {
			nd[nw] = ev.rowDense[old]
			np[nw] = ev.pidByRow[old]
		} else {
			// The plumbing never saw this row; read its key at the row's
			// post-compaction position.
			np[nw] = tbl.Value(int(nw), keyCol).AsInt()
		}
	}
	ev.rowDense, ev.pidByRow = nd, np
	return true
}

// DropPids clears the given pids from every cached predicate bitmap — the
// membership removal for rows a compaction dropped, whose ids the normal
// row-driven refresh can no longer reach. Bitmaps are patched copy-on-write
// exactly like RefreshRowSetDelta, and the return values have the same
// shape so the caller can merge them into one pair-table recount: changed
// predicates, their pre-patch bitmaps, and the dense ids (with their spans)
// where bits moved. Call it *before* the row-driven refresh: a pid
// re-inserted under a surviving row is then restored by the refresh, which
// evaluates current store state.
func (ev *Evaluator) DropPids(pids []int64) (changed []string, prev map[string]*Bitmap, spans []bitset.Span, ids []int32, ok bool) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if len(ev.bits) == 0 {
		return nil, nil, nil, nil, true
	}
	if !ev.seeded {
		return nil, nil, nil, nil, false
	}
	dis := make([]int, 0, len(pids))
	for _, pid := range pids {
		if di, found := ev.dict.Find(pid); found {
			dis = append(dis, di)
		}
	}
	if len(dis) == 0 {
		return nil, nil, nil, nil, true
	}
	spanSeen := map[bitset.Span]bool{}
	idSeen := map[int32]struct{}{}
	for pred, bm := range ev.bits {
		var patched *Bitmap
		for _, di := range dis {
			cur := bm.Contains(di)
			if patched != nil {
				cur = patched.Contains(di)
			}
			if !cur {
				continue
			}
			if patched == nil {
				patched = bm.Clone()
			}
			patched.Clear(di)
			spanSeen[bitset.SpanOf(di)] = true
			idSeen[int32(di)] = struct{}{}
		}
		if patched != nil {
			if prev == nil {
				prev = make(map[string]*Bitmap)
			}
			prev[pred] = bm
			ev.bits[pred] = patched
			delete(ev.sets, pred)
			changed = append(changed, pred)
		}
	}
	spans = make([]bitset.Span, 0, len(spanSeen))
	for sp := range spanSeen {
		spans = append(spans, sp)
	}
	slices.Sort(spans)
	ids = make([]int32, 0, len(idSeen))
	for di := range idSeen {
		ids = append(ids, di)
	}
	slices.Sort(ids)
	return changed, prev, spans, ids, true
}

// RowPids maps base-table row ids to their pids through the evaluator's row
// plumbing (rows outside it — inserted after the last refresh — are read
// from the store), deduplicated, for consumers keyed by pid rather than row
// (the TA-list delta path).
func (ev *Evaluator) RowPids(rows []int) []int64 {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	var tbl *relstore.Table
	out := make([]int64, 0, len(rows))
	seen := make(map[int64]struct{}, len(rows))
	keyCol := ""
	for _, lid := range rows {
		if lid < 0 {
			continue
		}
		var pid int64
		if ev.rowDense != nil && lid < len(ev.pidByRow) {
			pid = ev.pidByRow[lid]
		} else {
			if tbl == nil {
				tbl = ev.db.Table(ev.seedFrom)
				if tbl == nil {
					continue
				}
				keyCol = ev.KeyColumn(ev.seedFrom)
			}
			pid = tbl.Value(lid, keyCol).AsInt()
		}
		if _, dup := seen[pid]; dup {
			continue
		}
		seen[pid] = struct{}{}
		out = append(out, pid)
	}
	return out
}

// DenseID returns the dense dictionary index of pid, ok=false when the pid
// was never materialized into any bitmap.
func (ev *Evaluator) DenseID(pid int64) (int, bool) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.dict.Find(pid)
}
