package combine

import "hypre/internal/hypre"

// Semantics selects how Combine-Two joins a pair of predicates.
type Semantics int

const (
	// SemanticsAND joins every pair with AND (Algorithm 3).
	SemanticsAND Semantics = iota
	// SemanticsANDOR joins same-attribute pairs with OR and
	// different-attribute pairs with AND (Algorithm 2).
	SemanticsANDOR
)

// String names the semantics.
func (s Semantics) String() string {
	if s == SemanticsAND {
		return "AND"
	}
	return "AND_OR"
}

// CombineTwo is Algorithms 2 and 3: an exhaustive enumeration of
// two-preference combinations, one anchor preference at a time, each paired
// with every preference that follows it. The input list must be sorted
// descending by intensity (the paper's precondition); the output records
// every pair in anchor-major order, including inapplicable ones
// (NumTuples == 0) so the experiments can show the starvation cases of
// Figs. 29–31. Record.AnchorIndex / PartnerIndex identify the pair.
//
// Every predicate set is materialized once up front; the O(N²) pair loop
// is then one word-parallel AND (or OR) per pair.
func CombineTwo(prefs []hypre.ScoredPred, ev *Evaluator, sem Semantics) (Records, error) {
	bms := make([]*Bitmap, len(prefs))
	for i, p := range prefs {
		b, err := ev.PredBitmap(p)
		if err != nil {
			return nil, err
		}
		bms[i] = b
	}
	var out Records
	for i := 0; i < len(prefs); i++ {
		for j := i + 1; j < len(prefs); j++ {
			var c Combo
			var bm *Bitmap
			p1, p2 := prefs[i], prefs[j]
			if sem == SemanticsANDOR && p1.Attr != "" && p1.Attr == p2.Attr {
				c = NewCombo(p1).Or(p2)
				bm = bms[i].Or(bms[j])
			} else {
				c = NewCombo(p1).And(p2)
				bm = bms[i].And(bms[j])
			}
			ev.ComboEvals++
			r := ev.record(c, bm)
			r.AnchorIndex = i
			r.PartnerIndex = j
			out = append(out, r)
		}
	}
	return out, nil
}
