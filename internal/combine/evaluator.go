package combine

import (
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// Evaluator answers combination queries. It materializes the distinct
// tuple-id set of each atomic preference once (one relational query per
// predicate, like the pre-computed table of §5.5) and evaluates a Combo
// with set algebra: union within an OR group, intersection across AND
// groups. Results are exactly those of running the rewritten SQL query —
// verified by tests against the relational engine — but pair/chain
// enumeration no longer re-scans the store.
type Evaluator struct {
	db      *relstore.DB
	base    func(predicate.Predicate) relstore.Query
	keyAttr string
	sets    map[string]IntSet
	// Queries counts how many real relational queries were issued (cache
	// misses), for the efficiency experiments.
	Queries int
	// ComboEvals counts combination evaluations (set-algebra operations).
	ComboEvals int
}

// NewEvaluator builds an evaluator over a store. base maps a WHERE
// predicate to the full query (typically workload.BaseQuery); keyAttr is
// the distinct-counted attribute ("dblp.pid").
func NewEvaluator(db *relstore.DB, base func(predicate.Predicate) relstore.Query, keyAttr string) *Evaluator {
	return &Evaluator{
		db:      db,
		base:    base,
		keyAttr: keyAttr,
		sets:    make(map[string]IntSet),
	}
}

// PredSet returns the distinct tuple ids matching one preference,
// materializing and caching it on first use.
func (ev *Evaluator) PredSet(p hypre.ScoredPred) (IntSet, error) {
	if s, ok := ev.sets[p.Pred]; ok {
		return s, nil
	}
	vals, err := ev.db.DistinctValues(ev.base(p.P), ev.keyAttr)
	if err != nil {
		return nil, err
	}
	ids := make([]int64, len(vals))
	for i, v := range vals {
		ids[i] = v.AsInt()
	}
	s := NewIntSet(ids)
	ev.sets[p.Pred] = s
	ev.Queries++
	return s, nil
}

// ComboSet evaluates a combination to its tuple-id set.
func (ev *Evaluator) ComboSet(c Combo) (IntSet, error) {
	ev.ComboEvals++
	var acc IntSet
	first := true
	for _, g := range c.Groups {
		var gset IntSet
		for _, p := range g {
			s, err := ev.PredSet(p)
			if err != nil {
				return nil, err
			}
			gset = gset.Union(s)
		}
		if first {
			acc, first = gset, false
		} else {
			acc = acc.Intersect(gset)
		}
		if len(acc) == 0 {
			return acc, nil
		}
	}
	if first {
		return IntSet{}, nil
	}
	return acc, nil
}

// Count returns the number of distinct tuples the combination matches.
func (ev *Evaluator) Count(c Combo) (int, error) {
	s, err := ev.ComboSet(c)
	if err != nil {
		return 0, err
	}
	return s.Len(), nil
}

// Applicable reports whether the combination returns at least one tuple
// (Definition 15).
func (ev *Evaluator) Applicable(c Combo) (bool, error) {
	n, err := ev.Count(c)
	return n > 0, err
}

// Run evaluates the combination and produces its Record row.
func (ev *Evaluator) Run(c Combo) (Record, error) {
	s, err := ev.ComboSet(c)
	if err != nil {
		return Record{}, err
	}
	return Record{
		NumPreds:  c.NumPreds(),
		NumTuples: s.Len(),
		Intensity: c.Intensity(),
		Combo:     c,
		Tuples:    s,
	}, nil
}

// CountSQL answers the same count through the relational engine without the
// set cache: one DISTINCT query per AND group, intersected in the client —
// used by tests to prove the set algebra agrees with the relational
// semantics, and by the ablation bench to price the cache.
//
// Note the per-group decomposition is semantically load-bearing: predicates
// on the same join attribute (aid=2 AND aid=6) must mean "tuples matched by
// both predicates" (papers the two authors co-authored, §7.3), which a flat
// single-join WHERE clause cannot express — one joined row carries one aid.
func (ev *Evaluator) CountSQL(c Combo) (int, error) {
	var acc IntSet
	first := true
	for _, g := range c.Groups {
		ps := make([]predicate.Predicate, len(g))
		for i, p := range g {
			ps[i] = p.P
		}
		ev.Queries++
		vals, err := ev.db.DistinctValues(ev.base(predicate.NewOr(ps...)), ev.keyAttr)
		if err != nil {
			return 0, err
		}
		ids := make([]int64, len(vals))
		for i, v := range vals {
			ids[i] = v.AsInt()
		}
		gset := NewIntSet(ids)
		if first {
			acc, first = gset, false
		} else {
			acc = acc.Intersect(gset)
		}
		if len(acc) == 0 {
			return 0, nil
		}
	}
	if first {
		return 0, nil
	}
	return acc.Len(), nil
}
