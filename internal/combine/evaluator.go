package combine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hypre/internal/bitset"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// Evaluator answers combination queries. It materializes the distinct
// tuple-id set of each atomic preference once (one vectorized relational
// scan per predicate, like the pre-computed table of §5.5) as a dense
// bitmap keyed by a shared pid dictionary (the sorted IntSet view is
// derived lazily), and evaluates a Combo with word-parallel set algebra:
// union within an OR group, intersection across AND groups. Bulk
// materialization (MaterializeAll) fans the per-predicate scans out over a
// worker pool; dense dictionary ids are then assigned serially in
// first-seen order, so bitmaps stay as compact as serial materialization
// produced. Results are exactly those of running the rewritten SQL query —
// verified by tests against the relational engine — but pair/chain
// enumeration no longer re-scans the store.
//
// Concurrency: the predicate caches are guarded by a mutex, so once every
// profile preference has been materialized (see Materialize), PredSet,
// PredBitmap, and the bitmap algebra they feed are safe for concurrent
// readers — the parallel pair-table build relies on this. The Queries and
// ComboEvals counters are plain ints and must only be touched from one
// goroutine at a time; the concurrent paths avoid them.
type Evaluator struct {
	db      *relstore.DB
	base    func(predicate.Predicate) relstore.Query
	keyAttr string

	mu     sync.RWMutex
	dict   *PidDict
	sets   map[string]IntSet
	bits   map[string]*Bitmap
	preds  map[string]hypre.ScoredPred // AST of every cached predicate, for delta re-evaluation
	seeded bool                        // scan plumbing (pidByRow, join structures) built
	// rowDense maps base-table row id -> dense dict index, assigned lazily
	// in first-seen order (-1 = not assigned yet), so dense numbering stays
	// as compact as serial materialization while scans set bits with one
	// array read instead of a pid hash.
	rowDense []int32
	// pidByRow caches the key attribute per base-table row, so dense-id
	// assignment during bitmap conversion never re-reads the store.
	pidByRow []int64
	// seedFrom is the base table the row plumbing was built against; a base
	// closure that routes a predicate to a different From table bypasses
	// the row remap (its row ids would index the wrong pidByRow).
	seedFrom string

	// Queries counts predicate materializations that had to touch the
	// store (cache misses) plus explicit SQL-path queries (CountSQL), for
	// the efficiency experiments. One-time scan plumbing (seedLocked's
	// universe pass) is not counted, keeping the figure comparable to the
	// one-query-per-predicate accounting of earlier PRs.
	Queries int
	// ComboEvals counts combination evaluations (set-algebra operations).
	ComboEvals int

	// Workers caps the fan-out of every sharded stage driven through this
	// evaluator (bulk materialization, the pair-table span sweep, sharded
	// PEPS, delta refresh); 0 means GOMAXPROCS. It must be set before the
	// concurrent phases start and is read-only thereafter — the shards
	// experiment sweeps it to measure parallel scaling.
	Workers int
}

// workerTarget is the configured fan-out width: ev.Workers, defaulting to
// GOMAXPROCS.
func (ev *Evaluator) workerTarget() int {
	if ev.Workers > 0 {
		return ev.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// workerCount clamps the configured fan-out to the number of independent
// work items of one stage.
func (ev *Evaluator) workerCount(items int) int {
	w := ev.workerTarget()
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// NewEvaluator builds an evaluator over a store. base maps a WHERE
// predicate to the full query (typically workload.BaseQuery); keyAttr is
// the distinct-counted attribute ("dblp.pid").
func NewEvaluator(db *relstore.DB, base func(predicate.Predicate) relstore.Query, keyAttr string) *Evaluator {
	return &Evaluator{
		db:      db,
		base:    base,
		keyAttr: keyAttr,
		dict:    NewPidDict(),
		sets:    make(map[string]IntSet),
		bits:    make(map[string]*Bitmap),
		preds:   make(map[string]hypre.ScoredPred),
	}
}

// Dict exposes the dense pid dictionary shared by every bitmap the
// evaluator hands out.
func (ev *Evaluator) Dict() *PidDict { return ev.dict }

// DB exposes the underlying store (the delta maintainer reads epochs and
// change logs from it).
func (ev *Evaluator) DB() *relstore.DB { return ev.db }

// BaseQuery maps a WHERE predicate to the evaluator's full query shape.
func (ev *Evaluator) BaseQuery(p predicate.Predicate) relstore.Query { return ev.base(p) }

// KeyAttr returns the distinct-counted attribute every materialization
// projects ("dblp.pid").
func (ev *Evaluator) KeyAttr() string { return ev.keyAttr }

// Materialize runs the one relational query per preference for every entry
// of prefs that is not cached yet, after which PredSet, PredBitmap, and the
// bitmap algebra they feed are safe for concurrent readers. It delegates to
// MaterializeAll, which fans the scans out over a worker pool.
func (ev *Evaluator) Materialize(prefs []hypre.ScoredPred) error {
	return ev.MaterializeAll(prefs)
}

// MaterializeAll bulk-materializes every uncached preference of a profile:
// the uncached predicates are partitioned across a worker pool, each scanned
// by relstore's vectorized ScanAttrRows into a row-selection bitmap (no
// intermediate id slices, no per-row predicate interpretation), then a
// serial conversion pass assigns dense dictionary ids lazily in first-seen
// order — so dense numbering stays exactly as compact and deterministic as
// the serial materialization it replaces. The sorted IntSet views are
// derived lazily by PredSet.
func (ev *Evaluator) MaterializeAll(prefs []hypre.ScoredPred) error {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	pending := make([]hypre.ScoredPred, 0, len(prefs))
	seen := make(map[string]bool, len(prefs))
	for _, p := range prefs {
		if _, ok := ev.bits[p.Pred]; ok || seen[p.Pred] {
			continue
		}
		seen[p.Pred] = true
		pending = append(pending, p)
	}
	if len(pending) == 0 {
		return nil
	}
	if err := ev.seedLocked(); err != nil {
		return err
	}
	if len(pending) == 1 {
		b, err := ev.scanBitmapLocked(pending[0], ev.workerTarget())
		if err != nil {
			return err
		}
		ev.bits[pending[0].Pred] = b
		ev.preds[pending[0].Pred] = pending[0]
		ev.Queries++
		return nil
	}

	// Parallel phase: workers only read the store — no dict access at all.
	// Each produces the selection set of matching base-table rows; pids
	// the row scan cannot place (non-left key attributes) are collected and
	// folded in serially. When the profile has fewer predicates than the
	// fan-out target, the leftover width goes to the scans themselves: each
	// predicate's kernel pass shards over block partitions
	// (relstore.ScanAttrRowSetParts), so a two-predicate profile over a
	// wide table still fills the machine.
	type result struct {
		sel      *bitset.Set
		leftover []int64
	}
	results := make([]result, len(pending))
	errs := make([]error, len(pending))
	workers := ev.workerCount(len(pending))
	scanParts := 1
	if t := ev.workerTarget(); t > len(pending) {
		scanParts = (t + len(pending) - 1) / len(pending)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pending) {
					return
				}
				results[i].sel, results[i].leftover, errs[i] = ev.scanSel(pending[i], scanParts)
			}
		}()
	}
	wg.Wait()
	for i := range pending {
		if errs[i] != nil {
			return errs[i]
		}
	}

	// Serial conversion: row selections become dense bitmaps, assigning
	// dictionary slots on first sight in pending order.
	for i, p := range pending {
		ev.bits[p.Pred] = ev.convertLocked(results[i].sel, results[i].leftover)
		ev.preds[p.Pred] = p
		ev.Queries++
	}
	return nil
}

// seedLocked builds the one-time scan plumbing: the store's join access
// structures, a presized dictionary index, the row→dense remap (all
// unassigned), and the per-row key attribute cache used to assign dense ids
// without re-reading the store.
func (ev *Evaluator) seedLocked() error {
	if ev.seeded {
		return nil
	}
	base := ev.base(predicate.True{})
	if err := ev.db.PrepareQuery(base); err != nil {
		return err
	}
	// PrepareQuery has already errored on an unknown base table.
	n := ev.db.Table(base.From).Len()
	ev.seedFrom = base.From
	ev.dict.Reserve(n)
	ev.rowDense = make([]int32, n)
	for i := range ev.rowDense {
		ev.rowDense[i] = -1
	}
	ev.pidByRow = make([]int64, n)
	// The per-row key cache is read joinless so it covers every base-table
	// row — a base closure that varies the join per predicate can still
	// select rows the seeded join shape would have excluded.
	seedQ := relstore.Query{From: base.From, Where: predicate.True{}}
	if err := ev.db.ScanAttrRows(seedQ, ev.keyAttr, func(lid int, pid int64) {
		if lid < n {
			ev.pidByRow[lid] = pid
		}
	}); err != nil {
		// A key attribute the row scan cannot serve: leave the plumbing
		// empty; scans fall back to pid collection.
		ev.rowDense, ev.pidByRow = nil, nil
	}
	ev.seeded = true
	return nil
}

// convertLocked turns a base-row selection set (plus any stray pids) into a
// container-backed bitmap, assigning dictionary slots in first-seen order
// (the selection iterates ascending, exactly like the word walk it
// replaces). Dense ids accumulate in a word scratch and compress in one
// FromWords pass, so conversion costs word ops, not per-bit container
// inserts.
func (ev *Evaluator) convertLocked(sel *bitset.Set, leftover []int64) *Bitmap {
	// Upper bound on the dense ids this bitmap can touch: every id already
	// assigned plus one fresh slot per selected row and leftover pid.
	maxIDs := ev.dict.Size() + len(leftover)
	if sel != nil {
		maxIDs += sel.Len()
	}
	words := make([]uint64, (maxIDs+63)/64)
	if sel != nil {
		sel.ForEach(func(lid int) bool {
			di := ev.rowDense[lid]
			if di < 0 {
				di = int32(ev.dict.Add(ev.pidByRow[lid]))
				ev.rowDense[lid] = di
			}
			words[di>>6] |= 1 << (uint(di) & 63)
			return true
		})
	}
	for _, pid := range leftover {
		di := ev.dict.Add(pid)
		words[di>>6] |= 1 << (uint(di) & 63)
	}
	return wrapSet(bitset.FromWords(words))
}

// scanSel runs one predicate's scan into a base-row selection set plus any
// pids the row scan could not place (non-left key attributes fall back to
// the general distinct scan). The vectorized path hands back the container
// bitmap the kernels produced (ScanAttrRowSetParts) — no per-row emission,
// no recompression — sharding the kernel pass over parts block partitions
// when parts > 1. It reads only the store and fields frozen by seedLocked,
// so MaterializeAll workers may call it concurrently.
func (ev *Evaluator) scanSel(p hypre.ScoredPred, parts int) (sel *bitset.Set, leftover []int64, err error) {
	q := ev.base(p.P)
	if q.From == ev.seedFrom && len(ev.rowDense) > 0 {
		nrows := len(ev.rowDense)
		// Rows inserted after the seed have no cached pid; the scan spills
		// their key values under its own lock (one consistent epoch) while
		// the selection keeps only the plumbed rows.
		sel, ok, err := ev.db.ScanAttrRowSetParts(q, ev.keyAttr, nrows, func(_ int, pid int64) {
			leftover = append(leftover, pid)
		}, parts)
		if err == nil && ok {
			return sel, leftover, nil
		}
		if err == nil && !ok {
			// Vectorization defeated: the row-at-a-time scan still yields
			// (row id, pid) pairs to fold through the builder.
			b := bitset.NewBuilder(nrows)
			err = ev.db.ScanAttrRows(q, ev.keyAttr, func(lid int, pid int64) {
				if lid < nrows {
					b.Set(lid)
				} else {
					leftover = append(leftover, pid)
				}
			})
			if err == nil {
				return b.Finish(), leftover, nil
			}
		}
	}
	// Different base table than the seeded plumbing, or a key attribute the
	// row scan cannot serve: collect raw pids instead of row ids.
	leftover = nil
	err = ev.db.ScanAttrInts(q, ev.keyAttr, func(pid int64) {
		leftover = append(leftover, pid)
	})
	return nil, leftover, err
}

// scanBitmapLocked runs one predicate's scan into a fresh dense bitmap,
// sharding the kernel pass over parts block partitions when parts > 1.
func (ev *Evaluator) scanBitmapLocked(p hypre.ScoredPred, parts int) (*Bitmap, error) {
	sel, leftover, err := ev.scanSel(p, parts)
	if err != nil {
		return nil, err
	}
	return ev.convertLocked(sel, leftover), nil
}

// PredSet returns the distinct tuple ids matching one preference as a
// sorted slice. The slice view is derived lazily from the cached bitmap, so
// bulk materialization never pays for sets nobody reads.
func (ev *Evaluator) PredSet(p hypre.ScoredPred) (IntSet, error) {
	ev.mu.RLock()
	s, ok := ev.sets[p.Pred]
	ev.mu.RUnlock()
	if ok {
		return s, nil
	}
	b, err := ev.PredBitmap(p)
	if err != nil {
		return nil, err
	}
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if s, ok := ev.sets[p.Pred]; ok {
		return s, nil
	}
	s = b.ToIntSet(ev.dict)
	ev.sets[p.Pred] = s
	return s, nil
}

// PredBitmap returns the distinct tuple ids matching one preference in
// dense-bitmap form, materializing and caching it on first use via the
// vectorized scan.
func (ev *Evaluator) PredBitmap(p hypre.ScoredPred) (*Bitmap, error) {
	ev.mu.RLock()
	b, ok := ev.bits[p.Pred]
	ev.mu.RUnlock()
	if ok {
		return b, nil
	}
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if b, ok := ev.bits[p.Pred]; ok {
		return b, nil
	}
	if err := ev.seedLocked(); err != nil {
		return nil, err
	}
	b, err := ev.scanBitmapLocked(p, ev.workerTarget())
	if err != nil {
		return nil, err
	}
	ev.bits[p.Pred] = b
	ev.preds[p.Pred] = p
	ev.Queries++
	return b, nil
}

// CachedCount reports how many of prefs already have a cached bitmap — the
// cost signal the one-shot entry point uses to route between the
// materialized path (warm cache: O(result) random access) and the streaming
// scan (cold: every bitmap would cost a full materialization first).
func (ev *Evaluator) CachedCount(prefs []hypre.ScoredPred) int {
	ev.mu.RLock()
	defer ev.mu.RUnlock()
	n := 0
	for _, p := range prefs {
		if _, ok := ev.bits[p.Pred]; ok {
			n++
		}
	}
	return n
}

// groupBitmap folds one OR group to its union. Single-member groups (the
// common case: every pure AND combination) return the cached predicate
// bitmap itself — safe because bitmap operations never mutate operands.
func (ev *Evaluator) groupBitmap(g []hypre.ScoredPred) (*Bitmap, error) {
	b, err := ev.PredBitmap(g[0])
	if err != nil {
		return nil, err
	}
	for _, p := range g[1:] {
		nb, err := ev.PredBitmap(p)
		if err != nil {
			return nil, err
		}
		b = b.Or(nb)
	}
	return b, nil
}

// comboBitmap evaluates a combination to its dense tuple-id bitmap:
// union within OR groups, intersection across AND groups, with an early
// exit once the running intersection empties. It does not touch the work
// counters, so concurrent readers may use it after materialization.
func (ev *Evaluator) comboBitmap(c Combo) (*Bitmap, error) {
	var acc *Bitmap
	for _, g := range c.Groups {
		gb, err := ev.groupBitmap(g)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = gb
		} else {
			acc = acc.And(gb)
		}
		if acc.Len() == 0 {
			return NewBitmap(), nil
		}
	}
	if acc == nil {
		return NewBitmap(), nil
	}
	return acc, nil
}

// ComboBitmap is the exported counting wrapper around comboBitmap.
func (ev *Evaluator) ComboBitmap(c Combo) (*Bitmap, error) {
	ev.ComboEvals++
	return ev.comboBitmap(c)
}

// ComboSet evaluates a combination to its sorted tuple-id set.
func (ev *Evaluator) ComboSet(c Combo) (IntSet, error) {
	ev.ComboEvals++
	b, err := ev.comboBitmap(c)
	if err != nil {
		return nil, err
	}
	return b.ToIntSet(ev.dict), nil
}

// Count returns the number of distinct tuples the combination matches.
// For the ubiquitous two-group AND shape it popcounts the word-wise AND
// without materializing anything.
func (ev *Evaluator) Count(c Combo) (int, error) {
	ev.ComboEvals++
	if len(c.Groups) == 2 {
		a, err := ev.groupBitmap(c.Groups[0])
		if err != nil {
			return 0, err
		}
		b, err := ev.groupBitmap(c.Groups[1])
		if err != nil {
			return 0, err
		}
		return a.AndCard(b), nil
	}
	b, err := ev.comboBitmap(c)
	if err != nil {
		return 0, err
	}
	return b.Len(), nil
}

// Applicable reports whether the combination returns at least one tuple
// (Definition 15). The final intersection short-circuits on the first
// overlapping word.
func (ev *Evaluator) Applicable(c Combo) (bool, error) {
	ev.ComboEvals++
	n := len(c.Groups)
	if n == 0 {
		return false, nil
	}
	acc, err := ev.groupBitmap(c.Groups[0])
	if err != nil {
		return false, err
	}
	if n == 1 {
		return acc.Len() > 0, nil
	}
	for _, g := range c.Groups[1 : n-1] {
		gb, err := ev.groupBitmap(g)
		if err != nil {
			return false, err
		}
		acc = acc.And(gb)
		if acc.Len() == 0 {
			return false, nil
		}
	}
	last, err := ev.groupBitmap(c.Groups[n-1])
	if err != nil {
		return false, err
	}
	return acc.Any(last), nil
}

// Run evaluates the combination and produces its Record row.
func (ev *Evaluator) Run(c Combo) (Record, error) {
	ev.ComboEvals++
	b, err := ev.comboBitmap(c)
	if err != nil {
		return Record{}, err
	}
	return ev.record(c, b), nil
}

// record builds the Record row for an already-evaluated combination.
func (ev *Evaluator) record(c Combo, b *Bitmap) Record {
	return Record{
		NumPreds:  c.NumPreds(),
		NumTuples: b.Len(),
		Intensity: c.Intensity(),
		Combo:     c,
		Tuples:    b.ToIntSet(ev.dict),
	}
}

// CountSQL answers the same count through the relational engine without the
// set cache: one DISTINCT query per AND group, intersected in the client —
// used by tests to prove the set algebra agrees with the relational
// semantics, and by the ablation bench to price the cache.
//
// Note the per-group decomposition is semantically load-bearing: predicates
// on the same join attribute (aid=2 AND aid=6) must mean "tuples matched by
// both predicates" (papers the two authors co-authored, §7.3), which a flat
// single-join WHERE clause cannot express — one joined row carries one aid.
func (ev *Evaluator) CountSQL(c Combo) (int, error) {
	var acc IntSet
	first := true
	for _, g := range c.Groups {
		ps := make([]predicate.Predicate, len(g))
		for i, p := range g {
			ps[i] = p.P
		}
		ev.Queries++
		ids, err := ev.db.DistinctInts(ev.base(predicate.NewOr(ps...)), ev.keyAttr)
		if err != nil {
			return 0, err
		}
		gset := NewIntSet(ids)
		if first {
			acc, first = gset, false
		} else {
			acc = acc.Intersect(gset)
		}
		if len(acc) == 0 {
			return 0, nil
		}
	}
	if first {
		return 0, nil
	}
	return acc.Len(), nil
}
