package combine

import (
	"sync"

	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// Evaluator answers combination queries. It materializes the distinct
// tuple-id set of each atomic preference once (one relational query per
// predicate, like the pre-computed table of §5.5) as both a sorted slice
// (IntSet) and a dense bitmap keyed by a shared pid dictionary, and
// evaluates a Combo with word-parallel set algebra: union within an OR
// group, intersection across AND groups. Results are exactly those of
// running the rewritten SQL query — verified by tests against the
// relational engine — but pair/chain enumeration no longer re-scans the
// store.
//
// Concurrency: the predicate caches are guarded by a mutex, so once every
// profile preference has been materialized (see Materialize), PredSet,
// PredBitmap, and the bitmap algebra they feed are safe for concurrent
// readers — the parallel pair-table build relies on this. The Queries and
// ComboEvals counters are plain ints and must only be touched from one
// goroutine at a time; the concurrent paths avoid them.
type Evaluator struct {
	db      *relstore.DB
	base    func(predicate.Predicate) relstore.Query
	keyAttr string

	mu   sync.RWMutex
	dict *PidDict
	sets map[string]IntSet
	bits map[string]*Bitmap

	// Queries counts how many real relational queries were issued (cache
	// misses), for the efficiency experiments.
	Queries int
	// ComboEvals counts combination evaluations (set-algebra operations).
	ComboEvals int
}

// NewEvaluator builds an evaluator over a store. base maps a WHERE
// predicate to the full query (typically workload.BaseQuery); keyAttr is
// the distinct-counted attribute ("dblp.pid").
func NewEvaluator(db *relstore.DB, base func(predicate.Predicate) relstore.Query, keyAttr string) *Evaluator {
	return &Evaluator{
		db:      db,
		base:    base,
		keyAttr: keyAttr,
		dict:    NewPidDict(),
		sets:    make(map[string]IntSet),
		bits:    make(map[string]*Bitmap),
	}
}

// Dict exposes the dense pid dictionary shared by every bitmap the
// evaluator hands out.
func (ev *Evaluator) Dict() *PidDict { return ev.dict }

// Materialize runs the one relational query per preference for every entry
// of prefs that is not cached yet. It is the single-threaded phase that
// must precede any concurrent use of the evaluator.
func (ev *Evaluator) Materialize(prefs []hypre.ScoredPred) error {
	for _, p := range prefs {
		if _, err := ev.PredBitmap(p); err != nil {
			return err
		}
	}
	return nil
}

// PredSet returns the distinct tuple ids matching one preference as a
// sorted slice, materializing and caching it on first use.
func (ev *Evaluator) PredSet(p hypre.ScoredPred) (IntSet, error) {
	ev.mu.RLock()
	s, ok := ev.sets[p.Pred]
	ev.mu.RUnlock()
	if ok {
		return s, nil
	}
	if _, err := ev.PredBitmap(p); err != nil {
		return nil, err
	}
	ev.mu.RLock()
	s = ev.sets[p.Pred]
	ev.mu.RUnlock()
	return s, nil
}

// PredBitmap returns the same set as PredSet in its dense-bitmap form.
func (ev *Evaluator) PredBitmap(p hypre.ScoredPred) (*Bitmap, error) {
	ev.mu.RLock()
	b, ok := ev.bits[p.Pred]
	ev.mu.RUnlock()
	if ok {
		return b, nil
	}
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if b, ok := ev.bits[p.Pred]; ok {
		return b, nil
	}
	ids, err := ev.db.DistinctInts(ev.base(p.P), ev.keyAttr)
	if err != nil {
		return nil, err
	}
	b = NewBitmap()
	for _, pid := range ids {
		b.Set(ev.dict.Add(pid))
	}
	ev.sets[p.Pred] = NewIntSet(ids)
	ev.bits[p.Pred] = b
	ev.Queries++
	return b, nil
}

// groupBitmap folds one OR group to its union. Single-member groups (the
// common case: every pure AND combination) return the cached predicate
// bitmap itself — safe because bitmap operations never mutate operands.
func (ev *Evaluator) groupBitmap(g []hypre.ScoredPred) (*Bitmap, error) {
	b, err := ev.PredBitmap(g[0])
	if err != nil {
		return nil, err
	}
	for _, p := range g[1:] {
		nb, err := ev.PredBitmap(p)
		if err != nil {
			return nil, err
		}
		b = b.Or(nb)
	}
	return b, nil
}

// comboBitmap evaluates a combination to its dense tuple-id bitmap:
// union within OR groups, intersection across AND groups, with an early
// exit once the running intersection empties. It does not touch the work
// counters, so concurrent readers may use it after materialization.
func (ev *Evaluator) comboBitmap(c Combo) (*Bitmap, error) {
	var acc *Bitmap
	for _, g := range c.Groups {
		gb, err := ev.groupBitmap(g)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = gb
		} else {
			acc = acc.And(gb)
		}
		if acc.Len() == 0 {
			return NewBitmap(), nil
		}
	}
	if acc == nil {
		return NewBitmap(), nil
	}
	return acc, nil
}

// ComboBitmap is the exported counting wrapper around comboBitmap.
func (ev *Evaluator) ComboBitmap(c Combo) (*Bitmap, error) {
	ev.ComboEvals++
	return ev.comboBitmap(c)
}

// ComboSet evaluates a combination to its sorted tuple-id set.
func (ev *Evaluator) ComboSet(c Combo) (IntSet, error) {
	ev.ComboEvals++
	b, err := ev.comboBitmap(c)
	if err != nil {
		return nil, err
	}
	return b.ToIntSet(ev.dict), nil
}

// Count returns the number of distinct tuples the combination matches.
// For the ubiquitous two-group AND shape it popcounts the word-wise AND
// without materializing anything.
func (ev *Evaluator) Count(c Combo) (int, error) {
	ev.ComboEvals++
	if len(c.Groups) == 2 {
		a, err := ev.groupBitmap(c.Groups[0])
		if err != nil {
			return 0, err
		}
		b, err := ev.groupBitmap(c.Groups[1])
		if err != nil {
			return 0, err
		}
		return a.AndCard(b), nil
	}
	b, err := ev.comboBitmap(c)
	if err != nil {
		return 0, err
	}
	return b.Len(), nil
}

// Applicable reports whether the combination returns at least one tuple
// (Definition 15). The final intersection short-circuits on the first
// overlapping word.
func (ev *Evaluator) Applicable(c Combo) (bool, error) {
	ev.ComboEvals++
	n := len(c.Groups)
	if n == 0 {
		return false, nil
	}
	acc, err := ev.groupBitmap(c.Groups[0])
	if err != nil {
		return false, err
	}
	if n == 1 {
		return acc.Len() > 0, nil
	}
	for _, g := range c.Groups[1 : n-1] {
		gb, err := ev.groupBitmap(g)
		if err != nil {
			return false, err
		}
		acc = acc.And(gb)
		if acc.Len() == 0 {
			return false, nil
		}
	}
	last, err := ev.groupBitmap(c.Groups[n-1])
	if err != nil {
		return false, err
	}
	return acc.Any(last), nil
}

// Run evaluates the combination and produces its Record row.
func (ev *Evaluator) Run(c Combo) (Record, error) {
	ev.ComboEvals++
	b, err := ev.comboBitmap(c)
	if err != nil {
		return Record{}, err
	}
	return ev.record(c, b), nil
}

// record builds the Record row for an already-evaluated combination.
func (ev *Evaluator) record(c Combo, b *Bitmap) Record {
	return Record{
		NumPreds:  c.NumPreds(),
		NumTuples: b.Len(),
		Intensity: c.Intensity(),
		Combo:     c,
		Tuples:    b.ToIntSet(ev.dict),
	}
}

// CountSQL answers the same count through the relational engine without the
// set cache: one DISTINCT query per AND group, intersected in the client —
// used by tests to prove the set algebra agrees with the relational
// semantics, and by the ablation bench to price the cache.
//
// Note the per-group decomposition is semantically load-bearing: predicates
// on the same join attribute (aid=2 AND aid=6) must mean "tuples matched by
// both predicates" (papers the two authors co-authored, §7.3), which a flat
// single-join WHERE clause cannot express — one joined row carries one aid.
func (ev *Evaluator) CountSQL(c Combo) (int, error) {
	var acc IntSet
	first := true
	for _, g := range c.Groups {
		ps := make([]predicate.Predicate, len(g))
		for i, p := range g {
			ps[i] = p.P
		}
		ev.Queries++
		ids, err := ev.db.DistinctInts(ev.base(predicate.NewOr(ps...)), ev.keyAttr)
		if err != nil {
			return 0, err
		}
		gset := NewIntSet(ids)
		if first {
			acc, first = gset, false
		} else {
			acc = acc.Intersect(gset)
		}
		if len(acc) == 0 {
			return 0, nil
		}
	}
	if first {
		return 0, nil
	}
	return acc.Len(), nil
}
