package combine

import (
	"math"
	"sort"

	"hypre/internal/hypre"
)

// PairEntry is one row of the pre-computed combinations-of-two table of
// §5.5: an applicable AND pair of profile preferences with its combined
// intensity and tuple count.
type PairEntry struct {
	I, J      int // indexes into the profile (I < J)
	Intensity float64
	Count     int
}

// PairTable holds every applicable two-preference combination, sorted
// descending by combined intensity, with a per-first-preference index. It
// is rebuilt when the preference graph changes (the paper updates it on
// graph updates).
type PairTable struct {
	Prefs   []hypre.ScoredPred
	Pairs   []PairEntry
	byFirst map[int][]PairEntry
}

// BuildPairTable computes the table: all (i, j) with i < j whose AND
// combination is applicable (returns tuples).
func BuildPairTable(prefs []hypre.ScoredPred, ev *Evaluator) (*PairTable, error) {
	pt := &PairTable{Prefs: prefs, byFirst: make(map[int][]PairEntry)}
	for i := 0; i < len(prefs); i++ {
		for j := i + 1; j < len(prefs); j++ {
			c := NewCombo(prefs[i]).And(prefs[j])
			n, err := ev.Count(c)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				continue
			}
			e := PairEntry{I: i, J: j, Intensity: c.Intensity(), Count: n}
			pt.Pairs = append(pt.Pairs, e)
		}
	}
	sort.SliceStable(pt.Pairs, func(a, b int) bool {
		return pt.Pairs[a].Intensity > pt.Pairs[b].Intensity
	})
	for _, e := range pt.Pairs {
		pt.byFirst[e.I] = append(pt.byFirst[e.I], e)
	}
	return pt, nil
}

// CombsOfTwo returns the valid pairs starting at preference index i,
// descending by combined intensity — the CombsOfTwo(p) lookup of
// Algorithm 6.
func (pt *PairTable) CombsOfTwo(i int) []PairEntry { return pt.byFirst[i] }

// Variant selects between the Complete and Approximate PEPS algorithms
// (§5.5.1 / §5.5.2).
type Variant int

const (
	// Complete keeps every pair that could still beat the anchor's
	// intensity given enough extra predicates (Proposition 6's optimistic
	// bound) — no combination is lost.
	Complete Variant = iota
	// Approximate keeps only pairs whose combined intensity already exceeds
	// the anchor's, trading possible misses for speed.
	Approximate
)

// String names the variant.
func (v Variant) String() string {
	if v == Complete {
		return "complete"
	}
	return "approximate"
}

// ScoredTuple is one ranked result tuple.
type ScoredTuple struct {
	PID       int64
	Intensity float64
}

// TopKResult is the output of PEPS: up to K tuples in descending assigned
// intensity, plus work counters for the efficiency experiments.
type TopKResult struct {
	Tuples []ScoredTuple
	// CombosExpanded counts the multi-predicate combinations generated.
	CombosExpanded int
	// AnchorsUsed counts how many profile preferences seeded expansion
	// before K tuples were collected.
	AnchorsUsed int
}

// maxChainExpansions bounds DFS expansion for safety on adversarial
// profiles (the worst case is exponential, Proposition 3); the limit never
// triggers on the dissertation's workload sizes.
const maxChainExpansions = 200000

// PEPS is the Practical and Efficient Preference Selection algorithm
// (Algorithm 6): using the pre-computed pair table, it expands applicable
// AND chains anchored at each profile preference in descending-intensity
// order, accumulates the resulting combinations, and returns the first k
// distinct tuples ranked by combined intensity. Single preferences
// participate as 1-predicate combinations so flooding/starvation cases
// still fill K.
func PEPS(prefs []hypre.ScoredPred, pt *PairTable, ev *Evaluator, k int, variant Variant) (TopKResult, error) {
	var res TopKResult
	if k <= 0 || len(prefs) == 0 {
		return res, nil
	}

	// suffixBound[a] = f∧ over prefs[a:] — the best intensity any chain
	// anchored at or after a can reach (all intensities are >= 0 in the
	// positive profile).
	suffixBound := make([]float64, len(prefs)+1)
	prod := 1.0
	for a := len(prefs) - 1; a >= 0; a-- {
		p := prefs[a].Intensity
		if p < 0 {
			p = 0
		}
		prod *= 1 - p
		suffixBound[a] = 1 - prod
	}

	var order Records
	expansions := 0

	// Singles participate with their own intensity.
	for i := range prefs {
		r, err := ev.Run(NewCombo(prefs[i]))
		if err != nil {
			return res, err
		}
		if r.NumTuples > 0 {
			order = append(order, r)
		}
	}

	kthIntensity := func() (float64, int) {
		tuples := collectTuples(order, math.MaxInt32)
		if len(tuples) < k {
			return -1, len(tuples)
		}
		return tuples[k-1].Intensity, len(tuples)
	}

	for a := 0; a < len(prefs); a++ {
		res.AnchorsUsed = a + 1
		anchor := prefs[a].Intensity

		// Working set: pairs anchored at a, filtered per variant.
		var seeds []PairEntry
		for _, e := range pt.CombsOfTwo(a) {
			switch variant {
			case Approximate:
				if e.Intensity <= anchor {
					continue
				}
			case Complete:
				// Keep the pair if enough remaining preferences could lift
				// it past the anchor (Proposition 6, with the weaker
				// member's intensity as the per-step gain).
				if e.Intensity <= anchor {
					need := hypre.MinPreferencesToExceed(anchor, pt.Prefs[e.J].Intensity)
					if math.IsInf(need, 1) || need > float64(len(prefs)-2) {
						continue
					}
				}
			}
			seeds = append(seeds, e)
		}

		// DFS expansion: a chain i1 < i2 < ... where every consecutive pair
		// is in the table and the whole conjunction stays applicable. Every
		// applicable chain lands in ORDER — not just maximal ones — so a
		// tuple that drops out of a longer extension still gets credited
		// with the f∧ of exactly the preferences it matches (this is what
		// keeps PEPS's assigned intensities equal to TA's aggregates on
		// quantitative-only profiles, §7.6.3).
		var dfs func(chain []int, c Combo) error
		dfs = func(chain []int, c Combo) error {
			if expansions >= maxChainExpansions {
				return nil
			}
			expansions++
			r, err := ev.Run(c)
			if err != nil {
				return err
			}
			order = append(order, r)
			res.CombosExpanded++
			last := chain[len(chain)-1]
			for _, e := range pt.CombsOfTwo(last) {
				next := e.J
				cand := c.And(pt.Prefs[next])
				ok, err := ev.Applicable(cand)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				if err := dfs(append(chain, next), cand); err != nil {
					return err
				}
			}
			return nil
		}
		for _, e := range seeds {
			c := NewCombo(pt.Prefs[e.I]).And(pt.Prefs[e.J])
			if err := dfs([]int{e.I, e.J}, c); err != nil {
				return res, err
			}
		}

		// Early exit: if k tuples are already collected and no chain
		// anchored later can beat the current k-th intensity, stop.
		if kth, n := kthIntensity(); n >= k && a+1 < len(prefs) && suffixBound[a+1] <= kth {
			break
		}
	}

	res.Tuples = collectTuples(order, k)
	return res, nil
}

// collectTuples assigns every tuple the best combined intensity among the
// combinations that returned it, then ranks tuples by (intensity desc, pid
// asc) and truncates at limit. The pid tie-break matches the TA baseline's,
// so rankings are directly comparable.
func collectTuples(order Records, limit int) []ScoredTuple {
	best := map[int64]float64{}
	for _, r := range order {
		for _, pid := range r.Tuples {
			if cur, ok := best[pid]; !ok || r.Intensity > cur {
				best[pid] = r.Intensity
			}
		}
	}
	out := make([]ScoredTuple, 0, len(best))
	for pid, in := range best {
		out = append(out, ScoredTuple{PID: pid, Intensity: in})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Intensity != out[j].Intensity {
			return out[i].Intensity > out[j].Intensity
		}
		return out[i].PID < out[j].PID
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
