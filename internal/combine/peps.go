package combine

import (
	"math"
	"sort"

	"hypre/internal/hypre"
)

// Variant selects between the Complete and Approximate PEPS algorithms
// (§5.5.1 / §5.5.2).
type Variant int

const (
	// Complete keeps every pair that could still beat the anchor's
	// intensity given enough extra predicates (Proposition 6's optimistic
	// bound) — no combination is lost.
	Complete Variant = iota
	// Approximate keeps only pairs whose combined intensity already exceeds
	// the anchor's, trading possible misses for speed.
	Approximate
)

// String names the variant.
func (v Variant) String() string {
	if v == Complete {
		return "complete"
	}
	return "approximate"
}

// ScoredTuple is one ranked result tuple.
type ScoredTuple struct {
	PID       int64
	Intensity float64
}

// TopKResult is the output of PEPS: up to K tuples in descending assigned
// intensity, plus work counters for the efficiency experiments.
type TopKResult struct {
	Tuples []ScoredTuple
	// CombosExpanded counts the multi-predicate combinations generated.
	CombosExpanded int
	// AnchorsUsed counts how many profile preferences seeded expansion
	// before K tuples were collected.
	AnchorsUsed int
}

// maxChainExpansions bounds DFS expansion for safety on adversarial
// profiles (the worst case is exponential, Proposition 3); the limit never
// triggers on the dissertation's workload sizes.
const maxChainExpansions = 200000

// topTracker incrementally maintains, per tuple, the best combined
// intensity among the combinations that returned it — the structure the
// old implementation rebuilt from scratch (collect + full sort) on every
// anchor boundary. best is dense over the evaluator's pid dictionary;
// unset entries are -1 (valid intensities are >= 0).
type topTracker struct {
	dict *PidDict
	best []float64
	n    int // distinct tuples seen
}

func newTopTracker(dict *PidDict) *topTracker {
	best := make([]float64, dict.Size())
	for i := range best {
		best[i] = -1
	}
	return &topTracker{dict: dict, best: best}
}

// update credits every tuple of bm with intensity if it beats the tuple's
// current best.
func (t *topTracker) update(bm *Bitmap, intensity float64) {
	bm.ForEach(func(i int) {
		if t.best[i] < intensity {
			if t.best[i] < 0 {
				t.n++
			}
			t.best[i] = intensity
		}
	})
}

// kth returns the k-th highest best intensity and the number of distinct
// tuples collected so far; the intensity is -1 when fewer than k tuples
// exist. A bounded min-heap of size k replaces the old full sort.
func (t *topTracker) kth(k int) (float64, int) {
	if t.n < k {
		return -1, t.n
	}
	heap := make([]float64, 0, k)
	for _, v := range t.best {
		if v < 0 {
			continue
		}
		if len(heap) < k {
			heap = append(heap, v)
			siftUp(heap, len(heap)-1)
		} else if v > heap[0] {
			heap[0] = v
			siftDown(heap, 0)
		}
	}
	return heap[0], t.n
}

// tuples materializes the ranked result: (intensity desc, pid asc),
// truncated at limit — the same order collectTuples produced.
func (t *topTracker) tuples(limit int) []ScoredTuple {
	out := make([]ScoredTuple, 0, t.n)
	for i, v := range t.best {
		if v >= 0 {
			out = append(out, ScoredTuple{PID: t.dict.PID(i), Intensity: v})
		}
	}
	sortScoredTuples(out)
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

func sortScoredTuples(out []ScoredTuple) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Intensity != out[j].Intensity {
			return out[i].Intensity > out[j].Intensity
		}
		return out[i].PID < out[j].PID
	})
}

func siftUp(h []float64, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDown(h []float64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h[l] < h[m] {
			m = l
		}
		if r < len(h) && h[r] < h[m] {
			m = r
		}
		if m == i {
			return
		}
		h[m], h[i] = h[i], h[m]
		i = m
	}
}

// PEPS is the Practical and Efficient Preference Selection algorithm
// (Algorithm 6): using the pre-computed pair table, it expands applicable
// AND chains anchored at each profile preference in descending-intensity
// order, accumulates the resulting combinations, and returns the first k
// distinct tuples ranked by combined intensity. Single preferences
// participate as 1-predicate combinations so flooding/starvation cases
// still fill K.
//
// The DFS is incremental: each step extends the parent chain's tuple
// bitmap with exactly one word-parallel intersection (replacing the old
// Applicable + Run double evaluation, each of which recomputed the full
// conjunction from scratch), and carries the chain's Π(1−pᵢ) product so
// the combined intensity needs one multiplication per step while staying
// bit-identical to FAndAll over the member list. Tuple credits flow into
// an incrementally maintained best-intensity map, so the anchor-boundary
// early-exit check no longer rebuilds and sorts the full result set.
func PEPS(prefs []hypre.ScoredPred, pt *PairTable, ev *Evaluator, k int, variant Variant) (TopKResult, error) {
	var res TopKResult
	if k <= 0 || len(prefs) == 0 {
		return res, nil
	}

	// One relational query per predicate, then everything below is pure
	// bitmap algebra over the shared dictionary.
	bms := make([]*Bitmap, len(prefs))
	for i, p := range prefs {
		b, err := ev.PredBitmap(p)
		if err != nil {
			return res, err
		}
		bms[i] = b
	}

	// suffixBound[a] = f∧ over prefs[a:] — the best intensity any chain
	// anchored at or after a can reach (all intensities are >= 0 in the
	// positive profile).
	suffixBound := make([]float64, len(prefs)+1)
	prod := 1.0
	for a := len(prefs) - 1; a >= 0; a-- {
		p := prefs[a].Intensity
		if p < 0 {
			p = 0
		}
		prod *= 1 - p
		suffixBound[a] = 1 - prod
	}

	tr := newTopTracker(ev.dict)
	expansions := 0

	// Per-depth scratch bitmaps for the chain DFS (one live chain per
	// depth), shared across anchors so steady-state expansion allocates
	// nothing.
	var scratch []*Bitmap
	scratchAt := func(depth int) *Bitmap {
		for len(scratch) <= depth {
			scratch = append(scratch, NewBitmap())
		}
		return scratch[depth]
	}

	// Singles participate with their own intensity (f∧ of one member).
	for i := range prefs {
		if bms[i].Len() > 0 {
			tr.update(bms[i], 1-(1-prefs[i].Intensity))
		}
	}

	for a := 0; a < len(prefs); a++ {
		res.AnchorsUsed = a + 1
		anchor := prefs[a].Intensity

		// Working set: pairs anchored at a, filtered per variant.
		var seeds []PairEntry
		for _, e := range pt.CombsOfTwo(a) {
			switch variant {
			case Approximate:
				if e.Intensity <= anchor {
					continue
				}
			case Complete:
				// Keep the pair if enough remaining preferences could lift
				// it past the anchor (Proposition 6, with the weaker
				// member's intensity as the per-step gain).
				if e.Intensity <= anchor {
					need := hypre.MinPreferencesToExceed(anchor, pt.Prefs[e.J].Intensity)
					if math.IsInf(need, 1) || need > float64(len(prefs)-2) {
						continue
					}
				}
			}
			seeds = append(seeds, e)
		}

		// DFS expansion: a chain i1 < i2 < ... where every consecutive pair
		// is in the table and the whole conjunction stays applicable. Every
		// applicable chain credits the tracker — not just maximal ones — so
		// a tuple that drops out of a longer extension still gets credited
		// with the f∧ of exactly the preferences it matches (this is what
		// keeps PEPS's assigned intensities equal to TA's aggregates on
		// quantitative-only profiles, §7.6.3). Each frame receives the
		// parent's tuple bitmap and Π(1−pᵢ) product; extending the chain is
		// one AND and one multiply, into a per-depth scratch bitmap (one
		// live chain per depth), so expansion allocates nothing in steady
		// state.
		var dfs func(last int, bm *Bitmap, depth int, prod float64) error
		dfs = func(last int, bm *Bitmap, depth int, prod float64) error {
			if expansions >= maxChainExpansions {
				return nil
			}
			expansions++
			tr.update(bm, 1-prod)
			res.CombosExpanded++
			for _, e := range pt.CombsOfTwo(last) {
				next := e.J
				child := scratchAt(depth)
				child.AndInto(bm, bms[next])
				if child.Len() == 0 {
					continue
				}
				if err := dfs(next, child, depth+1, prod*(1-prefs[next].Intensity)); err != nil {
					return err
				}
			}
			return nil
		}
		for _, e := range seeds {
			seed := scratchAt(0)
			seed.AndInto(bms[e.I], bms[e.J])
			seedProd := (1 - prefs[e.I].Intensity) * (1 - prefs[e.J].Intensity)
			if err := dfs(e.J, seed, 1, seedProd); err != nil {
				return res, err
			}
		}

		// Early exit: if k tuples are already collected and no chain
		// anchored later can beat the current k-th intensity, stop.
		if kth, n := tr.kth(k); n >= k && a+1 < len(prefs) && suffixBound[a+1] <= kth {
			break
		}
	}

	res.Tuples = tr.tuples(k)
	return res, nil
}

// collectTuples assigns every tuple the best combined intensity among the
// combinations that returned it, then ranks tuples by (intensity desc, pid
// asc) and truncates at limit. The pid tie-break matches the TA baseline's,
// so rankings are directly comparable. The incremental topTracker subsumes
// this inside PEPS; it remains the reference reduction for Records
// produced by the other Chapter 5 algorithms and for the equivalence
// tests.
func collectTuples(order Records, limit int) []ScoredTuple {
	best := map[int64]float64{}
	for _, r := range order {
		for _, pid := range r.Tuples {
			if cur, ok := best[pid]; !ok || r.Intensity > cur {
				best[pid] = r.Intensity
			}
		}
	}
	out := make([]ScoredTuple, 0, len(best))
	for pid, in := range best {
		out = append(out, ScoredTuple{PID: pid, Intensity: in})
	}
	sortScoredTuples(out)
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
