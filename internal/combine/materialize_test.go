package combine

import (
	"sync"
	"testing"

	"hypre/internal/hypre"
)

// materializeProfile is a profile wide enough to exercise the parallel
// materialization path, mixing every scan shape: left-only string equality,
// right-only equality, left ranges, IN, NOT, and cross-side OR trees that
// defeat the vectorized decomposition and fall back to the row scan.
func materializeProfile(t *testing.T) []hypre.ScoredPred {
	t.Helper()
	texts := []string{
		`dblp.venue="INFOCOM"`,
		`dblp.venue="PVLDB"`,
		`dblp.venue="VLDB"`,
		`dblp.venue="nope"`,
		`dblp_author.aid=2`,
		`dblp_author.aid=6`,
		`dblp_author.aid=1`,
		`dblp_author.aid=99`,
		`dblp.year>=2010`,
		`dblp.year<2009`,
		`dblp.year BETWEEN 2008 AND 2011`,
		`dblp.venue IN ("VLDB", "PVLDB")`,
		`NOT (dblp.venue="VLDB")`,
		`dblp.venue="INFOCOM" AND dblp.year>=2009`,
		`dblp.venue="PVLDB" AND dblp_author.aid=2`,
		`dblp.venue="VLDB" OR dblp_author.aid=6`,
	}
	out := make([]hypre.ScoredPred, len(texts))
	for i, s := range texts {
		out[i] = mustSP(t, s, 0.5)
	}
	return out
}

// TestMaterializeAllMatchesSerial proves the bulk worker-pool path produces
// byte-identical predicate sets, dense numbering included, to one-at-a-time
// serial materialization.
func TestMaterializeAllMatchesSerial(t *testing.T) {
	profile := materializeProfile(t)

	serial := NewEvaluator(testDB(t), baseQuery, "dblp.pid")
	for _, p := range profile {
		if _, err := serial.PredBitmap(p); err != nil {
			t.Fatal(err)
		}
	}
	bulk := NewEvaluator(testDB(t), baseQuery, "dblp.pid")
	if err := bulk.MaterializeAll(profile); err != nil {
		t.Fatal(err)
	}

	for _, p := range profile {
		ss, err := serial.PredSet(p)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := bulk.PredSet(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(ss) != len(bs) {
			t.Fatalf("%s: serial %d pids, bulk %d", p.Pred, len(ss), len(bs))
		}
		for i := range ss {
			if ss[i] != bs[i] {
				t.Fatalf("%s: pid[%d] serial=%d bulk=%d", p.Pred, i, ss[i], bs[i])
			}
		}
		sb, _ := serial.PredBitmap(p)
		bb, _ := bulk.PredBitmap(p)
		if sb.Len() != bb.Len() {
			t.Fatalf("%s: bitmap card serial=%d bulk=%d", p.Pred, sb.Len(), bb.Len())
		}
	}
	// The dense numbering must match too (first-seen order in both modes),
	// so cross-predicate algebra gives identical intersections.
	if serial.Dict().Size() != bulk.Dict().Size() {
		t.Fatalf("dict size serial=%d bulk=%d", serial.Dict().Size(), bulk.Dict().Size())
	}
	for i := 0; i < serial.Dict().Size(); i++ {
		if serial.Dict().PID(i) != bulk.Dict().PID(i) {
			t.Fatalf("dense slot %d: serial pid %d, bulk pid %d",
				i, serial.Dict().PID(i), bulk.Dict().PID(i))
		}
	}
	for i := 0; i+1 < len(profile); i += 2 {
		c := NewCombo(profile[i]).And(profile[i+1])
		sn, err := serial.Count(c)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := bulk.Count(c)
		if err != nil {
			t.Fatal(err)
		}
		if sn != bn {
			t.Fatalf("%s: count serial=%d bulk=%d", c, sn, bn)
		}
	}

	if bulk.Queries != len(profile) {
		t.Errorf("bulk queries = %d, want %d", bulk.Queries, len(profile))
	}
	q := bulk.Queries
	if err := bulk.MaterializeAll(profile); err != nil {
		t.Fatal(err)
	}
	if bulk.Queries != q {
		t.Errorf("re-materialization issued %d extra queries", bulk.Queries-q)
	}
}

// TestMaterializeAllConcurrentReaders hammers the materialized caches from
// many goroutines — run under -race in CI, this proves the parallel bulk
// phase leaves the evaluator in the promised read-safe state.
func TestMaterializeAllConcurrentReaders(t *testing.T) {
	profile := materializeProfile(t)
	ev := NewEvaluator(testDB(t), baseQuery, "dblp.pid")
	if err := ev.MaterializeAll(profile); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for i, p := range profile {
					if _, err := ev.PredBitmap(p); err != nil {
						t.Error(err)
						return
					}
					if _, err := ev.PredSet(p); err != nil {
						t.Error(err)
						return
					}
					c := NewCombo(p).And(profile[(i+w)%len(profile)])
					if _, err := ev.comboBitmap(c); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
