package combine

import "hypre/internal/hypre"

// PartiallyCombineAll is Algorithm 4: it walks the preference list (sorted
// descending by intensity) and grows combinations under three conditions:
//
//   - Condition 1: a preference on a new attribute is AND-ed onto every
//     combination created so far (re-running them), because AND combinations
//     inflate the combined intensity.
//   - Condition 2: a preference on an already-used attribute, when the last
//     combination has no AND, is OR-ed onto the last combination only.
//   - Condition 3: a preference on an already-used attribute, when the last
//     combination does contain an AND, is (a) AND-ed onto every prior
//     combination that does not constrain the attribute yet, and (b) OR-ed
//     into the attribute's group of the last combination.
//
// The worked example of §5.3.2 (P1=venue, P2/P3=author) produces:
//
//	C1: venue=INFOCOM
//	C2: venue=INFOCOM AND aid=2222
//	C3: venue=INFOCOM AND aid=4787
//	C4: venue=INFOCOM AND (aid=2222 OR aid=4787)
//
// which this implementation reproduces (see tests). The output records
// every combination run, in run order.
func PartiallyCombineAll(prefs []hypre.ScoredPred, ev *Evaluator) (Records, error) {
	var out Records
	var combos []Combo // queriesRan, in run order
	attributesUsed := map[string]bool{}

	run := func(c Combo) error {
		r, err := ev.Run(c)
		if err != nil {
			return err
		}
		out = append(out, r)
		combos = append(combos, c)
		return nil
	}

	for _, p := range prefs {
		attr := p.Attr
		switch {
		case len(combos) == 0:
			// First preference starts the first combination.
			if err := run(NewCombo(p)); err != nil {
				return nil, err
			}
			attributesUsed[attr] = true

		case attr == "" || !attributesUsed[attr]:
			// Condition 1: a brand-new attribute is AND-ed onto every
			// combination created so far.
			snapshot := append([]Combo(nil), combos...)
			for _, c := range snapshot {
				if err := run(c.And(p)); err != nil {
					return nil, err
				}
			}
			attributesUsed[attr] = true

		default:
			last := combos[len(combos)-1]
			if !last.HasAnd() {
				// Condition 2: only one attribute in play; extend the last
				// combination with OR.
				if err := run(last.Or(p)); err != nil {
					return nil, err
				}
				continue
			}
			// Condition 3a: AND onto prior combinations lacking the
			// attribute.
			snapshot := append([]Combo(nil), combos...)
			for _, c := range snapshot {
				if c.HasAttr(attr) {
					continue
				}
				if err := run(c.And(p)); err != nil {
					return nil, err
				}
			}
			// Condition 3b: OR into the last original combination's group.
			if err := run(last.Or(p)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
