package combine

import "hypre/internal/hypre"

// PartiallyCombineAll is Algorithm 4: it walks the preference list (sorted
// descending by intensity) and grows combinations under three conditions:
//
//   - Condition 1: a preference on a new attribute is AND-ed onto every
//     combination created so far (re-running them), because AND combinations
//     inflate the combined intensity.
//   - Condition 2: a preference on an already-used attribute, when the last
//     combination has no AND, is OR-ed onto the last combination only.
//   - Condition 3: a preference on an already-used attribute, when the last
//     combination does contain an AND, is (a) AND-ed onto every prior
//     combination that does not constrain the attribute yet, and (b) OR-ed
//     into the attribute's group of the last combination.
//
// The worked example of §5.3.2 (P1=venue, P2/P3=author) produces:
//
//	C1: venue=INFOCOM
//	C2: venue=INFOCOM AND aid=2222
//	C3: venue=INFOCOM AND aid=4787
//	C4: venue=INFOCOM AND (aid=2222 OR aid=4787)
//
// which this implementation reproduces (see tests). The output records
// every combination run, in run order.
//
// Each recorded combination keeps its tuple bitmap, so the AND extensions
// of Conditions 1 and 3a — the O(N·C) bulk of the algorithm — are one
// incremental intersection against the parent instead of a re-evaluation
// of the whole conjunction. OR extensions refold one group and are
// re-evaluated.
func PartiallyCombineAll(prefs []hypre.ScoredPred, ev *Evaluator) (Records, error) {
	type liveCombo struct {
		c  Combo
		bm *Bitmap
	}
	var out Records
	var combos []liveCombo // queriesRan, in run order
	attributesUsed := map[string]bool{}

	record := func(c Combo, bm *Bitmap) {
		ev.ComboEvals++
		out = append(out, ev.record(c, bm))
		combos = append(combos, liveCombo{c: c, bm: bm})
	}
	// runFresh evaluates the combination from its predicate sets (used for
	// the first combination and OR refolds).
	runFresh := func(c Combo) error {
		bm, err := ev.comboBitmap(c)
		if err != nil {
			return err
		}
		record(c, bm)
		return nil
	}
	// runExtend AND-extends an existing combination with one intersection.
	runExtend := func(parent liveCombo, p hypre.ScoredPred) error {
		pb, err := ev.PredBitmap(p)
		if err != nil {
			return err
		}
		record(parent.c.And(p), parent.bm.And(pb))
		return nil
	}

	for _, p := range prefs {
		attr := p.Attr
		switch {
		case len(combos) == 0:
			// First preference starts the first combination.
			if err := runFresh(NewCombo(p)); err != nil {
				return nil, err
			}
			attributesUsed[attr] = true

		case attr == "" || !attributesUsed[attr]:
			// Condition 1: a brand-new attribute is AND-ed onto every
			// combination created so far.
			snapshot := append([]liveCombo(nil), combos...)
			for _, lc := range snapshot {
				if err := runExtend(lc, p); err != nil {
					return nil, err
				}
			}
			attributesUsed[attr] = true

		default:
			last := combos[len(combos)-1]
			if !last.c.HasAnd() {
				// Condition 2: only one attribute in play; extend the last
				// combination with OR.
				if err := runFresh(last.c.Or(p)); err != nil {
					return nil, err
				}
				continue
			}
			// Condition 3a: AND onto prior combinations lacking the
			// attribute.
			snapshot := append([]liveCombo(nil), combos...)
			for _, lc := range snapshot {
				if lc.c.HasAttr(attr) {
					continue
				}
				if err := runExtend(lc, p); err != nil {
					return nil, err
				}
			}
			// Condition 3b: OR into the last original combination's group.
			if err := runFresh(last.c.Or(p)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
