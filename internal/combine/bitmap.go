package combine

import "math/bits"

// PidDict maps sparse tuple ids (pids) to dense bit positions and back. The
// Evaluator owns one dictionary per store; every predicate set materialized
// through it shares the same dense id space, so combination queries reduce
// to word-parallel bit algebra regardless of how large or sparse the pid
// domain is.
type PidDict struct {
	idx  map[int64]int
	pids []int64
}

// NewPidDict returns an empty dictionary.
func NewPidDict() *PidDict {
	return &PidDict{idx: make(map[int64]int)}
}

// Reserve rebuilds the index map with room for n total pids, keeping every
// existing assignment (and the *PidDict identity callers may hold). Bulk
// seeding calls it once to avoid incremental map growth.
func (d *PidDict) Reserve(n int) {
	if n <= len(d.pids) {
		return
	}
	idx := make(map[int64]int, n)
	for i, pid := range d.pids {
		idx[pid] = i
	}
	d.idx = idx
	d.pids = append(make([]int64, 0, n), d.pids...)
}

// Add returns the dense index for pid, assigning the next free slot on
// first sight.
func (d *PidDict) Add(pid int64) int {
	if i, ok := d.idx[pid]; ok {
		return i
	}
	i := len(d.pids)
	d.idx[pid] = i
	d.pids = append(d.pids, pid)
	return i
}

// PID returns the pid stored at dense index i.
func (d *PidDict) PID(i int) int64 { return d.pids[i] }

// Size returns the number of distinct pids registered.
func (d *PidDict) Size() int { return len(d.pids) }

// Bitmap is a dense bitset over PidDict indices with a cached cardinality.
// All binary operations tolerate operands of different word lengths
// (missing high words read as zero), because the dictionary grows as
// predicate sets materialize. Operations never mutate their receiver or
// argument, so cached predicate bitmaps can be shared freely across
// goroutines once built.
type Bitmap struct {
	words []uint64
	card  int
}

// NewBitmap returns an empty bitmap.
func NewBitmap() *Bitmap { return &Bitmap{} }

// Set marks dense index i, growing the word slice as needed.
func (b *Bitmap) Set(i int) {
	w := i >> 6
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	mask := uint64(1) << (uint(i) & 63)
	if b.words[w]&mask == 0 {
		b.words[w] |= mask
		b.card++
	}
}

// Contains reports whether dense index i is set.
func (b *Bitmap) Contains(i int) bool {
	w := i >> 6
	return w < len(b.words) && b.words[w]&(1<<(uint(i)&63)) != 0
}

// Clear unsets dense index i (a no-op when it is not set). Only the delta
// maintenance path mutates bitmaps, and only ever on a private Clone — the
// shared cached bitmaps stay immutable.
func (b *Bitmap) Clear(i int) {
	w := i >> 6
	if w >= len(b.words) {
		return
	}
	mask := uint64(1) << (uint(i) & 63)
	if b.words[w]&mask != 0 {
		b.words[w] &^= mask
		b.card--
	}
}

// Clone returns a deep copy. Delta maintenance patches a clone and swaps it
// into the cache, so callers holding the previous bitmap keep a consistent
// (if stale) view.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{words: append([]uint64(nil), b.words...), card: b.card}
}

// Len returns the cardinality (maintained incrementally; no popcount scan).
func (b *Bitmap) Len() int { return b.card }

// And returns b ∩ o as a new bitmap, computing the popcount in the same
// pass over the words.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out := &Bitmap{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		w := b.words[i] & o.words[i]
		out.words[i] = w
		out.card += bits.OnesCount64(w)
	}
	return out
}

// AndCard returns |b ∩ o| without materializing the intersection — the
// zero-allocation applicability/count check the pair table and DFS use.
func (b *Bitmap) AndCard(o *Bitmap) int {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(b.words[i] & o.words[i])
	}
	return c
}

// Any reports whether b and o intersect, with early exit on the first
// common word (Definition 15's applicability test).
func (b *Bitmap) Any(o *Bitmap) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Or returns b ∪ o as a new bitmap.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	long, short := b.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	out := &Bitmap{words: make([]uint64, len(long))}
	for i := range short {
		w := long[i] | short[i]
		out.words[i] = w
		out.card += bits.OnesCount64(w)
	}
	for i := len(short); i < len(long); i++ {
		out.words[i] = long[i]
		out.card += bits.OnesCount64(long[i])
	}
	return out
}

// AndNot returns b \ o as a new bitmap.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	out := &Bitmap{words: make([]uint64, len(b.words))}
	for i, w := range b.words {
		if i < len(o.words) {
			w &^= o.words[i]
		}
		out.words[i] = w
		out.card += bits.OnesCount64(w)
	}
	return out
}

// ForEachPid invokes fn with the pid of every set bit, in dense-index order
// (which is NOT pid order) — the allocation-free iteration the Top-K list
// builder uses in place of materialized IntSet slices.
func (b *Bitmap) ForEachPid(d *PidDict, fn func(int64)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			fn(d.PID(base + bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}

// AppendPids appends the pids of every set bit to dst (in dense-index
// order, which is NOT pid order) and returns the result.
func (b *Bitmap) AppendPids(d *PidDict, dst []int64) []int64 {
	b.ForEachPid(d, func(pid int64) { dst = append(dst, pid) })
	return dst
}

// ToIntSet converts the bitmap back to the sorted-slice representation via
// the dictionary. Costs one sort; used only where a Record needs its
// pid-ordered Tuples view.
func (b *Bitmap) ToIntSet(d *PidDict) IntSet {
	if b.card == 0 {
		return IntSet{}
	}
	pids := b.AppendPids(d, make([]int64, 0, b.card))
	sortInt64(pids)
	return IntSet(pids)
}
