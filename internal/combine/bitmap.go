package combine

import "hypre/internal/bitset"

// PidDict maps sparse tuple ids (pids) to dense bit positions and back. The
// Evaluator owns one dictionary per store; every predicate set materialized
// through it shares the same dense id space, so combination queries reduce
// to word-parallel bit algebra regardless of how large or sparse the pid
// domain is.
type PidDict struct {
	idx  map[int64]int
	pids []int64
}

// NewPidDict returns an empty dictionary.
func NewPidDict() *PidDict {
	return &PidDict{idx: make(map[int64]int)}
}

// Reserve rebuilds the index map with room for n total pids, keeping every
// existing assignment (and the *PidDict identity callers may hold). Bulk
// seeding calls it once to avoid incremental map growth.
func (d *PidDict) Reserve(n int) {
	if n <= len(d.pids) {
		return
	}
	idx := make(map[int64]int, n)
	for i, pid := range d.pids {
		idx[pid] = i
	}
	d.idx = idx
	d.pids = append(make([]int64, 0, n), d.pids...)
}

// Add returns the dense index for pid, assigning the next free slot on
// first sight.
func (d *PidDict) Add(pid int64) int {
	if i, ok := d.idx[pid]; ok {
		return i
	}
	i := len(d.pids)
	d.idx[pid] = i
	d.pids = append(d.pids, pid)
	return i
}

// PID returns the pid stored at dense index i.
func (d *PidDict) PID(i int) int64 { return d.pids[i] }

// Find returns the dense index assigned to pid, ok=false when the pid has
// never been registered (it then appears in no cached bitmap either).
func (d *PidDict) Find(pid int64) (int, bool) {
	i, ok := d.idx[pid]
	return i, ok
}

// Size returns the number of distinct pids registered.
func (d *PidDict) Size() int { return len(d.pids) }

// Bitmap is a set over PidDict indices, backed by the adaptive compressed
// containers of internal/bitset: sparse predicate sets cost bytes
// proportional to their cardinality (sorted-array containers), dense ones
// keep word-parallel algebra (truncated bitmap containers), and bulk ranges
// collapse to runs — while every operation stays bit-identical to the dense
// word-vector implementation this wraps away. Operations never mutate their
// receiver or argument, so cached predicate bitmaps can be shared freely
// across goroutines once built; mutation happens only on private bitmaps or
// copy-on-write Clones (the delta patch path).
type Bitmap struct {
	s *bitset.Set
}

// NewBitmap returns an empty bitmap.
func NewBitmap() *Bitmap { return &Bitmap{s: bitset.New()} }

// wrapSet adopts a bitset.Set built elsewhere (the evaluator's scan
// conversion) as a Bitmap.
func wrapSet(s *bitset.Set) *Bitmap { return &Bitmap{s: s} }

// Set marks dense index i.
func (b *Bitmap) Set(i int) { b.s.Add(i) }

// Contains reports whether dense index i is set.
func (b *Bitmap) Contains(i int) bool { return b.s.Contains(i) }

// Clear unsets dense index i (a no-op when it is not set). Only the delta
// maintenance path mutates bitmaps, and only ever on a private Clone — the
// shared cached bitmaps stay immutable.
func (b *Bitmap) Clear(i int) { b.s.Remove(i) }

// Clone returns a copy safe to patch independently (copy-on-write at
// container granularity). Delta maintenance patches a clone and swaps it
// into the cache, so callers holding the previous bitmap keep a consistent
// (if stale) view.
func (b *Bitmap) Clone() *Bitmap { return &Bitmap{s: b.s.Clone()} }

// Len returns the cardinality (maintained incrementally; no popcount scan).
func (b *Bitmap) Len() int { return b.s.Len() }

// And returns b ∩ o as a new bitmap (word-parallel on dense containers,
// galloping intersection on sparse ones, full-run short-circuits).
func (b *Bitmap) And(o *Bitmap) *Bitmap { return &Bitmap{s: b.s.And(o.s)} }

// AndCard returns |b ∩ o| without materializing the intersection — the
// zero-allocation applicability/count check the pair table and DFS use.
func (b *Bitmap) AndCard(o *Bitmap) int { return b.s.AndCard(o.s) }

// AndInto computes a ∩ o into b, reusing b's storage where possible — the
// scratch discipline that keeps the PEPS chain DFS allocation-free. b must
// be a private scratch bitmap, never a cached or handed-out one.
func (b *Bitmap) AndInto(a, o *Bitmap) { b.s.AndInto(a.s, o.s) }

// Any reports whether b and o intersect, with container-level early exit
// (Definition 15's applicability test).
func (b *Bitmap) Any(o *Bitmap) bool { return b.s.Intersects(o.s) }

// Or returns b ∪ o as a new bitmap.
func (b *Bitmap) Or(o *Bitmap) *Bitmap { return &Bitmap{s: b.s.Or(o.s)} }

// AndNot returns b \ o as a new bitmap.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap { return &Bitmap{s: b.s.AndNot(o.s)} }

// ForEach invokes fn with every set dense index, ascending — the iteration
// primitive PEPS's tuple tracker and the memory accounting use.
func (b *Bitmap) ForEach(fn func(i int)) {
	b.s.ForEach(func(i int) bool { fn(i); return true })
}

// SizeBytes returns the bitmap's compressed memory footprint.
func (b *Bitmap) SizeBytes() int64 { return b.s.SizeBytes() }

// DenseSizeBytes returns what the bitmap would cost in the dense
// word-vector representation this package used before compression: one
// word per 64 dense indices up to the highest set bit — the baseline the
// MemStats ratios are measured against.
func (b *Bitmap) DenseSizeBytes() int64 {
	m, ok := b.s.Max()
	if !ok {
		return 0
	}
	return int64(m>>6+1) * 8
}

// ForEachPid invokes fn with the pid of every set bit, in dense-index order
// (which is NOT pid order) — the allocation-free iteration the Top-K list
// builder uses in place of materialized IntSet slices.
func (b *Bitmap) ForEachPid(d *PidDict, fn func(int64)) {
	b.s.ForEach(func(i int) bool {
		fn(d.PID(i))
		return true
	})
}

// AppendPids appends the pids of every set bit to dst (in dense-index
// order, which is NOT pid order) and returns the result.
func (b *Bitmap) AppendPids(d *PidDict, dst []int64) []int64 {
	b.ForEachPid(d, func(pid int64) { dst = append(dst, pid) })
	return dst
}

// ToIntSet converts the bitmap back to the sorted-slice representation via
// the dictionary. Costs one sort; used only where a Record needs its
// pid-ordered Tuples view.
func (b *Bitmap) ToIntSet(d *PidDict) IntSet {
	if b.s.IsEmpty() {
		return IntSet{}
	}
	pids := b.AppendPids(d, make([]int64, 0, b.s.Len()))
	sortInt64(pids)
	return IntSet(pids)
}
