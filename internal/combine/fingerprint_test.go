package combine

import (
	"math/rand"
	"testing"

	"hypre/internal/hypre"
)

// fpPool is a pool of distinct parsed predicates for randomized draws.
func fpPool(t *testing.T) []hypre.ScoredPred {
	t.Helper()
	specs := []struct {
		pred string
		in   float64
	}{
		{`dblp.venue="INFOCOM"`, 0.23},
		{`dblp.venue="PVLDB"`, 0.14},
		{`dblp.venue="SIGMOD"`, 0.61},
		{`dblp.year=2014`, 0.40},
		{`dblp.year=2015`, 0.05},
		{`dblp_author.aid=2`, 0.19},
		{`dblp_author.aid=6`, 0.12},
		{`dblp_author.aid=9`, 0.88},
	}
	out := make([]hypre.ScoredPred, len(specs))
	for i, s := range specs {
		out[i] = mustSP(t, s.pred, s.in)
	}
	return out
}

// TestFingerprintPermutationInvariant: every permutation of a profile hashes
// identically, and the canonical slice the permutations produce is the same.
func TestFingerprintPermutationInvariant(t *testing.T) {
	pool := fpPool(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(len(pool))
		base := make([]hypre.ScoredPred, n)
		copy(base, pool[:n])
		canonWant, fpWant := CanonicalProfile(base)
		perm := make([]hypre.ScoredPred, n)
		copy(perm, base)
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		canonGot, fpGot := CanonicalProfile(perm)
		if fpGot != fpWant {
			t.Fatalf("trial %d: permutation changed fingerprint: %s vs %s", trial, fpGot, fpWant)
		}
		if len(canonGot) != len(canonWant) {
			t.Fatalf("trial %d: canonical length diverged", trial)
		}
		for i := range canonGot {
			if canonGot[i].Pred != canonWant[i].Pred || canonGot[i].Intensity != canonWant[i].Intensity {
				t.Fatalf("trial %d: canonical entry %d diverged", trial, i)
			}
		}
	}
}

// TestFingerprintWeightMerge: a duplicated predicate folds its intensities
// with f∧ regardless of where the duplicates sit, so equivalent weightings
// of the same profile collide on purpose.
func TestFingerprintWeightMerge(t *testing.T) {
	pool := fpPool(t)
	a, b := pool[0], pool[3]
	dup := mustSP(t, `dblp.venue="INFOCOM"`, 0.5)

	merged := mustSP(t, `dblp.venue="INFOCOM"`, hypre.FAnd(a.Intensity, dup.Intensity))
	_, fpSplit := CanonicalProfile([]hypre.ScoredPred{a, b, dup})
	_, fpSplitOther := CanonicalProfile([]hypre.ScoredPred{dup, b, a})
	_, fpMerged := CanonicalProfile([]hypre.ScoredPred{merged, b})
	if fpSplit != fpMerged || fpSplitOther != fpMerged {
		t.Fatalf("duplicate predicate weightings did not merge: %s / %s vs %s", fpSplit, fpSplitOther, fpMerged)
	}
}

// TestFingerprintNegativeDropped: negative-intensity preferences (skipped by
// every TA path) do not contribute to the fingerprint.
func TestFingerprintNegativeDropped(t *testing.T) {
	pool := fpPool(t)
	neg := mustSP(t, `dblp.year=1999`, -0.7)
	_, with := CanonicalProfile([]hypre.ScoredPred{pool[0], neg, pool[1]})
	_, without := CanonicalProfile([]hypre.ScoredPred{pool[0], pool[1]})
	if with != without {
		t.Fatalf("negative preference leaked into fingerprint")
	}
	canon, _ := CanonicalProfile([]hypre.ScoredPred{neg})
	if len(canon) != 0 {
		t.Fatalf("all-negative profile should canonicalize empty, got %d entries", len(canon))
	}
	// Zero intensity is a real grade (it can fill top-k slots) and must stay.
	zero := mustSP(t, `dblp.year=2001`, 0)
	canon, _ = CanonicalProfile([]hypre.ScoredPred{zero})
	if len(canon) != 1 {
		t.Fatalf("zero-intensity preference must survive canonicalization")
	}
}

// TestFingerprintDistinct: random distinct profiles (different predicate
// subsets or different intensities) get distinct fingerprints — 128-bit FNV
// collisions aside, which this seeded draw does not produce.
func TestFingerprintDistinct(t *testing.T) {
	pool := fpPool(t)
	rng := rand.New(rand.NewSource(2))
	seen := map[Fingerprint]string{}
	record := func(canon []hypre.ScoredPred, fp Fingerprint) {
		key := ""
		for _, p := range canon {
			key += p.Pred + "@" + p.Attr + "#"
		}
		if prev, ok := seen[fp]; ok && prev != key {
			t.Fatalf("distinct canonical profiles share a fingerprint:\n%s\n%s", prev, key)
		}
		seen[fp] = key
	}
	// All subsets of the pool (identity by predicate set).
	for mask := 1; mask < 1<<len(pool); mask++ {
		var prof []hypre.ScoredPred
		for i, p := range pool {
			if mask&(1<<i) != 0 {
				prof = append(prof, p)
			}
		}
		canon, fp := CanonicalProfile(prof)
		record(canon, fp)
	}
	// Same subset, perturbed intensity must move the fingerprint.
	for trial := 0; trial < 100; trial++ {
		i := rng.Intn(len(pool))
		bumped := pool[i]
		bumped.Intensity = rng.Float64()
		_, fpA := CanonicalProfile([]hypre.ScoredPred{pool[i]})
		_, fpB := CanonicalProfile([]hypre.ScoredPred{bumped})
		if bumped.Intensity != pool[i].Intensity && fpA == fpB {
			t.Fatalf("intensity change did not move the fingerprint")
		}
	}
}
