package combine

// MemStats is the evaluator-level rollup of bitset.SizeBytes across the
// cached predicate bitmaps, against the footprint the dense word-vector
// representation (one word per 64 dense indices up to the highest set bit)
// would have paid — the before/after of the compressed-container refactor.
//
// A predicate counts as sparse when its cardinality is at most 1/16 of the
// dense dictionary domain: those are the sets the dense representation
// sized by the domain anyway, so they carry the compression win the
// bitmapmem experiment tracks.
type MemStats struct {
	// Preds is the number of cached predicate bitmaps.
	Preds int
	// DictEntries is the dense dictionary size (the bitmaps' domain).
	DictEntries int
	// CompressedBytes / DenseBytes cover every cached bitmap.
	CompressedBytes int64
	DenseBytes      int64
	// SparsePreds and the Sparse* byte totals cover only the sparse subset.
	SparsePreds           int
	SparseCompressedBytes int64
	SparseDenseBytes      int64
}

// MemStats reports the current footprint of the evaluator's bitmap cache.
func (ev *Evaluator) MemStats() MemStats {
	ev.mu.RLock()
	defer ev.mu.RUnlock()
	st := MemStats{DictEntries: ev.dict.Size()}
	sparseCap := ev.dict.Size() / 16
	for _, b := range ev.bits {
		st.Preds++
		cb, db := b.SizeBytes(), b.DenseSizeBytes()
		st.CompressedBytes += cb
		st.DenseBytes += db
		if b.Len() <= sparseCap {
			st.SparsePreds++
			st.SparseCompressedBytes += cb
			st.SparseDenseBytes += db
		}
	}
	return st
}
