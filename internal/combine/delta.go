package combine

import (
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"hypre/internal/bitset"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// This file is the evaluator half of incremental cache maintenance: given
// the set of base-table rows a mutation batch touched, every cached
// predicate bitmap is repaired by re-evaluating exactly those rows through
// relstore.MatchLeftRows (vectorized kernels restricted to the touched
// rows' blocks), instead of rematerializing the predicate with a full scan.
// The delta subsystem in internal/delta drives it from the tables' change
// logs.

// RefreshRows re-evaluates every cached predicate over exactly the given
// base-table rows and patches the cached bitmaps copy-on-write (previously
// handed-out bitmaps stay consistent, the cache swaps to the patched
// clone). It returns the predicates whose tuple sets actually changed —
// the set the pair table needs to recount.
//
// ok=false means the evaluator cannot refresh incrementally (its scan
// plumbing fell back to pid collection at seed time); the caller must
// Invalidate and rematerialize.
//
// The patch is exact when the key attribute is unique per base-table row
// (dblp.pid is the table key): each touched row then owns its dense bit.
// With duplicate keys, a bit shared with an untouched row could be cleared
// spuriously; the delta subsystem documents the uniqueness requirement.
func (ev *Evaluator) RefreshRows(lids []int) (changed []string, ok bool, err error) {
	touched := bitset.New()
	for _, lid := range lids {
		if lid >= 0 {
			touched.Add(lid)
		}
	}
	return ev.RefreshRowSet(touched)
}

// RefreshRowSet is RefreshRows with the touched rows already in compressed
// mask form — the delta maintainer accumulates them that way directly.
func (ev *Evaluator) RefreshRowSet(touched *bitset.Set) (changed []string, ok bool, err error) {
	changed, _, _, _, ok, err = ev.RefreshRowSetDelta(touched)
	return changed, ok, err
}

// RefreshRowSetDelta is RefreshRowSet additionally reporting the delta a
// restricted pair-table recount needs: prev maps every changed predicate to
// its pre-patch bitmap (the cache holds the patched clone; callers handed
// the previous one keep reading it consistently), ids lists, sorted
// ascending and deduplicated, the dense ids where at least one bit actually
// moved, and spans lists their 64k partitions — by construction the only
// places where any changed predicate's old and new bitmaps differ.
func (ev *Evaluator) RefreshRowSetDelta(touched *bitset.Set) (changed []string, prev map[string]*Bitmap, spans []bitset.Span, ids []int32, ok bool, err error) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if len(ev.bits) == 0 {
		return nil, nil, nil, nil, true, nil // nothing cached, nothing stale
	}
	if !ev.seeded || ev.rowDense == nil {
		return nil, nil, nil, nil, false, nil
	}
	tbl := ev.db.Table(ev.seedFrom)
	if tbl == nil {
		return nil, nil, nil, nil, false, nil
	}
	// Extend the row plumbing over rows inserted since the seed (or the
	// last refresh): dense ids stay unassigned until a predicate matches.
	if n := tbl.Len(); n > len(ev.rowDense) {
		keyCol := ev.KeyColumn(ev.seedFrom)
		for lid := len(ev.rowDense); lid < n; lid++ {
			ev.rowDense = append(ev.rowDense, -1)
			ev.pidByRow = append(ev.pidByRow, tbl.Value(lid, keyCol).AsInt())
		}
	}
	if m, has := touched.Max(); has && m >= len(ev.rowDense) {
		touched = touched.Clone()
		touched.Retain(func(lid int) bool { return lid < len(ev.rowDense) })
	}
	nTouched := touched.Len()
	if nTouched == 0 {
		return nil, nil, nil, nil, true, nil
	}

	// Share the join-existence test across predicates: one probe pass
	// computes the touched rows that are live and have a live join partner,
	// and every predicate that reads only base-table columns then
	// re-evaluates joinless against that pre-filtered mask — the join
	// would only have re-asserted existence. Join-side predicates keep the
	// full query.
	baseQ := ev.base(predicate.True{})
	partnered := touched
	if baseQ.Join != nil {
		var err error
		partnered, err = ev.db.MatchLeftRowSet(baseQ, touched)
		if err != nil {
			return nil, nil, nil, nil, false, err
		}
	}
	joinless := relstore.Query{From: baseQ.From}

	// Parallel phase: one block-restricted re-evaluation per cached
	// predicate, fanned over a worker pool exactly like MaterializeAll —
	// the workers only read the store and fields frozen under ev.mu.
	predKeys := make([]string, 0, len(ev.bits))
	for pred := range ev.bits {
		if _, okp := ev.preds[pred]; !okp {
			return nil, nil, nil, nil, false, nil
		}
		predKeys = append(predKeys, pred)
	}
	sels := make([]*bitset.Set, len(predKeys))
	errs := make([]error, len(predKeys))
	scanOne := func(i int) {
		sp := ev.preds[predKeys[i]]
		q := ev.base(sp.P)
		mask := touched
		if q.Join != nil && ev.bindsOnlyBase(sp.P, q) {
			q = joinless
			q.Where = sp.P
			mask = partnered
		}
		sels[i], errs[i] = ev.db.MatchLeftRowSet(q, mask)
	}
	// Small refreshes run serially: each block-restricted scan is a few
	// microseconds, so goroutine wake latency would dominate the pool.
	const parallelRefreshMin = 32
	if len(predKeys) < parallelRefreshMin {
		for i := range predKeys {
			scanOne(i)
		}
	} else {
		workers := ev.workerCount(len(predKeys))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(predKeys) {
						return
					}
					scanOne(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, nil, nil, false, err
		}
	}

	// Serial patch phase: compare each predicate's re-evaluated rows with
	// its cached bitmap, cloning on first difference. Every flipped dense id
	// is recorded (with its 64k span) — the exact places the pair-table
	// recount is allowed to restrict itself to.
	spanSeen := map[bitset.Span]bool{}
	idSeen := map[int32]struct{}{}
	for i, pred := range predKeys {
		bm := ev.bits[pred]
		sel := sels[i]
		// Desired membership per dense id: OR over the touched rows mapping
		// to it, so a delete+reinsert of the same pid within one batch
		// cannot clear a bit its replacement row still owns.
		desired := make(map[int32]bool, nTouched)
		order := make([]int32, 0, nTouched)
		touched.ForEach(func(lid int) bool {
			want := sel.Contains(lid)
			di := ev.rowDense[lid]
			if di < 0 {
				if !want {
					return true
				}
				di = int32(ev.dict.Add(ev.pidByRow[lid]))
				ev.rowDense[lid] = di
			}
			if _, seen := desired[di]; !seen {
				order = append(order, di)
			}
			desired[di] = desired[di] || want
			return true
		})
		var patched *Bitmap
		for _, di := range order {
			want := desired[di]
			cur := bm.Contains(int(di))
			if patched != nil {
				cur = patched.Contains(int(di))
			}
			if cur == want {
				continue
			}
			if patched == nil {
				patched = bm.Clone()
			}
			if want {
				patched.Set(int(di))
			} else {
				patched.Clear(int(di))
			}
			spanSeen[bitset.SpanOf(int(di))] = true
			idSeen[di] = struct{}{}
		}
		if patched != nil {
			if prev == nil {
				prev = make(map[string]*Bitmap)
			}
			prev[pred] = bm
			ev.bits[pred] = patched
			delete(ev.sets, pred) // the sorted view is stale; re-derive lazily
			changed = append(changed, pred)
		}
	}
	spans = make([]bitset.Span, 0, len(spanSeen))
	for sp := range spanSeen {
		spans = append(spans, sp)
	}
	slices.Sort(spans)
	ids = make([]int32, 0, len(idSeen))
	for di := range idSeen {
		ids = append(ids, di)
	}
	slices.Sort(ids)
	return changed, prev, spans, ids, true, nil
}

// Invalidate drops every cached predicate set and the scan plumbing, so the
// next materialization rebuilds from the store's current state. The pid
// dictionary is retained: dense ids are stable across rebuilds, which keeps
// previously handed-out bitmaps and trackers dimensionally compatible.
func (ev *Evaluator) Invalidate() {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	ev.sets = make(map[string]IntSet)
	ev.bits = make(map[string]*Bitmap)
	ev.preds = make(map[string]hypre.ScoredPred)
	ev.seeded = false
	ev.rowDense, ev.pidByRow = nil, nil
	ev.seedFrom = ""
}

// bindsOnlyBase reports whether every attribute of p resolves to the base
// (left) table under the store's binding rules — qualified names bind to
// the named table, bare names bind left-first — so the predicate's delta
// re-evaluation can drop the join and rely on the shared partner mask.
// Attributes that resolve to no table are constant-false under either query
// shape, so they don't block the rewrite.
func (ev *Evaluator) bindsOnlyBase(p predicate.Predicate, q relstore.Query) bool {
	left := ev.db.Table(q.From)
	if left == nil {
		return false
	}
	var right *relstore.Table
	if q.Join != nil {
		right = ev.db.Table(q.Join.Table)
	}
	for _, a := range p.Attributes(nil) {
		if i := strings.LastIndexByte(a, '.'); i >= 0 {
			tbl, col := a[:i], a[i+1:]
			if tbl == q.From {
				continue // binds left (or nowhere): joinless-safe
			}
			if right != nil && tbl == q.Join.Table && right.ColumnIndex(col) >= 0 {
				return false
			}
			continue
		}
		if left.ColumnIndex(a) >= 0 {
			continue
		}
		if right != nil && right.ColumnIndex(a) >= 0 {
			return false
		}
	}
	return true
}

// KeyColumn resolves the key attribute to a bare column name of the given
// base table (qualified names strip their matching table prefix, mirroring
// how the row scan binds the attribute). The delta maintainer uses it to
// locate the key column whose rewrite forces a full rebuild.
func (ev *Evaluator) KeyColumn(table string) string {
	attr := ev.keyAttr
	if i := strings.LastIndexByte(attr, '.'); i >= 0 && attr[:i] == table {
		return attr[i+1:]
	}
	return attr
}
