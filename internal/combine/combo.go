// Package combine implements the preference-combination algorithms of
// Chapter 5: Combine-Two (Algorithms 2/3), Partially-Combine-All
// (Algorithm 4), Bias-Random-Selection (Algorithm 5), and the Complete and
// Approximate PEPS Top-K algorithms (Algorithm 6), together with the
// combination evaluator that runs preference-enhanced queries against the
// relational store.
package combine

import (
	"strings"

	"hypre/internal/hypre"
	"hypre/internal/predicate"
)

// Combo is a preference combination in the mixed-clause normal form of
// §4.6: preferences on the same attribute are OR-ed within a group, groups
// are AND-ed together. Every combination the Chapter 5 algorithms build has
// this shape (a pure AND combination has single-member groups only).
type Combo struct {
	Groups [][]hypre.ScoredPred
}

// NewCombo starts a combination from a single preference.
func NewCombo(p hypre.ScoredPred) Combo {
	return Combo{Groups: [][]hypre.ScoredPred{{p}}}
}

// And returns a new combination with p appended as its own AND-ed group
// (the AND() helper of Algorithms 2–4).
func (c Combo) And(p hypre.ScoredPred) Combo {
	groups := cloneGroups(c.Groups)
	groups = append(groups, []hypre.ScoredPred{p})
	return Combo{Groups: groups}
}

// Or returns a new combination with p OR-ed into the group holding its
// attribute; if no group matches, p forms a new group (degenerating to
// And). This is the OR() helper of Algorithms 2 and 4.
func (c Combo) Or(p hypre.ScoredPred) Combo {
	groups := cloneGroups(c.Groups)
	for gi, g := range groups {
		if len(g) > 0 && g[0].Attr != "" && g[0].Attr == p.Attr {
			groups[gi] = append(append([]hypre.ScoredPred(nil), g...), p)
			return Combo{Groups: groups}
		}
	}
	groups = append(groups, []hypre.ScoredPred{p})
	return Combo{Groups: groups}
}

func cloneGroups(gs [][]hypre.ScoredPred) [][]hypre.ScoredPred {
	out := make([][]hypre.ScoredPred, len(gs))
	for i, g := range gs {
		out[i] = append([]hypre.ScoredPred(nil), g...)
	}
	return out
}

// NumPreds counts the member preferences.
func (c Combo) NumPreds() int {
	n := 0
	for _, g := range c.Groups {
		n += len(g)
	}
	return n
}

// HasAttr reports whether the combination already constrains attr.
func (c Combo) HasAttr(attr string) bool {
	for _, g := range c.Groups {
		for _, p := range g {
			if p.Attr == attr {
				return true
			}
		}
	}
	return false
}

// HasPred reports whether the combination already contains the predicate.
func (c Combo) HasPred(pred string) bool {
	for _, g := range c.Groups {
		for _, p := range g {
			if p.Pred == pred {
				return true
			}
		}
	}
	return false
}

// HasAnd reports whether the combination conjoins at least two groups — the
// "lastCombination contains AND" test of Algorithm 4.
func (c Combo) HasAnd() bool { return len(c.Groups) >= 2 }

// Intensity computes the combined intensity value: f∨ folded within each
// group (in member order, which the algorithms keep descending) and f∧
// across groups (order-free by Proposition 1).
func (c Combo) Intensity() float64 {
	groupVals := make([]float64, len(c.Groups))
	for i, g := range c.Groups {
		vals := make([]float64, len(g))
		for j, p := range g {
			vals[j] = p.Intensity
		}
		groupVals[i] = hypre.FOrSeq(vals...)
	}
	return hypre.FAndAll(groupVals...)
}

// Where builds the SQL predicate tree for the combination.
func (c Combo) Where() predicate.Predicate {
	kids := make([]predicate.Predicate, 0, len(c.Groups))
	for _, g := range c.Groups {
		ps := make([]predicate.Predicate, len(g))
		for i, p := range g {
			ps[i] = p.P
		}
		kids = append(kids, predicate.NewOr(ps...))
	}
	return predicate.NewAnd(kids...)
}

// Preds flattens the member preferences in group order.
func (c Combo) Preds() []hypre.ScoredPred {
	var out []hypre.ScoredPred
	for _, g := range c.Groups {
		out = append(out, g...)
	}
	return out
}

// Key returns a canonical identity for deduplication: group structure is
// flattened to the sorted member predicate list per group, groups sorted.
func (c Combo) Key() string {
	groups := make([]string, len(c.Groups))
	for i, g := range c.Groups {
		members := make([]string, len(g))
		for j, p := range g {
			members[j] = p.Pred
		}
		sortStrings(members)
		groups[i] = strings.Join(members, "|")
	}
	sortStrings(groups)
	return strings.Join(groups, "&")
}

// String renders the combination as a WHERE fragment.
func (c Combo) String() string { return c.Where().String() }

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Record is one output row of every Chapter 5 algorithm:
// <#predicates used, #tuples returned, combined intensity value>.
type Record struct {
	NumPreds  int
	NumTuples int
	Intensity float64
	Combo     Combo
	// Tuples is the distinct tuple-id set the combination matched, in pid
	// order (filled by Evaluator.Run from the combination's bitmap). PEPS
	// itself now credits tuples straight from the bitmaps — this slice view
	// serves the other Chapter 5 algorithms, the experiments, and the
	// equivalence oracles.
	Tuples IntSet
	// AnchorIndex / PartnerIndex identify the input positions for
	// Combine-Two (the "first/second/third preference" series of Fig. 29);
	// other algorithms leave them 0.
	AnchorIndex  int
	PartnerIndex int
}

// Records is a helper slice with the orderings the experiments need.
type Records []Record

// FilterApplicable drops combinations that returned no tuples
// (Definition 15: an applicable combination returns at least one tuple).
func (rs Records) FilterApplicable() Records {
	out := make(Records, 0, len(rs))
	for _, r := range rs {
		if r.NumTuples > 0 {
			out = append(out, r)
		}
	}
	return out
}

// ByNumPreds selects the records that used exactly n predicates, in
// original (combination) order — the "combination order" x-axis of
// Figs. 18–25 and 32–34.
func (rs Records) ByNumPreds(n int) Records {
	out := Records{}
	for _, r := range rs {
		if r.NumPreds == n {
			out = append(out, r)
		}
	}
	return out
}

// MaxIntensity returns the best combined intensity among the records
// (0 for empty).
func (rs Records) MaxIntensity() float64 {
	best := 0.0
	for _, r := range rs {
		if r.Intensity > best {
			best = r.Intensity
		}
	}
	return best
}
