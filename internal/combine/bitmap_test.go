package combine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func bitmapFromPids(d *PidDict, pids []int64) *Bitmap {
	b := NewBitmap()
	seen := map[int64]bool{}
	for _, p := range pids {
		if seen[p] {
			continue
		}
		seen[p] = true
		b.Set(d.Add(p))
	}
	return b
}

func TestPidDictRoundTrip(t *testing.T) {
	d := NewPidDict()
	pids := []int64{42, 7, 42, 9000000000, 7, 0}
	for _, p := range pids {
		d.Add(p)
	}
	if d.Size() != 4 {
		t.Fatalf("size = %d, want 4", d.Size())
	}
	for _, p := range []int64{42, 7, 9000000000, 0} {
		if d.PID(d.Add(p)) != p {
			t.Errorf("round trip broke for %d", p)
		}
	}
}

func TestBitmapBasicOps(t *testing.T) {
	d := NewPidDict()
	a := bitmapFromPids(d, []int64{1, 2, 3, 4})
	b := bitmapFromPids(d, []int64{3, 4, 5})
	if got := a.And(b).Len(); got != 2 {
		t.Errorf("And len = %d", got)
	}
	if got := a.AndCard(b); got != 2 {
		t.Errorf("AndCard = %d", got)
	}
	if got := a.Or(b).Len(); got != 5 {
		t.Errorf("Or len = %d", got)
	}
	if got := a.AndNot(b).Len(); got != 2 {
		t.Errorf("AndNot len = %d", got)
	}
	if !a.Any(b) {
		t.Error("Any false negative")
	}
	c := bitmapFromPids(d, []int64{9, 10})
	if a.Any(c) {
		t.Error("Any false positive")
	}
	if a.AndCard(NewBitmap()) != 0 || NewBitmap().Any(a) {
		t.Error("empty operand")
	}
	set := a.ToIntSet(d)
	want := IntSet{1, 2, 3, 4}
	if set.Len() != 4 {
		t.Fatalf("ToIntSet = %v", set)
	}
	for i := range want {
		if set[i] != want[i] {
			t.Fatalf("ToIntSet = %v, want %v", set, want)
		}
	}
}

// TestBitmapSetContains exercises growth across word boundaries and the
// cardinality cache.
func TestBitmapSetContains(t *testing.T) {
	b := NewBitmap()
	for _, i := range []int{0, 63, 64, 127, 500} {
		b.Set(i)
		b.Set(i) // idempotent
	}
	if b.Len() != 5 {
		t.Fatalf("card = %d", b.Len())
	}
	for _, i := range []int{0, 63, 64, 127, 500} {
		if !b.Contains(i) {
			t.Errorf("missing %d", i)
		}
	}
	for _, i := range []int{1, 62, 65, 501, 10000} {
		if b.Contains(i) {
			t.Errorf("phantom %d", i)
		}
	}
}

// TestBitmapMatchesIntSetProperty is the load-bearing agreement property of
// the set layer: Bitmap and slice IntSet must produce identical results for
// Union/Intersect/Minus/IntersectsAny over randomized inputs, including
// operands built against a shared dictionary at different growth stages
// (different word lengths).
func TestBitmapMatchesIntSetProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		ax := make([]int64, len(xs))
		for i, x := range xs {
			ax[i] = int64(x)
		}
		ay := make([]int64, len(ys))
		for i, y := range ys {
			ay[i] = int64(y)
		}
		sa, sb := NewIntSet(ax), NewIntSet(ay)

		d := NewPidDict()
		ba := bitmapFromPids(d, ax)
		bb := bitmapFromPids(d, ay)

		eq := func(bm *Bitmap, s IntSet) bool {
			got := bm.ToIntSet(d)
			if len(got) != len(s) || bm.Len() != s.Len() {
				return false
			}
			for i := range s {
				if got[i] != s[i] {
					return false
				}
			}
			return true
		}
		return eq(ba.And(bb), sa.Intersect(sb)) &&
			eq(ba.Or(bb), sa.Union(sb)) &&
			eq(ba.AndNot(bb), sa.Minus(sb)) &&
			ba.Any(bb) == sa.IntersectsAny(sb) &&
			ba.AndCard(bb) == sa.Intersect(sb).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGallopingIntersectLopsided forces the galloping path (large/small
// ratio beyond gallopFactor) and checks it against the linear merge result
// and the bitmap path.
func TestGallopingIntersectLopsided(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		small := make([]int64, 1+rng.Intn(10))
		for i := range small {
			small[i] = int64(rng.Intn(100000))
		}
		large := make([]int64, gallopFactor*len(small)+1+rng.Intn(5000))
		for i := range large {
			large[i] = int64(rng.Intn(100000))
		}
		a, b := NewIntSet(small), NewIntSet(large)
		if len(b) < gallopFactor*len(a) {
			continue // dedupe may have shrunk below the gallop threshold
		}

		// Reference: map-based intersection.
		in := map[int64]bool{}
		for _, v := range a {
			in[v] = true
		}
		var want []int64
		for _, v := range b {
			if in[v] {
				want = append(want, v)
			}
		}
		ref := NewIntSet(want)

		got := a.Intersect(b)
		if got.Len() != ref.Len() {
			t.Fatalf("trial %d: gallop len=%d want %d", trial, got.Len(), ref.Len())
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: gallop mismatch at %d", trial, i)
			}
		}
		// Symmetric call hits the same path via the small/large swap.
		got2 := b.Intersect(a)
		if got2.Len() != ref.Len() {
			t.Fatalf("trial %d: swapped gallop len=%d", trial, got2.Len())
		}
		if a.IntersectsAny(b) != (ref.Len() > 0) {
			t.Fatalf("trial %d: IntersectsAny disagrees", trial)
		}
	}
}

func TestGallopSearch(t *testing.T) {
	s := IntSet{2, 4, 4, 8, 16, 32, 64, 128}
	cases := []struct {
		from int
		v    int64
		want int
	}{
		{0, 1, 0}, {0, 2, 0}, {0, 3, 1}, {0, 128, 7}, {0, 129, 8},
		{3, 5, 3}, {8, 1, 8},
	}
	for _, c := range cases {
		if got := gallopSearch(s, c.from, c.v); got != c.want {
			t.Errorf("gallopSearch(from=%d, v=%d) = %d, want %d", c.from, c.v, got, c.want)
		}
	}
}
