package combine

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"hypre/internal/bitset"
	"hypre/internal/hypre"
	"hypre/internal/predicate"
	"hypre/internal/relstore"
)

// shardWorkerCounts is the sweep every sharding equivalence test runs:
// serial, minimal parallelism, the machine's width, and a count far above
// both the span and anchor counts (oversubscription must degrade to
// clamping, never to divergence).
func shardWorkerCounts() []int {
	return []int{1, 2, runtime.NumCPU(), 64}
}

// bigShardDB builds a joinless store wide enough that the evaluator's dense
// dictionary spans several 64k containers — the regime where the partition
// layer shards across real span boundaries rather than degenerating to
// anchor parallelism.
func bigShardDB(tb testing.TB, rows int, seed int64) *relstore.DB {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := relstore.NewDB()
	tbl, err := db.CreateTable("dblp",
		relstore.Column{Name: "pid", Kind: predicate.KindInt},
		relstore.Column{Name: "venue", Kind: predicate.KindString},
		relstore.Column{Name: "year", Kind: predicate.KindInt},
		relstore.Column{Name: "score", Kind: predicate.KindFloat},
	)
	if err != nil {
		tb.Fatal(err)
	}
	venues := []string{"VLDB", "SIGMOD", "ICDE", "KDD", "WWW", "CHI"}
	for r := 0; r < rows; r++ {
		if _, err := tbl.Insert(
			predicate.Int(int64(r)),
			predicate.String(venues[rng.Intn(len(venues))]),
			predicate.Int(int64(1990+rng.Intn(30))),
			predicate.Float(rng.Float64()*10),
		); err != nil {
			tb.Fatal(err)
		}
	}
	return db
}

func flatBaseQuery(w predicate.Predicate) relstore.Query {
	return relstore.Query{From: "dblp", Where: w}
}

// bigShardProfile mixes broad and selective predicates so the dense
// dictionary covers every row (multi-span bitmaps) while pair counts stay
// non-trivial.
func bigShardProfile(tb testing.TB) []hypre.ScoredPred {
	tb.Helper()
	specs := []struct {
		pred string
		in   float64
	}{
		{`dblp.year>=1990`, 0.93},
		{`dblp.venue="VLDB"`, 0.88},
		{`dblp.year>=2010`, 0.8},
		{`dblp.score<2.5`, 0.74},
		{`dblp.venue="SIGMOD"`, 0.66},
		{`dblp.year BETWEEN 1995 AND 2005`, 0.58},
		{`dblp.venue IN ("KDD","WWW")`, 0.52},
		{`dblp.score>=7.5`, 0.45},
		{`NOT (dblp.venue="CHI")`, 0.36},
		{`dblp.year<1993`, 0.28},
		{`dblp.venue="ICDE" AND dblp.year>=2000`, 0.2},
		{`dblp.score BETWEEN 4 AND 6`, 0.12},
	}
	out := make([]hypre.ScoredPred, len(specs))
	for i, s := range specs {
		sp, err := hypre.NewScoredPred(s.pred, s.in)
		if err != nil {
			tb.Fatal(err)
		}
		out[i] = sp
	}
	return out
}

const bigShardRows = 2*65536 + 9000 // dense dictionary spans 3 containers

func bigShardEvaluator(tb testing.TB, db *relstore.DB, workers int) *Evaluator {
	ev := NewEvaluator(db, flatBaseQuery, "dblp.pid")
	ev.Workers = workers
	return ev
}

func assertSamePredSets(t *testing.T, tag string, profile []hypre.ScoredPred, want, got *Evaluator) {
	t.Helper()
	for _, p := range profile {
		ws, err := want.PredSet(p)
		if err != nil {
			t.Fatal(err)
		}
		gs, err := got.PredSet(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != len(gs) {
			t.Fatalf("%s: %s: %d pids, want %d", tag, p.Pred, len(gs), len(ws))
		}
		for i := range ws {
			if ws[i] != gs[i] {
				t.Fatalf("%s: %s: pid[%d]=%d, want %d", tag, p.Pred, i, gs[i], ws[i])
			}
		}
	}
	if want.Dict().Size() != got.Dict().Size() {
		t.Fatalf("%s: dict size %d, want %d", tag, got.Dict().Size(), want.Dict().Size())
	}
	for i := 0; i < want.Dict().Size(); i++ {
		if want.Dict().PID(i) != got.Dict().PID(i) {
			t.Fatalf("%s: dense slot %d holds pid %d, want %d", tag, i, got.Dict().PID(i), want.Dict().PID(i))
		}
	}
}

func assertSamePairs(t *testing.T, tag string, want, got *PairTable) {
	t.Helper()
	if len(want.Pairs) != len(got.Pairs) {
		t.Fatalf("%s: %d pairs, want %d", tag, len(got.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		if want.Pairs[i] != got.Pairs[i] {
			t.Fatalf("%s: pair[%d]=%+v, want %+v", tag, i, got.Pairs[i], want.Pairs[i])
		}
	}
}

func assertSameTopK(t *testing.T, tag string, want, got TopKResult) {
	t.Helper()
	if got.AnchorsUsed != want.AnchorsUsed {
		t.Fatalf("%s: AnchorsUsed=%d, want %d", tag, got.AnchorsUsed, want.AnchorsUsed)
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("%s: %d tuples, want %d", tag, len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		if want.Tuples[i] != got.Tuples[i] {
			t.Fatalf("%s: rank %d: %+v, want %+v", tag, i, got.Tuples[i], want.Tuples[i])
		}
	}
}

// TestShardedEvalMultiSpanMatchesSerial is the multi-span acceptance
// property: over a store whose dense dictionary crosses container
// boundaries, sharded MaterializeAll, the span-sharded pair-table build,
// and span-sharded PEPS are byte-identical to the serial path across shard
// counts {1, 2, NumCPU, 64}.
func TestShardedEvalMultiSpanMatchesSerial(t *testing.T) {
	db := bigShardDB(t, bigShardRows, 3)
	profile := bigShardProfile(t)

	serial := bigShardEvaluator(t, db, 1)
	serialPT, err := BuildPairTable(profile, serial)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Dict().Size() <= 2*65536 {
		t.Fatalf("fixture too small: dict %d ids does not cross two span boundaries", serial.Dict().Size())
	}

	for _, workers := range shardWorkerCounts()[1:] {
		tag := fmt.Sprintf("workers=%d", workers)
		ev := bigShardEvaluator(t, db, workers)
		pt, err := BuildPairTable(profile, ev)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePredSets(t, tag, profile, serial, ev)
		assertSamePairs(t, tag, serialPT, pt)
	}

	for _, workers := range shardWorkerCounts() {
		ev := bigShardEvaluator(t, db, workers)
		pt, err := BuildPairTable(profile, ev)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 10, 500} {
			for _, v := range []Variant{Complete, Approximate} {
				tag := fmt.Sprintf("workers=%d k=%d %s", workers, k, v)
				want, err := PEPS(profile, pt, ev, k, v)
				if err != nil {
					t.Fatal(err)
				}
				got, err := PEPSSharded(profile, pt, ev, k, v)
				if err != nil {
					t.Fatal(err)
				}
				assertSameTopK(t, tag, want, got)
			}
		}
	}
}

// TestShardedEvalRandomProfiles fuzzes the sharded paths on the Table 6
// fixture: random profiles (random predicate subsets, random intensities),
// every shard count, both variants — pair tables and top-k rankings must
// match the serial algorithms exactly.
func TestShardedEvalRandomProfiles(t *testing.T) {
	pool := []string{
		`dblp.venue="VLDB"`, `dblp.venue="PVLDB"`, `dblp.venue="SIGMOD"`,
		`dblp.venue="INFOCOM"`, `dblp_author.aid=1`, `dblp_author.aid=2`,
		`dblp_author.aid=3`, `dblp_author.aid=6`, `dblp.year>=2009`,
		`dblp.year<2008`, `dblp.year BETWEEN 2006 AND 2010`,
		`dblp.venue IN ("VLDB", "PVLDB")`, `NOT (dblp.venue="VLDB")`,
	}
	rng := rand.New(rand.NewSource(17))
	db := testDB(t)
	for trial := 0; trial < 25; trial++ {
		perm := rng.Perm(len(pool))
		n := 3 + rng.Intn(len(pool)-3)
		profile := make([]hypre.ScoredPred, 0, n)
		intensity := 0.99
		for _, pi := range perm[:n] {
			sp, err := hypre.NewScoredPred(pool[pi], intensity)
			if err != nil {
				t.Fatal(err)
			}
			profile = append(profile, sp)
			intensity *= 0.8 + 0.15*rng.Float64()
		}
		serial := NewEvaluator(db, baseQuery, "dblp.pid")
		serial.Workers = 1
		serialPT, err := BuildPairTable(profile, serial)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(12)
		for _, workers := range shardWorkerCounts() {
			tag := fmt.Sprintf("trial %d workers=%d k=%d", trial, workers, k)
			ev := NewEvaluator(db, baseQuery, "dblp.pid")
			ev.Workers = workers
			pt, err := BuildPairTable(profile, ev)
			if err != nil {
				t.Fatal(err)
			}
			assertSamePairs(t, tag, serialPT, pt)
			for _, v := range []Variant{Complete, Approximate} {
				want, err := PEPS(profile, pt, ev, k, v)
				if err != nil {
					t.Fatal(err)
				}
				got, err := PEPSSharded(profile, pt, ev, k, v)
				if err != nil {
					t.Fatal(err)
				}
				assertSameTopK(t, tag+" "+v.String(), want, got)
			}
		}
	}
}

// TestRefreshSpansMatchesRefresh mutates a multi-span store and proves the
// restricted pair recounts — RefreshSpans over the partitions the patch
// touched and RefreshIDs over the exact flipped dense ids — are
// byte-identical both to the whole-set Refresh and to a from-scratch pair
// table over the mutated store.
func TestRefreshSpansMatchesRefresh(t *testing.T) {
	db := bigShardDB(t, bigShardRows, 9)
	profile := bigShardProfile(t)
	ev := bigShardEvaluator(t, db, runtime.NumCPU())
	pt, err := BuildPairTable(profile, ev)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	tbl := db.Table("dblp")
	touched := relstoreTouched(t, tbl, rng, 300)

	changed, prev, spans, ids, ok, err := ev.RefreshRowSetDelta(touched)
	if err != nil || !ok {
		t.Fatalf("refresh: ok=%v err=%v", ok, err)
	}
	if len(changed) == 0 || len(spans) == 0 || len(ids) == 0 {
		t.Fatalf("mutations changed nothing: %d preds, %d spans, %d ids", len(changed), len(spans), len(ids))
	}
	whole, err := pt.Refresh(ev, changed)
	if err != nil {
		t.Fatal(err)
	}
	spanwise, err := pt.RefreshSpans(ev, prev, spans)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "RefreshSpans vs Refresh", whole, spanwise)
	idwise, err := pt.RefreshIDs(ev, prev, ids)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "RefreshIDs vs Refresh", whole, idwise)

	fresh := bigShardEvaluator(t, db, 1)
	freshPT, err := BuildPairTable(profile, fresh)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, "RefreshSpans vs fresh build", freshPT, spanwise)
}

// relstoreTouched applies a random mutation batch (updates, deletes,
// inserts; never the key column) and returns the touched-row mask.
func relstoreTouched(t *testing.T, tbl *relstore.Table, rng *rand.Rand, ops int) *bitset.Set {
	t.Helper()
	touched := bitset.New()
	venues := []string{"VLDB", "SIGMOD", "ICDE", "KDD", "WWW", "CHI"}
	n := tbl.Len()
	for i := 0; i < ops; i++ {
		switch rng.Intn(4) {
		case 0: // venue rewrite
			r := rng.Intn(n)
			if err := tbl.UpdateCol(r, "venue", predicate.String(venues[rng.Intn(len(venues))])); err == nil {
				touched.Add(r)
			}
		case 1: // year rewrite
			r := rng.Intn(n)
			if err := tbl.UpdateCol(r, "year", predicate.Int(int64(1990+rng.Intn(30)))); err == nil {
				touched.Add(r)
			}
		case 2: // delete
			r := rng.Intn(n)
			if tbl.Delete(r) {
				touched.Add(r)
			}
		default: // insert
			id, err := tbl.Insert(
				predicate.Int(int64(1_000_000+i)),
				predicate.String(venues[rng.Intn(len(venues))]),
				predicate.Int(int64(1990+rng.Intn(30))),
				predicate.Float(rng.Float64()*10),
			)
			if err != nil {
				t.Fatal(err)
			}
			touched.Add(id)
		}
	}
	return touched
}
