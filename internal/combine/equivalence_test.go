package combine

import (
	"math/rand"
	"testing"

	"hypre/internal/hypre"
)

// TestRandomComboSetEqualsSQL fuzzes the set-algebra evaluator against the
// per-group SQL path on randomly built combinations over the Table 6
// fixture — the load-bearing equivalence behind the pre-computed pair table.
func TestRandomComboSetEqualsSQL(t *testing.T) {
	ev := testEvaluator(t)
	pool := []hypre.ScoredPred{
		mustSP(t, `dblp.venue="VLDB"`, 0.50),
		mustSP(t, `dblp.venue="PVLDB"`, 0.45),
		mustSP(t, `dblp.venue="SIGMOD"`, 0.40),
		mustSP(t, `dblp.venue="INFOCOM"`, 0.35),
		mustSP(t, `dblp_author.aid=1`, 0.30),
		mustSP(t, `dblp_author.aid=2`, 0.25),
		mustSP(t, `dblp_author.aid=3`, 0.20),
		mustSP(t, `dblp_author.aid=6`, 0.15),
		mustSP(t, `dblp.year>=2009`, 0.10),
		mustSP(t, `dblp.year<2008`, 0.05),
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		// Random combo: 1-5 preferences, randomly And-ed or Or-ed in.
		c := NewCombo(pool[rng.Intn(len(pool))])
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			p := pool[rng.Intn(len(pool))]
			if c.HasPred(p.Pred) {
				continue
			}
			if rng.Intn(2) == 0 {
				c = c.And(p)
			} else {
				c = c.Or(p)
			}
		}
		setN, err := ev.Count(c)
		if err != nil {
			t.Fatal(err)
		}
		sqlN, err := ev.CountSQL(c)
		if err != nil {
			t.Fatal(err)
		}
		if setN != sqlN {
			t.Fatalf("trial %d: set=%d sql=%d for %s", trial, setN, sqlN, c)
		}
	}
}

// TestComboIntensityInvariants fuzzes structural invariants of the
// combination algebra: adding an AND group never lowers the combined
// intensity (inflationary), OR-ing into a group never raises it above the
// group's previous fold (reserved).
func TestComboIntensityInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(attr string, id int, in float64) hypre.ScoredPred {
		return mustSP(t, attr+"="+itoa(id), in)
	}
	for trial := 0; trial < 200; trial++ {
		c := NewCombo(mk("dblp_author.aid", rng.Intn(100), rng.Float64()))
		for i := 0; i < 4; i++ {
			before := c.Intensity()
			p := mk("dblp_author.aid", 100+trial*10+i, rng.Float64())
			and := c.And(p)
			if and.Intensity() < before-1e-12 {
				t.Fatalf("AND deflated: %v -> %v", before, and.Intensity())
			}
			// OR folds p into the first group carrying its attribute: the
			// combined intensity moves toward p relative to that group's
			// previous f∨ fold (reserved behaviour), monotonically through
			// f∧. Compare against the receiving group's fold, not the
			// overall value.
			groupFold := receivingGroupFold(c, p)
			or := c.Or(p)
			switch {
			case p.Intensity <= groupFold && or.Intensity() > before+1e-12:
				t.Fatalf("OR below group fold inflated: %v -> %v (fold %v)",
					before, or.Intensity(), groupFold)
			case p.Intensity >= groupFold && or.Intensity() < before-1e-12:
				t.Fatalf("OR above group fold deflated: %v -> %v (fold %v)",
					before, or.Intensity(), groupFold)
			}
			if rng.Intn(2) == 0 {
				c = and
			} else {
				c = or
			}
		}
	}
}

// receivingGroupFold returns the f∨ fold of the group Or(p) would extend
// (the first group sharing p's attribute), or p's own intensity when no
// group matches (Or degenerates to And with a singleton group).
func receivingGroupFold(c Combo, p hypre.ScoredPred) float64 {
	for _, g := range c.Groups {
		if len(g) > 0 && g[0].Attr != "" && g[0].Attr == p.Attr {
			vals := make([]float64, len(g))
			for i, m := range g {
				vals[i] = m.Intensity
			}
			return hypre.FOrSeq(vals...)
		}
	}
	return p.Intensity
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
