package combine

import (
	"math/rand"
	"strings"
	"testing"

	"hypre/internal/hypre"
)

// profileUID2 mirrors the Table 7 profile of uid=2: two venue preferences
// and two author preferences, descending by intensity.
func profileUID2(t *testing.T) []hypre.ScoredPred {
	t.Helper()
	return []hypre.ScoredPred{
		mustSP(t, `dblp.venue="INFOCOM"`, 0.23),
		mustSP(t, `dblp_author.aid=2`, 0.19),
		mustSP(t, `dblp.venue="PVLDB"`, 0.14),
		mustSP(t, `dblp_author.aid=6`, 0.12),
	}
}

func TestEvaluatorPredSetMatchesSQL(t *testing.T) {
	ev := testEvaluator(t)
	for _, p := range profileUID2(t) {
		set, err := ev.PredSet(p)
		if err != nil {
			t.Fatal(err)
		}
		sql, err := ev.CountSQL(NewCombo(p))
		if err != nil {
			t.Fatal(err)
		}
		if set.Len() != sql {
			t.Errorf("%s: set=%d sql=%d", p.Pred, set.Len(), sql)
		}
	}
}

func TestEvaluatorComboMatchesSQL(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	combos := []Combo{
		NewCombo(prefs[0]).And(prefs[1]),
		NewCombo(prefs[0]).Or(prefs[2]),
		NewCombo(prefs[0]).And(prefs[1]).Or(prefs[3]),
		NewCombo(prefs[1]).And(prefs[3]), // two author predicates ANDed
	}
	for _, c := range combos {
		setN, err := ev.Count(c)
		if err != nil {
			t.Fatal(err)
		}
		sqlN, err := ev.CountSQL(c)
		if err != nil {
			t.Fatal(err)
		}
		if setN != sqlN {
			t.Errorf("%s: set=%d sql=%d", c, setN, sqlN)
		}
	}
}

func TestEvaluatorCaching(t *testing.T) {
	ev := testEvaluator(t)
	p := mustSP(t, `dblp.venue="VLDB"`, 0.5)
	if _, err := ev.PredSet(p); err != nil {
		t.Fatal(err)
	}
	q1 := ev.Queries
	if _, err := ev.PredSet(p); err != nil {
		t.Fatal(err)
	}
	if ev.Queries != q1 {
		t.Error("cache miss on repeated PredSet")
	}
}

func TestCombineTwoANDCounts(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	recs, err := CombineTwo(prefs, ev, SemanticsAND)
	if err != nil {
		t.Fatal(err)
	}
	// O(N^2): exactly C(4,2) = 6 pairs.
	if len(recs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(recs))
	}
	// Every record must carry 2 predicates and f∧ intensity.
	for _, r := range recs {
		if r.NumPreds != 2 {
			t.Errorf("NumPreds = %d", r.NumPreds)
		}
		ps := r.Combo.Preds()
		if !almostEq(r.Intensity, hypre.FAndAll(ps[0].Intensity, ps[1].Intensity)) &&
			len(r.Combo.Groups) == 2 {
			t.Errorf("intensity mismatch for %s", r.Combo)
		}
	}
	// Starvation: INFOCOM AND PVLDB returns nothing (a paper appears in one
	// venue).
	for _, r := range recs {
		if r.AnchorIndex == 0 && r.PartnerIndex == 2 && r.NumTuples != 0 {
			t.Errorf("venue∧venue should starve, got %d tuples", r.NumTuples)
		}
	}
	// INFOCOM AND aid=6 must be applicable (papers 8, 9).
	found := false
	for _, r := range recs {
		if r.AnchorIndex == 0 && r.PartnerIndex == 3 {
			found = true
			if r.NumTuples != 2 {
				t.Errorf("INFOCOM∧aid6 = %d tuples, want 2", r.NumTuples)
			}
		}
	}
	if !found {
		t.Error("pair (0,3) missing")
	}
}

func TestCombineTwoANDORUsesOrOnSameAttr(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	recs, err := CombineTwo(prefs, ev, SemanticsANDOR)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		ps := r.Combo.Preds()
		sameAttr := ps[0].Attr == ps[1].Attr
		if sameAttr && len(r.Combo.Groups) != 1 {
			t.Errorf("same-attr pair not OR-ed: %s", r.Combo)
		}
		if !sameAttr && len(r.Combo.Groups) != 2 {
			t.Errorf("cross-attr pair not AND-ed: %s", r.Combo)
		}
		// OR pairs never starve if either side matches.
		if sameAttr && r.NumTuples == 0 {
			t.Errorf("OR pair starved: %s", r.Combo)
		}
	}
	// AND_OR vs AND: the venue+venue pair flips from 0 tuples to many.
	andRecs, _ := CombineTwo(prefs, ev, SemanticsAND)
	var andVV, orVV int
	for i, r := range recs {
		if r.AnchorIndex == 0 && r.PartnerIndex == 2 {
			orVV = r.NumTuples
			andVV = andRecs[i].NumTuples
		}
	}
	if andVV != 0 || orVV == 0 {
		t.Errorf("AND=%d OR=%d for venue pair", andVV, orVV)
	}
}

func TestPartiallyCombineAllWorkedExample(t *testing.T) {
	// §5.3.2's example: P1 = venue=INFOCOM, P2 = aid=2, P3 = aid=6.
	ev := testEvaluator(t)
	prefs := []hypre.ScoredPred{
		mustSP(t, `dblp.venue="INFOCOM"`, 0.23),
		mustSP(t, `dblp_author.aid=2`, 0.19),
		mustSP(t, `dblp_author.aid=6`, 0.12),
	}
	recs, err := PartiallyCombineAll(prefs, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("combinations = %d, want 4: %v", len(recs), comboStrings(recs))
	}
	want := []string{
		`dblp.venue="INFOCOM"`,
		`dblp.venue="INFOCOM" AND dblp_author.aid=2`,
		`dblp.venue="INFOCOM" AND dblp_author.aid=6`,
		`dblp.venue="INFOCOM" AND (dblp_author.aid=2 OR dblp_author.aid=6)`,
	}
	for i, w := range want {
		if got := recs[i].Combo.String(); got != w {
			t.Errorf("combination %d = %q, want %q", i+1, got, w)
		}
	}
	// Tuple counts against Table 6's instance: INFOCOM = {8,9};
	// INFOCOM∧aid2 = {9}; INFOCOM∧aid6 = {8,9}; the OR form = {8,9}.
	wantCounts := []int{2, 1, 2, 2}
	for i, w := range wantCounts {
		if recs[i].NumTuples != w {
			t.Errorf("combination %d tuples = %d, want %d", i+1, recs[i].NumTuples, w)
		}
	}
}

func TestPartiallyCombineAllSingleAttrLinear(t *testing.T) {
	// Proposition 5 best case [1]: all same attribute -> N combinations.
	ev := testEvaluator(t)
	prefs := []hypre.ScoredPred{
		mustSP(t, `dblp.venue="VLDB"`, 0.5),
		mustSP(t, `dblp.venue="PVLDB"`, 0.4),
		mustSP(t, `dblp.venue="SIGMOD"`, 0.3),
		mustSP(t, `dblp.venue="INFOCOM"`, 0.2),
	}
	recs, err := PartiallyCombineAll(prefs, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(prefs) {
		t.Fatalf("combinations = %d, want %d (O(N))", len(recs), len(prefs))
	}
	// The last combination is the OR of everything: all 9 papers.
	last := recs[len(recs)-1]
	if last.NumPreds != 4 || last.NumTuples != 9 {
		t.Errorf("last = %d preds %d tuples", last.NumPreds, last.NumTuples)
	}
	// Intensity decreases as weaker preferences join the OR group.
	for i := 1; i < len(recs); i++ {
		if recs[i].Intensity > recs[i-1].Intensity+1e-12 {
			t.Errorf("OR chain intensity rose at %d", i)
		}
	}
}

func TestPartiallyCombineAllAndInflates(t *testing.T) {
	ev := testEvaluator(t)
	prefs := []hypre.ScoredPred{
		mustSP(t, `dblp.venue="INFOCOM"`, 0.23),
		mustSP(t, `dblp_author.aid=6`, 0.12),
	}
	recs, err := PartiallyCombineAll(prefs, ev)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recs = %d", len(recs))
	}
	if recs[1].Intensity <= recs[0].Intensity {
		t.Errorf("AND should inflate: %v -> %v", recs[0].Intensity, recs[1].Intensity)
	}
}

func comboStrings(rs Records) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Combo.String()
	}
	return out
}

func TestBiasRandomDeterministicPerSeed(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	a, err := BiasRandom(prefs, ev, rand.New(rand.NewSource(7)), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BiasRandom(prefs, ev, rand.New(rand.NewSource(7)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Valid != b.Valid || a.Invalid != b.Invalid {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestBiasRandomRecordsAreApplicable(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	res, err := BiasRandom(prefs, ev, rand.New(rand.NewSource(3)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != len(res.Records) {
		t.Errorf("valid=%d records=%d", res.Valid, len(res.Records))
	}
	for _, r := range res.Records {
		if r.NumTuples == 0 {
			t.Errorf("inapplicable combination recorded: %s", r.Combo)
		}
		if r.NumPreds < 2 {
			t.Errorf("seed pair missing: %s", r.Combo)
		}
	}
}

func TestBiasRandomFindsInvalidCombos(t *testing.T) {
	// With venue predicates in the profile, venue∧venue attempts are
	// guaranteed to fail sometimes across seeds (Fig. 35's point: many more
	// invalid than valid tries).
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	totalInvalid := 0
	for seed := int64(0); seed < 20; seed++ {
		res, err := BiasRandom(prefs, ev, rand.New(rand.NewSource(seed)), 1)
		if err != nil {
			t.Fatal(err)
		}
		totalInvalid += res.Invalid
	}
	if totalInvalid == 0 {
		t.Error("no invalid combinations across 20 seeds")
	}
}

func TestBiasRandomNegativeBiasClamped(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	if _, err := BiasRandom(prefs, ev, rand.New(rand.NewSource(1)), -5); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPairTable(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	pt, err := BuildPairTable(prefs, ev)
	if err != nil {
		t.Fatal(err)
	}
	// Applicable pairs only: the venue∧venue pair (0,2) must be absent.
	for _, e := range pt.Pairs {
		if e.I == 0 && e.J == 2 {
			t.Error("inapplicable pair in table")
		}
		if e.Count <= 0 {
			t.Errorf("pair with zero count: %+v", e)
		}
		if e.I >= e.J {
			t.Errorf("pair order broken: %+v", e)
		}
	}
	// Sorted descending by intensity.
	for i := 1; i < len(pt.Pairs); i++ {
		if pt.Pairs[i].Intensity > pt.Pairs[i-1].Intensity+1e-12 {
			t.Error("pair table not sorted")
		}
	}
	// byFirst index agrees with the flat list.
	total := 0
	for i := range prefs {
		total += len(pt.CombsOfTwo(i))
	}
	if total != len(pt.Pairs) {
		t.Errorf("byFirst total = %d, want %d", total, len(pt.Pairs))
	}
}

func TestPEPSReturnsDescendingIntensity(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	pt, err := BuildPairTable(prefs, ev)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PEPS(prefs, pt, ev, 9, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) == 0 {
		t.Fatal("no tuples")
	}
	for i := 1; i < len(res.Tuples); i++ {
		if res.Tuples[i].Intensity > res.Tuples[i-1].Intensity+1e-12 {
			t.Errorf("not descending at %d: %v", i, res.Tuples)
		}
	}
	// No duplicate pids.
	seen := map[int64]bool{}
	for _, tu := range res.Tuples {
		if seen[tu.PID] {
			t.Errorf("duplicate pid %d", tu.PID)
		}
		seen[tu.PID] = true
	}
}

func TestPEPSBestTupleMatchesBestCombination(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	pt, _ := BuildPairTable(prefs, ev)
	res, err := PEPS(prefs, pt, ev, 3, Complete)
	if err != nil {
		t.Fatal(err)
	}
	// Paper 9 (INFOCOM, authors 2 and 6) matches three preferences:
	// f∧(0.23, 0.19, 0.12) is the highest achievable combined intensity.
	want := hypre.FAndAll(0.23, 0.19, 0.12)
	if res.Tuples[0].PID != 9 || !almostEq(res.Tuples[0].Intensity, want) {
		t.Errorf("top tuple = %+v, want pid 9 @ %v", res.Tuples[0], want)
	}
}

func TestPEPSRespectsK(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	pt, _ := BuildPairTable(prefs, ev)
	for _, k := range []int{1, 2, 5} {
		res, err := PEPS(prefs, pt, ev, k, Complete)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Tuples) > k {
			t.Errorf("k=%d returned %d", k, len(res.Tuples))
		}
	}
	res, _ := PEPS(prefs, pt, ev, 0, Complete)
	if len(res.Tuples) != 0 {
		t.Error("k=0 should return nothing")
	}
	res, _ = PEPS(nil, pt, ev, 5, Complete)
	if len(res.Tuples) != 0 {
		t.Error("empty profile should return nothing")
	}
}

func TestPEPSApproximateSubsetOfComplete(t *testing.T) {
	ev := testEvaluator(t)
	prefs := profileUID2(t)
	pt, _ := BuildPairTable(prefs, ev)
	comp, err := PEPS(prefs, pt, ev, 9, Complete)
	if err != nil {
		t.Fatal(err)
	}
	appr, err := PEPS(prefs, pt, ev, 9, Approximate)
	if err != nil {
		t.Fatal(err)
	}
	// The approximate variant prunes; it may return fewer or equal tuples
	// and must not invent pids the complete variant lacks at equal
	// intensity... at minimum: every approximate tuple appears in complete.
	compSet := map[int64]bool{}
	for _, tu := range comp.Tuples {
		compSet[tu.PID] = true
	}
	for _, tu := range appr.Tuples {
		if !compSet[tu.PID] {
			t.Errorf("approximate-only tuple %d", tu.PID)
		}
	}
	if appr.CombosExpanded > comp.CombosExpanded {
		t.Errorf("approximate expanded more combos (%d > %d)",
			appr.CombosExpanded, comp.CombosExpanded)
	}
}

func TestPEPSFloodingFallsBackToSingles(t *testing.T) {
	// A profile with one predicate can still fill K from the single.
	ev := testEvaluator(t)
	prefs := []hypre.ScoredPred{mustSP(t, `dblp.venue="PVLDB"`, 0.4)}
	pt, _ := BuildPairTable(prefs, ev)
	res, err := PEPS(prefs, pt, ev, 3, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 3 {
		t.Errorf("singles fallback returned %d tuples", len(res.Tuples))
	}
	for _, tu := range res.Tuples {
		if !almostEq(tu.Intensity, 0.4) {
			t.Errorf("single intensity = %v", tu.Intensity)
		}
	}
}

func TestVariantAndSemanticsStrings(t *testing.T) {
	if Complete.String() != "complete" || Approximate.String() != "approximate" {
		t.Error("variant names")
	}
	if SemanticsAND.String() != "AND" || SemanticsANDOR.String() != "AND_OR" {
		t.Error("semantics names")
	}
	if !strings.Contains(SemanticsANDOR.String(), "OR") {
		t.Error("sanity")
	}
}
