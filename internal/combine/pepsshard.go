package combine

import (
	"math"
	"sync"
	"sync/atomic"

	"hypre/internal/bitset"
	"hypre/internal/hypre"
)

// This file is the partition-sharded PEPS: the chain DFS distributes over
// the 64k-key container spans of the predicate bitmaps, because for any
// fixed chain its tuple set is the disjoint union of its span-restricted
// intersections. Each span runs the full anchor expansion against
// zero-copy shard views, crediting a span-local tracker; anchors are
// barriers — after each one the global k-th bound is folded across spans so
// the anchor-boundary early exit fires at exactly the same anchor as the
// serial algorithm. Within a span, a chain whose optimistic extension bound
// (the incremental k-th bound against the remaining preferences' headroom)
// cannot reach the k-th intensity proven at the last barrier is dead and is
// not expanded — strictly-below credits cannot alter the final top-k list,
// so Tuples and AnchorsUsed stay byte-identical to PEPS (the equivalence
// suite enforces it; see the cap caveat on PEPSSharded). CombosExpanded
// counts span-local expansions and the expansion safety cap applies per
// span, so those two figures are partition-granular rather than global.

// spanPEPS is one partition's private slice of the sharded DFS: shard views
// of every predicate bitmap, the span-local best-intensity tracker (dense
// ids offset by the span base), per-depth scratch bitmaps, and the local
// work counters.
type spanPEPS struct {
	base       int
	sbms       []*Bitmap
	best       []float64 // per (dense id - base); -1 = unseen
	n          int       // distinct tuples credited in this span
	scratch    []*Bitmap
	expansions int
	combos     int
}

func newSpanPEPS(span bitset.Span, sets []*bitset.Set, dictSize int) *spanPEPS {
	base := bitset.SpanBase(span)
	width := min(bitset.SpanWidth, dictSize-base)
	st := &spanPEPS{
		base: base,
		sbms: make([]*Bitmap, len(sets)),
		best: make([]float64, width),
	}
	for i, s := range sets {
		st.sbms[i] = wrapSet(s.Shard(span))
	}
	for i := range st.best {
		st.best[i] = -1
	}
	return st
}

func (st *spanPEPS) scratchAt(depth int) *Bitmap {
	for len(st.scratch) <= depth {
		st.scratch = append(st.scratch, NewBitmap())
	}
	return st.scratch[depth]
}

// update credits every span-local tuple of bm with intensity if it beats
// the tuple's current best.
func (st *spanPEPS) update(bm *Bitmap, intensity float64) {
	bm.ForEach(func(i int) {
		k := i - st.base
		if st.best[k] < intensity {
			if st.best[k] < 0 {
				st.n++
			}
			st.best[k] = intensity
		}
	})
}

// expandAnchor runs one anchor's seeds to exhaustion within this span.
// kthLB is the k-th best intensity proven at the last anchor barrier (-1
// before k tuples exist): chains whose optimistic bound cannot strictly
// reach it are dead.
func (st *spanPEPS) expandAnchor(prefs []hypre.ScoredPred, pt *PairTable,
	seeds []PairEntry, tailProd []float64, kthLB float64) {
	var dfs func(last int, bm *Bitmap, depth int, prod float64)
	dfs = func(last int, bm *Bitmap, depth int, prod float64) {
		if st.expansions >= maxChainExpansions {
			return
		}
		// Branch-dead early exit: 1 − prod·tailProd[last+1] bounds the
		// intensity of every extension of this chain (the chain itself
		// included). Strictly below the proven k-th intensity, neither the
		// chain's credits nor any descendant's can enter the final top-k
		// list — the pid tie-break at the boundary is preserved because
		// equality is not pruned.
		if kthLB >= 0 && 1-prod*tailProd[last+1] < kthLB {
			return
		}
		st.expansions++
		st.update(bm, 1-prod)
		st.combos++
		for _, e := range pt.CombsOfTwo(last) {
			next := e.J
			child := st.scratchAt(depth)
			child.AndInto(bm, st.sbms[next])
			if child.Len() == 0 {
				continue
			}
			dfs(next, child, depth+1, prod*(1-prefs[next].Intensity))
		}
	}
	for _, e := range seeds {
		seed := st.scratchAt(0)
		seed.AndInto(st.sbms[e.I], st.sbms[e.J])
		seedProd := (1 - prefs[e.I].Intensity) * (1 - prefs[e.J].Intensity)
		dfs(e.J, seed, 1, seedProd)
	}
}

// kthAcross folds the span trackers into the global k-th highest best
// intensity plus the number of distinct tuples collected — the same values
// the serial tracker's kth computes, because span credits are disjoint.
func kthAcross(states []*spanPEPS, k int) (float64, int) {
	n := 0
	for _, st := range states {
		n += st.n
	}
	if n < k {
		return -1, n
	}
	heap := make([]float64, 0, k)
	for _, st := range states {
		for _, v := range st.best {
			if v < 0 {
				continue
			}
			if len(heap) < k {
				heap = append(heap, v)
				siftUp(heap, len(heap)-1)
			} else if v > heap[0] {
				heap[0] = v
				siftDown(heap, 0)
			}
		}
	}
	return heap[0], n
}

// PEPSSharded is PEPS fanned out over the container-span partitions of the
// profile's predicate bitmaps, ev.Workers wide. Tuples and AnchorsUsed are
// byte-identical to PEPS as long as the maxChainExpansions safety cap does
// not bind: the cap is enforced per span here (and dead branches consume
// none of it), so an adversarial profile that trips the serial cap gets
// MORE complete results from the sharded run, not the same truncation.
// CombosExpanded tallies span-local expansions (a chain empty in one span
// is pruned there even when other spans expand it), so it is comparable
// only between sharded runs. Domains under 64k dense ids hold a single
// span: the run is then serial, plus the branch-dead bound — never slower
// than parity with PEPS.
func PEPSSharded(prefs []hypre.ScoredPred, pt *PairTable, ev *Evaluator, k int, variant Variant) (TopKResult, error) {
	var res TopKResult
	if k <= 0 || len(prefs) == 0 {
		return res, nil
	}

	bms := make([]*Bitmap, len(prefs))
	sets := make([]*bitset.Set, len(prefs))
	for i, p := range prefs {
		b, err := ev.PredBitmap(p)
		if err != nil {
			return res, err
		}
		bms[i] = b
		sets[i] = b.s
	}

	// suffixBound[a] = f∧ over prefs[a:], the anchor-boundary exit bound;
	// tailProd[i] = Π(1−p) over prefs[i:], the branch-dead headroom.
	suffixBound := make([]float64, len(prefs)+1)
	tailProd := make([]float64, len(prefs)+1)
	tailProd[len(prefs)] = 1
	for a := len(prefs) - 1; a >= 0; a-- {
		p := prefs[a].Intensity
		if p < 0 {
			p = 0
		}
		tailProd[a] = tailProd[a+1] * (1 - p)
		suffixBound[a] = 1 - tailProd[a]
	}

	spans := bitset.SpanUnion(sets...)
	states := make([]*spanPEPS, len(spans))
	dictSize := ev.dict.Size()
	for si, span := range spans {
		states[si] = newSpanPEPS(span, sets, dictSize)
	}
	workers := ev.workerCount(len(states))
	runSpans := func(fn func(st *spanPEPS)) {
		if workers <= 1 || len(states) <= 1 {
			for _, st := range states {
				fn(st)
			}
			return
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(states) {
						return
					}
					fn(states[i])
				}
			}()
		}
		wg.Wait()
	}

	// Singles participate with their own intensity, gated on the global
	// cardinality exactly like the serial pass (an empty shard view of a
	// non-empty predicate is a no-op credit).
	runSpans(func(st *spanPEPS) {
		for i := range prefs {
			if bms[i].Len() > 0 {
				st.update(st.sbms[i], 1-(1-prefs[i].Intensity))
			}
		}
	})

	kthLB := -1.0
	for a := 0; a < len(prefs); a++ {
		res.AnchorsUsed = a + 1
		anchor := prefs[a].Intensity

		// Working set: pairs anchored at a, filtered per variant — global
		// state, shared read-only by every span.
		var seeds []PairEntry
		for _, e := range pt.CombsOfTwo(a) {
			switch variant {
			case Approximate:
				if e.Intensity <= anchor {
					continue
				}
			case Complete:
				if e.Intensity <= anchor {
					need := hypre.MinPreferencesToExceed(anchor, pt.Prefs[e.J].Intensity)
					if math.IsInf(need, 1) || need > float64(len(prefs)-2) {
						continue
					}
				}
			}
			seeds = append(seeds, e)
		}

		runSpans(func(st *spanPEPS) {
			st.expandAnchor(prefs, pt, seeds, tailProd, kthLB)
		})

		// Anchor barrier: fold the global k-th bound and exit exactly when
		// the serial tracker would.
		if kth, n := kthAcross(states, k); n >= k {
			kthLB = kth
			if a+1 < len(prefs) && suffixBound[a+1] <= kth {
				break
			}
		}
	}

	total := 0
	for _, st := range states {
		total += st.n
		res.CombosExpanded += st.combos
	}
	out := make([]ScoredTuple, 0, total)
	for _, st := range states {
		for i, v := range st.best {
			if v >= 0 {
				out = append(out, ScoredTuple{PID: ev.dict.PID(st.base + i), Intensity: v})
			}
		}
	}
	sortScoredTuples(out)
	if len(out) > k {
		out = out[:k]
	}
	res.Tuples = out
	return res, nil
}
