package combine

import (
	"math/rand"

	"hypre/internal/hypre"
)

// BiasRandomResult is one run of Bias-Random-Selection: the applicable
// combinations it found (Valid) and the number of combinations it tried
// that returned nothing (Invalid) — the axes of Figs. 35/36.
type BiasRandomResult struct {
	Records Records
	Valid   int
	Invalid int
}

// BiasRandom is Algorithm 5: starting from each preference in turn, it
// repeatedly picks another preference from the remaining list with a biased
// coin flip — preferences with higher intensity are proportionally more
// likely to be chosen — and AND-extends the current combination while it
// stays applicable. When an extension fails, the previous combination is
// recorded and the outer loop restarts from the next anchor.
//
// bias >= 0 shifts selection pressure: 0 is uniform, larger values weight
// high-intensity preferences more. The input must be sorted descending by
// intensity. The run is deterministic for a given rng seed.
//
// The current combination's tuple bitmap rides along, so each
// applicability probe is one word-parallel intersection against the
// candidate's predicate set rather than a re-evaluation of the whole
// conjunction.
func BiasRandom(prefs []hypre.ScoredPred, ev *Evaluator, rng *rand.Rand, bias float64) (BiasRandomResult, error) {
	var res BiasRandomResult
	if bias < 0 {
		bias = 0
	}
	bms := make([]*Bitmap, len(prefs))
	for i, p := range prefs {
		b, err := ev.PredBitmap(p)
		if err != nil {
			return res, err
		}
		bms[i] = b
	}
	for first := 0; first < len(prefs); first++ {
		remaining := indexListExcluding(len(prefs), first)
		// Step 1–2: find an applicable seed pair (first AND second).
		var cur Combo
		var curBM *Bitmap
		haveSeed := false
		for len(remaining) > 0 {
			pick := flipCoin(prefs, remaining, rng, bias)
			second := remaining[pick]
			remaining = append(remaining[:pick], remaining[pick+1:]...)
			ev.ComboEvals++
			cand := bms[first].And(bms[second])
			if cand.Len() == 0 {
				res.Invalid++
				continue // Step 4 of Fig. 16: try a new second pick
			}
			cur = NewCombo(prefs[first]).And(prefs[second])
			curBM = cand
			haveSeed = true
			break
		}
		if !haveSeed {
			continue
		}
		// Steps 3–5: greedily extend while applicable.
		for len(remaining) > 0 {
			pick := flipCoin(prefs, remaining, rng, bias)
			next := remaining[pick]
			remaining = append(remaining[:pick], remaining[pick+1:]...)
			ev.ComboEvals++
			cand := curBM.And(bms[next])
			if cand.Len() == 0 {
				res.Invalid++
				break // Step 4: run the held combination, restart outer loop
			}
			cur = cur.And(prefs[next])
			curBM = cand
		}
		ev.ComboEvals++
		res.Records = append(res.Records, ev.record(cur, curBM))
		res.Valid++
	}
	return res, nil
}

func indexListExcluding(n, skip int) []int {
	out := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != skip {
			out = append(out, i)
		}
	}
	return out
}

// flipCoin picks an index into remaining, weighting each candidate by
// max(intensity, 0)^… — implemented as a softened linear weighting
// w = eps + bias*max(intensity, 0), so higher-intensity preferences win the
// coin more often, yet every candidate keeps a nonzero chance (the paper's
// "biased coin flip").
func flipCoin(prefs []hypre.ScoredPred, remaining []int, rng *rand.Rand, bias float64) int {
	const eps = 0.05
	total := 0.0
	for _, idx := range remaining {
		w := prefs[idx].Intensity
		if w < 0 {
			w = 0
		}
		total += eps + bias*w
	}
	r := rng.Float64() * total
	acc := 0.0
	for i, idx := range remaining {
		w := prefs[idx].Intensity
		if w < 0 {
			w = 0
		}
		acc += eps + bias*w
		if r < acc {
			return i
		}
	}
	return len(remaining) - 1
}
