package combine

import (
	"testing"
	"testing/quick"
)

func TestNewIntSetSortsAndDedupes(t *testing.T) {
	s := NewIntSet([]int64{5, 1, 3, 1, 5, 2})
	want := IntSet{1, 2, 3, 5}
	if len(s) != len(want) {
		t.Fatalf("s = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("s = %v", s)
		}
	}
	if NewIntSet(nil).Len() != 0 {
		t.Error("empty set")
	}
}

func TestIntSetContains(t *testing.T) {
	s := NewIntSet([]int64{2, 4, 6})
	for _, v := range []int64{2, 4, 6} {
		if !s.Contains(v) {
			t.Errorf("missing %d", v)
		}
	}
	for _, v := range []int64{1, 3, 5, 7} {
		if s.Contains(v) {
			t.Errorf("phantom %d", v)
		}
	}
	if (IntSet{}).Contains(1) {
		t.Error("empty contains")
	}
}

func TestIntSetOps(t *testing.T) {
	a := NewIntSet([]int64{1, 2, 3, 4})
	b := NewIntSet([]int64{3, 4, 5})
	if got := a.Intersect(b); got.Len() != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got.Len() != 5 {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b); got.Len() != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Minus = %v", got)
	}
	if !a.IntersectsAny(b) {
		t.Error("IntersectsAny false negative")
	}
	c := NewIntSet([]int64{9, 10})
	if a.IntersectsAny(c) {
		t.Error("IntersectsAny false positive")
	}
	if got := a.Intersect(IntSet{}); got.Len() != 0 {
		t.Errorf("empty intersect = %v", got)
	}
	if got := a.Union(IntSet{}); got.Len() != 4 {
		t.Errorf("empty union = %v", got)
	}
}

func toSet(m map[int64]bool) IntSet {
	var vals []int64
	for v, in := range m {
		if in {
			vals = append(vals, v)
		}
	}
	return NewIntSet(vals)
}

// Property: set algebra agrees with map-based reference semantics.
func TestIntSetAlgebraProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		ma, mb := map[int64]bool{}, map[int64]bool{}
		for _, x := range xs {
			ma[int64(x)] = true
		}
		for _, y := range ys {
			mb[int64(y)] = true
		}
		a, b := toSet(ma), toSet(mb)

		inter, union, minus := map[int64]bool{}, map[int64]bool{}, map[int64]bool{}
		for v := range ma {
			union[v] = true
			if mb[v] {
				inter[v] = true
			} else {
				minus[v] = true
			}
		}
		for v := range mb {
			union[v] = true
		}
		eq := func(s IntSet, m map[int64]bool) bool {
			if s.Len() != len(m) {
				return false
			}
			for _, v := range s {
				if !m[v] {
					return false
				}
			}
			return true
		}
		return eq(a.Intersect(b), inter) &&
			eq(a.Union(b), union) &&
			eq(a.Minus(b), minus) &&
			a.IntersectsAny(b) == (len(inter) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sets are always sorted and deduplicated after operations.
func TestIntSetInvariantProperty(t *testing.T) {
	sortedUnique := func(s IntSet) bool {
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				return false
			}
		}
		return true
	}
	f := func(xs, ys []uint8) bool {
		var ax, ay []int64
		for _, x := range xs {
			ax = append(ax, int64(x))
		}
		for _, y := range ys {
			ay = append(ay, int64(y))
		}
		a, b := NewIntSet(ax), NewIntSet(ay)
		return sortedUnique(a) && sortedUnique(b) &&
			sortedUnique(a.Intersect(b)) && sortedUnique(a.Union(b)) &&
			sortedUnique(a.Minus(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
