package combine

// IntSet is a sorted, deduplicated set of tuple ids (pids). The evaluator
// materializes one per atomic preference predicate and answers combination
// queries with set algebra, mirroring the pre-computed combination table of
// §5.5 ("a pre-computed list of combinations of two predicates").
type IntSet []int64

// NewIntSet builds a set from arbitrary input (sorts and dedupes).
func NewIntSet(vals []int64) IntSet {
	if len(vals) == 0 {
		return IntSet{}
	}
	s := append(IntSet(nil), vals...)
	sortInt64(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func sortInt64(s []int64) {
	// Simple bottom-up merge sort to stay allocation-light; inputs are the
	// per-predicate result sets, typically small.
	if len(s) < 2 {
		return
	}
	buf := make([]int64, len(s))
	for width := 1; width < len(s); width *= 2 {
		for lo := 0; lo < len(s); lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > len(s) {
				mid = len(s)
			}
			if hi > len(s) {
				hi = len(s)
			}
			mergeInt64(buf[lo:hi], s[lo:mid], s[mid:hi])
		}
		copy(s, buf)
	}
}

func mergeInt64(dst, a, b []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// Len returns the cardinality.
func (s IntSet) Len() int { return len(s) }

// Contains reports membership via binary search.
func (s IntSet) Contains(v int64) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// Intersect returns s ∩ o.
func (s IntSet) Intersect(o IntSet) IntSet {
	small, large := s, o
	if len(small) > len(large) {
		small, large = large, small
	}
	var out IntSet
	if len(small) == 0 {
		return out
	}
	if len(large) >= gallopFactor*len(small) {
		return small.gallopIntersect(large)
	}
	i, j := 0, 0
	for i < len(small) && j < len(large) {
		switch {
		case small[i] < large[j]:
			i++
		case small[i] > large[j]:
			j++
		default:
			out = append(out, small[i])
			i++
			j++
		}
	}
	return out
}

// gallopFactor is the size ratio beyond which the galloping (exponential
// search) intersection beats the linear merge: the merge is O(n+m), the
// gallop O(n log m), so it wins once m/n clears a small constant.
const gallopFactor = 8

// gallopIntersect intersects a small sorted set with a much larger one by
// exponential search: for each element of the receiver it doubles a probe
// offset into the remaining suffix of large, then binary-searches the
// bracketed window.
func (s IntSet) gallopIntersect(large IntSet) IntSet {
	var out IntSet
	lo := 0
	for _, v := range s {
		lo = gallopSearch(large, lo, v)
		if lo >= len(large) {
			break
		}
		if large[lo] == v {
			out = append(out, v)
			lo++
		}
	}
	return out
}

// gallopSearch returns the smallest index i >= from with large[i] >= v,
// probing at exponentially growing offsets before binary-searching the
// final window.
func gallopSearch(large IntSet, from int, v int64) int {
	if from >= len(large) || large[from] >= v {
		return from
	}
	step := 1
	lo := from
	hi := from + step
	for hi < len(large) && large[hi] < v {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > len(large) {
		hi = len(large)
	}
	// Invariant: large[lo] < v <= large[hi] (if hi in range).
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if large[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Union returns s ∪ o.
func (s IntSet) Union(o IntSet) IntSet {
	out := make(IntSet, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, o[j:]...)
	return out
}

// Minus returns s \ o.
func (s IntSet) Minus(o IntSet) IntSet {
	var out IntSet
	i, j := 0, 0
	for i < len(s) {
		switch {
		case j >= len(o) || s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] > o[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// IntersectsAny reports whether the intersection is non-empty without
// materializing it — the applicability check of Definition 15.
func (s IntSet) IntersectsAny(o IntSet) bool {
	small, large := s, o
	if len(small) > len(large) {
		small, large = large, small
	}
	if len(large) >= gallopFactor*len(small) {
		lo := 0
		for _, v := range small {
			lo = gallopSearch(large, lo, v)
			if lo >= len(large) {
				return false
			}
			if large[lo] == v {
				return true
			}
		}
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			i++
		case s[i] > o[j]:
			j++
		default:
			return true
		}
	}
	return false
}
