package combine

import (
	"math/rand"
	"testing"

	"hypre/internal/hypre"
	"hypre/internal/relstore"
)

func benchProfile(b *testing.B) ([]hypre.ScoredPred, *Evaluator) {
	b.Helper()
	ev := NewEvaluator(benchDB(), baseQuery, "dblp.pid")
	prefs := []hypre.ScoredPred{
		mustSPB(b, `dblp.venue="VLDB"`, 0.50),
		mustSPB(b, `dblp.venue="PVLDB"`, 0.45),
		mustSPB(b, `dblp.venue="SIGMOD"`, 0.40),
		mustSPB(b, `dblp_author.aid=1`, 0.30),
		mustSPB(b, `dblp_author.aid=2`, 0.25),
		mustSPB(b, `dblp_author.aid=3`, 0.20),
		mustSPB(b, `dblp.year>=2009`, 0.10),
	}
	return prefs, ev
}

func mustSPB(b *testing.B, pred string, in float64) hypre.ScoredPred {
	b.Helper()
	p, err := hypre.NewScoredPred(pred, in)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchDB mirrors the Table 6 fixture without *testing.T plumbing.
func benchDB() *relstore.DB { return buildTestDB() }

func BenchmarkEvaluatorComboSet(b *testing.B) {
	prefs, ev := benchProfile(b)
	c := NewCombo(prefs[0]).And(prefs[3]).Or(prefs[4])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.ComboSet(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombineTwoAND(b *testing.B) {
	prefs, ev := benchProfile(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CombineTwo(prefs, ev, SemanticsAND); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartiallyCombineAll(b *testing.B) {
	prefs, ev := benchProfile(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PartiallyCombineAll(prefs, ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBiasRandom(b *testing.B) {
	prefs, ev := benchProfile(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BiasRandom(prefs, ev, rand.New(rand.NewSource(int64(i))), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPEPSComplete(b *testing.B) {
	prefs, ev := benchProfile(b)
	pt, err := BuildPairTable(prefs, ev)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PEPS(prefs, pt, ev, 9, Complete); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildPairTable(b *testing.B) {
	prefs, ev := benchProfile(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildPairTable(prefs, ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntSetIntersect(b *testing.B) {
	xs := make([]int64, 2000)
	ys := make([]int64, 2000)
	for i := range xs {
		xs[i] = int64(i * 2)
		ys[i] = int64(i * 3)
	}
	a, c := NewIntSet(xs), NewIntSet(ys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Intersect(c)
	}
}

func BenchmarkIntSetIntersectGalloping(b *testing.B) {
	// 20 vs 20000 elements: forces the exponential-search path.
	xs := make([]int64, 20)
	ys := make([]int64, 20000)
	for i := range xs {
		xs[i] = int64(i * 1000)
	}
	for i := range ys {
		ys[i] = int64(i * 3)
	}
	a, c := NewIntSet(xs), NewIntSet(ys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Intersect(c)
	}
}

func benchBitmapPair() (*Bitmap, *Bitmap) {
	d := NewPidDict()
	a, c := NewBitmap(), NewBitmap()
	for i := 0; i < 2000; i++ {
		a.Set(d.Add(int64(i * 2)))
	}
	for i := 0; i < 2000; i++ {
		c.Set(d.Add(int64(i * 3)))
	}
	return a, c
}

func BenchmarkBitmapAnd(b *testing.B) {
	x, y := benchBitmapPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkBitmapAndCard(b *testing.B) {
	x, y := benchBitmapPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AndCard(y)
	}
}
