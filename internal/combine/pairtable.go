package combine

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hypre/internal/hypre"
)

// PairEntry is one row of the pre-computed combinations-of-two table of
// §5.5: an applicable AND pair of profile preferences with its combined
// intensity and tuple count.
type PairEntry struct {
	I, J      int // indexes into the profile (I < J)
	Intensity float64
	Count     int
}

// PairTable holds every applicable two-preference combination, sorted
// descending by combined intensity, with a per-first-preference index. It
// is rebuilt when the preference graph changes (the paper updates it on
// graph updates).
type PairTable struct {
	Prefs   []hypre.ScoredPred
	Pairs   []PairEntry
	byFirst map[int][]PairEntry
}

// BuildPairTable computes the table: all (i, j) with i < j whose AND
// combination is applicable (returns tuples). It runs in two phases: a bulk
// materialization of every predicate bitmap (MaterializeAll's worker pool
// of vectorized scans, through the evaluator's cache), then a parallel
// sweep where a worker pool popcounts the word-wise AND of each pair
// without touching the store — the evaluator is read-only concurrent-safe
// at that point. Output is deterministic: per-anchor rows are filled into
// fixed slots and flattened in anchor order before the stable intensity
// sort.
func BuildPairTable(prefs []hypre.ScoredPred, ev *Evaluator) (*PairTable, error) {
	pt := &PairTable{Prefs: prefs, byFirst: make(map[int][]PairEntry)}
	n := len(prefs)
	if n == 0 {
		return pt, nil
	}

	// Phase 1 (bulk): one vectorized scan per uncached predicate, fanned
	// out over the worker pool into the shared-dict bitmap cache.
	if err := ev.MaterializeAll(prefs); err != nil {
		return nil, err
	}
	bms := make([]*Bitmap, n)
	for i, p := range prefs {
		b, err := ev.PredBitmap(p)
		if err != nil {
			return nil, err
		}
		bms[i] = b
	}

	// Phase 2 (parallel): pure bitmap algebra, no evaluator writes. Anchors
	// are handed out via an atomic counter so early (long) rows and late
	// (short) rows balance across the pool.
	rows := make([][]PairEntry, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var row []PairEntry
				for j := i + 1; j < n; j++ {
					cnt := bms[i].AndCard(bms[j])
					if cnt == 0 {
						continue
					}
					row = append(row, PairEntry{
						I:         i,
						J:         j,
						Intensity: hypre.FAndAll(prefs[i].Intensity, prefs[j].Intensity),
						Count:     cnt,
					})
				}
				rows[i] = row
			}
		}()
	}
	wg.Wait()
	ev.ComboEvals += n * (n - 1) / 2

	for _, row := range rows {
		pt.Pairs = append(pt.Pairs, row...)
	}
	sort.SliceStable(pt.Pairs, func(a, b int) bool {
		return pt.Pairs[a].Intensity > pt.Pairs[b].Intensity
	})
	for _, e := range pt.Pairs {
		pt.byFirst[e.I] = append(pt.byFirst[e.I], e)
	}
	return pt, nil
}

// CombsOfTwo returns the valid pairs starting at preference index i,
// descending by combined intensity — the CombsOfTwo(p) lookup of
// Algorithm 6.
func (pt *PairTable) CombsOfTwo(i int) []PairEntry { return pt.byFirst[i] }

// Refresh returns a pair table consistent with the evaluator's current
// predicate bitmaps after the named predicates changed, recounting only the
// pairs with a changed endpoint — the delta-maintenance alternative to
// BuildPairTable's full O(n²) popcount sweep. Pairs between two unchanged
// predicates keep their counts (their bitmaps are untouched); pairs with a
// changed endpoint are repriced, dropping to nothing when the intersection
// emptied and (re)appearing when it stopped being empty. The output is
// assembled anchor-major before the stable intensity sort, exactly like
// BuildPairTable, so the structure is byte-identical to a fresh build.
func (pt *PairTable) Refresh(ev *Evaluator, changedPreds []string) (*PairTable, error) {
	if len(changedPreds) == 0 {
		return pt, nil
	}
	n := len(pt.Prefs)
	changedSet := make(map[string]bool, len(changedPreds))
	for _, p := range changedPreds {
		changedSet[p] = true
	}
	changed := make([]bool, n)
	any := false
	for i, p := range pt.Prefs {
		if changedSet[p.Pred] {
			changed[i] = true
			any = true
		}
	}
	if !any {
		return pt, nil
	}
	bms := make([]*Bitmap, n)
	for i, p := range pt.Prefs {
		b, err := ev.PredBitmap(p) // cache hit: RefreshRows already ran
		if err != nil {
			return nil, err
		}
		bms[i] = b
	}
	old := make(map[[2]int]PairEntry, len(pt.Pairs))
	for _, e := range pt.Pairs {
		old[[2]int{e.I, e.J}] = e
	}
	out := &PairTable{Prefs: pt.Prefs, byFirst: make(map[int][]PairEntry)}
	recounted := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !changed[i] && !changed[j] {
				if e, ok := old[[2]int{i, j}]; ok {
					out.Pairs = append(out.Pairs, e)
				}
				continue
			}
			recounted++
			cnt := bms[i].AndCard(bms[j])
			if cnt == 0 {
				continue
			}
			out.Pairs = append(out.Pairs, PairEntry{
				I:         i,
				J:         j,
				Intensity: hypre.FAndAll(pt.Prefs[i].Intensity, pt.Prefs[j].Intensity),
				Count:     cnt,
			})
		}
	}
	ev.ComboEvals += recounted
	sort.SliceStable(out.Pairs, func(a, b int) bool {
		return out.Pairs[a].Intensity > out.Pairs[b].Intensity
	})
	for _, e := range out.Pairs {
		out.byFirst[e.I] = append(out.byFirst[e.I], e)
	}
	return out, nil
}
