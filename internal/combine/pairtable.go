package combine

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"hypre/internal/bitset"
	"hypre/internal/hypre"
)

// PairEntry is one row of the pre-computed combinations-of-two table of
// §5.5: an applicable AND pair of profile preferences with its combined
// intensity and tuple count.
type PairEntry struct {
	I, J      int // indexes into the profile (I < J)
	Intensity float64
	Count     int
}

// PairTable holds every applicable two-preference combination, sorted
// descending by combined intensity, with a per-first-preference index. It
// is rebuilt when the preference graph changes (the paper updates it on
// graph updates).
type PairTable struct {
	Prefs   []hypre.ScoredPred
	Pairs   []PairEntry
	byFirst map[int][]PairEntry
}

// BuildPairTable computes the table: all (i, j) with i < j whose AND
// combination is applicable (returns tuples). It runs in two phases: a bulk
// materialization of every predicate bitmap (MaterializeAll's worker pool
// of vectorized scans, through the evaluator's cache), then a
// partition-sharded sweep: the pair counts fan out over (container span ×
// anchor) tasks, each intersecting container-local bitmaps, and the
// per-span partial counts merge by summation — sound because containers
// partition the key space, so Σ_span AndCardSpan equals AndCard exactly.
// The evaluator is read-only concurrent-safe at that point. Output is
// deterministic: counts land in fixed triangular slots and rows assemble in
// anchor order before the stable intensity sort, so the table is
// byte-identical across worker and span counts.
func BuildPairTable(prefs []hypre.ScoredPred, ev *Evaluator) (*PairTable, error) {
	pt := &PairTable{Prefs: prefs, byFirst: make(map[int][]PairEntry)}
	n := len(prefs)
	if n == 0 {
		return pt, nil
	}

	// Phase 1 (bulk): one vectorized scan per uncached predicate, fanned
	// out over the worker pool into the shared-dict bitmap cache.
	if err := ev.MaterializeAll(prefs); err != nil {
		return nil, err
	}
	bms := make([]*Bitmap, n)
	for i, p := range prefs {
		b, err := ev.PredBitmap(p)
		if err != nil {
			return nil, err
		}
		bms[i] = b
	}

	counts := buildPairCounts(bms, ev.workerTarget())
	ev.ComboEvals += n * (n - 1) / 2

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			cnt := counts[triIndex(n, i, j)]
			if cnt == 0 {
				continue
			}
			pt.Pairs = append(pt.Pairs, PairEntry{
				I:         i,
				J:         j,
				Intensity: hypre.FAndAll(prefs[i].Intensity, prefs[j].Intensity),
				Count:     int(cnt),
			})
		}
	}
	sort.SliceStable(pt.Pairs, func(a, b int) bool {
		return pt.Pairs[a].Intensity > pt.Pairs[b].Intensity
	})
	for _, e := range pt.Pairs {
		pt.byFirst[e.I] = append(pt.byFirst[e.I], e)
	}
	return pt, nil
}

// triIndex maps a pair (i < j) over n preferences to its slot in the packed
// upper-triangular count vector.
func triIndex(n, i, j int) int { return i*(2*n-i-1)/2 + (j - i - 1) }

// buildPairCounts runs the pair-count sweep. With one worker it is the
// plain serial loop (whole-set AndCard per pair, no span slicing). With
// more, tasks are (span, anchor) cells of the partition grid: the spans of
// SpanUnion over every predicate bitmap times the n anchor rows, handed out
// via an atomic counter so dense spans and long anchor rows balance across
// the pool; each task popcounts container-local intersections and adds them
// into the shared triangular accumulator (summation is commutative, so the
// totals are exact regardless of interleaving). Single-span domains — any
// dictionary under 64k dense ids — degenerate to one task per anchor, i.e.
// plain anchor parallelism.
func buildPairCounts(bms []*Bitmap, workers int) []int64 {
	n := len(bms)
	counts := make([]int64, n*(n-1)/2)
	sets := make([]*bitset.Set, n)
	for i, b := range bms {
		sets[i] = b.s
	}
	spans := bitset.SpanUnion(sets...)
	if workers <= 1 || len(spans) == 0 {
		// Batch-count each anchor's row of the triangle in one AndCardInto
		// call, reusing the scratch slice across anchors.
		row := make([]int, 0, n)
		for i := 0; i < n; i++ {
			row = sets[i].AndCardInto(sets[i+1:], row[:0])
			for jo, c := range row {
				counts[triIndex(n, i, i+1+jo)] = int64(c)
			}
		}
		return counts
	}
	tasks := len(spans) * n
	if workers > tasks {
		workers = tasks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tasks {
					return
				}
				span, i := spans[t/n], t%n
				si := sets[i]
				for j := i + 1; j < n; j++ {
					if c := si.AndCardSpan(sets[j], span); c != 0 {
						atomic.AddInt64(&counts[triIndex(n, i, j)], int64(c))
					}
				}
			}
		}()
	}
	wg.Wait()
	return counts
}

// CombsOfTwo returns the valid pairs starting at preference index i,
// descending by combined intensity — the CombsOfTwo(p) lookup of
// Algorithm 6.
func (pt *PairTable) CombsOfTwo(i int) []PairEntry { return pt.byFirst[i] }

// Refresh returns a pair table consistent with the evaluator's current
// predicate bitmaps after the named predicates changed, recounting only the
// pairs with a changed endpoint — the delta-maintenance alternative to
// BuildPairTable's full O(n²) popcount sweep. Pairs between two unchanged
// predicates keep their counts (their bitmaps are untouched); pairs with a
// changed endpoint are repriced, dropping to nothing when the intersection
// emptied and (re)appearing when it stopped being empty.
func (pt *PairTable) Refresh(ev *Evaluator, changedPreds []string) (*PairTable, error) {
	if len(changedPreds) == 0 {
		return pt, nil
	}
	changedSet := make(map[string]bool, len(changedPreds))
	for _, p := range changedPreds {
		changedSet[p] = true
	}
	changed := make([]bool, len(pt.Prefs))
	any := false
	for i, p := range pt.Prefs {
		if changedSet[p.Pred] {
			changed[i] = true
			any = true
		}
	}
	if !any {
		return pt, nil
	}
	bms := make([]*Bitmap, len(pt.Prefs))
	for i, p := range pt.Prefs {
		b, err := ev.PredBitmap(p) // cache hit: RefreshRows already ran
		if err != nil {
			return nil, err
		}
		bms[i] = b
	}
	return pt.recountPairs(ev, changed, func(i, j int, _ PairEntry) int {
		return bms[i].AndCard(bms[j])
	}), nil
}

// RefreshSpans is Refresh restricted to the partitions a mutation batch
// actually touched: prev maps each changed predicate to its pre-patch
// bitmap (as returned by Evaluator.RefreshRowSetDelta) and spans lists the
// dense-id spans where bits moved. Every pair with a changed endpoint is
// repriced as
//
//	old count − |old_i ∩ old_j|_spans + |new_i ∩ new_j|_spans
//
// which equals a full recount because bits outside the touched spans are
// untouched by the patch — so the cost is O(changed pairs × touched spans)
// instead of O(changed pairs × all containers), and the output stays
// byte-identical to Refresh.
func (pt *PairTable) RefreshSpans(ev *Evaluator, prev map[string]*Bitmap, spans []bitset.Span) (*PairTable, error) {
	if len(prev) == 0 || len(spans) == 0 {
		return pt, nil
	}
	n := len(pt.Prefs)
	changed := make([]bool, n)
	curr := make([]*bitset.Set, n)
	old := make([]*bitset.Set, n)
	any := false
	for i, p := range pt.Prefs {
		b, err := ev.PredBitmap(p) // cache hit: the row refresh already ran
		if err != nil {
			return nil, err
		}
		curr[i], old[i] = b.s, b.s
		if pb, ok := prev[p.Pred]; ok {
			old[i] = pb.s
			changed[i] = true
			any = true
		}
	}
	if !any {
		return pt, nil
	}
	return pt.recountPairs(ev, changed, func(i, j int, e PairEntry) int {
		// e.Count is zero when the pair was previously inapplicable.
		return e.Count -
			old[i].AndCardSpans(old[j], spans) +
			curr[i].AndCardSpans(curr[j], spans)
	}), nil
}

// RefreshIDs is Refresh restricted to the exact dense ids a mutation batch
// flipped: ids lists, sorted and deduplicated, every dense id where some
// changed predicate's old and new bitmaps differ (the union of the ids
// reported by RefreshRowSetDelta and DropPids), and prev maps each changed
// predicate to its pre-patch bitmap. Outside those ids every bitmap — old
// or new, changed or not — is untouched, so each pair with a changed
// endpoint reprices exactly as
//
//	old count + |new_i ∩ new_j|_ids − |old_i ∩ old_j|_ids
//
// The membership of every preference at the flipped ids is probed once and
// packed into one machine word per 64 ids, so the per-pair adjustment is a
// handful of AND+popcount word ops. Total cost is O(prefs × ids) probes
// plus O(changed pairs × ids/64) word ops — independent of table and
// dictionary size, which is what keeps per-sync maintenance flat as the
// store grows: span-restricted recounts bottom out at one 64k-id container,
// still O(dictionary) per pair, while a sustained stream flips only a
// batch's worth of ids. Output stays byte-identical to Refresh.
func (pt *PairTable) RefreshIDs(ev *Evaluator, prev map[string]*Bitmap, ids []int32) (*PairTable, error) {
	if len(prev) == 0 || len(ids) == 0 {
		return pt, nil
	}
	n := len(pt.Prefs)
	changed := make([]bool, n)
	words := (len(ids) + 63) / 64
	currW := make([][]uint64, n)
	oldW := make([][]uint64, n)
	pack := func(s *bitset.Set) []uint64 {
		w := make([]uint64, words)
		for k, di := range ids {
			if s.Contains(int(di)) {
				w[k>>6] |= 1 << (k & 63)
			}
		}
		return w
	}
	any := false
	for i, p := range pt.Prefs {
		b, err := ev.PredBitmap(p) // cache hit: the row refresh already ran
		if err != nil {
			return nil, err
		}
		currW[i] = pack(b.s)
		oldW[i] = currW[i]
		if pb, ok := prev[p.Pred]; ok {
			oldW[i] = pack(pb.s)
			changed[i] = true
			any = true
		}
	}
	if !any {
		return pt, nil
	}
	return pt.recountPairs(ev, changed, func(i, j int, e PairEntry) int {
		// e.Count is zero when the pair was previously inapplicable.
		d := 0
		ci, cj, oi, oj := currW[i], currW[j], oldW[i], oldW[j]
		for w := range ci {
			d += bits.OnesCount64(ci[w]&cj[w]) - bits.OnesCount64(oi[w]&oj[w])
		}
		return e.Count + d
	}), nil
}

// recountPairs is the shared refresh core: pairs between two unchanged
// endpoints keep their old entry verbatim, pairs with a changed endpoint
// reprice through count (the old entry — zero-valued when the pair was
// absent — passed in; a zero result drops the pair), and the output
// assembles anchor-major before the stable intensity sort — exactly
// BuildPairTable's order, which is what keeps every refresh byte-identical
// to a fresh build.
func (pt *PairTable) recountPairs(ev *Evaluator, changed []bool, count func(i, j int, old PairEntry) int) *PairTable {
	n := len(pt.Prefs)
	oldEntries := make(map[[2]int]PairEntry, len(pt.Pairs))
	for _, e := range pt.Pairs {
		oldEntries[[2]int{e.I, e.J}] = e
	}
	out := &PairTable{Prefs: pt.Prefs, byFirst: make(map[int][]PairEntry)}
	recounted := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			e, had := oldEntries[[2]int{i, j}]
			if !changed[i] && !changed[j] {
				if had {
					out.Pairs = append(out.Pairs, e)
				}
				continue
			}
			recounted++
			cnt := count(i, j, e)
			if cnt == 0 {
				continue
			}
			out.Pairs = append(out.Pairs, PairEntry{
				I:         i,
				J:         j,
				Intensity: hypre.FAndAll(pt.Prefs[i].Intensity, pt.Prefs[j].Intensity),
				Count:     cnt,
			})
		}
	}
	ev.ComboEvals += recounted
	sort.SliceStable(out.Pairs, func(a, b int) bool {
		return out.Pairs[a].Intensity > out.Pairs[b].Intensity
	})
	for _, e := range out.Pairs {
		out.byFirst[e.I] = append(out.byFirst[e.I], e)
	}
	return out
}
