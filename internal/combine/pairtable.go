package combine

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hypre/internal/hypre"
)

// PairEntry is one row of the pre-computed combinations-of-two table of
// §5.5: an applicable AND pair of profile preferences with its combined
// intensity and tuple count.
type PairEntry struct {
	I, J      int // indexes into the profile (I < J)
	Intensity float64
	Count     int
}

// PairTable holds every applicable two-preference combination, sorted
// descending by combined intensity, with a per-first-preference index. It
// is rebuilt when the preference graph changes (the paper updates it on
// graph updates).
type PairTable struct {
	Prefs   []hypre.ScoredPred
	Pairs   []PairEntry
	byFirst map[int][]PairEntry
}

// BuildPairTable computes the table: all (i, j) with i < j whose AND
// combination is applicable (returns tuples). It runs in two phases: a bulk
// materialization of every predicate bitmap (MaterializeAll's worker pool
// of vectorized scans, through the evaluator's cache), then a parallel
// sweep where a worker pool popcounts the word-wise AND of each pair
// without touching the store — the evaluator is read-only concurrent-safe
// at that point. Output is deterministic: per-anchor rows are filled into
// fixed slots and flattened in anchor order before the stable intensity
// sort.
func BuildPairTable(prefs []hypre.ScoredPred, ev *Evaluator) (*PairTable, error) {
	pt := &PairTable{Prefs: prefs, byFirst: make(map[int][]PairEntry)}
	n := len(prefs)
	if n == 0 {
		return pt, nil
	}

	// Phase 1 (bulk): one vectorized scan per uncached predicate, fanned
	// out over the worker pool into the shared-dict bitmap cache.
	if err := ev.MaterializeAll(prefs); err != nil {
		return nil, err
	}
	bms := make([]*Bitmap, n)
	for i, p := range prefs {
		b, err := ev.PredBitmap(p)
		if err != nil {
			return nil, err
		}
		bms[i] = b
	}

	// Phase 2 (parallel): pure bitmap algebra, no evaluator writes. Anchors
	// are handed out via an atomic counter so early (long) rows and late
	// (short) rows balance across the pool.
	rows := make([][]PairEntry, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var row []PairEntry
				for j := i + 1; j < n; j++ {
					cnt := bms[i].AndCard(bms[j])
					if cnt == 0 {
						continue
					}
					row = append(row, PairEntry{
						I:         i,
						J:         j,
						Intensity: hypre.FAndAll(prefs[i].Intensity, prefs[j].Intensity),
						Count:     cnt,
					})
				}
				rows[i] = row
			}
		}()
	}
	wg.Wait()
	ev.ComboEvals += n * (n - 1) / 2

	for _, row := range rows {
		pt.Pairs = append(pt.Pairs, row...)
	}
	sort.SliceStable(pt.Pairs, func(a, b int) bool {
		return pt.Pairs[a].Intensity > pt.Pairs[b].Intensity
	})
	for _, e := range pt.Pairs {
		pt.byFirst[e.I] = append(pt.byFirst[e.I], e)
	}
	return pt, nil
}

// CombsOfTwo returns the valid pairs starting at preference index i,
// descending by combined intensity — the CombsOfTwo(p) lookup of
// Algorithm 6.
func (pt *PairTable) CombsOfTwo(i int) []PairEntry { return pt.byFirst[i] }
